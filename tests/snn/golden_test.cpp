// Golden determinism tests: the SNN simulator must reproduce, bit for bit,
// the spike trains and final synapse weights captured from the pre-refactor
// (PR 2 seed) simulator across neuron models, synapse kinds (delta and
// exponential), STDP on/off, axonal delays up to the ring boundary, and a
// non-unit dt.  Fixtures are regenerated with the snnmap_snn_golden_capture
// tool.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "golden_scenarios.hpp"

namespace snnmap::snn {
namespace {

struct GoldenFixture {
  const char* name;
  std::uint64_t spikes_hash;
  std::uint64_t weights_hash;
  std::uint64_t total_spikes;
  std::uint64_t nonempty_trains;
};

constexpr GoldenFixture kGolden[] = {
#include "golden_fixtures.inc"
};

const GoldenFixture* find_fixture(const std::string& name) {
  for (const GoldenFixture& f : kGolden) {
    if (name == f.name) return &f;
  }
  return nullptr;
}

TEST(SnnGolden, EveryScenarioHasAFixture) {
  const auto scenarios = golden::scenarios();
  EXPECT_EQ(scenarios.size(), std::size(kGolden));
  for (const auto& s : scenarios) {
    EXPECT_NE(find_fixture(s.name), nullptr) << s.name;
  }
}

TEST(SnnGolden, BitIdenticalToSeedSimulator) {
  for (const auto& scenario : golden::scenarios()) {
    SCOPED_TRACE(scenario.name);
    const GoldenFixture* fixture = find_fixture(scenario.name);
    ASSERT_NE(fixture, nullptr);
    const golden::Digest d = golden::run_scenario(scenario);
    // Scalars first: a drift here localizes the failure far better than a
    // hash mismatch.
    EXPECT_EQ(d.total_spikes, fixture->total_spikes);
    EXPECT_EQ(d.nonempty_trains, fixture->nonempty_trains);
    EXPECT_EQ(d.spikes_hash, fixture->spikes_hash);
    EXPECT_EQ(d.weights_hash, fixture->weights_hash);
  }
}

TEST(SnnGolden, ScenariosAreReproducibleWithinOneBuild) {
  // The digests themselves must be a pure function of the scenario: two
  // back-to-back runs in the same process may not drift (guards against
  // hidden global state in the engine or the builders).
  for (const auto& scenario : golden::scenarios()) {
    SCOPED_TRACE(scenario.name);
    const golden::Digest a = golden::run_scenario(scenario);
    const golden::Digest b = golden::run_scenario(scenario);
    EXPECT_EQ(a.spikes_hash, b.spikes_hash);
    EXPECT_EQ(a.weights_hash, b.weights_hash);
  }
}

TEST(SnnGolden, StdpScenarioActuallyMovesWeights) {
  // Sanity guard on fixture quality: the STDP scenario must exercise the
  // plasticity path (otherwise the weights hash would pin nothing).
  for (const auto& scenario : golden::scenarios()) {
    if (scenario.name != "stdp_plastic_afferents") continue;
    Network net = scenario.build();
    const auto before = net.synapses();
    Simulator sim(net, scenario.config);
    sim.run();
    std::size_t moved = 0;
    for (std::size_t i = 0; i < before.size(); ++i) {
      if (net.synapses()[i].weight != before[i].weight) ++moved;
    }
    EXPECT_GT(moved, 0u);
    return;
  }
  FAIL() << "stdp scenario missing";
}

}  // namespace
}  // namespace snnmap::snn
