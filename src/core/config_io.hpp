// Config-file binding for the mapping flow.
//
// Noxim drives its simulations from a YAML file; Noxim++ keeps that and the
// paper's framework wraps it.  This module binds the whole MappingFlowConfig
// to the util::Config YAML-subset, so experiments are reproducible from a
// single text file (see examples/snnmap_cli.cpp):
//
//   arch:
//     crossbars: 4
//     neurons_per_crossbar: 256
//     interconnect: tree        # mesh | tree | ring | dragonfly | fattree
//     tree_arity: 4
//     dragonfly_arity: 4        # dragonfly: routers per group (a)
//     dragonfly_groups: 5       # dragonfly: groups (g)
//     dragonfly_global: 1       # dragonfly: global channels per router (h)
//     fattree_k: 4              # fat-tree radix (even)
//     chips: 1                  # > 1 splits tiles across chips (off-chip links)
//     cycles_per_ms: 1000
//   noc:
//     buffer_depth: 4
//     multicast: true
//     offchip_link_latency: 2   # extra cycles per inter-chip link crossing
//   energy:
//     crossbar_event_pj: 2.2
//     link_hop_pj: 10.5
//     offchip_link_hop_pj: 26.0
//     router_flit_pj: 6.0
//     aer_codec_pj: 1.8
//   pso:
//     swarm_size: 100
//     iterations: 100
//   flow:
//     partitioner: pso          # pso | pacman | neutrams | annealing | genetic
//     comm_aware_placement: false
//     injection_jitter_cycles: 32
//     seed: 42
//
// Unknown keys are ignored; absent keys keep their defaults.  The `energy:`
// section binds to the one shared hw::EnergyModel (MappingFlowConfig's
// noc.energy — there is no second flow-level copy to drift from it).
// The closed-loop co-simulation knobs bind under `cosim:` and `dvfs:`
// sections:
//
//   cosim:
//     cycles_per_timestep: 1000
//     receive_queue_depth: 64     # omit for an unbounded (no-drop) queue
//     injection_jitter_cycles: 0
//   dvfs:
//     policy: fixed               # fixed | utilization-threshold | deadline-slack
//     min_scale: 0.25
//     low_utilization: 0.25
//     high_utilization: 0.75
//     slack_fraction: 0.5
//
// Fault injection binds under `faults:` (into the flow's NoC config; the
// all-zero defaults keep the model inert) and the AER retry protocol under
// `retry:` (into the co-sim config):
//
//   faults:
//     seed: 0
//     link_fault_rate: 0.0        # per-link permanent-failure probability
//     router_fault_rate: 0.0
//     tile_fault_rate: 0.0
//     transient_link_rate: 0.0
//     transient_duration_cycles: 1000
//     flit_drop_probability: 0.0  # per link traversal, in [0, 1)
//     horizon_cycles: 0           # 0 = co-sim auto-fills its timeline
//   retry:
//     enabled: false
//     max_retries: 3
//     backoff_windows: 1          # doubles per attempt
//     timeout_windows: 8
//
// Observability binds under `trace:` and `monitor:` (into the flow's NoC
// config; both default off — the default config records nothing and the
// golden spike streams are untouched):
//
//   trace:
//     enabled: false
//     ring_capacity: 65536        # most-recent events kept for export
//   monitor:
//     enabled: false
//     ewma_alpha: 0.25            # per-window EWMA smoothing, in (0, 1]
//     hot_occupancy: 0.5          # flits/cycle EWMA marking a link hot
//     persistence_windows: 3      # consecutive hot windows = persistently hot
#pragma once

#include <string>

#include "core/framework.hpp"
#include "cosim/cosim.hpp"
#include "util/config.hpp"

namespace snnmap::core {

/// Parses "pso" / "pacman" / "neutrams" / "annealing" / "genetic";
/// throws std::invalid_argument on unknown names.
PartitionerKind partitioner_from_string(const std::string& name);

/// Parses "aer-packets" / "cut-spikes"; throws on unknown names.
Objective objective_from_string(const std::string& name);

/// Builds a flow config from a parsed file, starting from defaults.
MappingFlowConfig mapping_flow_from_config(const util::Config& config);

/// Serializes the effective configuration (round-trips via the parser).
void mapping_flow_to_config(const MappingFlowConfig& flow,
                            util::Config& config);

/// Overlays the `cosim.*` keys onto `base` (absent keys keep base values).
/// Only the co-sim-specific scalars are bound here; the embedded snn / noc
/// sub-configs stay whatever the caller put in `base` — the CLI derives
/// them from the app's simulation config and the flow's NoC section.
cosim::CoSimConfig cosim_from_config(const util::Config& config,
                                     cosim::CoSimConfig base = {});

/// Serializes the co-sim scalars (round-trips via cosim_from_config).
void cosim_to_config(const cosim::CoSimConfig& cosim, util::Config& config);

}  // namespace snnmap::core
