#include "obs/trace.hpp"

#include <stdexcept>

namespace snnmap::obs {

void TraceConfig::validate() const {
  if (enabled && ring_capacity == 0) {
    throw std::invalid_argument(
        "TraceConfig: ring_capacity must be >= 1 when tracing is enabled "
        "(a zero-slot ring could retain nothing)");
  }
}

const char* to_string(TraceEventType type) noexcept {
  switch (type) {
    case TraceEventType::kFlitInject: return "flit-inject";
    case TraceEventType::kFlitHop: return "flit-hop";
    case TraceEventType::kFlitPark: return "flit-park";
    case TraceEventType::kFlitDeliver: return "flit-deliver";
    case TraceEventType::kFlitDrop: return "flit-drop";
    case TraceEventType::kFaultLinkDown: return "fault-link-down";
    case TraceEventType::kFaultLinkUp: return "fault-link-up";
    case TraceEventType::kFaultRouterDown: return "fault-router-down";
    case TraceEventType::kFaultRouterUp: return "fault-router-up";
    case TraceEventType::kFaultTileDown: return "fault-tile-down";
    case TraceEventType::kFaultTileUp: return "fault-tile-up";
    case TraceEventType::kAerRetry: return "aer-retry";
    case TraceEventType::kRemapTrigger: return "remap-trigger";
    case TraceEventType::kDvfsDecision: return "dvfs-decision";
  }
  return "?";
}

void Tracer::configure(const TraceConfig& config) {
  config.validate();
  reset();
  enabled_ = config.enabled;
  capacity_ = config.enabled ? config.ring_capacity : 0;
}

void Tracer::reset() {
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
  digest_ = 0xcbf29ce484222325ULL;
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Once full, the oldest retained event sits at head_ (the next eviction
  // slot); before that the ring is a plain append-only vector.
  if (ring_.size() == capacity_ && head_ != 0) {
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  } else {
    out = ring_;
  }
  return out;
}

}  // namespace snnmap::obs
