// Ablation: identity vs communication-aware crossbar placement.  The paper
// maps crossbar k to tile k; our greedy pairwise-swap placement
// (src/core/placement.cpp) minimizes sum(traffic x hops) on top of any
// partition.  On a tree all leaf pairs are equidistant, so the interesting
// comparison is on a mesh, where placement can co-locate chatty crossbars.
#include <iostream>

#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace snnmap;
  const bool quick = bench::quick_mode();

  std::vector<std::string> workloads = {"3x200", "HD"};
  if (quick) workloads = {"2x50"};

  util::Table table({"workload", "partitioner", "placement",
                     "global E (uJ)", "avg latency (cycles)",
                     "max latency"});

  for (const auto& name : workloads) {
    const snn::SnnGraph graph = apps::build_app(name, /*seed=*/42);
    const std::uint32_t crossbar =
        bench::crossbar_size_for(graph.neuron_count(), 9);
    for (const auto partitioner :
         {core::PartitionerKind::kPacman, core::PartitionerKind::kPso}) {
      for (const bool comm_aware : {false, true}) {
        core::MappingFlowConfig flow;
        flow.arch = hw::Architecture::sized_for(
            graph.neuron_count(), crossbar, hw::InterconnectKind::kMesh);
        flow.partitioner = partitioner;
        flow.pso = bench::default_pso();
        flow.comm_aware_placement = comm_aware;
        const auto report = core::run_mapping_flow(graph, flow);
        table.begin_row();
        table.cell(name);
        table.cell(std::string(core::to_string(partitioner)));
        table.cell(std::string(comm_aware ? "greedy comm-aware" : "identity"));
        table.cell(report.global_energy_pj * 1e-6, 3);
        table.cell(report.noc_stats.latency_cycles.mean(), 1);
        table.cell(
            static_cast<std::size_t>(report.noc_stats.max_latency_cycles));
      }
    }
  }

  std::cout << "=== Ablation: crossbar placement on a NoC-mesh ===\n"
            << table.to_ascii() << '\n';
  std::cout << "Expected: comm-aware placement never increases energy; its "
               "headroom is largest for traffic-oblivious partitions and "
               "shrinks once PSO has already localized the heavy synapses.\n";
  return 0;
}
