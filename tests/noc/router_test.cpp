#include "noc/router.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace snnmap::noc {
namespace {

Flit flit(std::uint32_t neuron) {
  Flit f;
  f.source_neuron = neuron;
  return f;
}

TEST(Router, QueueLayout) {
  Router r(3, 4, 2);
  EXPECT_EQ(r.id(), 3u);
  EXPECT_EQ(r.port_count(), 4u);
  EXPECT_EQ(r.input_count(), 5u);  // 4 inter-router + 1 injection
  EXPECT_TRUE(r.all_queues_empty());
  EXPECT_EQ(r.buffered_flits(), 0u);
}

TEST(Router, RejectsZeroBuffers) {
  EXPECT_THROW(Router(0, 2, 0), std::invalid_argument);
}

TEST(Router, BackpressureRespectsDepthAndStaged) {
  Router r(0, 2, 2);
  EXPECT_TRUE(r.can_accept(0, 0));
  EXPECT_TRUE(r.can_accept(0, 1));
  EXPECT_FALSE(r.can_accept(0, 2));  // staged arrivals count
  r.push(0, Flit{});
  EXPECT_TRUE(r.can_accept(0, 0));
  EXPECT_FALSE(r.can_accept(0, 1));
  r.push(0, Flit{});
  EXPECT_FALSE(r.can_accept(0, 0));
}

TEST(Router, RingBufferPreservesFifoOrderAcrossWraparound) {
  Router r(0, 1, 3);
  for (std::uint32_t i = 0; i < 3; ++i) r.push(0, flit(i));
  EXPECT_EQ(r.head(0).source_neuron, 0u);
  r.pop(0);
  r.push(0, flit(3));  // wraps around the slot array
  for (std::uint32_t expected = 1; expected <= 3; ++expected) {
    ASSERT_FALSE(r.queue_empty(0));
    EXPECT_EQ(r.head(0).source_neuron, expected);
    r.pop(0);
  }
  EXPECT_TRUE(r.queue_empty(0));
}

TEST(Router, PushIntoFullFifoThrows) {
  Router r(0, 1, 1);
  r.push(0, Flit{});
  EXPECT_THROW(r.push(0, Flit{}), std::logic_error);
}

TEST(Router, InjectionQueueIsUnbounded) {
  Router r(0, 2, 1);
  for (std::uint32_t i = 0; i < 100; ++i) r.push(2, flit(i));
  EXPECT_TRUE(r.can_accept(2, 1000));
  EXPECT_EQ(r.buffered_flits(), 100u);
  // FIFO order survives the lazy head-compaction of the injection vector.
  for (std::uint32_t expected = 0; expected < 100; ++expected) {
    EXPECT_EQ(r.head(2).source_neuron, expected);
    r.pop(2);
  }
  EXPECT_TRUE(r.all_queues_empty());
}

TEST(Router, RoundRobinPointerWraps) {
  Router r(0, 1, 4);  // 2 inputs (1 port + injection)
  EXPECT_EQ(r.rr_pointer(0), 0u);
  r.advance_rr(0);
  EXPECT_EQ(r.rr_pointer(0), 1u);
  r.advance_rr(0);
  EXPECT_EQ(r.rr_pointer(0), 0u);
}

TEST(Router, TooManyPortsRejected) {
  // occupied_mask() covers port_count + 1 input FIFOs with 64 bits; the
  // arbitration loop's rotated-bitmask round-robin depends on this limit.
  EXPECT_THROW(Router(0, 64, 4), std::invalid_argument);
  EXPECT_NO_THROW(Router(0, 63, 4));
}

TEST(Router, ForEachFlitVisitsEveryBufferedFlit) {
  Router r(0, 2, 2);
  r.push(0, flit(1));
  r.push(1, flit(2));
  r.push(2, flit(3));
  std::uint32_t sum = 0;
  std::size_t count = 0;
  r.for_each_flit([&](Flit& f) {
    sum += f.source_neuron;
    ++count;
  });
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(sum, 6u);
}

}  // namespace
}  // namespace snnmap::noc
