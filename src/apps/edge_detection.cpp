#include "apps/edge_detection.hpp"

#include "apps/image_smoothing.hpp"  // shared procedural test image
#include "snn/network.hpp"
#include "snn/simulator.hpp"

namespace snnmap::apps {

snn::Network build_edge_detection_network(const EdgeDetectionConfig& config) {
  snn::Network net;
  const std::uint32_t pixels = config.width * config.height;

  const auto image =
      make_test_image(config.width, config.height, config.seed ^ 0xED6E);
  const auto input = net.add_poisson_group("pixels", pixels, 0.0);
  const double max_rate = config.max_rate_hz;
  net.set_rate_function(input, [image, max_rate](std::uint32_t local, double) {
    return image[local] * max_rate;
  });

  snn::LifParams lif;
  lif.tau_m_ms = 12.0;
  const auto edges_group = net.add_lif_group("edges", pixels, lif);

  // DoG: tight excitatory center minus a wider inhibitory surround.  On
  // uniform input the two nearly cancel (weights chosen so the surround sum
  // slightly exceeds the center), so only intensity gradients fire.
  net.connect_gaussian_2d(input, edges_group, config.width, config.height,
                          config.center_radius, config.center_weight,
                          /*sigma=*/0.7);
  net.connect_gaussian_2d(input, edges_group, config.width, config.height,
                          config.surround_radius, config.surround_weight,
                          /*sigma=*/1.6);
  return net;
}

snn::SimulationConfig edge_detection_sim_config(
    const EdgeDetectionConfig& config) {
  snn::SimulationConfig sim_config;
  sim_config.seed = config.seed;
  sim_config.duration_ms = config.duration_ms;
  sim_config.syn_tau_ms = 4.0;  // slight temporal integration
  return sim_config;
}

snn::SnnGraph build_edge_detection(const EdgeDetectionConfig& config) {
  snn::Network net = build_edge_detection_network(config);
  snn::Simulator sim(net, edge_detection_sim_config(config));
  return snn::SnnGraph::from_simulation(net, sim.run());
}

}  // namespace snnmap::apps
