#!/usr/bin/env bash
# Fixture: the bench assertion list matches bench/CMakeLists.txt exactly.
for bench in alpha_benchmarks beta_benchmarks; do
  test -x "build/bench/$bench"
done
