// Neuromorphic hardware architecture description (Fig. 1 of the paper).
//
// An architecture is C crossbars of Nc neurons each, joined by a
// time-multiplexed global-synapse interconnect.  The paper's reference
// hardware is CxQuad (4 crossbars, NoC-tree); TrueNorth/HiCANN use NoC-mesh.
// The architecture is a pure value type: the NoC simulator and the
// partitioners both consume it.
#pragma once

#include <cstdint>
#include <string>

namespace snnmap::hw {

/// Global-synapse interconnect families explored in the paper (Sec. II:
/// "The commonly used ones are NoC-tree (CxQuad) and NoC-mesh (TrueNorth,
/// HiCANN)").  Ring is included as an extra point for the interconnect
/// ablation bench.
enum class InterconnectKind : std::uint8_t { kMesh, kTree, kRing };

const char* to_string(InterconnectKind kind) noexcept;

/// Parse from the names used in config files ("mesh" / "tree" / "ring");
/// throws std::invalid_argument on unknown names.
InterconnectKind interconnect_from_string(const std::string& name);

struct Architecture {
  std::uint32_t crossbar_count = 4;
  std::uint32_t neurons_per_crossbar = 256;
  InterconnectKind interconnect = InterconnectKind::kTree;
  /// Fan-out of internal tree routers (CxQuad joins 4 leaves under one hub).
  std::uint32_t tree_arity = 4;
  /// Interconnect cycles per simulated millisecond: the time-multiplexing
  /// ratio between the SNN step and the NoC clock.
  std::uint32_t cycles_per_ms = 1000;

  /// Total neuron capacity of the device.
  std::uint64_t capacity() const noexcept {
    return static_cast<std::uint64_t>(crossbar_count) * neurons_per_crossbar;
  }

  /// True when a network of `neurons` fits.
  bool fits(std::uint64_t neurons) const noexcept {
    return neurons <= capacity();
  }

  /// Mesh side lengths (width >= height, width*height >= crossbar_count).
  std::uint32_t mesh_width() const noexcept;
  std::uint32_t mesh_height() const noexcept;

  /// The CxQuad reference device: 1024 neurons in 4 crossbars of 256,
  /// NoC-tree interconnect (Sec. I/II).
  static Architecture cxquad() noexcept;

  /// Smallest architecture of the given crossbar size and interconnect that
  /// holds `neurons` neurons (used by the architecture-exploration bench,
  /// Fig. 6, which sweeps neurons_per_crossbar and derives crossbar_count).
  static Architecture sized_for(std::uint64_t neurons,
                                std::uint32_t neurons_per_crossbar,
                                InterconnectKind kind);

  /// One-line human-readable description.
  std::string describe() const;
};

}  // namespace snnmap::hw
