#include "noc/router.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace snnmap::noc {
namespace {

TEST(Router, QueueLayout) {
  Router r(3, 4, 2);
  EXPECT_EQ(r.id(), 3u);
  EXPECT_EQ(r.port_count(), 4u);
  EXPECT_EQ(r.input_count(), 5u);  // 4 inter-router + 1 injection
  EXPECT_TRUE(r.all_queues_empty());
  EXPECT_EQ(r.buffered_flits(), 0u);
}

TEST(Router, RejectsZeroBuffers) {
  EXPECT_THROW(Router(0, 2, 0), std::invalid_argument);
}

TEST(Router, BackpressureRespectsDepthAndStaged) {
  Router r(0, 2, 2);
  EXPECT_TRUE(r.can_accept(0, 0));
  EXPECT_TRUE(r.can_accept(0, 1));
  EXPECT_FALSE(r.can_accept(0, 2));  // staged arrivals count
  r.in_queue(0).push_back(Flit{});
  EXPECT_TRUE(r.can_accept(0, 0));
  EXPECT_FALSE(r.can_accept(0, 1));
  r.in_queue(0).push_back(Flit{});
  EXPECT_FALSE(r.can_accept(0, 0));
}

TEST(Router, InjectionQueueIsUnbounded) {
  Router r(0, 2, 1);
  for (int i = 0; i < 100; ++i) r.in_queue(2).push_back(Flit{});
  EXPECT_TRUE(r.can_accept(2, 1000));
  EXPECT_EQ(r.buffered_flits(), 100u);
}

TEST(Router, RoundRobinPointerWraps) {
  Router r(0, 1, 4);  // 2 inputs (1 port + injection)
  EXPECT_EQ(r.rr_pointer(0), 0u);
  r.advance_rr(0);
  EXPECT_EQ(r.rr_pointer(0), 1u);
  r.advance_rr(0);
  EXPECT_EQ(r.rr_pointer(0), 0u);
}

TEST(Flit, ServedPortMask) {
  Flit f;
  EXPECT_FALSE(f.port_served(0));
  f.mark_served(0);
  f.mark_served(3);
  EXPECT_TRUE(f.port_served(0));
  EXPECT_FALSE(f.port_served(1));
  EXPECT_TRUE(f.port_served(3));
}

TEST(Router, TooManyPortsRejected) {
  EXPECT_THROW(Router(0, 64, 4), std::invalid_argument);
}

}  // namespace
}  // namespace snnmap::noc
