#include "snn/simulator.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "snn/graph.hpp"
#include "snn/spike_train.hpp"

namespace snnmap::snn {
namespace {

TEST(Simulator, PoissonGroupFiresAtConfiguredRate) {
  Network net;
  net.add_poisson_group("in", 50, 40.0);
  SimulationConfig cfg;
  cfg.duration_ms = 5000.0;
  cfg.seed = 3;
  Simulator sim(net, cfg);
  const auto result = sim.run();
  EXPECT_NEAR(result.mean_rate_hz(), 40.0, 2.0);
}

TEST(Simulator, RateFunctionOverridesBaseline) {
  Network net;
  const auto g = net.add_poisson_group("in", 2, 100.0);
  net.set_rate_function(g, [](std::uint32_t local, double) {
    return local == 0 ? 0.0 : 80.0;
  });
  SimulationConfig cfg;
  cfg.duration_ms = 5000.0;
  Simulator sim(net, cfg);
  const auto result = sim.run();
  EXPECT_TRUE(result.spikes[0].empty());
  EXPECT_NEAR(mean_rate_hz(result.spikes[1], 5000.0), 80.0, 10.0);
}

TEST(Simulator, SpikesArriveAfterConfiguredDelay) {
  // A Poisson source driving a LIF neuron through a strong synapse with a
  // 5-step delay: every post spike must trail a pre spike by >= 5 ms.
  Network net;
  const auto in = net.add_poisson_group("in", 1, 50.0);
  const auto out = net.add_lif_group("out", 1);
  util::Rng rng(1);
  net.connect_one_to_one(in, out, WeightSpec::fixed(30.0), rng, /*delay=*/5);
  SimulationConfig cfg;
  cfg.duration_ms = 2000.0;
  cfg.seed = 5;
  Simulator sim(net, cfg);
  const auto result = sim.run();
  ASSERT_FALSE(result.spikes[0].empty());
  ASSERT_FALSE(result.spikes[1].empty());
  // First output spike cannot precede first input spike + 5 ms.
  EXPECT_GE(result.spikes[1].front(), result.spikes[0].front() + 5.0);
}

TEST(Simulator, StrongOneToOneDriveRelaysRate) {
  Network net;
  const auto in = net.add_poisson_group("in", 20, 30.0);
  const auto out = net.add_lif_group("out", 20);
  util::Rng rng(2);
  // One spike delivers R*w = 450 mV of drive over tau: well above threshold.
  net.connect_one_to_one(in, out, WeightSpec::fixed(45.0), rng);
  SimulationConfig cfg;
  cfg.duration_ms = 4000.0;
  cfg.seed = 7;
  Simulator sim(net, cfg);
  const auto result = sim.run();
  double in_rate = 0.0;
  double out_rate = 0.0;
  for (std::uint32_t i = 0; i < 20; ++i) {
    in_rate += mean_rate_hz(result.spikes[net.group(in).first + i], 4000.0);
    out_rate += mean_rate_hz(result.spikes[net.group(out).first + i], 4000.0);
  }
  in_rate /= 20.0;
  out_rate /= 20.0;
  // The relay should fire at a comparable (not wildly different) rate.
  EXPECT_GT(out_rate, 0.5 * in_rate);
  EXPECT_LT(out_rate, 2.0 * in_rate);
}

TEST(Simulator, InhibitionSuppressesFiring) {
  Network net;
  const auto in = net.add_poisson_group("in", 1, 200.0);
  const auto exc_target = net.add_lif_group("t1", 1);
  const auto inh_target = net.add_lif_group("t2", 1);
  util::Rng rng(3);
  net.connect_one_to_one(in, exc_target, WeightSpec::fixed(40.0), rng);
  net.connect_one_to_one(in, inh_target, WeightSpec::fixed(40.0), rng);
  // Dense inhibitory bombardment onto t2 from a second source.
  const auto inh_src = net.add_poisson_group("inh", 1, 400.0);
  net.add_synapse(net.group(inh_src).first, net.group(inh_target).first,
                  -40.0);
  SimulationConfig cfg;
  cfg.duration_ms = 3000.0;
  cfg.seed = 11;
  Simulator sim(net, cfg);
  const auto result = sim.run();
  EXPECT_LT(result.spikes[net.group(inh_target).first].size(),
            result.spikes[net.group(exc_target).first].size());
}

TEST(Simulator, SpikesAreRecordedSorted) {
  Network net;
  net.add_poisson_group("in", 10, 60.0);
  SimulationConfig cfg;
  cfg.duration_ms = 1000.0;
  Simulator sim(net, cfg);
  const auto result = sim.run();
  for (const auto& train : result.spikes) {
    EXPECT_TRUE(is_valid_train(train));
  }
  EXPECT_DOUBLE_EQ(result.duration_ms, 1000.0);
}

TEST(Simulator, DeterministicForSameSeed) {
  const auto run_once = [] {
    Network net;
    const auto in = net.add_poisson_group("in", 5, 50.0);
    const auto out = net.add_izhikevich_group("out", 5);
    util::Rng rng(1);
    net.connect_full(in, out, WeightSpec::fixed(5.0), rng);
    SimulationConfig cfg;
    cfg.duration_ms = 500.0;
    cfg.seed = 99;
    Simulator sim(net, cfg);
    return sim.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.total_spikes, b.total_spikes);
  EXPECT_EQ(a.spikes, b.spikes);
}

TEST(Simulator, StdpPotentiatesCausalPathway) {
  // Pre drives post strongly; with STDP enabled the plastic weight of the
  // causal pre->post synapse should grow.
  Network net;
  const auto in = net.add_poisson_group("in", 1, 80.0);
  const auto out = net.add_lif_group("out", 1);
  util::Rng rng(4);
  net.connect_one_to_one(in, out, WeightSpec::fixed(20.0), rng, 1,
                         /*plastic=*/true);
  const float w_before = net.synapses()[0].weight;
  SimulationConfig cfg;
  cfg.duration_ms = 3000.0;
  cfg.seed = 13;
  cfg.enable_stdp = true;
  cfg.stdp.w_max = 40.0;
  // Potentiation-dominant window: the pathway is strictly causal (pre drives
  // post), so with a_plus > a_minus the weight must grow.
  cfg.stdp.a_plus = 0.05;
  cfg.stdp.a_minus = 0.005;
  Simulator sim(net, cfg);
  sim.run();
  EXPECT_GT(net.synapses()[0].weight, w_before);
}

TEST(Simulator, StdpDisabledKeepsWeights) {
  Network net;
  const auto in = net.add_poisson_group("in", 1, 80.0);
  const auto out = net.add_lif_group("out", 1);
  util::Rng rng(4);
  net.connect_one_to_one(in, out, WeightSpec::fixed(20.0), rng, 1,
                         /*plastic=*/true);
  SimulationConfig cfg;
  cfg.duration_ms = 1000.0;
  cfg.enable_stdp = false;
  Simulator sim(net, cfg);
  sim.run();
  EXPECT_FLOAT_EQ(net.synapses()[0].weight, 20.0F);
}

TEST(Simulator, InjectCurrentFiresNeuron) {
  Network net;
  net.add_lif_group("n", 1);
  SimulationConfig cfg;
  Simulator sim(net, cfg);
  sim.inject_current(0, 100.0);
  sim.step();
  EXPECT_EQ(sim.total_spikes(), 1u);
  // Injection is one-step only: without re-injection the neuron is silent.
  for (int i = 0; i < 20; ++i) sim.step();
  EXPECT_EQ(sim.total_spikes(), 1u);
}

TEST(Simulator, InjectCurrentValidatesNeuron) {
  Network net;
  net.add_lif_group("n", 1);
  SimulationConfig cfg;
  Simulator sim(net, cfg);
  EXPECT_THROW(sim.inject_current(5, 1.0), std::out_of_range);
}

TEST(Simulator, ExponentialSynapsesSumTemporally) {
  // A weight just below the instantaneous threshold cannot fire a LIF
  // neuron with delta synapses, but with a slow synaptic time constant the
  // decaying currents of successive spikes summate and eventually fire it.
  const auto run_with_tau = [](double tau) {
    Network net;
    const auto in = net.add_poisson_group("in", 1, 100.0);
    const auto out = net.add_lif_group("out", 1);
    util::Rng rng(1);
    net.connect_one_to_one(in, out, WeightSpec::fixed(10.0), rng);
    SimulationConfig cfg;
    cfg.duration_ms = 2000.0;
    cfg.seed = 21;
    cfg.syn_tau_ms = tau;
    Simulator sim(net, cfg);
    const auto result = sim.run();
    return result.spikes[net.group(out).first].size();
  };
  const auto delta_spikes = run_with_tau(0.0);
  const auto exp_spikes = run_with_tau(10.0);
  EXPECT_GT(exp_spikes, delta_spikes);
  EXPECT_GT(exp_spikes, 5u);
}

TEST(Simulator, ExponentialSynapseDecayIsFinite) {
  // One strong input pulse through a slow synapse must not fire the target
  // forever: the current decays and the neuron falls silent.
  Network net;
  net.add_lif_group("out", 1);
  net.add_poisson_group("in", 1, 0.0);  // silent source
  net.add_synapse(1, 0, 50.0);
  SimulationConfig cfg;
  cfg.syn_tau_ms = 5.0;
  Simulator sim(net, cfg);
  // Manually push one spike's worth of current via external injection.
  sim.inject_current(0, 50.0);
  for (int t = 0; t < 300; ++t) sim.step();
  const std::size_t spikes = sim.spikes()[0].size();
  // Fires at most a few times right after the pulse, then silence.
  EXPECT_LE(spikes, 5u);
  const auto after = sim.spikes()[0];
  if (!after.empty()) {
    EXPECT_LT(after.back(), 50.0);
  }
}

TEST(Simulator, RejectsNonPositiveDt) {
  Network net;
  net.add_lif_group("n", 1);
  SimulationConfig cfg;
  cfg.dt_ms = 0.0;
  EXPECT_THROW(Simulator(net, cfg), std::invalid_argument);
}

TEST(Simulator, RejectsNonFiniteDt) {
  Network net;
  net.add_lif_group("n", 1);
  SimulationConfig cfg;
  cfg.dt_ms = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(Simulator(net, cfg), std::invalid_argument);
  cfg.dt_ms = std::numeric_limits<double>::infinity();
  EXPECT_THROW(Simulator(net, cfg), std::invalid_argument);
}

TEST(Simulator, RejectsInvalidDuration) {
  Network net;
  net.add_lif_group("n", 1);
  SimulationConfig cfg;
  cfg.duration_ms = -1.0;
  EXPECT_THROW(Simulator(net, cfg), std::invalid_argument);
  cfg.duration_ms = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(Simulator(net, cfg), std::invalid_argument);
  cfg.duration_ms = std::numeric_limits<double>::infinity();
  EXPECT_THROW(Simulator(net, cfg), std::invalid_argument);
  cfg.duration_ms = 0.0;  // legal: zero steps, empty result
  Simulator sim(net, cfg);
  const auto result = sim.run();
  EXPECT_EQ(result.total_spikes, 0u);
  EXPECT_DOUBLE_EQ(result.duration_ms, 0.0);
}

TEST(Simulator, DelayRaisedThroughMutableSynapsesStaysInBounds) {
  // Regression: mutable_synapses() lets a caller raise a delay after the
  // Network cached its max; the delay ring must size itself from the
  // synapses as built, or delivery indexes past the pending buffer
  // (caught by the ASan CI leg).
  Network net;
  const auto in = net.add_poisson_group("in", 1, 200.0);
  const auto out = net.add_lif_group("out", 1);
  util::Rng rng(1);
  net.connect_one_to_one(in, out, WeightSpec::fixed(40.0), rng, /*delay=*/1);
  net.mutable_synapses()[0].delay_steps = 10;
  SimulationConfig cfg;
  cfg.duration_ms = 200.0;
  Simulator sim(net, cfg);
  const auto result = sim.run();
  ASSERT_FALSE(result.spikes[1].empty());
  // Arrivals honor the raised delay.
  EXPECT_GE(result.spikes[1].front(), result.spikes[0].front() + 10.0);
}

TEST(Simulator, DelayLoweredToZeroThroughMutableSynapsesIsRejected) {
  // The mirror image of the raised-delay case: a zero delay would make a
  // spike arrive in the slot being consumed, reaching only the neurons not
  // yet stepped this dt — rejected at construction instead.
  Network net;
  const auto in = net.add_poisson_group("in", 1, 100.0);
  const auto out = net.add_lif_group("out", 1);
  util::Rng rng(1);
  net.connect_one_to_one(in, out, WeightSpec::fixed(40.0), rng, /*delay=*/1);
  net.mutable_synapses()[0].delay_steps = 0;
  SimulationConfig cfg;
  EXPECT_THROW(Simulator(net, cfg), std::invalid_argument);
}

TEST(Simulator, RunCoversNonCommensurateDuration) {
  // Regression: round-to-nearest used to drop the tail step (10 ms at
  // dt = 3 ms simulated only 9 ms).  run() must cover the full duration
  // with whole steps: ceil(10 / 3) = 4 steps = 12 ms.
  Network net;
  net.add_poisson_group("in", 5, 100.0);
  SimulationConfig cfg;
  cfg.dt_ms = 3.0;
  cfg.duration_ms = 10.0;
  Simulator sim(net, cfg);
  const auto result = sim.run();
  EXPECT_GE(result.duration_ms, cfg.duration_ms);
  EXPECT_DOUBLE_EQ(result.duration_ms, 12.0);
}

TEST(Simulator, RunKeepsCommensurateStepCountExact) {
  // An exactly commensurate ratio must not gain a step from the ceil.
  Network net;
  net.add_poisson_group("in", 2, 50.0);
  SimulationConfig cfg;
  cfg.dt_ms = 0.5;
  cfg.duration_ms = 250.0;
  Simulator sim(net, cfg);
  const auto result = sim.run();
  EXPECT_DOUBLE_EQ(result.duration_ms, 250.0);
  // dt = 0.1 is not exactly representable; 1000 / 0.1 must still give
  // exactly 10000 steps, not 10001.
  Network net2;
  net2.add_poisson_group("in", 2, 50.0);
  SimulationConfig cfg2;
  cfg2.dt_ms = 0.1;
  cfg2.duration_ms = 1000.0;
  Simulator sim2(net2, cfg2);
  const auto result2 = sim2.run();
  EXPECT_NEAR(result2.duration_ms, 1000.0, 1e-6);
  EXPECT_LT(result2.duration_ms, 1000.0 + 0.05);
}

}  // namespace
}  // namespace snnmap::snn
