// Ablation: mesh routing algorithms x selection strategies under hotspot
// traffic.  Noxim exposes both as configuration ("routing algorithm,
// selection strategy, among others", Sec. IV); this harness shows where the
// partially adaptive turn models (West-first, North-last) with buffer-level
// selection pay off: column hotspots that deterministic XY funnels through
// one link.  The eight independent scenarios fan out across cores via
// core::BatchNocEvaluator.
#include <iostream>

#include "core/batch_eval.hpp"
#include "noc/simulator.hpp"
#include "noc/traffic_patterns.hpp"
#include "util/table.hpp"

int main() {
  using namespace snnmap;

  // Hotspot trace on a 4x4 mesh: every tile streams packets to the two
  // right-column sinks, so XY funnels everything through the east column.
  // Shared with BM_NocSimulator and the golden scenarios.
  const auto make_traffic = [] {
    return noc::patterns::mesh_hotspot_traffic(/*seed=*/7, /*packets=*/3000);
  };

  struct Leg {
    noc::MeshRouting routing;
    noc::SelectionStrategy selection;
  };
  std::vector<Leg> legs;
  std::vector<core::NocScenario> scenarios;
  for (const auto routing :
       {noc::MeshRouting::kXY, noc::MeshRouting::kYX,
        noc::MeshRouting::kWestFirst, noc::MeshRouting::kNorthLast}) {
    for (const auto selection :
         {noc::SelectionStrategy::kFirstCandidate,
          noc::SelectionStrategy::kBufferLevel}) {
      auto topo = noc::Topology::mesh(4, 4);
      topo.set_mesh_routing(routing);
      noc::NocConfig config;
      config.buffer_depth = 2;
      config.selection = selection;
      legs.push_back({routing, selection});
      scenarios.push_back({std::move(topo), config, make_traffic()});
    }
  }
  const auto results =
      core::BatchNocEvaluator().run_all(std::move(scenarios));

  util::Table table({"routing", "selection", "avg latency (cycles)",
                     "max latency", "drain time (cycles)",
                     "link hotspot (max/mean)", "energy (uJ)"});
  for (std::size_t i = 0; i < legs.size(); ++i) {
    const auto& result = results[i];
    table.begin_row();
    table.cell(std::string(to_string(legs[i].routing)));
    table.cell(std::string(to_string(legs[i].selection)));
    table.cell(result.stats.latency_cycles.mean(), 1);
    table.cell(static_cast<std::size_t>(result.stats.max_latency_cycles));
    table.cell(static_cast<std::size_t>(result.stats.duration_cycles));
    table.cell(result.stats.link_hotspot_factor(), 2);
    table.cell(result.stats.global_energy_pj * 1e-6, 3);
  }
  std::cout << "=== Ablation: mesh routing algorithm x selection strategy "
               "(right-column hotspot) ===\n"
            << table.to_ascii() << '\n';
  std::cout << "Expected: adaptive turn models with buffer-level selection "
               "spread the hotspot over multiple columns, cutting average "
               "and tail latency vs deterministic XY; energy is nearly "
               "constant (minimal routes everywhere).\n";
  return 0;
}
