#include "snn/poisson.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace snnmap::snn {
namespace {

TEST(Poisson, TrainRateMatchesRequest) {
  util::Rng rng(5);
  const auto train = generate_poisson_train(50.0, 100000.0, rng);
  EXPECT_NEAR(mean_rate_hz(train, 100000.0), 50.0, 2.0);
}

TEST(Poisson, TrainIsSortedAndInRange) {
  util::Rng rng(6);
  const auto train = generate_poisson_train(30.0, 5000.0, rng);
  EXPECT_TRUE(is_valid_train(train));
  for (const double t : train) {
    EXPECT_GE(t, 0.0);
    EXPECT_LT(t, 5000.0);
  }
}

TEST(Poisson, ZeroRateOrDurationIsEmpty) {
  util::Rng rng(7);
  EXPECT_TRUE(generate_poisson_train(0.0, 1000.0, rng).empty());
  EXPECT_TRUE(generate_poisson_train(-5.0, 1000.0, rng).empty());
  EXPECT_TRUE(generate_poisson_train(10.0, 0.0, rng).empty());
}

TEST(Poisson, CvIsNearOne) {
  // The defining property of a Poisson process: exponential ISIs, CV ~ 1.
  util::Rng rng(8);
  const auto train = generate_poisson_train(40.0, 200000.0, rng);
  EXPECT_NEAR(isi_coefficient_of_variation(train), 1.0, 0.05);
}

TEST(Poisson, StepSpikingMatchesRate) {
  util::Rng rng(9);
  int spikes = 0;
  const int steps = 200000;
  for (int i = 0; i < steps; ++i) {
    spikes += poisson_step_spike(20.0, 1.0, rng) ? 1 : 0;
  }
  // 20 Hz -> p = 0.02 per 1 ms step.
  EXPECT_NEAR(spikes / static_cast<double>(steps), 0.02, 0.002);
}

TEST(Poisson, StepZeroRateNeverSpikes) {
  util::Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(poisson_step_spike(0.0, 1.0, rng));
    EXPECT_FALSE(poisson_step_spike(-10.0, 1.0, rng));
  }
}

TEST(Poisson, InhomogeneousFollowsEnvelope) {
  util::Rng rng(11);
  // Rate 0 in the first half, 100 Hz in the second half.
  const auto train = generate_inhomogeneous_train(
      [](double t) { return t < 5000.0 ? 0.0 : 100.0; }, 10000.0, 1.0, rng);
  std::size_t first_half = spikes_in_window(train, 0.0, 5000.0);
  std::size_t second_half = spikes_in_window(train, 5000.0, 10000.0);
  EXPECT_EQ(first_half, 0u);
  EXPECT_NEAR(static_cast<double>(second_half), 500.0, 75.0);
}

TEST(Poisson, DeterministicGivenSeed) {
  util::Rng a(42);
  util::Rng b(42);
  EXPECT_EQ(generate_poisson_train(25.0, 2000.0, a),
            generate_poisson_train(25.0, 2000.0, b));
}

}  // namespace
}  // namespace snnmap::snn
