#include "apps/edge_detection.hpp"

#include <gtest/gtest.h>

#include "apps/image_smoothing.hpp"

namespace snnmap::apps {
namespace {

TEST(EdgeDetection, TopologyShape) {
  EdgeDetectionConfig cfg;
  cfg.duration_ms = 100.0;
  const auto g = build_edge_detection(cfg);
  EXPECT_EQ(g.neuron_count(), 2048u);  // 1024 pixels + 1024 edge neurons
  // Center (3x3) + surround (5x5) kernels, border-clipped; edges between
  // the same pixel pair collapse, so the count is <= 25 per target.
  EXPECT_GT(g.edge_count(), 1024u * 9u);
  EXPECT_LE(g.edge_count(), 1024u * 25u);
}

TEST(EdgeDetection, RespondsToGradientsNotFlatRegions) {
  EdgeDetectionConfig cfg;
  cfg.seed = 4;
  cfg.duration_ms = 500.0;
  const auto g = build_edge_detection(cfg);
  const auto image = make_test_image(cfg.width, cfg.height, cfg.seed ^ 0xED6E);

  // Local intensity gradient magnitude per pixel.
  const auto gradient = [&](std::uint32_t x, std::uint32_t y) {
    const auto at = [&](int px, int py) {
      px = std::clamp(px, 0, 31);
      py = std::clamp(py, 0, 31);
      return image[static_cast<std::size_t>(py) * 32 + px];
    };
    const int xi = static_cast<int>(x);
    const int yi = static_cast<int>(y);
    // Max contrast against the 4-neighborhood: catches impulse (salt) noise
    // pixels, which are edges even though their central difference is ~0.
    const double self = at(xi, yi);
    return std::max({std::abs(self - at(xi + 1, yi)),
                     std::abs(self - at(xi - 1, yi)),
                     std::abs(self - at(xi, yi + 1)),
                     std::abs(self - at(xi, yi - 1))});
  };

  double edge_rate = 0.0;
  double flat_rate = 0.0;
  std::size_t edge_n = 0;
  std::size_t flat_n = 0;
  for (std::uint32_t y = 2; y < 30; ++y) {
    for (std::uint32_t x = 2; x < 30; ++x) {
      const auto idx = y * 32 + x;
      const double rate = static_cast<double>(g.spike_count(1024 + idx));
      if (gradient(x, y) > 0.25) {
        edge_rate += rate;
        ++edge_n;
      } else if (gradient(x, y) < 0.02) {
        flat_rate += rate;
        ++flat_n;
      }
    }
  }
  ASSERT_GT(edge_n, 0u);
  ASSERT_GT(flat_n, 0u);
  // Edge pixels fire clearly more than flat ones (the DoG's whole point):
  // at least twice the rate.
  EXPECT_GT(edge_rate / static_cast<double>(edge_n),
            2.0 * flat_rate / static_cast<double>(flat_n));
}

TEST(EdgeDetection, HasInhibitorySynapses) {
  EdgeDetectionConfig cfg;
  cfg.duration_ms = 50.0;
  const auto g = build_edge_detection(cfg);
  bool any_negative = false;
  bool any_positive = false;
  for (const auto& e : g.edges()) {
    any_negative |= e.weight < 0.0F;
    any_positive |= e.weight > 0.0F;
  }
  EXPECT_TRUE(any_negative);  // the surround
  EXPECT_TRUE(any_positive);  // the center
}

TEST(EdgeDetection, Deterministic) {
  EdgeDetectionConfig cfg;
  cfg.duration_ms = 100.0;
  cfg.seed = 8;
  const auto a = build_edge_detection(cfg);
  const auto b = build_edge_detection(cfg);
  EXPECT_EQ(a.total_spikes(), b.total_spikes());
}

}  // namespace
}  // namespace snnmap::apps
