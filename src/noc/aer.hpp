// Address Event Representation (AER) encoding — Sec. II / Fig. 2.
//
// "A spike is encoded uniquely on the global synapse interconnect in terms of
// its source and time of spike."  We pack (source neuron, source crossbar,
// emission cycle) into one 64-bit word: 20 bits neuron, 12 bits crossbar,
// 32 bits timestamp.  The packing is exercised end-to-end by the NoC
// simulator (every injected packet is encoded, every delivery decoded) so the
// protocol layer is genuinely on the hot path, as on real hardware.
#pragma once

#include <cstdint>

namespace snnmap::noc {

/// Field widths of the 64-bit AER word.
inline constexpr std::uint32_t kAerNeuronBits = 20;
inline constexpr std::uint32_t kAerCrossbarBits = 12;
inline constexpr std::uint32_t kAerTimeBits = 32;
inline constexpr std::uint32_t kAerMaxNeuron = (1u << kAerNeuronBits) - 1;
inline constexpr std::uint32_t kAerMaxCrossbar = (1u << kAerCrossbarBits) - 1;
/// One past the largest representable timestamp (2^32).
inline constexpr std::uint64_t kAerTimeWrap = std::uint64_t{1} << kAerTimeBits;

/// Decoded spike event.
///
/// Timestamp wrap contract: the on-wire timestamp field is the emission
/// cycle *modulo 2^32* (kAerTimeWrap).  Open-loop traces stay far below the
/// wrap, but closed-loop co-simulation (src/cosim/) runs cycle counts of
/// steps x cycles_per_timestep that can exceed 2^32, so encoders must fold
/// the cycle through aer_timestamp() rather than narrowing it ad hoc, and
/// decoders must treat equal timestamps from different wrap epochs as
/// ambiguous.  That ambiguity is harmless in this codebase: delivery
/// bookkeeping (latency, arrival steps) rides the simulator's native 64-bit
/// cycle counters, and the AER word is the hardware protocol payload only.
struct AerEvent {
  std::uint32_t source_neuron = 0;   ///< global neuron id (<= kAerMaxNeuron)
  std::uint32_t source_crossbar = 0; ///< crossbar id (<= kAerMaxCrossbar)
  std::uint32_t timestamp = 0;       ///< emission cycle mod 2^32
};

/// Folds a 64-bit simulator cycle into the 32-bit AER timestamp field
/// (cycle mod 2^32) — the only sanctioned narrowing of a cycle count.
inline constexpr std::uint32_t aer_timestamp(std::uint64_t cycle) noexcept {
  return static_cast<std::uint32_t>(cycle & (kAerTimeWrap - 1));
}

/// Encoded single-flit payload.
struct AerWord {
  std::uint64_t bits = 0;
  friend bool operator==(const AerWord&, const AerWord&) = default;
};

/// Packs an event; throws std::out_of_range if a field exceeds its width.
AerWord aer_encode(const AerEvent& event);

/// Unpacks a word (total: every 64-bit pattern decodes to some event).
AerEvent aer_decode(AerWord word) noexcept;

}  // namespace snnmap::noc
