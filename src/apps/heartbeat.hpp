// "heartbeat estimation" (HE) — Table I: unsupervised LSM (64, 16), after
// Das et al. 2017 ("Unsupervised heart-rate estimation in wearables with
// liquid states and a probabilistic readout").  A synthetic ECG (parametric
// PQRST waveform with a drifting RR interval and measurement noise — the
// substitution for proprietary wearable traces, see DESIGN.md) is
// delta-threshold encoded into input spike channels that drive a 64-neuron
// liquid (random recurrent 80/20 exc/inh); a 16-neuron readout integrates
// liquid activity.  The application is *temporally coded*: the readout's
// inter-spike intervals track the RR interval, which is why ISI distortion
// on the interconnect directly degrades estimation accuracy (Sec. V-B).
#pragma once

#include <cstdint>
#include <vector>

#include "snn/graph.hpp"
#include "snn/spike_train.hpp"

namespace snnmap::apps {

struct HeartbeatConfig {
  std::uint64_t seed = 1;
  double duration_ms = 3000.0;  ///< a few heartbeats
  double mean_rr_ms = 800.0;    ///< ~75 bpm
  double rr_jitter_ms = 40.0;   ///< beat-to-beat variability
  std::uint32_t liquid_size = 64;
  std::uint32_t readout_size = 16;
  std::uint32_t input_channels = 8;
  /// Threshold step of the crossing encoder.  Must sit well above the
  /// sensor-noise floor (sigma ~0.02) so only the PQRST excursions spike.
  double encoder_delta = 0.15;
};

/// Ground truth carried alongside the graph for accuracy evaluation.
struct HeartbeatGroundTruth {
  std::vector<double> r_peak_times_ms;
  double mean_rr_ms = 0.0;
  /// Global neuron ids of the readout group (their trains carry the rhythm).
  std::uint32_t readout_first = 0;
  std::uint32_t readout_count = 0;
};

/// Synthetic ECG sampled at 1 kHz: PQRST morphology, drifting RR, noise.
std::vector<double> make_ecg(const HeartbeatConfig& config,
                             std::vector<double>* r_peaks_ms = nullptr);

/// Delta/threshold-crossing encoder (the Lthr/Uthr automaton of Fig. 3 left):
/// emits a spike each time the signal leaves the [Lthr, Uthr] band, moving
/// the band.  Returns one spike train per channel (channels differ by
/// threshold phase).
std::vector<snn::SpikeTrain> encode_ecg(const std::vector<double>& ecg,
                                        std::uint32_t channels, double delta);

snn::SnnGraph build_heartbeat(const HeartbeatConfig& config = {},
                              HeartbeatGroundTruth* truth = nullptr);

/// The network the graph builder simulates (closed-loop co-simulation
/// entry point) and the simulation config that extraction uses.
snn::Network build_heartbeat_network(const HeartbeatConfig& config = {});
snn::SimulationConfig heartbeat_sim_config(const HeartbeatConfig& config = {});

/// Estimates the mean RR interval from a readout population spike train via
/// burst detection (gaps longer than `gap_ms` separate beats).
double estimate_mean_rr_ms(const snn::SpikeTrain& merged_readout,
                           double gap_ms = 200.0);

/// Relative heart-rate estimation error in percent.
double heart_rate_error_percent(double estimated_rr_ms, double true_rr_ms);

}  // namespace snnmap::apps
