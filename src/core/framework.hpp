// The systematic partitioning framework of Fig. 4:
//
//   application -> SNN simulation (snn::Simulator, CARLsim stand-in)
//               -> spike graph (snn::SnnGraph)
//               -> partitioner (PSO / PACMAN / NEUTRAMS / SA / GA)
//               -> placement (crossbar -> tile)
//               -> traffic trace -> Noxim++-style NoC simulation
//               -> SNN/hardware performance report.
//
// run_mapping_flow() is the one-call entry point used by the examples and
// every benchmark harness; the intermediate helpers are public so tests can
// exercise each stage in isolation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/annealing.hpp"
#include "core/cost.hpp"
#include "core/genetic.hpp"
#include "core/partition.hpp"
#include "core/placement.hpp"
#include "core/pso.hpp"
#include "hw/architecture.hpp"
#include "hw/energy_model.hpp"
#include "noc/simulator.hpp"
#include "snn/graph.hpp"

namespace snnmap::core {

/// Which partitioner the flow uses.
enum class PartitionerKind : std::uint8_t {
  kPso,       ///< the paper's contribution
  kPacman,    ///< SpiNNaker baseline
  kNeutrams,  ///< ad-hoc baseline
  kAnnealing, ///< ablation
  kGenetic,   ///< ablation
};

const char* to_string(PartitionerKind kind) noexcept;

struct MappingFlowConfig {
  hw::Architecture arch = hw::Architecture::cxquad();
  PartitionerKind partitioner = PartitionerKind::kPso;
  PsoConfig pso;
  AnnealingConfig annealing;
  GeneticConfig genetic;
  /// Interconnect settings.  noc.energy is the single source of truth for
  /// the energy model: the cost model, the NoC simulator and the
  /// co-simulator all read it from here (a separate flow-level copy used to
  /// shadow it and the two could silently diverge).
  noc::NocConfig noc;
  /// Mesh routing algorithm (ignored for tree/ring interconnects).
  noc::MeshRouting mesh_routing = noc::MeshRouting::kXY;
  /// Convenience view of the shared energy model (see noc.energy).
  const hw::EnergyModel& energy() const noexcept { return noc.energy; }
  /// Comm-aware placement (greedy swaps); identity when false (paper setup).
  bool comm_aware_placement = false;
  /// Spread same-millisecond injections over [0, jitter) cycles with a
  /// deterministic per-spike hash, modelling encoder serialization.
  std::uint32_t injection_jitter_cycles = 32;
  std::uint64_t seed = 42;
};

/// Everything the paper reports per (application, mapper) pair.
struct MappingReport {
  Partition partition;
  Placement placement;
  std::uint64_t global_spikes = 0;      ///< per-edge cut (Eq. 8, literal)
  std::uint64_t aer_packets = 0;        ///< AER packets (default objective)
  std::uint64_t local_events = 0;       ///< crossbar synaptic events
  std::uint64_t packets_offered = 0;    ///< multicast traffic events
  double global_energy_pj = 0.0;        ///< from the cycle-accurate NoC run
  double local_energy_pj = 0.0;
  double analytic_global_energy_pj = 0.0;
  noc::NocStats noc_stats;
  noc::SnnMetrics snn_metrics;

  double total_energy_pj() const noexcept {
    return global_energy_pj + local_energy_pj;
  }
  double total_energy_uj() const noexcept { return total_energy_pj() * 1e-6; }
};

/// Runs the configured partitioner; the returned partition is validated.
Partition run_partitioner(const snn::SnnGraph& graph,
                          const MappingFlowConfig& config);

/// Builds the AER traffic trace for a mapped SNN: one multicast event per
/// source-neuron spike whose fan-out leaves its crossbar.
std::vector<noc::SpikePacketEvent> build_traffic(
    const snn::SnnGraph& graph, const Partition& partition,
    const Placement& placement, std::uint32_t cycles_per_ms,
    std::uint32_t jitter_cycles);

/// Full Fig. 4 pipeline from an already-extracted spike graph.
MappingReport run_mapping_flow(const snn::SnnGraph& graph,
                               const MappingFlowConfig& config);

}  // namespace snnmap::core
