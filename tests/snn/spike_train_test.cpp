#include "snn/spike_train.hpp"

#include <gtest/gtest.h>

namespace snnmap::snn {
namespace {

TEST(SpikeTrain, ValidityChecks) {
  EXPECT_TRUE(is_valid_train({}));
  EXPECT_TRUE(is_valid_train({1.0}));
  EXPECT_TRUE(is_valid_train({1.0, 1.0, 2.0}));
  EXPECT_FALSE(is_valid_train({2.0, 1.0}));
  EXPECT_FALSE(is_valid_train({-1.0, 2.0}));
}

TEST(SpikeTrain, IsiOfShortTrainsIsEmpty) {
  EXPECT_TRUE(inter_spike_intervals({}).empty());
  EXPECT_TRUE(inter_spike_intervals({3.0}).empty());
}

TEST(SpikeTrain, IsiValues) {
  const auto isis = inter_spike_intervals({0.0, 10.0, 15.0, 35.0});
  ASSERT_EQ(isis.size(), 3u);
  EXPECT_DOUBLE_EQ(isis[0], 10.0);
  EXPECT_DOUBLE_EQ(isis[1], 5.0);
  EXPECT_DOUBLE_EQ(isis[2], 20.0);
}

TEST(SpikeTrain, MeanRate) {
  EXPECT_DOUBLE_EQ(mean_rate_hz({0.0, 100.0, 200.0, 300.0, 400.0}, 1000.0),
                   5.0);
  EXPECT_DOUBLE_EQ(mean_rate_hz({}, 1000.0), 0.0);
  EXPECT_DOUBLE_EQ(mean_rate_hz({1.0}, 0.0), 0.0);
}

TEST(SpikeTrain, WindowCounting) {
  const SpikeTrain t{1.0, 2.0, 3.0, 10.0, 20.0};
  EXPECT_EQ(spikes_in_window(t, 0.0, 5.0), 3u);
  EXPECT_EQ(spikes_in_window(t, 2.0, 10.0), 2u);  // [2, 10): 2, 3
  EXPECT_EQ(spikes_in_window(t, 10.0, 21.0), 2u);
  EXPECT_EQ(spikes_in_window(t, 50.0, 60.0), 0u);
  EXPECT_EQ(spikes_in_window(t, 5.0, 5.0), 0u);
}

TEST(SpikeTrain, CvOfRegularTrainIsZero) {
  SpikeTrain regular;
  for (int i = 0; i < 50; ++i) regular.push_back(i * 10.0);
  EXPECT_NEAR(isi_coefficient_of_variation(regular), 0.0, 1e-12);
}

TEST(SpikeTrain, CvUndefinedCases) {
  EXPECT_EQ(isi_coefficient_of_variation({}), 0.0);
  EXPECT_EQ(isi_coefficient_of_variation({1.0, 2.0}), 0.0);  // single ISI
}

TEST(SpikeTrain, MergeKeepsOrderAndSize) {
  const SpikeTrain a{1.0, 5.0, 9.0};
  const SpikeTrain b{2.0, 5.0, 8.0};
  const SpikeTrain merged = merge_trains(a, b);
  ASSERT_EQ(merged.size(), 6u);
  EXPECT_TRUE(is_valid_train(merged));
  EXPECT_DOUBLE_EQ(merged.front(), 1.0);
  EXPECT_DOUBLE_EQ(merged.back(), 9.0);
}

TEST(SpikeTrain, MergeWithEmpty) {
  const SpikeTrain a{1.0, 2.0};
  EXPECT_EQ(merge_trains(a, {}), a);
  EXPECT_EQ(merge_trains({}, a), a);
}

TEST(SpikeTrain, CountDistance) {
  EXPECT_EQ(spike_count_distance({1.0, 2.0}, {1.0}), 1u);
  EXPECT_EQ(spike_count_distance({1.0}, {1.0, 2.0, 3.0}), 2u);
  EXPECT_EQ(spike_count_distance({}, {}), 0u);
}

}  // namespace
}  // namespace snnmap::snn
