// "handwritten digit" (HD) — Table I: unsupervised, recurrent (250, 250),
// after Diehl & Cook 2015.  A 28x28 synthetic digit image is rate-coded by
// 784 Poisson inputs; 250 excitatory Izhikevich neurons learn with STDP;
// each excitatory neuron drives a paired inhibitory neuron one-to-one, and
// the inhibitory population projects lateral inhibition back onto all other
// excitatory neurons (winner-take-all dynamics).
//
// Substitution note (see DESIGN.md): MNIST is replaced by procedural digit
// stroke images — same dimensionality and coding, no dataset dependency.
#pragma once

#include <cstdint>
#include <vector>

#include "snn/graph.hpp"
#include "snn/network.hpp"
#include "snn/simulator.hpp"

namespace snnmap::apps {

struct DigitRecognitionConfig {
  std::uint64_t seed = 1;
  double duration_ms = 350.0;  ///< presentation of one digit image
  std::uint32_t excitatory = 250;
  std::uint32_t inhibitory = 250;
  /// Input->excitatory connection probability (Diehl & Cook use full
  /// connectivity; 0.5 keeps the edge count tractable at equal topology
  /// character — documented substitution).
  double input_connectivity = 0.5;
  bool train_stdp = true;
  int digit = 3;  ///< which synthetic digit (0-9) is presented
  double max_rate_hz = 63.75;  ///< Diehl & Cook's peak pixel rate
};

/// Procedural 28x28 "digit" — a few strokes characteristic of the class,
/// intensity in [0,1].
std::vector<double> make_digit_image(int digit, std::uint64_t seed);

snn::SnnGraph build_digit_recognition(const DigitRecognitionConfig& config = {});

/// The network the graph builder simulates (closed-loop co-simulation
/// entry point) and the simulation config that extraction uses.  Note the
/// plastic input->excitatory projection: a co-simulation mapping must keep
/// it crossbar-local or disable train_stdp — the engine rejects cut
/// plastic synapses while STDP is enabled (snnmap_cli --cosim falls back
/// to STDP-off automatically).
snn::Network build_digit_recognition_network(
    const DigitRecognitionConfig& config = {});
snn::SimulationConfig digit_recognition_sim_config(
    const DigitRecognitionConfig& config = {});

}  // namespace snnmap::apps
