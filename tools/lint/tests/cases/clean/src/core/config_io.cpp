// Fixture: consistent read/write key sets, fully covered by the test file.
#include "core/config_io.hpp"

namespace fixture {

void from_config(const Config& config, Flow& flow) {
  flow.depth = config.int_or("noc.buffer_depth", flow.depth);
  flow.rate = config.double_or("faults.link_fault_rate", flow.rate);
}

void to_config(const Flow& flow, Config& config) {
  config.set("noc.buffer_depth", std::to_string(flow.depth));
  config.set("faults.link_fault_rate", std::to_string(flow.rate));
}

}  // namespace fixture
