// Deterministic fault injection for the interconnect fabric.
//
// Real neuromorphic multi-chip deployments lose links, routers and whole
// tiles; the mapping-quality story must survive a degraded substrate.  This
// layer generates a *seeded, cycle-scheduled* fault timeline — permanent and
// transient link failures, router failures (the attached tile goes silent
// with its router), tile failures (the crossbar's NoC interface dies, the
// fabric keeps routing around it), and a per-traversal flit-drop
// probability — and exposes live liveness masks the NocSimulator consults
// in its cycle loop.
//
// Determinism contract: the whole fault timeline is a pure function of
// (topology, FaultConfig) — category-forked util::Rng streams, canonical
// link/router/tile iteration order — and it is rebuilt by every
// NocSimulator::begin(), so one-shot runs, windowed sessions and parallel
// batch scenarios observe bit-identical fault sequences.  With a
// default-constructed FaultConfig the model is inert and the simulator's
// fault branches are never taken, preserving the zero-fault golden streams
// bit for bit.
#pragma once

#include <cstdint>
#include <vector>

#include "noc/topology.hpp"
#include "util/rng.hpp"

namespace snnmap::noc {

/// One explicitly scheduled fault (on top of the seeded random ones).
struct ScheduledFault {
  enum class Kind : std::uint8_t { kLink, kRouter, kTile };
  Kind kind = Kind::kLink;
  /// kLink / kRouter: the router; kTile: ignored.
  RouterId router = 0;
  /// kLink only: the failing inter-router port of `router` (the reverse
  /// direction fails with it — a broken wire carries nothing either way).
  PortId port = 0;
  /// kTile only: the failing tile.
  TileId tile = 0;
  std::uint64_t start_cycle = 0;
  /// 0 = permanent; otherwise the fault heals after this many cycles.
  std::uint64_t duration_cycles = 0;
};

/// Seeded fault-injection settings.  Defaults are all-zero: no faults, no
/// drops — the inert config every existing run uses implicitly.
struct FaultConfig {
  std::uint64_t seed = 0;
  /// Probability that a given bidirectional link suffers one *permanent*
  /// failure within [0, horizon_cycles); in [0, 1].
  double link_fault_rate = 0.0;
  /// Probability that a given router dies permanently within the horizon
  /// (its attached tile goes silent with it); in [0, 1].
  double router_fault_rate = 0.0;
  /// Probability that a given tile's NoC interface dies permanently within
  /// the horizon (the fabric still routes *through* its router); in [0, 1].
  double tile_fault_rate = 0.0;
  /// Probability that a given link suffers one *transient* outage within
  /// the horizon, healing after transient_duration_cycles; in [0, 1].
  double transient_link_rate = 0.0;
  std::uint64_t transient_duration_cycles = 1000;
  /// Per link-traversal probability that a flit copy is lost on the wire;
  /// in [0, 1).  1.0 is rejected: a fabric that drops every flit cannot
  /// deliver anything, which is a dead config, not a fault model.
  double flit_drop_probability = 0.0;
  /// Span of virtual time the random faults are scheduled over.  Required
  /// (> 0) whenever any rate above is > 0; the co-simulator auto-fills it
  /// with its lockstep timeline (steps x cycles_per_timestep).
  std::uint64_t horizon_cycles = 0;
  /// Explicit faults, applied in addition to the seeded random ones.
  std::vector<ScheduledFault> scheduled;

  /// True when any fault source is configured (rates, drops, or scheduled
  /// entries) — the simulator's gate for every fault branch.
  bool any() const noexcept;

  /// Throws std::invalid_argument on degenerate values: NaN/inf/negative
  /// rates, rates above 1, drop probability outside [0, 1), rates > 0 with
  /// horizon_cycles == 0, or transient faults with a zero duration
  /// (parity with hw::EnergyModel::validate()).
  void validate() const;
};

/// What one FaultModel::advance_to() call changed (the simulator purges
/// dead routers' queues and re-prunes buffered flits exactly when
/// `changed`).
struct FaultTransitions {
  bool changed = false;
  std::uint64_t link_downs = 0;    ///< bidirectional links newly failed
  std::uint64_t link_ups = 0;      ///< transient links healed
  std::uint64_t router_downs = 0;
  std::uint64_t tile_downs = 0;    ///< direct tile faults (router deaths add
                                   ///< their tile separately)
  std::vector<RouterId> died_routers;  ///< alive -> dead this call
  std::vector<TileId> died_tiles;      ///< alive -> dead (incl. router tiles)
};

/// The live fault state of one fabric: a sorted transition timeline plus
/// per-resource down-counters (a resource hit by overlapping faults stays
/// dead until every one of them heals).
class FaultModel {
 public:
  /// Inert model: everything live, nothing scheduled, no drops.
  FaultModel() = default;

  /// Builds the deterministic timeline.  `config` must already be
  /// validate()d (the NocSimulator constructor does).  Scheduled faults
  /// referencing out-of-range routers/ports/tiles throw
  /// std::invalid_argument here.
  FaultModel(const Topology& topology, const FaultConfig& config);

  /// True when the timeline is non-empty or drops are enabled.
  bool active() const noexcept {
    return !events_.empty() || drop_probability_ > 0.0;
  }

  /// Cycle of the next unapplied transition; ~0 when none remain.
  std::uint64_t next_transition_cycle() const noexcept {
    return next_event_ < events_.size() ? events_[next_event_].cycle
                                        : static_cast<std::uint64_t>(-1);
  }

  /// Applies every transition with cycle <= now, in timeline order.
  void advance_to(std::uint64_t now, FaultTransitions& out);

  /// Liveness by *global port index* (the simulator's port_base_[r] + p
  /// flattening; this model builds the identical prefix sums).
  bool link_live(std::uint32_t global_port) const noexcept {
    return link_down_[global_port] == 0;
  }
  bool router_live(RouterId router) const noexcept {
    return router_down_[router] == 0;
  }
  bool tile_live(TileId tile) const noexcept {
    return tile_down_[tile] == 0;
  }

  double drop_probability() const noexcept { return drop_probability_; }
  /// One Bernoulli draw from the dedicated drop stream.  Call only when
  /// drop_probability() > 0 so the draw sequence is a pure function of the
  /// (deterministic) sequence of link traversals.
  bool draw_drop() noexcept { return drop_rng_.chance(drop_probability_); }

  /// Total transitions in the timeline (applied or not).
  std::size_t event_count() const noexcept { return events_.size(); }

  enum class Change : std::uint8_t {
    kLinkDown,
    kLinkUp,
    kRouterDown,
    kRouterUp,
    kTileDown,
    kTileUp,
  };

  /// Read-only visit of the whole scheduled timeline, in order, applied or
  /// not: f(cycle, change, a, b) — kLink*: a/b are the two directed global
  /// port indices of the bidirectional link; kRouter*/kTile*: a is the
  /// router/tile id.  The observability tracer records the fault schedule
  /// from this at session begin (scheduled cycles are chunking-invariant;
  /// the cycle an idle fabric happens to *apply* a batch of transitions at
  /// is not).
  template <typename F>
  void for_each_event(F&& f) const {
    for (const Event& e : events_) f(e.cycle, e.change, e.a, e.b);
  }

 private:
  struct Event {
    std::uint64_t cycle = 0;
    Change change = Change::kLinkDown;
    /// kLink*: the two directed global port indices of the bidirectional
    /// link; kRouter*/kTile*: a = router/tile id, b unused.
    std::uint32_t a = 0;
    std::uint32_t b = 0;
  };

  void push_link_fault(std::uint32_t ga, std::uint32_t gb,
                       std::uint64_t start, std::uint64_t duration);
  void push_router_fault(RouterId router, std::uint64_t start,
                         std::uint64_t duration);
  void push_tile_fault(TileId tile, std::uint64_t start,
                       std::uint64_t duration);

  std::vector<Event> events_;  // sorted by cycle (stable: generation order)
  std::size_t next_event_ = 0;
  // Down-counters, not booleans: overlapping faults on one resource must
  // all heal before it revives.
  std::vector<std::uint16_t> link_down_;    // per directed global port
  std::vector<std::uint16_t> router_down_;  // per router
  std::vector<std::uint16_t> tile_down_;    // per tile
  std::vector<TileId> router_tile_;         // router -> tile or kNoRouter
  double drop_probability_ = 0.0;
  util::Rng drop_rng_{0};
};

}  // namespace snnmap::noc
