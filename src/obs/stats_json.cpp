#include "obs/stats_json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/stats.hpp"

namespace snnmap::obs {
namespace {

/// JSON has no NaN/inf; degenerate doubles serialize as null.
void json_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

/// Comma-managed JSON object scope.
class Obj {
 public:
  explicit Obj(std::ostream& os) : os_(os) { os_ << "{"; }
  ~Obj() { os_ << "}"; }
  Obj(const Obj&) = delete;
  Obj& operator=(const Obj&) = delete;

  std::ostream& key(const char* k) {
    if (!first_) os_ << ",";
    first_ = false;
    os_ << "\"" << k << "\":";
    return os_;
  }
  void u64(const char* k, std::uint64_t v) { key(k) << v; }
  void num(const char* k, double v) { json_double(key(k), v); }
  void boolean(const char* k, bool v) { key(k) << (v ? "true" : "false"); }

 private:
  std::ostream& os_;
  bool first_ = true;
};

void accumulator_json(std::ostream& os, const util::Accumulator& a) {
  Obj o(os);
  o.u64("count", a.count());
  o.num("mean", a.mean());
  o.num("stddev", a.stddev());
  o.num("min", a.min());
  o.num("max", a.max());
  o.num("sum", a.sum());
}

void fault_stats_json(std::ostream& os, const noc::FaultStats& f) {
  Obj o(os);
  o.u64("link_faults", f.link_faults);
  o.u64("router_faults", f.router_faults);
  o.u64("tile_faults", f.tile_faults);
  o.u64("links_restored", f.links_restored);
  o.u64("reroutes", f.reroutes);
  o.u64("flits_dropped", f.flits_dropped);
  o.u64("copies_dropped", f.copies_dropped);
  o.u64("copies_killed", f.copies_killed);
  o.u64("copies_unroutable", f.copies_unroutable);
  o.u64("copies_blocked_at_source", f.copies_blocked_at_source);
  o.u64("packets_blocked", f.packets_blocked);
  o.u64("copies_stranded", f.copies_stranded);
  o.u64("copies_lost", f.copies_lost());
}

}  // namespace

void write_json(std::ostream& os, const noc::NocStats& stats) {
  Obj o(os);
  o.u64("packets_injected", stats.packets_injected);
  o.u64("flits_injected", stats.flits_injected);
  o.u64("copies_delivered", stats.copies_delivered);
  o.u64("link_hops", stats.link_hops);
  o.u64("offchip_link_hops", stats.offchip_link_hops);
  o.u64("router_traversals", stats.router_traversals);
  o.num("global_energy_pj", stats.global_energy_pj);
  accumulator_json(o.key("latency_cycles"), stats.latency_cycles);
  o.u64("max_latency_cycles", stats.max_latency_cycles);
  o.u64("duration_cycles", stats.duration_cycles);
  o.boolean("drained", stats.drained);
  o.u64("max_link_flits", stats.max_link_flits());
  o.num("mean_link_flits", stats.mean_link_flits());
  o.num("link_hotspot_factor", stats.link_hotspot_factor());
  fault_stats_json(o.key("fault"), stats.fault);
  std::ostream& links = o.key("link_flits");
  links << "[";
  for (std::size_t i = 0; i < stats.link_flits.size(); ++i) {
    if (i != 0) links << ",";
    const auto [key, flits] = stats.link_flits[i];
    links << "[" << (key >> 32) << "," << (key & 0xffffffffULL) << ","
          << flits << "]";
  }
  links << "]";
}

void write_json(std::ostream& os, const cosim::FidelityReport& fidelity) {
  Obj o(os);
  o.u64("steps", fidelity.steps);
  o.u64("total_spikes", fidelity.total_spikes);
  o.u64("packets_offered", fidelity.packets_offered);
  o.u64("copies_offered", fidelity.copies_offered);
  o.u64("copies_arrived", fidelity.copies_arrived);
  o.u64("copies_accepted", fidelity.copies_accepted);
  o.u64("receive_drops", fidelity.receive_drops);
  o.u64("undelivered", fidelity.undelivered);
  o.u64("deadline_misses", fidelity.deadline_misses);
  o.num("miss_fraction", fidelity.miss_fraction());
  o.num("drop_fraction", fidelity.drop_fraction());
  accumulator_json(o.key("transit_cycles"), fidelity.transit_cycles);
  o.num("fabric_energy_pj", fidelity.fabric_energy_pj);
  o.num("energy_delay_product", fidelity.energy_delay_product());
  accumulator_json(o.key("window_energy_pj"), fidelity.window_energy_pj);
  accumulator_json(o.key("freq_scale"), fidelity.freq_scale);
  write_json(o.key("congestion"), fidelity.congestion);
}

void write_json(std::ostream& os, const cosim::ResilienceReport& resilience) {
  Obj o(os);
  fault_stats_json(o.key("noc_faults"), resilience.noc_faults);
  o.u64("retransmit_packets", resilience.retransmit_packets);
  o.u64("retransmit_copies", resilience.retransmit_copies);
  o.u64("retry_recoveries", resilience.retry_recoveries);
  o.u64("spikes_lost_timeout", resilience.spikes_lost_timeout);
  o.u64("stale_arrivals", resilience.stale_arrivals);
  o.u64("duplicate_arrivals", resilience.duplicate_arrivals);
  o.u64("pending_at_end", resilience.pending_at_end);
  o.num("retransmit_energy_pj", resilience.retransmit_energy_pj);
  o.u64("remap_events", resilience.remap_events);
  o.u64("neurons_migrated", resilience.neurons_migrated);
  o.u64("neurons_stranded", resilience.neurons_stranded);
}

void write_json(std::ostream& os, const CongestionReport& congestion) {
  Obj o(os);
  o.boolean("monitored", congestion.monitored);
  o.u64("windows_observed", congestion.windows_observed);
  o.u64("links_tracked", congestion.links_tracked);
  o.u64("links_ever_hot", congestion.links_ever_hot);
  o.u64("hot_links", congestion.hot_links);
  o.num("max_ewma_occupancy", congestion.max_ewma_occupancy);
  std::ostream& hot = o.key("hot");
  hot << "[";
  for (std::size_t i = 0; i < congestion.hot.size(); ++i) {
    if (i != 0) hot << ",";
    const HotLink& h = congestion.hot[i];
    Obj ho(hot);
    ho.u64("link", h.link);
    ho.u64("from_router", h.from_router);
    ho.u64("to_router", h.to_router);
    ho.num("ewma_occupancy", h.ewma_occupancy);
    ho.u64("hot_streak", h.hot_streak);
  }
  hot << "]";
}

void write_json(std::ostream& os, const MetricsSnapshot& metrics) {
  Obj o(os);
  for (const MetricSample& s : metrics.samples) {
    std::ostream& entry = o.key(s.name.c_str());
    Obj so(entry);
    so.key("kind") << "\"" << to_string(s.kind) << "\"";
    so.u64("value", s.value);
    if (s.kind == MetricKind::kHistogram) {
      so.u64("sum", s.hist.sum);
      std::ostream& bounds = so.key("bounds");
      bounds << "[";
      for (std::size_t i = 0; i < s.hist.bounds.size(); ++i) {
        if (i != 0) bounds << ",";
        bounds << s.hist.bounds[i];
      }
      bounds << "]";
      std::ostream& counts = so.key("counts");
      counts << "[";
      for (std::size_t i = 0; i < s.hist.counts.size(); ++i) {
        if (i != 0) counts << ",";
        counts << s.hist.counts[i];
      }
      counts << "]";
    }
  }
}

}  // namespace snnmap::obs
