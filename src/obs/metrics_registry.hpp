// Named integer metrics: counters, gauges, and fixed-bucket histograms
// with a sorted snapshot API.
//
// The registry is deliberately kept off the simulators' cycle hot path:
// NocSimulator registers its instruments once at construction and
// *publishes* into them at window boundaries (close_energy_window) and at
// finish() — O(instruments) per boundary, zero cost per cycle.  Everything
// is plain integers, so a snapshot is a pure function of the simulated
// activity and bit-identical across engines, chunkings, and batch threads.
//
// Naming convention (README "Observability"): dotted lowercase paths,
// subsystem first — e.g. "noc.flits_injected", "noc.window.peak_link_flits".
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace snnmap::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

const char* to_string(MetricKind kind) noexcept;

/// Point-in-time copy of one histogram: counts[i] holds observations with
/// value <= bounds[i] (first matching bucket); counts.back() is the
/// implicit +inf overflow bucket, so counts.size() == bounds.size() + 1.
struct HistogramSnapshot {
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t total = 0;  ///< observations
  std::uint64_t sum = 0;    ///< sum of observed values
};

/// One instrument in a snapshot.  `value` is the counter/gauge value
/// (histograms report total observations there; the full distribution is
/// in `hist`).
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;
  HistogramSnapshot hist;  ///< empty unless kind == kHistogram
};

/// All instruments at one point in time, sorted by name.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// The sample named `name`, or nullptr.  O(log n).
  const MetricSample* find(const std::string& name) const noexcept;
};

class MetricsRegistry {
 public:
  using Id = std::uint32_t;

  /// Register (or look up) an instrument.  Re-registering an existing name
  /// with a different kind — or a histogram with different bounds — throws
  /// std::invalid_argument; re-registering identically returns the same id.
  Id counter(const std::string& name);
  Id gauge(const std::string& name);
  /// `bounds` must be non-empty and strictly increasing (bucket upper
  /// bounds; an implicit +inf bucket catches the rest).
  Id histogram(const std::string& name, std::vector<std::uint64_t> bounds);

  /// Counter: monotonic accumulate.
  void add(Id id, std::uint64_t delta = 1);
  /// Gauge: last-write-wins level.
  void set(Id id, std::uint64_t value);
  /// Histogram: bucket one observation.
  void observe(Id id, std::uint64_t value);

  std::uint64_t value(Id id) const;

  /// Zeroes every value (registrations survive) — session reset.
  void reset_values();

  std::size_t size() const noexcept { return entries_.size(); }
  MetricsSnapshot snapshot() const;

 private:
  struct Entry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::uint64_t value = 0;  // counter/gauge value; histogram observation #
    std::uint64_t sum = 0;    // histogram only
    std::vector<std::uint64_t> bounds;  // histogram only
    std::vector<std::uint64_t> counts;  // histogram only; bounds.size() + 1
  };

  Id intern(const std::string& name, MetricKind kind);
  Entry& checked(Id id, MetricKind kind, const char* op);

  std::vector<Entry> entries_;  // id = index, registration order
};

}  // namespace snnmap::obs
