#include "snn/neuron.hpp"

namespace snnmap::snn {

const char* to_string(NeuronModel model) noexcept {
  switch (model) {
    case NeuronModel::kLif: return "lif";
    case NeuronModel::kIzhikevich: return "izhikevich";
    case NeuronModel::kPoisson: return "poisson";
  }
  return "?";
}

NeuronState initial_state(NeuronModel model, const LifParams& lif,
                          const IzhikevichParams& izh) noexcept {
  NeuronState s;
  switch (model) {
    case NeuronModel::kLif:
      s.v = lif.v_rest;
      s.u = 0.0;
      break;
    case NeuronModel::kIzhikevich:
      s.v = izh.c;
      s.u = izh.b * izh.c;
      break;
    case NeuronModel::kPoisson:
      s.v = 0.0;
      s.u = 0.0;
      break;
  }
  return s;
}

}  // namespace snnmap::snn
