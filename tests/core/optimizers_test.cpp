#include <gtest/gtest.h>

#include "core/annealing.hpp"
#include "core/cost.hpp"
#include "core/genetic.hpp"
#include "core/pacman.hpp"
#include "snn/graph.hpp"

namespace snnmap::core {
namespace {

/// Interleaved two-clique graph (see pso_test) — optimal cut is 0.
snn::SnnGraph interleaved_cliques() {
  std::vector<snn::GraphEdge> edges;
  for (std::uint32_t parity = 0; parity < 2; ++parity) {
    for (std::uint32_t a = parity; a < 12; a += 2) {
      for (std::uint32_t b = parity; b < 12; b += 2) {
        if (a != b) edges.push_back({a, b, 1.0F});
      }
    }
  }
  std::vector<snn::SpikeTrain> trains(12, snn::SpikeTrain{1.0, 2.0});
  return snn::SnnGraph::from_parts(12, std::move(edges), std::move(trains),
                                   10.0);
}

hw::Architecture arch_2x6() {
  hw::Architecture arch;
  arch.crossbar_count = 2;
  arch.neurons_per_crossbar = 6;
  return arch;
}

TEST(Annealing, ImprovesOnPacmanStart) {
  const auto g = interleaved_cliques();
  const CostModel cost(g);
  const auto start_cost =
      cost.multicast_packet_count(pacman_partition(g, arch_2x6()));
  AnnealingConfig config;
  config.moves = 20000;
  config.seed = 3;
  const auto result = annealing_partition(g, arch_2x6(), config);
  EXPECT_LE(result.best_cost, start_cost);
  EXPECT_EQ(result.best_cost, 0u);  // separable
  EXPECT_NO_THROW(result.best.validate(arch_2x6()));
}

TEST(Annealing, ReportedCostMatchesPartition) {
  const auto g = interleaved_cliques();
  const CostModel cost(g);
  for (const auto objective :
       {Objective::kAerPackets, Objective::kCutSpikes}) {
    AnnealingConfig config;
    config.moves = 5000;
    config.objective = objective;
    const auto result = annealing_partition(g, arch_2x6(), config);
    EXPECT_EQ(cost.objective_cost(result.best.assignment(), objective),
              result.best_cost)
        << to_string(objective);
  }
}

TEST(Annealing, RespectsCapacityThroughout) {
  const auto g = interleaved_cliques();
  hw::Architecture tight;
  tight.crossbar_count = 3;
  tight.neurons_per_crossbar = 4;
  AnnealingConfig config;
  config.moves = 10000;
  const auto result = annealing_partition(g, tight, config);
  EXPECT_NO_THROW(result.best.validate(tight));
}

TEST(Annealing, DeterministicForSameSeed) {
  const auto g = interleaved_cliques();
  AnnealingConfig config;
  config.moves = 3000;
  config.seed = 11;
  const auto a = annealing_partition(g, arch_2x6(), config);
  const auto b = annealing_partition(g, arch_2x6(), config);
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.moves_accepted, b.moves_accepted);
}

TEST(Annealing, TracksHistoryWhenAsked) {
  const auto g = interleaved_cliques();
  AnnealingConfig config;
  config.moves = 2000;
  config.track_history = true;
  const auto result = annealing_partition(g, arch_2x6(), config);
  EXPECT_FALSE(result.history.empty());
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_LE(result.history[i], result.history[i - 1]);
  }
}

TEST(Genetic, SolvesSeparableGraphOnCutObjective) {
  // The cut objective has a fine-grained gradient (every cross edge counts),
  // which the GA's selection pressure can follow to the separable optimum.
  const auto g = interleaved_cliques();
  GeneticConfig config;
  config.population = 40;
  config.generations = 60;
  config.seed = 7;
  config.objective = Objective::kCutSpikes;
  const auto result = genetic_partition(g, arch_2x6(), config);
  EXPECT_EQ(result.best_cost, 0u);
  EXPECT_NO_THROW(result.best.validate(arch_2x6()));
}

TEST(Genetic, AerObjectiveStaysWithinBaselineBound) {
  // The AER-packet landscape is plateau-heavy (a clique spread over two
  // crossbars costs the same however its members are arranged), so the GA
  // is only required to match its seeds and remain feasible.
  const auto g = interleaved_cliques();
  const CostModel cost(g);
  GeneticConfig config;
  config.population = 40;
  config.generations = 60;
  config.seed = 7;
  const auto result = genetic_partition(g, arch_2x6(), config);
  EXPECT_LE(result.best_cost,
            cost.multicast_packet_count(pacman_partition(g, arch_2x6())));
  EXPECT_NO_THROW(result.best.validate(arch_2x6()));
}

TEST(Genetic, SeedingBoundsCost) {
  const auto g = interleaved_cliques();
  const CostModel cost(g);
  const auto pacman_cost =
      cost.global_spike_count(pacman_partition(g, arch_2x6()));
  GeneticConfig config;
  config.population = 10;
  config.generations = 2;
  config.seed_with_baselines = true;
  const auto result = genetic_partition(g, arch_2x6(), config);
  EXPECT_LE(result.best_cost, pacman_cost);
}

TEST(Genetic, RejectsBadConfig) {
  const auto g = interleaved_cliques();
  GeneticConfig config;
  config.population = 1;
  EXPECT_THROW(genetic_partition(g, arch_2x6(), config),
               std::invalid_argument);
  hw::Architecture tiny;
  tiny.crossbar_count = 1;
  tiny.neurons_per_crossbar = 2;
  EXPECT_THROW(genetic_partition(g, tiny, {}), std::invalid_argument);
}

TEST(Genetic, DeterministicForSameSeed) {
  const auto g = interleaved_cliques();
  GeneticConfig config;
  config.population = 16;
  config.generations = 10;
  config.seed = 21;
  const auto a = genetic_partition(g, arch_2x6(), config);
  const auto b = genetic_partition(g, arch_2x6(), config);
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.best, b.best);
}

TEST(Genetic, HistoryMonotone) {
  const auto g = interleaved_cliques();
  GeneticConfig config;
  config.population = 16;
  config.generations = 20;
  config.track_history = true;
  const auto result = genetic_partition(g, arch_2x6(), config);
  ASSERT_EQ(result.history.size(), 20u);
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_LE(result.history[i], result.history[i - 1]);
  }
}

}  // namespace
}  // namespace snnmap::core
