#!/usr/bin/env python3
"""Benchmark regression gate over the committed BENCH_*.json trajectories.

Compares a freshly-measured set of Google Benchmark JSON files against the
committed copies at the repo root and fails (exit 1) when any throughput
counter regresses by more than the tolerance (default 15%).

    scripts/bench_gate.py --fresh-dir DIR [--fresh-dir DIR2 ...]
                          [--committed-dir DIR] [--tolerance 0.15]
                          [--file BENCH_noc.json ...]

Passing --fresh-dir more than once merges the measurement attempts,
keeping the best (largest) value per counter: on a shared VM whose
effective clock swings between runs, a counter only regresses if *every*
attempt is slow — a genuinely slower binary still fails all attempts.

Gated quantities, per benchmark entry (matched by its full "name", so every
Arg/DenseRange leg is gated independently):

  * items_per_second            — the suite's primary throughput number
  * every counter ending in `_per_sec` — the named rate counters
    (cycles_per_sec, delivered_per_sec, events_per_sec, ...)

All gated quantities are rates (bigger is better); non-rate counters
(copies_lost, trace_recorded, ...) are diagnostics and never gated.  A
benchmark present in the committed file but missing from the fresh run
fails the gate: a silently dropped leg must not pass as "no regression".
Counters new in the fresh run (absent from the committed baseline) pass —
they become gated once the baseline is re-recorded.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

DEFAULT_FILES = [
    "BENCH_noc.json",
    "BENCH_snn.json",
    "BENCH_cosim.json",
    "BENCH_energy.json",
    "BENCH_faults.json",
    "BENCH_obs.json",
]


def load_benchmarks(path: str) -> dict[str, dict]:
    """Map benchmark name -> entry for a Google Benchmark JSON file."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    out: dict[str, dict] = {}
    for entry in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of --benchmark_repetitions);
        # the plain rows carry the per-run rates we gate.
        if entry.get("run_type") == "aggregate":
            continue
        out[entry["name"]] = entry
    return out


def gated_rates(entry: dict) -> dict[str, float]:
    """The bigger-is-better rate counters of one benchmark entry."""
    rates: dict[str, float] = {}
    if isinstance(entry.get("items_per_second"), (int, float)):
        rates["items_per_second"] = float(entry["items_per_second"])
    for key, value in entry.items():
        if key.endswith("_per_sec") and isinstance(value, (int, float)):
            rates[key] = float(value)
    return rates


def best_fresh_rates(fresh_paths: list[str]) -> dict[str, dict[str, float]]:
    """name -> counter -> best value across every existing fresh file."""
    best: dict[str, dict[str, float]] = {}
    for path in fresh_paths:
        if not os.path.exists(path):
            continue
        for name, entry in load_benchmarks(path).items():
            rates = best.setdefault(name, {})
            for counter, value in gated_rates(entry).items():
                if value > rates.get(counter, float("-inf")):
                    rates[counter] = value
    return best


def check_file(committed_path: str, fresh_paths: list[str],
               tolerance: float) -> list[str]:
    """Return a list of failure messages for one BENCH_*.json baseline."""
    failures: list[str] = []
    committed = load_benchmarks(committed_path)
    if not any(os.path.exists(p) for p in fresh_paths):
        return [f"{os.path.basename(committed_path)}: fresh results missing"]
    fresh = best_fresh_rates(fresh_paths)
    base = os.path.basename(committed_path)
    for name, old_entry in sorted(committed.items()):
        new_rates = fresh.get(name)
        if new_rates is None:
            failures.append(f"{base}: {name}: missing from fresh run")
            continue
        for counter, old_value in sorted(gated_rates(old_entry).items()):
            if old_value <= 0:
                continue
            new_value = new_rates.get(counter)
            if new_value is None:
                failures.append(
                    f"{base}: {name}: counter {counter} missing from "
                    f"fresh run")
                continue
            ratio = new_value / old_value
            verdict = "ok" if ratio >= 1.0 - tolerance else "REGRESSED"
            print(f"{base}: {name}: {counter}: {old_value:.4g} -> "
                  f"{new_value:.4g} ({ratio:.1%} of baseline, {verdict})")
            if verdict != "ok":
                failures.append(
                    f"{base}: {name}: {counter} regressed to {ratio:.1%} "
                    f"of baseline ({old_value:.4g} -> {new_value:.4g})")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh-dir", action="append", required=True,
                        help="directory holding the freshly-measured "
                             "BENCH_*.json files (repeatable: multiple "
                             "attempts merge best-per-counter)")
    parser.add_argument("--committed-dir", default=".",
                        help="directory holding the committed baselines "
                             "(default: repo root)")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional slowdown before failing "
                             "(default 0.15 = 15%%)")
    parser.add_argument("--file", action="append", default=None,
                        help="gate only these BENCH_*.json basenames "
                             "(repeatable; default: all known suites)")
    args = parser.parse_args()

    files = args.file if args.file else DEFAULT_FILES
    failures: list[str] = []
    checked = 0
    for basename in files:
        committed_path = os.path.join(args.committed_dir, basename)
        if not os.path.exists(committed_path):
            # A suite with no committed baseline yet cannot be gated; say so
            # instead of silently shrinking coverage.
            print(f"{basename}: no committed baseline, skipping")
            continue
        checked += 1
        failures.extend(
            check_file(committed_path,
                       [os.path.join(d, basename) for d in args.fresh_dir],
                       args.tolerance))

    if checked == 0:
        print("bench gate: no committed baselines found — nothing gated",
              file=sys.stderr)
        return 1
    if failures:
        print(f"\nbench gate FAILED ({len(failures)} regression(s), "
              f"tolerance {args.tolerance:.0%}):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nbench gate passed ({checked} file(s), "
          f"tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
