#include "apps/registry.hpp"

#include <stdexcept>
#include <utility>

#include "apps/digit_recognition.hpp"
#include "apps/edge_detection.hpp"
#include "apps/heartbeat.hpp"
#include "apps/hello_world.hpp"
#include "apps/image_smoothing.hpp"
#include "apps/synthetic.hpp"

namespace snnmap::apps {
namespace {

/// Builds an AppInfo whose graph builder is *derived* from the network
/// builder — graph extraction is by definition "simulate the network and
/// annotate" — so the two dispatch surfaces come from one registration and
/// cannot drift.
AppInfo make_app(std::string name, std::string full_name,
                 std::string topology,
                 std::function<AppNetwork(std::uint64_t)> network) {
  AppInfo info;
  info.name = std::move(name);
  info.full_name = std::move(full_name);
  info.topology = std::move(topology);
  info.network = network;
  info.build = [network = std::move(network)](std::uint64_t seed) {
    const AppNetwork app = network(seed);
    snn::Network net = app.build();
    snn::Simulator sim(net, app.sim);
    return snn::SnnGraph::from_simulation(net, sim.run());
  };
  return info;
}

}  // namespace

const std::vector<AppInfo>& realistic_apps() {
  static const std::vector<AppInfo> kApps = {
      make_app("HW", "hello world", "Feedforward (117, 9)",
               [](std::uint64_t seed) -> AppNetwork {
                 HelloWorldConfig c;
                 c.seed = seed;
                 return {[c] { return build_hello_world_network(c); },
                         hello_world_sim_config(c)};
               }),
      make_app("IS", "image smoothing", "Feedforward (1024, 1024)",
               [](std::uint64_t seed) -> AppNetwork {
                 ImageSmoothingConfig c;
                 c.seed = seed;
                 return {[c] { return build_image_smoothing_network(c); },
                         image_smoothing_sim_config(c)};
               }),
      make_app("HD", "handwritten digit", "Unsupervised, recurrent (250, 250)",
               [](std::uint64_t seed) -> AppNetwork {
                 DigitRecognitionConfig c;
                 c.seed = seed;
                 return {[c] { return build_digit_recognition_network(c); },
                         digit_recognition_sim_config(c)};
               }),
      make_app("HE", "heartbeat estimation", "Unsupervised, LSM (64, 16)",
               [](std::uint64_t seed) -> AppNetwork {
                 HeartbeatConfig c;
                 c.seed = seed;
                 return {[c] { return build_heartbeat_network(c); },
                         heartbeat_sim_config(c)};
               }),
  };
  return kApps;
}

namespace {

/// Extra (non-Table-I) applications reachable by name.
const std::vector<AppInfo>& extra_apps() {
  static const std::vector<AppInfo> kApps = {
      make_app("ED", "edge detection", "Feedforward DoG (1024, 1024)",
               [](std::uint64_t seed) -> AppNetwork {
                 EdgeDetectionConfig c;
                 c.seed = seed;
                 return {[c] { return build_edge_detection_network(c); },
                         edge_detection_sim_config(c)};
               }),
  };
  return kApps;
}

}  // namespace

snn::SnnGraph build_app(const std::string& name, std::uint64_t seed) {
  for (const auto& app : realistic_apps()) {
    if (name == app.name || name == app.full_name) return app.build(seed);
  }
  for (const auto& app : extra_apps()) {
    if (name == app.name || name == app.full_name) return app.build(seed);
  }
  // Fall through to synthetic MxN names.
  SyntheticConfig config = parse_synthetic_name(name);  // throws if unknown
  config.seed = seed;
  return build_synthetic(config);
}

AppNetwork build_app_network(const std::string& name, std::uint64_t seed) {
  for (const auto& app : realistic_apps()) {
    if (name == app.name || name == app.full_name) return app.network(seed);
  }
  for (const auto& app : extra_apps()) {
    if (name == app.name || name == app.full_name) return app.network(seed);
  }
  SyntheticConfig config = parse_synthetic_name(name);  // throws if unknown
  config.seed = seed;
  return {[config] { return build_synthetic_network(config); },
          synthetic_sim_config(config)};
}

bool is_known_app(const std::string& name) {
  for (const auto& app : realistic_apps()) {
    if (name == app.name || name == app.full_name) return true;
  }
  for (const auto& app : extra_apps()) {
    if (name == app.name || name == app.full_name) return true;
  }
  try {
    parse_synthetic_name(name);
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

}  // namespace snnmap::apps
