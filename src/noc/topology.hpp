// Interconnect topologies for the global synapse network.
//
// Noxim is mesh-only; the paper's Noxim++ adds "different interconnect models
// for representative neuromorphic hardware" — NoC-tree (CxQuad) and NoC-mesh
// (TrueNorth, HiCANN).  We implement mesh (XY routing), k-ary tree
// (deterministic up/down routing) and a bidirectional ring (shortest path),
// all behind one concrete Topology class with precomputed next-hop tables so
// the router logic stays topology-agnostic.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/architecture.hpp"

namespace snnmap::noc {

/// Router/port identifiers.  Each *tile* (crossbar) attaches to exactly one
/// router through that router's dedicated local port; inter-router ports are
/// numbered 0..port_count-1.
using RouterId = std::uint32_t;
using TileId = std::uint32_t;
using PortId = std::uint32_t;

inline constexpr RouterId kNoRouter = static_cast<RouterId>(-1);
/// Sentinel returned by next_port when the packet has arrived and must be
/// ejected through the local port.
inline constexpr PortId kLocalPort = static_cast<PortId>(-1);

/// Mesh routing algorithms (Noxim's configurable "routing algorithm").
/// All four are turn-model deadlock-free; XY/YX are deterministic,
/// West-first and North-last are partially adaptive (multiple candidate
/// output ports on some hops, resolved by the simulator's selection
/// strategy).
enum class MeshRouting : std::uint8_t { kXY, kYX, kWestFirst, kNorthLast };

const char* to_string(MeshRouting routing) noexcept;
MeshRouting mesh_routing_from_string(const std::string& name);

class Topology {
 public:
  /// width x height mesh; one tile per router, row-major tile ids.
  static Topology mesh(std::uint32_t width, std::uint32_t height);

  /// k-ary tree with `tiles` leaf routers (one tile each); internal levels
  /// are built bottom-up until a single root.  CxQuad = tree(4, 4).
  static Topology tree(std::uint32_t tiles, std::uint32_t arity);

  /// Bidirectional ring of `tiles` routers (one tile each).
  static Topology ring(std::uint32_t tiles);

  /// Builds the topology matching an architecture description.
  static Topology for_architecture(const hw::Architecture& arch);

  hw::InterconnectKind kind() const noexcept { return kind_; }
  std::uint32_t router_count() const noexcept {
    return static_cast<std::uint32_t>(neighbors_.size());
  }
  std::uint32_t tile_count() const noexcept {
    return static_cast<std::uint32_t>(tile_router_.size());
  }

  RouterId router_of_tile(TileId tile) const;
  /// Tile attached to a router, or kNoRouter if none (internal tree router).
  TileId tile_of_router(RouterId router) const;

  std::uint32_t port_count(RouterId router) const;
  /// Neighbor router reached through `port`.
  RouterId neighbor(RouterId router, PortId port) const;

  /// Deterministic next hop from `router` toward `dst` router; kLocalPort
  /// when router == dst.  Mesh uses the configured routing algorithm's
  /// first candidate; tree and ring use precomputed shortest paths with
  /// lowest-port tie-breaks.
  PortId next_port(RouterId router, RouterId dst) const;

  /// All legal next-hop ports under the configured mesh routing algorithm
  /// (1 entry for XY/YX, up to 3 for the adaptive turn models; always 1 for
  /// tree/ring).  Returns the count; `out` must hold 3.  Every candidate is
  /// productive (strictly decreases distance), so any selection among them
  /// preserves minimality and the turn model preserves deadlock freedom.
  std::uint32_t route_candidates(RouterId router, RouterId dst,
                                 PortId out[3]) const;

  /// Packed per-(router, dst) routing-table entry: the same candidates
  /// route_candidates() returns, precomputed as O(1) array loads for the
  /// simulator's cycle loop.  Ports are uint8; an entry for router == dst
  /// has count 1 and port[0] == kTableLocal.
  struct RouteEntry {
    std::uint8_t count = 0;
    std::uint8_t port[3] = {0, 0, 0};
  };
  /// Sentinel port value inside RouteEntry marking local delivery.
  static constexpr std::uint8_t kTableLocal = 0xFF;

  /// Flat router-major routing table, entry `router * router_count() + dst`.
  /// Empty only when some router has >= 255 ports (packed ports would not
  /// fit); callers must then fall back to route_candidates().
  const std::vector<RouteEntry>& route_table() const noexcept {
    return route_table_;
  }

  /// Flat router-major hop-distance table (router * router_count() + dst).
  /// All routing algorithms are minimal, so this equals the routed path
  /// length next_port() would walk.
  const std::vector<std::uint32_t>& distance_table() const noexcept {
    return dist_;
  }

  /// Mesh only; throws std::logic_error on other topologies.
  void set_mesh_routing(MeshRouting routing);
  MeshRouting mesh_routing() const noexcept { return routing_; }

  /// Number of links on the routing path between two tiles' routers.
  std::uint32_t hop_distance(TileId a, TileId b) const;

  /// Sum of all inter-router links (each bidirectional link counted once).
  std::uint32_t link_count() const noexcept { return link_count_; }

 private:
  Topology() = default;
  void build_routes();  // BFS-based next-hop tables (tree/ring)
  /// Fills route_table_ and dist_ from compute_candidates() / BFS.
  void build_tables();
  /// The analytic (mesh) or BFS-table (tree/ring) candidate computation
  /// backing both build_tables() and the unpacked fallback path.
  std::uint32_t compute_candidates(RouterId router, RouterId dst,
                                   PortId out[3]) const;
  void check_router(RouterId router) const;

  hw::InterconnectKind kind_ = hw::InterconnectKind::kMesh;
  std::uint32_t mesh_width_ = 0;  // mesh only
  std::uint32_t mesh_height_ = 0; // mesh only
  MeshRouting routing_ = MeshRouting::kXY;
  // neighbors_[r] = adjacent routers, port index = position in this list.
  std::vector<std::vector<RouterId>> neighbors_;
  std::vector<RouterId> tile_router_;   // tile -> router
  std::vector<TileId> router_tile_;     // router -> tile or kNoRouter
  // Routing table: route_[r * router_count + dst] = port (kLocalPort if r==dst).
  std::vector<PortId> route_;
  std::vector<RouteEntry> route_table_;  // packed candidates, router-major
  std::vector<std::uint32_t> dist_;      // hop distances, router-major
  std::uint32_t link_count_ = 0;
};

}  // namespace snnmap::noc
