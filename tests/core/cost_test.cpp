#include "core/cost.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/framework.hpp"
#include "noc/simulator.hpp"
#include "util/rng.hpp"

namespace snnmap::core {
namespace {

/// 4 neurons in a chain 0->1->2->3 plus a skip edge 0->2.
/// Spike counts: neuron i spikes (i+1)*10 times... actually fixed below.
snn::SnnGraph chain_graph() {
  std::vector<snn::GraphEdge> edges{
      {0, 1, 1.0F}, {1, 2, 1.0F}, {2, 3, 1.0F}, {0, 2, 1.0F}};
  // Spike counts: n0=3, n1=5, n2=2, n3=7 (n3 has no fan-out).
  std::vector<snn::SpikeTrain> trains{
      {1, 2, 3}, {1, 2, 3, 4, 5}, {1, 2}, {1, 2, 3, 4, 5, 6, 7}};
  return snn::SnnGraph::from_parts(4, std::move(edges), std::move(trains),
                                   100.0);
}

Partition make_partition(std::vector<CrossbarId> assignment,
                         std::uint32_t crossbars) {
  Partition p(static_cast<std::uint32_t>(assignment.size()), crossbars);
  for (std::uint32_t i = 0; i < assignment.size(); ++i) {
    p.assign(i, assignment[i]);
  }
  return p;
}

TEST(CostModel, AllLocalIsZero) {
  const auto g = chain_graph();
  const CostModel cost(g);
  EXPECT_EQ(cost.global_spike_count(make_partition({0, 0, 0, 0}, 2)), 0u);
}

TEST(CostModel, CutEdgesChargePreSpikes) {
  const auto g = chain_graph();
  const CostModel cost(g);
  // Split {0,1} | {2,3}: cut edges 1->2 (5 spikes) and 0->2 (3 spikes).
  EXPECT_EQ(cost.global_spike_count(make_partition({0, 0, 1, 1}, 2)), 8u);
  // Split {0,2} | {1,3}: cut 0->1 (3), 1->2 (5), 2->3 (2) = 10.
  EXPECT_EQ(cost.global_spike_count(make_partition({0, 1, 0, 1}, 2)), 10u);
}

TEST(CostModel, SpikesBetweenIsDirectional) {
  const auto g = chain_graph();
  const CostModel cost(g);
  const auto p = make_partition({0, 0, 1, 1}, 2);
  EXPECT_EQ(cost.spikes_between(p, 0, 1), 8u);  // 1->2 and 0->2
  EXPECT_EQ(cost.spikes_between(p, 1, 0), 0u);
  EXPECT_EQ(cost.spikes_between(p, 0, 0), 0u);  // Eq. 7 diagonal
}

TEST(CostModel, LocalPlusGlobalEqualsTotal) {
  const auto g = chain_graph();
  const CostModel cost(g);
  for (const auto& assignment :
       {std::vector<CrossbarId>{0, 0, 0, 0}, {0, 0, 1, 1}, {0, 1, 0, 1},
        {1, 1, 0, 0}}) {
    const auto p = make_partition(assignment, 2);
    EXPECT_EQ(cost.global_spike_count(p) + cost.local_event_count(p),
              cost.total_event_count());
  }
}

TEST(CostModel, TotalEventCount) {
  const auto g = chain_graph();
  const CostModel cost(g);
  // 0->1:3, 1->2:5, 2->3:2, 0->2:3 = 13.
  EXPECT_EQ(cost.total_event_count(), 13u);
}

TEST(CostModel, MulticastCollapsesSameCrossbarTargets) {
  // Neuron 0 fans out to 1 and 2; if both land on the same remote crossbar,
  // each spike is one packet, not two.
  std::vector<snn::GraphEdge> edges{{0, 1, 1.0F}, {0, 2, 1.0F}};
  std::vector<snn::SpikeTrain> trains{{1, 2, 3, 4}, {}, {}};
  const auto g =
      snn::SnnGraph::from_parts(3, std::move(edges), std::move(trains), 10.0);
  const CostModel cost(g);
  EXPECT_EQ(cost.multicast_packet_count(make_partition({0, 1, 1}, 2)), 4u);
  EXPECT_EQ(cost.multicast_packet_count(make_partition({0, 1, 2}, 3)), 8u);
  EXPECT_EQ(cost.multicast_packet_count(make_partition({0, 0, 0}, 2)), 0u);
}

TEST(CostModel, MoveDeltaMatchesRecomputation) {
  const auto g = chain_graph();
  const CostModel cost(g);
  auto p = make_partition({0, 0, 1, 1}, 2);
  const std::uint64_t before = cost.global_spike_count(p);
  for (std::uint32_t neuron = 0; neuron < 4; ++neuron) {
    for (CrossbarId to = 0; to < 2; ++to) {
      const std::int64_t delta = cost.move_delta(p, neuron, to);
      const CrossbarId from = p.crossbar_of(neuron);
      p.assign(neuron, to);
      const std::uint64_t after = cost.global_spike_count(p);
      p.assign(neuron, from);  // restore
      EXPECT_EQ(static_cast<std::int64_t>(after),
                static_cast<std::int64_t>(before) + delta)
          << "neuron " << neuron << " -> " << to;
    }
  }
}

TEST(CostModel, SelfLoopsNeverCount) {
  std::vector<snn::GraphEdge> edges{{0, 0, 1.0F}, {0, 1, 1.0F}};
  std::vector<snn::SpikeTrain> trains{{1, 2}, {}};
  const auto g =
      snn::SnnGraph::from_parts(2, std::move(edges), std::move(trains), 10.0);
  const CostModel cost(g);
  // Only 0->1 can be cut.
  EXPECT_EQ(cost.global_spike_count(make_partition({0, 1}, 2)), 2u);
  EXPECT_EQ(cost.move_delta(make_partition({0, 1}, 2), 0, 1), -2);
}

TEST(CostModel, TrafficMatrixMatchesSpikesBetween) {
  const auto g = chain_graph();
  const CostModel cost(g);
  const auto p = make_partition({0, 1, 0, 1}, 2);
  const auto matrix = cost.traffic_matrix(p);
  for (CrossbarId a = 0; a < 2; ++a) {
    for (CrossbarId b = 0; b < 2; ++b) {
      EXPECT_EQ(matrix[a * 2 + b], cost.spikes_between(p, a, b));
    }
  }
}

TEST(CostModel, LocalEnergyScalesWithModel) {
  const auto g = chain_graph();
  const CostModel cost(g);
  const auto p = make_partition({0, 0, 0, 0}, 2);
  hw::EnergyModel energy;
  energy.crossbar_event_pj = 2.0;
  EXPECT_DOUBLE_EQ(cost.local_energy_pj(p, energy), 13.0 * 2.0);
}

TEST(CostModel, AnalyticEnergyZeroWhenAllLocal) {
  const auto g = chain_graph();
  const CostModel cost(g);
  const auto topo = noc::Topology::mesh(2, 2);
  const auto p = make_partition({0, 0, 0, 0}, 4);
  const std::vector<noc::TileId> placement{0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(
      cost.analytic_global_energy_pj(p, topo, placement, {}, true), 0.0);
}

TEST(CostModel, AnalyticEnergyGrowsWithDistance) {
  const auto g = chain_graph();
  const CostModel cost(g);
  const auto topo = noc::Topology::mesh(2, 2);
  const std::vector<noc::TileId> near_placement{0, 1, 2, 3};
  // Partition {0,1} on crossbar 0 and {2,3} on crossbar 1 (adjacent tiles)
  // vs crossbar 3 (diagonal tile, 2 hops).
  const auto near_p = make_partition({0, 0, 1, 1}, 4);
  const auto far_p = make_partition({0, 0, 3, 3}, 4);
  const double e_near =
      cost.analytic_global_energy_pj(near_p, topo, near_placement, {}, true);
  const double e_far =
      cost.analytic_global_energy_pj(far_p, topo, near_placement, {}, true);
  EXPECT_GT(e_far, e_near);
  EXPECT_GT(e_near, 0.0);
}

TEST(CostModel, AnalyticUnicastAtLeastMulticast) {
  std::vector<snn::GraphEdge> edges{{0, 1, 1.0F}, {0, 2, 1.0F}, {0, 3, 1.0F}};
  std::vector<snn::SpikeTrain> trains{{1, 2, 3}, {}, {}, {}};
  const auto g =
      snn::SnnGraph::from_parts(4, std::move(edges), std::move(trains), 10.0);
  const CostModel cost(g);
  const auto topo = noc::Topology::tree(4, 4);
  const std::vector<noc::TileId> placement{0, 1, 2, 3};
  const auto p = make_partition({0, 1, 2, 3}, 4);
  const double multicast =
      cost.analytic_global_energy_pj(p, topo, placement, {}, true);
  const double unicast =
      cost.analytic_global_energy_pj(p, topo, placement, {}, false);
  EXPECT_GE(unicast, multicast);
}

TEST(CostModel, AnalyticEnergyIgnoresFanoutOrder) {
  // A neuron's energy contribution must be a pure function of ITS remote
  // destination set — never of which neurons happened to be processed
  // before it.  The former `std::unordered_set<CrossbarId>` accumulator
  // broke that: it was cleared (not destroyed) between neurons, and
  // libstdc++'s clear() keeps the grown bucket count, so a big-fanout
  // neuron earlier in the walk changed a later neuron's hash layout and
  // with it the FP addition order of its per-destination terms (verified:
  // crossbars {1,4,10,40} on an 8x8 mesh sum to 84.000000000000014 in a
  // fresh 13-bucket table and 84.0 after a 40-element set widened it to 59
  // buckets).  The sorted materialization makes each contribution
  // order-pure, so the total is exactly additive per spiking neuron —
  // pinned bitwise here, not with EXPECT_NEAR.
  //
  // Layout: neuron 0 ("A") fans out to 40 distinct crossbars; neuron 41
  // ("B") fans out to crossbars {1,4,10,40}, the set above.  Silencing a
  // neuron (empty spike train) removes its contribution without touching
  // the edge structure.  The fabric is a multi-chip dragonfly, so B's
  // multicast tree mixes on-chip and off-chip edge prices and its
  // `per_spike` sum is genuinely order-sensitive; the multicast branch
  // folds each neuron into the total with a single `+= per_spike * spikes`,
  // which is what makes the additivity below exact (not just close) once
  // per-neuron contributions are order-pure.
  std::vector<snn::GraphEdge> edges;
  for (std::uint32_t t = 1; t <= 40; ++t) edges.push_back({0, t, 1.0F});
  for (std::uint32_t t = 42; t <= 45; ++t) edges.push_back({41, t, 1.0F});
  std::vector<CrossbarId> assign(46);
  assign[0] = 61;
  for (std::uint32_t t = 1; t <= 40; ++t) assign[t] = 20 + t;  // 21..60
  assign[41] = 0;
  assign[42] = 1;
  assign[43] = 4;
  assign[44] = 10;
  assign[45] = 40;
  const auto p = make_partition(assign, 64);
  // 8 groups (chips) of 8 single-tile routers: tiles 1 and 4 are local to
  // B's group, tiles 10 and 40 sit behind global (off-chip) channels.
  auto topo = noc::Topology::dragonfly(8, 8, 1);
  topo.assign_chips(8);
  std::vector<noc::TileId> placement(64);
  for (std::uint32_t c = 0; c < 64; ++c) placement[c] = c;
  hw::EnergyModel energy;
  // Values with no short binary representation, so addition order matters
  // (this exact combination reproduced the ULP split under the old code).
  energy.link_hop_pj = 0.1;
  energy.router_flit_pj = 0.3;
  energy.aer_codec_pj = 0.7;
  energy.offchip_link_hop_pj = 5.9;
  const snn::SpikeTrain a_train{1, 2, 3};
  const snn::SpikeTrain b_train{1, 2, 3, 4, 5, 6, 7};
  const auto energy_with = [&](bool spike_a, bool spike_b) {
    std::vector<snn::SpikeTrain> trains(46);
    if (spike_a) trains[0] = a_train;
    if (spike_b) trains[41] = b_train;
    auto graph_edges = edges;
    const auto g = snn::SnnGraph::from_parts(46, std::move(graph_edges),
                                             std::move(trains), 100.0);
    return CostModel(g).analytic_global_energy_pj(p, topo, placement, energy,
                                                  /*multicast=*/true);
  };
  const double e_both = energy_with(true, true);
  const double e_a = energy_with(true, false);
  const double e_b = energy_with(false, true);
  EXPECT_GT(e_a, 0.0);
  EXPECT_GT(e_b, 0.0);
  // Bitwise, not EXPECT_NEAR: determinism is the property under test.
  EXPECT_EQ(e_both, e_a + e_b);
}

/// Star-burst workload for the analytic/simulated parity checks: every
/// neuron fans out to several others, so multicast trees share prefixes and
/// fork — the shape the old `charged_routers` accounting double-charged.
snn::SnnGraph fanout_graph(std::uint32_t neurons) {
  util::Rng rng(23);
  std::vector<snn::GraphEdge> edges;
  std::vector<snn::SpikeTrain> trains;
  for (std::uint32_t i = 0; i < neurons; ++i) {
    for (int f = 0; f < 4; ++f) {
      auto post = static_cast<std::uint32_t>(rng.below(neurons));
      if (post == i) post = (post + 1) % neurons;
      edges.push_back({i, post, 1.0F});
    }
    snn::SpikeTrain train;
    const std::uint64_t spikes = rng.below(4) + 1;
    for (std::uint64_t s = 0; s < spikes; ++s) {
      train.push_back(static_cast<double>(s) + 0.5);
    }
    trains.push_back(std::move(train));
  }
  return snn::SnnGraph::from_parts(neurons, std::move(edges),
                                   std::move(trains), 8.0);
}

/// The analytic estimate must agree with the cycle-accurate NocSimulator:
/// energy is activity-based on both sides, so on any drained run the only
/// admissible difference is floating-point summation order.
void expect_energy_parity(const snn::SnnGraph& graph, noc::Topology topology,
                          std::uint32_t crossbars, bool multicast) {
  const CostModel cost(graph);
  Partition partition(graph.neuron_count(), crossbars);
  for (std::uint32_t i = 0; i < graph.neuron_count(); ++i) {
    partition.assign(i, i % crossbars);
  }
  std::vector<noc::TileId> placement(crossbars);
  for (std::uint32_t c = 0; c < crossbars; ++c) placement[c] = c;

  const double analytic = cost.analytic_global_energy_pj(
      partition, topology, placement, {}, multicast);

  const std::uint32_t chips = topology.chip_count();
  auto traffic = build_traffic(graph, partition, placement,
                               /*cycles_per_ms=*/1000, /*jitter_cycles=*/0);
  ASSERT_FALSE(traffic.empty());
  noc::NocConfig config;
  config.multicast = multicast;
  noc::NocSimulator sim(std::move(topology), config);
  const auto result = sim.run(std::move(traffic));
  ASSERT_TRUE(result.stats.drained);
  EXPECT_GT(result.stats.global_energy_pj, 0.0);
  if (chips > 1) {
    // The multi-chip parity is only meaningful if boundary hops occurred.
    EXPECT_GT(result.stats.offchip_link_hops, 0u);
    EXPECT_LE(result.stats.offchip_link_hops, result.stats.link_hops);
  }
  EXPECT_NEAR(analytic, result.stats.global_energy_pj,
              1e-9 * result.stats.global_energy_pj);
}

TEST(CostModel, AnalyticMulticastMatchesSimulatedOnTree) {
  // Tree multicast is the regression shape: shared root-to-subtree
  // prefixes with forks at internal routers.  The old accounting charged
  // router_flit_pj per *distinct* router (over-counting fork routers,
  // under-counting per-copy ejections) and disagreed with the simulator.
  expect_energy_parity(fanout_graph(48), noc::Topology::tree(12, 4), 12,
                       /*multicast=*/true);
}

TEST(CostModel, AnalyticMulticastMatchesSimulatedOnMesh) {
  expect_energy_parity(fanout_graph(48), noc::Topology::mesh(3, 3), 9,
                       /*multicast=*/true);
}

TEST(CostModel, AnalyticUnicastMatchesSimulatedOnTree) {
  expect_energy_parity(fanout_graph(48), noc::Topology::tree(12, 4), 12,
                       /*multicast=*/false);
}

TEST(CostModel, AnalyticMatchesSimulatedOnMultiChipDragonfly) {
  // One chip per dragonfly group: every global channel is an off-chip link,
  // so the analytic walk must price offchip_link_hop_pj on exactly the hops
  // the simulator's off-chip counter charges (charge-for-charge parity).
  auto multicast_topo = noc::Topology::dragonfly(4, 5, 1);
  multicast_topo.assign_chips(5);
  expect_energy_parity(fanout_graph(60), std::move(multicast_topo), 20,
                       /*multicast=*/true);
  auto unicast_topo = noc::Topology::dragonfly(4, 5, 1);
  unicast_topo.assign_chips(5);
  expect_energy_parity(fanout_graph(60), std::move(unicast_topo), 20,
                       /*multicast=*/false);
}

TEST(CostModel, AnalyticMatchesSimulatedOnMultiChipFattree) {
  // One chip per pod (cores land on chip 0): cross-pod routes cross one or
  // two chip boundaries depending on the pods involved.
  auto multicast_topo = noc::Topology::fattree(4);
  multicast_topo.assign_chips(4);
  expect_energy_parity(fanout_graph(48), std::move(multicast_topo), 8,
                       /*multicast=*/true);
  auto unicast_topo = noc::Topology::fattree(4);
  unicast_topo.assign_chips(4);
  expect_energy_parity(fanout_graph(48), std::move(unicast_topo), 8,
                       /*multicast=*/false);
}

TEST(CostModel, AnalyticMatchesSimulatedOnMultiChipTree) {
  auto topo = noc::Topology::tree(12, 4);
  topo.assign_chips(3);  // one chip per 4-leaf subtree
  expect_energy_parity(fanout_graph(48), std::move(topo), 12,
                       /*multicast=*/true);
}

TEST(CostModel, AnalyticEnergyValidatesPlacement) {
  const auto g = chain_graph();
  const CostModel cost(g);
  const auto topo = noc::Topology::mesh(2, 2);
  const auto p = make_partition({0, 0, 1, 1}, 2);
  EXPECT_THROW(
      cost.analytic_global_energy_pj(p, topo, {0, 1, 2}, {}, true),
      std::invalid_argument);
}

}  // namespace
}  // namespace snnmap::core
