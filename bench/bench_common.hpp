// Shared helpers for the benchmark harnesses.
//
// Crossbar sizing: the paper's evaluation maps each application across a
// CxQuad-like quad-crossbar organization.  CxQuad's literal 4x256 dimensions
// would localize the small Table I apps entirely (no global traffic) and
// cannot hold the larger ones, so — as the paper itself does in Sec. V-C,
// where crossbar size is a designer-chosen parameter — each workload gets
// the smallest power-of-two-ish crossbar that spreads it over (at least)
// four crossbars.  This preserves the pressure on the global interconnect
// that the published numbers reflect.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

#include "core/framework.hpp"
#include "hw/architecture.hpp"
#include "snn/graph.hpp"

namespace snnmap::bench {

/// True when SNNMAP_BENCH_QUICK is set: harnesses shrink swarm sizes and
/// workload durations so the full suite runs in seconds (used in CI).
inline bool quick_mode() {
  const char* v = std::getenv("SNNMAP_BENCH_QUICK");
  return v != nullptr && std::string(v) != "0";
}

/// Crossbar capacity that spreads `neurons` over (about) `min_crossbars`
/// crossbars with ~25% slack, so partitioners have room to co-locate
/// populations (exact-fit capacities would force every mapper into nearly
/// the same balanced split).
inline std::uint32_t crossbar_size_for(std::uint32_t neurons,
                                       std::uint32_t min_crossbars = 4) {
  std::uint32_t size =
      (neurons * 5 + 4 * min_crossbars - 1) / (4 * min_crossbars);
  if (size < 16) size = 16;
  return size;
}

/// CxQuad-shaped architecture (tree, arity 4) scaled to the workload.
inline hw::Architecture scaled_cxquad(const snn::SnnGraph& graph,
                                      std::uint32_t min_crossbars = 4) {
  const std::uint32_t size =
      crossbar_size_for(graph.neuron_count(), min_crossbars);
  hw::Architecture arch = hw::Architecture::sized_for(
      graph.neuron_count(), size, hw::InterconnectKind::kTree);
  arch.tree_arity = 4;
  return arch;
}

/// Paper-default PSO settings (Sec. V-D: swarm 1000, 100 iterations found
/// best; we default to a smaller swarm that reaches the same optima on these
/// workload sizes, see fig7 for the sensitivity sweep).
inline core::PsoConfig default_pso() {
  core::PsoConfig config;
  config.swarm_size = quick_mode() ? 20 : 60;
  config.iterations = quick_mode() ? 20 : 60;
  return config;
}

}  // namespace snnmap::bench
