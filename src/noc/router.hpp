// Input-buffered NoC router with round-robin output arbitration and
// router-level multicast (the paper's Noxim++ adds a "multicast feature,
// where spike packets can be communicated to a selected subset of crossbars").
//
// Packets are single-flit (an AER word fits one flit), store-and-forward.
// A multicast flit occupies its input-queue head until every output port its
// destination set requires has been served; each served port receives an
// independent copy carrying the subset of destinations routed through it.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "noc/aer.hpp"
#include "noc/topology.hpp"

namespace snnmap::noc {

/// A single-flit packet (or packet copy) in flight.
struct Flit {
  AerWord payload;               ///< encoded AER word
  std::uint32_t source_neuron = 0;
  TileId source_tile = 0;
  std::uint64_t emit_cycle = 0;
  std::uint64_t emit_step = 0;
  std::uint32_t sequence = 0;    ///< per-source-neuron emission counter
  std::vector<TileId> dests;     ///< remaining destination tiles of this copy
  std::uint64_t served_ports = 0;  ///< bitmask of output ports already served

  bool port_served(std::uint32_t port) const noexcept {
    return (served_ports >> port) & 1ULL;
  }
  void mark_served(std::uint32_t port) noexcept {
    served_ports |= 1ULL << port;
  }
};

/// Per-router state: one FIFO per input (inter-router ports in neighbor
/// order, plus one injection queue at index port_count), and a round-robin
/// pointer per output port (+ local ejection port at index port_count).
class Router {
 public:
  Router(RouterId id, std::uint32_t port_count, std::uint32_t buffer_depth);

  RouterId id() const noexcept { return id_; }
  std::uint32_t port_count() const noexcept { return port_count_; }
  std::uint32_t buffer_depth() const noexcept { return buffer_depth_; }

  /// Input queue `port`, where port == port_count() is the injection queue.
  std::deque<Flit>& in_queue(std::uint32_t port) { return queues_.at(port); }
  const std::deque<Flit>& in_queue(std::uint32_t port) const {
    return queues_.at(port);
  }
  std::uint32_t input_count() const noexcept { return port_count_ + 1; }

  /// True if inter-router input `port` can take one more flit, given
  /// `staged` arrivals already bound for it this cycle.  The injection queue
  /// is unbounded (the encoder stalls the crossbar, not the NoC).
  bool can_accept(std::uint32_t port, std::size_t staged) const;

  /// Round-robin pointer for output `out_port` (port_count() = local eject).
  std::uint32_t rr_pointer(std::uint32_t out_port) const {
    return rr_.at(out_port);
  }
  void advance_rr(std::uint32_t out_port) {
    rr_.at(out_port) = (rr_.at(out_port) + 1) % input_count();
  }

  bool all_queues_empty() const noexcept;
  std::size_t buffered_flits() const noexcept;

 private:
  RouterId id_;
  std::uint32_t port_count_;
  std::uint32_t buffer_depth_;
  std::vector<std::deque<Flit>> queues_;  // port_count_ + 1 (injection last)
  std::vector<std::uint32_t> rr_;         // port_count_ + 1 (local last)
};

}  // namespace snnmap::noc
