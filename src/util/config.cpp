#include "util/config.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace snnmap::util {
namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return {};
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::string strip_comment(const std::string& line) {
  // A '#' starts a comment unless it is inside a quoted string; the subset
  // we accept only quotes whole values, so scanning for an unquoted '#'
  // suffices.
  bool in_quote = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '"') in_quote = !in_quote;
    if (line[i] == '#' && !in_quote) return line.substr(0, i);
  }
  return line;
}

std::string unquote(const std::string& s) {
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
    return s.substr(1, s.size() - 2);
  }
  return s;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("config: line " + std::to_string(line_no) + ": " +
                           what);
}

}  // namespace

Config Config::parse(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string raw;
  std::string section;  // current top-level section ("" at root)
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    if (raw.find('\t') != std::string::npos) {
      fail(line_no, "tabs are not allowed; use spaces");
    }
    const std::string line = strip_comment(raw);
    if (trim(line).empty()) continue;

    const std::size_t indent = line.find_first_not_of(' ');
    if (indent != 0 && indent != 2) {
      fail(line_no, "indentation must be 0 or 2 spaces");
    }
    const std::string body = trim(line);
    const auto colon = body.find(':');
    if (colon == std::string::npos) fail(line_no, "expected 'key: value'");
    const std::string key = trim(body.substr(0, colon));
    const std::string value = trim(body.substr(colon + 1));
    if (key.empty()) fail(line_no, "empty key");

    if (indent == 0) {
      if (value.empty()) {
        section = key;  // opens a nested block
      } else {
        section.clear();
        cfg.values_[key] = unquote(value);
      }
    } else {
      if (section.empty()) fail(line_no, "nested key outside a section");
      if (value.empty()) fail(line_no, "nesting deeper than one level");
      cfg.values_[section + "." + key] = unquote(value);
    }
  }
  return cfg;
}

Config Config::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("config: cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

bool Config::contains(const std::string& key) const {
  return values_.count(key) != 0;
}

std::optional<std::string> Config::get_string(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::optional<double> Config::get_double(const std::string& key) const {
  const auto s = get_string(key);
  if (!s) return std::nullopt;
  try {
    std::size_t pos = 0;
    const double v = std::stod(*s, &pos);
    if (pos != s->size()) throw std::invalid_argument("trailing characters");
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("config: key '" + key + "' is not a number: '" +
                             *s + "'");
  }
}

std::optional<std::int64_t> Config::get_int(const std::string& key) const {
  const auto s = get_string(key);
  if (!s) return std::nullopt;
  std::int64_t v = 0;
  const char* first = s->data();
  const char* last = s->data() + s->size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last) {
    throw std::runtime_error("config: key '" + key +
                             "' is not an integer: '" + *s + "'");
  }
  return v;
}

std::optional<bool> Config::get_bool(const std::string& key) const {
  const auto s = get_string(key);
  if (!s) return std::nullopt;
  std::string lower = *s;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "true" || lower == "yes" || lower == "on" || lower == "1") {
    return true;
  }
  if (lower == "false" || lower == "no" || lower == "off" || lower == "0") {
    return false;
  }
  throw std::runtime_error("config: key '" + key + "' is not a bool: '" + *s +
                           "'");
}

std::optional<std::vector<double>> Config::get_double_list(
    const std::string& key) const {
  const auto s = get_string(key);
  if (!s) return std::nullopt;
  std::string body = trim(*s);
  if (body.size() < 2 || body.front() != '[' || body.back() != ']') {
    throw std::runtime_error("config: key '" + key + "' is not a list: '" +
                             *s + "'");
  }
  body = body.substr(1, body.size() - 2);
  std::vector<double> out;
  std::istringstream in(body);
  std::string item;
  while (std::getline(in, item, ',')) {
    const std::string t = trim(item);
    if (t.empty()) continue;
    try {
      out.push_back(std::stod(t));
    } catch (const std::exception&) {
      throw std::runtime_error("config: list '" + key +
                               "' has a non-numeric element: '" + t + "'");
    }
  }
  return out;
}

std::string Config::string_or(const std::string& key, std::string def) const {
  return get_string(key).value_or(std::move(def));
}

double Config::double_or(const std::string& key, double def) const {
  return get_double(key).value_or(def);
}

std::int64_t Config::int_or(const std::string& key, std::int64_t def) const {
  return get_int(key).value_or(def);
}

bool Config::bool_or(const std::string& key, bool def) const {
  return get_bool(key).value_or(def);
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

std::string Config::dump() const {
  std::ostringstream out;
  for (const auto& [k, v] : values_) out << k << ": " << v << '\n';
  return out.str();
}

}  // namespace snnmap::util
