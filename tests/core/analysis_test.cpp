#include "core/analysis.hpp"

#include <gtest/gtest.h>

namespace snnmap::core {
namespace {

/// 4 neurons: 0->1 (local candidates), 0->2, 1->3.  Spike counts 4, 2, 0, 0.
snn::SnnGraph small_graph() {
  std::vector<snn::GraphEdge> edges{{0, 1, 1.0F}, {0, 2, 1.0F}, {1, 3, 1.0F}};
  std::vector<snn::SpikeTrain> trains{
      {1, 2, 3, 4}, {1, 2}, {}, {}};
  return snn::SnnGraph::from_parts(4, std::move(edges), std::move(trains),
                                   10.0);
}

Partition split(std::vector<CrossbarId> a) {
  Partition p(static_cast<std::uint32_t>(a.size()), 2);
  for (std::uint32_t i = 0; i < a.size(); ++i) p.assign(i, a[i]);
  return p;
}

TEST(Analysis, RejectsIncompletePartition) {
  const auto g = small_graph();
  Partition p(4, 2);
  EXPECT_THROW(analyze_mapping(g, p), std::invalid_argument);
}

TEST(Analysis, AllLocalIsFullyLocalized) {
  const auto g = small_graph();
  const auto a = analyze_mapping(g, split({0, 0, 0, 0}));
  EXPECT_DOUBLE_EQ(a.locality_fraction, 1.0);
  EXPECT_EQ(a.total_aer_packets, 0u);
  EXPECT_TRUE(a.heaviest_pairs.empty());
  // All 3 edges local: events = 4 + 4 + 2 = 10 on crossbar 0.
  EXPECT_EQ(a.total_local_events, 10u);
  EXPECT_EQ(a.loads[0].local_events, 10u);
  EXPECT_EQ(a.loads[0].neurons, 4u);
  EXPECT_EQ(a.loads[1].neurons, 0u);
}

TEST(Analysis, SplitAccountsTrafficBothDirectionsOfView) {
  const auto g = small_graph();
  // {0,1} | {2,3}: remote edges 0->2 (4 spikes) and 1->3 (2 spikes); local
  // edge 0->1 (4 events).
  const auto a = analyze_mapping(g, split({0, 0, 1, 1}));
  EXPECT_EQ(a.total_aer_packets, 6u);
  EXPECT_EQ(a.total_local_events, 4u);
  EXPECT_NEAR(a.locality_fraction, 4.0 / 10.0, 1e-12);
  EXPECT_EQ(a.loads[0].spikes_out, 6u);
  EXPECT_EQ(a.loads[1].spikes_in, 6u);
  EXPECT_EQ(a.loads[1].spikes_out, 0u);
  ASSERT_EQ(a.heaviest_pairs.size(), 1u);
  EXPECT_EQ(a.heaviest_pairs[0].from, 0u);
  EXPECT_EQ(a.heaviest_pairs[0].to, 1u);
  EXPECT_EQ(a.heaviest_pairs[0].spikes, 6u);
}

TEST(Analysis, MulticastDedupPerSourceCrossbar) {
  // Source 0 targets neurons on the same remote crossbar twice: one packet
  // stream, not two.
  std::vector<snn::GraphEdge> edges{{0, 1, 1.0F}, {0, 2, 1.0F}};
  std::vector<snn::SpikeTrain> trains{{1, 2, 3}, {}, {}};
  const auto g =
      snn::SnnGraph::from_parts(3, std::move(edges), std::move(trains), 10.0);
  Partition p(3, 2);
  p.assign(0, 0);
  p.assign(1, 1);
  p.assign(2, 1);
  const auto a = analyze_mapping(g, p);
  EXPECT_EQ(a.total_aer_packets, 3u);  // 3 spikes x 1 remote crossbar
}

TEST(Analysis, ImbalanceAndGini) {
  const auto g = small_graph();
  // Balanced occupancy: gini 0.  One-sided traffic: imbalance = max/mean = 2.
  const auto a = analyze_mapping(g, split({0, 0, 1, 1}));
  EXPECT_NEAR(a.occupancy_gini, 0.0, 1e-12);
  EXPECT_NEAR(a.source_imbalance, 2.0, 1e-12);

  const auto b = analyze_mapping(g, split({0, 0, 0, 1}));
  EXPECT_GT(b.occupancy_gini, 0.0);
}

TEST(Analysis, TopPairsBounded) {
  const auto g = small_graph();
  const auto a = analyze_mapping(g, split({0, 1, 0, 1}), /*top_pairs=*/1);
  EXPECT_LE(a.heaviest_pairs.size(), 1u);
}

TEST(Analysis, RenderMentionsKeyNumbers) {
  const auto g = small_graph();
  const auto a = analyze_mapping(g, split({0, 0, 1, 1}));
  const std::string text = a.render();
  EXPECT_NE(text.find("locality"), std::string::npos);
  EXPECT_NE(text.find("xb0"), std::string::npos);
  EXPECT_NE(text.find("heaviest"), std::string::npos);
}

}  // namespace
}  // namespace snnmap::core
