// BM_WindowEnergy / BM_CoSimulator energy-accounting benchmarks.
//
// Run via scripts/bench.sh, which writes BENCH_energy.json so the cost of
// the per-window energy accounting added on top of the PR 4 co-simulator is
// tracked PR over PR.  The suite measures:
//
//  * the NoC session loop with a close_energy_window() per bounded window
//    vs the identical session without closes (the accounting overhead is a
//    counter snapshot + one O(ports) link-peak scan per boundary — the
//    cycle loop itself carries no energy arithmetic any more),
//  * the co-simulator under each DVFS policy (fixed reproduces the PR 4
//    timeline; the scaling policies add the per-window policy step), with
//    the same steps/sec counter as BM_CoSimulator for direct comparison.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "apps/synthetic.hpp"
#include "core/framework.hpp"
#include "core/pacman.hpp"
#include "core/placement.hpp"
#include "cosim/cosim.hpp"
#include "hw/architecture.hpp"
#include "noc/simulator.hpp"
#include "noc/topology.hpp"
#include "snn/graph.hpp"

namespace {

using namespace snnmap;

struct Mapped {
  apps::SyntheticConfig workload;
  hw::Architecture arch;
  core::Partition partition;
  core::Placement placement;
  std::vector<noc::SpikePacketEvent> traffic;
};

/// The 2x200 synthetic workload pacman-mapped onto 8 x 64 crossbars (tree),
/// with its open-loop AER trace — the same shape BM_CoSimulator uses.
const Mapped& mapped_workload() {
  static const Mapped kMapped = [] {
    apps::SyntheticConfig workload;
    workload.layers = 2;
    workload.neurons_per_layer = 200;
    workload.seed = 5;
    workload.duration_ms = 200.0;
    const snn::SnnGraph graph = apps::build_synthetic(workload);
    hw::Architecture arch = hw::Architecture::sized_for(
        graph.neuron_count(), 64, hw::InterconnectKind::kTree);
    core::Partition partition = core::pacman_partition(graph, arch);
    core::Placement placement = core::identity_placement(
        arch.crossbar_count, noc::Topology::for_architecture(arch));
    auto traffic = core::build_traffic(graph, partition, placement,
                                       /*cycles_per_ms=*/1000,
                                       /*jitter_cycles=*/0);
    return Mapped{workload, arch, std::move(partition),
                  std::move(placement), std::move(traffic)};
  }();
  return kMapped;
}

void run_noc_session(benchmark::State& state, bool close_windows) {
  const Mapped& m = mapped_workload();
  const std::uint64_t window = 1000;  // one SNN step of virtual time
  std::uint64_t windows = 0;
  for (auto _ : state) {
    noc::NocSimulator sim(noc::Topology::for_architecture(m.arch),
                          noc::NocConfig{});
    sim.begin();
    sim.enqueue(m.traffic);
    std::uint64_t end = 0;
    while (!sim.idle() && !sim.halted()) {
      end += window;
      sim.run_until(end);
      if (close_windows) sim.close_energy_window();
      ++windows;
    }
    const auto result = sim.finish();
    benchmark::DoNotOptimize(result.stats.global_energy_pj);
    benchmark::DoNotOptimize(result.window_energy.total_energy_pj);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(windows));
  state.counters["windows_per_sec"] = benchmark::Counter(
      static_cast<double>(windows), benchmark::Counter::kIsRate);
}

void BM_WindowEnergy_SessionBaseline(benchmark::State& state) {
  run_noc_session(state, /*close_windows=*/false);
}
BENCHMARK(BM_WindowEnergy_SessionBaseline);

void BM_WindowEnergy_SessionPerWindowClose(benchmark::State& state) {
  run_noc_session(state, /*close_windows=*/true);
}
BENCHMARK(BM_WindowEnergy_SessionPerWindowClose);

void run_cosim(benchmark::State& state, cosim::DvfsPolicyKind policy,
               std::uint32_t cycles_per_timestep) {
  const Mapped& m = mapped_workload();
  cosim::CoSimConfig config;
  config.snn = apps::synthetic_sim_config(m.workload);
  config.cycles_per_timestep = cycles_per_timestep;
  config.dvfs.kind = policy;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    snn::Network net = apps::build_synthetic_network(m.workload);
    cosim::CoSimulator sim(net, m.partition, m.placement,
                           noc::Topology::for_architecture(m.arch), config);
    const cosim::CoSimResult result = sim.run();
    benchmark::DoNotOptimize(result.fidelity.fabric_energy_pj);
    steps += result.fidelity.steps;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
  state.counters["steps_per_sec"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
}

void BM_CoSimulator_EnergyAccounting_Fixed(benchmark::State& state) {
  run_cosim(state, cosim::DvfsPolicyKind::kFixed, 2048);
}
BENCHMARK(BM_CoSimulator_EnergyAccounting_Fixed);

void BM_CoSimulator_EnergyAccounting_UtilizationDvfs(
    benchmark::State& state) {
  run_cosim(state, cosim::DvfsPolicyKind::kUtilizationThreshold, 2048);
}
BENCHMARK(BM_CoSimulator_EnergyAccounting_UtilizationDvfs);

void BM_CoSimulator_EnergyAccounting_DeadlineSlackDvfs(
    benchmark::State& state) {
  run_cosim(state, cosim::DvfsPolicyKind::kDeadlineSlack, 2048);
}
BENCHMARK(BM_CoSimulator_EnergyAccounting_DeadlineSlackDvfs);

void BM_CoSimulator_EnergyAccounting_CongestedFixed(benchmark::State& state) {
  run_cosim(state, cosim::DvfsPolicyKind::kFixed, 24);
}
BENCHMARK(BM_CoSimulator_EnergyAccounting_CongestedFixed);

}  // namespace
