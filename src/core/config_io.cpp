#include "core/config_io.hpp"

#include <stdexcept>

namespace snnmap::core {

PartitionerKind partitioner_from_string(const std::string& name) {
  if (name == "pso") return PartitionerKind::kPso;
  if (name == "pacman") return PartitionerKind::kPacman;
  if (name == "neutrams") return PartitionerKind::kNeutrams;
  if (name == "annealing") return PartitionerKind::kAnnealing;
  if (name == "genetic") return PartitionerKind::kGenetic;
  throw std::invalid_argument("unknown partitioner: '" + name + "'");
}

Objective objective_from_string(const std::string& name) {
  if (name == "aer-packets") return Objective::kAerPackets;
  if (name == "cut-spikes") return Objective::kCutSpikes;
  throw std::invalid_argument("unknown objective: '" + name + "'");
}

MappingFlowConfig mapping_flow_from_config(const util::Config& config) {
  MappingFlowConfig flow;

  // -- architecture
  flow.arch.crossbar_count = static_cast<std::uint32_t>(
      config.int_or("arch.crossbars", flow.arch.crossbar_count));
  flow.arch.neurons_per_crossbar = static_cast<std::uint32_t>(
      config.int_or("arch.neurons_per_crossbar",
                    flow.arch.neurons_per_crossbar));
  if (const auto kind = config.get_string("arch.interconnect")) {
    flow.arch.interconnect = hw::interconnect_from_string(*kind);
  }
  flow.arch.tree_arity = static_cast<std::uint32_t>(
      config.int_or("arch.tree_arity", flow.arch.tree_arity));
  flow.arch.dragonfly_arity = static_cast<std::uint32_t>(
      config.int_or("arch.dragonfly_arity", flow.arch.dragonfly_arity));
  flow.arch.dragonfly_groups = static_cast<std::uint32_t>(
      config.int_or("arch.dragonfly_groups", flow.arch.dragonfly_groups));
  flow.arch.dragonfly_global = static_cast<std::uint32_t>(
      config.int_or("arch.dragonfly_global", flow.arch.dragonfly_global));
  flow.arch.fattree_k = static_cast<std::uint32_t>(
      config.int_or("arch.fattree_k", flow.arch.fattree_k));
  flow.arch.chip_count = static_cast<std::uint32_t>(
      config.int_or("arch.chips", flow.arch.chip_count));
  flow.arch.cycles_per_ms = static_cast<std::uint32_t>(
      config.int_or("arch.cycles_per_ms", flow.arch.cycles_per_ms));

  // -- NoC
  flow.noc.buffer_depth = static_cast<std::uint32_t>(
      config.int_or("noc.buffer_depth", flow.noc.buffer_depth));
  flow.noc.multicast = config.bool_or("noc.multicast", flow.noc.multicast);
  if (const auto selection = config.get_string("noc.selection")) {
    if (*selection == "first-candidate") {
      flow.noc.selection = noc::SelectionStrategy::kFirstCandidate;
    } else if (*selection == "buffer-level") {
      flow.noc.selection = noc::SelectionStrategy::kBufferLevel;
    } else {
      throw std::invalid_argument("unknown selection strategy: '" +
                                  *selection + "'");
    }
  }
  if (const auto routing = config.get_string("noc.mesh_routing")) {
    flow.mesh_routing = noc::mesh_routing_from_string(*routing);
  }
  if (const auto engine = config.get_string("noc.engine")) {
    flow.noc.engine = noc::noc_engine_from_string(*engine);
  }
  flow.noc.max_cycles = static_cast<std::uint64_t>(
      config.int_or("noc.max_cycles",
                    static_cast<std::int64_t>(flow.noc.max_cycles)));
  flow.noc.collect_delivered = config.bool_or("noc.collect_delivered",
                                              flow.noc.collect_delivered);
  flow.noc.offchip_link_latency = static_cast<std::uint32_t>(
      config.int_or("noc.offchip_link_latency",
                    flow.noc.offchip_link_latency));

  // -- fault injection (all-zero defaults = inert model)
  noc::FaultConfig& faults = flow.noc.faults;
  faults.seed = static_cast<std::uint64_t>(
      config.int_or("faults.seed", static_cast<std::int64_t>(faults.seed)));
  faults.link_fault_rate =
      config.double_or("faults.link_fault_rate", faults.link_fault_rate);
  faults.router_fault_rate =
      config.double_or("faults.router_fault_rate", faults.router_fault_rate);
  faults.tile_fault_rate =
      config.double_or("faults.tile_fault_rate", faults.tile_fault_rate);
  faults.transient_link_rate = config.double_or("faults.transient_link_rate",
                                                faults.transient_link_rate);
  faults.transient_duration_cycles = static_cast<std::uint64_t>(
      config.int_or("faults.transient_duration_cycles",
                    static_cast<std::int64_t>(
                        faults.transient_duration_cycles)));
  faults.flit_drop_probability = config.double_or(
      "faults.flit_drop_probability", faults.flit_drop_probability);
  faults.horizon_cycles = static_cast<std::uint64_t>(
      config.int_or("faults.horizon_cycles",
                    static_cast<std::int64_t>(faults.horizon_cycles)));

  // -- observability (tracing + congestion monitor; defaults are inert)
  obs::TraceConfig& trace = flow.noc.trace;
  trace.enabled = config.bool_or("trace.enabled", trace.enabled);
  trace.ring_capacity = static_cast<std::uint32_t>(
      config.int_or("trace.ring_capacity", trace.ring_capacity));
  obs::MonitorConfig& monitor = flow.noc.monitor;
  monitor.enabled = config.bool_or("monitor.enabled", monitor.enabled);
  monitor.ewma_alpha =
      config.double_or("monitor.ewma_alpha", monitor.ewma_alpha);
  monitor.hot_occupancy =
      config.double_or("monitor.hot_occupancy", monitor.hot_occupancy);
  monitor.persistence_windows = static_cast<std::uint32_t>(
      config.int_or("monitor.persistence_windows",
                    monitor.persistence_windows));

  // -- energy (single source of truth: the NoC config's model, which the
  //    cost model and simulators all reference)
  flow.noc.energy = hw::EnergyModel::from_config(config);

  // -- PSO
  flow.pso.swarm_size = static_cast<std::uint32_t>(
      config.int_or("pso.swarm_size", flow.pso.swarm_size));
  flow.pso.iterations = static_cast<std::uint32_t>(
      config.int_or("pso.iterations", flow.pso.iterations));
  flow.pso.inertia = config.double_or("pso.inertia", flow.pso.inertia);
  flow.pso.phi1 = config.double_or("pso.phi1", flow.pso.phi1);
  flow.pso.phi2 = config.double_or("pso.phi2", flow.pso.phi2);
  flow.pso.v_max = config.double_or("pso.v_max", flow.pso.v_max);
  flow.pso.seed_with_baselines = config.bool_or(
      "pso.seed_with_baselines", flow.pso.seed_with_baselines);
  if (const auto objective = config.get_string("pso.objective")) {
    flow.pso.objective = objective_from_string(*objective);
  }
  flow.pso.refine_sweeps = static_cast<std::uint32_t>(
      config.int_or("pso.refine_sweeps", flow.pso.refine_sweeps));
  flow.pso.refine_swap_factor = static_cast<std::uint32_t>(
      config.int_or("pso.refine_swap_factor", flow.pso.refine_swap_factor));
  flow.pso.patience = static_cast<std::uint32_t>(
      config.int_or("pso.patience", flow.pso.patience));
  flow.pso.threads = static_cast<std::uint32_t>(
      config.int_or("pso.threads", flow.pso.threads));

  // -- annealing / genetic (ablation partitioners)
  flow.annealing.moves = static_cast<std::uint64_t>(config.int_or(
      "annealing.moves", static_cast<std::int64_t>(flow.annealing.moves)));
  flow.annealing.cooling =
      config.double_or("annealing.cooling", flow.annealing.cooling);
  flow.annealing.swap_probability = config.double_or(
      "annealing.swap_probability", flow.annealing.swap_probability);
  flow.annealing.restarts = static_cast<std::uint32_t>(
      config.int_or("annealing.restarts", flow.annealing.restarts));
  flow.annealing.threads = static_cast<std::uint32_t>(
      config.int_or("annealing.threads", flow.annealing.threads));
  flow.genetic.population = static_cast<std::uint32_t>(
      config.int_or("genetic.population", flow.genetic.population));
  flow.genetic.generations = static_cast<std::uint32_t>(
      config.int_or("genetic.generations", flow.genetic.generations));
  flow.genetic.mutation_rate =
      config.double_or("genetic.mutation_rate", flow.genetic.mutation_rate);
  flow.genetic.threads = static_cast<std::uint32_t>(
      config.int_or("genetic.threads", flow.genetic.threads));

  // -- flow-level switches
  if (const auto partitioner = config.get_string("flow.partitioner")) {
    flow.partitioner = partitioner_from_string(*partitioner);
  }
  flow.comm_aware_placement = config.bool_or("flow.comm_aware_placement",
                                             flow.comm_aware_placement);
  flow.injection_jitter_cycles = static_cast<std::uint32_t>(
      config.int_or("flow.injection_jitter_cycles",
                    flow.injection_jitter_cycles));
  flow.seed = static_cast<std::uint64_t>(
      config.int_or("flow.seed", static_cast<std::int64_t>(flow.seed)));
  return flow;
}

cosim::CoSimConfig cosim_from_config(const util::Config& config,
                                     cosim::CoSimConfig base) {
  base.cycles_per_timestep = static_cast<std::uint32_t>(
      config.int_or("cosim.cycles_per_timestep",
                    base.cycles_per_timestep));
  // "unbounded" (the default) serializes as the sentinel; any positive
  // depth bounds the queue and 0 is rejected by the CoSimulator.
  base.receive_queue_depth = static_cast<std::uint32_t>(
      config.int_or("cosim.receive_queue_depth",
                    base.receive_queue_depth));
  base.injection_jitter_cycles = static_cast<std::uint32_t>(
      config.int_or("cosim.injection_jitter_cycles",
                    base.injection_jitter_cycles));
  // -- DVFS fabric scaling
  if (const auto policy = config.get_string("dvfs.policy")) {
    base.dvfs.kind = cosim::dvfs_policy_from_string(*policy);
  }
  base.dvfs.min_scale =
      config.double_or("dvfs.min_scale", base.dvfs.min_scale);
  base.dvfs.low_utilization =
      config.double_or("dvfs.low_utilization", base.dvfs.low_utilization);
  base.dvfs.high_utilization =
      config.double_or("dvfs.high_utilization", base.dvfs.high_utilization);
  base.dvfs.slack_fraction =
      config.double_or("dvfs.slack_fraction", base.dvfs.slack_fraction);
  // -- AER retry protocol
  base.retry.enabled = config.bool_or("retry.enabled", base.retry.enabled);
  base.retry.max_retries = static_cast<std::uint32_t>(
      config.int_or("retry.max_retries", base.retry.max_retries));
  base.retry.backoff_windows = static_cast<std::uint32_t>(
      config.int_or("retry.backoff_windows", base.retry.backoff_windows));
  base.retry.timeout_windows = static_cast<std::uint32_t>(
      config.int_or("retry.timeout_windows", base.retry.timeout_windows));
  return base;
}

void cosim_to_config(const cosim::CoSimConfig& cosim, util::Config& config) {
  config.set("cosim.cycles_per_timestep",
             std::to_string(cosim.cycles_per_timestep));
  config.set("cosim.receive_queue_depth",
             std::to_string(cosim.receive_queue_depth));
  config.set("cosim.injection_jitter_cycles",
             std::to_string(cosim.injection_jitter_cycles));
  config.set("dvfs.policy", cosim::to_string(cosim.dvfs.kind));
  config.set("dvfs.min_scale", std::to_string(cosim.dvfs.min_scale));
  config.set("dvfs.low_utilization",
             std::to_string(cosim.dvfs.low_utilization));
  config.set("dvfs.high_utilization",
             std::to_string(cosim.dvfs.high_utilization));
  config.set("dvfs.slack_fraction",
             std::to_string(cosim.dvfs.slack_fraction));
  config.set("retry.enabled", cosim.retry.enabled ? "true" : "false");
  config.set("retry.max_retries", std::to_string(cosim.retry.max_retries));
  config.set("retry.backoff_windows",
             std::to_string(cosim.retry.backoff_windows));
  config.set("retry.timeout_windows",
             std::to_string(cosim.retry.timeout_windows));
}

void mapping_flow_to_config(const MappingFlowConfig& flow,
                            util::Config& config) {
  config.set("arch.crossbars", std::to_string(flow.arch.crossbar_count));
  config.set("arch.neurons_per_crossbar",
             std::to_string(flow.arch.neurons_per_crossbar));
  config.set("arch.interconnect", hw::to_string(flow.arch.interconnect));
  config.set("arch.tree_arity", std::to_string(flow.arch.tree_arity));
  config.set("arch.dragonfly_arity",
             std::to_string(flow.arch.dragonfly_arity));
  config.set("arch.dragonfly_groups",
             std::to_string(flow.arch.dragonfly_groups));
  config.set("arch.dragonfly_global",
             std::to_string(flow.arch.dragonfly_global));
  config.set("arch.fattree_k", std::to_string(flow.arch.fattree_k));
  config.set("arch.chips", std::to_string(flow.arch.chip_count));
  config.set("arch.cycles_per_ms", std::to_string(flow.arch.cycles_per_ms));

  config.set("noc.buffer_depth", std::to_string(flow.noc.buffer_depth));
  config.set("noc.multicast", flow.noc.multicast ? "true" : "false");
  config.set("noc.selection", noc::to_string(flow.noc.selection));
  config.set("noc.mesh_routing", noc::to_string(flow.mesh_routing));
  config.set("noc.engine", noc::to_string(flow.noc.engine));
  config.set("noc.max_cycles", std::to_string(flow.noc.max_cycles));
  config.set("noc.collect_delivered",
             flow.noc.collect_delivered ? "true" : "false");
  config.set("noc.offchip_link_latency",
             std::to_string(flow.noc.offchip_link_latency));

  const noc::FaultConfig& faults = flow.noc.faults;
  config.set("faults.seed", std::to_string(faults.seed));
  config.set("faults.link_fault_rate",
             std::to_string(faults.link_fault_rate));
  config.set("faults.router_fault_rate",
             std::to_string(faults.router_fault_rate));
  config.set("faults.tile_fault_rate",
             std::to_string(faults.tile_fault_rate));
  config.set("faults.transient_link_rate",
             std::to_string(faults.transient_link_rate));
  config.set("faults.transient_duration_cycles",
             std::to_string(faults.transient_duration_cycles));
  config.set("faults.flit_drop_probability",
             std::to_string(faults.flit_drop_probability));
  config.set("faults.horizon_cycles",
             std::to_string(faults.horizon_cycles));

  config.set("trace.enabled", flow.noc.trace.enabled ? "true" : "false");
  config.set("trace.ring_capacity",
             std::to_string(flow.noc.trace.ring_capacity));
  config.set("monitor.enabled",
             flow.noc.monitor.enabled ? "true" : "false");
  config.set("monitor.ewma_alpha",
             std::to_string(flow.noc.monitor.ewma_alpha));
  config.set("monitor.hot_occupancy",
             std::to_string(flow.noc.monitor.hot_occupancy));
  config.set("monitor.persistence_windows",
             std::to_string(flow.noc.monitor.persistence_windows));

  flow.noc.energy.to_config(config);

  config.set("pso.swarm_size", std::to_string(flow.pso.swarm_size));
  config.set("pso.iterations", std::to_string(flow.pso.iterations));
  config.set("pso.inertia", std::to_string(flow.pso.inertia));
  config.set("pso.phi1", std::to_string(flow.pso.phi1));
  config.set("pso.phi2", std::to_string(flow.pso.phi2));
  config.set("pso.v_max", std::to_string(flow.pso.v_max));
  config.set("pso.seed_with_baselines",
             flow.pso.seed_with_baselines ? "true" : "false");
  config.set("pso.objective", to_string(flow.pso.objective));
  config.set("pso.refine_sweeps", std::to_string(flow.pso.refine_sweeps));
  config.set("pso.refine_swap_factor",
             std::to_string(flow.pso.refine_swap_factor));
  config.set("pso.patience", std::to_string(flow.pso.patience));
  config.set("pso.threads", std::to_string(flow.pso.threads));

  config.set("annealing.moves", std::to_string(flow.annealing.moves));
  config.set("annealing.cooling", std::to_string(flow.annealing.cooling));
  config.set("annealing.swap_probability",
             std::to_string(flow.annealing.swap_probability));
  config.set("annealing.restarts", std::to_string(flow.annealing.restarts));
  config.set("annealing.threads", std::to_string(flow.annealing.threads));
  config.set("genetic.population", std::to_string(flow.genetic.population));
  config.set("genetic.generations",
             std::to_string(flow.genetic.generations));
  config.set("genetic.mutation_rate",
             std::to_string(flow.genetic.mutation_rate));
  config.set("genetic.threads", std::to_string(flow.genetic.threads));

  config.set("flow.partitioner", to_string(flow.partitioner));
  config.set("flow.comm_aware_placement",
             flow.comm_aware_placement ? "true" : "false");
  config.set("flow.injection_jitter_cycles",
             std::to_string(flow.injection_jitter_cycles));
  config.set("flow.seed", std::to_string(flow.seed));
}

}  // namespace snnmap::core
