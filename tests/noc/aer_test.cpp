#include "noc/aer.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace snnmap::noc {
namespace {

TEST(Aer, RoundTripsTypicalEvent) {
  const AerEvent e{.source_neuron = 1234,
                   .source_crossbar = 7,
                   .timestamp = 987654321};
  const AerEvent back = aer_decode(aer_encode(e));
  EXPECT_EQ(back.source_neuron, e.source_neuron);
  EXPECT_EQ(back.source_crossbar, e.source_crossbar);
  EXPECT_EQ(back.timestamp, e.timestamp);
}

TEST(Aer, RoundTripsFieldExtremes) {
  const AerEvent e{.source_neuron = kAerMaxNeuron,
                   .source_crossbar = kAerMaxCrossbar,
                   .timestamp = 0xFFFFFFFFu};
  const AerEvent back = aer_decode(aer_encode(e));
  EXPECT_EQ(back.source_neuron, kAerMaxNeuron);
  EXPECT_EQ(back.source_crossbar, kAerMaxCrossbar);
  EXPECT_EQ(back.timestamp, 0xFFFFFFFFu);
}

TEST(Aer, ZeroEventIsZeroWord) {
  EXPECT_EQ(aer_encode({0, 0, 0}).bits, 0u);
}

TEST(Aer, RejectsOverflowingFields) {
  EXPECT_THROW(aer_encode({kAerMaxNeuron + 1, 0, 0}), std::out_of_range);
  EXPECT_THROW(aer_encode({0, kAerMaxCrossbar + 1, 0}), std::out_of_range);
}

TEST(Aer, FieldsDoNotOverlap) {
  // Setting one field must not perturb the others.
  const auto neuron_only = aer_decode(aer_encode({5, 0, 0}));
  EXPECT_EQ(neuron_only.source_neuron, 5u);
  EXPECT_EQ(neuron_only.source_crossbar, 0u);
  EXPECT_EQ(neuron_only.timestamp, 0u);
  const auto crossbar_only = aer_decode(aer_encode({0, 5, 0}));
  EXPECT_EQ(crossbar_only.source_neuron, 0u);
  EXPECT_EQ(crossbar_only.source_crossbar, 5u);
  EXPECT_EQ(crossbar_only.timestamp, 0u);
}

TEST(Aer, EncodingIsInjectiveOnDistinctEvents) {
  const auto a = aer_encode({1, 2, 3});
  const auto b = aer_encode({1, 2, 4});
  const auto c = aer_encode({2, 2, 3});
  EXPECT_NE(a.bits, b.bits);
  EXPECT_NE(a.bits, c.bits);
  EXPECT_NE(b.bits, c.bits);
}

TEST(Aer, TimestampWrapsAtTwoToTheThirtyTwo) {
  // Co-sim cycle counts (steps x cycles_per_timestep) can exceed the
  // 32-bit timestamp field; the wrap contract is cycle mod 2^32.
  EXPECT_EQ(aer_timestamp(0), 0u);
  EXPECT_EQ(aer_timestamp(kAerTimeWrap - 1), 0xFFFFFFFFu);
  EXPECT_EQ(aer_timestamp(kAerTimeWrap), 0u);
  EXPECT_EQ(aer_timestamp(kAerTimeWrap + 5), 5u);
  EXPECT_EQ(aer_timestamp(3 * kAerTimeWrap + 17), 17u);
}

TEST(Aer, RoundTripsAtTheWrapBoundary) {
  // Every 64-bit cycle folds to a representable timestamp that encodes and
  // decodes exactly; two cycles one wrap apart are indistinguishable on
  // the wire (documented ambiguity — bookkeeping rides 64-bit counters).
  for (const std::uint64_t cycle :
       {kAerTimeWrap - 1, kAerTimeWrap, kAerTimeWrap + 1,
        7 * kAerTimeWrap + 12345}) {
    const AerEvent back =
        aer_decode(aer_encode({42, 3, aer_timestamp(cycle)}));
    EXPECT_EQ(back.timestamp, static_cast<std::uint32_t>(cycle))
        << "cycle " << cycle;
    EXPECT_EQ(back.source_neuron, 42u);
    EXPECT_EQ(back.source_crossbar, 3u);
  }
  EXPECT_EQ(aer_encode({42, 3, aer_timestamp(kAerTimeWrap + 9)}),
            aer_encode({42, 3, aer_timestamp(9)}));
}

/// Property sweep: round-trip across a structured grid of field values.
class AerRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AerRoundTrip, Holds) {
  const std::uint32_t seed = GetParam();
  // Derive pseudo-random in-range fields from the seed deterministically.
  const std::uint32_t neuron = (seed * 2654435761u) & kAerMaxNeuron;
  const std::uint32_t crossbar = (seed * 40503u) & kAerMaxCrossbar;
  const std::uint32_t time = seed * 97u + 13u;
  const AerEvent back =
      aer_decode(aer_encode({neuron, crossbar, time}));
  EXPECT_EQ(back.source_neuron, neuron);
  EXPECT_EQ(back.source_crossbar, crossbar);
  EXPECT_EQ(back.timestamp, time);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AerRoundTrip,
                         ::testing::Range(0u, 64u));

}  // namespace
}  // namespace snnmap::noc
