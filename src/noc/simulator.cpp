#include "noc/simulator.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <unordered_map>

#include "util/log.hpp"

namespace snnmap::noc {

NocSimulator::NocSimulator(Topology topology, NocConfig config)
    : topology_(std::move(topology)), config_(config) {
  // reverse_port_[r][o] = input-port index at neighbor(r, o) through which
  // flits sent from r arrive (the neighbor's port back toward r).
  const std::uint32_t n = topology_.router_count();
  reverse_port_.resize(n);
  for (RouterId r = 0; r < n; ++r) {
    const std::uint32_t ports = topology_.port_count(r);
    reverse_port_[r].resize(ports);
    for (PortId o = 0; o < ports; ++o) {
      const RouterId nb = topology_.neighbor(r, o);
      std::uint32_t back = static_cast<std::uint32_t>(-1);
      for (PortId p = 0; p < topology_.port_count(nb); ++p) {
        if (topology_.neighbor(nb, p) == r) {
          back = p;
          break;
        }
      }
      if (back == static_cast<std::uint32_t>(-1)) {
        throw std::logic_error("NocSimulator: asymmetric topology link");
      }
      reverse_port_[r][o] = back;
    }
  }
}

std::vector<TileId> NocSimulator::dests_via_port(
    const Router& r, const Flit& flit, std::uint32_t out_port,
    const std::vector<std::vector<std::size_t>>& staged_count,
    const std::vector<Router>& routers) const {
  std::vector<TileId> subset;
  const bool adaptive_single = flit.dests.size() == 1;
  for (TileId dest : flit.dests) {
    const RouterId dst_router = topology_.router_of_tile(dest);
    if (dst_router == r.id()) {
      if (out_port == r.port_count()) subset.push_back(dest);
      continue;
    }
    PortId candidates[3];
    const std::uint32_t count =
        topology_.route_candidates(r.id(), dst_router, candidates);
    PortId chosen = candidates[0];
    if (adaptive_single && count > 1) {
      // Selection strategy: pick among the turn-model's legal candidates.
      if (config_.selection == SelectionStrategy::kFirstCandidate) {
        for (std::uint32_t k = 0; k < count; ++k) {
          const RouterId nb = topology_.neighbor(r.id(), candidates[k]);
          const std::uint32_t nb_port = reverse_port_[r.id()][candidates[k]];
          if (routers[nb].can_accept(nb_port, staged_count[nb][nb_port])) {
            chosen = candidates[k];
            break;
          }
        }
      } else {  // kBufferLevel: most free downstream slots (ties: first)
        std::size_t best_free = 0;
        for (std::uint32_t k = 0; k < count; ++k) {
          const RouterId nb = topology_.neighbor(r.id(), candidates[k]);
          const std::uint32_t nb_port = reverse_port_[r.id()][candidates[k]];
          const std::size_t used = routers[nb].in_queue(nb_port).size() +
                                   staged_count[nb][nb_port];
          const std::size_t free =
              used >= config_.buffer_depth ? 0 : config_.buffer_depth - used;
          if (free > best_free) {
            best_free = free;
            chosen = candidates[k];
          }
        }
      }
    }
    if (chosen == out_port) subset.push_back(dest);
  }
  return subset;
}

const char* to_string(SelectionStrategy selection) noexcept {
  switch (selection) {
    case SelectionStrategy::kFirstCandidate: return "first-candidate";
    case SelectionStrategy::kBufferLevel: return "buffer-level";
  }
  return "?";
}

NocRunResult NocSimulator::run(std::vector<SpikePacketEvent> traffic) {
  NocRunResult result;
  NocStats& stats = result.stats;

  std::sort(traffic.begin(), traffic.end(),
            [](const SpikePacketEvent& a, const SpikePacketEvent& b) {
              if (a.emit_cycle != b.emit_cycle)
                return a.emit_cycle < b.emit_cycle;
              if (a.source_tile != b.source_tile)
                return a.source_tile < b.source_tile;
              return a.source_neuron < b.source_neuron;
            });

  std::vector<Router> routers;
  routers.reserve(topology_.router_count());
  for (RouterId r = 0; r < topology_.router_count(); ++r) {
    routers.emplace_back(r, topology_.port_count(r), config_.buffer_depth);
  }

  std::unordered_map<std::uint32_t, std::uint32_t> sequence_counter;
  std::map<std::uint64_t, std::uint64_t> link_flits;  // directed link -> count
  std::size_t next_event = 0;
  std::uint64_t now = 0;
  std::size_t in_flight = 0;

  std::vector<StagedMove> staged;
  // staged_count[r][port] = arrivals already bound for that queue this cycle.
  std::vector<std::vector<std::size_t>> staged_count(topology_.router_count());
  for (RouterId r = 0; r < topology_.router_count(); ++r) {
    staged_count[r].assign(topology_.port_count(r) + 1, 0);
  }

  const auto make_flit = [&](const SpikePacketEvent& ev,
                             std::vector<TileId> dests) {
    Flit f;
    f.source_neuron = ev.source_neuron;
    f.source_tile = ev.source_tile;
    f.emit_cycle = ev.emit_cycle;
    f.emit_step = ev.emit_step;
    f.sequence = sequence_counter[ev.source_neuron];
    f.dests = std::move(dests);
    f.payload = aer_encode({ev.source_neuron & kAerMaxNeuron,
                            ev.source_tile & kAerMaxCrossbar,
                            static_cast<std::uint32_t>(ev.emit_cycle)});
    return f;
  };

  while (true) {
    // ---- 1. Inject all packets emitted this cycle.
    while (next_event < traffic.size() &&
           traffic[next_event].emit_cycle <= now) {
      const SpikePacketEvent& ev = traffic[next_event];
      if (ev.dest_tiles.empty()) {
        throw std::invalid_argument(
            "NocSimulator: packet event with no destinations");
      }
      Router& src = routers.at(topology_.router_of_tile(ev.source_tile));
      ++stats.packets_injected;
      if (config_.multicast) {
        src.in_queue(src.port_count()).push_back(make_flit(ev, ev.dest_tiles));
        ++stats.flits_injected;
        stats.global_energy_pj += config_.energy.aer_codec_pj;
        ++in_flight;
      } else {
        // Source-replicated unicast: one independent copy per destination.
        for (TileId dest : ev.dest_tiles) {
          src.in_queue(src.port_count()).push_back(make_flit(ev, {dest}));
          ++stats.flits_injected;
          stats.global_energy_pj += config_.energy.aer_codec_pj;
          ++in_flight;
        }
      }
      ++sequence_counter[traffic[next_event].source_neuron];
      ++next_event;
    }

    if (in_flight == 0) {
      if (next_event >= traffic.size()) break;  // drained
      // Fast-forward idle gaps between traffic bursts.
      now = traffic[next_event].emit_cycle;
      continue;
    }
    if (now >= config_.max_cycles) {
      stats.drained = false;
      util::log_warn("NocSimulator: max_cycles reached with ", in_flight,
                     " flits in flight");
      break;
    }

    // ---- 2. Arbitration: each output port of each router moves <= 1 flit.
    staged.clear();
    for (auto& counts : staged_count) {
      std::fill(counts.begin(), counts.end(), 0);
    }

    for (Router& r : routers) {
      const std::uint32_t outputs = r.port_count() + 1;  // + local eject
      for (std::uint32_t out = 0; out < outputs; ++out) {
        // Round-robin over input queues for this output.
        const std::uint32_t inputs = r.input_count();
        const std::uint32_t start = r.rr_pointer(out);
        for (std::uint32_t k = 0; k < inputs; ++k) {
          const std::uint32_t in = (start + k) % inputs;
          auto& queue = r.in_queue(in);
          if (queue.empty()) continue;
          Flit& head = queue.front();
          if (head.dests.empty()) continue;  // fully served, pops below
          const std::vector<TileId> subset =
              dests_via_port(r, head, out, staged_count, routers);
          if (subset.empty()) continue;

          if (out == r.port_count()) {
            // Local ejection: deliver every destination attached here
            // (exactly one tile per router).
            for (TileId dest : subset) {
              DeliveredSpike d;
              d.source_neuron = head.source_neuron;
              d.source_tile = head.source_tile;
              d.dest_tile = dest;
              d.emit_cycle = head.emit_cycle;
              d.emit_step = head.emit_step;
              d.recv_cycle = now + 1;
              d.sequence = head.sequence;
              result.delivered.push_back(d);
              ++stats.copies_delivered;
              stats.latency_cycles.add(static_cast<double>(d.latency()));
              stats.max_latency_cycles =
                  std::max(stats.max_latency_cycles, d.latency());
            }
            ++stats.router_traversals;
            stats.global_energy_pj +=
                config_.energy.router_flit_pj + config_.energy.aer_codec_pj;
          } else {
            const RouterId nb = topology_.neighbor(r.id(), out);
            const std::uint32_t nb_port = reverse_port_[r.id()][out];
            if (!routers[nb].can_accept(nb_port,
                                        staged_count[nb][nb_port])) {
              continue;  // backpressure: try another input for this output
            }
            Flit copy = head;
            copy.dests = subset;
            staged.push_back({nb, nb_port, std::move(copy)});
            ++staged_count[nb][nb_port];
            ++in_flight;
            ++stats.link_hops;
            ++stats.router_traversals;
            ++link_flits[(static_cast<std::uint64_t>(r.id()) << 32) | nb];
            stats.global_energy_pj +=
                config_.energy.link_hop_pj + config_.energy.router_flit_pj;
          }
          // Served destinations leave the head flit; it pops once empty.
          for (const TileId dest : subset) {
            head.dests.erase(
                std::find(head.dests.begin(), head.dests.end(), dest));
          }
          r.advance_rr(out);
          break;  // this output port is used for this cycle
        }
      }
      // Pop head flits whose destinations have all been served.
      for (std::uint32_t in = 0; in < r.input_count(); ++in) {
        auto& queue = r.in_queue(in);
        if (!queue.empty() && queue.front().dests.empty()) {
          queue.pop_front();
          --in_flight;
        }
      }
    }

    // ---- 3. Commit staged inter-router moves.
    for (auto& move : staged) {
      routers[move.to_router].in_queue(move.to_port).push_back(
          std::move(move.flit));
    }

    ++now;
  }

  stats.duration_cycles = now;
  stats.link_flits.assign(link_flits.begin(), link_flits.end());
  result.snn = compute_snn_metrics(result.delivered);
  return result;
}

}  // namespace snnmap::noc
