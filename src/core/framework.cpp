#include "core/framework.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "core/neutrams.hpp"
#include "core/pacman.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace snnmap::core {

const char* to_string(PartitionerKind kind) noexcept {
  switch (kind) {
    case PartitionerKind::kPso: return "pso";
    case PartitionerKind::kPacman: return "pacman";
    case PartitionerKind::kNeutrams: return "neutrams";
    case PartitionerKind::kAnnealing: return "annealing";
    case PartitionerKind::kGenetic: return "genetic";
  }
  return "?";
}

Partition run_partitioner(const snn::SnnGraph& graph,
                          const MappingFlowConfig& config) {
  switch (config.partitioner) {
    case PartitionerKind::kPso: {
      PsoConfig pso = config.pso;
      pso.seed = config.seed;
      return PsoPartitioner(graph, config.arch, pso).optimize().best;
    }
    case PartitionerKind::kPacman:
      return pacman_partition(graph, config.arch);
    case PartitionerKind::kNeutrams:
      return neutrams_partition(graph, config.arch);
    case PartitionerKind::kAnnealing: {
      AnnealingConfig sa = config.annealing;
      sa.seed = config.seed;
      return annealing_partition(graph, config.arch, sa).best;
    }
    case PartitionerKind::kGenetic: {
      GeneticConfig ga = config.genetic;
      ga.seed = config.seed;
      return genetic_partition(graph, config.arch, ga).best;
    }
  }
  throw std::logic_error("run_partitioner: unknown partitioner kind");
}

std::vector<noc::SpikePacketEvent> build_traffic(
    const snn::SnnGraph& graph, const Partition& partition,
    const Placement& placement, std::uint32_t cycles_per_ms,
    std::uint32_t jitter_cycles) {
  if (placement.size() != partition.crossbar_count()) {
    throw std::invalid_argument("build_traffic: placement size mismatch");
  }
  std::vector<noc::SpikePacketEvent> traffic;
  const auto& part = partition.assignment();
  const auto& offsets = graph.fanout_offsets();
  const auto& targets = graph.fanout_targets();
  // snnmap-lint: allow(unordered-iteration) -- iteration only fills
  // dest_tiles, which is sorted before use; order cannot reach traffic.
  std::unordered_set<CrossbarId> remote;
  for (std::uint32_t i = 0; i < graph.neuron_count(); ++i) {
    const auto& train = graph.spike_train(i);
    if (train.empty()) continue;
    remote.clear();
    for (std::uint32_t k = offsets[i]; k < offsets[i + 1]; ++k) {
      const CrossbarId c = part[targets[k]];
      if (c != part[i]) remote.insert(c);
    }
    if (remote.empty()) continue;  // purely local fan-out
    std::vector<noc::TileId> dest_tiles;
    dest_tiles.reserve(remote.size());
    // snnmap-lint: allow(unordered-iteration) -- sorted two lines below.
    for (const CrossbarId c : remote) dest_tiles.push_back(placement[c]);
    std::sort(dest_tiles.begin(), dest_tiles.end());
    for (std::size_t s = 0; s < train.size(); ++s) {
      noc::SpikePacketEvent ev;
      ev.source_neuron = i;
      ev.source_tile = placement[part[i]];
      // Spike at t ms enters the encoder at cycle t * cycles_per_ms.
      const auto base = static_cast<std::uint64_t>(
          std::floor(train[s] * static_cast<double>(cycles_per_ms)));
      const std::uint64_t jitter =
          jitter_cycles ? util::spike_jitter_hash(i, s) % jitter_cycles : 0;
      ev.emit_cycle = base + jitter;
      // The SNN step index; same-step spikes are unordered for the
      // disorder metric.
      ev.emit_step = static_cast<std::uint64_t>(std::floor(train[s]));
      ev.dest_tiles = dest_tiles;
      traffic.push_back(std::move(ev));
    }
  }
  return traffic;
}

MappingReport run_mapping_flow(const snn::SnnGraph& graph,
                               const MappingFlowConfig& config) {
  MappingReport report;
  report.partition = run_partitioner(graph, config);
  report.partition.validate(config.arch);

  noc::Topology topology = noc::Topology::for_architecture(config.arch);
  if (config.arch.interconnect == hw::InterconnectKind::kMesh) {
    topology.set_mesh_routing(config.mesh_routing);
  }
  CostModel cost(graph);
  if (config.comm_aware_placement) {
    report.placement = greedy_placement(cost.traffic_matrix(report.partition),
                                        config.arch.crossbar_count, topology);
  } else {
    report.placement =
        identity_placement(config.arch.crossbar_count, topology);
  }

  report.global_spikes = cost.global_spike_count(report.partition);
  report.aer_packets = cost.multicast_packet_count(report.partition);
  report.local_events = cost.local_event_count(report.partition);
  report.local_energy_pj =
      cost.local_energy_pj(report.partition, config.energy());
  report.analytic_global_energy_pj = cost.analytic_global_energy_pj(
      report.partition, topology, report.placement, config.energy(),
      config.noc.multicast);

  auto traffic = build_traffic(graph, report.partition, report.placement,
                               config.arch.cycles_per_ms,
                               config.injection_jitter_cycles);
  report.packets_offered = traffic.size();

  noc::NocSimulator sim(std::move(topology), config.noc);
  noc::NocRunResult run = sim.run(std::move(traffic));
  report.noc_stats = run.stats;
  report.snn_metrics = run.snn;
  report.global_energy_pj = run.stats.global_energy_pj;

  util::log_info("flow[", to_string(config.partitioner), "]: F=",
                 report.global_spikes, " spikes, global E=",
                 report.global_energy_pj * 1e-6, " uJ, max latency=",
                 report.noc_stats.max_latency_cycles, " cycles");
  return report;
}

}  // namespace snnmap::core
