#!/usr/bin/env bash
# Tier-1 verify: a lint gate plus four build/test legs.
#   0. Lint      — scripts/lint.sh: snnmap-lint determinism/contract rules
#                  (always), clang-tidy + clang-format when the toolchain
#                  has them (each skipped with a notice otherwise).
#   1. Debug     — assertions and debug-only checks live, warnings-as-errors.
#   2. Release   — -O3 -DNDEBUG, the configuration the benchmarks and the
#                  perf acceptance numbers (scripts/bench.sh) are measured in.
#   3. Sanitize  — Debug + AddressSanitizer + UndefinedBehaviorSanitizer
#                  (-fno-sanitize-recover, so any finding fails the leg).
#   4. TSan      — Debug + ThreadSanitizer over the concurrency surface:
#                  the ThreadPool suite plus the batch-evaluator and
#                  determinism suites that drive it from many threads.
# Legs 1-3 run the full CTest suite, so optimization-dependent breakage
# (UB, fragile float expectations) and memory errors surface here and not
# in a profile run.  Leg 4 runs the filtered concurrency subset (TSan's
# 5-15x slowdown makes the full suite impractical).  Skips:
#   SKIP_LINT=1      drop leg 0
#   SKIP_SANITIZE=1  drop leg 3 (e.g. on toolchains without libasan)
#   SKIP_TSAN=1      drop leg 4 (e.g. on toolchains without libtsan)
# Perf is gated separately: scripts/bench.sh --check compares the Release
# benchmarks against the committed BENCH_*.json trajectories.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}

run_leg() {
  local build_type=$1
  local build_dir=$2
  shift 2
  echo "=== ci leg: ${build_type} (${build_dir}) $* ==="
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE="$build_type" \
    -DSNNMAP_WERROR=ON \
    "$@"
  cmake --build "$build_dir" -j "$JOBS"
  # The benchmark suites (BENCH_*.json trajectories) are part of the `all`
  # target, so the build above compiles them whenever Google Benchmark is
  # available; assert every binary actually materialized so a silently
  # skipped/ungenerated target cannot pass the leg.
  if ! grep -q "benchmark_DIR:PATH=benchmark_DIR-NOTFOUND" \
      "$build_dir/CMakeCache.txt"; then
    for bench in noc_sim_benchmarks snn_sim_benchmarks cosim_benchmarks \
        energy_benchmarks fault_benchmarks obs_benchmarks; do
      if [[ ! -x "$build_dir/bench/$bench" ]]; then
        echo "$bench did not build despite Google Benchmark" >&2
        exit 1
      fi
    done
  else
    echo "note: benchmark targets absent (Google Benchmark missing)"
  fi
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
}

if [[ "${SKIP_LINT:-0}" != "1" ]]; then
  echo "=== ci leg: lint ==="
  scripts/lint.sh
fi

run_leg Debug "${DEBUG_BUILD_DIR:-build-debug}"
run_leg Release "${BUILD_DIR:-build}"
if [[ "${SKIP_SANITIZE:-0}" != "1" ]]; then
  run_leg Debug "${SANITIZE_BUILD_DIR:-build-asan}" \
    -DSNNMAP_SANITIZE=address,undefined
fi

# Dedicated block rather than run_leg: benches and examples are off here
# (TSan rebuild cost buys no coverage there), which would trip run_leg's
# bench-binary assertion.
if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  tsan_dir="${TSAN_BUILD_DIR:-build-tsan}"
  echo "=== ci leg: Debug (${tsan_dir}) -DSNNMAP_SANITIZE=thread ==="
  cmake -B "$tsan_dir" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DSNNMAP_WERROR=ON \
    -DSNNMAP_SANITIZE=thread \
    -DSNNMAP_BUILD_BENCH=OFF \
    -DSNNMAP_BUILD_EXAMPLES=OFF
  cmake --build "$tsan_dir" -j "$JOBS"
  # The concurrency surface: the pool itself, the evaluators that share it
  # across worker threads, and the determinism suites that run serial vs
  # parallel back to back.  --no-tests=error so a filter typo (or a suite
  # rename) fails loudly instead of green-skipping the leg.
  ctest --test-dir "$tsan_dir" --output-on-failure -j "$JOBS" \
    --no-tests=error \
    -R '^util\.ThreadPool|^core\.Determinism|^core\.Batch(Noc)?Evaluator'
fi
