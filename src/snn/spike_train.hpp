// Spike trains and inter-spike-interval (ISI) utilities.
//
// A spike train is a monotonically non-decreasing sequence of spike times in
// milliseconds.  ISI statistics are central to the paper: the heartbeat
// estimation app is temporally coded, and one of the two introduced metrics
// (ISI distortion, Sec. II) compares source and destination ISIs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace snnmap::snn {

/// Simulation time in milliseconds.
using TimeMs = double;

/// A single spike train (sorted spike times of one neuron, in ms).
using SpikeTrain = std::vector<TimeMs>;

/// One entry of a flat spike event log: which neuron fired, and when.  The
/// simulator records spikes as a single append-only vector of these (16
/// bytes, no per-neuron allocation) and scatters them into trains on demand.
struct SpikeEvent {
  std::uint32_t neuron = 0;
  TimeMs time_ms = 0.0;
};

/// Scatters a time-ordered flat event log into per-neuron spike trains by
/// counting sort: one pass to size every train exactly, one pass to fill.
/// Events must be sorted by time (ties in any order); each returned train is
/// then sorted by construction.  Neuron ids must be < neuron_count.
std::vector<SpikeTrain> trains_from_events(std::size_t neuron_count,
                                           const std::vector<SpikeEvent>& events);

/// True if times are sorted (non-decreasing) and non-negative.
bool is_valid_train(const SpikeTrain& train);

/// Consecutive inter-spike intervals; empty for fewer than two spikes.
std::vector<double> inter_spike_intervals(const SpikeTrain& train);

/// Mean firing rate in Hz over [0, duration_ms]; 0 for an empty window.
double mean_rate_hz(const SpikeTrain& train, TimeMs duration_ms);

/// Number of spikes in the half-open window [t0, t1).
std::size_t spikes_in_window(const SpikeTrain& train, TimeMs t0, TimeMs t1);

/// Coefficient of variation of the ISIs (stddev/mean); 0 when undefined.
/// CV ~= 1 characterizes Poisson firing; the workload generators are
/// validated against this in the property tests.
double isi_coefficient_of_variation(const SpikeTrain& train);

/// Merges two sorted trains into one sorted train.
SpikeTrain merge_trains(const SpikeTrain& a, const SpikeTrain& b);

/// Victor-Purpura-style spike count distance: |count(a) - count(b)|.
/// Used as a cheap train-similarity check in tests.
std::size_t spike_count_distance(const SpikeTrain& a, const SpikeTrain& b);

}  // namespace snnmap::snn
