// Golden determinism tests: the simulator must reproduce, bit for bit, the
// delivered-spike streams and statistics captured from the pre-refactor
// (PR 1 seed) simulator across topologies, routing algorithms, selection
// strategies, multicast modes, buffer depths, and the non-drained path.
// Fixtures are regenerated with the snnmap_noc_golden_capture tool.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "golden_scenarios.hpp"

namespace snnmap::noc {
namespace {

struct GoldenFixture {
  const char* name;
  std::uint64_t delivered_hash;
  std::uint64_t stats_hash;
  std::uint64_t snn_hash;
  std::uint64_t copies_delivered;
  std::uint64_t duration_cycles;
  std::uint64_t link_hops;
};

constexpr GoldenFixture kGolden[] = {
#include "golden_fixtures.inc"
};

const GoldenFixture* find_fixture(const std::string& name) {
  for (const GoldenFixture& f : kGolden) {
    if (name == f.name) return &f;
  }
  return nullptr;
}

TEST(NocGolden, EveryScenarioHasAFixture) {
  const auto scenarios = golden::scenarios();
  EXPECT_EQ(scenarios.size(), std::size(kGolden));
  for (const auto& s : scenarios) {
    EXPECT_NE(find_fixture(s.name), nullptr) << s.name;
  }
}

TEST(NocGolden, BitIdenticalToSeedSimulator) {
  // Both scheduling cores replay every fixture: the cycle loop is the
  // oracle the fixtures were captured on, and the event engine must be
  // indistinguishable from it on every digest field.
  for (const NocEngine engine : {NocEngine::kCycle, NocEngine::kEvent}) {
    for (auto& scenario : golden::scenarios()) {
      SCOPED_TRACE(std::string(scenario.name) + " / " + to_string(engine));
      const GoldenFixture* fixture = find_fixture(scenario.name);
      ASSERT_NE(fixture, nullptr);
      scenario.config.engine = engine;
      NocSimulator sim(scenario.topology, scenario.config);
      const golden::Digest d = golden::digest_of(sim.run(scenario.traffic));
      // Scalars first: a drift here localizes the failure far better than a
      // hash mismatch.
      EXPECT_EQ(d.copies_delivered, fixture->copies_delivered);
      EXPECT_EQ(d.duration_cycles, fixture->duration_cycles);
      EXPECT_EQ(d.link_hops, fixture->link_hops);
      EXPECT_EQ(d.delivered_hash, fixture->delivered_hash);
      EXPECT_EQ(d.stats_hash, fixture->stats_hash);
      EXPECT_EQ(d.snn_hash, fixture->snn_hash);
    }
  }
}

TEST(NocGolden, WindowedEnergySumsBitIdenticalToOneShotRun) {
  // Property over every golden scenario (all topologies, routing
  // algorithms, multicast modes, and the non-drained path): simulating the
  // same trace as a session of bounded windows with a per-window energy
  // close must reproduce the one-shot run() global energy bit for bit —
  // the window report's integer activity totals are exactly the session
  // counters, and both sides price them through the same
  // hw::EnergyModel::activity_energy_pj call.  Checked on both scheduling
  // cores: the event engine's skipped stall spans must land in the same
  // windows' busy_cycles the cycle oracle simulates one by one.
  for (const NocEngine engine : {NocEngine::kCycle, NocEngine::kEvent}) {
  for (auto& scenario : golden::scenarios()) {
    SCOPED_TRACE(std::string(scenario.name) + " / " + to_string(engine));
    scenario.config.engine = engine;
    NocSimulator one_shot(scenario.topology, scenario.config);
    const auto expected = one_shot.run(scenario.traffic);

    NocSimulator session(std::move(scenario.topology), scenario.config);
    session.begin();
    session.enqueue(scenario.traffic);
    const std::uint64_t window = 64;
    std::uint64_t end = 0;
    while (!session.idle() && !session.halted()) {
      end += window;
      session.run_until(end);
      session.close_energy_window();
    }
    const auto finished = session.finish();

    // Same cycle semantics, same counters...
    EXPECT_EQ(finished.stats.flits_injected, expected.stats.flits_injected);
    EXPECT_EQ(finished.stats.link_hops, expected.stats.link_hops);
    EXPECT_EQ(finished.stats.router_traversals,
              expected.stats.router_traversals);
    // ...and the windowed report loses nothing: integer window deltas sum
    // to the session totals, and the priced total is bit-identical to the
    // one-shot energy (which itself reports a single full-span window).
    const WindowEnergyReport& report = finished.window_energy;
    EXPECT_GE(report.windows.size(), 2u);
    std::uint64_t codec = 0;
    std::uint64_t links = 0;
    std::uint64_t routers = 0;
    std::uint64_t busy = 0;
    for (const WindowEnergySample& w : report.windows) {
      codec += w.codec_events();
      links += w.link_hops;
      routers += w.router_traversals;
      busy += w.busy_cycles;
    }
    EXPECT_EQ(codec, report.codec_events);
    EXPECT_EQ(links, report.link_hops);
    EXPECT_EQ(routers, report.router_traversals);
    EXPECT_EQ(busy, report.busy_cycles);
    EXPECT_EQ(links, expected.stats.link_hops);
    EXPECT_EQ(report.total_energy_pj, expected.stats.global_energy_pj);
    EXPECT_EQ(report.total_energy_pj, finished.stats.global_energy_pj);
    ASSERT_EQ(expected.window_energy.windows.size(), 1u);
    EXPECT_EQ(expected.window_energy.total_energy_pj,
              expected.stats.global_energy_pj);
  }
  }
}

TEST(NocGolden, NotDrainedScenarioReportsNotDrained) {
  for (auto& scenario : golden::scenarios()) {
    if (scenario.name != "mesh4x4_xy_not_drained") continue;
    NocSimulator sim(std::move(scenario.topology), scenario.config);
    const auto result = sim.run(scenario.traffic);
    EXPECT_FALSE(result.stats.drained);
    // A truncated run still reports internally consistent partial stats.
    EXPECT_EQ(result.stats.duration_cycles, scenario.config.max_cycles);
    EXPECT_EQ(result.delivered.size(), result.stats.copies_delivered);
    EXPECT_LT(result.stats.copies_delivered, result.stats.flits_injected);
    return;
  }
  FAIL() << "non-drained scenario missing";
}

}  // namespace
}  // namespace snnmap::noc
