#include "core/annealing.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "core/incremental.hpp"
#include "core/pacman.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace snnmap::core {
namespace {

/// Uniform incremental-evaluation interface over the two objectives.
struct MoveEvaluator {
  std::function<std::int64_t(std::uint32_t, CrossbarId)> delta;
  std::function<void(std::uint32_t, CrossbarId)> apply;
  std::function<CrossbarId(std::uint32_t)> crossbar_of;
};

/// One annealing chain: the classic sequential random walk, a pure function
/// of (graph, arch, config, start, seed) — this is what restarts
/// parallelize over.  `start` is shared read-only across chains (the PACMAN
/// solution is a pure function of (graph, arch), so it is computed once).
AnnealingResult anneal_chain(const snn::SnnGraph& graph,
                             const hw::Architecture& arch,
                             const AnnealingConfig& config,
                             const Partition& start, std::uint64_t seed) {
  util::Rng rng(seed);
  CostModel cost(graph);

  const std::uint32_t n = graph.neuron_count();
  const std::uint32_t c = arch.crossbar_count;

  AnnealingResult result;
  result.best = start;
  result.best_cost = cost.objective_cost(start.assignment(), config.objective);
  if (n == 0 || c < 2) return result;  // nothing to optimize

  // State: either the cut-tracking Partition or the AER evaluator.
  Partition current = start;
  std::uint64_t current_cost = result.best_cost;
  std::vector<std::uint32_t> occ = current.occupancy();
  IncrementalAerCost aer(graph, start.assignment(), c);

  MoveEvaluator eval;
  if (config.objective == Objective::kAerPackets) {
    eval.delta = [&](std::uint32_t neuron, CrossbarId to) {
      return aer.move_delta(neuron, to);
    };
    eval.apply = [&](std::uint32_t neuron, CrossbarId to) {
      aer.apply_move(neuron, to);
    };
    eval.crossbar_of = [&](std::uint32_t neuron) {
      return aer.crossbar_of(neuron);
    };
  } else {
    eval.delta = [&](std::uint32_t neuron, CrossbarId to) {
      return cost.move_delta(current, neuron, to);
    };
    eval.apply = [&](std::uint32_t neuron, CrossbarId to) {
      current.assign(neuron, to);
    };
    eval.crossbar_of = [&](std::uint32_t neuron) {
      return current.crossbar_of(neuron);
    };
  }
  const auto snapshot_best = [&] {
    if (config.objective == Objective::kAerPackets) {
      Partition p(n, c);
      for (std::uint32_t i = 0; i < n; ++i) p.assign(i, aer.assignment()[i]);
      result.best = std::move(p);
    } else {
      result.best = current;
    }
  };

  // Auto-calibrate the initial temperature so a median uphill move is
  // accepted with probability ~0.5 at the start.
  double temp = config.initial_temp;
  if (temp <= 0.0) {
    util::Accumulator probe;
    for (int s = 0; s < 64; ++s) {
      const auto neuron = static_cast<std::uint32_t>(rng.below(n));
      const auto to = static_cast<CrossbarId>(rng.below(c));
      const std::int64_t delta = eval.delta(neuron, to);
      if (delta > 0) probe.add(static_cast<double>(delta));
    }
    temp = probe.empty() ? 1.0 : probe.mean() / std::log(2.0);
    if (temp <= 0.0) temp = 1.0;
  }

  const std::uint64_t history_stride =
      config.track_history ? std::max<std::uint64_t>(1, config.moves / 100) : 0;

  for (std::uint64_t step = 0; step < config.moves; ++step) {
    ++result.moves_proposed;
    const bool do_swap = rng.chance(config.swap_probability);
    if (do_swap) {
      // Swap the crossbars of two neurons (capacity preserved trivially).
      const auto a = static_cast<std::uint32_t>(rng.below(n));
      const auto b = static_cast<std::uint32_t>(rng.below(n));
      const CrossbarId ca = eval.crossbar_of(a);
      const CrossbarId cb = eval.crossbar_of(b);
      if (ca == cb) continue;
      const std::int64_t d1 = eval.delta(a, cb);
      eval.apply(a, cb);
      const std::int64_t d2 = eval.delta(b, ca);
      const std::int64_t delta = d1 + d2;
      const bool accept =
          delta <= 0 ||
          rng.uniform() < std::exp(-static_cast<double>(delta) / temp);
      if (accept) {
        eval.apply(b, ca);
        current_cost = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(current_cost) + delta);
        ++result.moves_accepted;
      } else {
        eval.apply(a, ca);  // roll back
      }
    } else {
      // Move one neuron to a crossbar with free capacity.
      const auto neuron = static_cast<std::uint32_t>(rng.below(n));
      const auto to = static_cast<CrossbarId>(rng.below(c));
      const CrossbarId from = eval.crossbar_of(neuron);
      if (to == from || occ[to] >= arch.neurons_per_crossbar) continue;
      const std::int64_t delta = eval.delta(neuron, to);
      const bool accept =
          delta <= 0 ||
          rng.uniform() < std::exp(-static_cast<double>(delta) / temp);
      if (accept) {
        eval.apply(neuron, to);
        --occ[from];
        ++occ[to];
        current_cost = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(current_cost) + delta);
        ++result.moves_accepted;
      }
    }
    if (current_cost < result.best_cost) {
      result.best_cost = current_cost;
      snapshot_best();
    }
    temp *= config.cooling;
    if (history_stride && step % history_stride == 0) {
      result.history.push_back(result.best_cost);
    }
  }
  result.best.validate(arch);
  return result;
}

}  // namespace

AnnealingResult annealing_partition(const snn::SnnGraph& graph,
                                    const hw::Architecture& arch,
                                    const AnnealingConfig& config) {
  const std::uint32_t restarts = std::max<std::uint32_t>(1, config.restarts);
  const Partition start = pacman_partition(graph, arch);
  if (restarts == 1) {
    return anneal_chain(graph, arch, config, start, config.seed);
  }

  // Chain seeds are a pure function of (base seed, chain index) — chain 0
  // reuses the base seed verbatim — so the winner does not depend on thread
  // count or completion order.
  std::vector<AnnealingResult> chains(restarts);
  util::ThreadPool pool(
      std::min(util::ThreadPool::resolve(config.threads), restarts));
  pool.parallel_for(restarts, [&](std::uint32_t, std::size_t i) {
    const std::uint64_t seed =
        i == 0 ? config.seed
               : config.seed ^ (0x9E3779B97F4A7C15ULL * (i + 1));
    chains[i] = anneal_chain(graph, arch, config, start, seed);
  });

  std::size_t winner = 0;
  for (std::size_t i = 1; i < chains.size(); ++i) {
    if (chains[i].best_cost < chains[winner].best_cost) winner = i;
  }
  std::uint64_t proposed = 0;
  std::uint64_t accepted = 0;
  for (const AnnealingResult& chain : chains) {
    proposed += chain.moves_proposed;
    accepted += chain.moves_accepted;
  }
  AnnealingResult result = std::move(chains[winner]);
  result.best_chain = static_cast<std::uint32_t>(winner);
  result.moves_proposed = proposed;
  result.moves_accepted = accepted;
  return result;
}

}  // namespace snnmap::core
