#include "core/neutrams.hpp"

#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace snnmap::core {

Partition neutrams_partition(const snn::SnnGraph& graph,
                             const hw::Architecture& arch,
                             std::uint64_t seed) {
  if (!arch.fits(graph.neuron_count())) {
    throw std::invalid_argument("neutrams_partition: network does not fit (" +
                                std::to_string(graph.neuron_count()) + " > " +
                                std::to_string(arch.capacity()) + " neurons)");
  }
  util::Rng rng(seed);
  Partition p(graph.neuron_count(), arch.crossbar_count);
  std::vector<std::uint32_t> occ(arch.crossbar_count, 0);
  // Deal neurons in a random order to a uniformly random crossbar with free
  // capacity (reservoir choice over the non-full crossbars).
  std::vector<std::uint32_t> order(graph.neuron_count());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  for (const std::uint32_t neuron : order) {
    CrossbarId pick = kUnassigned;
    std::uint32_t seen = 0;
    for (CrossbarId k = 0; k < arch.crossbar_count; ++k) {
      if (occ[k] >= arch.neurons_per_crossbar) continue;
      ++seen;
      if (rng.below(seen) == 0) pick = k;
    }
    p.assign(neuron, pick);
    ++occ[pick];
  }
  return p;
}

}  // namespace snnmap::core
