#!/usr/bin/env bash
# Fixture: asserts a phantom binary and misses a declared target.
for bench in alpha_benchmarks phantom_benchmarks; do
  test -x "build/bench/$bench"
done
