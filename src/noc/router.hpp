// Input-buffered NoC router with round-robin output arbitration and
// router-level multicast (the paper's Noxim++ adds a "multicast feature,
// where spike packets can be communicated to a selected subset of crossbars").
//
// Packets are single-flit (an AER word fits one flit), store-and-forward.
// A multicast flit occupies its input-queue head until every output port its
// destination set requires has been served; each served port receives an
// independent copy carrying the subset of destinations routed through it.
//
// Storage is flat: the bounded inter-router FIFOs live in one contiguous
// slot array (`port * buffer_depth` ring buffers) and the unbounded
// injection FIFO is a compacting vector, so the cycle loop never chases
// deque chunks or performs bounds-checked map lookups.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "noc/aer.hpp"
#include "noc/topology.hpp"

namespace snnmap::noc {

/// A single-flit packet (or packet copy) in flight.  Destinations live in
/// the simulator's destination arena; a flit carries only its range, so
/// forking a multicast subset never allocates.
struct Flit {
  AerWord payload;                    ///< encoded AER word
  std::uint32_t source_neuron = 0;
  TileId source_tile = 0;
  std::uint64_t emit_cycle = 0;
  std::uint64_t emit_step = 0;
  std::uint32_t sequence = 0;         ///< per-source-neuron emission counter
  std::uint32_t dest_begin = 0;       ///< arena offset of this copy's dests
  std::uint32_t dest_count = 0;       ///< remaining destinations of this copy
  /// First cycle this flit may be arbitrated at its current router.  On-chip
  /// forwards set arrival + 0 extra (the classic next-cycle handoff);
  /// off-chip forwards add NocConfig::offchip_link_latency to model the
  /// slower chip-to-chip SerDes crossing.
  std::uint64_t ready_cycle = 0;
};

/// Per-router state: one FIFO per input (inter-router ports in neighbor
/// order, plus one injection queue at index port_count), and a round-robin
/// pointer per output port (+ local ejection port at index port_count).
class Router {
 public:
  Router(RouterId id, std::uint32_t port_count, std::uint32_t buffer_depth);

  RouterId id() const noexcept { return id_; }
  std::uint32_t port_count() const noexcept { return port_count_; }
  std::uint32_t buffer_depth() const noexcept { return buffer_depth_; }
  std::uint32_t input_count() const noexcept { return port_count_ + 1; }

  /// FIFO occupancy of input `port` (port == port_count() = injection).
  std::size_t queue_size(std::uint32_t port) const noexcept {
    return port == port_count_ ? inject_.size() - inject_head_
                               : ring_size_[port];
  }
  bool queue_empty(std::uint32_t port) const noexcept {
    return queue_size(port) == 0;
  }

  /// Head flit of a non-empty input FIFO.
  Flit& head(std::uint32_t port) noexcept {
    return port == port_count_
               ? inject_[inject_head_]
               : slots_[port * buffer_depth_ + ring_head_[port]];
  }
  const Flit& head(std::uint32_t port) const noexcept {
    return const_cast<Router*>(this)->head(port);
  }

  /// Appends to input `port`.  Inter-router FIFOs must have space
  /// (can_accept checked by the caller); the injection FIFO grows.
  void push(std::uint32_t port, const Flit& flit) {
    if (port == port_count_) {
      inject_.push_back(flit);
    } else {
      if (ring_size_[port] >= buffer_depth_) {
        throw std::logic_error("Router: push into full input FIFO");
      }
      slots_[port * buffer_depth_ +
             (ring_head_[port] + ring_size_[port]) % buffer_depth_] = flit;
      ++ring_size_[port];
    }
    occupied_ |= 1ULL << port;
    ++buffered_;
  }

  /// Pops the head of a non-empty input FIFO.
  void pop(std::uint32_t port) noexcept {
    if (port == port_count_) {
      ++inject_head_;
      if (inject_head_ == inject_.size()) {
        inject_.clear();
        inject_head_ = 0;
      } else if (inject_head_ >= 64 && inject_head_ * 2 >= inject_.size()) {
        // Reclaim the popped prefix once it dominates the vector.
        inject_.erase(
            inject_.begin(),
            inject_.begin() + static_cast<std::ptrdiff_t>(inject_head_));
        inject_head_ = 0;
      }
      if (inject_head_ == inject_.size()) occupied_ &= ~(1ULL << port);
    } else {
      ring_head_[port] = (ring_head_[port] + 1) % buffer_depth_;
      if (--ring_size_[port] == 0) occupied_ &= ~(1ULL << port);
    }
    --buffered_;
  }

  /// Bit `port` set iff input FIFO `port` is non-empty (bit port_count() =
  /// the injection queue).  Lets the arbitration loop skip empty inputs
  /// with bit scans instead of per-queue probes.
  std::uint64_t occupied_mask() const noexcept { return occupied_; }

  /// True if inter-router input `port` can take one more flit, given
  /// `staged` arrivals already bound for it this cycle.  The injection queue
  /// is unbounded (the encoder stalls the crossbar, not the NoC).
  bool can_accept(std::uint32_t port, std::size_t staged) const noexcept {
    if (port == port_count_) return true;
    return ring_size_[port] + staged < buffer_depth_;
  }

  /// Round-robin pointer for output `out_port` (port_count() = local eject).
  std::uint32_t rr_pointer(std::uint32_t out_port) const noexcept {
    return rr_[out_port];
  }
  void advance_rr(std::uint32_t out_port) noexcept {
    rr_[out_port] = (rr_[out_port] + 1) % input_count();
  }

  bool all_queues_empty() const noexcept { return buffered_ == 0; }
  std::size_t buffered_flits() const noexcept { return buffered_; }

  /// Discards every buffered flit (all input FIFOs and the injection
  /// queue).  Fault path only: a dying router's buffered traffic is lost —
  /// the caller accounts the destination copies (via for_each_flit) before
  /// clearing.
  void clear_queues() noexcept {
    for (std::uint32_t p = 0; p < port_count_; ++p) {
      ring_head_[p] = 0;
      ring_size_[p] = 0;
    }
    inject_.clear();
    inject_head_ = 0;
    occupied_ = 0;
    buffered_ = 0;
  }

  /// Invokes fn(Flit&) for every buffered flit (arena compaction hook).
  template <typename Fn>
  void for_each_flit(Fn&& fn) {
    for (std::uint32_t p = 0; p < port_count_; ++p) {
      for (std::uint32_t k = 0; k < ring_size_[p]; ++k) {
        fn(slots_[p * buffer_depth_ +
                  (ring_head_[p] + k) % buffer_depth_]);
      }
    }
    for (std::size_t k = inject_head_; k < inject_.size(); ++k) {
      fn(inject_[k]);
    }
  }

 private:
  RouterId id_;
  std::uint32_t port_count_;
  std::uint32_t buffer_depth_;
  std::size_t buffered_ = 0;
  std::uint64_t occupied_ = 0;  ///< non-empty-input bitmask
  std::vector<Flit> slots_;               // port-major ring-buffer slots
  std::vector<std::uint32_t> ring_head_;  // per inter-router port
  std::vector<std::uint32_t> ring_size_;  // per inter-router port
  std::vector<Flit> inject_;              // unbounded injection FIFO
  std::size_t inject_head_ = 0;           // popped prefix (compacted lazily)
  std::vector<std::uint32_t> rr_;         // port_count_ + 1 (local last)
};

}  // namespace snnmap::noc
