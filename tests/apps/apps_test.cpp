#include <gtest/gtest.h>

#include "apps/digit_recognition.hpp"
#include "apps/heartbeat.hpp"
#include "apps/hello_world.hpp"
#include "apps/image_smoothing.hpp"
#include "apps/registry.hpp"
#include "apps/synthetic.hpp"

namespace snnmap::apps {
namespace {

TEST(HelloWorld, TopologyMatchesTableI) {
  HelloWorldConfig cfg;
  cfg.duration_ms = 200.0;
  const auto g = build_hello_world(cfg);
  // 117 inputs + 117 grid + 9 out.
  EXPECT_EQ(g.neuron_count(), 117u + 117u + 9u);
  ASSERT_EQ(g.group_names().size(), 3u);
  EXPECT_EQ(g.group_names()[2], "out");
  EXPECT_EQ(g.group_first()[3] - g.group_first()[2], 9u);
  // one-to-one + full: 117 + 117*9 edges.
  EXPECT_EQ(g.edge_count(), 117u + 117u * 9u);
}

TEST(HelloWorld, ProducesActivityInAllStages) {
  HelloWorldConfig cfg;
  cfg.duration_ms = 500.0;
  const auto g = build_hello_world(cfg);
  std::uint64_t input_spikes = 0;
  std::uint64_t grid_spikes = 0;
  std::uint64_t out_spikes = 0;
  for (std::uint32_t i = 0; i < 117; ++i) input_spikes += g.spike_count(i);
  for (std::uint32_t i = 117; i < 234; ++i) grid_spikes += g.spike_count(i);
  for (std::uint32_t i = 234; i < 243; ++i) out_spikes += g.spike_count(i);
  EXPECT_GT(input_spikes, 100u);
  EXPECT_GT(grid_spikes, 50u);
  EXPECT_GT(out_spikes, 0u);
}

TEST(ImageSmoothing, TopologyMatchesTableI) {
  ImageSmoothingConfig cfg;
  cfg.duration_ms = 100.0;
  const auto g = build_image_smoothing(cfg);
  EXPECT_EQ(g.neuron_count(), 2048u);  // 1024 + 1024
  // 5x5 kernel minus border clipping: between 1024*9 and 1024*25 edges.
  EXPECT_GT(g.edge_count(), 1024u * 9u);
  EXPECT_LE(g.edge_count(), 1024u * 25u);
}

TEST(ImageSmoothing, OutputTracksInputIntensity) {
  ImageSmoothingConfig cfg;
  cfg.duration_ms = 400.0;
  cfg.seed = 9;
  const auto g = build_image_smoothing(cfg);
  const auto image = make_test_image(cfg.width, cfg.height, cfg.seed ^ 0xABCD);
  // Mean output rate over bright pixels must exceed that over dark pixels.
  double bright_rate = 0.0;
  double dark_rate = 0.0;
  std::size_t bright = 0;
  std::size_t dark = 0;
  for (std::uint32_t i = 0; i < 1024; ++i) {
    const double rate = static_cast<double>(g.spike_count(1024 + i));
    if (image[i] > 0.6) {
      bright_rate += rate;
      ++bright;
    } else if (image[i] < 0.2) {
      dark_rate += rate;
      ++dark;
    }
  }
  ASSERT_GT(bright, 0u);
  ASSERT_GT(dark, 0u);
  EXPECT_GT(bright_rate / static_cast<double>(bright),
            dark_rate / static_cast<double>(dark));
}

TEST(ImageSmoothing, TestImageInRange) {
  const auto img = make_test_image(32, 32, 3);
  ASSERT_EQ(img.size(), 1024u);
  for (const double v : img) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(DigitRecognition, TopologyMatchesDiehlCook) {
  DigitRecognitionConfig cfg;
  cfg.duration_ms = 100.0;
  const auto g = build_digit_recognition(cfg);
  EXPECT_EQ(g.neuron_count(), 784u + 250u + 250u);
  ASSERT_EQ(g.group_names().size(), 3u);
  EXPECT_EQ(g.group_names()[1], "exc");
  EXPECT_EQ(g.group_names()[2], "inh");
}

TEST(DigitRecognition, DigitImagesDifferByClass) {
  const auto a = make_digit_image(1, 5);
  const auto b = make_digit_image(8, 5);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff, 10.0);  // strokes clearly differ
}

TEST(DigitRecognition, NetworkIsActive) {
  DigitRecognitionConfig cfg;
  cfg.duration_ms = 300.0;
  const auto g = build_digit_recognition(cfg);
  std::uint64_t exc_spikes = 0;
  for (std::uint32_t i = 784; i < 1034; ++i) exc_spikes += g.spike_count(i);
  EXPECT_GT(exc_spikes, 10u);
}

TEST(Heartbeat, EcgHasBeats) {
  HeartbeatConfig cfg;
  cfg.duration_ms = 4000.0;
  std::vector<double> peaks;
  const auto ecg = make_ecg(cfg, &peaks);
  EXPECT_EQ(ecg.size(), 4000u);
  // ~800 ms RR -> about 5 beats in 4 s.
  EXPECT_GE(peaks.size(), 3u);
  EXPECT_LE(peaks.size(), 8u);
  // R peaks are the dominant positive excursion.
  double max_v = 0.0;
  for (const double v : ecg) max_v = std::max(max_v, v);
  EXPECT_GT(max_v, 0.7);
}

TEST(Heartbeat, EncoderSpikesOnExcursions) {
  HeartbeatConfig cfg;
  cfg.duration_ms = 3000.0;
  const auto ecg = make_ecg(cfg, nullptr);
  const auto trains = encode_ecg(ecg, 4, 0.1);
  ASSERT_EQ(trains.size(), 4u);
  std::size_t total = 0;
  for (const auto& t : trains) {
    EXPECT_TRUE(snn::is_valid_train(t));
    total += t.size();
  }
  EXPECT_GT(total, 20u);  // every QRS sweep crosses several bands
}

TEST(Heartbeat, GroundTruthPopulated) {
  HeartbeatConfig cfg;
  cfg.duration_ms = 3000.0;
  HeartbeatGroundTruth truth;
  const auto g = build_heartbeat(cfg, &truth);
  EXPECT_EQ(g.neuron_count(),
            cfg.input_channels + cfg.liquid_size + cfg.readout_size);
  EXPECT_GT(truth.r_peak_times_ms.size(), 2u);
  EXPECT_NEAR(truth.mean_rr_ms, cfg.mean_rr_ms, 100.0);
  EXPECT_EQ(truth.readout_count, 16u);
}

TEST(Heartbeat, ReadoutTracksRhythm) {
  HeartbeatConfig cfg;
  cfg.duration_ms = 5000.0;
  cfg.seed = 2;
  HeartbeatGroundTruth truth;
  const auto g = build_heartbeat(cfg, &truth);
  snn::SpikeTrain merged;
  for (std::uint32_t i = 0; i < truth.readout_count; ++i) {
    merged = snn::merge_trains(merged,
                               g.spike_train(truth.readout_first + i));
  }
  ASSERT_GT(merged.size(), 5u);
  const double est = estimate_mean_rr_ms(merged);
  // Estimate within 35% of the true RR (the liquid adds jitter; the paper's
  // point is the *relative* degradation under interconnect distortion).
  EXPECT_GT(est, 0.0);
  EXPECT_LT(heart_rate_error_percent(est, truth.mean_rr_ms), 35.0);
}

TEST(Heartbeat, ErrorHelperEdgeCases) {
  EXPECT_EQ(heart_rate_error_percent(0.0, 800.0), 100.0);
  EXPECT_EQ(heart_rate_error_percent(800.0, 0.0), 100.0);
  EXPECT_NEAR(heart_rate_error_percent(800.0, 800.0), 0.0, 1e-12);
  EXPECT_NEAR(heart_rate_error_percent(400.0, 800.0), 100.0, 1e-9);
}

TEST(Heartbeat, EstimatorNeedsBursts) {
  EXPECT_EQ(estimate_mean_rr_ms({}), 0.0);
  EXPECT_EQ(estimate_mean_rr_ms({1.0}), 0.0);
  EXPECT_EQ(estimate_mean_rr_ms({1.0, 2.0, 3.0}), 0.0);  // single burst
  // Two clean bursts 500 ms apart.
  EXPECT_DOUBLE_EQ(estimate_mean_rr_ms({0.0, 5.0, 500.0, 505.0}), 500.0);
}

TEST(Synthetic, TopologyAndEdgeCounts) {
  SyntheticConfig cfg;
  cfg.layers = 3;
  cfg.neurons_per_layer = 50;
  cfg.duration_ms = 100.0;
  const auto g = build_synthetic(cfg);
  EXPECT_EQ(g.neuron_count(), 10u + 150u);
  // 10*50 input edges + 2 * 50*50 inter-layer.
  EXPECT_EQ(g.edge_count(), 500u + 2u * 2500u);
}

TEST(Synthetic, PaperEdgeCountsFor4x200) {
  // Sec. V: "topology 4x200 (with dense 122000 synapses)".
  SyntheticConfig cfg;
  cfg.layers = 4;
  cfg.neurons_per_layer = 200;
  cfg.duration_ms = 50.0;
  const auto g = build_synthetic(cfg);
  EXPECT_EQ(g.edge_count(), 10u * 200u + 3u * 200u * 200u);  // 122000
}

TEST(Synthetic, AllLayersFireInPlausibleRange) {
  SyntheticConfig cfg;
  cfg.layers = 3;
  cfg.neurons_per_layer = 100;
  cfg.duration_ms = 1000.0;
  const auto g = build_synthetic(cfg);
  for (std::uint32_t layer = 0; layer < 3; ++layer) {
    std::uint64_t spikes = 0;
    const std::uint32_t first = 10 + layer * 100;
    for (std::uint32_t i = first; i < first + 100; ++i) {
      spikes += g.spike_count(i);
    }
    const double rate =
        static_cast<double>(spikes) / 100.0;  // Hz over 1 s
    EXPECT_GT(rate, 2.0) << "layer " << layer << " nearly silent";
    EXPECT_LT(rate, 400.0) << "layer " << layer << " saturated";
  }
}

TEST(Synthetic, InputRatesSpanConfiguredRange) {
  SyntheticConfig cfg;
  cfg.layers = 1;
  cfg.neurons_per_layer = 10;
  cfg.duration_ms = 5000.0;
  const auto g = build_synthetic(cfg);
  const double lowest =
      static_cast<double>(g.spike_count(0)) / 5.0;  // Hz
  const double highest =
      static_cast<double>(g.spike_count(9)) / 5.0;
  EXPECT_NEAR(lowest, 10.0, 5.0);
  EXPECT_NEAR(highest, 100.0, 15.0);
}

TEST(Synthetic, NameParsing) {
  auto cfg = parse_synthetic_name("synth_3x200");
  EXPECT_EQ(cfg.layers, 3u);
  EXPECT_EQ(cfg.neurons_per_layer, 200u);
  cfg = parse_synthetic_name("1x600");
  EXPECT_EQ(cfg.layers, 1u);
  EXPECT_EQ(cfg.neurons_per_layer, 600u);
  EXPECT_THROW(parse_synthetic_name("banana"), std::invalid_argument);
  EXPECT_THROW(parse_synthetic_name("x5"), std::invalid_argument);
  EXPECT_THROW(parse_synthetic_name("5x"), std::invalid_argument);
  EXPECT_THROW(parse_synthetic_name("0x5"), std::invalid_argument);
}

TEST(Synthetic, RejectsEmptyTopology) {
  SyntheticConfig cfg;
  cfg.layers = 0;
  EXPECT_THROW(build_synthetic(cfg), std::invalid_argument);
}

TEST(Registry, ListsTableIApps) {
  const auto& apps = realistic_apps();
  ASSERT_EQ(apps.size(), 4u);
  EXPECT_EQ(apps[0].name, "HW");
  EXPECT_EQ(apps[1].name, "IS");
  EXPECT_EQ(apps[2].name, "HD");
  EXPECT_EQ(apps[3].name, "HE");
}

TEST(Registry, BuildByNameAndAliases) {
  EXPECT_GT(apps::build_app("HW", 1).neuron_count(), 0u);
  EXPECT_GT(apps::build_app("hello world", 1).neuron_count(), 0u);
  EXPECT_EQ(apps::build_app("2x50", 1).neuron_count(), 110u);
  EXPECT_THROW(apps::build_app("nope", 1), std::invalid_argument);
}

TEST(Registry, EdgeDetectionReachableButNotTableI) {
  EXPECT_TRUE(is_known_app("ED"));
  EXPECT_TRUE(is_known_app("edge detection"));
  EXPECT_EQ(apps::build_app("ED", 1).neuron_count(), 2048u);
  // Table I stays exactly the paper's four applications.
  for (const auto& app : realistic_apps()) {
    EXPECT_NE(app.name, "ED");
  }
}

TEST(Registry, KnownAppPredicate) {
  EXPECT_TRUE(is_known_app("HW"));
  EXPECT_TRUE(is_known_app("heartbeat estimation"));
  EXPECT_TRUE(is_known_app("synth_1x800"));
  EXPECT_FALSE(is_known_app("bogus"));
}

TEST(Registry, BuildersAreDeterministic) {
  const auto a = build_app("HW", 42);
  const auto b = build_app("HW", 42);
  EXPECT_EQ(a.total_spikes(), b.total_spikes());
  EXPECT_EQ(a.edge_count(), b.edge_count());
}

}  // namespace
}  // namespace snnmap::apps
