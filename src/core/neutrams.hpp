// NEUTRAMS-style baseline mapper.
//
// The paper characterizes NEUTRAMS (Ji et al., MICRO 2016) as "the ad-hoc
// mapping technique ... which uses a Network-on-Chip simulator to determine
// energy consumption on a neuromorphic architecture, without solving the
// local and global synapse partitioning problem" (Sec. V).  Our analogue is
// a topology-oblivious *random feasible assignment* (deterministically
// seeded): neurons are dealt to crossbars uniformly at random subject only
// to the capacity constraint.  It ignores every form of locality —
// population structure, kernels, recurrence — which is why it anchors the
// normalization (= 1.0) in Fig. 5.
#pragma once

#include <cstdint>

#include "core/partition.hpp"
#include "hw/architecture.hpp"
#include "snn/graph.hpp"

namespace snnmap::core {

/// Random feasible assignment; throws std::invalid_argument when the network
/// does not fit the architecture.  Deterministic for a given seed.
Partition neutrams_partition(const snn::SnnGraph& graph,
                             const hw::Architecture& arch,
                             std::uint64_t seed = 0x4E55ULL);

}  // namespace snnmap::core
