// Quickstart: build a small SNN, simulate it, partition it three ways
// (NEUTRAMS / PACMAN / PSO) onto a CxQuad-like device and compare the
// global-synapse interconnect statistics — the whole Fig. 4 pipeline in
// ~40 lines of user code.
//
//   ./build/examples/quickstart
#include <iostream>

#include "apps/synthetic.hpp"
#include "core/framework.hpp"
#include "util/table.hpp"

int main() {
  using namespace snnmap;

  // 1. Workload: a 2-layer, 200-neurons-per-layer feedforward SNN fed by
  //    10 Poisson sources (the paper's synthetic topology family).
  apps::SyntheticConfig workload;
  workload.layers = 2;
  workload.neurons_per_layer = 200;
  workload.seed = 7;
  const snn::SnnGraph graph = apps::build_synthetic(workload);
  std::cout << "Workload: " << graph.neuron_count() << " neurons, "
            << graph.edge_count() << " synapses, " << graph.total_spikes()
            << " spikes over " << graph.duration_ms() << " ms\n\n";

  // 2. Target hardware: CxQuad (4 crossbars x 256 neurons, NoC-tree).
  core::MappingFlowConfig flow;
  flow.arch = hw::Architecture::cxquad();
  flow.pso.swarm_size = 50;
  flow.pso.iterations = 50;

  // 3. Map with each partitioner and compare.
  util::Table table({"mapper", "AER packets (F)", "global energy (uJ)",
                     "max latency (cycles)", "disorder (%)",
                     "avg ISI distortion (cycles)"});
  for (const auto kind :
       {core::PartitionerKind::kNeutrams, core::PartitionerKind::kPacman,
        core::PartitionerKind::kPso}) {
    flow.partitioner = kind;
    const core::MappingReport report = core::run_mapping_flow(graph, flow);
    table.begin_row();
    table.cell(std::string(core::to_string(kind)));
    table.cell(static_cast<std::int64_t>(report.aer_packets));
    table.cell(report.global_energy_pj * 1e-6, 3);
    table.cell(static_cast<std::int64_t>(report.noc_stats.max_latency_cycles));
    table.cell(report.snn_metrics.disorder_percent(), 3);
    table.cell(report.snn_metrics.isi_distortion_avg_cycles, 2);
  }
  std::cout << table.to_ascii();
  std::cout << "\nPSO should put the fewest AER packets on the interconnect; "
               "NEUTRAMS the most.\n";
  return 0;
}
