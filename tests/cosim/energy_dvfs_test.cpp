// Windowed energy accounting + DVFS fabric scaling in the co-simulator.
//
// The load-bearing invariant: with DvfsPolicy fixed, the per-window energy
// accounting reproduces the one-shot NocStats::global_energy_pj *bit for
// bit* on every SNN golden scenario (ideal and congested budgets alike) —
// window boundaries and frequency bookkeeping must never change what a run
// costs, only how it is attributed.  On top of that sit the policies:
// utilization-threshold and deadline-slack rescale the per-window cycle
// budget, trading transit stretch for quadratic per-event energy savings,
// deterministically.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "../snn/golden_scenarios.hpp"
#include "core/batch_eval.hpp"
#include "core/partition.hpp"
#include "core/placement.hpp"
#include "cosim/cosim.hpp"
#include "cosim/fidelity.hpp"
#include "noc/topology.hpp"
#include "snn/network.hpp"
#include "snn/simulator.hpp"
#include "test_mappings.hpp"
#include "util/rng.hpp"

namespace snnmap::cosim {
namespace {

using test::plastic_safe_partition;

/// Runs one golden scenario through the closed loop under `config` (the
/// same mapping recipe the ideal-equivalence test uses).
CoSimResult run_golden(const snn::golden::Scenario& scenario,
                       CoSimConfig config) {
  snn::Network net = scenario.build();
  const core::Partition partition = plastic_safe_partition(net);
  noc::Topology topology =
      noc::Topology::tree(partition.crossbar_count(), 4);
  const core::Placement placement =
      core::identity_placement(partition.crossbar_count(), topology);
  config.snn = scenario.config;
  CoSimulator cosim(net, partition, placement, std::move(topology), config);
  return cosim.run();
}

TEST(CoSimWindowEnergy, FixedPolicySumsBitIdenticalOnAllGoldenScenarios) {
  // Both an ideal budget (every window drains) and a congested one (flits
  // carry across windows, some runs never drain): the per-window activity
  // deltas must sum to exactly the session counters, so the scale-weighted
  // accumulators reproduce the one-shot energy bit for bit.
  std::size_t scenarios_with_traffic = 0;
  for (const std::uint32_t budget : {1u << 15, 8u}) {
    for (const auto& scenario : snn::golden::scenarios()) {
      SCOPED_TRACE(scenario.name + " @" + std::to_string(budget));
      CoSimConfig config;
      config.cycles_per_timestep = budget;
      const CoSimResult result = run_golden(scenario, config);
      const FidelityReport& fid = result.fidelity;

      EXPECT_EQ(fid.fabric_energy_pj, result.noc.global_energy_pj);
      if (fid.packets_offered > 0) ++scenarios_with_traffic;

      // The trajectory really was fixed...
      ASSERT_EQ(fid.per_step_cycles.size(), fid.steps);
      for (const std::uint32_t c : fid.per_step_cycles) {
        EXPECT_EQ(c, budget);
      }
      EXPECT_EQ(fid.freq_scale.count(), fid.steps);
      EXPECT_DOUBLE_EQ(fid.freq_scale.mean(), 1.0);
      // ...and the per-window samples are internally consistent.
      EXPECT_EQ(fid.per_step_energy_pj.size(), fid.steps);
      EXPECT_EQ(fid.window_energy_pj.count(), fid.steps);
      EXPECT_EQ(fid.energy_hist.total(), fid.steps);
      double sum = 0.0;
      for (const double e : fid.per_step_energy_pj) sum += e;
      if (fid.fabric_energy_pj > 0.0) {
        EXPECT_NEAR(sum, fid.fabric_energy_pj,
                    1e-9 * fid.fabric_energy_pj);
      } else {
        EXPECT_EQ(sum, 0.0);
      }
    }
  }
  // The property is vacuous unless the mappings actually ship spikes.
  EXPECT_GE(scenarios_with_traffic, 16u);
}

/// Two Poisson-driven LIF populations wired across both directions (the
/// cosim_test workload): light traffic, so a generous nominal budget
/// leaves the fabric mostly idle — the DVFS head-room scenario.
snn::Network two_block_network(std::uint64_t wiring_seed = 5) {
  snn::Network net;
  util::Rng rng(wiring_seed);
  const auto in = net.add_poisson_group("in", 12, 60.0);
  const auto a = net.add_lif_group("a", 12);
  const auto b = net.add_lif_group("b", 12);
  net.connect_random(in, a, 0.7, snn::WeightSpec::uniform(9.0, 14.0), rng);
  net.connect_random(a, b, 0.5, snn::WeightSpec::uniform(8.0, 12.0), rng,
                     /*delay=*/2);
  net.connect_random(b, a, 0.4, snn::WeightSpec::uniform(-4.0, -2.0), rng,
                     /*delay=*/3);
  return net;
}

CoSimResult run_two_block(CoSimConfig config) {
  snn::Network net = two_block_network();
  core::Partition partition(net.neuron_count(), 2);
  for (snn::NeuronId i = 0; i < net.neuron_count(); ++i) {
    partition.assign(i, i < 24 ? 0 : 1);
  }
  noc::Topology topology = noc::Topology::ring(2);
  const auto placement = core::identity_placement(2, topology);
  config.snn.duration_ms = 200.0;
  config.snn.seed = 9;
  CoSimulator sim(net, partition, placement, std::move(topology), config);
  return sim.run();
}

CoSimConfig dvfs_config(DvfsPolicyKind kind,
                        std::uint32_t cpt = 2048) {
  CoSimConfig config;
  config.cycles_per_timestep = cpt;
  config.dvfs.kind = kind;
  return config;
}

TEST(CoSimDvfs, UtilizationPolicySlowsAnIdleFabricAndSavesEnergy) {
  const auto fixed = run_two_block(dvfs_config(DvfsPolicyKind::kFixed));
  const auto scaled =
      run_two_block(dvfs_config(DvfsPolicyKind::kUtilizationThreshold));

  // A 2048-cycle window for a handful of 1-hop packets is almost all
  // idle: the policy must ratchet down to the floor and stay there.
  EXPECT_LT(scaled.fidelity.freq_scale.mean(), 0.5);
  EXPECT_DOUBLE_EQ(scaled.fidelity.freq_scale.min(), 0.25);
  // First window always runs nominal (nothing observed yet).
  EXPECT_EQ(scaled.fidelity.per_step_cycles.front(), 2048u);
  EXPECT_EQ(scaled.fidelity.per_step_cycles.back(), 512u);  // 2048 * 0.25

  // Same spikes, same activity — but every event priced at the scaled
  // frequency: quadratic savings.
  EXPECT_GT(fixed.fidelity.fabric_energy_pj, 0.0);
  EXPECT_LT(scaled.fidelity.fabric_energy_pj,
            0.5 * fixed.fidelity.fabric_energy_pj);

  // Bounded divergence: a 512-cycle floor still delivers every packet
  // within its window on this workload, so the dynamics are untouched.
  EXPECT_EQ(scaled.fidelity.deadline_misses, 0u);
  snn::Network reference = two_block_network();
  auto snn_config = dvfs_config(DvfsPolicyKind::kFixed).snn;
  snn_config.duration_ms = 200.0;
  snn_config.seed = 9;
  const auto ideal = snn::Simulator(reference, snn_config).run();
  EXPECT_TRUE(spike_divergence(ideal.spikes, scaled.snn.spikes).identical());
  // Lower energy at equal-ish delay: the energy-delay product improves.
  EXPECT_LT(scaled.fidelity.energy_delay_product(),
            fixed.fidelity.energy_delay_product());
}

TEST(CoSimDvfs, DeadlineSlackSlowsOnSlackAndSnapsBackUnderPressure) {
  // Generous budget: plenty of slack, the policy ratchets down.
  const auto slack =
      run_two_block(dvfs_config(DvfsPolicyKind::kDeadlineSlack));
  EXPECT_LT(slack.fidelity.freq_scale.mean(), 1.0);
  EXPECT_DOUBLE_EQ(slack.fidelity.freq_scale.min(), 0.25);

  // Congested budget: once traffic flows, every window misses deadlines
  // or carries backlog, so any early slow-down (quiet lead-in windows)
  // must snap back to nominal and stay pinned there under pressure.
  const auto congested =
      run_two_block(dvfs_config(DvfsPolicyKind::kDeadlineSlack, /*cpt=*/2));
  EXPECT_GT(congested.fidelity.deadline_misses +
                congested.fidelity.undelivered,
            0u);
  const auto& cycles = congested.fidelity.per_step_cycles;
  bool slowed = false;
  bool snapped_back = false;
  for (const std::uint32_t c : cycles) {
    if (c < 2) slowed = true;
    if (slowed && c == 2) snapped_back = true;
  }
  EXPECT_TRUE(slowed);        // quiet lead-in windows ratcheted down
  EXPECT_TRUE(snapped_back);  // pressure forced nominal again
  // Under sustained pressure the policy holds nominal: the trajectory's
  // tail is all nominal-frequency windows.
  EXPECT_EQ(cycles.back(), 2u);
}

TEST(CoSimDvfs, WindowsNeverShrinkBelowTheJitterSpan) {
  auto config = dvfs_config(DvfsPolicyKind::kUtilizationThreshold);
  config.dvfs.min_scale = 1.0 / 1024.0;  // would round to 2 cycles
  config.injection_jitter_cycles = 64;
  const auto result = run_two_block(config);
  for (const std::uint32_t c : result.fidelity.per_step_cycles) {
    EXPECT_GE(c, 65u);  // jitter + 1: a spike lands inside its own window
  }
}

TEST(CoSimDvfs, ValidatesPolicyParameters) {
  const auto reject = [](DvfsPolicy dvfs) {
    CoSimConfig config;
    config.dvfs = dvfs;
    EXPECT_THROW(run_two_block(config), std::invalid_argument);
  };
  DvfsPolicy bad;
  bad.min_scale = 0.0;
  reject(bad);
  bad = DvfsPolicy{};
  bad.min_scale = 1.5;
  reject(bad);
  bad = DvfsPolicy{};
  bad.min_scale = std::numeric_limits<double>::quiet_NaN();
  reject(bad);
  bad = DvfsPolicy{};
  bad.low_utilization = 0.8;  // >= high_utilization
  reject(bad);
  bad = DvfsPolicy{};
  bad.high_utilization = std::numeric_limits<double>::quiet_NaN();
  reject(bad);
  bad = DvfsPolicy{};
  bad.slack_fraction = -0.1;
  reject(bad);
}

TEST(CoSimDvfs, PolicyNamesRoundTrip) {
  for (const auto kind :
       {DvfsPolicyKind::kFixed, DvfsPolicyKind::kUtilizationThreshold,
        DvfsPolicyKind::kDeadlineSlack}) {
    EXPECT_EQ(dvfs_policy_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(dvfs_policy_from_string("race-to-idle"),
               std::invalid_argument);
}

TEST(CoSimDvfs, BatchDvfsSweepMatchesStandaloneRuns) {
  snn::Network probe = two_block_network();
  core::Partition partition(probe.neuron_count(), 2);
  for (snn::NeuronId i = 0; i < probe.neuron_count(); ++i) {
    partition.assign(i, i < 24 ? 0 : 1);
  }
  noc::Topology topology = noc::Topology::ring(2);
  core::CoSimScenario base{
      .build = [] { return two_block_network(); },
      .partition = std::move(partition),
      .placement = core::identity_placement(2, topology),
      .topology = std::move(topology),
      .config = dvfs_config(DvfsPolicyKind::kFixed),
      .with_ideal_baseline = false};
  base.config.snn.duration_ms = 200.0;
  base.config.snn.seed = 9;

  std::vector<DvfsPolicy> policies(3);
  policies[0].kind = DvfsPolicyKind::kFixed;
  policies[1].kind = DvfsPolicyKind::kUtilizationThreshold;
  policies[2].kind = DvfsPolicyKind::kDeadlineSlack;

  core::BatchCoSimEvaluator evaluator(4);
  const auto outcomes = evaluator.run_dvfs_sweep(base, policies);
  ASSERT_EQ(outcomes.size(), policies.size());
  for (std::size_t i = 0; i < policies.size(); ++i) {
    auto config = base.config;
    config.dvfs = policies[i];
    const auto standalone = run_two_block(config);
    EXPECT_EQ(outcomes[i].result.fidelity.fabric_energy_pj,
              standalone.fidelity.fabric_energy_pj)
        << i;
    EXPECT_EQ(outcomes[i].result.fidelity.per_step_cycles,
              standalone.fidelity.per_step_cycles)
        << i;
    EXPECT_EQ(outcomes[i].result.snn.spikes, standalone.snn.spikes) << i;
  }
  // The sweep actually explored the frontier: a scaling policy must have
  // spent less than fixed.
  EXPECT_LT(outcomes[1].result.fidelity.fabric_energy_pj,
            outcomes[0].result.fidelity.fabric_energy_pj);
}

TEST(CoSimWindowEnergy, EventEngineBitIdenticalThroughClosedLoop) {
  // The NoC engine knob flows through CoSimConfig::noc into the lockstep
  // loop.  A generous cycle budget makes most of every window a stall span
  // the event engine skips while the cycle oracle grinds through it — yet
  // the windows' busy_cycles (and therefore the utilization-threshold DVFS
  // trajectory), the per-step energy attribution, and the spike dynamics
  // must be bit-identical: the closed loop cannot observe which scheduling
  // core ran the fabric.
  for (const auto& scenario : snn::golden::scenarios()) {
    SCOPED_TRACE(scenario.name);
    CoSimConfig config;
    config.cycles_per_timestep = 1u << 14;
    config.dvfs.kind = DvfsPolicyKind::kUtilizationThreshold;
    config.noc.engine = noc::NocEngine::kCycle;
    const CoSimResult oracle = run_golden(scenario, config);
    config.noc.engine = noc::NocEngine::kEvent;
    const CoSimResult evt = run_golden(scenario, config);

    EXPECT_EQ(evt.fidelity.per_step_cycles, oracle.fidelity.per_step_cycles);
    EXPECT_EQ(evt.fidelity.freq_scale.count(),
              oracle.fidelity.freq_scale.count());
    EXPECT_EQ(evt.fidelity.freq_scale.mean(),
              oracle.fidelity.freq_scale.mean());
    EXPECT_EQ(evt.fidelity.fabric_energy_pj,
              oracle.fidelity.fabric_energy_pj);
    EXPECT_EQ(evt.fidelity.per_step_energy_pj,
              oracle.fidelity.per_step_energy_pj);
    EXPECT_EQ(evt.noc.copies_delivered, oracle.noc.copies_delivered);
    EXPECT_EQ(evt.noc.duration_cycles, oracle.noc.duration_cycles);
    EXPECT_EQ(evt.noc.link_hops, oracle.noc.link_hops);
    EXPECT_EQ(evt.snn.spikes, oracle.snn.spikes);
  }
}

}  // namespace
}  // namespace snnmap::cosim
