#include "hw/architecture.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace snnmap::hw {

const char* to_string(InterconnectKind kind) noexcept {
  switch (kind) {
    case InterconnectKind::kMesh: return "mesh";
    case InterconnectKind::kTree: return "tree";
    case InterconnectKind::kRing: return "ring";
  }
  return "?";
}

InterconnectKind interconnect_from_string(const std::string& name) {
  if (name == "mesh") return InterconnectKind::kMesh;
  if (name == "tree") return InterconnectKind::kTree;
  if (name == "ring") return InterconnectKind::kRing;
  throw std::invalid_argument("unknown interconnect kind: '" + name + "'");
}

std::uint32_t Architecture::mesh_width() const noexcept {
  // Squarest mesh that holds crossbar_count tiles.
  std::uint32_t h = static_cast<std::uint32_t>(
      std::floor(std::sqrt(static_cast<double>(crossbar_count))));
  if (h == 0) h = 1;
  std::uint32_t w = (crossbar_count + h - 1) / h;
  return w;
}

std::uint32_t Architecture::mesh_height() const noexcept {
  const std::uint32_t w = mesh_width();
  return (crossbar_count + w - 1) / w;
}

Architecture Architecture::cxquad() noexcept {
  Architecture a;
  a.crossbar_count = 4;
  a.neurons_per_crossbar = 256;
  a.interconnect = InterconnectKind::kTree;
  a.tree_arity = 4;
  a.cycles_per_ms = 1000;
  return a;
}

Architecture Architecture::sized_for(std::uint64_t neurons,
                                     std::uint32_t neurons_per_crossbar,
                                     InterconnectKind kind) {
  if (neurons_per_crossbar == 0) {
    throw std::invalid_argument("Architecture: neurons_per_crossbar must be > 0");
  }
  Architecture a;
  a.neurons_per_crossbar = neurons_per_crossbar;
  a.interconnect = kind;
  const std::uint64_t count =
      neurons == 0 ? 1 : (neurons + neurons_per_crossbar - 1) /
                             neurons_per_crossbar;
  a.crossbar_count = static_cast<std::uint32_t>(count);
  return a;
}

std::string Architecture::describe() const {
  std::ostringstream out;
  out << crossbar_count << " crossbars x " << neurons_per_crossbar
      << " neurons, " << to_string(interconnect) << " interconnect";
  if (interconnect == InterconnectKind::kMesh) {
    out << " (" << mesh_width() << "x" << mesh_height() << ")";
  } else if (interconnect == InterconnectKind::kTree) {
    out << " (arity " << tree_arity << ")";
  }
  return out.str();
}

}  // namespace snnmap::hw
