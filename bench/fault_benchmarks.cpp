// BM_FaultedNoc: fault-injection cost in the NoC cycle loop.
//
// Run via scripts/bench.sh, which writes BENCH_faults.json so the cost of
// the fault subsystem is tracked PR over PR.  Every leg replays the *same*
// deterministic mesh multicast trace; only the FaultConfig differs:
//
//  * severity=0 — inert config.  Every fault branch in the simulator is
//    gated on faults_active_, so this leg must stay within noise of the
//    pre-fault BM_NocSimulator trajectory: the zero-fault hot path pays
//    nothing for the subsystem's existence.
//  * severity=1 — light degradation (a few permanent link faults, sparse
//    transient outages, rare flit drops): liveness masks and the drop RNG
//    are consulted on every traversal.
//  * severity=2 — heavy degradation (link + tile + router faults, frequent
//    transients, lossy wires): the reroute/prune/purge paths run hot.
//
// copies_lost / reroutes / fault_events counters make the degradation of
// each leg visible next to its throughput, so a perf regression can be told
// apart from a fault-timeline change.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "noc/simulator.hpp"
#include "noc/traffic_patterns.hpp"

namespace {

using namespace snnmap;

/// 8x8 XY mesh under the shared multicast generator: large enough that
/// random faults land on routes actually carrying traffic, small enough
/// that a leg runs in milliseconds.
struct FaultWorkload {
  noc::Topology topology = noc::Topology::mesh(8, 8);
  noc::NocConfig config;
  std::vector<noc::SpikePacketEvent> traffic =
      noc::patterns::multicast_traffic(/*seed=*/909, /*tiles=*/64,
                                       /*packets=*/6000, /*max_fanout=*/5,
                                       /*packets_per_cycle=*/4);
};

noc::FaultConfig fault_severity(int severity) {
  noc::FaultConfig f;
  if (severity == 0) return f;  // inert: the zero-fault baseline leg
  f.seed = 909;
  // The trace drains in ~1.6k cycles; keep the horizon inside that so the
  // random faults land while traffic is still flowing.
  f.horizon_cycles = 1'500;
  if (severity == 1) {
    f.link_fault_rate = 0.02;
    f.transient_link_rate = 0.05;
    f.transient_duration_cycles = 500;
    f.flit_drop_probability = 0.0005;
  } else {
    f.link_fault_rate = 0.10;
    f.router_fault_rate = 0.03;
    f.tile_fault_rate = 0.05;
    f.transient_link_rate = 0.20;
    f.transient_duration_cycles = 400;
    f.flit_drop_probability = 0.01;
  }
  return f;
}

void BM_FaultedNoc(benchmark::State& state) {
  static const FaultWorkload base;
  FaultWorkload workload;
  workload.config = base.config;
  workload.config.faults = fault_severity(static_cast<int>(state.range(0)));
  std::uint64_t cycles = 0;
  std::uint64_t delivered = 0;
  std::uint64_t lost = 0;
  std::uint64_t reroutes = 0;
  std::uint64_t fault_events = 0;
  for (auto _ : state) {
    noc::NocSimulator sim(base.topology, workload.config);
    const auto result = sim.run(base.traffic);
    benchmark::DoNotOptimize(result.stats.copies_delivered);
    cycles += result.stats.duration_cycles;
    delivered += result.stats.copies_delivered;
    lost += result.stats.fault.copies_lost();
    reroutes += result.stats.fault.reroutes;
    fault_events += result.stats.fault.link_faults +
                    result.stats.fault.router_faults +
                    result.stats.fault.tile_faults;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(base.traffic.size()));
  state.counters["cycles_per_sec"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["delivered_per_sec"] = benchmark::Counter(
      static_cast<double>(delivered), benchmark::Counter::kIsRate);
  const auto iters = static_cast<double>(state.iterations());
  state.counters["copies_lost"] = static_cast<double>(lost) / iters;
  state.counters["reroutes"] = static_cast<double>(reroutes) / iters;
  state.counters["fault_events"] = static_cast<double>(fault_events) / iters;
}
BENCHMARK(BM_FaultedNoc)
    ->ArgName("severity")  // 0=zero-fault baseline 1=light 2=heavy
    ->DenseRange(0, 2);

// The FaultModel timeline is rebuilt by every NocSimulator::begin() (the
// determinism contract), so its construction cost is paid per session —
// keep it visible separately from the cycle loop.
void BM_FaultModelBuild(benchmark::State& state) {
  static const noc::Topology topology = noc::Topology::mesh(8, 8);
  const noc::FaultConfig config =
      fault_severity(static_cast<int>(state.range(0)));
  std::size_t events = 0;
  for (auto _ : state) {
    noc::FaultModel model(topology, config);
    benchmark::DoNotOptimize(&model);
    events = model.event_count();
  }
  state.counters["timeline_events"] = static_cast<double>(events);
}
BENCHMARK(BM_FaultModelBuild)->ArgName("severity")->DenseRange(1, 2);

}  // namespace
