// BM_CoSimulator: Google-benchmark suite for the closed-loop SNN x NoC
// co-simulation hot path.
//
// Run via scripts/bench.sh, which writes BENCH_cosim.json so the co-sim
// throughput trajectory is tracked PR over PR.  The headline number is
// lockstep steps/sec (steps_per_sec counter) on:
//
//  * an ideal-budget run (windows drain in-step: measures the lockstep
//    plumbing — deferred stepping, packet encode, window pump, flush),
//  * a congested run (small cycle budget: measures carried backlog, late
//    arrivals and verdict withholding),
//  * a bounded-receive-queue run (drop accounting on top of congestion),
//  * a batch sweep through core::BatchCoSimEvaluator.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "apps/synthetic.hpp"
#include "core/batch_eval.hpp"
#include "core/framework.hpp"
#include "core/pacman.hpp"
#include "core/placement.hpp"
#include "cosim/cosim.hpp"
#include "hw/architecture.hpp"
#include "noc/topology.hpp"
#include "snn/graph.hpp"

namespace {

using namespace snnmap;

struct Mapped {
  apps::SyntheticConfig workload;
  hw::Architecture arch;
  core::Partition partition;
};

/// The 2x200 synthetic workload pacman-mapped onto 8 x 64 crossbars (tree):
/// dense cross-crossbar projections, the traffic shape the co-sim loop has
/// to encode and flush every step.
const Mapped& mapped_workload() {
  static const Mapped kMapped = [] {
    apps::SyntheticConfig workload;
    workload.layers = 2;
    workload.neurons_per_layer = 200;
    workload.seed = 5;
    workload.duration_ms = 200.0;
    const snn::SnnGraph graph = apps::build_synthetic(workload);
    hw::Architecture arch = hw::Architecture::sized_for(
        graph.neuron_count(), 64, hw::InterconnectKind::kTree);
    core::Partition partition = core::pacman_partition(graph, arch);
    return Mapped{workload, arch, std::move(partition)};
  }();
  return kMapped;
}

cosim::CoSimConfig cosim_config(std::uint32_t cycles_per_timestep) {
  const Mapped& m = mapped_workload();
  cosim::CoSimConfig config;
  config.snn = apps::synthetic_sim_config(m.workload);
  config.cycles_per_timestep = cycles_per_timestep;
  return config;
}

void run_cosim(benchmark::State& state, const cosim::CoSimConfig& config) {
  const Mapped& m = mapped_workload();
  std::uint64_t steps = 0;
  double simulated_ms = 0.0;
  for (auto _ : state) {
    snn::Network net = apps::build_synthetic_network(m.workload);
    cosim::CoSimulator sim(net, m.partition,
                           core::identity_placement(
                               m.arch.crossbar_count,
                               noc::Topology::for_architecture(m.arch)),
                           noc::Topology::for_architecture(m.arch), config);
    const cosim::CoSimResult result = sim.run();
    benchmark::DoNotOptimize(result.fidelity.copies_accepted);
    steps += result.fidelity.steps;
    simulated_ms += result.snn.duration_ms;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
  state.counters["steps_per_sec"] =
      benchmark::Counter(static_cast<double>(steps),
                         benchmark::Counter::kIsRate);
  state.counters["sim_ms_per_sec"] =
      benchmark::Counter(simulated_ms, benchmark::Counter::kIsRate);
}

void BM_CoSimulator_IdealBudget(benchmark::State& state) {
  run_cosim(state, cosim_config(2048));
}
BENCHMARK(BM_CoSimulator_IdealBudget);

void BM_CoSimulator_Congested(benchmark::State& state) {
  run_cosim(state, cosim_config(24));
}
BENCHMARK(BM_CoSimulator_Congested);

void BM_CoSimulator_BoundedReceiveQueue(benchmark::State& state) {
  cosim::CoSimConfig config = cosim_config(24);
  config.receive_queue_depth = 4;
  run_cosim(state, config);
}
BENCHMARK(BM_CoSimulator_BoundedReceiveQueue);

void BM_CoSimulator_BatchCptSweep(benchmark::State& state) {
  const Mapped& m = mapped_workload();
  const std::vector<std::uint32_t> budgets = {2048, 64, 24};
  std::uint64_t steps = 0;
  for (auto _ : state) {
    noc::Topology topology = noc::Topology::for_architecture(m.arch);
    core::CoSimScenario base{
        .build = [&m] { return apps::build_synthetic_network(m.workload); },
        .partition = m.partition,
        .placement =
            core::identity_placement(m.arch.crossbar_count, topology),
        .topology = std::move(topology),
        .config = cosim_config(2048),
        .with_ideal_baseline = false};
    core::BatchCoSimEvaluator evaluator;
    const auto outcomes = evaluator.run_cpt_sweep(base, budgets);
    benchmark::DoNotOptimize(outcomes.size());
    for (const auto& o : outcomes) steps += o.result.fidelity.steps;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
  state.counters["steps_per_sec"] =
      benchmark::Counter(static_cast<double>(steps),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CoSimulator_BatchCptSweep);

}  // namespace
