#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace snnmap::util {
namespace {

TEST(ThreadPool, ResolveZeroIsAtLeastOne) {
  EXPECT_GE(ThreadPool::resolve(0), 1u);
  EXPECT_EQ(ThreadPool::resolve(1), 1u);
  EXPECT_EQ(ThreadPool::resolve(7), 7u);
}

TEST(ThreadPool, SizeMatchesRequest) {
  EXPECT_EQ(ThreadPool(1).size(), 1u);
  EXPECT_EQ(ThreadPool(4).size(), 4u);
}

TEST(ThreadPool, ResolveClampsAbsurdRequests) {
  // A config-file "-1" reaches resolve() as ~0u after the unsigned cast;
  // it must clamp to the cap instead of trying to spawn billions of threads.
  EXPECT_EQ(ThreadPool::resolve(~0u), ThreadPool::kMaxThreads);
  EXPECT_EQ(ThreadPool::resolve(ThreadPool::kMaxThreads + 1),
            ThreadPool::kMaxThreads);
  EXPECT_EQ(ThreadPool::resolve(ThreadPool::kMaxThreads),
            ThreadPool::kMaxThreads);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<std::uint32_t>> hits(kN);
  pool.parallel_for(kN, [&](std::uint32_t, std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
  }
}

TEST(ThreadPool, BlocksAreContiguousAndDeterministic) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 100;
  // worker_of[i] must be identical across runs: the index -> worker mapping
  // is a pure function of (n, size()), never of scheduling.
  std::vector<std::uint32_t> first(kN), second(kN);
  for (auto* out : {&first, &second}) {
    pool.parallel_for(kN, [&](std::uint32_t worker, std::size_t i) {
      (*out)[i] = worker;
    });
  }
  EXPECT_EQ(first, second);
  // Contiguous: the worker id never decreases along the index range.
  for (std::size_t i = 1; i < kN; ++i) {
    EXPECT_LE(first[i - 1], first[i]) << "index " << i;
  }
  EXPECT_EQ(first.front(), 0u);
  EXPECT_EQ(first.back(), 2u);
}

TEST(ThreadPool, SingleWorkerRunsInlineOnCaller) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  bool same_thread = false;
  pool.parallel_blocks(10, [&](std::uint32_t worker, std::size_t begin,
                               std::size_t end) {
    same_thread = std::this_thread::get_id() == caller;
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
  });
  EXPECT_TRUE(same_thread);
}

TEST(ThreadPool, MoreWorkersThanItems) {
  ThreadPool pool(8);
  std::vector<std::atomic<std::uint32_t>> hits(2);
  pool.parallel_for(2, [&](std::uint32_t, std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(hits[0].load(), 1u);
  EXPECT_EQ(hits[1].load(), 1u);
}

TEST(ThreadPool, ZeroItemsIsANoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_blocks(0, [&](std::uint32_t, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::uint32_t, std::size_t i) {
                          if (i == 57) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives a throwing job and runs the next one normally.
  std::atomic<std::size_t> count{0};
  pool.parallel_for(100, [&](std::uint32_t, std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 100u);
}

TEST(ThreadPool, BackToBackJobsAccumulateCorrectly) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 512;
  std::vector<std::uint64_t> out(kN);
  for (int round = 0; round < 20; ++round) {
    pool.parallel_for(kN, [&](std::uint32_t, std::size_t i) {
      out[i] = i * static_cast<std::size_t>(round);
    });
    const auto sum = std::accumulate(out.begin(), out.end(), std::uint64_t{0});
    EXPECT_EQ(sum, static_cast<std::uint64_t>(round) * (kN * (kN - 1) / 2));
  }
}

}  // namespace
}  // namespace snnmap::util
