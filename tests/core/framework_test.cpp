#include "core/framework.hpp"

#include <gtest/gtest.h>

#include <set>

namespace snnmap::core {
namespace {

/// Small layered graph with spikes at known times.
snn::SnnGraph tiny_workload() {
  std::vector<snn::GraphEdge> edges;
  for (std::uint32_t a = 0; a < 4; ++a) {
    for (std::uint32_t b = 4; b < 8; ++b) edges.push_back({a, b, 1.0F});
  }
  std::vector<snn::SpikeTrain> trains(8);
  for (std::uint32_t i = 0; i < 4; ++i) {
    trains[i] = {1.0 + i, 5.0 + i, 9.0 + i};
  }
  return snn::SnnGraph::from_parts(8, std::move(edges), std::move(trains),
                                   20.0);
}

hw::Architecture arch_4x2() {
  hw::Architecture arch;
  arch.crossbar_count = 4;
  arch.neurons_per_crossbar = 2;
  arch.interconnect = hw::InterconnectKind::kTree;
  arch.tree_arity = 4;
  return arch;
}

TEST(BuildTraffic, OnePacketPerSpikeWithRemoteFanout) {
  const auto g = tiny_workload();
  Partition p(8, 2);
  for (std::uint32_t i = 0; i < 8; ++i) p.assign(i, i < 4 ? 0 : 1);
  const auto traffic = build_traffic(g, p, {0, 1}, 1000, 0);
  // 4 source neurons x 3 spikes each, all fan-out is remote.
  EXPECT_EQ(traffic.size(), 12u);
  for (const auto& ev : traffic) {
    EXPECT_EQ(ev.dest_tiles, std::vector<noc::TileId>{1});
    EXPECT_EQ(ev.source_tile, 0u);
  }
}

TEST(BuildTraffic, LocalFanoutEmitsNothing) {
  const auto g = tiny_workload();
  Partition p(8, 2);
  for (std::uint32_t i = 0; i < 8; ++i) p.assign(i, 0);
  EXPECT_TRUE(build_traffic(g, p, {0, 1}, 1000, 0).empty());
}

TEST(BuildTraffic, EmitCycleScalesWithClock) {
  const auto g = tiny_workload();
  Partition p(8, 2);
  for (std::uint32_t i = 0; i < 8; ++i) p.assign(i, i < 4 ? 0 : 1);
  const auto traffic = build_traffic(g, p, {0, 1}, 1000, 0);
  // Neuron 0's first spike at 1.0 ms -> cycle 1000 exactly (no jitter).
  bool found = false;
  for (const auto& ev : traffic) {
    if (ev.source_neuron == 0 && ev.emit_cycle == 1000) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(BuildTraffic, JitterStaysWithinBound) {
  const auto g = tiny_workload();
  Partition p(8, 2);
  for (std::uint32_t i = 0; i < 8; ++i) p.assign(i, i < 4 ? 0 : 1);
  const auto base = build_traffic(g, p, {0, 1}, 1000, 0);
  const auto jittered = build_traffic(g, p, {0, 1}, 1000, 32);
  ASSERT_EQ(base.size(), jittered.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_GE(jittered[i].emit_cycle, base[i].emit_cycle);
    EXPECT_LT(jittered[i].emit_cycle, base[i].emit_cycle + 32);
  }
}

TEST(BuildTraffic, PlacementMapsTiles) {
  const auto g = tiny_workload();
  Partition p(8, 2);
  for (std::uint32_t i = 0; i < 8; ++i) p.assign(i, i < 4 ? 0 : 1);
  const auto traffic = build_traffic(g, p, {3, 2}, 1000, 0);
  for (const auto& ev : traffic) {
    EXPECT_EQ(ev.source_tile, 3u);
    EXPECT_EQ(ev.dest_tiles, std::vector<noc::TileId>{2});
  }
}

TEST(BuildTraffic, ValidatesPlacementSize) {
  const auto g = tiny_workload();
  Partition p(8, 2);
  for (std::uint32_t i = 0; i < 8; ++i) p.assign(i, 0);
  EXPECT_THROW(build_traffic(g, p, {0}, 1000, 0), std::invalid_argument);
}

TEST(Flow, EndToEndProducesConsistentReport) {
  const auto g = tiny_workload();
  MappingFlowConfig config;
  config.arch = arch_4x2();
  config.partitioner = PartitionerKind::kPso;
  config.pso.swarm_size = 15;
  config.pso.iterations = 15;
  const auto report = run_mapping_flow(g, config);
  EXPECT_NO_THROW(report.partition.validate(config.arch));
  EXPECT_EQ(report.global_spikes + report.local_events,
            CostModel(g).total_event_count());
  EXPECT_TRUE(report.noc_stats.drained);
  // Every offered packet is a multicast event; deliveries >= packets.
  EXPECT_GE(report.noc_stats.copies_delivered, report.packets_offered > 0
                ? 1u : 0u);
  EXPECT_GE(report.total_energy_pj(), 0.0);
  EXPECT_EQ(report.total_energy_uj(), report.total_energy_pj() * 1e-6);
}

TEST(Flow, AllPartitionersRun) {
  const auto g = tiny_workload();
  for (const auto kind :
       {PartitionerKind::kPso, PartitionerKind::kPacman,
        PartitionerKind::kNeutrams, PartitionerKind::kAnnealing,
        PartitionerKind::kGenetic}) {
    MappingFlowConfig config;
    config.arch = arch_4x2();
    config.partitioner = kind;
    config.pso.swarm_size = 8;
    config.pso.iterations = 8;
    config.annealing.moves = 2000;
    config.genetic.population = 8;
    config.genetic.generations = 8;
    const auto report = run_mapping_flow(g, config);
    EXPECT_NO_THROW(report.partition.validate(config.arch))
        << to_string(kind);
  }
}

TEST(Flow, PsoNeverSendsMorePacketsThanBaselines) {
  const auto g = tiny_workload();
  const CostModel cost(g);
  MappingFlowConfig config;
  config.arch = arch_4x2();
  config.pso.swarm_size = 15;
  config.pso.iterations = 20;

  config.partitioner = PartitionerKind::kPso;
  const auto pso = run_mapping_flow(g, config);
  config.partitioner = PartitionerKind::kPacman;
  const auto pacman = run_mapping_flow(g, config);
  config.partitioner = PartitionerKind::kNeutrams;
  const auto neutrams = run_mapping_flow(g, config);

  // The default objective is AER packets (what the NoC actually carries).
  const auto packets = [&](const MappingReport& r) {
    return cost.multicast_packet_count(r.partition);
  };
  EXPECT_LE(packets(pso), packets(pacman));
  EXPECT_LE(packets(pso), packets(neutrams));
}

TEST(Flow, CommAwarePlacementDoesNotBreakAnything) {
  const auto g = tiny_workload();
  MappingFlowConfig config;
  config.arch = arch_4x2();
  config.arch.interconnect = hw::InterconnectKind::kMesh;
  config.comm_aware_placement = true;
  config.partitioner = PartitionerKind::kPacman;
  const auto report = run_mapping_flow(g, config);
  // Placement is a permutation of tiles.
  std::set<noc::TileId> tiles(report.placement.begin(),
                              report.placement.end());
  EXPECT_EQ(tiles.size(), report.placement.size());
  EXPECT_TRUE(report.noc_stats.drained);
}

TEST(Flow, PartitionerNames) {
  EXPECT_STREQ(to_string(PartitionerKind::kPso), "pso");
  EXPECT_STREQ(to_string(PartitionerKind::kPacman), "pacman");
  EXPECT_STREQ(to_string(PartitionerKind::kNeutrams), "neutrams");
  EXPECT_STREQ(to_string(PartitionerKind::kAnnealing), "annealing");
  EXPECT_STREQ(to_string(PartitionerKind::kGenetic), "genetic");
}

}  // namespace
}  // namespace snnmap::core
