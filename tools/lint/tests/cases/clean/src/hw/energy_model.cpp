// Fixture: energy section keys, read and written symmetrically.
#include "hw/energy_model.hpp"

namespace fixture {

void from_config(const Config& config, Model& m) {
  m.link_hop_pj = config.double_or("energy.link_hop_pj", m.link_hop_pj);
}

void to_config(const Model& m, Config& config) {
  config.set("energy.link_hop_pj", std::to_string(m.link_hop_pj));
}

}  // namespace fixture
