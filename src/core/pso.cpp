#include "core/pso.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/incremental.hpp"
#include "core/neutrams.hpp"
#include "core/pacman.hpp"
#include "util/log.hpp"

namespace snnmap::core {
namespace {

double sigmoid(double v) noexcept { return 1.0 / (1.0 + std::exp(-v)); }

}  // namespace

PsoPartitioner::PsoPartitioner(const snn::SnnGraph& graph,
                               const hw::Architecture& arch, PsoConfig config)
    : graph_(graph),
      arch_(arch),
      config_(config),
      evaluator_(graph, config.threads, config.swarm_size) {
  if (!arch.fits(graph.neuron_count())) {
    throw std::invalid_argument("PsoPartitioner: network does not fit (" +
                                std::to_string(graph.neuron_count()) + " > " +
                                std::to_string(arch.capacity()) + " neurons)");
  }
  if (config_.swarm_size == 0) {
    throw std::invalid_argument("PsoPartitioner: swarm size must be >= 1");
  }
}

void PsoPartitioner::evaluate_swarm(const std::vector<Particle>& swarm) {
  // Fan the independent fitness evaluations out across the pool; costs_[i]
  // is particle i's fitness, so the result is order-independent and matches
  // the serial path exactly.
  evaluator_.evaluate(
      swarm.size(),
      [&swarm](std::size_t i) -> const std::vector<CrossbarId>& {
        return swarm[i].position;
      },
      config_.objective, costs_);
  evaluations_ += swarm.size();
}

std::vector<CrossbarId> PsoPartitioner::random_assignment(util::Rng& rng) {
  // Random feasible assignment: shuffle neurons, deal them into crossbars
  // round-robin with capacity tracking.
  const std::uint32_t n = graph_.neuron_count();
  const std::uint32_t c = arch_.crossbar_count;
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order);
  std::vector<CrossbarId> assignment(n, kUnassigned);
  std::vector<std::uint32_t> occ(c, 0);
  for (const std::uint32_t neuron : order) {
    // Uniform among crossbars with free capacity.
    CrossbarId pick = kUnassigned;
    std::uint32_t seen = 0;
    for (CrossbarId k = 0; k < c; ++k) {
      if (occ[k] >= arch_.neurons_per_crossbar) continue;
      ++seen;
      if (rng.below(seen) == 0) pick = k;
    }
    assignment[neuron] = pick;
    ++occ[pick];
  }
  return assignment;
}

void PsoPartitioner::capacity_repair(std::vector<CrossbarId>& assignment,
                                     util::Rng& rng) {
  const std::uint32_t c = arch_.crossbar_count;
  const std::uint32_t cap = arch_.neurons_per_crossbar;
  std::vector<std::uint32_t> occ(c, 0);
  for (const CrossbarId k : assignment) {
    if (k != kUnassigned) ++occ[k];
  }
  // Evict random residents of overloaded crossbars into a pool...
  std::vector<std::uint32_t> pool;
  std::vector<std::vector<std::uint32_t>> members(c);
  for (std::uint32_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] != kUnassigned) members[assignment[i]].push_back(i);
  }
  for (CrossbarId k = 0; k < c; ++k) {
    while (occ[k] > cap) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.below(members[k].size()));
      const std::uint32_t neuron = members[k][pick];
      members[k][pick] = members[k].back();
      members[k].pop_back();
      assignment[neuron] = kUnassigned;
      pool.push_back(neuron);
      --occ[k];
    }
  }
  // ...then re-place each pooled neuron on the feasible crossbar that cuts
  // the fewest incident spikes (greedy, cheapest-first order is the pool's
  // random order — adequate and cheap).
  for (const std::uint32_t neuron : pool) {
    CrossbarId best = kUnassigned;
    std::uint64_t best_cut = ~0ULL;
    for (CrossbarId k = 0; k < c; ++k) {
      if (occ[k] >= cap) continue;
      const std::uint64_t cut =
          evaluator_.model().incident_cut(assignment, neuron, k);
      if (cut < best_cut) {
        best_cut = cut;
        best = k;
      }
    }
    if (best == kUnassigned) {
      throw std::logic_error("PsoPartitioner: no capacity left during repair");
    }
    assignment[neuron] = best;
    ++occ[best];
  }
}

void PsoPartitioner::binarize_and_repair(Particle& p, util::Rng& rng) {
  const std::uint32_t n = graph_.neuron_count();
  const std::uint32_t c = arch_.crossbar_count;
  // Per-neuron stochastic binarization (Eqs. 2-3) followed by one-hot repair
  // (Eq. 4): among the sampled set bits keep one uniformly; if none were
  // sampled, roulette-select a crossbar proportionally to sigmoid(v).
  std::vector<double> probs(c);
  for (std::uint32_t i = 0; i < n; ++i) {
    double prob_sum = 0.0;
    for (std::uint32_t k = 0; k < c; ++k) {
      probs[k] = sigmoid(static_cast<double>(p.velocity[i * c + k]));
      prob_sum += probs[k];
    }
    CrossbarId chosen = kUnassigned;
    std::uint32_t set_bits = 0;
    for (std::uint32_t k = 0; k < c; ++k) {
      if (rng.uniform() < probs[k]) {
        ++set_bits;
        if (rng.below(set_bits) == 0) chosen = k;
      }
    }
    if (chosen == kUnassigned) {
      double target = rng.uniform() * prob_sum;
      for (std::uint32_t k = 0; k < c; ++k) {
        target -= probs[k];
        if (target <= 0.0 || k == c - 1) {
          chosen = k;
          break;
        }
      }
    }
    p.position[i] = chosen;
  }
  capacity_repair(p.position, rng);
}

PsoResult PsoPartitioner::optimize() {
  util::Rng rng(config_.seed);
  const std::uint32_t n = graph_.neuron_count();
  const std::uint32_t c = arch_.crossbar_count;
  const std::size_t dims = static_cast<std::size_t>(n) * c;

  std::vector<Particle> swarm(config_.swarm_size);
  for (auto& p : swarm) {
    p.velocity.resize(dims);
    for (auto& v : p.velocity) {
      v = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    p.position = random_assignment(rng);
  }
  if (config_.seed_with_baselines) {
    // Memetic seeding: the first particles start from the baselines, so the
    // swarm optimum can never be worse than either of them.
    swarm[0].position = pacman_partition(graph_, arch_).assignment();
    if (swarm.size() > 1) {
      swarm[1].position = neutrams_partition(graph_, arch_).assignment();
    }
  }

  std::vector<CrossbarId> gbest;
  std::uint64_t gbest_cost = ~0ULL;
  PsoResult result;
  std::uint32_t stale = 0;

  for (std::uint32_t iter = 0; iter < config_.iterations; ++iter) {
    bool improved = false;
    evaluate_swarm(swarm);
    for (std::size_t pi = 0; pi < swarm.size(); ++pi) {
      Particle& p = swarm[pi];
      const std::uint64_t f = costs_[pi];
      if (f < p.best_cost) {
        p.best_cost = f;
        p.best_position = p.position;
      }
      if (f < gbest_cost) {
        gbest_cost = f;
        gbest = p.position;
        improved = true;
      }
    }
    if (improved &&
        (config_.refine_sweeps > 0 || config_.refine_swap_factor > 0) &&
        config_.objective == Objective::kAerPackets) {
      // Memetic step: polish the new swarm best with greedy single-neuron
      // moves plus stochastic improving swaps.
      IncrementalAerCost refiner(graph_, gbest, c);
      refiner.greedy_refine(arch_.neurons_per_crossbar,
                            config_.refine_sweeps);
      if (config_.refine_swap_factor > 0) {
        util::Rng swap_rng(config_.seed ^ (0x53A9'0000ULL + iter));
        refiner.swap_refine(
            static_cast<std::uint64_t>(config_.refine_swap_factor) * n,
            swap_rng);
        refiner.greedy_refine(arch_.neurons_per_crossbar,
                              config_.refine_sweeps);
      }
      if (refiner.cost() < gbest_cost) {
        gbest = refiner.assignment();
        gbest_cost = refiner.cost();
      }
    }
    if (config_.track_history) result.history.push_back(gbest_cost);
    result.iterations_run = iter + 1;

    stale = improved ? 0 : stale + 1;
    if (config_.patience != 0 && stale >= config_.patience) break;
    if (iter + 1 == config_.iterations) break;  // skip final wasted update

    // Velocity + position update (Eq. 1 with inertia and per-component
    // random scaling), then binarize + repair (Eqs. 2-5).
    for (auto& p : swarm) {
      for (std::uint32_t i = 0; i < n; ++i) {
        const CrossbarId xi = p.position[i];
        const CrossbarId pbi =
            p.best_position.empty() ? xi : p.best_position[i];
        const CrossbarId gbi = gbest[i];
        for (std::uint32_t k = 0; k < c; ++k) {
          const std::size_t d = static_cast<std::size_t>(i) * c + k;
          const double x = xi == k ? 1.0 : 0.0;
          const double pb = pbi == k ? 1.0 : 0.0;
          const double gb = gbi == k ? 1.0 : 0.0;
          double v = config_.inertia * static_cast<double>(p.velocity[d]) +
                     config_.phi1 * rng.uniform() * (pb - x) +
                     config_.phi2 * rng.uniform() * (gb - x);
          v = std::clamp(v, -config_.v_max, config_.v_max);
          p.velocity[d] = static_cast<float>(v);
        }
      }
      binarize_and_repair(p, rng);
    }
  }

  result.best = Partition(n, c);
  for (std::uint32_t i = 0; i < n; ++i) result.best.assign(i, gbest[i]);
  result.best.validate(arch_);
  result.best_cost = gbest_cost;
  result.fitness_evaluations = evaluations_;
  util::log_info("PSO: best cost ", gbest_cost, " after ",
                 result.iterations_run, " iterations, ", evaluations_,
                 " evaluations");
  return result;
}

}  // namespace snnmap::core
