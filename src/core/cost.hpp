// Spike-communication cost model — Eqs. 6–8 of the paper.
//
// The PSO fitness F is the total number of spikes crossing crossbar
// boundaries: for every synapse (i, j) with partition(i) != partition(j),
// the pre neuron's spike count |T_i| is charged (Eq. 7), summed over all
// crossbar pairs (Eq. 8).  The model also provides:
//   * the multicast packet count (one AER packet per spike per *distinct*
//     remote crossbar — what the NoC actually carries),
//   * local synaptic event counts (crossbar energy),
//   * an analytic energy estimate used for quick exploration, and
//   * O(degree) move deltas for the annealing/greedy ablation partitioners.
#pragma once

#include <cstdint>
#include <vector>

#include "core/partition.hpp"
#include "hw/energy_model.hpp"
#include "noc/topology.hpp"
#include "snn/graph.hpp"

namespace snnmap::core {

/// What the optimizers minimize.  Eq. 7's summation is ambiguous about
/// whether a pre neuron with several synapses into one remote crossbar is
/// charged once or per synapse; under the AER protocol the hardware sends
/// *one* packet per spike per distinct remote crossbar, so kAerPackets is
/// the faithful reading for a multicast interconnect (and the default).
/// kCutSpikes is the literal per-edge reading, kept for comparison.
enum class Objective : std::uint8_t { kAerPackets, kCutSpikes };

const char* to_string(Objective objective) noexcept;

class CostModel {
 public:
  explicit CostModel(const snn::SnnGraph& graph);

  const snn::SnnGraph& graph() const noexcept { return graph_; }

  /// Eq. 8: total spikes on the global synapse interconnect.
  std::uint64_t global_spike_count(const Partition& partition) const;

  /// Eq. 8 over a raw assignment vector (hot path for the optimizers).
  std::uint64_t global_spike_count(
      const std::vector<CrossbarId>& assignment) const;

  /// Spikes cut by edges incident to `neuron` if it were placed on
  /// `candidate`; neighbors still unassigned (kUnassigned) are ignored.
  /// Used by the PSO/GA capacity-repair operators.
  std::uint64_t incident_cut(const std::vector<CrossbarId>& assignment,
                             std::uint32_t neuron, CrossbarId candidate) const;

  /// Eq. 7 restricted to one ordered crossbar pair (k1 -> k2).
  std::uint64_t spikes_between(const Partition& partition, CrossbarId k1,
                               CrossbarId k2) const;

  /// AER packets under router-level multicast: per neuron spike, one packet
  /// per distinct remote destination crossbar.
  std::uint64_t multicast_packet_count(const Partition& partition) const;
  std::uint64_t multicast_packet_count(
      const std::vector<CrossbarId>& assignment) const;

  /// Dispatches on the objective (hot path for the optimizers).
  std::uint64_t objective_cost(const std::vector<CrossbarId>& assignment,
                               Objective objective) const;

  /// Synaptic events served inside crossbars (local synapses).
  std::uint64_t local_event_count(const Partition& partition) const;

  /// Total synaptic events (partition-independent): sum over synapses of the
  /// pre neuron's spike count.
  std::uint64_t total_event_count() const noexcept { return total_events_; }

  /// Static analytic estimate of global-synapse energy, charge-for-charge
  /// aligned with the cycle-accurate NocSimulator accounting: encode at the
  /// source, link + upstream-switch energy per multicast-tree edge (shared
  /// path prefixes charged once), and ejection switch + decode per
  /// destination copy.  Reproduces the simulated NocStats::global_energy_pj
  /// on drained runs (pinned by the parity tests): every routing algorithm
  /// is minimal, so congestion (or adaptive selection) shifts *which* links
  /// a flit takes but never the activity counts — energy is unchanged, only
  /// timing degrades.
  double analytic_global_energy_pj(const Partition& partition,
                                   const noc::Topology& topology,
                                   const std::vector<noc::TileId>& placement,
                                   const hw::EnergyModel& energy,
                                   bool multicast = true) const;

  /// Local (crossbar) energy in pJ.
  double local_energy_pj(const Partition& partition,
                         const hw::EnergyModel& energy) const;

  /// Change in global_spike_count if `neuron` moved to `to` (negative =
  /// improvement).  O(degree of neuron).
  std::int64_t move_delta(const Partition& partition, std::uint32_t neuron,
                          CrossbarId to) const;

  /// Symmetric traffic matrix between crossbars (spike counts), flattened
  /// row-major [k1 * C + k2]; used by communication-aware placement.
  std::vector<std::uint64_t> traffic_matrix(const Partition& partition) const;

 private:
  struct WeightedEdge {
    std::uint32_t pre, post;
    std::uint64_t spikes;  ///< |T_pre|
  };

  const snn::SnnGraph& graph_;
  std::vector<WeightedEdge> edges_;
  // Stamp-marking scratch for distinct-crossbar counting (avoids a hash set
  // allocation per fitness evaluation on the optimizer hot path).
  mutable std::vector<std::uint64_t> crossbar_stamp_;
  mutable std::uint64_t stamp_ = 0;
  // CSR adjacency over undirected incidence for move_delta: for neuron n,
  // (other endpoint, charged spikes) of every edge touching n.
  std::vector<std::uint32_t> adj_offsets_;
  std::vector<std::uint32_t> adj_other_;
  std::vector<std::uint64_t> adj_spikes_;
  std::uint64_t total_events_ = 0;
};

}  // namespace snnmap::core
