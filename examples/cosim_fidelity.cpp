// Example 7: closed-loop co-simulation fidelity across partitioners.
//
// The open-loop flow scores a mapping by latency and energy; the closed
// loop measures what congestion does to the *dynamics*.  This demo maps the
// synthetic 2x120 workload with three partitioners and sweeps the fabric
// speed (cycles_per_timestep) downward: as the per-step cycle budget
// shrinks, packets start missing their emission window, effective synaptic
// delays stretch, and the spike trains diverge from the ideal-interconnect
// run — at different rates for different mappings, because a mapping with
// fewer/shorter NoC journeys degrades later.  A final row adds a bounded
// receive queue, turning hotspot congestion into outright spike loss.
//
//   ./build/examples/cosim_fidelity
#include <cstdint>
#include <iostream>
#include <vector>

#include "apps/registry.hpp"
#include "core/batch_eval.hpp"
#include "core/config_io.hpp"
#include "core/framework.hpp"
#include "core/placement.hpp"
#include "util/table.hpp"

int main() {
  using namespace snnmap;

  const std::uint64_t seed = 11;
  const std::string workload = "2x120";
  const snn::SnnGraph graph = apps::build_app(workload, seed);
  const apps::AppNetwork app_net = apps::build_app_network(workload, seed);

  auto arch = hw::Architecture::sized_for(graph.neuron_count(), 64,
                                          hw::InterconnectKind::kTree);
  std::cout << "workload: " << workload << " (" << graph.neuron_count()
            << " neurons, " << graph.total_spikes() << " spikes over "
            << graph.duration_ms() << " ms)\ndevice:   " << arch.describe()
            << "\n\n";

  const std::vector<core::PartitionerKind> mappers = {
      core::PartitionerKind::kPacman,
      core::PartitionerKind::kNeutrams,
      core::PartitionerKind::kPso,
  };
  const std::vector<std::uint32_t> budgets = {1024, 64, 32, 16, 8};

  // One scenario per (mapper, cycles_per_timestep); the batch evaluator
  // fans them across the pool, each with its same-seed ideal baseline.
  std::vector<core::CoSimScenario> scenarios;
  for (const auto mapper : mappers) {
    core::MappingFlowConfig flow;
    flow.arch = arch;
    flow.partitioner = mapper;
    flow.seed = seed;
    flow.pso.swarm_size = 24;
    flow.pso.iterations = 24;
    core::Partition partition = core::run_partitioner(graph, flow);

    noc::Topology topology = noc::Topology::for_architecture(arch);
    core::CoSimScenario base{
        .build = app_net.build,
        .partition = std::move(partition),
        .placement = core::identity_placement(arch.crossbar_count, topology),
        .topology = std::move(topology),
        .config = {},
        .with_ideal_baseline = true};
    base.config.snn = app_net.sim;
    for (const std::uint32_t cpt : budgets) {
      core::CoSimScenario sc = base;
      sc.config.cycles_per_timestep = cpt;
      scenarios.push_back(std::move(sc));
    }
  }

  core::BatchCoSimEvaluator evaluator;
  const auto outcomes = evaluator.run_all(std::move(scenarios));

  util::Table table({"mapper", "cycles/step", "late copies", "miss %",
                     "mean transit", "divergence %"});
  for (std::size_t m = 0; m < mappers.size(); ++m) {
    for (std::size_t b = 0; b < budgets.size(); ++b) {
      const auto& o = outcomes[m * budgets.size() + b];
      table.begin_row();
      table.cell(core::to_string(mappers[m]));
      table.cell(static_cast<std::size_t>(budgets[b]));
      table.cell(static_cast<std::size_t>(o.result.fidelity.deadline_misses +
                                          o.result.fidelity.undelivered));
      table.cell(util::format_double(
          o.result.fidelity.miss_fraction() * 100.0, 2));
      table.cell(util::format_double(
          o.result.fidelity.transit_cycles.mean(), 1));
      table.cell(util::format_double(o.divergence.fraction() * 100.0, 3));
    }
  }
  std::cout << table.to_ascii();

  // Bounded receive queue at the most congested budget: hotspot crossbars
  // start refusing copies, so congestion becomes spike *loss*.
  core::MappingFlowConfig flow;
  flow.arch = arch;
  flow.partitioner = core::PartitionerKind::kPacman;
  flow.seed = seed;
  noc::Topology topology = noc::Topology::for_architecture(arch);
  core::CoSimScenario bounded{
      .build = app_net.build,
      .partition = core::run_partitioner(graph, flow),
      .placement = core::identity_placement(arch.crossbar_count, topology),
      .topology = std::move(topology),
      .config = {},
      .with_ideal_baseline = true};
  bounded.config.snn = app_net.sim;
  bounded.config.cycles_per_timestep = budgets.back();
  bounded.config.receive_queue_depth = 2;
  const auto dropped = evaluator.run_all({bounded});
  const auto& fd = dropped[0].result.fidelity;
  std::cout << "\nbounded receive queue (depth 2, " << budgets.back()
            << " cycles/step, pacman): " << fd.receive_drops
            << " copies dropped, divergence "
            << util::format_double(dropped[0].divergence.fraction() * 100.0, 3)
            << " %\n";
  return 0;
}
