// Interconnect topologies for the global synapse network.
//
// Noxim is mesh-only; the paper's Noxim++ adds "different interconnect models
// for representative neuromorphic hardware" — NoC-tree (CxQuad) and NoC-mesh
// (TrueNorth, HiCANN) — and this layer extends them with the multi-chip
// scale-out fabrics (dragonfly, fat-tree).
//
// Routing is computed by compact per-topology *routing functions* — O(1) for
// mesh/ring/fat-tree, O(log R) for the tree, O(a*h/(g-1)) replica scan for
// the dragonfly — so a Topology holds only O(R) state (adjacency + per-kind
// metadata), never an R x D table.  The packed per-(router, dst) table is an
// optional opt-in cache (build_route_cache()) for hot simulation loops; it
// is filled from the same routing functions, so cached and uncached lookups
// are identical by construction (pinned by tests/noc/route_function_test).
//
// A topology also carries the chip boundary: assign_chips(c) splits the tile
// array contiguously across `c` chips and tags every link whose endpoints
// sit on different chips as off-chip (link_is_offchip), which the simulator
// and the analytic cost model price with the distinct off-chip energy and
// extra per-hop latency.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/architecture.hpp"

namespace snnmap::noc {

/// Router/port identifiers.  Each *tile* (crossbar) attaches to exactly one
/// router through that router's dedicated local port; inter-router ports are
/// numbered 0..port_count-1.
using RouterId = std::uint32_t;
using TileId = std::uint32_t;
using PortId = std::uint32_t;

inline constexpr RouterId kNoRouter = static_cast<RouterId>(-1);
/// Sentinel returned by next_port when the packet has arrived and must be
/// ejected through the local port.
inline constexpr PortId kLocalPort = static_cast<PortId>(-1);

/// Mesh routing algorithms (Noxim's configurable "routing algorithm").
/// All four are turn-model deadlock-free; XY/YX are deterministic,
/// West-first and North-last are partially adaptive (multiple candidate
/// output ports on some hops, resolved by the simulator's selection
/// strategy).
enum class MeshRouting : std::uint8_t { kXY, kYX, kWestFirst, kNorthLast };

const char* to_string(MeshRouting routing) noexcept;
MeshRouting mesh_routing_from_string(const std::string& name);

class Topology {
 public:
  /// width x height mesh; one tile per router, row-major tile ids.
  static Topology mesh(std::uint32_t width, std::uint32_t height);

  /// k-ary tree with `tiles` leaf routers (one tile each); internal levels
  /// are built bottom-up until a single root.  CxQuad = tree(4, 4).
  static Topology tree(std::uint32_t tiles, std::uint32_t arity);

  /// Bidirectional ring of `tiles` routers (one tile each); needs >= 2
  /// tiles (a 0/1-node "ring" has no links to route over).
  static Topology ring(std::uint32_t tiles);

  /// Dragonfly: `g` groups of `a` routers (one tile each), each group a
  /// complete local graph, `h` global channels per router.  Global channel
  /// t*(g-1) + idx of group i connects to group (i + idx + 1) mod g (its
  /// reverse is channel t*(g-1) + (g-2-idx) of that group — same replica,
  /// involutive index).  Requires a >= 2, g >= 2, h >= 1 and a*h >= g-1;
  /// floor(a*h / (g-1)) full replica sets of the g-1 channels are wired.
  /// Routing offers every minimal candidate (direct or one local detour to
  /// a global-channel owner) across replicas — the adaptive selection among
  /// them is the Valiant-style load-spreading hook.
  static Topology dragonfly(std::uint32_t a, std::uint32_t g,
                            std::uint32_t h);

  /// Fat-tree of radix `k` (even, >= 2): k pods of k/2 edge and k/2
  /// aggregation switches plus (k/2)^2 cores; one tile per edge switch
  /// (k^2/2 tiles).  Up*/down* routing: the up phase is adaptive (every up
  /// port is minimal, first candidate derived from the destination id so
  /// deterministic flows spread), the down phase is unique.
  static Topology fattree(std::uint32_t k);

  /// Builds the topology matching an architecture description (validates
  /// it first) and applies its chip split.
  static Topology for_architecture(const hw::Architecture& arch);

  hw::InterconnectKind kind() const noexcept { return kind_; }
  std::uint32_t router_count() const noexcept {
    return static_cast<std::uint32_t>(neighbors_.size());
  }
  std::uint32_t tile_count() const noexcept {
    return static_cast<std::uint32_t>(tile_router_.size());
  }

  RouterId router_of_tile(TileId tile) const;
  /// Tile attached to a router, or kNoRouter if none (internal tree router,
  /// fat-tree aggregation/core switch).
  TileId tile_of_router(RouterId router) const;

  std::uint32_t port_count(RouterId router) const;
  /// Neighbor router reached through `port`.
  RouterId neighbor(RouterId router, PortId port) const;

  /// Deterministic next hop from `router` toward `dst` router; kLocalPort
  /// when router == dst.  Always the routing function's first candidate.
  PortId next_port(RouterId router, RouterId dst) const;

  /// All legal next-hop ports toward `dst` (1 entry for the deterministic
  /// algorithms, up to 3 for the adaptive ones).  Returns the count; `out`
  /// must hold 3.  Every candidate is productive (lies on a minimal path),
  /// so any selection among them preserves minimality.
  std::uint32_t route_candidates(RouterId router, RouterId dst,
                                 PortId out[3]) const;

  /// Packed per-(router, dst) routing-table entry: the same candidates
  /// route_candidates() returns.  Ports are uint8; an entry for
  /// router == dst has count 1 and port[0] == kTableLocal.
  struct RouteEntry {
    std::uint8_t count = 0;
    std::uint8_t port[3] = {0, 0, 0};
  };
  /// Sentinel port value inside RouteEntry marking local delivery.
  static constexpr std::uint8_t kTableLocal = 0xFF;

  /// Opt-in O(R x D) cache of packed route entries, filled from the routing
  /// functions (so cached and uncached lookups agree entry for entry).
  /// Only worth building for small fabrics on hot simulation paths; throws
  /// std::invalid_argument when some router has >= 255 ports (the packed
  /// uint8 encoding would not fit).
  void build_route_cache();
  bool has_route_cache() const noexcept { return !route_table_.empty(); }
  /// The cache (empty unless build_route_cache() ran), router-major:
  /// entry `router * router_count() + dst`.
  const std::vector<RouteEntry>& route_table() const noexcept {
    return route_table_;
  }

  /// Packed candidates for one (router, dst) pair: an O(1) cache load when
  /// the cache is built, otherwise computed by the routing function.  Hot
  /// path: no bounds checks; ids must be < router_count() and every router
  /// must have < 255 ports (the NocSimulator constructor enforces both).
  RouteEntry route_entry(RouterId router, RouterId dst) const {
    if (!route_table_.empty()) {
      return route_table_[static_cast<std::size_t>(router) * router_count() +
                          dst];
    }
    RouteEntry e;
    if (router == dst) {
      e.count = 1;
      e.port[0] = kTableLocal;
      return e;
    }
    PortId candidates[3];
    const std::uint32_t count = compute_candidates(router, dst, candidates);
    e.count = static_cast<std::uint8_t>(count);
    for (std::uint32_t k = 0; k < count; ++k) {
      e.port[k] = static_cast<std::uint8_t>(candidates[k]);
    }
    return e;
  }

  /// Fault-fallback next hops toward `dst`: every *minimal* productive
  /// port, ignoring the turn model.  The fault-aware simulator consults
  /// these only after every route_candidates() port is fault-masked — a
  /// mesh hop blocked on its X leg can still make progress on Y (and vice
  /// versa) even when the configured algorithm would forbid that turn.
  /// Mesh only (the other kinds either already enumerate every minimal
  /// replica — dragonfly, fat-tree — or have a unique minimal path whose
  /// loss is unroutable — tree, ring); returns 0 elsewhere and for
  /// router == dst.  `out` must hold 2.  Deadlock-freedom note: this can
  /// break the turn model's guarantee, which is acceptable under faults —
  /// the simulator counts unroutable/undrained outcomes instead of
  /// wedging, and max_cycles bounds any pathological cycle.
  std::uint32_t fault_fallback_candidates(RouterId router, RouterId dst,
                                          PortId out[2]) const;

  /// Mesh only; throws std::logic_error on other topologies.  Rebuilds the
  /// route cache if one was built (candidate sets depend on the algorithm).
  void set_mesh_routing(MeshRouting routing);
  MeshRouting mesh_routing() const noexcept { return routing_; }

  /// Number of links on the routing path between two tiles' routers
  /// (closed-form per topology; every candidate path has this length).
  std::uint32_t hop_distance(TileId a, TileId b) const;

  /// Sum of all inter-router links (each bidirectional link counted once).
  std::uint32_t link_count() const noexcept { return link_count_; }

  // --- chip boundary ------------------------------------------------------

  /// Splits the tile array contiguously across `chips` chips (tile t sits
  /// on chip t / ceil(tiles/chips)); tileless routers (tree internals,
  /// fat-tree aggs/cores) take the chip of the first tile they cover.
  /// Throws std::invalid_argument for chips == 0 or chips > tile_count().
  void assign_chips(std::uint32_t chips);
  std::uint32_t chip_count() const noexcept { return chip_count_; }
  std::uint32_t chip_of_router(RouterId router) const;
  /// True when the link behind (router, port) crosses a chip boundary.
  /// Hot path on the simulator's geometry setup: unchecked ids.
  bool link_is_offchip(RouterId router, PortId port) const noexcept {
    return chip_count_ > 1 &&
           router_chip_[router] != router_chip_[neighbors_[router][port]];
  }
  /// Bidirectional links crossing a chip boundary (0 on one chip).
  std::uint32_t offchip_link_count() const noexcept {
    return offchip_link_count_;
  }

  /// Heap bytes held by this topology (adjacency, tile maps, per-kind
  /// routing metadata, chip map, and the route cache if built).  The
  /// footprint bench report pins that function-routed construction is O(R).
  std::size_t memory_footprint_bytes() const noexcept;

 private:
  Topology() = default;
  void finish_tiles_one_per_router(std::uint32_t n);
  /// The per-topology routing function backing route_candidates(),
  /// route_entry() and build_route_cache().  Unchecked ids; router != dst.
  std::uint32_t compute_candidates(RouterId router, RouterId dst,
                                   PortId out[3]) const;
  std::uint32_t mesh_candidates(RouterId router, RouterId dst,
                                PortId out[3]) const;
  std::uint32_t tree_candidates(RouterId router, RouterId dst,
                                PortId out[3]) const;
  std::uint32_t ring_candidates(RouterId router, RouterId dst,
                                PortId out[3]) const;
  std::uint32_t dragonfly_candidates(RouterId router, RouterId dst,
                                     PortId out[3]) const;
  std::uint32_t fattree_candidates(RouterId router, RouterId dst,
                                   PortId out[3]) const;
  std::uint32_t router_hop_distance(RouterId a, RouterId b) const;
  /// Tree level of a router (0 = leaves) via the level-start index.
  std::uint32_t tree_level_of(RouterId router) const noexcept;
  void check_router(RouterId router) const;

  hw::InterconnectKind kind_ = hw::InterconnectKind::kMesh;
  std::uint32_t mesh_width_ = 0;   // mesh only
  std::uint32_t mesh_height_ = 0;  // mesh only
  MeshRouting routing_ = MeshRouting::kXY;
  std::uint32_t tree_arity_ = 0;   // tree only
  // tree only: first router id of each level (leaves first), plus a
  // trailing sentinel == router_count(); O(log R) entries.
  std::vector<RouterId> tree_level_start_;
  std::uint32_t df_a_ = 0;         // dragonfly: routers per group
  std::uint32_t df_g_ = 0;         // dragonfly: groups
  std::uint32_t df_h_ = 0;         // dragonfly: global channels per router
  std::uint32_t df_channels_ = 0;  // wired global channels per group
  std::uint32_t ft_k_ = 0;         // fat-tree radix
  // neighbors_[r] = adjacent routers, port index = position in this list.
  std::vector<std::vector<RouterId>> neighbors_;
  std::vector<RouterId> tile_router_;  // tile -> router
  std::vector<TileId> router_tile_;    // router -> tile or kNoRouter
  std::vector<RouteEntry> route_table_;  // opt-in cache, router-major
  std::uint32_t link_count_ = 0;
  std::uint32_t chip_count_ = 1;
  std::vector<std::uint32_t> router_chip_;  // empty on one chip
  std::uint32_t offchip_link_count_ = 0;
};

}  // namespace snnmap::noc
