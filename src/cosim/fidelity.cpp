#include "cosim/fidelity.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace snnmap::cosim {

double FidelityReport::miss_fraction() const noexcept {
  if (copies_offered == 0) return 0.0;
  return static_cast<double>(deadline_misses + receive_drops + undelivered) /
         static_cast<double>(copies_offered);
}

double FidelityReport::drop_fraction() const noexcept {
  if (copies_offered == 0) return 0.0;
  return static_cast<double>(receive_drops) /
         static_cast<double>(copies_offered);
}

double SpikeDivergence::fraction() const noexcept {
  const std::uint64_t uni = matched + only_ideal + only_cosim;
  if (uni == 0) return 0.0;
  return static_cast<double>(only_ideal + only_cosim) /
         static_cast<double>(uni);
}

SpikeDivergence spike_divergence(const std::vector<snn::SpikeTrain>& ideal,
                                 const std::vector<snn::SpikeTrain>& cosim) {
  if (ideal.size() != cosim.size()) {
    throw std::invalid_argument(
        "spike_divergence: neuron counts differ (" +
        std::to_string(ideal.size()) + " vs " + std::to_string(cosim.size()) +
        ")");
  }
  SpikeDivergence d;
  for (std::size_t i = 0; i < ideal.size(); ++i) {
    const snn::SpikeTrain& a = ideal[i];
    const snn::SpikeTrain& b = cosim[i];
    std::size_t ia = 0;
    std::size_t ib = 0;
    while (ia < a.size() && ib < b.size()) {
      if (a[ia] == b[ib]) {
        ++d.matched;
        ++ia;
        ++ib;
      } else if (a[ia] < b[ib]) {
        ++d.only_ideal;
        ++ia;
      } else {
        ++d.only_cosim;
        ++ib;
      }
    }
    d.only_ideal += a.size() - ia;
    d.only_cosim += b.size() - ib;
  }
  return d;
}

snn::SnnGraph observed_graph_from_noc(
    const snn::SnnGraph& analytic, const core::Partition& partition,
    const core::Placement& placement,
    const std::vector<noc::DeliveredSpike>& delivered,
    std::uint32_t cycles_per_ms) {
  if (partition.neuron_count() != analytic.neuron_count()) {
    throw std::invalid_argument(
        "observed_graph_from_noc: partition size mismatch");
  }
  if (placement.size() != partition.crossbar_count()) {
    throw std::invalid_argument(
        "observed_graph_from_noc: placement size mismatch");
  }
  if (cycles_per_ms == 0) {
    throw std::invalid_argument(
        "observed_graph_from_noc: cycles_per_ms must be >= 1");
  }

  // First-copy arrival per (source, packet): the earliest recv_cycle over
  // the packet's destination copies, keyed by the per-source sequence
  // number the NoC assigns in emission order.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>> arrivals(
      analytic.neuron_count());
  for (const noc::DeliveredSpike& d : delivered) {
    if (d.source_neuron >= analytic.neuron_count()) {
      throw std::invalid_argument(
          "observed_graph_from_noc: delivery for unknown source neuron");
    }
    auto& per_source = arrivals[d.source_neuron];
    if (!per_source.empty() && per_source.back().first == d.sequence) {
      per_source.back().second =
          std::min(per_source.back().second, d.recv_cycle);
    } else {
      // Copies of one packet are not necessarily adjacent in the log;
      // handle out-of-order sequences below with a sort + merge.
      per_source.emplace_back(d.sequence, d.recv_cycle);
    }
  }

  std::vector<snn::SpikeTrain> trains(analytic.spike_trains());
  const double duration = analytic.duration_ms();
  for (std::uint32_t i = 0; i < analytic.neuron_count(); ++i) {
    auto& per_source = arrivals[i];
    if (per_source.empty()) continue;  // purely local: keep analytic train
    std::sort(per_source.begin(), per_source.end());
    snn::SpikeTrain train;
    train.reserve(per_source.size());
    std::size_t k = 0;
    while (k < per_source.size()) {
      std::uint64_t earliest = per_source[k].second;
      const std::uint32_t seq = per_source[k].first;
      while (k < per_source.size() && per_source[k].first == seq) {
        earliest = std::min(earliest, per_source[k].second);
        ++k;
      }
      const double t = std::min(
          duration,
          static_cast<double>(earliest) / static_cast<double>(cycles_per_ms));
      train.push_back(t);
    }
    std::sort(train.begin(), train.end());
    trains[i] = std::move(train);
  }

  return snn::SnnGraph::from_parts(
      analytic.neuron_count(), analytic.edges(), std::move(trains),
      analytic.duration_ms(), analytic.group_names(), analytic.group_first());
}

}  // namespace snnmap::cosim
