#include "snn/spike_train.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace snnmap::snn {

bool is_valid_train(const SpikeTrain& train) {
  if (!train.empty() && train.front() < 0.0) return false;
  return std::is_sorted(train.begin(), train.end());
}

std::vector<SpikeTrain> trains_from_events(
    std::size_t neuron_count, const std::vector<SpikeEvent>& events) {
  std::vector<SpikeTrain> trains(neuron_count);
  std::vector<std::size_t> counts(neuron_count, 0);
  for (const SpikeEvent& e : events) ++counts[e.neuron];
  for (std::size_t i = 0; i < neuron_count; ++i) {
    trains[i].reserve(counts[i]);
  }
  for (const SpikeEvent& e : events) {
    trains[e.neuron].push_back(e.time_ms);
  }
  return trains;
}

std::vector<double> inter_spike_intervals(const SpikeTrain& train) {
  std::vector<double> isis;
  if (train.size() < 2) return isis;
  isis.reserve(train.size() - 1);
  for (std::size_t i = 1; i < train.size(); ++i) {
    isis.push_back(train[i] - train[i - 1]);
  }
  return isis;
}

double mean_rate_hz(const SpikeTrain& train, TimeMs duration_ms) {
  if (duration_ms <= 0.0) return 0.0;
  return static_cast<double>(train.size()) / duration_ms * 1000.0;
}

std::size_t spikes_in_window(const SpikeTrain& train, TimeMs t0, TimeMs t1) {
  const auto lo = std::lower_bound(train.begin(), train.end(), t0);
  const auto hi = std::lower_bound(train.begin(), train.end(), t1);
  return static_cast<std::size_t>(hi - lo);
}

double isi_coefficient_of_variation(const SpikeTrain& train) {
  const auto isis = inter_spike_intervals(train);
  if (isis.size() < 2) return 0.0;
  util::Accumulator acc;
  for (double isi : isis) acc.add(isi);
  if (acc.mean() <= 0.0) return 0.0;
  return acc.stddev() / acc.mean();
}

SpikeTrain merge_trains(const SpikeTrain& a, const SpikeTrain& b) {
  SpikeTrain out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

std::size_t spike_count_distance(const SpikeTrain& a, const SpikeTrain& b) {
  return a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
}

}  // namespace snnmap::snn
