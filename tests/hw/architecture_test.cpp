#include "hw/architecture.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace snnmap::hw {
namespace {

TEST(Architecture, CxquadPreset) {
  const auto a = Architecture::cxquad();
  EXPECT_EQ(a.crossbar_count, 4u);
  EXPECT_EQ(a.neurons_per_crossbar, 256u);
  EXPECT_EQ(a.interconnect, InterconnectKind::kTree);
  EXPECT_EQ(a.capacity(), 1024u);
  EXPECT_TRUE(a.fits(1024));
  EXPECT_FALSE(a.fits(1025));
}

TEST(Architecture, SizedForRoundsUp) {
  const auto a = Architecture::sized_for(1000, 256, InterconnectKind::kMesh);
  EXPECT_EQ(a.crossbar_count, 4u);
  const auto b = Architecture::sized_for(1025, 256, InterconnectKind::kMesh);
  EXPECT_EQ(b.crossbar_count, 5u);
  const auto c = Architecture::sized_for(0, 256, InterconnectKind::kMesh);
  EXPECT_EQ(c.crossbar_count, 1u);
}

TEST(Architecture, SizedForRejectsZeroCapacity) {
  EXPECT_THROW(Architecture::sized_for(10, 0, InterconnectKind::kMesh),
               std::invalid_argument);
}

TEST(Architecture, MeshDimensionsCoverCrossbars) {
  for (std::uint32_t count : {1u, 2u, 3u, 4u, 5u, 7u, 9u, 12u, 16u, 17u}) {
    Architecture a;
    a.crossbar_count = count;
    EXPECT_GE(a.mesh_width() * a.mesh_height(), count) << count;
    // Squarish: width within one row/col of height.
    EXPECT_LE(a.mesh_width(), a.mesh_height() + count);
  }
}

TEST(Architecture, MeshIsSquareForPerfectSquares) {
  Architecture a;
  a.crossbar_count = 16;
  EXPECT_EQ(a.mesh_width(), 4u);
  EXPECT_EQ(a.mesh_height(), 4u);
}

TEST(InterconnectKind, StringRoundTrip) {
  EXPECT_EQ(interconnect_from_string("mesh"), InterconnectKind::kMesh);
  EXPECT_EQ(interconnect_from_string("tree"), InterconnectKind::kTree);
  EXPECT_EQ(interconnect_from_string("ring"), InterconnectKind::kRing);
  EXPECT_EQ(interconnect_from_string("dragonfly"),
            InterconnectKind::kDragonfly);
  EXPECT_EQ(interconnect_from_string("fattree"), InterconnectKind::kFattree);
  EXPECT_STREQ(to_string(InterconnectKind::kMesh), "mesh");
  EXPECT_STREQ(to_string(InterconnectKind::kTree), "tree");
  EXPECT_STREQ(to_string(InterconnectKind::kRing), "ring");
  EXPECT_STREQ(to_string(InterconnectKind::kDragonfly), "dragonfly");
  EXPECT_STREQ(to_string(InterconnectKind::kFattree), "fattree");
  EXPECT_THROW(interconnect_from_string("torus"), std::invalid_argument);
}

TEST(InterconnectKind, UnknownNameListsAllFiveKinds) {
  try {
    interconnect_from_string("torus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    for (const char* kind :
         {"mesh", "tree", "ring", "dragonfly", "fattree"}) {
      EXPECT_NE(what.find(kind), std::string::npos) << kind;
    }
  }
}

TEST(Architecture, ValidateRejectsDegenerateConfigs) {
  Architecture a = Architecture::cxquad();
  EXPECT_NO_THROW(a.validate());
  a.crossbar_count = 0;
  EXPECT_THROW(a.validate(), std::invalid_argument);
  a = Architecture::cxquad();
  a.neurons_per_crossbar = 0;
  EXPECT_THROW(a.validate(), std::invalid_argument);
  a = Architecture::cxquad();
  a.cycles_per_ms = 0;
  EXPECT_THROW(a.validate(), std::invalid_argument);
  a = Architecture::cxquad();
  a.tree_arity = 1;
  EXPECT_THROW(a.validate(), std::invalid_argument);
  a = Architecture::cxquad();
  a.interconnect = InterconnectKind::kRing;
  a.crossbar_count = 1;
  EXPECT_THROW(a.validate(), std::invalid_argument);
  a = Architecture::cxquad();
  a.interconnect = InterconnectKind::kDragonfly;
  a.dragonfly_arity = 1;
  EXPECT_THROW(a.validate(), std::invalid_argument);
  a = Architecture::cxquad();
  a.interconnect = InterconnectKind::kDragonfly;
  a.dragonfly_arity = 2;
  a.dragonfly_groups = 9;
  a.dragonfly_global = 2;  // 2 * 2 < 9 - 1
  EXPECT_THROW(a.validate(), std::invalid_argument);
  a = Architecture::cxquad();
  a.interconnect = InterconnectKind::kFattree;
  a.fattree_k = 3;  // odd radix
  EXPECT_THROW(a.validate(), std::invalid_argument);
  a = Architecture::cxquad();
  a.interconnect = InterconnectKind::kFattree;
  a.fattree_k = 2;  // 2 tiles < 4 crossbars
  EXPECT_THROW(a.validate(), std::invalid_argument);
  a = Architecture::cxquad();
  a.chip_count = 0;
  EXPECT_THROW(a.validate(), std::invalid_argument);
  a = Architecture::cxquad();
  a.chip_count = 5;  // more chips than the tree's 4 tiles
  EXPECT_THROW(a.validate(), std::invalid_argument);
}

TEST(Architecture, SizedForGrowsDragonflyAndFattree) {
  const auto df =
      Architecture::sized_for(5000, 256, InterconnectKind::kDragonfly);
  EXPECT_NO_THROW(df.validate());
  EXPECT_GE(df.interconnect_tile_count(), df.crossbar_count);
  const auto ft =
      Architecture::sized_for(5000, 256, InterconnectKind::kFattree);
  EXPECT_NO_THROW(ft.validate());
  EXPECT_GE(ft.interconnect_tile_count(), ft.crossbar_count);
  // A single-crossbar ring request bumps to the 2-crossbar minimum.
  const auto ring = Architecture::sized_for(1, 256, InterconnectKind::kRing);
  EXPECT_EQ(ring.crossbar_count, 2u);
  EXPECT_NO_THROW(ring.validate());
}

TEST(Architecture, TilesPerChipSplitsEvenly) {
  Architecture a = Architecture::cxquad();
  EXPECT_EQ(a.tiles_per_chip(), 4u);
  a.chip_count = 2;
  EXPECT_EQ(a.tiles_per_chip(), 2u);
  EXPECT_NO_THROW(a.validate());
  const auto text = a.describe();
  EXPECT_NE(text.find("2 chips"), std::string::npos);
}

TEST(Architecture, DescribeMentionsShape) {
  const auto a = Architecture::cxquad();
  const auto text = a.describe();
  EXPECT_NE(text.find("4 crossbars"), std::string::npos);
  EXPECT_NE(text.find("tree"), std::string::npos);
}

}  // namespace
}  // namespace snnmap::hw
