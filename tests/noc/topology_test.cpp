#include "noc/topology.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace snnmap::noc {
namespace {

TEST(Mesh, DimensionsAndTiles) {
  const auto t = Topology::mesh(3, 2);
  EXPECT_EQ(t.router_count(), 6u);
  EXPECT_EQ(t.tile_count(), 6u);
  EXPECT_EQ(t.kind(), hw::InterconnectKind::kMesh);
  EXPECT_EQ(t.link_count(), 2u * 2u + 3u * 1u);  // 2 per row *2 rows? see calc
  for (TileId i = 0; i < 6; ++i) {
    EXPECT_EQ(t.router_of_tile(i), i);
    EXPECT_EQ(t.tile_of_router(i), i);
  }
}

TEST(Mesh, XyHopDistanceIsManhattan) {
  const auto t = Topology::mesh(4, 4);
  EXPECT_EQ(t.hop_distance(0, 0), 0u);
  EXPECT_EQ(t.hop_distance(0, 3), 3u);    // same row
  EXPECT_EQ(t.hop_distance(0, 12), 3u);   // same column
  EXPECT_EQ(t.hop_distance(0, 15), 6u);   // corner to corner
  EXPECT_EQ(t.hop_distance(5, 10), 2u);   // (1,1) -> (2,2)
}

TEST(Mesh, XyRoutesXFirst) {
  const auto t = Topology::mesh(3, 3);
  // From router 0 (0,0) to router 8 (2,2): first hop must be +x (router 1).
  const PortId p = t.next_port(0, 8);
  EXPECT_EQ(t.neighbor(0, p), 1u);
  // From 2 (2,0) to 6 (0,2): first hop is -x (router 1).
  const PortId q = t.next_port(2, 6);
  EXPECT_EQ(t.neighbor(2, q), 1u);
}

TEST(Mesh, LocalPortWhenArrived) {
  const auto t = Topology::mesh(2, 2);
  EXPECT_EQ(t.next_port(3, 3), kLocalPort);
}

TEST(Mesh, RejectsZeroDimensions) {
  EXPECT_THROW(Topology::mesh(0, 3), std::invalid_argument);
  EXPECT_THROW(Topology::mesh(3, 0), std::invalid_argument);
}

TEST(Tree, CxquadShape) {
  // 4 leaves under one hub (arity 4): 5 routers, 4 links.
  const auto t = Topology::tree(4, 4);
  EXPECT_EQ(t.router_count(), 5u);
  EXPECT_EQ(t.tile_count(), 4u);
  EXPECT_EQ(t.link_count(), 4u);
  EXPECT_EQ(t.kind(), hw::InterconnectKind::kTree);
  // Every leaf pair is 2 hops apart (up to hub, down).
  for (TileId a = 0; a < 4; ++a) {
    for (TileId b = 0; b < 4; ++b) {
      EXPECT_EQ(t.hop_distance(a, b), a == b ? 0u : 2u);
    }
  }
  // Internal hub has no tile.
  EXPECT_EQ(t.tile_of_router(4), kNoRouter);
}

TEST(Tree, TwoLevelDistances) {
  // 8 leaves, arity 4 -> 2 mid routers + root: leaves in the same subtree
  // are 2 hops apart; across subtrees 4 hops.
  const auto t = Topology::tree(8, 4);
  EXPECT_EQ(t.hop_distance(0, 3), 2u);
  EXPECT_EQ(t.hop_distance(0, 4), 4u);
  EXPECT_EQ(t.hop_distance(4, 7), 2u);
}

TEST(Tree, SingleTileIsTrivial) {
  const auto t = Topology::tree(1, 4);
  EXPECT_EQ(t.router_count(), 1u);
  EXPECT_EQ(t.hop_distance(0, 0), 0u);
}

TEST(Tree, RejectsBadParams) {
  EXPECT_THROW(Topology::tree(0, 4), std::invalid_argument);
  EXPECT_THROW(Topology::tree(4, 1), std::invalid_argument);
}

TEST(Ring, ShortestPathWrapsAround) {
  const auto t = Topology::ring(6);
  EXPECT_EQ(t.router_count(), 6u);
  EXPECT_EQ(t.link_count(), 6u);
  EXPECT_EQ(t.hop_distance(0, 1), 1u);
  EXPECT_EQ(t.hop_distance(0, 3), 3u);  // diameter
  EXPECT_EQ(t.hop_distance(0, 5), 1u);  // wraps
  EXPECT_EQ(t.hop_distance(1, 5), 2u);
}

TEST(Ring, TwoNode) {
  const auto two = Topology::ring(2);
  EXPECT_EQ(two.hop_distance(0, 1), 1u);
  EXPECT_EQ(two.link_count(), 1u);
}

TEST(Ring, RejectsDegenerateSizes) {
  // A 0/1-node "ring" has no links to route over.
  EXPECT_THROW(Topology::ring(0), std::invalid_argument);
  EXPECT_THROW(Topology::ring(1), std::invalid_argument);
}

TEST(Dragonfly, ShapeAndLinkCount) {
  // a=4, g=5, h=1: balanced (a*h == g-1), 20 routers, one tile each.
  const auto t = Topology::dragonfly(4, 5, 1);
  EXPECT_EQ(t.kind(), hw::InterconnectKind::kDragonfly);
  EXPECT_EQ(t.router_count(), 20u);
  EXPECT_EQ(t.tile_count(), 20u);
  // 5 complete local graphs (6 links each) + 5*4/2 global links.
  EXPECT_EQ(t.link_count(), 5u * 6u + 10u);
  // Every router: a-1 = 3 local ports + h = 1 global port.
  for (RouterId r = 0; r < t.router_count(); ++r) {
    EXPECT_EQ(t.port_count(r), 4u);
  }
}

TEST(Dragonfly, HopDistancesAreMinimal) {
  const auto t = Topology::dragonfly(4, 5, 1);
  // Same group: always 1 hop (complete graph).
  EXPECT_EQ(t.hop_distance(0, 3), 1u);
  // Cross-group distances are 1..3 (global hop plus at most one local hop
  // on each side) and never more.
  for (TileId a = 0; a < t.tile_count(); ++a) {
    for (TileId b = 0; b < t.tile_count(); ++b) {
      if (a == b) continue;
      const std::uint32_t d = t.hop_distance(a, b);
      EXPECT_GE(d, 1u);
      EXPECT_LE(d, 3u);
    }
  }
}

TEST(Dragonfly, RejectsDegenerateParams) {
  EXPECT_THROW(Topology::dragonfly(1, 5, 1), std::invalid_argument);
  EXPECT_THROW(Topology::dragonfly(4, 1, 1), std::invalid_argument);
  EXPECT_THROW(Topology::dragonfly(4, 5, 0), std::invalid_argument);
  // a*h < g-1: not enough global channels to reach every peer group.
  EXPECT_THROW(Topology::dragonfly(2, 9, 2), std::invalid_argument);
  // h > g-1 would wire parallel links.
  EXPECT_THROW(Topology::dragonfly(4, 3, 3), std::invalid_argument);
}

TEST(Fattree, ShapeAndLinkCount) {
  // k=4: 4 pods x (2 edge + 2 agg) + 4 cores = 20 routers, 8 tiles.
  const auto t = Topology::fattree(4);
  EXPECT_EQ(t.kind(), hw::InterconnectKind::kFattree);
  EXPECT_EQ(t.router_count(), 20u);
  EXPECT_EQ(t.tile_count(), 8u);
  EXPECT_EQ(t.link_count(), 32u);  // 16 edge-agg + 16 agg-core
  // Edge switches carry the tiles; aggs and cores have none.
  for (RouterId r = 0; r < 8; ++r) EXPECT_EQ(t.tile_of_router(r), r);
  for (RouterId r = 8; r < 20; ++r) {
    EXPECT_EQ(t.tile_of_router(r), kNoRouter);
  }
}

TEST(Fattree, HopDistances) {
  const auto t = Topology::fattree(4);
  EXPECT_EQ(t.hop_distance(0, 0), 0u);
  EXPECT_EQ(t.hop_distance(0, 1), 2u);  // same pod, via an agg
  EXPECT_EQ(t.hop_distance(0, 7), 4u);  // cross pod, via a core
}

TEST(Fattree, RejectsDegenerateParams) {
  EXPECT_THROW(Topology::fattree(0), std::invalid_argument);
  EXPECT_THROW(Topology::fattree(3), std::invalid_argument);  // odd radix
}

TEST(Topology, AssignChipsTagsBoundaryLinks) {
  auto t = Topology::dragonfly(4, 5, 1);
  EXPECT_EQ(t.chip_count(), 1u);
  EXPECT_EQ(t.offchip_link_count(), 0u);
  t.assign_chips(5);  // one chip per group of 4 tiles
  EXPECT_EQ(t.chip_count(), 5u);
  for (RouterId r = 0; r < t.router_count(); ++r) {
    EXPECT_EQ(t.chip_of_router(r), r / 4);
  }
  // Exactly the global links cross chips; local links stay on-chip.
  EXPECT_EQ(t.offchip_link_count(), 10u);
  std::uint32_t offchip_ports = 0;
  for (RouterId r = 0; r < t.router_count(); ++r) {
    for (PortId p = 0; p < t.port_count(r); ++p) {
      const bool crosses = t.chip_of_router(r) !=
                           t.chip_of_router(t.neighbor(r, p));
      EXPECT_EQ(t.link_is_offchip(r, p), crosses);
      offchip_ports += t.link_is_offchip(r, p) ? 1 : 0;
    }
  }
  EXPECT_EQ(offchip_ports, 2u * t.offchip_link_count());
}

TEST(Topology, AssignChipsCoversTilelessRouters) {
  // Tree internals take the chip of their first leaf; fat-tree aggs take
  // their pod's first tile and cores chip 0.
  auto tree = Topology::tree(8, 2);
  tree.assign_chips(2);
  EXPECT_EQ(tree.chip_of_router(tree.router_of_tile(0)), 0u);
  EXPECT_EQ(tree.chip_of_router(tree.router_of_tile(7)), 1u);
  auto ft = Topology::fattree(4);
  ft.assign_chips(4);  // one pod (2 tiles) per chip
  for (TileId tile = 0; tile < ft.tile_count(); ++tile) {
    EXPECT_EQ(ft.chip_of_router(ft.router_of_tile(tile)), tile / 2);
  }
  for (RouterId agg = 8; agg < 16; ++agg) {
    EXPECT_EQ(ft.chip_of_router(agg), (agg - 8) / 2);
  }
  for (RouterId core = 16; core < 20; ++core) {
    EXPECT_EQ(ft.chip_of_router(core), 0u);
  }
}

TEST(Topology, AssignChipsRejectsDegenerateCounts) {
  auto t = Topology::mesh(2, 2);
  EXPECT_THROW(t.assign_chips(0), std::invalid_argument);
  EXPECT_THROW(t.assign_chips(5), std::invalid_argument);
}

TEST(Topology, MemoryFootprintIsLinearInRouters) {
  // Function-routed fabrics hold O(R) state: quadrupling the router count
  // must not grow the footprint superlinearly (a packed R x D table would
  // grow 16x).  The opt-in cache is the quadratic part.
  auto small = Topology::dragonfly(8, 17, 2);   // 136 routers
  auto large = Topology::dragonfly(16, 33, 2);  // 528 routers
  const double ratio =
      static_cast<double>(large.memory_footprint_bytes()) /
      static_cast<double>(small.memory_footprint_bytes());
  EXPECT_LT(ratio, 8.0);  // ~4x routers with ~2x ports each
  const std::size_t before = large.memory_footprint_bytes();
  large.build_route_cache();
  EXPECT_GT(large.memory_footprint_bytes(),
            before + static_cast<std::size_t>(528) * 528 *
                         sizeof(Topology::RouteEntry) / 2);
}

TEST(Topology, ForArchitectureDispatches) {
  hw::Architecture arch = hw::Architecture::cxquad();
  const auto tree = Topology::for_architecture(arch);
  EXPECT_EQ(tree.kind(), hw::InterconnectKind::kTree);
  EXPECT_EQ(tree.tile_count(), 4u);

  arch.interconnect = hw::InterconnectKind::kMesh;
  const auto mesh = Topology::for_architecture(arch);
  EXPECT_EQ(mesh.kind(), hw::InterconnectKind::kMesh);
  EXPECT_GE(mesh.tile_count(), arch.crossbar_count);

  arch.interconnect = hw::InterconnectKind::kRing;
  const auto ring = Topology::for_architecture(arch);
  EXPECT_EQ(ring.kind(), hw::InterconnectKind::kRing);
  EXPECT_EQ(ring.tile_count(), 4u);
}

TEST(Topology, NeighborSymmetry) {
  // If b is a neighbor of a then a is a neighbor of b (all topologies).
  for (const auto& topo :
       {Topology::mesh(3, 3), Topology::tree(8, 2), Topology::ring(5),
        Topology::dragonfly(4, 5, 1), Topology::dragonfly(3, 4, 2),
        Topology::fattree(4), Topology::fattree(6)}) {
    for (RouterId r = 0; r < topo.router_count(); ++r) {
      for (PortId p = 0; p < topo.port_count(r); ++p) {
        const RouterId nb = topo.neighbor(r, p);
        bool back = false;
        for (PortId q = 0; q < topo.port_count(nb); ++q) {
          back |= topo.neighbor(nb, q) == r;
        }
        EXPECT_TRUE(back) << "router " << r << " port " << p;
      }
    }
  }
}

TEST(Topology, RoutingReachesDestination) {
  // Following next_port from any router must arrive at any destination in
  // exactly hop_distance hops (routing functions emit only minimal
  // candidates), for all topology families.
  for (const auto& topo :
       {Topology::mesh(4, 3), Topology::tree(9, 3), Topology::ring(7),
        Topology::dragonfly(4, 5, 1), Topology::dragonfly(3, 4, 2),
        Topology::fattree(4), Topology::fattree(6)}) {
    for (TileId a = 0; a < topo.tile_count(); ++a) {
      for (TileId b = 0; b < topo.tile_count(); ++b) {
        RouterId r = topo.router_of_tile(a);
        const RouterId dst = topo.router_of_tile(b);
        std::uint32_t hops = 0;
        while (r != dst) {
          ASSERT_LE(++hops, topo.router_count()) << "loop " << a << "->" << b;
          r = topo.neighbor(r, topo.next_port(r, dst));
        }
        EXPECT_EQ(hops, topo.hop_distance(a, b)) << a << "->" << b;
      }
    }
  }
}

TEST(Topology, EveryCandidateLiesOnAMinimalPath) {
  // Adaptive candidates must all be productive: stepping through any of
  // them, then following first candidates, still arrives in hop_distance
  // hops total.
  std::vector<Topology> topos;
  // The deterministic mesh default has a single candidate everywhere; the
  // adaptive check needs a turn model with choice.
  topos.push_back(Topology::mesh(4, 4));
  topos.back().set_mesh_routing(MeshRouting::kWestFirst);
  topos.push_back(Topology::dragonfly(3, 4, 2));
  topos.push_back(Topology::fattree(4));
  for (const auto& topo : topos) {
    for (TileId a = 0; a < topo.tile_count(); ++a) {
      for (TileId b = 0; b < topo.tile_count(); ++b) {
        if (a == b) continue;
        const RouterId src = topo.router_of_tile(a);
        const RouterId dst = topo.router_of_tile(b);
        PortId candidates[3];
        const std::uint32_t count =
            topo.route_candidates(src, dst, candidates);
        ASSERT_GE(count, 1u);
        ASSERT_LE(count, 3u);
        for (std::uint32_t c = 0; c < count; ++c) {
          RouterId r = topo.neighbor(src, candidates[c]);
          std::uint32_t hops = 1;
          while (r != dst) {
            ASSERT_LE(++hops, topo.router_count());
            r = topo.neighbor(r, topo.next_port(r, dst));
          }
          EXPECT_EQ(hops, topo.hop_distance(a, b))
              << a << "->" << b << " candidate " << c;
        }
      }
    }
  }
}

TEST(Topology, HopDistanceSymmetric) {
  // Shortest-path routing gives symmetric distances on these families.
  for (const auto& topo :
       {Topology::tree(8, 4), Topology::ring(9),
        Topology::dragonfly(4, 5, 1), Topology::fattree(4)}) {
    for (TileId a = 0; a < topo.tile_count(); ++a) {
      for (TileId b = 0; b < topo.tile_count(); ++b) {
        EXPECT_EQ(topo.hop_distance(a, b), topo.hop_distance(b, a));
      }
    }
  }
}

TEST(Topology, BoundsChecking) {
  const auto t = Topology::mesh(2, 2);
  EXPECT_THROW((void)t.router_of_tile(99), std::out_of_range);
  EXPECT_THROW((void)t.neighbor(0, 99), std::out_of_range);
  EXPECT_THROW((void)t.next_port(99, 0), std::out_of_range);
}

}  // namespace
}  // namespace snnmap::noc
