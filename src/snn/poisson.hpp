// Poisson spike generation.
//
// The paper's synthetic workloads feed each topology from "10 neurons
// creating spike trains, whose inter-spike interval follows a Poisson process
// with mean firing rates between 10 Hz and 100 Hz" (Sec. V).  These helpers
// generate such trains either offline (whole train at once) or per-step
// inside the simulator.
#pragma once

#include <cstdint>

#include "snn/spike_train.hpp"
#include "util/rng.hpp"

namespace snnmap::snn {

/// Generates a homogeneous Poisson spike train over [0, duration_ms) at
/// `rate_hz` by accumulating exponential inter-arrival times.
SpikeTrain generate_poisson_train(double rate_hz, TimeMs duration_ms,
                                  util::Rng& rng);

/// Per-step Bernoulli spike probability of the clock-driven approximation:
/// P(spike in dt) = rate * dt.  The simulator caches this per constant-rate
/// group, so the cached and per-call paths must share one expression.
inline double poisson_step_probability(double rate_hz, double dt_ms) noexcept {
  return rate_hz / 1000.0 * dt_ms;
}

/// Per-step Bernoulli approximation used by the clock-driven simulator:
/// P(spike in dt) = rate * dt.  Accurate for rate*dt << 1 (dt = 1 ms and
/// rates <= ~200 Hz keep the error below 10%, validated in tests).  Draws
/// from `rng` only when 0 < P < 1 (Rng::chance short-circuits), so a silent
/// source consumes nothing from the stream.
bool poisson_step_spike(double rate_hz, double dt_ms, util::Rng& rng);

/// Inhomogeneous Poisson train driven by a rate envelope sampled at dt_ms.
template <typename RateFn>
SpikeTrain generate_inhomogeneous_train(RateFn&& rate_hz_at, TimeMs duration_ms,
                                        double dt_ms, util::Rng& rng) {
  SpikeTrain train;
  for (TimeMs t = 0.0; t < duration_ms; t += dt_ms) {
    if (poisson_step_spike(rate_hz_at(t), dt_ms, rng)) train.push_back(t);
  }
  return train;
}

}  // namespace snnmap::snn
