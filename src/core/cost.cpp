#include "core/cost.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <vector>

namespace snnmap::core {

CostModel::CostModel(const snn::SnnGraph& graph) : graph_(graph) {
  edges_.reserve(graph.edge_count());
  for (const auto& e : graph.edges()) {
    const std::uint64_t spikes = graph.spike_count(e.pre);
    edges_.push_back({e.pre, e.post, spikes});
    total_events_ += spikes;
  }
  // Undirected incidence CSR for O(degree) move deltas.
  const std::uint32_t n = graph.neuron_count();
  adj_offsets_.assign(n + 1, 0);
  for (const auto& e : edges_) {
    if (e.pre == e.post) continue;  // self-loops never cross a boundary
    ++adj_offsets_[e.pre + 1];
    ++adj_offsets_[e.post + 1];
  }
  for (std::size_t i = 1; i < adj_offsets_.size(); ++i) {
    adj_offsets_[i] += adj_offsets_[i - 1];
  }
  adj_other_.resize(adj_offsets_.back());
  adj_spikes_.resize(adj_offsets_.back());
  std::vector<std::uint32_t> cursor(adj_offsets_.begin(),
                                    adj_offsets_.end() - 1);
  for (const auto& e : edges_) {
    if (e.pre == e.post) continue;
    adj_other_[cursor[e.pre]] = e.post;
    adj_spikes_[cursor[e.pre]++] = e.spikes;
    adj_other_[cursor[e.post]] = e.pre;
    adj_spikes_[cursor[e.post]++] = e.spikes;
  }
}

std::uint64_t CostModel::global_spike_count(const Partition& partition) const {
  return global_spike_count(partition.assignment());
}

std::uint64_t CostModel::global_spike_count(
    const std::vector<CrossbarId>& assignment) const {
  std::uint64_t total = 0;
  for (const auto& e : edges_) {
    if (assignment[e.pre] != assignment[e.post]) total += e.spikes;
  }
  return total;
}

std::uint64_t CostModel::incident_cut(
    const std::vector<CrossbarId>& assignment, std::uint32_t neuron,
    CrossbarId candidate) const {
  std::uint64_t cut = 0;
  for (std::uint32_t k = adj_offsets_[neuron]; k < adj_offsets_[neuron + 1];
       ++k) {
    const CrossbarId other = assignment[adj_other_[k]];
    if (other != kUnassigned && other != candidate) cut += adj_spikes_[k];
  }
  return cut;
}

std::uint64_t CostModel::spikes_between(const Partition& partition,
                                        CrossbarId k1, CrossbarId k2) const {
  if (k1 == k2) return 0;  // Eq. 7: zero for k1 == k2
  const auto& part = partition.assignment();
  std::uint64_t total = 0;
  for (const auto& e : edges_) {
    if (part[e.pre] == k1 && part[e.post] == k2) total += e.spikes;
  }
  return total;
}

std::uint64_t CostModel::multicast_packet_count(
    const Partition& partition) const {
  return multicast_packet_count(partition.assignment());
}

std::uint64_t CostModel::multicast_packet_count(
    const std::vector<CrossbarId>& assignment) const {
  const auto& offsets = graph_.fanout_offsets();
  const auto& targets = graph_.fanout_targets();
  // Size the stamp scratch to the largest crossbar id in use (+1).
  CrossbarId max_c = 0;
  for (const CrossbarId c : assignment) {
    if (c != kUnassigned && c > max_c) max_c = c;
  }
  if (crossbar_stamp_.size() <= max_c) {
    crossbar_stamp_.assign(static_cast<std::size_t>(max_c) + 1, 0);
  }
  std::uint64_t packets = 0;
  for (std::uint32_t i = 0; i < graph_.neuron_count(); ++i) {
    const std::uint64_t spikes = graph_.spike_count(i);
    if (spikes == 0) continue;
    ++stamp_;
    std::uint64_t remotes = 0;
    const CrossbarId own = assignment[i];
    for (std::uint32_t k = offsets[i]; k < offsets[i + 1]; ++k) {
      const CrossbarId c = assignment[targets[k]];
      if (c == own || c == kUnassigned) continue;
      if (crossbar_stamp_[c] != stamp_) {
        crossbar_stamp_[c] = stamp_;
        ++remotes;
      }
    }
    packets += spikes * remotes;
  }
  return packets;
}

std::uint64_t CostModel::objective_cost(
    const std::vector<CrossbarId>& assignment, Objective objective) const {
  switch (objective) {
    case Objective::kAerPackets: return multicast_packet_count(assignment);
    case Objective::kCutSpikes: return global_spike_count(assignment);
  }
  return 0;
}

const char* to_string(Objective objective) noexcept {
  switch (objective) {
    case Objective::kAerPackets: return "aer-packets";
    case Objective::kCutSpikes: return "cut-spikes";
  }
  return "?";
}

std::uint64_t CostModel::local_event_count(const Partition& partition) const {
  const auto& part = partition.assignment();
  std::uint64_t total = 0;
  for (const auto& e : edges_) {
    if (part[e.pre] == part[e.post]) total += e.spikes;
  }
  return total;
}

double CostModel::analytic_global_energy_pj(
    const Partition& partition, const noc::Topology& topology,
    const std::vector<noc::TileId>& placement, const hw::EnergyModel& energy,
    bool multicast) const {
  if (placement.size() != partition.crossbar_count()) {
    throw std::invalid_argument("CostModel: placement size mismatch");
  }
  const auto& part = partition.assignment();
  const auto& offsets = graph_.fanout_offsets();
  const auto& targets = graph_.fanout_targets();
  double total_pj = 0.0;
  // The per-spike energy below is an FP sum, so its addition order must be
  // a pure function of graph + partition — never of hash-table layout.
  // Remote destination sets therefore materialize sorted: the former
  // unordered_set was cleared (not destroyed) between neurons, and since
  // clear() keeps the grown bucket count, a big-fanout neuron earlier in
  // the walk could reshuffle a later neuron's iteration order and shift
  // its contribution by a ULP — one neuron's energy depended on another's
  // fanout size (CostModel.AnalyticEnergyIgnoresFanoutOrder pins the
  // per-neuron additivity that rules this out).
  std::vector<CrossbarId> remote;
  for (std::uint32_t i = 0; i < graph_.neuron_count(); ++i) {
    const std::uint64_t spikes = graph_.spike_count(i);
    if (spikes == 0) continue;
    remote.clear();
    for (std::uint32_t k = offsets[i]; k < offsets[i + 1]; ++k) {
      const CrossbarId c = part[targets[k]];
      if (c != part[i]) remote.push_back(c);
    }
    if (remote.empty()) continue;
    std::sort(remote.begin(), remote.end());
    remote.erase(std::unique(remote.begin(), remote.end()), remote.end());
    const noc::TileId src_tile = placement[part[i]];
    if (multicast) {
      // A multicast packet shares path prefixes: the union of the
      // per-destination routed paths is the multicast tree the simulator's
      // range-fork engine walks.  Charge exactly what the cycle-accurate
      // engine charges — per tree edge, one link traversal plus one switch
      // traversal at the upstream router that forwarded the flit; per
      // destination, one ejection switch traversal plus the decode; plus
      // the single encode at the source.  (Charging one router_flit_pj per
      // *distinct* router instead double-counted fork routers relative to
      // shared-prefix links and under-counted multi-destination ejections —
      // the analytic/simulated parity test pins the agreement now.)
      // snnmap-lint: allow(unordered-iteration) -- membership-only dedup
      // (insert().second); never iterated, so order cannot leak.
      std::unordered_set<std::uint64_t> charged_links;
      double per_spike = energy.aer_codec_pj;  // encode at source
      for (const CrossbarId c : remote) {
        const noc::TileId dst_tile = placement[c];
        noc::RouterId r = topology.router_of_tile(src_tile);
        const noc::RouterId dst_router = topology.router_of_tile(dst_tile);
        while (r != dst_router) {
          const noc::PortId p = topology.next_port(r, dst_router);
          const noc::RouterId nb = topology.neighbor(r, p);
          const std::uint64_t link =
              (static_cast<std::uint64_t>(r) << 32) | nb;
          if (charged_links.insert(link).second) {
            // Off-chip tree edges carry the distinct inter-chip energy,
            // exactly as the simulator's per-traversal counters do.
            per_spike += (topology.link_is_offchip(r, p)
                              ? energy.offchip_link_hop_pj
                              : energy.link_hop_pj) +
                         energy.router_flit_pj;
          }
          r = nb;
        }
        // Decode at the destination; its router ejects through the local
        // port (one switch traversal per delivered copy).
        per_spike += energy.router_flit_pj + energy.aer_codec_pj;
      }
      total_pj += per_spike * static_cast<double>(spikes);
    } else if (topology.chip_count() == 1) {
      // Single chip: every hop costs the same, so the closed-form
      // per-distance price needs no path walk.
      for (const CrossbarId c : remote) {
        const std::uint32_t hops =
            topology.hop_distance(src_tile, placement[c]);
        total_pj += (energy.packet_energy_pj(hops) + energy.aer_codec_pj) *
                    static_cast<double>(spikes);
      }
    } else {
      // Multi-chip unicast: walk the routed path so chip-boundary hops
      // charge offchip_link_hop_pj instead of link_hop_pj.
      for (const CrossbarId c : remote) {
        noc::RouterId r = topology.router_of_tile(src_tile);
        const noc::RouterId dst_router =
            topology.router_of_tile(placement[c]);
        double per_copy = 2.0 * energy.aer_codec_pj + energy.router_flit_pj;
        while (r != dst_router) {
          const noc::PortId p = topology.next_port(r, dst_router);
          per_copy += (topology.link_is_offchip(r, p)
                           ? energy.offchip_link_hop_pj
                           : energy.link_hop_pj) +
                      energy.router_flit_pj;
          r = topology.neighbor(r, p);
        }
        total_pj += per_copy * static_cast<double>(spikes);
      }
    }
  }
  return total_pj;
}

double CostModel::local_energy_pj(const Partition& partition,
                                  const hw::EnergyModel& energy) const {
  return static_cast<double>(local_event_count(partition)) *
         energy.crossbar_event_pj;
}

std::int64_t CostModel::move_delta(const Partition& partition,
                                   std::uint32_t neuron, CrossbarId to) const {
  const auto& part = partition.assignment();
  const CrossbarId from = part[neuron];
  if (from == to) return 0;
  std::int64_t delta = 0;
  for (std::uint32_t k = adj_offsets_[neuron]; k < adj_offsets_[neuron + 1];
       ++k) {
    const CrossbarId other = part[adj_other_[k]];
    const auto spikes = static_cast<std::int64_t>(adj_spikes_[k]);
    const bool cut_before = other != from;
    const bool cut_after = other != to;
    if (cut_before && !cut_after) delta -= spikes;
    if (!cut_before && cut_after) delta += spikes;
  }
  return delta;
}

std::vector<std::uint64_t> CostModel::traffic_matrix(
    const Partition& partition) const {
  const std::uint32_t c = partition.crossbar_count();
  std::vector<std::uint64_t> matrix(static_cast<std::size_t>(c) * c, 0);
  const auto& part = partition.assignment();
  for (const auto& e : edges_) {
    const CrossbarId a = part[e.pre];
    const CrossbarId b = part[e.post];
    if (a != b) matrix[static_cast<std::size_t>(a) * c + b] += e.spikes;
  }
  return matrix;
}

}  // namespace snnmap::core
