#include "hw/crossbar.hpp"

#include <gtest/gtest.h>

namespace snnmap::hw {
namespace {

TEST(Crossbar, CapacityEnforced) {
  Crossbar xb(0, 2);
  EXPECT_TRUE(xb.add_neuron(10));
  EXPECT_TRUE(xb.add_neuron(11));
  EXPECT_TRUE(xb.full());
  EXPECT_FALSE(xb.add_neuron(12));
  EXPECT_EQ(xb.occupancy(), 2u);
}

TEST(Crossbar, Utilization) {
  Crossbar xb(1, 4);
  EXPECT_EQ(xb.utilization(), 0.0);
  xb.add_neuron(0);
  EXPECT_DOUBLE_EQ(xb.utilization(), 0.25);
  xb.add_neuron(1);
  xb.add_neuron(2);
  xb.add_neuron(3);
  EXPECT_DOUBLE_EQ(xb.utilization(), 1.0);
}

TEST(Crossbar, LocalEnergyAccounting) {
  Crossbar xb(2, 8);
  xb.record_local_events(100);
  xb.record_local_events(50);
  EXPECT_EQ(xb.local_events(), 150u);
  EnergyModel m;
  m.crossbar_event_pj = 2.0;
  EXPECT_DOUBLE_EQ(xb.local_energy_pj(m), 300.0);
}

TEST(Crossbar, NeuronListPreserved) {
  Crossbar xb(3, 4);
  xb.add_neuron(7);
  xb.add_neuron(3);
  ASSERT_EQ(xb.neurons().size(), 2u);
  EXPECT_EQ(xb.neurons()[0], 7u);
  EXPECT_EQ(xb.neurons()[1], 3u);
  EXPECT_EQ(xb.id(), 3u);
}

}  // namespace
}  // namespace snnmap::hw
