#include "apps/digit_recognition.hpp"

#include <algorithm>
#include <cmath>

#include "snn/network.hpp"
#include "snn/simulator.hpp"

namespace snnmap::apps {
namespace {

constexpr std::uint32_t kSide = 28;

void draw_line(std::vector<double>& img, double x0, double y0, double x1,
               double y1) {
  const int steps = 48;
  for (int s = 0; s <= steps; ++s) {
    const double t = static_cast<double>(s) / steps;
    const double x = x0 + t * (x1 - x0);
    const double y = y0 + t * (y1 - y0);
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int px = static_cast<int>(x) + dx;
        const int py = static_cast<int>(y) + dy;
        if (px < 0 || py < 0 || px >= static_cast<int>(kSide) ||
            py >= static_cast<int>(kSide)) {
          continue;
        }
        const double d = std::hypot(x - px, y - py);
        auto& cell = img[static_cast<std::size_t>(py) * kSide + px];
        cell = std::max(cell, std::exp(-d * d));
      }
    }
  }
}

void draw_arc(std::vector<double>& img, double cx, double cy, double r,
              double a0, double a1) {
  const int steps = 64;
  double px = cx + r * std::cos(a0);
  double py = cy + r * std::sin(a0);
  for (int s = 1; s <= steps; ++s) {
    const double a = a0 + (a1 - a0) * s / steps;
    const double x = cx + r * std::cos(a);
    const double y = cy + r * std::sin(a);
    draw_line(img, px, py, x, y);
    px = x;
    py = y;
  }
}

}  // namespace

std::vector<double> make_digit_image(int digit, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> img(kSide * kSide, 0.0);
  const double jx = rng.uniform(-1.5, 1.5);  // small translation jitter
  const double jy = rng.uniform(-1.5, 1.5);
  const double cx = 14.0 + jx;
  const double cy = 14.0 + jy;
  switch (((digit % 10) + 10) % 10) {
    case 0: draw_arc(img, cx, cy, 8.0, 0.0, 6.283); break;
    case 1: draw_line(img, cx, cy - 9, cx, cy + 9); break;
    case 2:
      draw_arc(img, cx, cy - 4, 5.0, 3.6, 6.8);
      draw_line(img, cx + 4, cy - 1, cx - 5, cy + 8);
      draw_line(img, cx - 5, cy + 8, cx + 6, cy + 8);
      break;
    case 3:
      draw_arc(img, cx, cy - 4, 4.5, 3.8, 7.8);
      draw_arc(img, cx, cy + 4, 4.5, 4.6, 8.6);
      break;
    case 4:
      draw_line(img, cx + 2, cy - 9, cx - 6, cy + 2);
      draw_line(img, cx - 6, cy + 2, cx + 6, cy + 2);
      draw_line(img, cx + 2, cy - 4, cx + 2, cy + 9);
      break;
    case 5:
      draw_line(img, cx + 5, cy - 8, cx - 5, cy - 8);
      draw_line(img, cx - 5, cy - 8, cx - 5, cy - 1);
      draw_arc(img, cx - 1, cy + 3, 5.0, 4.4, 8.9);
      break;
    case 6:
      draw_arc(img, cx, cy + 3, 5.0, 0.0, 6.283);
      draw_line(img, cx - 4, cy + 1, cx + 1, cy - 9);
      break;
    case 7:
      draw_line(img, cx - 6, cy - 8, cx + 6, cy - 8);
      draw_line(img, cx + 6, cy - 8, cx - 2, cy + 9);
      break;
    case 8:
      draw_arc(img, cx, cy - 4, 4.0, 0.0, 6.283);
      draw_arc(img, cx, cy + 4, 4.5, 0.0, 6.283);
      break;
    case 9:
      draw_arc(img, cx, cy - 3, 5.0, 0.0, 6.283);
      draw_line(img, cx + 4, cy - 1, cx - 1, cy + 9);
      break;
    default: break;
  }
  // Light sensor noise.
  for (auto& v : img) {
    if (rng.chance(0.02)) v = std::min(1.0, v + rng.uniform(0.2, 0.5));
  }
  return img;
}

snn::Network build_digit_recognition_network(
    const DigitRecognitionConfig& config) {
  util::Rng rng(config.seed);
  snn::Network net;

  const auto image = make_digit_image(config.digit, config.seed ^ 0x5A5A);
  const auto input =
      net.add_poisson_group("input", kSide * kSide, 0.0);
  const double max_rate = config.max_rate_hz;
  net.set_rate_function(input, [image, max_rate](std::uint32_t local, double) {
    return image[local] * max_rate;
  });

  const auto exc = net.add_izhikevich_group(
      "exc", config.excitatory, snn::IzhikevichParams::regular_spiking());
  const auto inh = net.add_izhikevich_group(
      "inh", config.inhibitory, snn::IzhikevichParams::fast_spiking());

  // Plastic afferents (STDP), initialized weak and random.
  net.connect_random(input, exc, config.input_connectivity,
                     snn::WeightSpec::uniform(1.0, 4.0), rng,
                     /*delay=*/1, /*plastic=*/true);
  // Exc -> paired Inh, strong one-to-one (sizes must match; Diehl & Cook
  // pair the populations).
  if (config.excitatory == config.inhibitory) {
    net.connect_one_to_one(exc, inh, snn::WeightSpec::fixed(16.0), rng);
  } else {
    net.connect_random(exc, inh, 0.1, snn::WeightSpec::fixed(8.0), rng);
  }
  // Lateral inhibition back onto all excitatory neurons (winner-take-all).
  net.connect_random(inh, exc, 0.9, snn::WeightSpec::fixed(-3.0), rng);
  return net;
}

snn::SimulationConfig digit_recognition_sim_config(
    const DigitRecognitionConfig& config) {
  snn::SimulationConfig sim_config;
  sim_config.seed = config.seed;
  sim_config.duration_ms = config.duration_ms;
  sim_config.enable_stdp = config.train_stdp;
  sim_config.stdp.w_max = 8.0;
  return sim_config;
}

snn::SnnGraph build_digit_recognition(const DigitRecognitionConfig& config) {
  snn::Network net = build_digit_recognition_network(config);
  snn::Simulator sim(net, digit_recognition_sim_config(config));
  return snn::SnnGraph::from_simulation(net, sim.run());
}

}  // namespace snnmap::apps
