#include "obs/metrics_registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace snnmap::obs {

const char* to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

const MetricSample* MetricsSnapshot::find(
    const std::string& name) const noexcept {
  const auto it = std::lower_bound(
      samples.begin(), samples.end(), name,
      [](const MetricSample& s, const std::string& n) { return s.name < n; });
  return it != samples.end() && it->name == name ? &*it : nullptr;
}

MetricsRegistry::Id MetricsRegistry::intern(const std::string& name,
                                            MetricKind kind) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name != name) continue;
    if (entries_[i].kind != kind) {
      throw std::invalid_argument(
          "MetricsRegistry: \"" + name + "\" is already registered as a " +
          to_string(entries_[i].kind) + ", not a " + to_string(kind));
    }
    return static_cast<Id>(i);
  }
  if (name.empty()) {
    throw std::invalid_argument("MetricsRegistry: metric name is empty");
  }
  Entry e;
  e.name = name;
  e.kind = kind;
  entries_.push_back(std::move(e));
  return static_cast<Id>(entries_.size() - 1);
}

MetricsRegistry::Id MetricsRegistry::counter(const std::string& name) {
  return intern(name, MetricKind::kCounter);
}

MetricsRegistry::Id MetricsRegistry::gauge(const std::string& name) {
  return intern(name, MetricKind::kGauge);
}

MetricsRegistry::Id MetricsRegistry::histogram(
    const std::string& name, std::vector<std::uint64_t> bounds) {
  if (bounds.empty()) {
    throw std::invalid_argument("MetricsRegistry: \"" + name +
                                "\": histogram bounds must be non-empty");
  }
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i] <= bounds[i - 1]) {
      throw std::invalid_argument(
          "MetricsRegistry: \"" + name +
          "\": histogram bounds must be strictly increasing");
    }
  }
  const Id id = intern(name, MetricKind::kHistogram);
  Entry& e = entries_[id];
  if (e.bounds.empty()) {
    e.bounds = std::move(bounds);
    e.counts.assign(e.bounds.size() + 1, 0);
  } else if (e.bounds != bounds) {
    throw std::invalid_argument(
        "MetricsRegistry: \"" + name +
        "\" is already registered with different histogram bounds");
  }
  return id;
}

MetricsRegistry::Entry& MetricsRegistry::checked(Id id, MetricKind kind,
                                                 const char* op) {
  if (id >= entries_.size()) {
    throw std::out_of_range("MetricsRegistry: unknown metric id");
  }
  Entry& e = entries_[id];
  if (e.kind != kind) {
    throw std::invalid_argument("MetricsRegistry: " + std::string(op) +
                                "() on \"" + e.name + "\", which is a " +
                                to_string(e.kind));
  }
  return e;
}

void MetricsRegistry::add(Id id, std::uint64_t delta) {
  checked(id, MetricKind::kCounter, "add").value += delta;
}

void MetricsRegistry::set(Id id, std::uint64_t value) {
  checked(id, MetricKind::kGauge, "set").value = value;
}

void MetricsRegistry::observe(Id id, std::uint64_t value) {
  Entry& e = checked(id, MetricKind::kHistogram, "observe");
  ++e.value;
  e.sum += value;
  const auto it = std::lower_bound(e.bounds.begin(), e.bounds.end(), value);
  ++e.counts[static_cast<std::size_t>(it - e.bounds.begin())];
}

std::uint64_t MetricsRegistry::value(Id id) const {
  if (id >= entries_.size()) {
    throw std::out_of_range("MetricsRegistry: unknown metric id");
  }
  return entries_[id].value;
}

void MetricsRegistry::reset_values() {
  for (Entry& e : entries_) {
    e.value = 0;
    e.sum = 0;
    std::fill(e.counts.begin(), e.counts.end(), 0);
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.samples.reserve(entries_.size());
  for (const Entry& e : entries_) {
    MetricSample s;
    s.name = e.name;
    s.kind = e.kind;
    s.value = e.value;
    if (e.kind == MetricKind::kHistogram) {
      s.hist.bounds = e.bounds;
      s.hist.counts = e.counts;
      s.hist.total = e.value;
      s.hist.sum = e.sum;
    }
    snap.samples.push_back(std::move(s));
  }
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return snap;
}

}  // namespace snnmap::obs
