// Fixture: covers "noc.covered", references the stale "noc.renamed_away",
// and omits the other three keys config_io touches.
