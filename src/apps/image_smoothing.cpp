#include "apps/image_smoothing.hpp"

#include <cmath>

#include "snn/network.hpp"
#include "snn/simulator.hpp"

namespace snnmap::apps {

std::vector<double> make_test_image(std::uint32_t width, std::uint32_t height,
                                    std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> image(static_cast<std::size_t>(width) * height);
  const double cx = 0.35 * width;
  const double cy = 0.6 * height;
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      // Diagonal gradient + a Gaussian blob + 10% salt noise.
      double v = 0.3 * (static_cast<double>(x) + y) /
                 static_cast<double>(width + height);
      const double dx = x - cx;
      const double dy = y - cy;
      v += 0.6 * std::exp(-(dx * dx + dy * dy) / (2.0 * 9.0));
      if (rng.chance(0.1)) v += rng.uniform(0.0, 0.4);
      image[static_cast<std::size_t>(y) * width + x] =
          std::clamp(v, 0.0, 1.0);
    }
  }
  return image;
}

snn::Network build_image_smoothing_network(const ImageSmoothingConfig& config) {
  snn::Network net;
  const std::uint32_t pixels = config.width * config.height;

  const auto image =
      make_test_image(config.width, config.height, config.seed ^ 0xABCD);
  const auto input = net.add_poisson_group("pixels", pixels, 0.0);
  const double max_rate = config.max_rate_hz;
  net.set_rate_function(input, [image, max_rate](std::uint32_t local, double) {
    return image[local] * max_rate;
  });

  snn::LifParams lif;
  lif.tau_m_ms = 10.0;
  const auto smooth = net.add_lif_group("smooth", pixels, lif);

  // Gaussian kernel normalized so a uniformly firing neighbourhood delivers
  // enough current to fire the LIF output at a comparable rate.
  net.connect_gaussian_2d(input, smooth, config.width, config.height,
                          config.kernel_radius, /*peak_weight=*/10.0,
                          config.kernel_sigma);
  return net;
}

snn::SimulationConfig image_smoothing_sim_config(
    const ImageSmoothingConfig& config) {
  snn::SimulationConfig sim_config;
  sim_config.seed = config.seed;
  sim_config.duration_ms = config.duration_ms;
  return sim_config;
}

snn::SnnGraph build_image_smoothing(const ImageSmoothingConfig& config) {
  snn::Network net = build_image_smoothing_network(config);
  snn::Simulator sim(net, image_smoothing_sim_config(config));
  return snn::SnnGraph::from_simulation(net, sim.run());
}

}  // namespace snnmap::apps
