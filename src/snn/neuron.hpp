// Point-neuron dynamics.
//
// CARLsim's workhorse is the Izhikevich model; the LIF model is provided as a
// cheaper alternative used by the larger synthetic workloads.  Both are
// integrated with a fixed 1 ms step (Izhikevich uses two 0.5 ms half-steps for
// numerical stability, following the original 2003 paper and CARLsim).
#pragma once

#include <cstdint>

namespace snnmap::snn {

/// Which dynamics govern a neuron group.
enum class NeuronModel : std::uint8_t {
  kLif,         ///< leaky integrate-and-fire
  kIzhikevich,  ///< Izhikevich 2003 two-variable model
  kPoisson,     ///< stateless stochastic spike source (inputs)
};

const char* to_string(NeuronModel model) noexcept;

/// Leaky integrate-and-fire parameters (membrane in mV, current in
/// dimensionless "input units" scaled by r_m).
struct LifParams {
  double tau_m_ms = 20.0;      ///< membrane time constant
  double v_rest = -65.0;       ///< resting potential (mV)
  double v_reset = -70.0;      ///< post-spike reset potential (mV)
  double v_thresh = -50.0;     ///< firing threshold (mV)
  double r_m = 10.0;           ///< membrane resistance (mV per input unit)
  double refractory_ms = 2.0;  ///< absolute refractory period
};

/// Izhikevich parameters; defaults are the canonical regular-spiking set.
struct IzhikevichParams {
  double a = 0.02;
  double b = 0.2;
  double c = -65.0;
  double d = 8.0;

  static IzhikevichParams regular_spiking() noexcept { return {}; }
  static IzhikevichParams fast_spiking() noexcept {
    return {0.1, 0.2, -65.0, 2.0};
  }
  static IzhikevichParams chattering() noexcept {
    return {0.02, 0.2, -50.0, 2.0};
  }
  static IzhikevichParams intrinsically_bursting() noexcept {
    return {0.02, 0.2, -55.0, 4.0};
  }
};

/// Per-neuron dynamic state shared across models (u unused by LIF).
struct NeuronState {
  double v = -65.0;  ///< membrane potential (mV)
  double u = 0.0;    ///< Izhikevich recovery variable
  double refractory_until_ms = -1.0;
};

/// Initializes state at the model's resting point.
NeuronState initial_state(NeuronModel model, const LifParams& lif,
                          const IzhikevichParams& izh) noexcept;

// The two step functions are defined inline: the simulator calls them once
// per neuron per step inside its per-group hot loops, and a cross-TU call
// would dominate the ~20 flops of actual integration.

/// Advances a LIF neuron by dt_ms under input current; returns true on spike.
inline bool step_lif(NeuronState& state, const LifParams& p, double input,
                     double now_ms, double dt_ms) noexcept {
  if (now_ms < state.refractory_until_ms) {
    state.v = p.v_reset;
    return false;
  }
  // Exponential-Euler style update: dv = (-(v - v_rest) + R*I) / tau * dt.
  const double dv =
      (-(state.v - p.v_rest) + p.r_m * input) / p.tau_m_ms * dt_ms;
  state.v += dv;
  if (state.v >= p.v_thresh) {
    state.v = p.v_reset;
    state.refractory_until_ms = now_ms + p.refractory_ms;
    return true;
  }
  return false;
}

/// Advances an Izhikevich neuron by dt_ms; returns true on spike.
inline bool step_izhikevich(NeuronState& state, const IzhikevichParams& p,
                            double input, double dt_ms) noexcept {
  // Two half-steps for v (as in Izhikevich 2003 / CARLsim) keep the quadratic
  // term stable at dt = 1 ms.
  const int substeps = 2;
  const double h = dt_ms / substeps;
  bool spiked = false;
  for (int i = 0; i < substeps; ++i) {
    state.v += h * (0.04 * state.v * state.v + 5.0 * state.v + 140.0 -
                    state.u + input);
    if (state.v >= 30.0) {
      state.v = p.c;
      state.u += p.d;
      spiked = true;
    }
  }
  state.u += dt_ms * p.a * (p.b * state.v - state.u);
  // Clamp against numerical blow-up under extreme inputs; keeps the
  // simulator total even when a workload drives neurons unphysically hard.
  state.v = state.v < -120.0 ? -120.0 : (state.v > 40.0 ? 40.0 : state.v);
  return spiked;
}

}  // namespace snnmap::snn
