// Property-based sweeps (parameterized gtest) over randomized graphs and
// architectures: invariants that must hold for *any* input, not just the
// fixtures the unit tests pin down.
#include <gtest/gtest.h>

#include <tuple>

#include "core/cost.hpp"
#include "core/framework.hpp"
#include "core/neutrams.hpp"
#include "core/pacman.hpp"
#include "core/pso.hpp"
#include "noc/simulator.hpp"
#include "util/rng.hpp"

namespace snnmap {
namespace {

/// Random spike graph: `n` neurons, Bernoulli(p) edges, Poisson-ish trains.
snn::SnnGraph random_graph(std::uint32_t n, double p, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<snn::GraphEdge> edges;
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = 0; b < n; ++b) {
      if (a != b && rng.chance(p)) {
        edges.push_back({a, b, static_cast<float>(rng.uniform(0.1, 2.0))});
      }
    }
  }
  std::vector<snn::SpikeTrain> trains(n);
  for (auto& train : trains) {
    double t = rng.exponential(0.05);
    while (t < 100.0) {
      train.push_back(t);
      t += rng.exponential(0.05);
    }
  }
  return snn::SnnGraph::from_parts(n, std::move(edges), std::move(trains),
                                   100.0);
}

// ---------------------------------------------------------------------------
// Partitioning invariants over (neurons, crossbars, seed).

class PartitionProperties
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PartitionProperties, Invariants) {
  const auto [n, crossbars, seed] = GetParam();
  const auto g = random_graph(static_cast<std::uint32_t>(n), 0.1,
                              static_cast<std::uint64_t>(seed));
  hw::Architecture arch;
  arch.crossbar_count = static_cast<std::uint32_t>(crossbars);
  arch.neurons_per_crossbar =
      (static_cast<std::uint32_t>(n) + arch.crossbar_count - 1) /
          arch.crossbar_count + 2;

  const core::CostModel cost(g);
  const auto pacman = core::pacman_partition(g, arch);
  const auto neutrams = core::neutrams_partition(g, arch);

  // 1. Both baselines always produce feasible partitions.
  EXPECT_NO_THROW(pacman.validate(arch));
  EXPECT_NO_THROW(neutrams.validate(arch));

  // 2. Conservation: cut + local == total, for any partition.
  for (const auto* p : {&pacman, &neutrams}) {
    EXPECT_EQ(cost.global_spike_count(*p) + cost.local_event_count(*p),
              cost.total_event_count());
  }

  // 3. Multicast packets never exceed cut spikes (dedup can only reduce)
  //    and are zero iff the cut is zero.
  for (const auto* p : {&pacman, &neutrams}) {
    const auto packets = cost.multicast_packet_count(*p);
    const auto cut = cost.global_spike_count(*p);
    EXPECT_LE(packets, cut + cut);  // each cut spike reaches >= 1 crossbar
    EXPECT_EQ(packets == 0, cut == 0);
  }

  // 4. PSO (tiny budget, seeded) is never worse than either baseline under
  //    its own objective, and its reported cost matches the partition.
  core::PsoConfig pso_config;
  pso_config.swarm_size = 8;
  pso_config.iterations = 8;
  pso_config.seed = static_cast<std::uint64_t>(seed);
  core::PsoPartitioner pso(g, arch, pso_config);
  const auto result = pso.optimize();
  EXPECT_LE(result.best_cost,
            std::min(cost.multicast_packet_count(pacman),
                     cost.multicast_packet_count(neutrams)));
  EXPECT_NO_THROW(result.best.validate(arch));
  EXPECT_EQ(cost.multicast_packet_count(result.best), result.best_cost);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionProperties,
    ::testing::Combine(::testing::Values(12, 30, 64),
                       ::testing::Values(2, 3, 5),
                       ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------------
// NoC invariants over (topology kind, tiles, packets, seed).

class NocProperties
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(NocProperties, EveryPacketDeliveredExactlyOncePerDestination) {
  const auto [kind_index, tiles, seed] = GetParam();
  noc::Topology topo = [&, k = kind_index, t = tiles] {
    switch (k) {
      case 0: return noc::Topology::mesh((t + 1) / 2, 2);
      case 1: return noc::Topology::tree(static_cast<std::uint32_t>(t), 2);
      default: return noc::Topology::ring(static_cast<std::uint32_t>(t));
    }
  }();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  std::vector<noc::SpikePacketEvent> traffic;
  std::size_t expected_copies = 0;
  std::uint64_t cycle = 0;
  const std::uint32_t tile_count = topo.tile_count();
  if (tile_count < 2) GTEST_SKIP() << "degenerate topology";
  for (int i = 0; i < 300; ++i) {
    noc::SpikePacketEvent ev;
    ev.emit_cycle = cycle;
    ev.source_neuron = static_cast<std::uint32_t>(rng.below(32));
    ev.source_tile = static_cast<noc::TileId>(rng.below(tile_count));
    // 1..3 distinct remote destinations.
    const std::uint32_t want = 1 + static_cast<std::uint32_t>(rng.below(3));
    for (std::uint32_t d = 0; d < tile_count && ev.dest_tiles.size() < want;
         ++d) {
      const noc::TileId candidate =
          static_cast<noc::TileId>((ev.source_tile + 1 + d) % tile_count);
      if (candidate != ev.source_tile && rng.chance(0.6)) {
        ev.dest_tiles.push_back(candidate);
      }
    }
    if (ev.dest_tiles.empty()) {
      ev.dest_tiles.push_back(
          static_cast<noc::TileId>((ev.source_tile + 1) % tile_count));
    }
    expected_copies += ev.dest_tiles.size();
    traffic.push_back(std::move(ev));
    if (i % 2 == 0) ++cycle;
  }
  noc::NocSimulator sim(std::move(topo), noc::NocConfig{});
  const auto result = sim.run(std::move(traffic));
  ASSERT_TRUE(result.stats.drained);
  EXPECT_EQ(result.stats.copies_delivered, expected_copies);
  // Latency positivity and causality.
  for (const auto& d : result.delivered) {
    EXPECT_GT(d.recv_cycle, d.emit_cycle);
  }
  // Energy strictly positive when anything moved.
  EXPECT_GT(result.stats.global_energy_pj, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NocProperties,
    ::testing::Combine(::testing::Values(0, 1, 2),   // mesh / tree / ring
                       ::testing::Values(4, 6, 9),   // tiles
                       ::testing::Values(1, 2)));    // seeds

// ---------------------------------------------------------------------------
// Buffer-depth monotonicity: shrinking buffers cannot reduce worst latency.

class BufferDepthProperty : public ::testing::TestWithParam<int> {};

TEST_P(BufferDepthProperty, SmallerBuffersNoFasterUnderBurst) {
  const int depth = GetParam();
  std::vector<noc::SpikePacketEvent> traffic;
  for (std::uint32_t src = 1; src < 9; ++src) {
    for (int burst = 0; burst < 10; ++burst) {
      noc::SpikePacketEvent ev;
      ev.emit_cycle = 0;
      ev.source_neuron = src;
      ev.source_tile = src;
      ev.dest_tiles = {0};
      traffic.push_back(ev);
    }
  }
  noc::NocConfig deep;
  deep.buffer_depth = 16;
  noc::NocSimulator deep_sim(noc::Topology::mesh(3, 3), deep);
  const auto deep_result = deep_sim.run(traffic);

  noc::NocConfig shallow;
  shallow.buffer_depth = static_cast<std::uint32_t>(depth);
  noc::NocSimulator shallow_sim(noc::Topology::mesh(3, 3), shallow);
  const auto shallow_result = shallow_sim.run(traffic);

  ASSERT_TRUE(deep_result.stats.drained);
  ASSERT_TRUE(shallow_result.stats.drained);
  EXPECT_EQ(shallow_result.stats.copies_delivered,
            deep_result.stats.copies_delivered);
  EXPECT_GE(shallow_result.stats.max_latency_cycles,
            deep_result.stats.max_latency_cycles);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BufferDepthProperty,
                         ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace snnmap
