#include "obs/congestion.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace snnmap::obs {
namespace {

MonitorConfig enabled_config() {
  MonitorConfig c;
  c.enabled = true;
  c.ewma_alpha = 0.5;
  c.hot_occupancy = 1.0;
  c.persistence_windows = 2;
  return c;
}

TEST(MonitorConfig, DefaultIsInertAndValid) {
  const MonitorConfig c;
  EXPECT_FALSE(c.enabled);
  EXPECT_NO_THROW(c.validate());
}

TEST(MonitorConfig, ValidateRejectsDegenerateValues) {
  MonitorConfig c = enabled_config();
  c.ewma_alpha = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.ewma_alpha = 1.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.ewma_alpha = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = enabled_config();
  c.hot_occupancy = -0.1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.hot_occupancy = std::numeric_limits<double>::infinity();
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.hot_occupancy = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = enabled_config();
  c.persistence_windows = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(CongestionMonitor, EwmaConvergesTowardOccupancy) {
  CongestionMonitor mon(1, enabled_config());
  // Constant 2 flits/cycle: EWMA with alpha 0.5 walks 1, 1.5, 1.75, ...
  mon.observe_window({20}, 10);
  EXPECT_DOUBLE_EQ(mon.ewma(0), 1.0);
  mon.observe_window({20}, 10);
  EXPECT_DOUBLE_EQ(mon.ewma(0), 1.5);
  mon.observe_window({20}, 10);
  EXPECT_DOUBLE_EQ(mon.ewma(0), 1.75);
  EXPECT_EQ(mon.windows_observed(), 3u);
}

TEST(CongestionMonitor, StreakResetsWhenLinkCools) {
  CongestionMonitor mon(2, enabled_config());
  // Link 0 hot twice (persistent at 2), link 1 hot once then cold.
  mon.observe_window({30, 30}, 10);  // both above threshold 1.0
  EXPECT_EQ(mon.hot_streak(0), 1u);
  EXPECT_EQ(mon.hot_streak(1), 1u);
  EXPECT_FALSE(mon.persistently_hot(0));
  mon.observe_window({30, 0}, 10);
  EXPECT_EQ(mon.hot_streak(0), 2u);
  EXPECT_EQ(mon.hot_streak(1), 0u);
  EXPECT_TRUE(mon.persistently_hot(0));
  EXPECT_FALSE(mon.persistently_hot(1));
}

TEST(CongestionMonitor, ZeroSpanWindowsAreIgnored) {
  CongestionMonitor mon(1, enabled_config());
  mon.observe_window({100}, 0);
  EXPECT_EQ(mon.windows_observed(), 0u);
  EXPECT_DOUBLE_EQ(mon.ewma(0), 0.0);
}

TEST(CongestionMonitor, SizeMismatchThrows) {
  CongestionMonitor mon(2, enabled_config());
  const std::vector<std::uint64_t> wrong{1};
  EXPECT_THROW(mon.observe_window(wrong, 10), std::invalid_argument);
}

TEST(CongestionMonitor, ReportSummarizesHotLinks) {
  CongestionMonitor mon(3, enabled_config());
  // Link 0: persistently hot.  Link 2: hot once, then cools (ever-hot but
  // not persistent).  Link 1: never hot.
  mon.observe_window({50, 0, 50}, 10);
  mon.observe_window({50, 0, 0}, 10);
  const CongestionReport rep = mon.report();
  EXPECT_TRUE(rep.monitored);
  EXPECT_EQ(rep.windows_observed, 2u);
  EXPECT_EQ(rep.links_tracked, 3u);
  EXPECT_EQ(rep.links_ever_hot, 2u);
  ASSERT_EQ(rep.hot_links, 1u);
  ASSERT_EQ(rep.hot.size(), 1u);
  EXPECT_EQ(rep.hot[0].link, 0u);
  EXPECT_EQ(rep.hot[0].hot_streak, 2u);
  EXPECT_GT(rep.hot[0].ewma_occupancy, 1.0);
  EXPECT_GT(rep.max_ewma_occupancy, 0.0);
  // from/to are the owner's to fill; the monitor leaves them zero.
  EXPECT_EQ(rep.hot[0].from_router, 0u);
  EXPECT_EQ(rep.hot[0].to_router, 0u);
}

TEST(CongestionMonitor, ConstructorValidatesConfig) {
  MonitorConfig bad = enabled_config();
  bad.persistence_windows = 0;
  EXPECT_THROW(CongestionMonitor(1, bad), std::invalid_argument);
}

}  // namespace
}  // namespace snnmap::obs
