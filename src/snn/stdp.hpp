// Pair-based spike-timing-dependent plasticity (STDP).
//
// The digit-recognition app (Diehl & Cook 2015) trains excitatory synapses
// with STDP; CARLsim implements the standard exponential pair rule, which we
// reproduce: a pre-before-post pair within tau_plus potentiates, a
// post-before-pre pair within tau_minus depresses.  Weights are clamped to
// [w_min, w_max].
#pragma once

#include <cstdint>

namespace snnmap::snn {

struct StdpParams {
  double a_plus = 0.01;     ///< potentiation amplitude
  double a_minus = 0.012;   ///< depression amplitude (slightly dominant)
  double tau_plus_ms = 20.0;
  double tau_minus_ms = 20.0;
  double w_min = 0.0;
  double w_max = 10.0;
};

/// Weight change for a pre spike at t_pre followed by a post spike at t_post
/// (dt = t_post - t_pre > 0): potentiation.
double stdp_potentiation(const StdpParams& p, double dt_ms) noexcept;

/// Weight change magnitude for post-before-pre (dt = t_pre - t_post > 0):
/// returned value is positive; the caller subtracts it.
double stdp_depression(const StdpParams& p, double dt_ms) noexcept;

/// Applies the full pair rule to a weight given the most recent opposite-side
/// spike time; returns the clamped new weight.
double stdp_update_on_post(const StdpParams& p, double weight,
                           double last_pre_ms, double now_ms) noexcept;
double stdp_update_on_pre(const StdpParams& p, double weight,
                          double last_post_ms, double now_ms) noexcept;

}  // namespace snnmap::snn
