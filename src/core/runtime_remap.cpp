#include "core/runtime_remap.hpp"

#include <stdexcept>

#include "util/log.hpp"

namespace snnmap::core {

RuntimeRemapper::RuntimeRemapper(hw::Architecture arch, Partition initial,
                                 RemapConfig config)
    : arch_(arch),
      partition_(std::move(initial)),
      config_(config),
      rng_(config.seed) {
  partition_.validate(arch_);
}

RemapEpochReport RuntimeRemapper::observe_phase(
    const snn::SnnGraph& phase_graph) {
  if (phase_graph.neuron_count() != partition_.neuron_count()) {
    throw std::invalid_argument(
        "RuntimeRemapper: phase graph neuron count mismatch");
  }
  ++epochs_;
  RemapEpochReport report;
  IncrementalAerCost inc(phase_graph, partition_.assignment(),
                         arch_.crossbar_count);
  report.cost_before = inc.cost();

  const std::uint32_t n = phase_graph.neuron_count();
  const std::uint32_t c = arch_.crossbar_count;
  const std::uint32_t cap = arch_.neurons_per_crossbar;

  while (report.migrations < config_.max_migrations_per_epoch) {
    // Best single move (full scan: the epoch is an offline-ish control step,
    // not a per-spike operation).
    std::uint32_t best_neuron = 0;
    CrossbarId best_to = kUnassigned;
    std::int64_t best_delta = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      const CrossbarId from = inc.crossbar_of(i);
      for (CrossbarId k = 0; k < c; ++k) {
        if (k == from || crossbar_dead(k) || inc.occupancy()[k] >= cap) {
          continue;
        }
        const std::int64_t d = inc.move_delta(i, k);
        if (d < best_delta) {
          best_delta = d;
          best_neuron = i;
          best_to = k;
        }
      }
    }
    // Best of a random swap sample (escapes capacity-blocked situations;
    // costs two migrations).
    std::uint32_t swap_a = 0;
    std::uint32_t swap_b = 0;
    std::int64_t best_swap_delta = 0;
    const bool swap_affordable =
        report.migrations + 2 <= config_.max_migrations_per_epoch;
    if (swap_affordable) {
      for (std::uint32_t t = 0; t < config_.swap_candidates; ++t) {
        const auto a = static_cast<std::uint32_t>(rng_.below(n));
        const auto b = static_cast<std::uint32_t>(rng_.below(n));
        const CrossbarId ca = inc.crossbar_of(a);
        const CrossbarId cb = inc.crossbar_of(b);
        if (ca == cb) continue;
        // Never swap a neuron onto a failed crossbar (stranded neurons sit
        // on dead hardware; swapping a live partner in would silence it).
        if (crossbar_dead(ca) || crossbar_dead(cb)) continue;
        const std::int64_t d1 = inc.move_delta(a, cb);
        inc.apply_move(a, cb);
        const std::int64_t d2 = inc.move_delta(b, ca);
        inc.apply_move(a, ca);  // revert probe
        if (d1 + d2 < best_swap_delta) {
          best_swap_delta = d1 + d2;
          swap_a = a;
          swap_b = b;
        }
      }
    }

    const std::int64_t chosen =
        std::min(best_delta, swap_affordable ? best_swap_delta : 0);
    if (chosen >= 0) break;  // nothing improves
    const double relative = -static_cast<double>(chosen) /
                            std::max<double>(1.0, static_cast<double>(
                                                      inc.cost()));
    if (relative < config_.min_relative_gain) break;

    if (best_delta <= best_swap_delta && best_to != kUnassigned) {
      inc.apply_move(best_neuron, best_to);
      report.migrations += 1;
    } else {
      const CrossbarId ca = inc.crossbar_of(swap_a);
      const CrossbarId cb = inc.crossbar_of(swap_b);
      inc.apply_move(swap_a, cb);
      inc.apply_move(swap_b, ca);
      report.migrations += 2;
    }
  }
  report.budget_exhausted =
      report.migrations >= config_.max_migrations_per_epoch;
  report.cost_after = inc.cost();

  for (std::uint32_t i = 0; i < n; ++i) {
    partition_.assign(i, inc.crossbar_of(i));
  }
  partition_.validate(arch_);
  total_migrations_ += report.migrations;
  util::log_info("remap epoch ", epochs_, ": ", report.cost_before, " -> ",
                 report.cost_after, " packets with ", report.migrations,
                 " migrations");
  return report;
}

EvacuationReport RuntimeRemapper::evacuate(
    const std::vector<CrossbarId>& dead, const snn::SnnGraph& traffic_graph) {
  if (traffic_graph.neuron_count() != partition_.neuron_count()) {
    throw std::invalid_argument(
        "RuntimeRemapper: evacuation traffic graph neuron count mismatch");
  }
  if (dead_.empty()) dead_.assign(arch_.crossbar_count, 0);
  for (const CrossbarId k : dead) {
    if (k >= arch_.crossbar_count) {
      throw std::invalid_argument(
          "RuntimeRemapper: dead crossbar id out of range");
    }
    dead_[k] = 1;
  }

  EvacuationReport report;
  IncrementalAerCost inc(traffic_graph, partition_.assignment(),
                         arch_.crossbar_count);
  report.cost_before = inc.cost();

  const std::uint32_t n = traffic_graph.neuron_count();
  const std::uint32_t c = arch_.crossbar_count;
  const std::uint32_t cap = arch_.neurons_per_crossbar;

  // Ascending neuron order keeps evacuation deterministic; each neuron takes
  // the live crossbar with capacity that minimizes the traffic cost (forced:
  // the best non-negative delta still beats staying on dead hardware).
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!crossbar_dead(inc.crossbar_of(i))) continue;
    CrossbarId best_to = kUnassigned;
    std::int64_t best_delta = 0;
    for (CrossbarId k = 0; k < c; ++k) {
      if (dead_[k] != 0 || inc.occupancy()[k] >= cap) continue;
      const std::int64_t d = inc.move_delta(i, k);
      if (best_to == kUnassigned || d < best_delta) {
        best_delta = d;
        best_to = k;
      }
    }
    if (best_to == kUnassigned) {
      ++report.stranded;  // no live capacity anywhere; spikes will be lost
      continue;
    }
    inc.apply_move(i, best_to);
    ++report.evacuated;
  }
  report.cost_after = inc.cost();

  for (std::uint32_t i = 0; i < n; ++i) {
    partition_.assign(i, inc.crossbar_of(i));
  }
  partition_.validate(arch_);
  total_migrations_ += report.evacuated;
  util::log_info("remap evacuation: ", report.evacuated, " neurons moved, ",
                 report.stranded, " stranded; ", report.cost_before, " -> ",
                 report.cost_after, " packets");
  return report;
}

}  // namespace snnmap::core
