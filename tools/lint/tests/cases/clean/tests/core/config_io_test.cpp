// Fixture: schema coverage — every key config_io touches appears here.
// "noc.buffer_depth", "faults.link_fault_rate", "energy.link_hop_pj"
