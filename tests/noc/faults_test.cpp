#include "noc/faults.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/batch_eval.hpp"
#include "noc/simulator.hpp"

namespace snnmap::noc {
namespace {

SpikePacketEvent event(std::uint64_t cycle, std::uint32_t neuron,
                       TileId src, std::vector<TileId> dests) {
  SpikePacketEvent e;
  e.emit_cycle = cycle;
  e.source_neuron = neuron;
  e.source_tile = src;
  e.dest_tiles = std::move(dests);
  return e;
}

ScheduledFault link_fault(RouterId router, PortId port, std::uint64_t start,
                          std::uint64_t duration = 0) {
  ScheduledFault f;
  f.kind = ScheduledFault::Kind::kLink;
  f.router = router;
  f.port = port;
  f.start_cycle = start;
  f.duration_cycles = duration;
  return f;
}

ScheduledFault router_fault(RouterId router, std::uint64_t start) {
  ScheduledFault f;
  f.kind = ScheduledFault::Kind::kRouter;
  f.router = router;
  f.start_cycle = start;
  return f;
}

ScheduledFault tile_fault(TileId tile, std::uint64_t start) {
  ScheduledFault f;
  f.kind = ScheduledFault::Kind::kTile;
  f.tile = tile;
  f.start_cycle = start;
  return f;
}

TEST(FaultConfig, DefaultIsInertAndValid) {
  FaultConfig config;
  EXPECT_FALSE(config.any());
  EXPECT_NO_THROW(config.validate());
  FaultModel model(Topology::mesh(2, 2), config);
  EXPECT_FALSE(model.active());
  EXPECT_EQ(model.event_count(), 0u);
}

TEST(FaultConfig, ValidatesDegenerateValues) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();

  FaultConfig config;
  config.horizon_cycles = 1000;

  auto expect_rejected = [](FaultConfig c) {
    EXPECT_THROW(c.validate(), std::invalid_argument);
  };

  {
    FaultConfig c = config;
    c.link_fault_rate = nan;
    expect_rejected(c);
  }
  {
    FaultConfig c = config;
    c.router_fault_rate = inf;
    expect_rejected(c);
  }
  {
    FaultConfig c = config;
    c.tile_fault_rate = -0.1;
    expect_rejected(c);
  }
  {
    FaultConfig c = config;
    c.transient_link_rate = 1.5;
    expect_rejected(c);
  }
  {
    FaultConfig c = config;
    c.flit_drop_probability = 1.0;  // would drop every flit: dead config
    expect_rejected(c);
  }
  {
    FaultConfig c = config;
    c.flit_drop_probability = -0.5;
    expect_rejected(c);
  }
  {
    // Rates without a sampling horizon are meaningless.
    FaultConfig c;
    c.link_fault_rate = 0.1;
    c.horizon_cycles = 0;
    expect_rejected(c);
  }
  {
    FaultConfig c = config;
    c.transient_link_rate = 0.1;
    c.transient_duration_cycles = 0;
    expect_rejected(c);
  }

  // The boundary values themselves are legal.
  FaultConfig ok = config;
  ok.link_fault_rate = 1.0;
  ok.flit_drop_probability = 0.999;
  EXPECT_NO_THROW(ok.validate());
  EXPECT_TRUE(ok.any());
}

TEST(FaultModel, ScheduledFaultsRejectOutOfRangeIds) {
  const Topology topo = Topology::mesh(2, 2);
  {
    FaultConfig c;
    c.scheduled.push_back(router_fault(99, 0));
    EXPECT_THROW(FaultModel(topo, c), std::invalid_argument);
  }
  {
    FaultConfig c;
    c.scheduled.push_back(tile_fault(99, 0));
    EXPECT_THROW(FaultModel(topo, c), std::invalid_argument);
  }
  {
    FaultConfig c;
    c.scheduled.push_back(link_fault(0, 99, 0));
    EXPECT_THROW(FaultModel(topo, c), std::invalid_argument);
  }
}

TEST(FaultModel, TimelineIsDeterministic) {
  const Topology topo = Topology::mesh(4, 4);
  FaultConfig config;
  config.seed = 7;
  config.link_fault_rate = 0.3;
  config.tile_fault_rate = 0.3;
  config.transient_link_rate = 0.3;
  config.transient_duration_cycles = 50;
  config.horizon_cycles = 10'000;

  FaultModel a(topo, config);
  FaultModel b(topo, config);
  ASSERT_EQ(a.event_count(), b.event_count());
  EXPECT_GT(a.event_count(), 0u);

  // Advancing both step by step observes bit-identical liveness masks.
  FaultTransitions ta;
  FaultTransitions tb;
  for (std::uint64_t t = 0; t <= config.horizon_cycles; t += 500) {
    a.advance_to(t, ta);
    b.advance_to(t, tb);
    EXPECT_EQ(ta.changed, tb.changed);
    for (RouterId r = 0; r < topo.router_count(); ++r) {
      EXPECT_EQ(a.router_live(r), b.router_live(r));
    }
    for (TileId tile = 0; tile < topo.tile_count(); ++tile) {
      EXPECT_EQ(a.tile_live(tile), b.tile_live(tile));
    }
  }

  // A different seed produces a different timeline (with 16 routers and
  // these rates a collision would be astronomically unlikely).
  FaultConfig other = config;
  other.seed = 8;
  FaultModel c(topo, other);
  bool differs = c.event_count() != a.event_count();
  if (!differs) {
    FaultTransitions tc;
    c.advance_to(config.horizon_cycles, tc);
    for (RouterId r = 0; r < topo.router_count() && !differs; ++r) {
      differs = c.router_live(r) != a.router_live(r);
    }
    for (TileId tile = 0; tile < topo.tile_count() && !differs; ++tile) {
      differs = c.tile_live(tile) != a.tile_live(tile);
    }
  }
  EXPECT_TRUE(differs);
}

TEST(NocSimulatorFaults, ScheduledLinkFaultMakesDestUnroutable) {
  // 1x2 mesh: one link.  Kill it at cycle 100; the packet offered before
  // delivers, the one offered after is pruned as unroutable.
  const Topology topo = Topology::mesh(2, 1);
  const PortId port = topo.route_entry(0, 1).port[0];
  NocConfig config;
  config.faults.scheduled.push_back(link_fault(0, port, 100));
  NocSimulator sim(topo, config);
  const auto result = sim.run({event(0, 1, 0, {1}), event(200, 1, 0, {1})});
  EXPECT_EQ(result.stats.copies_delivered, 1u);
  EXPECT_EQ(result.stats.fault.link_faults, 1u);
  EXPECT_EQ(result.stats.fault.copies_unroutable, 1u);
  EXPECT_EQ(result.stats.fault.copies_lost(), 1u);
  ASSERT_EQ(result.delivered.size(), 1u);
  EXPECT_EQ(result.delivered[0].dest_tile, 1u);
}

TEST(NocSimulatorFaults, TransientLinkFaultHeals) {
  const Topology topo = Topology::mesh(2, 1);
  const PortId port = topo.route_entry(0, 1).port[0];
  NocConfig config;
  config.faults.scheduled.push_back(link_fault(0, port, 100, 300));
  NocSimulator sim(topo, config);
  // Offered during the outage -> lost; offered after the heal -> delivered.
  const auto result = sim.run({event(150, 1, 0, {1}), event(500, 1, 0, {1})});
  EXPECT_EQ(result.stats.fault.link_faults, 1u);
  EXPECT_EQ(result.stats.fault.links_restored, 1u);
  EXPECT_EQ(result.stats.fault.copies_unroutable, 1u);
  EXPECT_EQ(result.stats.copies_delivered, 1u);
}

TEST(NocSimulatorFaults, MeshReroutesAroundDeadLink) {
  // 2x2 mesh, XY routing 0 -> 3 goes east through router 1.  Killing link
  // 0-1 forces the fallback (south through router 2); the copy still
  // arrives and the detour is counted as a reroute.
  const Topology topo = Topology::mesh(2, 2);
  const PortId east = topo.route_entry(0, 1).port[0];
  NocConfig config;
  config.faults.scheduled.push_back(link_fault(0, east, 0));
  NocSimulator sim(topo, config);
  const auto result = sim.run({event(10, 1, 0, {3})});
  EXPECT_EQ(result.stats.copies_delivered, 1u);
  EXPECT_GE(result.stats.fault.reroutes, 1u);
  EXPECT_EQ(result.stats.fault.copies_lost(), 0u);
  ASSERT_EQ(result.delivered.size(), 1u);
  EXPECT_EQ(result.delivered[0].dest_tile, 3u);
}

TEST(NocSimulatorFaults, RouterFaultKillsAttachedTile) {
  const Topology topo = Topology::mesh(2, 2);
  NocConfig config;
  config.faults.scheduled.push_back(router_fault(3, 100));
  NocSimulator sim(topo, config);
  sim.begin();
  sim.enqueue({event(0, 1, 0, {3}), event(200, 1, 0, {3}),
               event(200, 2, 3, {0})});
  sim.run_until(kNoCycleLimit);
  // The dead router's tile is reported exactly once for remap triggers.
  const std::vector<TileId> dead = sim.take_dead_tiles();
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], 3u);
  EXPECT_TRUE(sim.take_dead_tiles().empty());
  const auto result = sim.finish();
  EXPECT_EQ(result.stats.fault.router_faults, 1u);
  // Pre-fault packet delivered; post-fault: one unroutable dest, one
  // source-blocked packet.
  EXPECT_EQ(result.stats.copies_delivered, 1u);
  EXPECT_EQ(result.stats.fault.copies_blocked_at_source, 1u);
  // Both post-fault events contribute no flit: one dead source, one with
  // every destination unroutable.
  EXPECT_EQ(result.stats.fault.packets_blocked, 2u);
  EXPECT_EQ(result.stats.fault.copies_lost(), 2u);
}

TEST(NocSimulatorFaults, TileFaultLeavesFabricRouting) {
  // A dead tile silences its crossbar but its router still forwards: on a
  // 3x1 mesh with tile 1 dead, 0 -> 2 still routes through router 1.
  const Topology topo = Topology::mesh(3, 1);
  NocConfig config;
  config.faults.scheduled.push_back(tile_fault(1, 0));
  NocSimulator sim(topo, config);
  const auto result =
      sim.run({event(10, 1, 0, {2}), event(10, 2, 0, {1})});
  EXPECT_EQ(result.stats.fault.tile_faults, 1u);
  EXPECT_EQ(result.stats.copies_delivered, 1u);       // the through-route
  EXPECT_EQ(result.stats.fault.copies_unroutable, 1u);  // the dead sink
  ASSERT_EQ(result.delivered.size(), 1u);
  EXPECT_EQ(result.delivered[0].dest_tile, 2u);
}

TEST(NocSimulatorFaults, FlitDropsAreAccountedAndConserved) {
  FaultConfig faults;
  faults.seed = 11;
  faults.flit_drop_probability = 0.2;
  NocConfig config;
  config.faults = faults;
  NocSimulator sim(Topology::mesh(4, 4), config);
  std::vector<SpikePacketEvent> traffic;
  std::uint64_t offered = 0;
  for (std::uint32_t i = 0; i < 400; ++i) {
    traffic.push_back(
        event(i * 2, i % 64, i % 16, {static_cast<TileId>((i + 7) % 16)}));
    ++offered;
  }
  const auto result = sim.run(std::move(traffic));
  EXPECT_GT(result.stats.fault.flits_dropped, 0u);
  EXPECT_LT(result.stats.copies_delivered, offered);
  // Conservation: every offered copy either arrived or is accounted lost.
  EXPECT_EQ(result.stats.copies_delivered + result.stats.fault.copies_lost(),
            offered);
}

TEST(NocSimulatorFaults, FaultedRunsAreBitIdentical) {
  FaultConfig faults;
  faults.seed = 3;
  faults.link_fault_rate = 0.15;
  faults.tile_fault_rate = 0.1;
  faults.transient_link_rate = 0.2;
  faults.transient_duration_cycles = 200;
  faults.flit_drop_probability = 0.05;
  faults.horizon_cycles = 2'000;
  NocConfig config;
  config.faults = faults;

  const auto traffic = [] {
    std::vector<SpikePacketEvent> t;
    for (std::uint32_t i = 0; i < 300; ++i) {
      t.push_back(event(i * 5, i % 32, i % 16,
                        {static_cast<TileId>((i + 3) % 16),
                         static_cast<TileId>((i + 9) % 16)}));
    }
    return t;
  };

  NocSimulator a(Topology::mesh(4, 4), config);
  const auto ra = a.run(traffic());
  NocSimulator b(Topology::mesh(4, 4), config);
  const auto rb = b.run(traffic());

  EXPECT_EQ(ra.stats.copies_delivered, rb.stats.copies_delivered);
  EXPECT_EQ(ra.stats.fault.flits_dropped, rb.stats.fault.flits_dropped);
  EXPECT_EQ(ra.stats.fault.copies_lost(), rb.stats.fault.copies_lost());
  EXPECT_EQ(ra.stats.fault.reroutes, rb.stats.fault.reroutes);
  EXPECT_EQ(ra.stats.global_energy_pj, rb.stats.global_energy_pj);
  ASSERT_EQ(ra.delivered.size(), rb.delivered.size());
  for (std::size_t i = 0; i < ra.delivered.size(); ++i) {
    EXPECT_EQ(ra.delivered[i].source_neuron, rb.delivered[i].source_neuron);
    EXPECT_EQ(ra.delivered[i].dest_tile, rb.delivered[i].dest_tile);
    EXPECT_EQ(ra.delivered[i].recv_cycle, rb.delivered[i].recv_cycle);
  }
}

TEST(NocSimulatorFaults, OneShotAndWindowedSessionsMatchUnderFaults) {
  // The fault timeline is rebuilt by begin(), so a windowed session must
  // observe the identical fault sequence and delivery stream as run().
  FaultConfig faults;
  faults.seed = 5;
  faults.link_fault_rate = 0.2;
  faults.tile_fault_rate = 0.15;
  faults.flit_drop_probability = 0.1;
  faults.horizon_cycles = 3'000;
  NocConfig config;
  config.faults = faults;

  const auto traffic = [] {
    std::vector<SpikePacketEvent> t;
    for (std::uint32_t i = 0; i < 200; ++i) {
      t.push_back(event(i * 10, i % 32, i % 16,
                        {static_cast<TileId>((i + 5) % 16)}));
    }
    return t;
  };

  NocSimulator oneshot(Topology::mesh(4, 4), config);
  const auto whole = oneshot.run(traffic());

  NocSimulator windowed(Topology::mesh(4, 4), config);
  windowed.begin();
  std::vector<DeliveredSpike> stream;
  auto events = traffic();
  for (std::uint64_t window = 0; window < 10; ++window) {
    std::vector<SpikePacketEvent> slice;
    for (const auto& e : events) {
      if (e.emit_cycle / 250 == window) slice.push_back(e);
    }
    windowed.enqueue(std::move(slice));
    windowed.run_until((window + 1) * 250);
    for (auto& d : windowed.drain_delivered()) stream.push_back(d);
  }
  windowed.run_until(kNoCycleLimit);
  for (auto& d : windowed.drain_delivered()) stream.push_back(d);
  const auto tail = windowed.finish();

  EXPECT_EQ(tail.stats.copies_delivered, whole.stats.copies_delivered);
  EXPECT_EQ(tail.stats.fault.flits_dropped, whole.stats.fault.flits_dropped);
  EXPECT_EQ(tail.stats.fault.copies_lost(), whole.stats.fault.copies_lost());
  EXPECT_EQ(tail.stats.global_energy_pj, whole.stats.global_energy_pj);
  ASSERT_EQ(stream.size(), whole.delivered.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].source_neuron, whole.delivered[i].source_neuron);
    EXPECT_EQ(stream[i].dest_tile, whole.delivered[i].dest_tile);
    EXPECT_EQ(stream[i].recv_cycle, whole.delivered[i].recv_cycle);
  }
}

TEST(NocSimulatorFaults, ZeroFaultConfigMatchesDefaultRun) {
  // An explicitly constructed all-zero FaultConfig must not perturb the
  // fault-free stream (the inertness contract behind the golden fixtures).
  const auto traffic = [] {
    std::vector<SpikePacketEvent> t;
    for (std::uint32_t i = 0; i < 100; ++i) {
      t.push_back(event(i * 3, i % 16, i % 9,
                        {static_cast<TileId>((i + 4) % 9)}));
    }
    return t;
  };
  NocSimulator plain(Topology::mesh(3, 3), NocConfig{});
  const auto base = plain.run(traffic());
  NocConfig config;
  config.faults = FaultConfig{};
  NocSimulator gated(Topology::mesh(3, 3), config);
  const auto same = gated.run(traffic());
  EXPECT_FALSE(same.stats.fault.any());
  EXPECT_EQ(base.stats.copies_delivered, same.stats.copies_delivered);
  EXPECT_EQ(base.stats.global_energy_pj, same.stats.global_energy_pj);
  ASSERT_EQ(base.delivered.size(), same.delivered.size());
  for (std::size_t i = 0; i < base.delivered.size(); ++i) {
    EXPECT_EQ(base.delivered[i].recv_cycle, same.delivered[i].recv_cycle);
  }
}

TEST(NocSimulatorFaults, DyingRouterPurgesItsBuffers) {
  // Saturate router 1 (center of a 3x1 mesh) and kill it mid-flight: the
  // buffered copies are purged and counted, and the run still drains.
  const Topology topo = Topology::mesh(3, 1);
  NocConfig config;
  config.faults.scheduled.push_back(router_fault(1, 12));
  NocSimulator sim(topo, config);
  std::vector<SpikePacketEvent> traffic;
  for (std::uint32_t i = 0; i < 30; ++i) {
    traffic.push_back(event(i, i % 8, 0, {2}));
  }
  const auto result = sim.run(std::move(traffic));
  EXPECT_EQ(result.stats.fault.router_faults, 1u);
  EXPECT_GT(result.stats.fault.copies_lost(), 0u);
  EXPECT_TRUE(result.stats.drained);
  EXPECT_EQ(result.stats.copies_delivered + result.stats.fault.copies_lost(),
            30u);
}

TEST(NocSimulatorFaults, MaxCyclesHaltMidFlightConservesCopiesEverywhere) {
  // A faulted, congested run cut off by max_cycles mixes every loss
  // mechanism at once — copies dropped on lossy wires, killed in a dying
  // router, pruned as unroutable, blocked at a dead source, stranded in
  // flight at the halt, and stranded in the never-injected queue tail.
  // Every session shape (one-shot, windowed, batch-evaluated) and both
  // scheduling cores must report drained = false and satisfy the
  // conservation identity delivered + copies_lost() == offered exactly.
  const auto make_config = [](NocEngine engine) {
    NocConfig config;
    config.engine = engine;
    config.buffer_depth = 1;
    config.max_cycles = 60;
    config.faults.seed = 5;
    config.faults.flit_drop_probability = 0.1;
    config.faults.scheduled.push_back(router_fault(5, 30));
    config.faults.scheduled.push_back(tile_fault(3, 20));
    return config;
  };
  const auto make_traffic = [] {
    std::vector<SpikePacketEvent> t;
    std::uint64_t offered = 0;
    // Saturating multicast bursts toward one corner, plus a tail emitted
    // at/past max_cycles that the contract says is never injected.
    for (std::uint32_t i = 0; i < 120; ++i) {
      t.push_back(event(i / 4, i % 16, static_cast<TileId>(i % 16),
                        {static_cast<TileId>((i + 1) % 16),
                         static_cast<TileId>((i + 5) % 16)}));
    }
    for (std::uint32_t i = 0; i < 10; ++i) {
      t.push_back(event(60 + i * 10, i, 0, {15}));
    }
    for (const auto& ev : t) offered += ev.dest_tiles.size();
    return std::pair{std::move(t), offered};
  };
  const auto [traffic, offered] = make_traffic();
  const auto check = [offered = offered](const NocRunResult& result,
                                         const char* shape) {
    SCOPED_TRACE(shape);
    EXPECT_FALSE(result.stats.drained);
    EXPECT_EQ(result.stats.duration_cycles, 60u);
    EXPECT_GT(result.stats.fault.copies_stranded, 0u);
    EXPECT_EQ(result.stats.copies_delivered +
                  result.stats.fault.copies_lost(),
              offered);
  };
  for (const NocEngine engine : {NocEngine::kCycle, NocEngine::kEvent}) {
    SCOPED_TRACE(to_string(engine));
    const NocConfig config = make_config(engine);

    NocSimulator one_shot(Topology::mesh(4, 4), config);
    const auto whole = one_shot.run(traffic);
    check(whole, "one-shot");

    NocSimulator session(Topology::mesh(4, 4), config);
    session.begin();
    session.enqueue(traffic);
    for (std::uint64_t end = 7; !session.halted() && end < 200; end += 7) {
      session.run_until(end);
      session.close_energy_window();
    }
    EXPECT_TRUE(session.halted());
    const auto windowed = session.finish();
    check(windowed, "windowed");

    core::BatchNocEvaluator evaluator(2);
    std::vector<core::NocScenario> scenarios;
    scenarios.push_back({Topology::mesh(4, 4), config, traffic});
    const auto batch = evaluator.run_all(std::move(scenarios));
    ASSERT_EQ(batch.size(), 1u);
    check(batch[0], "batch");

    // All three shapes agree on the full loss breakdown, not just the sum.
    EXPECT_EQ(windowed.stats.fault.copies_stranded,
              whole.stats.fault.copies_stranded);
    EXPECT_EQ(batch[0].stats.fault.copies_stranded,
              whole.stats.fault.copies_stranded);
    EXPECT_EQ(windowed.stats.copies_delivered, whole.stats.copies_delivered);
    EXPECT_EQ(batch[0].stats.copies_delivered, whole.stats.copies_delivered);
  }
}

}  // namespace
}  // namespace snnmap::noc
