// Fixture: every accepted gating shape for hot-path subsystem calls.
namespace fixture {

struct Engine {
  void cycle() {
    // Block gate, call nested two levels deep.
    if (faults_active_) {
      for (unsigned p = 0; p < ports_; ++p) {
        if (!fault_model_.link_live(p)) continue;
      }
    }
    // Gate and call in the same condition expression.
    if (trace_active_ && now_ > 0) {
      tracer_.record(now_, 1, 2, 3, 4);
    }
    // Local hoisted alias (cosim's `trace_on` shape).
    const bool trace_on = trace_active_;
    if (trace_on) {
      tracer_.record(now_, 5, 6, 7, 8);
    }
  }

  void begin() {
    faults_active_ = fault_model_.active();
    trace_active_ = tracer_enabled_;
  }

  // snnmap-lint: allow(hoisted-gate) -- every caller is gated on
  // faults_active_; the helper keeps the mask checks in one place.
  bool port_live(unsigned g) const {
    return fault_model_.link_live(g) && fault_model_.router_live(g);
  }

  bool faults_active_ = false;
  bool trace_active_ = false;
  bool tracer_enabled_ = false;
  unsigned ports_ = 0;
  FaultModel fault_model_;
  Tracer tracer_;
  unsigned long long now_ = 0;
};

}  // namespace fixture
