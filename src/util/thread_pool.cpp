#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace snnmap::util {

std::uint32_t ThreadPool::resolve(std::uint32_t requested) noexcept {
  std::uint32_t n = requested;
  if (n == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n = hw == 0 ? 1 : static_cast<std::uint32_t>(hw);
  }
  return std::clamp<std::uint32_t>(n, 1, kMaxThreads);
}

ThreadPool::ThreadPool(std::uint32_t threads)
    : worker_count_(resolve(threads)) {
  threads_.reserve(worker_count_ - 1);
  try {
    for (std::uint32_t w = 1; w < worker_count_; ++w) {
      threads_.emplace_back([this, w] { worker_loop(w); });
    }
  } catch (...) {
    // A spawn failed mid-loop (thread-resource exhaustion): stop and join
    // the workers that did start, then surface the original exception
    // instead of std::terminate-ing on joinable threads.
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : threads_) t.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::parallel_blocks(std::size_t n, const BlockFn& fn) {
  if (n == 0) return;
  const auto blocks =
      static_cast<std::uint32_t>(std::min<std::size_t>(worker_count_, n));
  if (blocks == 1) {
    fn(0, 0, n);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_n_ = n;
    job_blocks_ = blocks;
    active_ = blocks - 1;  // workers 1..blocks-1; block 0 runs inline below
    error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  try {
    fn(0, 0, n / blocks);
  } catch (...) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!error_) error_ = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return active_ == 0; });
  job_ = nullptr;
  if (error_) std::rethrow_exception(std::exchange(error_, nullptr));
}

void ThreadPool::worker_loop(std::uint32_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    const BlockFn* fn = nullptr;
    std::size_t n = 0;
    std::uint32_t blocks = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      if (worker >= job_blocks_) continue;  // more workers than blocks
      fn = job_;
      n = job_n_;
      blocks = job_blocks_;
    }
    const std::size_t begin = n * worker / blocks;
    const std::size_t end = n * (worker + 1) / blocks;
    try {
      (*fn)(worker, begin, end);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace snnmap::util
