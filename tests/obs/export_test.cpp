// Exporter shape tests: the Chrome trace-event JSON (Perfetto-loadable)
// and CSV forms of a small hand-built stream, plus the stats-JSON writers
// over default-constructed reports (must emit structurally valid JSON with
// no NaN/inf literals).
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "cosim/fidelity.hpp"
#include "noc/metrics.hpp"
#include "obs/export.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/stats_json.hpp"
#include "obs/trace.hpp"

namespace snnmap::obs {
namespace {

/// 4 routers on 2 chips, one tile per router.
TraceTrackInfo two_chip_info() {
  TraceTrackInfo info;
  info.router_chip = {0, 0, 1, 1};
  info.tile_router = {0, 1, 2, 3};
  return info;
}

std::vector<TraceEvent> sample_events() {
  return {
      {10, TraceEventType::kFlitInject, 0, 2, 77},
      {11, TraceEventType::kFlitHop, 2, 1, 77},
      {12, TraceEventType::kFlitDeliver, 3, 3, 77},
      {20, TraceEventType::kFaultTileDown, 2, 0, 0},
      {30, TraceEventType::kAerRetry, 77, 3, 1},
  };
}

TEST(ChromeTrace, EmitsMetadataAndInstantEvents) {
  std::ostringstream os;
  write_chrome_trace(os, sample_events(), two_chip_info());
  const std::string json = os.str();

  // Top-level shape.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("]}"), std::string::npos);

  // Process metadata: chips 0/1 plus the synthetic cosim lane (pid 2).
  EXPECT_NE(json.find("{\"name\":\"chip 0\"}"), std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"chip 1\"}"), std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"cosim\"}"), std::string::npos);

  // Fabric events land on (chip, router) tracks: the hop at router 2 is
  // chip 1.
  EXPECT_NE(json.find("{\"name\":\"flit-hop\",\"ph\":\"i\",\"s\":\"t\","
                      "\"ts\":11,\"pid\":1,\"tid\":2,\"args\":{\"router\":2,"
                      "\"port\":1,\"neuron\":77}}"),
            std::string::npos);
  // Tile events resolve through tile -> router: tile 2 lives on router 2,
  // chip 1; the one-word payload omits b / c.
  EXPECT_NE(json.find("{\"name\":\"fault-tile-down\",\"ph\":\"i\",\"s\":"
                      "\"t\",\"ts\":20,\"pid\":1,\"tid\":2,\"args\":{"
                      "\"tile\":2}}"),
            std::string::npos);
  // Protocol events ride the cosim pid (max chip + 1 = 2) with the event
  // type as tid.
  EXPECT_NE(json.find("{\"name\":\"aer-retry\",\"ph\":\"i\",\"s\":\"t\","
                      "\"ts\":30,\"pid\":2,"),
            std::string::npos);
}

TEST(ChromeTrace, EmptyStreamIsStillValidJson) {
  std::ostringstream os;
  write_chrome_trace(os, {}, two_chip_info());
  EXPECT_EQ(os.str(), "{\"traceEvents\":[\n]}\n");
}

TEST(TraceCsv, HeaderAndRows) {
  std::ostringstream os;
  write_trace_csv(os, sample_events());
  const std::string csv = os.str();
  EXPECT_EQ(csv.rfind("cycle,type,a,b,c\n", 0), 0u);
  EXPECT_NE(csv.find("10,flit-inject,0,2,77\n"), std::string::npos);
  EXPECT_NE(csv.find("30,aer-retry,77,3,1\n"), std::string::npos);
  // Header + 5 rows.
  EXPECT_EQ(static_cast<int>(std::count(csv.begin(), csv.end(), '\n')), 6);
}

void expect_plausible_json_object(const std::string& json) {
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  // JSON has no bare NaN / inf; degenerate doubles must become null.
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(StatsJson, DefaultReportsSerializeCleanly) {
  {
    std::ostringstream os;
    write_json(os, noc::NocStats{});
    expect_plausible_json_object(os.str());
    EXPECT_NE(os.str().find("\"packets_injected\":0"), std::string::npos);
  }
  {
    std::ostringstream os;
    write_json(os, cosim::FidelityReport{});
    expect_plausible_json_object(os.str());
    EXPECT_NE(os.str().find("\"congestion\":{\"monitored\":false"),
              std::string::npos);
  }
  {
    std::ostringstream os;
    write_json(os, cosim::ResilienceReport{});
    expect_plausible_json_object(os.str());
  }
  {
    std::ostringstream os;
    write_json(os, CongestionReport{});
    expect_plausible_json_object(os.str());
  }
  {
    // Degenerate doubles must serialize as null, never as bare nan/inf.
    CongestionReport rep;
    rep.max_ewma_occupancy = std::numeric_limits<double>::quiet_NaN();
    std::ostringstream os;
    write_json(os, rep);
    expect_plausible_json_object(os.str());
    EXPECT_NE(os.str().find("\"max_ewma_occupancy\":null"),
              std::string::npos);
  }
}

TEST(StatsJson, MetricsSnapshotIncludesHistograms) {
  MetricsRegistry reg;
  reg.add(reg.counter("noc.flits"), 12);
  reg.observe(reg.histogram("noc.peak", {10, 100}), 50);
  std::ostringstream os;
  write_json(os, reg.snapshot());
  const std::string json = os.str();
  expect_plausible_json_object(json);
  EXPECT_NE(json.find("\"noc.flits\":{\"kind\":\"counter\",\"value\":12}"),
            std::string::npos);
  EXPECT_NE(json.find("\"noc.peak\":{\"kind\":\"histogram\",\"value\":1,"
                      "\"sum\":50,\"bounds\":[10,100],\"counts\":[0,1,0]}"),
            std::string::npos);
}

}  // namespace
}  // namespace snnmap::obs
