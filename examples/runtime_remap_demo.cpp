// Example 5: run-time remapping (the paper's Sec. VI future work).
//
// A deployed SNN whose activity rotates between cluster groups is mapped
// once offline with PSO; as phases change, a stale static map leaves hot
// clusters split across crossbars.  The RuntimeRemapper migrates a small
// budget of neurons per phase and recovers most of the lost efficiency.
//
// Default mode feeds the remapper the *analytic* phase trace (the spike
// graph's own trains).  With --cosim, each phase's traffic is first pushed
// through the cycle-level NoC under the remapper's current mapping and the
// observed graph is rebuilt from the live delivery log
// (cosim::observed_graph_from_noc) — so the remapper reacts to arrival
// times the fabric actually produced, congestion smear included.
//
//   ./build/examples/runtime_remap_demo [--cosim]
#include <cstring>
#include <iostream>
#include <utility>

#include "apps/phased.hpp"
#include "core/cost.hpp"
#include "core/framework.hpp"
#include "core/placement.hpp"
#include "core/pso.hpp"
#include "core/runtime_remap.hpp"
#include "cosim/fidelity.hpp"
#include "noc/simulator.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace snnmap;
  bool cosim_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cosim") == 0) cosim_mode = true;
  }

  apps::PhasedConfig workload;
  workload.clusters = 6;
  workload.cluster_size = 12;
  workload.seed = 9;
  const auto phase0 = apps::build_phased_clusters(workload, 0);

  auto arch = hw::Architecture::sized_for(phase0.neuron_count(), 24,
                                          hw::InterconnectKind::kTree);
  arch.tree_arity = 4;
  std::cout << "workload: " << phase0.neuron_count() << " neurons in "
            << workload.clusters << " clusters; device: " << arch.describe()
            << "\n\n";

  core::PsoConfig pso;
  pso.swarm_size = 40;
  pso.iterations = 40;
  const auto offline =
      core::PsoPartitioner(phase0, arch, pso).optimize().best;

  core::RemapConfig budgeted;
  budgeted.max_migrations_per_epoch = 12;
  core::RuntimeRemapper remapper(arch, offline, budgeted);

  // Co-sim mode: the observed traffic comes from the live NoC delivery
  // log, replayed under the remapper's *current* mapping each phase.
  noc::Topology topology = noc::Topology::for_architecture(arch);
  const auto placement =
      core::identity_placement(arch.crossbar_count, topology);
  if (cosim_mode) {
    std::cout << "mode: observed traffic from the live NoC delivery log\n";
  }

  util::Table table({"phase", "static map (AER packets)",
                     "remapped (AER packets)", "migrations this phase"});
  for (std::uint32_t phase = 0; phase < 6; ++phase) {
    const auto graph = apps::build_phased_clusters(workload, phase);
    const core::CostModel cost(graph);
    auto observed = graph;
    if (cosim_mode) {
      auto traffic = core::build_traffic(graph, remapper.partition(),
                                         placement, arch.cycles_per_ms,
                                         /*jitter_cycles=*/32);
      noc::NocSimulator noc_sim(topology, noc::NocConfig{});
      const auto run = noc_sim.run(std::move(traffic));
      observed = cosim::observed_graph_from_noc(
          graph, remapper.partition(), placement, run.delivered,
          arch.cycles_per_ms);
    }
    const auto epoch = remapper.observe_phase(observed);
    table.begin_row();
    table.cell(static_cast<std::size_t>(phase));
    table.cell(static_cast<std::size_t>(cost.multicast_packet_count(offline)));
    table.cell(static_cast<std::size_t>(epoch.cost_after));
    table.cell(static_cast<std::size_t>(epoch.migrations));
  }
  std::cout << table.to_ascii();
  std::cout << "\nTotal migrations: " << remapper.total_migrations()
            << " (full remapping would move up to "
            << phase0.neuron_count() << " neurons per phase).\n";
  return 0;
}
