#include "core/batch_eval.hpp"

#include <algorithm>

namespace snnmap::core {

BatchEvaluator::BatchEvaluator(const snn::SnnGraph& graph,
                               std::uint32_t threads,
                               std::size_t max_parallelism)
    : pool_(static_cast<std::uint32_t>(std::min<std::size_t>(
          util::ThreadPool::resolve(threads),
          std::max<std::size_t>(1, max_parallelism)))) {
  models_.reserve(pool_.size());
  for (std::uint32_t w = 0; w < pool_.size(); ++w) {
    models_.push_back(std::make_unique<CostModel>(graph));
  }
}

void BatchEvaluator::evaluate(std::size_t count, const AssignmentAt& at,
                              Objective objective,
                              std::vector<std::uint64_t>& costs) {
  costs.resize(count);
  pool_.parallel_blocks(
      count,
      [&](std::uint32_t worker, std::size_t begin, std::size_t end) {
        const CostModel& model = *models_[worker];
        for (std::size_t i = begin; i < end; ++i) {
          costs[i] = model.objective_cost(at(i), objective);
        }
      });
}

void BatchEvaluator::evaluate(
    const std::vector<std::vector<CrossbarId>>& population,
    Objective objective, std::vector<std::uint64_t>& costs) {
  evaluate(
      population.size(),
      [&population](std::size_t i) -> const std::vector<CrossbarId>& {
        return population[i];
      },
      objective, costs);
}

BatchNocEvaluator::BatchNocEvaluator(std::uint32_t threads)
    : pool_(threads) {}

std::vector<noc::NocRunResult> BatchNocEvaluator::run_all(
    std::vector<NocScenario> scenarios) {
  std::vector<noc::NocRunResult> results(scenarios.size());
  pool_.parallel_for(scenarios.size(), [&](std::uint32_t, std::size_t i) {
    noc::NocSimulator sim(std::move(scenarios[i].topology),
                          scenarios[i].config);
    results[i] = sim.run(std::move(scenarios[i].traffic));
  });
  return results;
}

BatchSnnEvaluator::BatchSnnEvaluator(std::uint32_t threads)
    : pool_(threads) {}

std::vector<SnnRunResult> BatchSnnEvaluator::run_all(
    const std::vector<SnnScenario>& scenarios) {
  std::vector<SnnRunResult> results(scenarios.size());
  pool_.parallel_for(scenarios.size(), [&](std::uint32_t, std::size_t i) {
    snn::Network net = scenarios[i].build();
    snn::Simulator sim(net, scenarios[i].config);
    results[i].result = sim.run();
    results[i].final_weights.reserve(net.synapses().size());
    for (const snn::Synapse& s : net.synapses()) {
      results[i].final_weights.push_back(s.weight);
    }
  });
  return results;
}

BatchCoSimEvaluator::BatchCoSimEvaluator(std::uint32_t threads)
    : pool_(threads) {}

std::vector<CoSimOutcome> BatchCoSimEvaluator::run_all(
    std::vector<CoSimScenario> scenarios) {
  std::vector<CoSimOutcome> results(scenarios.size());
  pool_.parallel_for(scenarios.size(), [&](std::uint32_t, std::size_t i) {
    CoSimScenario& sc = scenarios[i];
    snn::Network net = sc.build();
    cosim::CoSimulator sim(net, sc.partition, sc.placement,
                           std::move(sc.topology), sc.config);
    results[i].result = sim.run();
    if (sc.with_ideal_baseline) {
      snn::Network reference = sc.build();
      snn::Simulator ideal(reference, sc.config.snn);
      results[i].divergence = cosim::spike_divergence(
          ideal.run().spikes, results[i].result.snn.spikes);
    }
  });
  return results;
}

std::vector<CoSimOutcome> BatchCoSimEvaluator::run_cpt_sweep(
    const CoSimScenario& base,
    const std::vector<std::uint32_t>& cycles_per_timestep) {
  std::vector<CoSimScenario> scenarios;
  scenarios.reserve(cycles_per_timestep.size());
  for (const std::uint32_t cpt : cycles_per_timestep) {
    CoSimScenario sc = base;
    sc.config.cycles_per_timestep = cpt;
    scenarios.push_back(std::move(sc));
  }
  return run_all(std::move(scenarios));
}

std::vector<CoSimOutcome> BatchCoSimEvaluator::run_dvfs_sweep(
    const CoSimScenario& base,
    const std::vector<cosim::DvfsPolicy>& policies) {
  std::vector<CoSimScenario> scenarios;
  scenarios.reserve(policies.size());
  for (const cosim::DvfsPolicy& policy : policies) {
    CoSimScenario sc = base;
    sc.config.dvfs = policy;
    scenarios.push_back(std::move(sc));
  }
  return run_all(std::move(scenarios));
}

std::vector<CoSimOutcome> BatchCoSimEvaluator::run_seeds(
    const CoSimScenario& base, const std::vector<std::uint64_t>& seeds) {
  std::vector<CoSimScenario> scenarios;
  scenarios.reserve(seeds.size());
  for (const std::uint64_t seed : seeds) {
    CoSimScenario sc = base;
    sc.config.snn.seed = seed;
    scenarios.push_back(std::move(sc));
  }
  return run_all(std::move(scenarios));
}

std::vector<CoSimOutcome> BatchCoSimEvaluator::run_fault_sweep(
    const CoSimScenario& base,
    const std::vector<noc::FaultConfig>& fault_configs) {
  std::vector<CoSimScenario> scenarios;
  scenarios.reserve(fault_configs.size());
  for (const noc::FaultConfig& faults : fault_configs) {
    CoSimScenario sc = base;
    sc.config.noc.faults = faults;
    scenarios.push_back(std::move(sc));
  }
  return run_all(std::move(scenarios));
}

std::vector<SnnRunResult> BatchSnnEvaluator::run_seeds(
    std::function<snn::Network()> build, snn::SimulationConfig config,
    const std::vector<std::uint64_t>& seeds) {
  std::vector<SnnScenario> scenarios;
  scenarios.reserve(seeds.size());
  for (const std::uint64_t seed : seeds) {
    config.seed = seed;
    scenarios.push_back({build, config});
  }
  return run_all(scenarios);
}

}  // namespace snnmap::core
