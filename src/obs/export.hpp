// Trace exporters: Chrome trace-event JSON (loadable in Perfetto /
// chrome://tracing) and flat CSV.
//
// The Chrome export writes one instant event per TraceEvent onto a
// per-router track: pid = the router's chip, tid = the router (so a
// multi-chip fabric renders as one process lane per chip with its routers
// as threads), plus process_name / thread_name metadata records.
// Protocol-level events (AER retries, remap triggers, DVFS decisions) go
// onto a dedicated "cosim" process with one track per event type.
// Timestamps are virtual interconnect cycles written as microseconds —
// Perfetto needs *a* time unit and cycles are the only real one here.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/trace.hpp"

namespace snnmap::obs {

/// Topology facts the exporter needs to place events on tracks; fill from
/// noc::Topology (the exporter itself stays independent of the noc layer).
struct TraceTrackInfo {
  /// router -> chip id; size = router count.  Empty = single-chip (pid 0).
  std::vector<std::uint32_t> router_chip;
  /// tile -> attached router; size = tile count.  Used to place tile-fault
  /// events on their router's track; empty = tile events land on tid 0.
  std::vector<std::uint32_t> tile_router;
};

/// Writes `events` as a Chrome trace-event JSON object
/// ({"traceEvents": [...]}).  Deterministic byte output for a given
/// (events, info) pair.
void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceEvent>& events,
                        const TraceTrackInfo& info);

/// Writes `events` as CSV: header "cycle,type,a,b,c", one row per event,
/// type spelled via to_string(TraceEventType).
void write_trace_csv(std::ostream& os, const std::vector<TraceEvent>& events);

}  // namespace snnmap::obs
