// Machine-readable JSON dumps of the run reports (snnmap_cli --stats-json).
//
// One compact, deterministic JSON encoding per report type so scripts stop
// scraping the CLI's human-readable tables.  Non-finite doubles (possible
// only on degenerate inputs) serialize as null — JSON has no NaN/inf.
#pragma once

#include <iosfwd>

#include "cosim/fidelity.hpp"
#include "noc/metrics.hpp"
#include "obs/congestion.hpp"
#include "obs/metrics_registry.hpp"

namespace snnmap::obs {

void write_json(std::ostream& os, const noc::NocStats& stats);
void write_json(std::ostream& os, const cosim::FidelityReport& fidelity);
void write_json(std::ostream& os, const cosim::ResilienceReport& resilience);
void write_json(std::ostream& os, const CongestionReport& congestion);
void write_json(std::ostream& os, const MetricsSnapshot& metrics);

}  // namespace snnmap::obs
