// Energy model for local (crossbar) and global (interconnect) synapses.
//
// The paper uses "power numbers from in-house neuromorphic chips" (CxQuad);
// those are unreleased, so the defaults here are set in the published
// neuromorphic range (e.g. TrueNorth's 26 pJ per synaptic event) and, as in
// Noxim/Noxim++, every value can be overridden from a YAML(-subset) file.
// Only relative shapes matter for the reproduced figures.
//
// Interconnect energy is *activity-based*: the simulators count codec
// events, link traversals and router (switch) traversals as exact integers
// and convert them to pJ through activity_energy_pj() — one shared formula,
// so one-shot totals, per-window samples and co-simulation accumulators are
// bit-identical whenever their activity counts agree (the windowed-energy
// invariant the co-simulator tests pin).
#pragma once

#include <cstdint>
#include <string>

#include "util/config.hpp"

namespace snnmap::hw {

struct EnergyModel {
  /// Energy per synaptic event inside a crossbar (one pre spike activating
  /// one local synapse), in pJ.
  double crossbar_event_pj = 2.2;
  /// Energy per flit per on-chip inter-router link traversal, in pJ.
  double link_hop_pj = 10.5;
  /// Energy per flit per off-chip (inter-chip) link traversal, in pJ.
  /// Chip-to-chip SerDes is far more expensive than an on-die wire; only
  /// reachable on multi-chip architectures (Architecture::chip_count > 1).
  double offchip_link_hop_pj = 26.0;
  /// Energy per flit per router traversal (buffering + arbitration +
  /// switching), in pJ.
  double router_flit_pj = 6.0;
  /// Energy to encode one spike into an AER packet at the source crossbar
  /// and decode it at the destination, in pJ (paid once per packet copy).
  double aer_codec_pj = 1.8;
  /// Energy to queue, re-encode and re-issue one AER retransmission after a
  /// delivery failure (NACK/timeout bookkeeping plus a fresh encode), in pJ.
  /// Paid once per retransmitted packet, on top of whatever fabric energy
  /// the retried copy itself accrues in flight.
  double retransmit_pj = 3.6;

  /// CxQuad-like defaults (identical to the member initializers; spelled out
  /// so call sites can be explicit about the provenance of their numbers).
  static EnergyModel cxquad() noexcept { return {}; }

  /// Throws std::invalid_argument when any per-event energy is NaN,
  /// infinite, or negative (parity with SimulationConfig / CoSimConfig
  /// validation: a nonsensical constant must fail loudly, not silently
  /// poison every derived statistic).
  void validate() const;

  /// Loads overrides from a parsed config; recognized keys are
  ///   energy.crossbar_event_pj, energy.link_hop_pj,
  ///   energy.offchip_link_hop_pj, energy.router_flit_pj,
  ///   energy.aer_codec_pj, energy.retransmit_pj
  /// Unknown keys are ignored (the file may also configure the NoC).
  /// The result is validate()d: NaN/inf/negative values throw.
  static EnergyModel from_config(const util::Config& config);

  /// Serializes to the same key set.
  void to_config(util::Config& config) const;

  /// Interconnect energy of an activity count: `codec_events` AER
  /// encode/decode operations, `link_hops` on-chip flit-link traversals,
  /// `router_traversals` flit-router (switch) traversals and
  /// `offchip_link_hops` inter-chip flit-link traversals.  Arguments are
  /// doubles so callers can pass exact integer counters (one-shot stats,
  /// window deltas) or DVFS-scale-weighted activity; identical argument
  /// values produce bit-identical results.  The off-chip term defaults to
  /// zero and `x + offchip_link_hop_pj * 0.0 == x` bitwise for the
  /// non-negative sums all callers produce, so single-chip totals are
  /// bit-identical to the pre-off-chip formula.
  double activity_energy_pj(double codec_events, double link_hops,
                            double router_traversals,
                            double offchip_link_hops = 0.0) const noexcept {
    return aer_codec_pj * codec_events + link_hop_pj * link_hops +
           router_flit_pj * router_traversals +
           offchip_link_hop_pj * offchip_link_hops;
  }

  /// DVFS per-event energy scale for a fabric running at `freq_scale` of
  /// its nominal frequency: under the classic voltage-tracks-frequency
  /// approximation (E per op ~ V^2, V ~ f), halving the clock quarters the
  /// per-event energy.  freq_scale = 1 returns exactly 1.
  static double dvfs_energy_scale(double freq_scale) noexcept {
    return freq_scale * freq_scale;
  }

  /// Energy of a unicast packet copy crossing `hops` links and `hops + 1`
  /// routers, in pJ.
  double packet_energy_pj(std::uint32_t hops) const noexcept {
    return aer_codec_pj + static_cast<double>(hops) * link_hop_pj +
           static_cast<double>(hops + 1) * router_flit_pj;
  }
};

}  // namespace snnmap::hw
