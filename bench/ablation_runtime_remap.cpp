// Ablation: run-time remapping (the paper's Sec. VI future work, implemented
// in src/core/runtime_remap.*).  A phased cluster workload rotates which
// clusters fire hot; we compare, per phase:
//   * static    — the offline PSO partition of phase 0, never changed;
//   * oracle    — a fresh offline PSO partition per phase (migration-cost
//                 oblivious upper bound);
//   * remapped  — the RuntimeRemapper migrating <= budget neurons per phase.
// The remapped AER-packet cost should track the oracle at a tiny fraction of
// full-remap migration volume.
#include <iostream>

#include "apps/phased.hpp"
#include "bench_common.hpp"
#include "core/cost.hpp"
#include "core/pso.hpp"
#include "core/runtime_remap.hpp"
#include "util/table.hpp"

int main() {
  using namespace snnmap;
  const bool quick = bench::quick_mode();

  apps::PhasedConfig workload;
  workload.clusters = 8;
  workload.cluster_size = 12;
  workload.relays_per_cluster = 8;  // only half fit beside their cluster
  workload.seed = 42;
  const std::uint32_t phases = quick ? 3 : 8;

  const auto phase0 = apps::build_phased_clusters(workload, 0);
  // Capacity = cluster + half its relays: every phase must re-decide which
  // relays deserve the seats next to their cluster.
  hw::Architecture arch = hw::Architecture::sized_for(
      phase0.neuron_count(),
      workload.cluster_size + workload.relays_per_cluster / 2,
      hw::InterconnectKind::kTree);
  arch.tree_arity = 4;
  std::cout << "phased workload: " << phase0.neuron_count() << " neurons, "
            << phase0.edge_count() << " synapses, " << phases
            << " phases on " << arch.describe() << "\n\n";

  core::PsoConfig pso = bench::default_pso();
  pso.seed = 42;
  const auto static_partition =
      core::PsoPartitioner(phase0, arch, pso).optimize().best;

  core::RemapConfig remap_config;
  remap_config.max_migrations_per_epoch = 24;
  core::RuntimeRemapper remapper(arch, static_partition, remap_config);

  util::Table table({"phase", "static (packets)", "remapped (packets)",
                     "oracle (packets)", "migrations", "remap vs static (%)"});
  double total_static = 0.0;
  double total_remap = 0.0;
  std::uint64_t total_migrations = 0;

  for (std::uint32_t phase = 0; phase < phases; ++phase) {
    const auto graph = apps::build_phased_clusters(workload, phase);
    const core::CostModel cost(graph);

    const std::uint64_t static_cost =
        cost.multicast_packet_count(static_partition);
    const auto epoch = remapper.observe_phase(graph);
    core::PsoConfig oracle_pso = pso;
    oracle_pso.seed = 42 + phase;
    const std::uint64_t oracle_cost =
        core::PsoPartitioner(graph, arch, oracle_pso).optimize().best_cost;

    total_static += static_cast<double>(static_cost);
    total_remap += static_cast<double>(epoch.cost_after);
    total_migrations += epoch.migrations;

    table.begin_row();
    table.cell(static_cast<std::size_t>(phase));
    table.cell(static_cast<std::size_t>(static_cost));
    table.cell(static_cast<std::size_t>(epoch.cost_after));
    table.cell(static_cast<std::size_t>(oracle_cost));
    table.cell(static_cast<std::size_t>(epoch.migrations));
    table.cell(static_cost > 0
                   ? (1.0 - static_cast<double>(epoch.cost_after) /
                                static_cast<double>(static_cost)) * 100.0
                   : 0.0,
               1);
  }

  std::cout << "=== Ablation: run-time remapping across workload phases ===\n"
            << table.to_ascii() << '\n';
  std::cout << "Totals: static " << total_static << " packets, remapped "
            << total_remap << " packets ("
            << (total_static > 0.0
                    ? (1.0 - total_remap / total_static) * 100.0
                    : 0.0)
            << "% saved) with " << total_migrations
            << " migrations across " << phases << " phases ("
            << phase0.neuron_count() << " neurons would move per phase under "
               "full remap).\n";
  std::cout << "Note: phases where 'remapped' trails 'static' show "
               "adaptation lag -- the remapper tuned itself to the previous "
               "phase while the static map happens to suit this one; the "
               "total is what a deployment pays.\n";
  return 0;
}
