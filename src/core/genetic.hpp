// Genetic-algorithm partitioner (ablation comparator; see annealing.hpp for
// why these exist).  Chromosome = assignment vector; tournament selection,
// uniform crossover, random-reassignment mutation, capacity repair after
// every variation, elitism of 1.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cost.hpp"
#include "core/partition.hpp"
#include "hw/architecture.hpp"
#include "snn/graph.hpp"

namespace snnmap::core {

struct GeneticConfig {
  std::uint32_t population = 100;
  std::uint32_t generations = 100;
  double crossover_rate = 0.9;
  double mutation_rate = 0.02;   ///< per-gene reassignment probability
  std::uint32_t tournament = 3;
  bool seed_with_baselines = true;
  Objective objective = Objective::kAerPackets;
  std::uint64_t seed = 42;
  /// Worker threads for batch fitness evaluation: 0 = one per hardware
  /// thread, 1 = serial.  Results are identical for every value.
  std::uint32_t threads = 0;
  bool track_history = false;
};

struct GeneticResult {
  Partition best;
  std::uint64_t best_cost = 0;
  std::uint32_t generations_run = 0;
  std::uint64_t fitness_evaluations = 0;
  std::vector<std::uint64_t> history;
};

GeneticResult genetic_partition(const snn::SnnGraph& graph,
                                const hw::Architecture& arch,
                                const GeneticConfig& config);

}  // namespace snnmap::core
