// Edge detection (ED) — a CARLsim-tutorial-style companion to the image
// smoothing app: a 32x32 rate-coded image filtered through a
// difference-of-Gaussians (DoG) kernel — excitatory center, inhibitory
// surround — so output neurons fire where intensity *changes*.  Not part of
// Table I; included as the fifth runnable application because it exercises
// the one connectivity pattern the paper's workloads don't: spatially
// structured *inhibitory* kernels (negative-weight gaussian surround).
#pragma once

#include <cstdint>
#include <vector>

#include "snn/graph.hpp"
#include "snn/network.hpp"
#include "snn/simulator.hpp"

namespace snnmap::apps {

struct EdgeDetectionConfig {
  std::uint64_t seed = 1;
  double duration_ms = 400.0;
  std::uint32_t width = 32;
  std::uint32_t height = 32;
  int center_radius = 1;
  int surround_radius = 2;
  double center_weight = 14.0;
  double surround_weight = -3.9;
  double max_rate_hz = 80.0;
};

snn::SnnGraph build_edge_detection(const EdgeDetectionConfig& config = {});

/// The network the graph builder simulates (closed-loop co-simulation
/// entry point) and the simulation config that extraction uses.
snn::Network build_edge_detection_network(
    const EdgeDetectionConfig& config = {});
snn::SimulationConfig edge_detection_sim_config(
    const EdgeDetectionConfig& config = {});

}  // namespace snnmap::apps
