// Randomized session-chunking property test: splitting any golden scenario
// into arbitrary run_until() increments must be indistinguishable from the
// one-shot run() — same delivered stream (in delivery order), same
// stats_hash, same windowed-energy totals — on BOTH scheduling cores.
//
// This is the oracle that lets the event-driven engine (NocEngine::kEvent)
// exist at all: every seeded chunking forces different probe/skip points,
// window boundaries land mid-stall and mid-burst, and the digest pins that
// none of it is observable.  The reference side is always the cycle engine's
// one-shot run, i.e. the same semantics the golden fixtures were captured
// from.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "golden_scenarios.hpp"
#include "util/rng.hpp"

namespace snnmap::noc {
namespace {

golden::Digest one_shot_digest(const golden::Scenario& scenario,
                               NocEngine engine, std::uint64_t* duration) {
  NocConfig config = scenario.config;
  config.engine = engine;
  NocSimulator sim(scenario.topology, config);
  const NocRunResult result = sim.run(scenario.traffic);
  if (duration != nullptr) *duration = result.stats.duration_cycles;
  return golden::digest_of(result);
}

/// Replays `scenario` as a session chopped into seeded random increments
/// (closing an energy window at roughly every third boundary), then returns
/// the digest of the finished session plus the priced window total.
golden::Digest chunked_digest(const golden::Scenario& scenario,
                              NocEngine engine, std::uint64_t duration,
                              std::uint64_t seed) {
  NocConfig config = scenario.config;
  config.engine = engine;
  NocSimulator sim(scenario.topology, config);
  sim.begin();
  sim.enqueue(scenario.traffic);
  util::Rng rng(seed);
  std::uint64_t end = 0;
  while (!sim.halted()) {
    // Capping every chunk at the one-shot duration keeps bounded windows
    // from overshooting the drain cycle (run_until accounts a bounded
    // window's full span of idle virtual time, which would legitimately
    // grow duration_cycles past the one-shot value).
    end = std::min(end + 1 + rng.below(97), duration);
    sim.run_until(end);
    if (rng.below(3) == 0) sim.close_energy_window();
    if (end >= duration) break;
  }
  if (!sim.halted()) sim.run_until(kNoCycleLimit);
  const NocRunResult result = sim.finish();
  EXPECT_EQ(result.stats.duration_cycles, duration);
  // Window boundaries move with the seed, but the priced window total is an
  // exact integer-counter sum, so it always equals the session energy (and,
  // via the stats_hash equality below, the one-shot energy).
  EXPECT_EQ(result.window_energy.total_energy_pj,
            result.stats.global_energy_pj);
  return golden::digest_of(result);
}

TEST(NocSessionChunking, AnyChunkingBitIdenticalToOneShotOnBothEngines) {
  for (auto& scenario : golden::scenarios()) {
    std::uint64_t duration = 0;
    const golden::Digest expected =
        one_shot_digest(scenario, NocEngine::kCycle, &duration);
    // The event engine's one-shot run must already match the oracle …
    EXPECT_EQ(one_shot_digest(scenario, NocEngine::kEvent, nullptr)
                  .stats_hash,
              expected.stats_hash)
        << scenario.name;
    for (const NocEngine engine : {NocEngine::kCycle, NocEngine::kEvent}) {
      for (const std::uint64_t seed : {1ull, 77ull, 4242ull}) {
        SCOPED_TRACE(scenario.name + std::string(" / ") + to_string(engine) +
                     " / seed " + std::to_string(seed));
        // … and so must every random chunking of either engine.
        const golden::Digest d =
            chunked_digest(scenario, engine, duration, seed);
        EXPECT_EQ(d.copies_delivered, expected.copies_delivered);
        EXPECT_EQ(d.duration_cycles, expected.duration_cycles);
        EXPECT_EQ(d.link_hops, expected.link_hops);
        EXPECT_EQ(d.delivered_hash, expected.delivered_hash);
        EXPECT_EQ(d.stats_hash, expected.stats_hash);
        EXPECT_EQ(d.snn_hash, expected.snn_hash);
      }
    }
  }
}

}  // namespace
}  // namespace snnmap::noc
