// Crossbar occupancy and local-synapse energy accounting.
//
// A crossbar is an Nc x Nc array of memristive synapses between its resident
// pre- and post-synaptic neurons.  For mapping purposes what matters is
// (a) the capacity constraint and (b) the count of *local synaptic events*:
// each spike of a resident pre neuron activates all its local synapses, and
// every such activation costs EnergyModel::crossbar_event_pj.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/energy_model.hpp"

namespace snnmap::hw {

class Crossbar {
 public:
  Crossbar(std::uint32_t id, std::uint32_t capacity)
      : id_(id), capacity_(capacity) {}

  std::uint32_t id() const noexcept { return id_; }
  std::uint32_t capacity() const noexcept { return capacity_; }
  std::uint32_t occupancy() const noexcept {
    return static_cast<std::uint32_t>(neurons_.size());
  }
  bool full() const noexcept { return occupancy() >= capacity_; }
  double utilization() const noexcept {
    return capacity_ ? static_cast<double>(occupancy()) / capacity_ : 0.0;
  }

  /// Registers a resident neuron; returns false (no-op) when full.
  bool add_neuron(std::uint32_t neuron);
  const std::vector<std::uint32_t>& neurons() const noexcept {
    return neurons_;
  }

  /// Accounts `events` local synaptic activations.
  void record_local_events(std::uint64_t events) noexcept {
    local_events_ += events;
  }
  std::uint64_t local_events() const noexcept { return local_events_; }

  /// Accumulated local-synapse energy in pJ under the given model.
  double local_energy_pj(const EnergyModel& model) const noexcept {
    return static_cast<double>(local_events_) * model.crossbar_event_pj;
  }

 private:
  std::uint32_t id_;
  std::uint32_t capacity_;
  std::vector<std::uint32_t> neurons_;
  std::uint64_t local_events_ = 0;
};

}  // namespace snnmap::hw
