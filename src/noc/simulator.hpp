// Cycle-accurate simulator of the time-multiplexed global-synapse
// interconnect (the Noxim++ substitute).
//
// The simulator consumes a spike traffic trace (one SpikePacketEvent per
// source-neuron spike, with the set of destination crossbars computed by the
// mapping flow), runs the routers cycle by cycle with backpressure and
// round-robin arbitration, and produces the conventional metrics
// (latency / energy / throughput) plus the delivery log from which the
// SNN-specific metrics (disorder, ISI distortion) are computed.
//
// The hot path is flat-array and worklist-driven (see README "NoC simulator
// architecture"): routing decisions are packed Topology::route_entry()
// lookups (the per-topology routing functions, or an O(1) cache load if the
// caller opted into Topology::build_route_cache()), multicast destination
// sets live in a pooled arena so forking a subset at a router is a partition
// instead of an allocate-copy-erase, and only routers with buffered flits
// are visited each cycle.  The cycle-level semantics are bit-identical to
// the original per-router scan engine (pinned by tests/noc/golden_test.cpp).
//
// Multi-chip fabrics: links the topology tags off-chip charge the distinct
// EnergyModel::offchip_link_hop_pj per traversal and delay the flit by
// NocConfig::offchip_link_latency extra cycles at the receiving router
// (Flit::ready_cycle).  Single-chip runs are bit-identical to the
// pre-off-chip engine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include <optional>

#include "hw/energy_model.hpp"
#include "noc/faults.hpp"
#include "noc/metrics.hpp"
#include "noc/router.hpp"
#include "noc/topology.hpp"
#include "noc/wakeup.hpp"
#include "obs/congestion.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"

namespace snnmap::noc {

/// One spike offered to the interconnect.
struct SpikePacketEvent {
  std::uint64_t emit_cycle = 0;
  /// SNN timestep (ms index) of the spike; used for disorder accounting
  /// (see DeliveredSpike::emit_step).
  std::uint64_t emit_step = 0;
  std::uint32_t source_neuron = 0;
  TileId source_tile = 0;
  /// Remote crossbars holding at least one post-synaptic neuron.  Must not
  /// contain source_tile (local synapses never enter the NoC).
  std::vector<TileId> dest_tiles;
};

/// How a flit with several legal (adaptive) next hops picks one — Noxim's
/// "selection strategy".  Applies to single-destination flits under the
/// adaptive mesh routings; multi-destination (multicast) flits always take
/// each destination's first candidate.
enum class SelectionStrategy : std::uint8_t {
  kFirstCandidate,  ///< deterministic: lowest-priority candidate that fits
  kBufferLevel,     ///< congestion-aware: most free downstream buffer space
};

const char* to_string(SelectionStrategy selection) noexcept;

/// Which scheduling core run_until() uses to advance the fabric.  Both
/// engines are bit-identical on every observable — delivered streams,
/// statistics, windowed energy (including busy_cycles), fault timelines —
/// at any session chunking; tests/noc/session_chunking_test.cpp and the
/// golden fixtures pin that equivalence.
enum class NocEngine : std::uint8_t {
  /// The golden oracle: one simulate_cycle() per busy cycle, even when the
  /// whole fabric is provably stalled.
  kCycle,
  /// Wake-up-driven: a cycle whose arbitration pass moves nothing proves
  /// the fabric state is a fixed point, so now_ jumps straight to the
  /// earliest registered wake-up (parked flit ready_cycle, next traffic
  /// emission, next fault transition) — O(1) per skipped span.  Bursty
  /// low-activity traffic (dense emission windows, near-silent gaps,
  /// off-chip SerDes parking) runs order-of-magnitude faster
  /// (BM_NocIdleSkip in BENCH_noc.json).
  kEvent,
};

const char* to_string(NocEngine engine) noexcept;
/// Parses "cycle" / "event"; throws std::invalid_argument otherwise.
NocEngine noc_engine_from_string(const std::string& name);

struct NocConfig {
  std::uint32_t buffer_depth = 4;  ///< flits per inter-router input FIFO
  bool multicast = true;           ///< false = source-replicated unicasts
  SelectionStrategy selection = SelectionStrategy::kFirstCandidate;
  hw::EnergyModel energy;
  /// Extra cycles a flit spends crossing an off-chip (inter-chip) link on
  /// top of the one-cycle on-chip handoff; 0 makes chip crossings as fast
  /// as on-die hops.  Irrelevant on single-chip topologies.
  std::uint32_t offchip_link_latency = 2;
  /// Scheduling core (see NocEngine).  The event engine is the default —
  /// it is bit-identical to the cycle oracle and strictly faster on sparse
  /// traffic; set kCycle to force the per-cycle loop (the oracle the golden
  /// fixtures were captured on).
  NocEngine engine = NocEngine::kEvent;
  /// Safety bound; the run reports drained=false if traffic does not
  /// complete within this many cycles.  Contract: cycle max_cycles is never
  /// simulated and traffic with emit_cycle >= max_cycles is never injected,
  /// so a session halts (halted(), drained=false) as soon as the budget is
  /// exhausted with traffic still in flight *or still queued* — identically
  /// for one-shot, windowed, and batch sessions at any chunking.  Idle
  /// virtual time is not bounded: a drained session may fast-forward a
  /// bounded window's span past max_cycles without halting.
  std::uint64_t max_cycles = 20'000'000;
  /// Streaming-stats mode: when false, the run aggregates NocStats online
  /// but does not materialize a DeliveredSpike per delivered copy (and the
  /// log-derived SnnMetrics stay zero).  Use for large traces where only
  /// the conventional metrics matter.
  bool collect_delivered = true;
  /// Seeded fault injection (see noc/faults.hpp).  Default: inert — no
  /// fault branch in the cycle loop is ever taken and every fault-free
  /// golden stream is preserved bit for bit.
  FaultConfig faults;
  /// Event tracing (see obs/trace.hpp).  Default: inert — no trace branch
  /// is ever taken and the recorded stream stays empty; when enabled the
  /// stream is a pure function of (config, topology, traffic), identical
  /// across engines and session chunkings.
  obs::TraceConfig trace;
  /// Per-link congestion monitoring over energy-window closes (see
  /// obs/congestion.hpp).  Default: disabled — close_energy_window() is
  /// unchanged and NocRunResult::congestion stays all-zero.
  obs::MonitorConfig monitor;
};

struct NocRunResult {
  NocStats stats;
  /// Zero when the run used collect_delivered = false.
  SnnMetrics snn;
  /// Empty when the run used collect_delivered = false.
  std::vector<DeliveredSpike> delivered;
  /// Per-window activity/energy accounting: one sample per
  /// close_energy_window() call plus the trailing span finish() closes
  /// implicitly (a one-shot run() therefore reports a single window
  /// covering the whole trace).  Totals are bit-identical to
  /// stats.global_energy_pj by construction.
  WindowEnergyReport window_energy;
  /// Ring-retained trace events (empty with tracing disabled) plus the
  /// full-stream FNV-1a digest and record count — the digest covers every
  /// recorded event even after ring eviction.
  std::vector<obs::TraceEvent> trace;
  std::uint64_t trace_digest = 0;
  std::uint64_t trace_recorded = 0;
  /// Congestion summary (`monitored == false` when the monitor is off).
  obs::CongestionReport congestion;
  /// Session metrics snapshot (obs::MetricsRegistry; sorted by name).
  obs::MetricsSnapshot metrics;
};

/// Sentinel for run_until(): no cycle bound (run to drain / max_cycles).
inline constexpr std::uint64_t kNoCycleLimit =
    static_cast<std::uint64_t>(-1);

class NocSimulator {
 public:
  /// Throws std::invalid_argument on degenerate configs (buffer_depth == 0
  /// would deadlock every inter-router FIFO; max_cycles == 0 could never
  /// simulate a cycle).
  NocSimulator(Topology topology, NocConfig config);

  /// Simulates the trace to completion (or max_cycles).  The trace is sorted
  /// by emit_cycle internally; sequence numbers are assigned per source
  /// neuron in emission order.  Exactly equivalent to
  /// begin() + enqueue(traffic) + run_until(kNoCycleLimit) + finish() — the
  /// golden streams (tests/noc/golden_test.cpp) pin that equivalence.
  NocRunResult run(std::vector<SpikePacketEvent> traffic);

  // --- incremental session API (closed-loop co-simulation) ---------------
  //
  // A session interleaves traffic injection with bounded cycle advances so a
  // caller (cosim::CoSimulator) can couple the fabric to another simulator
  // in lockstep windows:
  //
  //   sim.begin();
  //   for each window: { sim.enqueue(events); sim.run_until(window_end);
  //                      consume sim.drain_delivered(); }
  //   NocRunResult tail = sim.finish();
  //
  // Flits left in flight at a window boundary simply carry into the next
  // run_until call — that carried backlog is exactly the congestion signal
  // the co-simulation measures.

  /// Resets the session: empty fabric, zeroed stats, cycle 0.
  void begin();

  /// Queues traffic events.  The not-yet-injected tail is (re)sorted with
  /// the same comparator run() uses; events with emit_cycle <= now() are
  /// injected at the next simulated cycle.
  void enqueue(std::vector<SpikePacketEvent> traffic);

  /// Advances the fabric until now() reaches `cycle_limit`, all queued and
  /// in-flight traffic drains, or max_cycles is hit (halted()).  Idle spans
  /// (no flits buffered, no traffic due) are fast-forwarded.  Returns now().
  std::uint64_t run_until(std::uint64_t cycle_limit);

  /// run_until(now() + cycles), saturating at kNoCycleLimit.
  std::uint64_t run_cycles(std::uint64_t cycles);

  /// Moves out the deliveries observed since the last drain (delivery
  /// order).  Deliveries drained here are no longer visible to the
  /// log-derived SnnMetrics finish() computes; aggregate NocStats are
  /// unaffected.  Empty in streaming mode (collect_delivered = false).
  std::vector<DeliveredSpike> drain_delivered();

  /// Closes the current energy-accounting window at now(): snapshots the
  /// activity counters (flit injections, deliveries, link/router
  /// traversals, busy cycles, per-link peaks) as exact integer deltas
  /// since the previous close, prices them at the nominal EnergyModel
  /// constants, and appends the sample to window_energy().  Callers
  /// typically close once per run_until()/run_cycles() boundary (the
  /// co-simulator closes one window per lockstep step).  O(ports) — cost
  /// is paid only at boundaries, never inside the cycle loop.  Returns the
  /// sample by value: a reference into the growing report would dangle at
  /// the next close.
  WindowEnergySample close_energy_window();

  /// Windows closed so far this session (finish() folds the trailing span
  /// into the returned NocRunResult's report).
  const WindowEnergyReport& window_energy() const noexcept {
    return window_report_;
  }

  /// Finalizes the session: duration, per-link flit summary, and SnnMetrics
  /// over the (un-drained) delivery log.  stats.drained keeps its one-shot
  /// meaning — true only when every offered packet completed (nothing
  /// queued, nothing in flight, no max_cycles halt).  The session stays
  /// consumed until the next begin().
  NocRunResult finish();

  std::uint64_t now() const noexcept { return now_; }
  /// Flit copies currently buffered in the fabric.
  std::size_t in_flight() const noexcept { return in_flight_; }
  /// True when nothing is buffered and no queued traffic remains.
  bool idle() const noexcept {
    return in_flight_ == 0 && next_event_ >= traffic_.size();
  }
  /// True once max_cycles was reached with traffic still in flight; further
  /// run_until calls are no-ops and finish() reports drained = false.
  bool halted() const noexcept { return halted_; }

  const Topology& topology() const noexcept { return topology_; }
  const NocConfig& config() const noexcept { return config_; }

  /// The session's live fault state (inert when no faults are configured).
  const FaultModel& fault_model() const noexcept { return fault_model_; }

  /// The session's event tracer.  Mutable access lets a lockstep driver
  /// (cosim::CoSimulator) interleave protocol-level events — AER retries,
  /// remap triggers, DVFS decisions — into the same deterministic stream.
  obs::Tracer& tracer() noexcept { return tracer_; }
  const obs::Tracer& tracer() const noexcept { return tracer_; }
  /// The session's metrics registry (published at window closes and
  /// finish(); zero cost inside the cycle loop).
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }
  /// Moves out the tiles that went permanently silent (tile fault, or
  /// their router died) since the last call — the co-simulator's
  /// remap-on-failure trigger.  Empty on fault-free sessions.
  std::vector<TileId> take_dead_tiles();

 private:
  struct StagedMove {
    RouterId to_router;
    std::uint32_t to_port;
    Flit flit;
  };

  std::uint32_t& sequence_of(std::uint32_t neuron);
  Flit make_flit(const SpikePacketEvent& event, const TileId* dests,
                 std::uint32_t count);
  void inject_due();
  void maybe_compact_arena();
  void simulate_cycle();

  // --- fault path (every call site is gated on faults_active_) -----------
  /// Sentinel returned by first_live_port when no candidate is live.
  static constexpr std::uint32_t kUnroutable = static_cast<std::uint32_t>(-1);
  /// True when the link behind global port `g` and the router at its far
  /// end are both live.
  // snnmap-lint: allow(hoisted-gate) -- helper for the fault path; every
  // caller is itself gated on faults_active_ (see section comment).
  bool port_live(std::uint32_t g) const noexcept {
    return fault_model_.link_live(g) &&
           fault_model_.router_live(neighbor_[g]);
  }
  /// First live next-hop port from `r` toward `dst` (route candidates,
  /// then the topology's fault fallbacks), or kUnroutable.
  std::uint32_t first_live_port(RouterId r, RouterId dst) const;
  /// Applies every fault transition with cycle <= now(): purges dying
  /// routers' buffers, then re-prunes buffered flits whose destinations
  /// became dead or unroutable.
  void apply_fault_transitions();
  void purge_router(RouterId r);
  void sweep_unroutable();

  // --- observability (every record call site is gated on trace_active_) --
  /// Records the whole fault timeline at session begin with *scheduled*
  /// cycles (the cycle an idle fabric applies a transition batch at is
  /// chunking-dependent; the schedule is not).
  void trace_fault_schedule();
  /// Router owning global port `g` (inverse of the port_base_ prefix sums).
  RouterId router_of_port(std::uint32_t g) const;

  Topology topology_;
  NocConfig config_;
  // Flat per-port geometry, hoisted out of the cycle loop: global port index
  // port_base_[r] + p addresses (router r, inter-router port p) in
  // neighbor_/reverse_port_ and in the per-cycle staged/link counters.
  std::vector<std::uint32_t> port_base_;     // prefix sums; size n + 1
  std::vector<RouterId> neighbor_;           // neighbor router per port
  std::vector<std::uint32_t> reverse_port_;  // input port at that neighbor
  std::vector<std::uint8_t> offchip_port_;   // 1 = link crosses a chip edge
  std::vector<RouterId> tile_router_;        // tile -> attached router

  // --- session state (reset by begin(); see run() for the semantics) -----
  std::vector<Router> routers_;
  std::vector<SpikePacketEvent> traffic_;  // queued events, sorted tail
  std::size_t next_event_ = 0;             // first not-yet-injected event
  // Per-source-neuron sequence counters: flat array grown on demand for the
  // dense graph-indexed id space, hashed fallback for pathological ids.
  std::vector<std::uint32_t> seq_flat_;
  // snnmap-lint: allow(unordered-iteration) -- per-key lookup/clear only
  // (sparse overflow of seq_flat_); never iterated, order cannot leak.
  std::unordered_map<std::uint32_t, std::uint32_t> seq_map_;
  // Pooled destination arena: every in-flight flit's destination set is a
  // (begin, count) range.  Forks append the forked subset and shrink the
  // head's range in place; dead ranges are reclaimed by compaction once
  // they dominate the pool.
  std::vector<TileId> arena_;
  std::size_t arena_live_ = 0;
  std::vector<TileId> match_;  // dests served via the current output port
  std::vector<TileId> keep_;   // dests staying with the head flit
  // Active-router worklist: one bit per router, scanned in id order so the
  // arbitration order (and therefore every golden stream) matches the full
  // per-router scan exactly, while idle routers cost nothing.
  std::vector<std::uint64_t> active_;
  std::vector<StagedMove> staged_;
  // staged_count_[port_base_[r] + p] = arrivals already bound for that input
  // FIFO this cycle; reset via the touched list, not a full sweep.
  std::vector<std::uint32_t> staged_count_;
  std::vector<std::uint32_t> staged_touched_;
  // Flit traversals per directed link (router, out port).
  std::vector<std::uint64_t> link_flits_;
  std::uint64_t now_ = 0;
  std::size_t in_flight_ = 0;
  bool halted_ = false;
  // --- event engine (NocEngine::kEvent; see noc/wakeup.hpp) --------------
  // Parked-flit wake-ups (ready_cycle > now + 1, i.e. off-chip SerDes
  // crossings).  Traffic emissions and fault transitions are not queued
  // here — run_until reads them straight from traffic_/fault_model_ when it
  // computes a skip target.
  WakeupQueue wake_;
  bool event_driven_ = false;  // config_.engine == kEvent, hoisted
  NocStats stats_;
  std::vector<DeliveredSpike> delivered_;
  // --- windowed energy accounting (close_energy_window) ------------------
  // Cycles simulate_cycle actually ran (idle spans fast-forward past).
  std::uint64_t busy_cycles_ = 0;
  WindowEnergyReport window_report_;
  // Counter snapshots at the last window close; the next close reports the
  // exact integer deltas.  win_link_flits_ mirrors link_flits_ so the
  // per-window hotspot peak is a subtraction, not a second counter array in
  // the cycle loop.
  std::uint64_t win_start_cycle_ = 0;
  std::uint64_t win_busy_ = 0;
  std::uint64_t win_flits_injected_ = 0;
  std::uint64_t win_copies_delivered_ = 0;
  std::uint64_t win_link_hops_ = 0;
  std::uint64_t win_offchip_link_hops_ = 0;
  std::uint64_t win_router_traversals_ = 0;
  std::vector<std::uint64_t> win_link_flits_;
  // --- fault state (rebuilt by begin(): the timeline is a pure function
  // of (topology, config.faults), so every session replays it) -----------
  FaultModel fault_model_;
  bool faults_active_ = false;
  std::vector<TileId> dead_tiles_pending_;  // for take_dead_tiles()
  std::vector<TileId> live_dests_;          // injection-time filter scratch
  // --- observability (inert by default: trace_active_ gates every record
  // call, the monitor is only constructed when enabled, and the metrics
  // registry is written at window/finish boundaries only) ----------------
  obs::Tracer tracer_;
  bool trace_active_ = false;  // config_.trace.enabled, hoisted
  std::optional<obs::CongestionMonitor> monitor_;
  std::vector<std::uint64_t> monitor_scratch_;  // per-link window deltas
  obs::MetricsRegistry metrics_;
  struct MetricIds {
    obs::MetricsRegistry::Id packets, flits, delivered, link_hops, offchip,
        router_traversals, busy, reroutes, flits_dropped, copies_lost,
        link_max_flits, links_used, windows, trace_recorded, trace_evicted,
        window_peak, window_utilization;
  };
  MetricIds mid_{};
};

}  // namespace snnmap::noc
