// Incremental evaluator for the AER-packet objective.
//
// The AER-packet cost (one packet per spike per distinct remote destination
// crossbar; see Objective::kAerPackets) is expensive to recompute from
// scratch per candidate move.  This evaluator maintains, for every neuron u,
// the count of u's distinct targets on each crossbar, so that moving one
// neuron n from crossbar a to b costs O(in-degree(n)) to evaluate and apply:
//   * n's own packet term changes only through which crossbar is "local";
//   * an in-neighbor u gains remote crossbar b iff n is u's first target
//     there, and loses a iff n was u's last target there.
// Used by the PSO's memetic refinement sweeps and by the annealing
// partitioner when it optimizes the packet objective directly.
#pragma once

#include <cstdint>
#include <vector>

#include "core/partition.hpp"
#include "snn/graph.hpp"
#include "util/rng.hpp"

namespace snnmap::core {

class IncrementalAerCost {
 public:
  /// `assignment` must be complete (no kUnassigned).
  IncrementalAerCost(const snn::SnnGraph& graph,
                     std::vector<CrossbarId> assignment,
                     std::uint32_t crossbar_count);

  std::uint64_t cost() const noexcept { return cost_; }
  const std::vector<CrossbarId>& assignment() const noexcept {
    return assignment_;
  }
  CrossbarId crossbar_of(std::uint32_t neuron) const {
    return assignment_.at(neuron);
  }
  const std::vector<std::uint32_t>& occupancy() const noexcept {
    return occupancy_;
  }

  /// Cost change if `neuron` moved to `to`; 0 when to == current.
  std::int64_t move_delta(std::uint32_t neuron, CrossbarId to) const;

  /// Applies the move and updates all bookkeeping.
  void apply_move(std::uint32_t neuron, CrossbarId to);

  /// Greedy improvement: sweeps all neurons in index order, applying the
  /// best capacity-feasible move per neuron if it strictly improves, until
  /// a sweep makes no change or `max_sweeps` is reached.  Returns the number
  /// of moves applied.
  std::uint64_t greedy_refine(std::uint32_t capacity,
                              std::uint32_t max_sweeps = 4);

  /// Stochastic swap hill-climbing: `attempts` random neuron pairs on
  /// different crossbars are trial-swapped and kept only if the combined
  /// delta strictly improves.  Swaps preserve occupancy, so they escape the
  /// capacity-blocked local optima that defeat single-neuron moves (e.g. a
  /// contiguous-fill start leaves all slack in the last crossbar).  Returns
  /// the number of swaps kept.
  std::uint64_t swap_refine(std::uint64_t attempts, util::Rng& rng);

 private:
  /// Distinct remote destination crossbars of `neuron` under `own`.
  std::uint32_t remotes_with_own(std::uint32_t neuron,
                                 CrossbarId own) const noexcept;

  const snn::SnnGraph& graph_;
  std::vector<CrossbarId> assignment_;
  std::uint32_t crossbar_count_;
  // target_count_[n * C + c] = number of n's distinct targets on crossbar c.
  std::vector<std::uint32_t> target_count_;
  // In-adjacency over distinct (pre -> post) pairs, CSR keyed by post.
  std::vector<std::uint32_t> in_offsets_;
  std::vector<std::uint32_t> in_sources_;
  std::vector<std::uint32_t> remotes_;   // per neuron
  std::vector<std::uint32_t> occupancy_; // per crossbar
  std::uint64_t cost_ = 0;
};

}  // namespace snnmap::core
