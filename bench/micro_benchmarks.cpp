// Google-benchmark microbenchmarks for the framework's hot paths: fitness
// evaluation (Eq. 8), incremental move deltas, PSO iterations, SNN
// simulation steps, NoC cycle throughput, and AER codec round-trips.
#include <benchmark/benchmark.h>

#include <map>
#include <utility>
#include <vector>

#include "apps/synthetic.hpp"
#include "core/batch_eval.hpp"
#include "core/cost.hpp"
#include "core/pacman.hpp"
#include "core/pso.hpp"
#include "noc/aer.hpp"
#include "noc/simulator.hpp"
#include "snn/network.hpp"
#include "snn/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace snnmap;

const snn::SnnGraph& synthetic_graph(std::uint32_t layers,
                                     std::uint32_t width) {
  static std::map<std::pair<std::uint32_t, std::uint32_t>, snn::SnnGraph>
      cache;
  const auto key = std::make_pair(layers, width);
  auto it = cache.find(key);
  if (it == cache.end()) {
    apps::SyntheticConfig config;
    config.layers = layers;
    config.neurons_per_layer = width;
    config.duration_ms = 200.0;
    it = cache.emplace(key, apps::build_synthetic(config)).first;
  }
  return it->second;
}

hw::Architecture arch_for(const snn::SnnGraph& graph) {
  return hw::Architecture::sized_for(
      graph.neuron_count(), (graph.neuron_count() + 3) / 4,
      hw::InterconnectKind::kTree);
}

void BM_FitnessEvaluation(benchmark::State& state) {
  const auto& graph =
      synthetic_graph(static_cast<std::uint32_t>(state.range(0)), 200);
  const core::CostModel cost(graph);
  const auto partition = core::pacman_partition(graph, arch_for(graph));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cost.global_spike_count(partition));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(graph.edge_count()));
}
BENCHMARK(BM_FitnessEvaluation)->Arg(1)->Arg(2)->Arg(4);

void BM_BatchFitnessEvaluation(benchmark::State& state) {
  // Serial-vs-parallel swarm evaluation: Arg is the worker count (1 = the
  // serial fallback path).  items_processed counts fitness evaluations, so
  // the items/sec column is directly evaluations/sec.
  const auto& graph = synthetic_graph(2, 200);
  const auto arch = arch_for(graph);
  core::BatchEvaluator evaluator(
      graph, static_cast<std::uint32_t>(state.range(0)));
  util::Rng rng(5);
  std::vector<std::vector<core::CrossbarId>> swarm(64);
  for (auto& assignment : swarm) {
    assignment.resize(graph.neuron_count());
    for (auto& k : assignment) {
      k = static_cast<core::CrossbarId>(rng.below(arch.crossbar_count));
    }
  }
  std::vector<std::uint64_t> costs;
  for (auto _ : state) {
    evaluator.evaluate(swarm, core::Objective::kAerPackets, costs);
    benchmark::DoNotOptimize(costs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(swarm.size()));
}
BENCHMARK(BM_BatchFitnessEvaluation)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime();

void BM_MoveDelta(benchmark::State& state) {
  const auto& graph = synthetic_graph(2, 200);
  const core::CostModel cost(graph);
  const auto arch = arch_for(graph);
  const auto partition = core::pacman_partition(graph, arch);
  util::Rng rng(1);
  for (auto _ : state) {
    const auto neuron =
        static_cast<std::uint32_t>(rng.below(graph.neuron_count()));
    const auto to =
        static_cast<core::CrossbarId>(rng.below(arch.crossbar_count));
    benchmark::DoNotOptimize(cost.move_delta(partition, neuron, to));
  }
}
BENCHMARK(BM_MoveDelta);

void BM_PsoIteration(benchmark::State& state) {
  const auto& graph = synthetic_graph(1, 200);
  const auto arch = arch_for(graph);
  for (auto _ : state) {
    core::PsoConfig config;
    config.swarm_size = static_cast<std::uint32_t>(state.range(0));
    config.iterations = 5;
    benchmark::DoNotOptimize(
        core::PsoPartitioner(graph, arch, config).optimize().best_cost);
  }
}
BENCHMARK(BM_PsoIteration)->Arg(10)->Arg(50);

void BM_SnnSimulationStep(benchmark::State& state) {
  snn::Network net;
  util::Rng rng(1);
  const auto in = net.add_poisson_group("in", 10, 50.0);
  const auto layer = net.add_lif_group(
      "layer", static_cast<std::uint32_t>(state.range(0)));
  net.connect_full(in, layer, snn::WeightSpec::fixed(12.0), rng);
  snn::SimulationConfig config;
  snn::Simulator sim(net, config);
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SnnSimulationStep)->Arg(200)->Arg(1000);

void BM_NocCycleThroughput(benchmark::State& state) {
  // Steady random traffic on a 4x4 mesh; measures delivered copies/sec.
  util::Rng rng(7);
  std::vector<noc::SpikePacketEvent> traffic;
  for (int i = 0; i < 5000; ++i) {
    noc::SpikePacketEvent ev;
    ev.emit_cycle = static_cast<std::uint64_t>(i / 4);
    ev.source_neuron = static_cast<std::uint32_t>(rng.below(256));
    ev.source_tile = static_cast<noc::TileId>(rng.below(16));
    noc::TileId dest;
    do {
      dest = static_cast<noc::TileId>(rng.below(16));
    } while (dest == ev.source_tile);
    ev.dest_tiles = {dest};
    traffic.push_back(std::move(ev));
  }
  for (auto _ : state) {
    noc::NocSimulator sim(noc::Topology::mesh(4, 4), noc::NocConfig{});
    const auto result = sim.run(traffic);
    benchmark::DoNotOptimize(result.stats.copies_delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          5000);
}
BENCHMARK(BM_NocCycleThroughput);

void BM_AerCodec(benchmark::State& state) {
  util::Rng rng(11);
  std::uint32_t i = 0;
  for (auto _ : state) {
    noc::AerEvent event;
    event.source_neuron = i++ & noc::kAerMaxNeuron;
    event.source_crossbar = i & noc::kAerMaxCrossbar;
    event.timestamp = i * 7;
    benchmark::DoNotOptimize(noc::aer_decode(noc::aer_encode(event)));
  }
}
BENCHMARK(BM_AerCodec);

void BM_GraphExtraction(benchmark::State& state) {
  snn::Network net;
  util::Rng rng(1);
  const auto in = net.add_poisson_group("in", 10, 60.0);
  const auto layer = net.add_lif_group("layer", 200);
  net.connect_full(in, layer, snn::WeightSpec::fixed(12.0), rng);
  snn::SimulationConfig config;
  config.duration_ms = 100.0;
  snn::Simulator sim(net, config);
  const auto result = sim.run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        snn::SnnGraph::from_simulation(net, result).edge_count());
  }
}
BENCHMARK(BM_GraphExtraction);

}  // namespace
