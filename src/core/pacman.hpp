// PACMAN-style baseline partitioner.
//
// PACMAN (Galluppi et al., Computing Frontiers 2012) is SpiNNaker's
// hierarchical configuration system: populations are *sliced in declaration
// order* and slices are placed onto cores sequentially — there is no
// spike-traffic objective ("PACMAN determines neuron mapping without
// considering spike latency related performance distortions and interconnect
// energy consumption", Sec. I).  The faithful analogue for a crossbar
// architecture is contiguous fill: neuron i (ids follow group declaration
// order) goes to crossbar floor(i / Nc).
#pragma once

#include "core/partition.hpp"
#include "hw/architecture.hpp"
#include "snn/graph.hpp"

namespace snnmap::core {

/// Contiguous split-and-fill assignment; throws std::invalid_argument when
/// the network does not fit the architecture.
Partition pacman_partition(const snn::SnnGraph& graph,
                           const hw::Architecture& arch);

}  // namespace snnmap::core
