#include <gtest/gtest.h>

#include "core/cost.hpp"
#include "core/neutrams.hpp"
#include "core/pacman.hpp"
#include "snn/graph.hpp"

namespace snnmap::core {
namespace {

/// Layered graph: 3 groups of 4 neurons in a chain, each neuron spiking.
snn::SnnGraph layered_graph() {
  std::vector<snn::GraphEdge> edges;
  for (std::uint32_t a = 0; a < 4; ++a) {
    for (std::uint32_t b = 4; b < 8; ++b) edges.push_back({a, b, 1.0F});
  }
  for (std::uint32_t a = 4; a < 8; ++a) {
    for (std::uint32_t b = 8; b < 12; ++b) edges.push_back({a, b, 1.0F});
  }
  std::vector<snn::SpikeTrain> trains(12, snn::SpikeTrain{1.0, 2.0});
  return snn::SnnGraph::from_parts(12, std::move(edges), std::move(trains),
                                   10.0);
}

/// Locality-rich graph: 3 cliques of 4 neurons, ids contiguous per clique,
/// plus single bridge edges between cliques — the structure realistic apps
/// (recurrent populations, kernels) exhibit.
snn::SnnGraph clique_graph() {
  std::vector<snn::GraphEdge> edges;
  for (std::uint32_t base = 0; base < 12; base += 4) {
    for (std::uint32_t a = 0; a < 4; ++a) {
      for (std::uint32_t b = 0; b < 4; ++b) {
        if (a != b) edges.push_back({base + a, base + b, 1.0F});
      }
    }
  }
  edges.push_back({3, 4, 1.0F});
  edges.push_back({7, 8, 1.0F});
  std::vector<snn::SpikeTrain> trains(12, snn::SpikeTrain{1.0, 2.0});
  return snn::SnnGraph::from_parts(12, std::move(edges), std::move(trains),
                                   10.0);
}

hw::Architecture small_arch() {
  hw::Architecture arch;
  arch.crossbar_count = 3;
  arch.neurons_per_crossbar = 4;
  return arch;
}

TEST(Pacman, ContiguousFill) {
  const auto g = layered_graph();
  const auto p = pacman_partition(g, small_arch());
  p.validate(small_arch());
  for (std::uint32_t i = 0; i < 12; ++i) {
    EXPECT_EQ(p.crossbar_of(i), i / 4);
  }
}

TEST(Pacman, KeepsDeclarationNeighborsTogether) {
  const auto g = layered_graph();
  const auto p = pacman_partition(g, small_arch());
  for (std::uint32_t i = 0; i < 12; i += 4) {
    const auto c = p.crossbar_of(i);
    for (std::uint32_t j = i; j < i + 4; ++j) {
      EXPECT_EQ(p.crossbar_of(j), c);
    }
  }
}

TEST(Pacman, LocalizesContiguousCliquesPerfectly) {
  const auto g = clique_graph();
  const CostModel cost(g);
  const auto p = pacman_partition(g, small_arch());
  // Only the two bridges are cut: 2 edges x 2 spikes each.
  EXPECT_EQ(cost.global_spike_count(p), 4u);
}

TEST(Pacman, ThrowsWhenTooSmall) {
  const auto g = layered_graph();
  hw::Architecture tiny;
  tiny.crossbar_count = 2;
  tiny.neurons_per_crossbar = 4;
  EXPECT_THROW(pacman_partition(g, tiny), std::invalid_argument);
}

TEST(Neutrams, ProducesFeasibleAssignment) {
  const auto g = layered_graph();
  const auto p = neutrams_partition(g, small_arch());
  EXPECT_NO_THROW(p.validate(small_arch()));
}

TEST(Neutrams, IsDeterministicPerSeed) {
  const auto g = layered_graph();
  const auto a = neutrams_partition(g, small_arch(), 7);
  const auto b = neutrams_partition(g, small_arch(), 7);
  const auto c = neutrams_partition(g, small_arch(), 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // 12 neurons over 3 crossbars: collision ~ impossible
}

TEST(Neutrams, IgnoresLocality) {
  // Random assignment almost surely splits at least one clique.
  const auto g = clique_graph();
  const CostModel cost(g);
  const auto p = neutrams_partition(g, small_arch());
  EXPECT_GT(cost.global_spike_count(p), 4u);
}

TEST(Neutrams, ThrowsWhenTooSmall) {
  const auto g = layered_graph();
  hw::Architecture tiny;
  tiny.crossbar_count = 1;
  tiny.neurons_per_crossbar = 4;
  EXPECT_THROW(neutrams_partition(g, tiny), std::invalid_argument);
}

TEST(Baselines, PacmanBeatsNeutramsOnLocalityRichGraphs) {
  // The Fig. 5 ordering (NEUTRAMS >= PACMAN) comes from locality that
  // contiguous fill preserves and random assignment destroys; all Table I
  // apps have such structure (kernels, one-to-one pairing, recurrence).
  const auto g = clique_graph();
  const CostModel cost(g);
  const auto pacman_cut =
      cost.global_spike_count(pacman_partition(g, small_arch()));
  const auto neutrams_cut =
      cost.global_spike_count(neutrams_partition(g, small_arch()));
  EXPECT_LT(pacman_cut, neutrams_cut);
}

TEST(Baselines, ExactFitUsesAllCrossbars) {
  const auto g = layered_graph();
  const auto arch = small_arch();
  const auto pac = pacman_partition(g, arch);
  const auto neu = neutrams_partition(g, arch);
  EXPECT_EQ(pac.occupancy(), (std::vector<std::uint32_t>{4, 4, 4}));
  EXPECT_EQ(neu.occupancy(), (std::vector<std::uint32_t>{4, 4, 4}));
}

}  // namespace
}  // namespace snnmap::core
