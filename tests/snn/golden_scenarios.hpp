// Shared scenario definitions for the SNN simulator golden determinism
// tests.  The fixtures in golden_fixtures.inc were captured from the
// pre-refactor (PR 2) clock-driven simulator by running
// snnmap_snn_golden_capture; the golden test replays the identical scenarios
// on the current engine and requires bit-identical spike trains and final
// synapse weights.
//
// Scenarios only touch the public Network / Simulator API, so they survive
// internal rewrites.  Every scenario is fully deterministic (util::Rng-seeded
// wiring and simulation); covered axes: LIF / Izhikevich / Poisson groups and
// mixes of all three, constant and time-varying Poisson rates, delta and
// exponential synapses, STDP on and off, delays > 1 up to the ring boundary,
// inhibition, and a non-unit dt.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "../support/fnv1a.hpp"
#include "snn/network.hpp"
#include "snn/simulator.hpp"
#include "util/rng.hpp"

namespace snnmap::snn::golden {

struct Scenario {
  std::string name;
  std::function<Network()> build;  ///< deterministic network builder
  SimulationConfig config;
};

/// Order-sensitive digest of everything a simulation exposes: the per-neuron
/// spike trains (sizes and every spike time, bit for bit) and the final
/// synapse weights (the STDP-visible state).
struct Digest {
  std::uint64_t spikes_hash = 0;   ///< all trains, neuron order, time bits
  std::uint64_t weights_hash = 0;  ///< every synapse weight, synapse order
  std::uint64_t total_spikes = 0;
  std::uint64_t nonempty_trains = 0;
};

namespace detail {
using Fnv1a = snnmap::test::Fnv1a;
}  // namespace detail

inline Digest digest_of(const Network& net, const SimulationResult& result) {
  Digest d;
  detail::Fnv1a spikes;
  spikes.mix(static_cast<std::uint64_t>(result.spikes.size()));
  spikes.mix(result.duration_ms);
  for (const SpikeTrain& train : result.spikes) {
    spikes.mix(static_cast<std::uint64_t>(train.size()));
    for (const TimeMs t : train) spikes.mix(t);
    if (!train.empty()) ++d.nonempty_trains;
  }
  d.spikes_hash = spikes.value();

  detail::Fnv1a weights;
  weights.mix(static_cast<std::uint64_t>(net.synapses().size()));
  for (const Synapse& s : net.synapses()) {
    weights.mix(static_cast<std::uint64_t>(s.pre));
    weights.mix(static_cast<std::uint64_t>(s.post));
    weights.mix(s.weight);
    weights.mix(static_cast<std::uint64_t>(s.delay_steps));
  }
  d.weights_hash = weights.value();

  d.total_spikes = result.total_spikes;
  return d;
}

/// Runs one scenario start to finish; the Network outlives the run so the
/// caller digests final (possibly STDP-adapted) weights.
inline Digest run_scenario(const Scenario& scenario) {
  Network net = scenario.build();
  Simulator sim(net, scenario.config);
  const SimulationResult result = sim.run();
  return digest_of(net, result);
}

inline std::vector<Scenario> scenarios() {
  std::vector<Scenario> list;

  const auto config = [](TimeMs duration_ms, std::uint64_t seed) {
    SimulationConfig c;
    c.duration_ms = duration_ms;
    c.seed = seed;
    return c;
  };

  // 1. Pure Poisson population at a constant rate: pins the per-step
  //    Bernoulli draw order with no downstream dynamics.
  list.push_back({"poisson_constant_rate", [] {
                    Network net;
                    net.add_poisson_group("in", 40, 55.0);
                    return net;
                  },
                  config(500.0, 11)});

  // 2. The paper's synthetic feedforward family: 10 Poisson sources with a
  //    per-neuron rate ramp (rate_fn) driving two LIF layers, delta synapses.
  list.push_back({"poisson_lif_feedforward", [] {
                    Network net;
                    util::Rng rng(21);
                    const auto in = net.add_poisson_group("in", 10, 0.0);
                    net.set_rate_function(in, [](std::uint32_t local, double) {
                      return 10.0 + 10.0 * static_cast<double>(local);
                    });
                    const auto l0 = net.add_lif_group("l0", 60);
                    const auto l1 = net.add_lif_group("l1", 60);
                    net.connect_full(in, l0,
                                     WeightSpec::uniform(10.0, 15.0), rng);
                    net.connect_random(l0, l1, 0.3,
                                       WeightSpec::uniform(1.5, 2.3), rng);
                    return net;
                  },
                  config(400.0, 22)});

  // 3. Time-varying Poisson rates (burst envelope) into an Izhikevich layer.
  list.push_back({"poisson_rate_fn_time_varying", [] {
                    Network net;
                    util::Rng rng(31);
                    const auto in = net.add_poisson_group("in", 12, 30.0);
                    net.set_rate_function(
                        in, [](std::uint32_t local, double t_ms) {
                          const double phase =
                              t_ms / 100.0 + 0.25 * static_cast<double>(local);
                          return 40.0 + 35.0 * std::sin(phase);
                        });
                    const auto out = net.add_izhikevich_group(
                        "out", 30, IzhikevichParams::regular_spiking());
                    net.connect_random(in, out, 0.5,
                                       WeightSpec::uniform(8.0, 14.0), rng);
                    return net;
                  },
                  config(600.0, 33)});

  // 4. Izhikevich model zoo with mixed axonal delays (1..8 steps) and
  //    inhibition: regular spiking, fast spiking, chattering.
  list.push_back({"izhikevich_zoo_mixed_delays", [] {
                    Network net;
                    util::Rng rng(41);
                    const auto in = net.add_poisson_group("in", 16, 45.0);
                    const auto rs = net.add_izhikevich_group(
                        "rs", 24, IzhikevichParams::regular_spiking());
                    const auto fs = net.add_izhikevich_group(
                        "fs", 12, IzhikevichParams::fast_spiking());
                    const auto ch = net.add_izhikevich_group(
                        "ch", 8, IzhikevichParams::chattering());
                    net.connect_random(in, rs, 0.6,
                                       WeightSpec::uniform(9.0, 13.0), rng,
                                       /*delay=*/1);
                    net.connect_random(in, ch, 0.5,
                                       WeightSpec::uniform(7.0, 11.0), rng,
                                       /*delay=*/4);
                    net.connect_random(rs, fs, 0.4,
                                       WeightSpec::uniform(4.0, 7.0), rng,
                                       /*delay=*/3);
                    net.connect_random(fs, rs, 0.5,
                                       WeightSpec::uniform(-9.0, -5.0), rng,
                                       /*delay=*/2);
                    net.connect_random(ch, rs, 0.3,
                                       WeightSpec::uniform(2.0, 4.0), rng,
                                       /*delay=*/8);
                    return net;
                  },
                  config(500.0, 44)});

  // 5. Exponential synapses (tau = 5 ms): temporal summation across steps.
  list.push_back({"lif_exponential_tau5", [] {
                    Network net;
                    util::Rng rng(51);
                    const auto in = net.add_poisson_group("in", 20, 60.0);
                    const auto out = net.add_lif_group("out", 40);
                    net.connect_random(in, out, 0.4,
                                       WeightSpec::uniform(3.0, 6.0), rng);
                    return net;
                  },
                  [&] {
                    SimulationConfig c = config(400.0, 55);
                    c.syn_tau_ms = 5.0;
                    return c;
                  }()});

  // 6. STDP on: plastic Poisson -> LIF afferents with lateral inhibition
  //    (Diehl & Cook shape); the weights hash pins the final plastic state.
  list.push_back({"stdp_plastic_afferents", [] {
                    Network net;
                    util::Rng rng(61);
                    const auto in = net.add_poisson_group("in", 24, 35.0);
                    const auto exc = net.add_izhikevich_group(
                        "exc", 16, IzhikevichParams::regular_spiking());
                    const auto inh = net.add_izhikevich_group(
                        "inh", 16, IzhikevichParams::fast_spiking());
                    net.connect_random(in, exc, 0.7,
                                       WeightSpec::uniform(1.0, 4.0), rng,
                                       /*delay=*/1, /*plastic=*/true);
                    net.connect_one_to_one(exc, inh, WeightSpec::fixed(16.0),
                                           rng);
                    net.connect_random(inh, exc, 0.9,
                                       WeightSpec::fixed(-3.0), rng);
                    return net;
                  },
                  [&] {
                    SimulationConfig c = config(600.0, 66);
                    c.enable_stdp = true;
                    c.stdp.w_max = 8.0;
                    return c;
                  }()});

  // 7. STDP with delays > 1 on the plastic pathway plus exponential
  //    synapses: every hot-path feature enabled at once.
  list.push_back({"stdp_delays_exponential_mix", [] {
                    Network net;
                    util::Rng rng(71);
                    const auto in = net.add_poisson_group("in", 12, 50.0);
                    const auto mid = net.add_lif_group("mid", 20);
                    const auto out = net.add_izhikevich_group(
                        "out", 10, IzhikevichParams::intrinsically_bursting());
                    net.connect_random(in, mid, 0.6,
                                       WeightSpec::uniform(5.0, 9.0), rng,
                                       /*delay=*/2, /*plastic=*/true);
                    net.connect_random(mid, out, 0.5,
                                       WeightSpec::uniform(6.0, 10.0), rng,
                                       /*delay=*/5, /*plastic=*/true);
                    net.connect_random(out, mid, 0.3,
                                       WeightSpec::uniform(-6.0, -3.0), rng,
                                       /*delay=*/3);
                    return net;
                  },
                  [&] {
                    SimulationConfig c = config(500.0, 77);
                    c.enable_stdp = true;
                    c.stdp.a_plus = 0.02;
                    c.stdp.w_max = 12.0;
                    c.syn_tau_ms = 2.0;
                    return c;
                  }()});

  // 8. Delay-ring boundary: a synapse at the network's max_delay_steps (the
  //    last ring slot) must deliver exactly delay steps later.
  list.push_back({"max_delay_ring_boundary", [] {
                    Network net;
                    util::Rng rng(81);
                    const auto in = net.add_poisson_group("in", 4, 70.0);
                    const auto out = net.add_lif_group("out", 4);
                    net.connect_one_to_one(in, out, WeightSpec::fixed(30.0),
                                           rng, /*delay=*/12);
                    net.add_synapse(net.group(in).first,
                                    net.group(out).first + 1, 9.0,
                                    /*delay=*/1);
                    return net;
                  },
                  config(300.0, 88)});

  // 9. Non-unit dt (0.5 ms, exactly commensurate with the duration): half
  //    the step probability, twice the steps, Izhikevich substep math at
  //    h = 0.25 ms.
  list.push_back({"dt_half_ms", [] {
                    Network net;
                    util::Rng rng(91);
                    const auto in = net.add_poisson_group("in", 10, 40.0);
                    const auto out = net.add_izhikevich_group(
                        "out", 20, IzhikevichParams::regular_spiking());
                    net.connect_random(in, out, 0.5,
                                       WeightSpec::uniform(10.0, 16.0), rng);
                    return net;
                  },
                  [&] {
                    SimulationConfig c = config(250.0, 99);
                    c.dt_ms = 0.5;
                    return c;
                  }()});

  // 10. All three models in one network, mixed delays and a silent Poisson
  //     group (rate 0 draws nothing from the RNG stream).
  list.push_back({"mixed_models_silent_group", [] {
                    Network net;
                    util::Rng rng(101);
                    const auto in = net.add_poisson_group("in", 8, 65.0);
                    const auto silent = net.add_poisson_group("silent", 8, 0.0);
                    const auto lif = net.add_lif_group("lif", 16);
                    const auto izh = net.add_izhikevich_group(
                        "izh", 16, IzhikevichParams::fast_spiking());
                    net.connect_random(in, lif, 0.5,
                                       WeightSpec::uniform(8.0, 12.0), rng,
                                       /*delay=*/1);
                    net.connect_random(silent, lif, 0.5,
                                       WeightSpec::fixed(40.0), rng);
                    net.connect_random(lif, izh, 0.4,
                                       WeightSpec::uniform(6.0, 9.0), rng,
                                       /*delay=*/6);
                    net.connect_random(izh, lif, 0.3,
                                       WeightSpec::uniform(-5.0, -2.0), rng,
                                       /*delay=*/2);
                    return net;
                  },
                  config(500.0, 110)});

  return list;
}

}  // namespace snnmap::snn::golden
