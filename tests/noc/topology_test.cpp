#include "noc/topology.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace snnmap::noc {
namespace {

TEST(Mesh, DimensionsAndTiles) {
  const auto t = Topology::mesh(3, 2);
  EXPECT_EQ(t.router_count(), 6u);
  EXPECT_EQ(t.tile_count(), 6u);
  EXPECT_EQ(t.kind(), hw::InterconnectKind::kMesh);
  EXPECT_EQ(t.link_count(), 2u * 2u + 3u * 1u);  // 2 per row *2 rows? see calc
  for (TileId i = 0; i < 6; ++i) {
    EXPECT_EQ(t.router_of_tile(i), i);
    EXPECT_EQ(t.tile_of_router(i), i);
  }
}

TEST(Mesh, XyHopDistanceIsManhattan) {
  const auto t = Topology::mesh(4, 4);
  EXPECT_EQ(t.hop_distance(0, 0), 0u);
  EXPECT_EQ(t.hop_distance(0, 3), 3u);    // same row
  EXPECT_EQ(t.hop_distance(0, 12), 3u);   // same column
  EXPECT_EQ(t.hop_distance(0, 15), 6u);   // corner to corner
  EXPECT_EQ(t.hop_distance(5, 10), 2u);   // (1,1) -> (2,2)
}

TEST(Mesh, XyRoutesXFirst) {
  const auto t = Topology::mesh(3, 3);
  // From router 0 (0,0) to router 8 (2,2): first hop must be +x (router 1).
  const PortId p = t.next_port(0, 8);
  EXPECT_EQ(t.neighbor(0, p), 1u);
  // From 2 (2,0) to 6 (0,2): first hop is -x (router 1).
  const PortId q = t.next_port(2, 6);
  EXPECT_EQ(t.neighbor(2, q), 1u);
}

TEST(Mesh, LocalPortWhenArrived) {
  const auto t = Topology::mesh(2, 2);
  EXPECT_EQ(t.next_port(3, 3), kLocalPort);
}

TEST(Mesh, RejectsZeroDimensions) {
  EXPECT_THROW(Topology::mesh(0, 3), std::invalid_argument);
  EXPECT_THROW(Topology::mesh(3, 0), std::invalid_argument);
}

TEST(Tree, CxquadShape) {
  // 4 leaves under one hub (arity 4): 5 routers, 4 links.
  const auto t = Topology::tree(4, 4);
  EXPECT_EQ(t.router_count(), 5u);
  EXPECT_EQ(t.tile_count(), 4u);
  EXPECT_EQ(t.link_count(), 4u);
  EXPECT_EQ(t.kind(), hw::InterconnectKind::kTree);
  // Every leaf pair is 2 hops apart (up to hub, down).
  for (TileId a = 0; a < 4; ++a) {
    for (TileId b = 0; b < 4; ++b) {
      EXPECT_EQ(t.hop_distance(a, b), a == b ? 0u : 2u);
    }
  }
  // Internal hub has no tile.
  EXPECT_EQ(t.tile_of_router(4), kNoRouter);
}

TEST(Tree, TwoLevelDistances) {
  // 8 leaves, arity 4 -> 2 mid routers + root: leaves in the same subtree
  // are 2 hops apart; across subtrees 4 hops.
  const auto t = Topology::tree(8, 4);
  EXPECT_EQ(t.hop_distance(0, 3), 2u);
  EXPECT_EQ(t.hop_distance(0, 4), 4u);
  EXPECT_EQ(t.hop_distance(4, 7), 2u);
}

TEST(Tree, SingleTileIsTrivial) {
  const auto t = Topology::tree(1, 4);
  EXPECT_EQ(t.router_count(), 1u);
  EXPECT_EQ(t.hop_distance(0, 0), 0u);
}

TEST(Tree, RejectsBadParams) {
  EXPECT_THROW(Topology::tree(0, 4), std::invalid_argument);
  EXPECT_THROW(Topology::tree(4, 1), std::invalid_argument);
}

TEST(Ring, ShortestPathWrapsAround) {
  const auto t = Topology::ring(6);
  EXPECT_EQ(t.router_count(), 6u);
  EXPECT_EQ(t.link_count(), 6u);
  EXPECT_EQ(t.hop_distance(0, 1), 1u);
  EXPECT_EQ(t.hop_distance(0, 3), 3u);  // diameter
  EXPECT_EQ(t.hop_distance(0, 5), 1u);  // wraps
  EXPECT_EQ(t.hop_distance(1, 5), 2u);
}

TEST(Ring, TwoAndOneNode) {
  const auto two = Topology::ring(2);
  EXPECT_EQ(two.hop_distance(0, 1), 1u);
  EXPECT_EQ(two.link_count(), 1u);
  const auto one = Topology::ring(1);
  EXPECT_EQ(one.hop_distance(0, 0), 0u);
}

TEST(Topology, ForArchitectureDispatches) {
  hw::Architecture arch = hw::Architecture::cxquad();
  const auto tree = Topology::for_architecture(arch);
  EXPECT_EQ(tree.kind(), hw::InterconnectKind::kTree);
  EXPECT_EQ(tree.tile_count(), 4u);

  arch.interconnect = hw::InterconnectKind::kMesh;
  const auto mesh = Topology::for_architecture(arch);
  EXPECT_EQ(mesh.kind(), hw::InterconnectKind::kMesh);
  EXPECT_GE(mesh.tile_count(), arch.crossbar_count);

  arch.interconnect = hw::InterconnectKind::kRing;
  const auto ring = Topology::for_architecture(arch);
  EXPECT_EQ(ring.kind(), hw::InterconnectKind::kRing);
  EXPECT_EQ(ring.tile_count(), 4u);
}

TEST(Topology, NeighborSymmetry) {
  // If b is a neighbor of a then a is a neighbor of b (all topologies).
  for (const auto& topo :
       {Topology::mesh(3, 3), Topology::tree(8, 2), Topology::ring(5)}) {
    for (RouterId r = 0; r < topo.router_count(); ++r) {
      for (PortId p = 0; p < topo.port_count(r); ++p) {
        const RouterId nb = topo.neighbor(r, p);
        bool back = false;
        for (PortId q = 0; q < topo.port_count(nb); ++q) {
          back |= topo.neighbor(nb, q) == r;
        }
        EXPECT_TRUE(back) << "router " << r << " port " << p;
      }
    }
  }
}

TEST(Topology, RoutingReachesDestination) {
  // Following next_port from any router must arrive at any destination
  // within router_count hops (no loops), for all topology families.
  for (const auto& topo :
       {Topology::mesh(4, 3), Topology::tree(9, 3), Topology::ring(7)}) {
    for (TileId a = 0; a < topo.tile_count(); ++a) {
      for (TileId b = 0; b < topo.tile_count(); ++b) {
        EXPECT_NO_THROW({
          const std::uint32_t hops = topo.hop_distance(a, b);
          EXPECT_LE(hops, topo.router_count());
        });
      }
    }
  }
}

TEST(Topology, HopDistanceSymmetricForTreeAndRing) {
  // BFS shortest-path routing gives symmetric distances on these families.
  for (const auto& topo : {Topology::tree(8, 4), Topology::ring(9)}) {
    for (TileId a = 0; a < topo.tile_count(); ++a) {
      for (TileId b = 0; b < topo.tile_count(); ++b) {
        EXPECT_EQ(topo.hop_distance(a, b), topo.hop_distance(b, a));
      }
    }
  }
}

TEST(Topology, BoundsChecking) {
  const auto t = Topology::mesh(2, 2);
  EXPECT_THROW((void)t.router_of_tile(99), std::out_of_range);
  EXPECT_THROW((void)t.neighbor(0, 99), std::out_of_range);
  EXPECT_THROW((void)t.next_port(99, 0), std::out_of_range);
}

}  // namespace
}  // namespace snnmap::noc
