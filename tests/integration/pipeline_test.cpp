// End-to-end pipeline tests: application builders -> spike graph ->
// partitioners -> NoC simulation -> metrics, on the real workloads (scaled
// down in duration to keep CI time reasonable).
#include <gtest/gtest.h>

#include "apps/heartbeat.hpp"
#include "apps/hello_world.hpp"
#include "apps/synthetic.hpp"
#include "core/framework.hpp"

namespace snnmap {
namespace {

TEST(Pipeline, HelloWorldOnCxquad) {
  apps::HelloWorldConfig app;
  app.duration_ms = 300.0;
  const auto graph = apps::build_hello_world(app);

  core::MappingFlowConfig config;
  config.arch = hw::Architecture::cxquad();
  config.arch.neurons_per_crossbar = 64;  // force multi-crossbar mapping
  config.pso.swarm_size = 20;
  config.pso.iterations = 20;

  config.partitioner = core::PartitionerKind::kPso;
  const auto pso = core::run_mapping_flow(graph, config);
  config.partitioner = core::PartitionerKind::kPacman;
  const auto pacman = core::run_mapping_flow(graph, config);
  config.partitioner = core::PartitionerKind::kNeutrams;
  const auto neutrams = core::run_mapping_flow(graph, config);

  // Fig. 5 ordering on the energy axis.  PSO strictly dominates; PACMAN vs
  // NEUTRAMS is allowed a 15% band here because HW's offset one-to-one
  // connectivity is a near-worst case for contiguous fill (see
  // EXPERIMENTS.md, deviations).
  EXPECT_LE(pso.global_energy_pj, pacman.global_energy_pj);
  EXPECT_LE(pacman.global_energy_pj, neutrams.global_energy_pj * 1.15);
  EXPECT_TRUE(pso.noc_stats.drained);
  EXPECT_TRUE(neutrams.noc_stats.drained);
}

TEST(Pipeline, SyntheticEnergyConservation) {
  apps::SyntheticConfig app;
  app.layers = 2;
  app.neurons_per_layer = 60;
  app.duration_ms = 200.0;
  const auto graph = apps::build_synthetic(app);

  core::MappingFlowConfig config;
  config.arch = hw::Architecture::sized_for(graph.neuron_count(), 40,
                                            hw::InterconnectKind::kTree);
  config.partitioner = core::PartitionerKind::kPacman;
  const auto report = core::run_mapping_flow(graph, config);

  // Local + global events account for every synaptic event exactly.
  EXPECT_EQ(report.global_spikes + report.local_events,
            core::CostModel(graph).total_event_count());
  // The NoC actually carried the multicast packets derived from the cut.
  EXPECT_EQ(report.noc_stats.packets_injected, report.packets_offered);
  // Analytic estimate within 2x of the cycle-accurate energy (same model,
  // no contention in the analytic path).
  if (report.global_energy_pj > 0.0) {
    const double ratio =
        report.analytic_global_energy_pj / report.global_energy_pj;
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 2.0);
  }
}

TEST(Pipeline, TemporalWorkloadIsiDegradesWithCongestion) {
  // Shrinking the NoC buffers and spreading the LSM across tiny crossbars
  // increases congestion; ISI distortion must respond (weak monotonicity:
  // congested >= relaxed).
  apps::HeartbeatConfig app;
  app.duration_ms = 1500.0;
  const auto graph = apps::build_heartbeat(app);

  core::MappingFlowConfig relaxed;
  relaxed.arch = hw::Architecture::sized_for(graph.neuron_count(), 64,
                                             hw::InterconnectKind::kTree);
  relaxed.partitioner = core::PartitionerKind::kPso;
  relaxed.pso.swarm_size = 20;
  relaxed.pso.iterations = 20;

  core::MappingFlowConfig congested = relaxed;
  congested.arch = hw::Architecture::sized_for(graph.neuron_count(), 8,
                                               hw::InterconnectKind::kTree);
  congested.partitioner = core::PartitionerKind::kNeutrams;
  congested.noc.buffer_depth = 1;

  const auto relaxed_report = core::run_mapping_flow(graph, relaxed);
  const auto congested_report = core::run_mapping_flow(graph, congested);
  EXPECT_GE(congested_report.snn_metrics.isi_distortion_avg_cycles,
            relaxed_report.snn_metrics.isi_distortion_avg_cycles);
  EXPECT_GE(congested_report.noc_stats.max_latency_cycles,
            relaxed_report.noc_stats.max_latency_cycles);
}

TEST(Pipeline, GraphSerializationPreservesMappingResults) {
  apps::SyntheticConfig app;
  app.layers = 1;
  app.neurons_per_layer = 50;
  app.duration_ms = 150.0;
  const auto graph = apps::build_synthetic(app);

  std::stringstream stream;
  graph.save(stream);
  const auto loaded = snn::SnnGraph::load(stream);

  core::MappingFlowConfig config;
  config.arch = hw::Architecture::sized_for(graph.neuron_count(), 20,
                                            hw::InterconnectKind::kMesh);
  config.partitioner = core::PartitionerKind::kPacman;
  const auto a = core::run_mapping_flow(graph, config);
  const auto b = core::run_mapping_flow(loaded, config);
  EXPECT_EQ(a.global_spikes, b.global_spikes);
  EXPECT_DOUBLE_EQ(a.global_energy_pj, b.global_energy_pj);
}

TEST(Pipeline, MeshAndTreeBothCarryTheSameWorkload) {
  apps::SyntheticConfig app;
  app.layers = 2;
  app.neurons_per_layer = 40;
  app.duration_ms = 150.0;
  const auto graph = apps::build_synthetic(app);

  for (const auto kind :
       {hw::InterconnectKind::kMesh, hw::InterconnectKind::kTree,
        hw::InterconnectKind::kRing}) {
    core::MappingFlowConfig config;
    config.arch = hw::Architecture::sized_for(graph.neuron_count(), 30, kind);
    config.partitioner = core::PartitionerKind::kPacman;
    const auto report = core::run_mapping_flow(graph, config);
    EXPECT_TRUE(report.noc_stats.drained) << hw::to_string(kind);
    EXPECT_EQ(report.noc_stats.packets_injected, report.packets_offered);
  }
}

}  // namespace
}  // namespace snnmap
