#include "core/config_io.hpp"

#include <gtest/gtest.h>

#include <iterator>
#include <limits>
#include <stdexcept>

namespace snnmap::core {
namespace {

TEST(ConfigIo, DefaultsWhenEmpty) {
  const auto flow = mapping_flow_from_config(util::Config{});
  const MappingFlowConfig defaults;
  EXPECT_EQ(flow.arch.crossbar_count, defaults.arch.crossbar_count);
  EXPECT_EQ(flow.arch.interconnect, defaults.arch.interconnect);
  EXPECT_EQ(flow.noc.buffer_depth, defaults.noc.buffer_depth);
  EXPECT_EQ(flow.pso.swarm_size, defaults.pso.swarm_size);
  EXPECT_EQ(flow.partitioner, defaults.partitioner);
  EXPECT_EQ(flow.seed, defaults.seed);
}

TEST(ConfigIo, ParsesFullDocument) {
  const auto cfg = util::Config::parse(
      "arch:\n"
      "  crossbars: 9\n"
      "  neurons_per_crossbar: 64\n"
      "  interconnect: mesh\n"
      "  cycles_per_ms: 250\n"
      "noc:\n"
      "  buffer_depth: 2\n"
      "  multicast: false\n"
      "  collect_delivered: false\n"
      "energy:\n"
      "  link_hop_pj: 42.0\n"
      "pso:\n"
      "  swarm_size: 77\n"
      "  iterations: 33\n"
      "  objective: cut-spikes\n"
      "  seed_with_baselines: false\n"
      "flow:\n"
      "  partitioner: annealing\n"
      "  comm_aware_placement: true\n"
      "  seed: 99\n");
  const auto flow = mapping_flow_from_config(cfg);
  EXPECT_EQ(flow.arch.crossbar_count, 9u);
  EXPECT_EQ(flow.arch.neurons_per_crossbar, 64u);
  EXPECT_EQ(flow.arch.interconnect, hw::InterconnectKind::kMesh);
  EXPECT_EQ(flow.arch.cycles_per_ms, 250u);
  EXPECT_EQ(flow.noc.buffer_depth, 2u);
  EXPECT_FALSE(flow.noc.multicast);
  EXPECT_FALSE(flow.noc.collect_delivered);
  EXPECT_EQ(flow.energy().link_hop_pj, 42.0);
  EXPECT_EQ(flow.noc.energy.link_hop_pj, 42.0);  // the same object
  EXPECT_EQ(flow.pso.swarm_size, 77u);
  EXPECT_EQ(flow.pso.iterations, 33u);
  EXPECT_EQ(flow.pso.objective, Objective::kCutSpikes);
  EXPECT_FALSE(flow.pso.seed_with_baselines);
  EXPECT_EQ(flow.partitioner, PartitionerKind::kAnnealing);
  EXPECT_TRUE(flow.comm_aware_placement);
  EXPECT_EQ(flow.seed, 99u);
}

TEST(ConfigIo, RoundTripsThroughDump) {
  MappingFlowConfig flow;
  flow.arch.crossbar_count = 12;
  flow.arch.interconnect = hw::InterconnectKind::kRing;
  flow.noc.buffer_depth = 7;
  flow.pso.swarm_size = 321;
  flow.pso.objective = Objective::kCutSpikes;
  flow.partitioner = PartitionerKind::kGenetic;
  flow.comm_aware_placement = true;
  flow.injection_jitter_cycles = 5;
  flow.seed = 7;
  flow.noc.energy.aer_codec_pj = 0.25;

  util::Config serialized;
  mapping_flow_to_config(flow, serialized);
  const auto reparsed = util::Config::parse(serialized.dump());
  const auto back = mapping_flow_from_config(reparsed);

  EXPECT_EQ(back.arch.crossbar_count, 12u);
  EXPECT_EQ(back.arch.interconnect, hw::InterconnectKind::kRing);
  EXPECT_EQ(back.noc.buffer_depth, 7u);
  EXPECT_EQ(back.pso.swarm_size, 321u);
  EXPECT_EQ(back.pso.objective, Objective::kCutSpikes);
  EXPECT_EQ(back.partitioner, PartitionerKind::kGenetic);
  EXPECT_TRUE(back.comm_aware_placement);
  EXPECT_EQ(back.injection_jitter_cycles, 5u);
  EXPECT_EQ(back.seed, 7u);
  EXPECT_NEAR(back.energy().aer_codec_pj, 0.25, 1e-9);
}

TEST(ConfigIo, PartitionerNamesRoundTrip) {
  for (const auto kind :
       {PartitionerKind::kPso, PartitionerKind::kPacman,
        PartitionerKind::kNeutrams, PartitionerKind::kAnnealing,
        PartitionerKind::kGenetic}) {
    EXPECT_EQ(partitioner_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(partitioner_from_string("metis"), std::invalid_argument);
}

TEST(ConfigIo, ObjectiveNamesRoundTrip) {
  for (const auto objective :
       {Objective::kAerPackets, Objective::kCutSpikes}) {
    EXPECT_EQ(objective_from_string(to_string(objective)), objective);
  }
  EXPECT_THROW(objective_from_string("hops"), std::invalid_argument);
}

TEST(ConfigIo, RoutingAndSelectionKeys) {
  const auto cfg = util::Config::parse(
      "noc:\n"
      "  selection: buffer-level\n"
      "  mesh_routing: west-first\n");
  const auto flow = mapping_flow_from_config(cfg);
  EXPECT_EQ(flow.noc.selection, noc::SelectionStrategy::kBufferLevel);
  EXPECT_EQ(flow.mesh_routing, noc::MeshRouting::kWestFirst);

  util::Config out;
  mapping_flow_to_config(flow, out);
  EXPECT_EQ(out.get_string("noc.selection"), "buffer-level");
  EXPECT_EQ(out.get_string("noc.mesh_routing"), "west-first");

  const auto bad = util::Config::parse("noc:\n  selection: psychic\n");
  EXPECT_THROW(mapping_flow_from_config(bad), std::invalid_argument);
}

TEST(ConfigIo, NocEngineKeyRoundTrips) {
  // Unset key keeps the default (event); both names parse; junk throws.
  EXPECT_EQ(mapping_flow_from_config(util::Config{}).noc.engine,
            noc::NocEngine::kEvent);
  const auto cfg = util::Config::parse("noc:\n  engine: cycle\n");
  const auto flow = mapping_flow_from_config(cfg);
  EXPECT_EQ(flow.noc.engine, noc::NocEngine::kCycle);

  util::Config out;
  mapping_flow_to_config(flow, out);
  EXPECT_EQ(out.get_string("noc.engine"), "cycle");
  EXPECT_EQ(mapping_flow_from_config(out).noc.engine,
            noc::NocEngine::kCycle);

  const auto bad = util::Config::parse("noc:\n  engine: warp\n");
  EXPECT_THROW(mapping_flow_from_config(bad), std::invalid_argument);
}

TEST(ConfigIo, BadInterconnectNameThrows) {
  const auto cfg = util::Config::parse("arch:\n  interconnect: torus\n");
  try {
    mapping_flow_from_config(cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error must enumerate every supported fabric so a typo in an
    // archived config is self-diagnosing.
    const std::string what = e.what();
    for (const char* kind : {"mesh", "tree", "ring", "dragonfly", "fattree"}) {
      EXPECT_NE(what.find(kind), std::string::npos) << kind;
    }
  }
}

TEST(ConfigIo, MultiChipAndFabricKeysRoundTrip) {
  const auto cfg = util::Config::parse(
      "arch:\n"
      "  crossbars: 20\n"
      "  interconnect: dragonfly\n"
      "  dragonfly_arity: 4\n"
      "  dragonfly_groups: 5\n"
      "  dragonfly_global: 1\n"
      "  chips: 5\n"
      "noc:\n"
      "  offchip_link_latency: 7\n"
      "energy:\n"
      "  offchip_link_hop_pj: 33.5\n");
  const auto flow = mapping_flow_from_config(cfg);
  EXPECT_EQ(flow.arch.interconnect, hw::InterconnectKind::kDragonfly);
  EXPECT_EQ(flow.arch.dragonfly_arity, 4u);
  EXPECT_EQ(flow.arch.dragonfly_groups, 5u);
  EXPECT_EQ(flow.arch.dragonfly_global, 1u);
  EXPECT_EQ(flow.arch.chip_count, 5u);
  EXPECT_EQ(flow.noc.offchip_link_latency, 7u);
  EXPECT_EQ(flow.energy().offchip_link_hop_pj, 33.5);

  util::Config out;
  mapping_flow_to_config(flow, out);
  const auto back = mapping_flow_from_config(util::Config::parse(out.dump()));
  EXPECT_EQ(back.arch.dragonfly_arity, 4u);
  EXPECT_EQ(back.arch.dragonfly_groups, 5u);
  EXPECT_EQ(back.arch.dragonfly_global, 1u);
  EXPECT_EQ(back.arch.chip_count, 5u);
  EXPECT_EQ(back.noc.offchip_link_latency, 7u);
  EXPECT_NEAR(back.energy().offchip_link_hop_pj, 33.5, 1e-9);

  const auto ft = mapping_flow_from_config(util::Config::parse(
      "arch:\n  interconnect: fattree\n  fattree_k: 6\n  crossbars: 18\n"));
  EXPECT_EQ(ft.arch.interconnect, hw::InterconnectKind::kFattree);
  EXPECT_EQ(ft.arch.fattree_k, 6u);
}

TEST(ConfigIo, CosimKeysOverlayDefaults) {
  const auto cfg = util::Config::parse(
      "cosim:\n"
      "  cycles_per_timestep: 250\n"
      "  receive_queue_depth: 32\n"
      "  injection_jitter_cycles: 8\n");
  const auto cosim = cosim_from_config(cfg);
  EXPECT_EQ(cosim.cycles_per_timestep, 250u);
  EXPECT_EQ(cosim.receive_queue_depth, 32u);
  EXPECT_EQ(cosim.injection_jitter_cycles, 8u);

  // Absent keys keep the caller's base values.
  cosim::CoSimConfig base;
  base.cycles_per_timestep = 777;
  const auto overlaid = cosim_from_config(util::Config::parse(""), base);
  EXPECT_EQ(overlaid.cycles_per_timestep, 777u);
  EXPECT_EQ(overlaid.receive_queue_depth, cosim::kUnboundedReceiveQueue);
}

TEST(ConfigIo, CosimKeysRoundTripThroughDump) {
  cosim::CoSimConfig cosim;
  cosim.cycles_per_timestep = 123;
  cosim.receive_queue_depth = 9;
  cosim.injection_jitter_cycles = 4;
  cosim.dvfs.kind = cosim::DvfsPolicyKind::kDeadlineSlack;
  cosim.dvfs.min_scale = 0.125;
  cosim.dvfs.slack_fraction = 0.625;
  util::Config out;
  cosim_to_config(cosim, out);
  const auto back = cosim_from_config(util::Config::parse(out.dump()));
  EXPECT_EQ(back.cycles_per_timestep, 123u);
  EXPECT_EQ(back.receive_queue_depth, 9u);
  EXPECT_EQ(back.injection_jitter_cycles, 4u);
  EXPECT_EQ(back.dvfs.kind, cosim::DvfsPolicyKind::kDeadlineSlack);
  EXPECT_NEAR(back.dvfs.min_scale, 0.125, 1e-9);
  EXPECT_NEAR(back.dvfs.slack_fraction, 0.625, 1e-9);
}

TEST(ConfigIo, DvfsKeysOverlayDefaults) {
  const auto cfg = util::Config::parse(
      "dvfs:\n"
      "  policy: utilization-threshold\n"
      "  low_utilization: 0.125\n"
      "  high_utilization: 0.875\n");
  const auto cosim = cosim_from_config(cfg);
  EXPECT_EQ(cosim.dvfs.kind, cosim::DvfsPolicyKind::kUtilizationThreshold);
  EXPECT_EQ(cosim.dvfs.low_utilization, 0.125);
  EXPECT_EQ(cosim.dvfs.high_utilization, 0.875);
  EXPECT_EQ(cosim.dvfs.min_scale, cosim::DvfsPolicy{}.min_scale);  // default

  const auto bad = util::Config::parse("dvfs:\n  policy: psychic\n");
  EXPECT_THROW(cosim_from_config(bad), std::invalid_argument);
}

TEST(ConfigIo, SaveLoadSaveIsByteStable) {
  // Serializing a config, parsing it back and serializing again must
  // produce the identical document — including the energy section (bound
  // once, to the NoC config's model) and the dvfs: keys.  A drifting dump
  // would make archived experiment configs unreproducible.
  MappingFlowConfig flow;
  flow.arch.crossbar_count = 6;
  flow.arch.chip_count = 2;
  flow.noc.energy.link_hop_pj = 12.75;
  flow.noc.energy.aer_codec_pj = 0.375;
  flow.noc.energy.offchip_link_hop_pj = 31.25;
  flow.noc.offchip_link_latency = 3;
  flow.comm_aware_placement = true;
  cosim::CoSimConfig cosim;
  cosim.cycles_per_timestep = 640;
  cosim.dvfs.kind = cosim::DvfsPolicyKind::kUtilizationThreshold;
  cosim.dvfs.min_scale = 0.0625;

  util::Config first;
  mapping_flow_to_config(flow, first);
  cosim_to_config(cosim, first);
  const std::string saved = first.dump();

  const auto loaded = util::Config::parse(saved);
  const auto flow_back = mapping_flow_from_config(loaded);
  const auto cosim_back = cosim_from_config(loaded);
  util::Config second;
  mapping_flow_to_config(flow_back, second);
  cosim_to_config(cosim_back, second);
  EXPECT_EQ(saved, second.dump());

  // The energy section landed in the single shared model.
  EXPECT_EQ(flow_back.noc.energy.link_hop_pj, flow.noc.energy.link_hop_pj);
  EXPECT_EQ(&flow_back.energy(), &flow_back.noc.energy);
}

TEST(ConfigIo, FaultKeysOverlayDefaults) {
  const auto cfg = util::Config::parse(
      "faults:\n"
      "  seed: 77\n"
      "  link_fault_rate: 0.125\n"
      "  tile_fault_rate: 0.0625\n"
      "  transient_link_rate: 0.25\n"
      "  transient_duration_cycles: 512\n"
      "  flit_drop_probability: 0.03125\n"
      "  horizon_cycles: 40000\n"
      "retry:\n"
      "  enabled: true\n"
      "  max_retries: 5\n"
      "  backoff_windows: 2\n"
      "  timeout_windows: 16\n");
  const auto flow = mapping_flow_from_config(cfg);
  EXPECT_EQ(flow.noc.faults.seed, 77u);
  EXPECT_EQ(flow.noc.faults.link_fault_rate, 0.125);
  EXPECT_EQ(flow.noc.faults.router_fault_rate, 0.0);  // absent: default
  EXPECT_EQ(flow.noc.faults.tile_fault_rate, 0.0625);
  EXPECT_EQ(flow.noc.faults.transient_link_rate, 0.25);
  EXPECT_EQ(flow.noc.faults.transient_duration_cycles, 512u);
  EXPECT_EQ(flow.noc.faults.flit_drop_probability, 0.03125);
  EXPECT_EQ(flow.noc.faults.horizon_cycles, 40000u);
  EXPECT_TRUE(flow.noc.faults.any());

  const auto cosim = cosim_from_config(cfg);
  EXPECT_TRUE(cosim.retry.enabled);
  EXPECT_EQ(cosim.retry.max_retries, 5u);
  EXPECT_EQ(cosim.retry.backoff_windows, 2u);
  EXPECT_EQ(cosim.retry.timeout_windows, 16u);

  // An empty document keeps the inert defaults.
  const auto plain = mapping_flow_from_config(util::Config::parse(""));
  EXPECT_FALSE(plain.noc.faults.any());
  EXPECT_FALSE(cosim_from_config(util::Config::parse("")).retry.enabled);
}

TEST(ConfigIo, FaultAndRetryKeysAreByteStable) {
  // The faults: and retry: sections must survive save -> load -> save with
  // an identical byte stream, like every other section.
  MappingFlowConfig flow;
  flow.noc.faults.seed = 9;
  flow.noc.faults.link_fault_rate = 0.375;
  flow.noc.faults.router_fault_rate = 0.125;
  flow.noc.faults.transient_link_rate = 0.5;
  flow.noc.faults.transient_duration_cycles = 2048;
  flow.noc.faults.flit_drop_probability = 0.015625;
  flow.noc.faults.horizon_cycles = 100000;
  cosim::CoSimConfig cosim;
  cosim.retry.enabled = true;
  cosim.retry.max_retries = 7;
  cosim.retry.backoff_windows = 3;
  cosim.retry.timeout_windows = 24;

  util::Config first;
  mapping_flow_to_config(flow, first);
  cosim_to_config(cosim, first);
  const std::string saved = first.dump();

  const auto loaded = util::Config::parse(saved);
  const auto flow_back = mapping_flow_from_config(loaded);
  const auto cosim_back = cosim_from_config(loaded);
  util::Config second;
  mapping_flow_to_config(flow_back, second);
  cosim_to_config(cosim_back, second);
  EXPECT_EQ(saved, second.dump());

  EXPECT_EQ(flow_back.noc.faults.seed, 9u);
  EXPECT_EQ(flow_back.noc.faults.link_fault_rate, 0.375);
  EXPECT_EQ(flow_back.noc.faults.flit_drop_probability, 0.015625);
  EXPECT_EQ(flow_back.noc.faults.horizon_cycles, 100000u);
  EXPECT_TRUE(cosim_back.retry.enabled);
  EXPECT_EQ(cosim_back.retry.max_retries, 7u);
  EXPECT_EQ(cosim_back.retry.timeout_windows, 24u);
}

TEST(ConfigIo, TraceAndMonitorKeysOverlayDefaults) {
  const auto cfg = util::Config::parse(
      "trace:\n"
      "  enabled: true\n"
      "  ring_capacity: 1024\n"
      "monitor:\n"
      "  enabled: true\n"
      "  ewma_alpha: 0.5\n"
      "  hot_occupancy: 0.75\n"
      "  persistence_windows: 5\n");
  const auto flow = mapping_flow_from_config(cfg);
  EXPECT_TRUE(flow.noc.trace.enabled);
  EXPECT_EQ(flow.noc.trace.ring_capacity, 1024u);
  EXPECT_TRUE(flow.noc.monitor.enabled);
  EXPECT_EQ(flow.noc.monitor.ewma_alpha, 0.5);
  EXPECT_EQ(flow.noc.monitor.hot_occupancy, 0.75);
  EXPECT_EQ(flow.noc.monitor.persistence_windows, 5u);

  // An empty document keeps the inert defaults: nothing traces, nothing
  // is monitored.
  const auto plain = mapping_flow_from_config(util::Config::parse(""));
  EXPECT_FALSE(plain.noc.trace.enabled);
  EXPECT_FALSE(plain.noc.monitor.enabled);
}

TEST(ConfigIo, TraceAndMonitorKeysAreByteStable) {
  MappingFlowConfig flow;
  flow.noc.trace.enabled = true;
  flow.noc.trace.ring_capacity = 4096;
  flow.noc.monitor.enabled = true;
  flow.noc.monitor.ewma_alpha = 0.125;
  flow.noc.monitor.hot_occupancy = 0.25;
  flow.noc.monitor.persistence_windows = 4;

  util::Config first;
  mapping_flow_to_config(flow, first);
  const std::string saved = first.dump();

  const auto loaded = util::Config::parse(saved);
  const auto flow_back = mapping_flow_from_config(loaded);
  util::Config second;
  mapping_flow_to_config(flow_back, second);
  EXPECT_EQ(saved, second.dump());

  EXPECT_TRUE(flow_back.noc.trace.enabled);
  EXPECT_EQ(flow_back.noc.trace.ring_capacity, 4096u);
  EXPECT_EQ(flow_back.noc.monitor.ewma_alpha, 0.125);
  EXPECT_EQ(flow_back.noc.monitor.persistence_windows, 4u);
}

TEST(ConfigIo, DegenerateTraceAndMonitorConfigsThrowAtSimulatorBuild) {
  // Validation parity: config_io binds the raw values; the simulator
  // constructor rejects degenerate ones exactly like faults/energy.
  {
    noc::NocConfig bad;
    bad.trace.enabled = true;
    bad.trace.ring_capacity = 0;
    EXPECT_THROW(noc::NocSimulator(noc::Topology::ring(2), bad),
                 std::invalid_argument);
  }
  {
    noc::NocConfig bad;
    bad.monitor.enabled = true;
    bad.monitor.ewma_alpha = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(noc::NocSimulator(noc::Topology::ring(2), bad),
                 std::invalid_argument);
  }
  {
    noc::NocConfig bad;
    bad.monitor.enabled = true;
    bad.monitor.hot_occupancy = -1.0;
    EXPECT_THROW(noc::NocSimulator(noc::Topology::ring(2), bad),
                 std::invalid_argument);
  }
}

TEST(ConfigIo, AnnealingAndGeneticKeys) {
  const auto cfg = util::Config::parse(
      "annealing:\n"
      "  moves: 1234\n"
      "  cooling: 0.5\n"
      "genetic:\n"
      "  population: 21\n"
      "  mutation_rate: 0.125\n");
  const auto flow = mapping_flow_from_config(cfg);
  EXPECT_EQ(flow.annealing.moves, 1234u);
  EXPECT_EQ(flow.annealing.cooling, 0.5);
  EXPECT_EQ(flow.genetic.population, 21u);
  EXPECT_EQ(flow.genetic.mutation_rate, 0.125);
}

// The serialized config schema, pinned key for key.  snnmap-lint's
// config-key-coverage rule statically cross-checks that every key config_io
// reads or writes appears in this file; this test closes the loop at
// runtime: the byte-stable round-trip above covers exactly this key set, so
// a key added to config_io without extending this list fails here, and a
// key dropped from to_config breaks the list (and byte-stability) too.
TEST(ConfigIo, SerializedSchemaIsPinned) {
  static const char* const kSchema[] = {
      "annealing.cooling",
      "annealing.moves",
      "annealing.restarts",
      "annealing.swap_probability",
      "annealing.threads",
      "arch.chips",
      "arch.crossbars",
      "arch.cycles_per_ms",
      "arch.dragonfly_arity",
      "arch.dragonfly_global",
      "arch.dragonfly_groups",
      "arch.fattree_k",
      "arch.interconnect",
      "arch.neurons_per_crossbar",
      "arch.tree_arity",
      "cosim.cycles_per_timestep",
      "cosim.injection_jitter_cycles",
      "cosim.receive_queue_depth",
      "dvfs.high_utilization",
      "dvfs.low_utilization",
      "dvfs.min_scale",
      "dvfs.policy",
      "dvfs.slack_fraction",
      "energy.aer_codec_pj",
      "energy.crossbar_event_pj",
      "energy.link_hop_pj",
      "energy.offchip_link_hop_pj",
      "energy.retransmit_pj",
      "energy.router_flit_pj",
      "faults.flit_drop_probability",
      "faults.horizon_cycles",
      "faults.link_fault_rate",
      "faults.router_fault_rate",
      "faults.seed",
      "faults.tile_fault_rate",
      "faults.transient_duration_cycles",
      "faults.transient_link_rate",
      "flow.comm_aware_placement",
      "flow.injection_jitter_cycles",
      "flow.partitioner",
      "flow.seed",
      "genetic.generations",
      "genetic.mutation_rate",
      "genetic.population",
      "genetic.threads",
      "monitor.enabled",
      "monitor.ewma_alpha",
      "monitor.hot_occupancy",
      "monitor.persistence_windows",
      "noc.buffer_depth",
      "noc.collect_delivered",
      "noc.engine",
      "noc.max_cycles",
      "noc.mesh_routing",
      "noc.multicast",
      "noc.offchip_link_latency",
      "noc.selection",
      "pso.inertia",
      "pso.iterations",
      "pso.objective",
      "pso.patience",
      "pso.phi1",
      "pso.phi2",
      "pso.refine_swap_factor",
      "pso.refine_sweeps",
      "pso.seed_with_baselines",
      "pso.swarm_size",
      "pso.threads",
      "pso.v_max",
      "retry.backoff_windows",
      "retry.enabled",
      "retry.max_retries",
      "retry.timeout_windows",
      "trace.enabled",
      "trace.ring_capacity",
  };
  util::Config serialized;
  mapping_flow_to_config(MappingFlowConfig{}, serialized);
  cosim_to_config(cosim::CoSimConfig{}, serialized);
  const auto keys = serialized.keys();
  ASSERT_EQ(keys.size(), std::size(kSchema));
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(keys[i], kSchema[i]) << "schema drift at index " << i;
  }
}

}  // namespace
}  // namespace snnmap::core
