// Spike-annotated SNN graph G = (A, S) — Sec. III of the paper.
//
// "Each synapse s_ij is a tuple <a_i, a_j, T_ij> where T_ij are the spike
// times of the pre-synaptic neuron a_i.  This graph represents initial
// specification of a trained SNN in terms of synaptic weights and spike
// times.  This graph is generated from CARLsim."
//
// Here it is generated from the Simulator; spike times are stored once per
// pre neuron (all outgoing synapses of a neuron share its train) to keep the
// representation compact for 1M+-synapse networks.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "snn/network.hpp"
#include "snn/simulator.hpp"
#include "snn/spike_train.hpp"

namespace snnmap::snn {

/// One directed edge of the graph.
struct GraphEdge {
  NeuronId pre = kInvalidNeuron;
  NeuronId post = kInvalidNeuron;
  float weight = 0.0F;
};

/// Immutable mapping input: topology + per-neuron spike trains.
class SnnGraph {
 public:
  SnnGraph() = default;

  /// Builds from a network and the simulation that exercised it.
  /// Parallel synapses between the same (pre, post) pair are collapsed into
  /// one edge (their weights summed); traffic is per pre-neuron spike anyway.
  static SnnGraph from_simulation(const Network& network,
                                  const SimulationResult& result);

  /// Builds a graph directly (tests / synthetic workloads without dynamics).
  static SnnGraph from_parts(std::uint32_t neuron_count,
                             std::vector<GraphEdge> edges,
                             std::vector<SpikeTrain> spike_times,
                             TimeMs duration_ms,
                             std::vector<std::string> group_names = {},
                             std::vector<std::uint32_t> group_first = {});

  std::uint32_t neuron_count() const noexcept { return neuron_count_; }
  std::size_t edge_count() const noexcept { return edges_.size(); }
  const std::vector<GraphEdge>& edges() const noexcept { return edges_; }
  TimeMs duration_ms() const noexcept { return duration_ms_; }

  const SpikeTrain& spike_train(NeuronId i) const { return spikes_.at(i); }
  const std::vector<SpikeTrain>& spike_trains() const noexcept {
    return spikes_;
  }
  std::uint64_t spike_count(NeuronId i) const { return spikes_.at(i).size(); }
  std::uint64_t total_spikes() const noexcept { return total_spikes_; }

  /// Distinct post-synaptic neurons per pre neuron (CSR).
  const std::vector<std::uint32_t>& fanout_offsets() const noexcept {
    return fanout_offsets_;
  }
  const std::vector<NeuronId>& fanout_targets() const noexcept {
    return fanout_targets_;
  }
  /// Fan-out degree of a neuron (distinct targets).
  std::uint32_t fanout_degree(NeuronId i) const {
    return fanout_offsets_.at(i + 1) - fanout_offsets_.at(i);
  }

  /// Group annotations carried over from the network (may be empty when the
  /// graph was built synthetically).  group_first has one extra sentinel
  /// entry equal to neuron_count.
  const std::vector<std::string>& group_names() const noexcept {
    return group_names_;
  }
  const std::vector<std::uint32_t>& group_first() const noexcept {
    return group_first_;
  }

  /// Mean firing rate over all neurons in Hz.
  double mean_rate_hz() const noexcept;

  /// Plain-text serialization (round-trips via load); versioned header.
  void save(std::ostream& out) const;
  static SnnGraph load(std::istream& in);
  void save_file(const std::string& path) const;
  static SnnGraph load_file(const std::string& path);

 private:
  void build_fanout();
  void validate() const;

  std::uint32_t neuron_count_ = 0;
  std::vector<GraphEdge> edges_;
  std::vector<SpikeTrain> spikes_;
  TimeMs duration_ms_ = 0.0;
  std::uint64_t total_spikes_ = 0;
  std::vector<std::uint32_t> fanout_offsets_;
  std::vector<NeuronId> fanout_targets_;
  std::vector<std::string> group_names_;
  std::vector<std::uint32_t> group_first_;
};

}  // namespace snnmap::snn
