#include "core/partition.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace snnmap::core {
namespace {

TEST(Partition, StartsUnassigned) {
  const Partition p(5, 2);
  EXPECT_EQ(p.neuron_count(), 5u);
  EXPECT_EQ(p.crossbar_count(), 2u);
  EXPECT_FALSE(p.is_complete());
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(p.crossbar_of(i), kUnassigned);
  }
}

TEST(Partition, RequiresCrossbars) {
  EXPECT_THROW(Partition(5, 0), std::invalid_argument);
}

TEST(Partition, AssignAndComplete) {
  Partition p(3, 2);
  p.assign(0, 0);
  p.assign(1, 1);
  EXPECT_FALSE(p.is_complete());
  p.assign(2, 0);
  EXPECT_TRUE(p.is_complete());
  EXPECT_EQ(p.crossbar_of(2), 0u);
}

TEST(Partition, AssignValidatesIds) {
  Partition p(3, 2);
  EXPECT_THROW(p.assign(9, 0), std::out_of_range);
  EXPECT_THROW(p.assign(0, 5), std::out_of_range);
  p.assign(0, kUnassigned);  // un-assignment is allowed
  EXPECT_EQ(p.crossbar_of(0), kUnassigned);
}

TEST(Partition, OccupancyCountsPerCrossbar) {
  Partition p(5, 3);
  p.assign(0, 0);
  p.assign(1, 0);
  p.assign(2, 1);
  const auto occ = p.occupancy();
  EXPECT_EQ(occ[0], 2u);
  EXPECT_EQ(occ[1], 1u);
  EXPECT_EQ(occ[2], 0u);
}

TEST(Partition, CapacityCheck) {
  Partition p(4, 2);
  for (std::uint32_t i = 0; i < 4; ++i) p.assign(i, 0);
  EXPECT_FALSE(p.satisfies_capacity(3));
  EXPECT_TRUE(p.satisfies_capacity(4));
}

TEST(Partition, ValidateNamesViolation) {
  hw::Architecture arch;
  arch.crossbar_count = 2;
  arch.neurons_per_crossbar = 2;
  Partition incomplete(3, 2);
  incomplete.assign(0, 0);
  try {
    incomplete.validate(arch);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("Eq.4"), std::string::npos);
  }

  Partition overfull(3, 2);
  for (std::uint32_t i = 0; i < 3; ++i) overfull.assign(i, 0);
  try {
    overfull.validate(arch);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("Eq.5"), std::string::npos);
  }

  Partition wrong_count(3, 3);
  EXPECT_THROW(wrong_count.validate(arch), std::runtime_error);

  Partition good(3, 2);
  good.assign(0, 0);
  good.assign(1, 0);
  good.assign(2, 1);
  EXPECT_NO_THROW(good.validate(arch));
}

TEST(Partition, NeuronsOnCrossbar) {
  Partition p(5, 2);
  p.assign(0, 1);
  p.assign(2, 1);
  p.assign(4, 0);
  EXPECT_EQ(p.neurons_on(1), (std::vector<std::uint32_t>{0, 2}));
  EXPECT_EQ(p.neurons_on(0), (std::vector<std::uint32_t>{4}));
}

TEST(Partition, Equality) {
  Partition a(2, 2);
  Partition b(2, 2);
  a.assign(0, 0);
  b.assign(0, 0);
  EXPECT_EQ(a, b);
  b.assign(1, 1);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace snnmap::core
