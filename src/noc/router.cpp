#include "noc/router.hpp"

#include <stdexcept>

namespace snnmap::noc {

Router::Router(RouterId id, std::uint32_t port_count,
               std::uint32_t buffer_depth)
    : id_(id), port_count_(port_count), buffer_depth_(buffer_depth) {
  if (buffer_depth_ == 0) {
    throw std::invalid_argument("Router: buffer depth must be >= 1");
  }
  if (port_count_ + 1 > 63) {
    // served_ports is a 64-bit mask; port_count+1 outputs must fit.
    throw std::invalid_argument("Router: too many ports for multicast mask");
  }
  queues_.resize(port_count_ + 1);
  rr_.assign(port_count_ + 1, 0);
}

bool Router::can_accept(std::uint32_t port, std::size_t staged) const {
  if (port == port_count_) return true;  // injection queue is unbounded
  return queues_.at(port).size() + staged < buffer_depth_;
}

bool Router::all_queues_empty() const noexcept {
  for (const auto& q : queues_) {
    if (!q.empty()) return false;
  }
  return true;
}

std::size_t Router::buffered_flits() const noexcept {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

}  // namespace snnmap::noc
