#include "noc/faults.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace snnmap::noc {
namespace {

void check_rate(double value, const char* name) {
  // Negated comparisons so NaN fails (parity with EnergyModel::validate).
  if (!(value >= 0.0) || !(value <= 1.0) || !std::isfinite(value)) {
    throw std::invalid_argument(std::string("FaultConfig: ") + name +
                                " must be a finite probability in [0, 1]");
  }
}

}  // namespace

bool FaultConfig::any() const noexcept {
  return link_fault_rate > 0.0 || router_fault_rate > 0.0 ||
         tile_fault_rate > 0.0 || transient_link_rate > 0.0 ||
         flit_drop_probability > 0.0 || !scheduled.empty();
}

void FaultConfig::validate() const {
  check_rate(link_fault_rate, "link_fault_rate");
  check_rate(router_fault_rate, "router_fault_rate");
  check_rate(tile_fault_rate, "tile_fault_rate");
  check_rate(transient_link_rate, "transient_link_rate");
  if (!(flit_drop_probability >= 0.0) || !(flit_drop_probability < 1.0) ||
      !std::isfinite(flit_drop_probability)) {
    throw std::invalid_argument(
        "FaultConfig: flit_drop_probability must be a finite probability in "
        "[0, 1) (a fabric dropping every flit can never deliver anything)");
  }
  const bool rated = link_fault_rate > 0.0 || router_fault_rate > 0.0 ||
                     tile_fault_rate > 0.0 || transient_link_rate > 0.0;
  if (rated && horizon_cycles == 0) {
    throw std::invalid_argument(
        "FaultConfig: horizon_cycles must be > 0 when any fault rate is > 0 "
        "(random faults need a span of virtual time to be scheduled over; "
        "the co-simulator fills this with its lockstep timeline)");
  }
  if (transient_link_rate > 0.0 && transient_duration_cycles == 0) {
    throw std::invalid_argument(
        "FaultConfig: transient_duration_cycles must be > 0 when "
        "transient_link_rate is > 0 (a zero-length outage is no fault)");
  }
}

void FaultModel::push_link_fault(std::uint32_t ga, std::uint32_t gb,
                                 std::uint64_t start,
                                 std::uint64_t duration) {
  events_.push_back({start, Change::kLinkDown, ga, gb});
  if (duration != 0) {
    const std::uint64_t end =
        start > static_cast<std::uint64_t>(-1) - duration
            ? static_cast<std::uint64_t>(-1)
            : start + duration;
    events_.push_back({end, Change::kLinkUp, ga, gb});
  }
}

void FaultModel::push_router_fault(RouterId router, std::uint64_t start,
                                   std::uint64_t duration) {
  events_.push_back({start, Change::kRouterDown, router, 0});
  if (duration != 0) {
    events_.push_back({start + duration, Change::kRouterUp, router, 0});
  }
}

void FaultModel::push_tile_fault(TileId tile, std::uint64_t start,
                                 std::uint64_t duration) {
  events_.push_back({start, Change::kTileDown, tile, 0});
  if (duration != 0) {
    events_.push_back({start + duration, Change::kTileUp, tile, 0});
  }
}

FaultModel::FaultModel(const Topology& topology, const FaultConfig& config) {
  const std::uint32_t n = topology.router_count();
  // The same flat port geometry the simulator builds: global port index =
  // port_base[r] + p.
  std::vector<std::uint32_t> port_base(n + 1, 0);
  for (RouterId r = 0; r < n; ++r) {
    port_base[r + 1] = port_base[r] + topology.port_count(r);
  }
  link_down_.assign(port_base[n], 0);
  router_down_.assign(n, 0);
  tile_down_.assign(topology.tile_count(), 0);
  router_tile_.resize(n);
  for (RouterId r = 0; r < n; ++r) {
    router_tile_[r] = topology.tile_of_router(r);
  }
  drop_probability_ = config.flit_drop_probability;

  // Category-forked streams: adding draws in one category (e.g. raising
  // link_fault_rate) never perturbs another's schedule.
  util::Rng root(config.seed);
  util::Rng link_rng = root.fork();
  util::Rng transient_rng = root.fork();
  util::Rng router_rng = root.fork();
  util::Rng tile_rng = root.fork();
  drop_rng_ = root.fork();

  // Reverse-direction global port of (r, p): the input port at the
  // neighbor through which r's flits arrive.
  const auto reverse_global = [&](RouterId r, PortId p) -> std::uint32_t {
    const RouterId nb = topology.neighbor(r, p);
    for (PortId q = 0; q < topology.port_count(nb); ++q) {
      if (topology.neighbor(nb, q) == r) return port_base[nb] + q;
    }
    throw std::logic_error("FaultModel: asymmetric topology link");
  };

  // Canonical bidirectional-link enumeration: (r, p) with r < neighbor.
  const auto for_each_link = [&](auto&& fn) {
    for (RouterId r = 0; r < n; ++r) {
      for (PortId p = 0; p < topology.port_count(r); ++p) {
        if (topology.neighbor(r, p) < r) continue;  // counted from the peer
        fn(r, p);
      }
    }
  };

  // Explicit faults first (their relative order is the caller's), then the
  // seeded random ones in canonical category order.
  for (const ScheduledFault& f : config.scheduled) {
    switch (f.kind) {
      case ScheduledFault::Kind::kLink: {
        if (f.router >= n || f.port >= topology.port_count(f.router)) {
          throw std::invalid_argument(
              "FaultModel: scheduled link fault references an out-of-range "
              "router/port");
        }
        push_link_fault(port_base[f.router] + f.port,
                        reverse_global(f.router, f.port), f.start_cycle,
                        f.duration_cycles);
        break;
      }
      case ScheduledFault::Kind::kRouter:
        if (f.router >= n) {
          throw std::invalid_argument(
              "FaultModel: scheduled router fault references an "
              "out-of-range router");
        }
        push_router_fault(f.router, f.start_cycle, f.duration_cycles);
        break;
      case ScheduledFault::Kind::kTile:
        if (f.tile >= topology.tile_count()) {
          throw std::invalid_argument(
              "FaultModel: scheduled tile fault references an out-of-range "
              "tile");
        }
        push_tile_fault(f.tile, f.start_cycle, f.duration_cycles);
        break;
    }
  }
  if (config.link_fault_rate > 0.0) {
    for_each_link([&](RouterId r, PortId p) {
      if (!link_rng.chance(config.link_fault_rate)) return;
      push_link_fault(port_base[r] + p, reverse_global(r, p),
                      link_rng.below(config.horizon_cycles), 0);
    });
  }
  if (config.transient_link_rate > 0.0) {
    for_each_link([&](RouterId r, PortId p) {
      if (!transient_rng.chance(config.transient_link_rate)) return;
      push_link_fault(port_base[r] + p, reverse_global(r, p),
                      transient_rng.below(config.horizon_cycles),
                      config.transient_duration_cycles);
    });
  }
  if (config.router_fault_rate > 0.0) {
    for (RouterId r = 0; r < n; ++r) {
      if (!router_rng.chance(config.router_fault_rate)) continue;
      push_router_fault(r, router_rng.below(config.horizon_cycles), 0);
    }
  }
  if (config.tile_fault_rate > 0.0) {
    for (TileId t = 0; t < topology.tile_count(); ++t) {
      if (!tile_rng.chance(config.tile_fault_rate)) continue;
      push_tile_fault(t, tile_rng.below(config.horizon_cycles), 0);
    }
  }

  // Stable by cycle only: same-cycle events apply in the canonical
  // generation order above, making the whole timeline a pure function of
  // (topology, config).
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) {
                     return a.cycle < b.cycle;
                   });
}

void FaultModel::advance_to(std::uint64_t now, FaultTransitions& out) {
  while (next_event_ < events_.size() && events_[next_event_].cycle <= now) {
    const Event& e = events_[next_event_++];
    out.changed = true;
    switch (e.change) {
      case Change::kLinkDown:
        ++link_down_[e.a];
        ++link_down_[e.b];
        ++out.link_downs;
        break;
      case Change::kLinkUp:
        --link_down_[e.a];
        --link_down_[e.b];
        ++out.link_ups;
        break;
      case Change::kRouterDown: {
        ++out.router_downs;
        if (router_down_[e.a]++ == 0) {
          out.died_routers.push_back(e.a);
          // The attached tile goes silent with its router.
          const TileId tile = router_tile_[e.a];
          if (tile != kNoRouter && tile_down_[tile]++ == 0) {
            out.died_tiles.push_back(tile);
          }
        } else {
          const TileId tile = router_tile_[e.a];
          if (tile != kNoRouter) ++tile_down_[tile];
        }
        break;
      }
      case Change::kRouterUp: {
        --router_down_[e.a];
        const TileId tile = router_tile_[e.a];
        if (tile != kNoRouter) --tile_down_[tile];
        break;
      }
      case Change::kTileDown:
        ++out.tile_downs;
        if (tile_down_[e.a]++ == 0) {
          out.died_tiles.push_back(static_cast<TileId>(e.a));
        }
        break;
      case Change::kTileUp:
        --tile_down_[e.a];
        break;
    }
  }
}

}  // namespace snnmap::noc
