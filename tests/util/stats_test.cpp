#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace snnmap::util {
namespace {

TEST(Accumulator, EmptyDefaults) {
  Accumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(5.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_EQ(acc.mean(), 5.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.min(), 5.0);
  EXPECT_EQ(acc.max(), 5.0);
}

TEST(Accumulator, KnownMoments) {
  Accumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 4.571428571, 1e-9);  // unbiased
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Accumulator, MergeWithEmptyIsIdentity) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Percentile, EmptyIsZero) { EXPECT_EQ(percentile({}, 50.0), 0.0); }

TEST(Percentile, MedianAndExtremes) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75.0), 7.5);
}

TEST(Percentile, ClampsOutOfRangeP) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 150.0), 2.0);
}

TEST(MeanStddev, Helpers) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_NEAR(stddev_of({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.13809,
              1e-4);
  EXPECT_DOUBLE_EQ(stddev_of({1.0}), 0.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(2.5);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ClampsOutliersIntoEdgeBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  h.add(10.0);  // exactly hi -> last bin
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 10.0);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0);
  h.add(1.5);
  h.add(3.0);
  const std::string render = h.render(10);
  EXPECT_NE(render.find('#'), std::string::npos);
  EXPECT_NE(render.find('2'), std::string::npos);
}

}  // namespace
}  // namespace snnmap::util
