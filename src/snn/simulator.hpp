// Clock-driven SNN simulator (the CARLsim substitute).
//
// Fixed-step (default 1 ms) simulation of a Network: Poisson source groups
// draw stochastic spikes, LIF/Izhikevich groups integrate synaptic currents,
// spikes propagate through a delay ring buffer, and optional pair-based STDP
// adapts plastic synapses in place.  The output — a spike train per neuron —
// is exactly what the mapping flow needs to build the spike-annotated graph
// of Sec. III.
#pragma once

#include <cstdint>
#include <vector>

#include "snn/network.hpp"
#include "snn/spike_train.hpp"
#include "snn/stdp.hpp"
#include "util/rng.hpp"

namespace snnmap::snn {

struct SimulationConfig {
  double dt_ms = 1.0;          ///< integration step
  TimeMs duration_ms = 1000.0; ///< simulated time for run()
  std::uint64_t seed = 1;      ///< Poisson / jitter stream seed
  bool enable_stdp = false;    ///< apply STDP to plastic synapses
  StdpParams stdp;
  /// Synaptic current time constant.  0 (default) = delta synapses: an
  /// arriving spike's charge acts for exactly one step (CARLsim's CUBA
  /// current mode with instantaneous decay).  > 0 = exponential synapses:
  /// arriving charge decays as exp(-dt/tau), giving temporal summation
  /// across steps.
  double syn_tau_ms = 0.0;
};

struct SimulationResult {
  std::vector<SpikeTrain> spikes;  ///< per-neuron spike times (ms, sorted)
  TimeMs duration_ms = 0.0;
  std::uint64_t total_spikes = 0;

  /// Population mean firing rate in Hz.
  double mean_rate_hz() const noexcept;
};

/// One simulation instance; mutates the Network's weights only when STDP is
/// enabled.  The step API supports custom experiment loops; run() covers the
/// common case.
class Simulator {
 public:
  Simulator(Network& network, SimulationConfig config);

  /// Advances one dt; spikes are recorded internally.
  void step();

  /// Runs for config.duration_ms and returns the recorded trains.
  SimulationResult run();

  /// Extracts the result accumulated so far (step API).
  SimulationResult result() const;

  TimeMs now_ms() const noexcept { return now_ms_; }
  std::uint64_t total_spikes() const noexcept { return total_spikes_; }
  const std::vector<SpikeTrain>& spikes() const noexcept { return spikes_; }

  /// Injects an external current into a neuron for the next step only
  /// (used by apps that drive networks with analog stimuli).
  void inject_current(NeuronId neuron, double current);

 private:
  void deliver_spike(NeuronId neuron);
  void apply_stdp_on_pre(std::uint32_t synapse_index);
  void apply_stdp_on_post(NeuronId post);

  Network& network_;
  SimulationConfig config_;
  util::Rng rng_;

  std::vector<NeuronState> states_;
  std::vector<NeuronModel> model_of_;   // flattened per-neuron model
  std::vector<std::uint32_t> group_of_; // flattened per-neuron group id

  // Delay ring buffer: pending_[slot][neuron] = current arriving at that step.
  std::vector<std::vector<double>> pending_;
  std::size_t slot_ = 0;
  std::vector<double> external_;  // one-step external injections
  std::vector<double> syn_current_;  // exponential-synapse state (tau > 0)
  double syn_decay_ = 0.0;           // exp(-dt / tau), 0 when disabled

  // STDP bookkeeping.
  std::vector<double> last_spike_ms_;          // per neuron, -1 = never
  std::vector<std::uint32_t> plastic_fanin_offsets_;
  std::vector<std::uint32_t> plastic_fanin_synapses_;

  std::vector<SpikeTrain> spikes_;
  TimeMs now_ms_ = 0.0;
  std::uint64_t step_count_ = 0;
  std::uint64_t total_spikes_ = 0;
};

}  // namespace snnmap::snn
