// Clock-driven SNN simulator (the CARLsim substitute).
//
// Fixed-step (default 1 ms) simulation of a Network: Poisson source groups
// draw stochastic spikes, LIF/Izhikevich groups integrate synaptic currents,
// spikes propagate through a delay ring buffer, and optional pair-based STDP
// adapts plastic synapses in place.  The output — a spike train per neuron —
// is exactly what the mapping flow needs to build the spike-annotated graph
// of Sec. III.
//
// The hot path is a packed structure-of-arrays engine, bit-identical to the
// original per-neuron/AoS implementation (pinned by tests/snn/golden_*):
//
//  * step() runs one tight loop per group over its contiguous [first, last)
//    id range, with model parameters, the cached per-step Poisson spike
//    probability, and the rate_fn branch hoisted out of the inner loop;
//  * spike delivery walks a per-neuron CSR of (post, weight, delay) records
//    in fan-out order instead of double-indirecting through the Network's
//    synapse list, and accumulates into one flat ring x neuron_count pending
//    buffer;
//  * spikes are recorded into a flat (neuron, time) event log and
//    counting-sorted into per-neuron trains only when a result is requested,
//    so nothing allocates per spike in the steady state.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "snn/network.hpp"
#include "snn/spike_train.hpp"
#include "snn/stdp.hpp"
#include "util/rng.hpp"

namespace snnmap::snn {

struct SimulationConfig {
  double dt_ms = 1.0;          ///< integration step
  TimeMs duration_ms = 1000.0; ///< simulated time for run()
  std::uint64_t seed = 1;      ///< Poisson / jitter stream seed
  bool enable_stdp = false;    ///< apply STDP to plastic synapses
  StdpParams stdp;
  /// Synaptic current time constant.  0 (default) = delta synapses: an
  /// arriving spike's charge acts for exactly one step (CARLsim's CUBA
  /// current mode with instantaneous decay).  > 0 = exponential synapses:
  /// arriving charge decays as exp(-dt/tau), giving temporal summation
  /// across steps.
  double syn_tau_ms = 0.0;
};

struct SimulationResult {
  std::vector<SpikeTrain> spikes;  ///< per-neuron spike times (ms, sorted)
  TimeMs duration_ms = 0.0;
  std::uint64_t total_spikes = 0;

  /// Population mean firing rate in Hz.
  double mean_rate_hz() const noexcept;
};

/// Whole steps covering config.duration_ms: ceil(duration / dt) with a
/// relative tolerance so an exactly commensurate ratio that lands a hair
/// above an integer (FP division noise, at any magnitude) doesn't gain a
/// step.  The one step-count rule — Simulator::run() and the co-simulator's
/// lockstep loop both use it, so their timelines can never drift.  Returns
/// 0 for non-finite/negative ratios (the Simulator constructor rejects
/// such configs with a real error).
std::uint64_t simulation_step_count(const SimulationConfig& config) noexcept;

/// One simulation instance; mutates the Network's weights only when STDP is
/// enabled.  The step API supports custom experiment loops; run() covers the
/// common case.
///
/// Construction is the snapshot point: topology, weights, and delays are
/// packed into the engine's SoA arrays when the Simulator is built, and
/// Network edits made after that (mutable_synapses(), add_synapse) are not
/// seen by an already-running instance — build a fresh Simulator to pick
/// them up.  STDP weight updates flow the other way: the engine writes them
/// through to the Network, so the synapse list always shows the live
/// weights.
class Simulator {
 public:
  /// Throws std::invalid_argument when the config is unusable: dt_ms must be
  /// a finite positive number and duration_ms finite and >= 0.
  Simulator(Network& network, SimulationConfig config);

  /// Advances one dt; spikes are recorded internally.
  void step();

  /// Runs for config.duration_ms — enough whole steps to cover the duration
  /// (ceil(duration / dt), so a non-commensurate dt never under-runs) — and
  /// returns the recorded trains.
  SimulationResult run();

  /// Extracts the result accumulated so far (step API).
  SimulationResult result() const;

  TimeMs now_ms() const noexcept { return now_ms_; }
  std::uint64_t total_spikes() const noexcept { return total_spikes_; }
  /// Per-neuron trains materialized from the internal event log.
  std::vector<SpikeTrain> spikes() const;

  /// Injects an external current into a neuron for the next step only
  /// (used by apps that drive networks with analog stimuli).
  void inject_current(NeuronId neuron, double current);

  // --- co-simulation seam (src/cosim/) -----------------------------------
  //
  // The closed-loop co-simulator owns spike *transport*: it marks the
  // cross-crossbar ("cut") synapses, steps the engine with deliveries
  // deferred, ships the step's spikes over the NoC, and then flushes the
  // step with a per-cut-record verdict:
  //
  //   sim.cut_remote_synapses(mask);            // before any step (and
  //                                             // again after a mid-run
  //                                             // remap, between steps)
  //   loop: sim.step_deferred();
  //         ... advance the NoC one window; apply late arrivals through
  //             sim.inject_remote(...) ...
  //         sim.flush_deferred(verdicts);       // finishes the step
  //
  // Deferral is exact: deliveries only touch future ring slots (delay >= 1)
  // and never feed back into the current step's integration, so replaying
  // every spike's delivery/STDP sequence at flush time — in the same
  // (neuron, fan-out slot) order the inline path uses — produces the same
  // bits.  With every verdict kDeliver, step_deferred() + flush_deferred()
  // is therefore bit-identical to step() (pinned by the cosim test suite).

  /// Per-cut-record transport verdict consumed by flush_deferred().
  enum class RemoteVerdict : std::uint8_t {
    kDeliver,   ///< packet arrived within its emission window: local timing
    kWithhold,  ///< in flight or dropped: the co-simulator handles it later
  };

  /// Marks synapses (by Network synapse index) whose deliveries the
  /// co-simulator carries over the interconnect.  Callable before the first
  /// step and again between closed steps (the fault path re-cuts after a
  /// mid-run remap); throws std::logic_error with a deferred step open,
  /// and std::invalid_argument on a size mismatch or when a
  /// marked synapse is plastic while STDP is enabled (a cut synapse's
  /// weight lives on the remote crossbar, out of reach of the local
  /// pair-based STDP bookkeeping; with STDP off the flag is inert and the
  /// cut is safe).
  void cut_remote_synapses(const std::vector<std::uint8_t>& cut);

  /// Like step(), but records the step's spikes without delivering them and
  /// leaves the step open until flush_deferred().
  void step_deferred();

  /// Neurons that fired during the open deferred step, in firing order
  /// (ascending id — groups are laid out contiguously).
  const std::vector<NeuronId>& deferred_spikes() const noexcept {
    return deferred_spikes_;
  }

  /// Number of cut fan-out records across the open step's spikes — the
  /// verdict count flush_deferred() expects.
  std::size_t deferred_remote_records() const noexcept {
    return pending_remote_records_;
  }

  /// An externally-timed weighted arrival (a packet decoded by this
  /// crossbar during the open step): `post` receives `weight` exactly
  /// `delay_steps` steps after the open step — the timing a local spike in
  /// this step would have.  Only legal between step_deferred() and
  /// flush_deferred(); delay_steps must be within the engine's delay ring
  /// (>= 1, <= the max synaptic delay).
  void inject_remote(NeuronId post, double weight, std::uint16_t delay_steps);

  /// Closes the open deferred step: replays every spike's delivery/STDP
  /// sequence in the inline order, consuming one verdict per cut record
  /// (enumerated spike order, then fan-out slot order), then performs the
  /// end-of-step bookkeeping.  Throws when no step is open or the verdict
  /// count mismatches deferred_remote_records().
  void flush_deferred(const std::vector<RemoteVerdict>& verdicts);

 private:
  /// Everything step() needs for one group, hoisted out of the inner loop.
  /// Self-contained (the rate_fn is copied, not pointed at), so later group
  /// additions to the Network can never invalidate a running engine.
  struct GroupRun {
    NeuronId first = 0;
    NeuronId last = 0;  // one past end
    NeuronModel model = NeuronModel::kLif;
    LifParams lif;
    IzhikevichParams izh;
    double step_spike_prob = 0.0;  ///< Poisson P(spike per step), constant rate
    std::function<double(std::uint32_t, double)> rate_fn;  ///< may be null
  };

  void on_spike(NeuronId neuron);
  /// Integration + spiking shared by step() and step_deferred(); a deferred
  /// step records spike ids instead of calling on_spike and leaves the
  /// end-of-step bookkeeping to flush_deferred().
  template <bool kDeferred>
  void step_impl();
  /// Clears this step's consumed inputs and advances the ring/clock (the
  /// tail of the inline step()).
  void finish_step();
  /// on_spike with per-cut-record verdicts (flush replay path).
  void replay_spike(NeuronId neuron, const RemoteVerdict* verdicts,
                    std::size_t& cursor);
  /// General-order delivery that skips withheld cut records; addition order
  /// matches deliver_spike/deliver_spike_plastic bit for bit.
  void deliver_spike_filtered(NeuronId neuron, const RemoteVerdict* verdicts,
                              std::size_t& cursor);
  void deliver_spike(NeuronId neuron);
  void deliver_spike_plastic(NeuronId neuron);
  void apply_stdp_on_pre(std::uint32_t slot);
  void apply_stdp_on_post(NeuronId post);

  Network& network_;
  SimulationConfig config_;
  util::Rng rng_;

  std::uint32_t neuron_count_ = 0;
  std::vector<GroupRun> group_runs_;
  std::vector<NeuronState> states_;

  // Packed fan-out CSR in Network fan-out order (slot k = k-th outgoing
  // synapse): csr_offsets_[pre] .. csr_offsets_[pre + 1] index the arrays.
  std::vector<std::uint32_t> csr_offsets_;
  std::vector<NeuronId> csr_post_;
  std::vector<float> csr_weight_;         ///< live weights (STDP writes here)
  std::vector<std::uint16_t> csr_delay_;
  std::vector<std::uint8_t> csr_plastic_;
  std::vector<std::uint32_t> csr_synapse_;  ///< original synapse index

  // Per-neuron fan-out shape, classified once at construction.  Most
  // connection patterns produce a single delay per projection (and
  // connect_full / one-to-one / gaussian_2d produce consecutive post ids),
  // so delivery usually skips the per-record ring arithmetic — and for
  // contiguous posts degenerates into a sequential accumulate.
  enum : std::uint8_t {
    kGeneralFanout = 0,     ///< mixed delays: per-record ring slot
    kUniformFanout = 1,     ///< one delay: hoisted ring slot, scattered posts
    kContiguousFanout = 2,  ///< one delay + consecutive posts: linear run
  };
  std::vector<std::uint8_t> fan_kind_;
  std::vector<std::uint16_t> fan_delay_;  ///< valid unless kGeneralFanout
  /// 1 if the neuron has any plastic outgoing synapse: only those need the
  /// per-record plastic checks when STDP is enabled.
  std::vector<std::uint8_t> fan_has_plastic_;

  // Co-simulation seam state (inert unless cut_remote_synapses /
  // step_deferred are used).
  std::vector<std::uint8_t> csr_cut_;      ///< per fan-out slot, 1 = cut
  std::vector<std::uint32_t> cut_count_;   ///< cut records per pre neuron
  std::vector<std::uint8_t> fan_has_cut_;  ///< 1 = any cut outgoing record
  std::vector<NeuronId> deferred_spikes_;
  std::size_t pending_remote_records_ = 0;
  bool in_deferred_step_ = false;

  // Delay ring buffer, one flat ring x neuron_count block:
  // pending_[slot * neuron_count_ + neuron] = current arriving at that step.
  std::vector<double> pending_;
  std::size_t ring_ = 1;
  std::size_t slot_ = 0;
  std::vector<double> external_;  // one-step external injections
  std::vector<double> syn_current_;  // exponential-synapse state (tau > 0)
  double syn_decay_ = 0.0;           // exp(-dt / tau), 0 when disabled

  // STDP bookkeeping.
  std::vector<double> last_spike_ms_;  // per neuron, -1 = never
  // Plastic fan-in per post neuron: pre id + fan-out CSR slot of the synapse.
  std::vector<std::uint32_t> plastic_fanin_offsets_;
  std::vector<NeuronId> plastic_fanin_pre_;
  std::vector<std::uint32_t> plastic_fanin_slot_;

  std::vector<SpikeEvent> events_;  ///< flat spike log, time order
  TimeMs now_ms_ = 0.0;
  std::uint64_t step_count_ = 0;
  std::uint64_t total_spikes_ = 0;
};

}  // namespace snnmap::snn
