#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace snnmap::util {
namespace {

TEST(Rng, IsDeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Rng, ZeroSeedStillProducesEntropy) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r.next());
  EXPECT_GT(seen.size(), 95u);
}

TEST(Rng, UniformIsInHalfOpenUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysBelowBound) {
  Rng r(13);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowZeroIsZero) {
  Rng r(13);
  EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, BelowOneIsZero) {
  Rng r(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng r(17);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.below(10)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, n / 10.0 * 0.1);
  }
}

TEST(Rng, RangeIsInclusive) {
  Rng r(19);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = r.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, RangeDegenerateReturnsLo) {
  Rng r(19);
  EXPECT_EQ(r.range(5, 5), 5);
  EXPECT_EQ(r.range(5, 3), 5);
}

TEST(Rng, ChanceEdgeCases) {
  Rng r(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    EXPECT_FALSE(r.chance(-0.5));
    EXPECT_TRUE(r.chance(1.5));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng r(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(31);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng r(37);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng r(41);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ExponentialNonPositiveRateIsZero) {
  Rng r(41);
  EXPECT_EQ(r.exponential(0.0), 0.0);
  EXPECT_EQ(r.exponential(-1.0), 0.0);
}

TEST(Rng, PoissonSmallMean) {
  Rng r(43);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng r(47);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng r(47);
  EXPECT_EQ(r.poisson(0.0), 0u);
  EXPECT_EQ(r.poisson(-2.0), 0u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(53);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng r(59);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  const auto original = v;
  r.shuffle(v);
  EXPECT_NE(v, original);  // probability of identity is ~1/100!
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(61);
  Rng child = parent.fork();
  // The child stream should not equal the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 32; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace snnmap::util
