#include "obs/export.hpp"

#include <array>
#include <map>
#include <ostream>
#include <set>
#include <utility>

namespace snnmap::obs {
namespace {

/// Synthetic pid offset for the protocol-level ("cosim") track set — one
/// past every real chip id so the lanes sort after the fabric.
constexpr std::uint32_t kCosimPidOffset = 1;

bool is_protocol_event(TraceEventType t) noexcept {
  return t == TraceEventType::kAerRetry ||
         t == TraceEventType::kRemapTrigger ||
         t == TraceEventType::kDvfsDecision;
}

bool is_tile_event(TraceEventType t) noexcept {
  return t == TraceEventType::kFaultTileDown ||
         t == TraceEventType::kFaultTileUp;
}

/// Per-type names for the a / b / c payload words (nullptr = omit).
struct ArgKeys {
  const char* a;
  const char* b;
  const char* c;
};

ArgKeys arg_keys(TraceEventType t) noexcept {
  switch (t) {
    case TraceEventType::kFlitInject:
      return {"router", "copies", "neuron"};
    case TraceEventType::kFlitHop:
    case TraceEventType::kFlitDrop:
      return {"router", "port", "neuron"};
    case TraceEventType::kFlitPark:
      return {"router", "port", "ready_cycle"};
    case TraceEventType::kFlitDeliver:
      return {"router", "tile", "neuron"};
    case TraceEventType::kFaultLinkDown:
    case TraceEventType::kFaultLinkUp:
      return {"router", "port", nullptr};
    case TraceEventType::kFaultRouterDown:
    case TraceEventType::kFaultRouterUp:
      return {"router", nullptr, nullptr};
    case TraceEventType::kFaultTileDown:
    case TraceEventType::kFaultTileUp:
      return {"tile", nullptr, nullptr};
    case TraceEventType::kAerRetry:
      return {"neuron", "tile", "attempt"};
    case TraceEventType::kRemapTrigger:
      return {"dead_crossbars", "migrated", "stranded"};
    case TraceEventType::kDvfsDecision:
      return {"window_cycles", "nominal_cycles", "step"};
  }
  return {"a", "b", "c"};
}

struct Track {
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
};

Track track_of(const TraceEvent& e, const TraceTrackInfo& info,
               std::uint32_t cosim_pid) {
  if (is_protocol_event(e.type)) {
    return {cosim_pid, static_cast<std::uint32_t>(e.type)};
  }
  std::uint32_t router = e.a;
  if (is_tile_event(e.type)) {
    router = e.a < info.tile_router.size() ? info.tile_router[e.a] : 0;
  }
  const std::uint32_t chip =
      router < info.router_chip.size() ? info.router_chip[router] : 0;
  return {chip, router};
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceEvent>& events,
                        const TraceTrackInfo& info) {
  std::uint32_t max_chip = 0;
  for (const std::uint32_t chip : info.router_chip) {
    max_chip = std::max(max_chip, chip);
  }
  const std::uint32_t cosim_pid = max_chip + kCosimPidOffset;

  // One metadata record per used process / track so Perfetto labels the
  // lanes; collected first so they lead the stream.
  std::set<std::uint32_t> pids;
  std::map<std::pair<std::uint32_t, std::uint32_t>, TraceEventType> tids;
  for (const TraceEvent& e : events) {
    const Track t = track_of(e, info, cosim_pid);
    pids.insert(t.pid);
    tids.emplace(std::make_pair(t.pid, t.tid), e.type);
  }

  os << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  for (const std::uint32_t pid : pids) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"";
    if (pid == cosim_pid) {
      os << "cosim";
    } else {
      os << "chip " << pid;
    }
    os << "\"}}";
  }
  for (const auto& [key, type] : tids) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << key.first
       << ",\"tid\":" << key.second << ",\"args\":{\"name\":\"";
    if (key.first == cosim_pid) {
      os << to_string(type);
    } else {
      os << "router " << key.second;
    }
    os << "\"}}";
  }
  for (const TraceEvent& e : events) {
    const Track t = track_of(e, info, cosim_pid);
    const ArgKeys keys = arg_keys(e.type);
    sep();
    os << "{\"name\":\"" << to_string(e.type)
       << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << e.cycle
       << ",\"pid\":" << t.pid << ",\"tid\":" << t.tid << ",\"args\":{";
    bool first_arg = true;
    const auto arg = [&](const char* key, std::uint64_t value) {
      if (key == nullptr) return;
      if (!first_arg) os << ",";
      first_arg = false;
      os << "\"" << key << "\":" << value;
    };
    arg(keys.a, e.a);
    arg(keys.b, e.b);
    arg(keys.c, e.c);
    os << "}}";
  }
  os << "\n]}\n";
}

void write_trace_csv(std::ostream& os,
                     const std::vector<TraceEvent>& events) {
  os << "cycle,type,a,b,c\n";
  for (const TraceEvent& e : events) {
    os << e.cycle << "," << to_string(e.type) << "," << e.a << "," << e.b
       << "," << e.c << "\n";
  }
}

}  // namespace snnmap::obs
