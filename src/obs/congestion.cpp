#include "obs/congestion.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace snnmap::obs {

void MonitorConfig::validate() const {
  if (!(ewma_alpha > 0.0) || !(ewma_alpha <= 1.0)) {
    throw std::invalid_argument(
        "MonitorConfig: ewma_alpha must be in (0, 1] (0 would never update "
        "the average; NaN compares false here too)");
  }
  if (!(hot_occupancy >= 0.0) || !std::isfinite(hot_occupancy)) {
    throw std::invalid_argument(
        "MonitorConfig: hot_occupancy must be finite and >= 0 flits/cycle");
  }
  if (enabled && persistence_windows == 0) {
    throw std::invalid_argument(
        "MonitorConfig: persistence_windows must be >= 1 when the monitor "
        "is enabled (a zero-window persistence test is always true)");
  }
}

CongestionMonitor::CongestionMonitor(std::size_t link_count,
                                     const MonitorConfig& config)
    : config_(config),
      ewma_(link_count, 0.0),
      streak_(link_count, 0),
      ever_hot_(link_count, 0) {
  config_.validate();
}

void CongestionMonitor::observe_window(
    const std::vector<std::uint64_t>& deltas, std::uint64_t span_cycles) {
  if (deltas.size() != ewma_.size()) {
    throw std::invalid_argument(
        "CongestionMonitor: delta count does not match the tracked links");
  }
  if (span_cycles == 0) return;
  ++windows_;
  const double span = static_cast<double>(span_cycles);
  const double alpha = config_.ewma_alpha;
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    const double occ = static_cast<double>(deltas[i]) / span;
    ewma_[i] = alpha * occ + (1.0 - alpha) * ewma_[i];
    if (occ >= config_.hot_occupancy) {
      ++streak_[i];
      ever_hot_[i] = 1;
    } else {
      streak_[i] = 0;
    }
  }
}

CongestionReport CongestionMonitor::report() const {
  CongestionReport r;
  r.monitored = true;
  r.windows_observed = windows_;
  r.links_tracked = static_cast<std::uint32_t>(ewma_.size());
  for (std::size_t i = 0; i < ewma_.size(); ++i) {
    r.max_ewma_occupancy = std::max(r.max_ewma_occupancy, ewma_[i]);
    if (ever_hot_[i]) ++r.links_ever_hot;
    if (streak_[i] >= config_.persistence_windows) {
      ++r.hot_links;
      HotLink h;
      h.link = static_cast<std::uint32_t>(i);
      h.ewma_occupancy = ewma_[i];
      h.hot_streak = streak_[i];
      r.hot.push_back(h);
    }
  }
  return r;
}

}  // namespace snnmap::obs
