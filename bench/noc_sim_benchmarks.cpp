// BM_NocSimulator: Google-benchmark suite for the NoC simulator hot path.
//
// Run via scripts/bench.sh, which writes BENCH_noc.json so the perf
// trajectory of the cycle loop is tracked PR over PR.  The headline numbers
// are simulated packets/sec (items/sec) and simulated cycles/sec
// (cycles_per_sec counter) on:
//
//  * the ablation_interconnect mesh workload (HW application mapped onto a
//    mesh at equal crossbar resources, PACMAN partition so the traffic is
//    deterministic and partitioner-noise-free),
//  * the ablation_routing right-column hotspot (adaptive routing + selection
//    under heavy backpressure),
//  * a CxQuad-style tree multicast workload.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "core/framework.hpp"
#include "core/pacman.hpp"
#include "hw/architecture.hpp"
#include "noc/simulator.hpp"
#include "noc/traffic_patterns.hpp"
#include "util/rng.hpp"

namespace {

using namespace snnmap;

struct NocWorkload {
  noc::Topology topology;
  noc::NocConfig config;
  std::vector<noc::SpikePacketEvent> traffic;
};

/// The ablation_interconnect mesh leg with the stochastic partitioner
/// swapped for deterministic PACMAN: same app, same equal-crossbar mesh,
/// same traffic builder.
NocWorkload ablation_mesh_workload() {
  const snn::SnnGraph graph = apps::build_app("HW", /*seed=*/42);
  const std::uint32_t crossbar =
      bench::crossbar_size_for(graph.neuron_count(), 8);
  hw::Architecture arch = hw::Architecture::sized_for(
      graph.neuron_count(), crossbar, hw::InterconnectKind::kMesh);
  const core::Partition partition = core::pacman_partition(graph, arch);
  noc::Topology topology = noc::Topology::for_architecture(arch);
  const core::Placement placement =
      core::identity_placement(arch.crossbar_count, topology);
  auto traffic = core::build_traffic(graph, partition, placement,
                                     arch.cycles_per_ms,
                                     /*jitter_cycles=*/32);
  return {std::move(topology), noc::NocConfig{}, std::move(traffic)};
}

/// The ablation_routing hotspot trace (shared generator, see
/// noc/traffic_patterns.hpp): left columns of a 4x4 mesh stream
/// single-destination packets at the two right-column sinks.
NocWorkload hotspot_workload(noc::MeshRouting routing,
                             noc::SelectionStrategy selection) {
  noc::Topology topology = noc::Topology::mesh(4, 4);
  topology.set_mesh_routing(routing);
  noc::NocConfig config;
  config.buffer_depth = 2;
  config.selection = selection;
  return {std::move(topology), config,
          noc::patterns::mesh_hotspot_traffic(/*seed=*/7, /*packets=*/3000)};
}

/// Random multicast bursts on a CxQuad-style 16-leaf tree.  This generator
/// predates traffic_patterns.hpp and draws a fixed 4 destination attempts
/// per packet (vs the shared generator's random fan-out); it stays as-is so
/// the BENCH_noc.json tree trajectory remains comparable to the recorded
/// pre-refactor baseline.
NocWorkload tree_multicast_workload() {
  util::Rng rng(11);
  std::vector<noc::SpikePacketEvent> traffic;
  for (int i = 0; i < 4000; ++i) {
    noc::SpikePacketEvent ev;
    ev.emit_cycle = static_cast<std::uint64_t>(i / 4);
    ev.emit_step = ev.emit_cycle / 8;
    ev.source_neuron = static_cast<std::uint32_t>(rng.below(128));
    ev.source_tile = static_cast<noc::TileId>(rng.below(16));
    for (std::uint32_t k = 0; k < 4; ++k) {
      const auto dest = static_cast<noc::TileId>(rng.below(16));
      if (dest == ev.source_tile) continue;
      bool seen = false;
      for (const noc::TileId have : ev.dest_tiles) seen = seen || have == dest;
      if (!seen) ev.dest_tiles.push_back(dest);
    }
    if (ev.dest_tiles.empty()) continue;
    std::sort(ev.dest_tiles.begin(), ev.dest_tiles.end());
    traffic.push_back(std::move(ev));
  }
  return {noc::Topology::tree(16, 4), noc::NocConfig{}, std::move(traffic)};
}

void run_workload(benchmark::State& state, const NocWorkload& workload) {
  std::uint64_t cycles = 0;
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    noc::NocSimulator sim(workload.topology, workload.config);
    const auto result = sim.run(workload.traffic);
    benchmark::DoNotOptimize(result.stats.copies_delivered);
    cycles += result.stats.duration_cycles;
    delivered += result.stats.copies_delivered;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.traffic.size()));
  state.counters["cycles_per_sec"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["delivered_per_sec"] = benchmark::Counter(
      static_cast<double>(delivered), benchmark::Counter::kIsRate);
}

void BM_NocSimulator_AblationMesh(benchmark::State& state) {
  static const NocWorkload workload = ablation_mesh_workload();
  run_workload(state, workload);
}
BENCHMARK(BM_NocSimulator_AblationMesh);

void BM_NocSimulator_AblationMeshStreaming(benchmark::State& state) {
  // Same workload with collect_delivered = false: aggregate NocStats only,
  // no per-copy DeliveredSpike materialization and no log-derived metrics.
  static const NocWorkload workload = [] {
    NocWorkload w = ablation_mesh_workload();
    w.config.collect_delivered = false;
    return w;
  }();
  run_workload(state, workload);
}
BENCHMARK(BM_NocSimulator_AblationMeshStreaming);

void BM_NocSimulator_MeshHotspotAdaptive(benchmark::State& state) {
  static const NocWorkload workload = hotspot_workload(
      noc::MeshRouting::kWestFirst, noc::SelectionStrategy::kBufferLevel);
  run_workload(state, workload);
}
BENCHMARK(BM_NocSimulator_MeshHotspotAdaptive);

void BM_NocSimulator_MeshHotspotXY(benchmark::State& state) {
  static const NocWorkload workload = hotspot_workload(
      noc::MeshRouting::kXY, noc::SelectionStrategy::kFirstCandidate);
  run_workload(state, workload);
}
BENCHMARK(BM_NocSimulator_MeshHotspotXY);

void BM_NocSimulator_TreeMulticast(benchmark::State& state) {
  static const NocWorkload workload = tree_multicast_workload();
  run_workload(state, workload);
}
BENCHMARK(BM_NocSimulator_TreeMulticast);

// --- Event-driven engine: bursty low-activity idle-skip -------------------
//
// The workload the event engine exists for: short dense multicast bursts
// separated by long silent gaps, on a two-chip mesh whose boundary SerDes
// latency parks every cross-chip flit for thousands of cycles.  The cycle
// engine (engine=0) burns one simulate_cycle() per parked cycle; the event
// engine (engine=1) charges O(1) per skipped span.  Both produce
// bit-identical results (pinned by tests/noc/session_chunking_test.cpp);
// compare the cycles_per_sec counter between the two legs — the acceptance
// bar for the event engine is >= 10x on this scenario.

NocWorkload idle_skip_workload(noc::NocEngine engine) {
  noc::Topology topology = noc::Topology::mesh(4, 4);
  topology.assign_chips(2);
  noc::NocConfig config;
  config.engine = engine;
  config.offchip_link_latency = 4000;
  util::Rng rng(21);
  std::vector<noc::SpikePacketEvent> traffic;
  std::uint32_t neuron = 0;
  for (std::uint64_t burst = 0; burst < 256; ++burst) {
    const std::uint64_t at = burst * 8192;  // ~8k-cycle near-silent gaps
    for (std::uint32_t p = 0; p < 4; ++p) {
      noc::SpikePacketEvent ev;
      ev.emit_cycle = at + p;
      ev.emit_step = burst;
      ev.source_neuron = neuron++;
      // Cross-chip multicast: tiles 0-7 are chip 0, 8-15 chip 1.
      ev.source_tile = static_cast<noc::TileId>(rng.below(8));
      ev.dest_tiles = {static_cast<noc::TileId>(8 + rng.below(8)),
                       static_cast<noc::TileId>(rng.below(8))};
      if (ev.dest_tiles[1] == ev.source_tile) ev.dest_tiles[1] = 7;
      if (ev.dest_tiles[1] == ev.source_tile) ev.dest_tiles[1] = 6;
      traffic.push_back(std::move(ev));
    }
  }
  return {std::move(topology), config, std::move(traffic)};
}

void BM_NocIdleSkip(benchmark::State& state) {
  static const NocWorkload cycle_workload =
      idle_skip_workload(noc::NocEngine::kCycle);
  static const NocWorkload event_workload =
      idle_skip_workload(noc::NocEngine::kEvent);
  run_workload(state,
               state.range(0) == 0 ? cycle_workload : event_workload);
}
BENCHMARK(BM_NocIdleSkip)
    ->ArgNames({"engine"})  // 0=cycle 1=event
    ->Arg(0)
    ->Arg(1);

// --- Routing-function vs cached-table lookups -----------------------------
//
// The simulator resolves every output port through Topology::route_entry,
// which computes via the per-topology routing function unless the opt-in
// O(R x D) cache was built.  These legs measure both sides of that trade on
// the same fabrics; footprint_bytes records what the cache costs in memory.

void run_route_lookup(benchmark::State& state, const noc::Topology& topology) {
  const std::uint32_t n = topology.router_count();
  std::uint64_t sum = 0;
  for (auto _ : state) {
    for (noc::RouterId r = 0; r < n; ++r) {
      for (noc::RouterId dst = 0; dst < n; ++dst) {
        sum += topology.route_entry(r, dst).port[0];
      }
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) *
                          static_cast<std::int64_t>(n));
  state.counters["footprint_bytes"] =
      static_cast<double>(topology.memory_footprint_bytes());
}

noc::Topology lookup_fabric(int kind, bool cached) {
  noc::Topology t = kind == 0   ? noc::Topology::mesh(8, 8)
                    : kind == 1 ? noc::Topology::dragonfly(8, 17, 2)
                                : noc::Topology::fattree(8);
  if (cached) t.build_route_cache();
  return t;
}

void BM_RouteLookup(benchmark::State& state) {
  const noc::Topology topology = lookup_fabric(
      static_cast<int>(state.range(0)), state.range(1) != 0);
  run_route_lookup(state, topology);
}
BENCHMARK(BM_RouteLookup)
    ->ArgNames({"fabric", "cached"})  // 0=mesh8x8 1=dragonfly8x17x2 2=fattree8
    ->ArgsProduct({{0, 1, 2}, {0, 1}});

// --- Large-fabric construction --------------------------------------------
//
// Building a >= 4096-router fabric must stay O(R): no R x D route table, no
// R x R distance matrix.  bytes_per_router in BENCH_noc.json is the
// regression tripwire — it must stay flat as the fabrics grow.

void run_construction(benchmark::State& state, noc::Topology (*make)()) {
  std::size_t footprint = 0;
  std::uint32_t routers = 0;
  for (auto _ : state) {
    const noc::Topology t = make();
    benchmark::DoNotOptimize(&t);
    footprint = t.memory_footprint_bytes();
    routers = t.router_count();
  }
  state.counters["routers"] = static_cast<double>(routers);
  state.counters["footprint_bytes"] = static_cast<double>(footprint);
  state.counters["bytes_per_router"] =
      static_cast<double>(footprint) / static_cast<double>(routers);
}

void BM_TopologyConstruct_Dragonfly4112(benchmark::State& state) {
  // a=16, g=257, h=16: 4112 routers, every group reachable in one global hop.
  run_construction(state,
                   +[] { return noc::Topology::dragonfly(16, 257, 16); });
}
BENCHMARK(BM_TopologyConstruct_Dragonfly4112);

void BM_TopologyConstruct_Fattree5120(benchmark::State& state) {
  // k=64: 2048 edge + 2048 aggregation + 1024 core switches.
  run_construction(state, +[] { return noc::Topology::fattree(64); });
}
BENCHMARK(BM_TopologyConstruct_Fattree5120);

}  // namespace
