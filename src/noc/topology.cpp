#include "noc/topology.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace snnmap::noc {

const char* to_string(MeshRouting routing) noexcept {
  switch (routing) {
    case MeshRouting::kXY: return "xy";
    case MeshRouting::kYX: return "yx";
    case MeshRouting::kWestFirst: return "west-first";
    case MeshRouting::kNorthLast: return "north-last";
  }
  return "?";
}

MeshRouting mesh_routing_from_string(const std::string& name) {
  if (name == "xy") return MeshRouting::kXY;
  if (name == "yx") return MeshRouting::kYX;
  if (name == "west-first") return MeshRouting::kWestFirst;
  if (name == "north-last") return MeshRouting::kNorthLast;
  throw std::invalid_argument("unknown mesh routing: '" + name + "'");
}

void Topology::set_mesh_routing(MeshRouting routing) {
  if (kind_ != hw::InterconnectKind::kMesh) {
    throw std::logic_error("Topology: routing algorithms apply to mesh only");
  }
  if (routing == routing_) return;
  routing_ = routing;
  build_tables();  // candidate sets depend on the routing algorithm
}

void Topology::check_router(RouterId router) const {
  if (router >= router_count()) {
    throw std::out_of_range("Topology: router id out of range");
  }
}

RouterId Topology::router_of_tile(TileId tile) const {
  if (tile >= tile_router_.size()) {
    throw std::out_of_range("Topology: tile id out of range");
  }
  return tile_router_[tile];
}

TileId Topology::tile_of_router(RouterId router) const {
  check_router(router);
  return router_tile_[router];
}

std::uint32_t Topology::port_count(RouterId router) const {
  check_router(router);
  return static_cast<std::uint32_t>(neighbors_[router].size());
}

RouterId Topology::neighbor(RouterId router, PortId port) const {
  check_router(router);
  if (port >= neighbors_[router].size()) {
    throw std::out_of_range("Topology: port id out of range");
  }
  return neighbors_[router][port];
}

PortId Topology::next_port(RouterId router, RouterId dst) const {
  if (router == dst) {
    check_router(router);
    return kLocalPort;
  }
  PortId candidates[3];
  const std::uint32_t count = route_candidates(router, dst, candidates);
  if (count == 0) {
    throw std::logic_error("Topology: no route candidate");
  }
  return candidates[0];
}

std::uint32_t Topology::route_candidates(RouterId router, RouterId dst,
                                         PortId out[3]) const {
  check_router(router);
  check_router(dst);
  if (router == dst) {
    out[0] = kLocalPort;
    return 1;
  }
  if (!route_table_.empty()) {
    const RouteEntry& e =
        route_table_[static_cast<std::size_t>(router) * router_count() + dst];
    for (std::uint32_t k = 0; k < e.count; ++k) out[k] = e.port[k];
    return e.count;
  }
  return compute_candidates(router, dst, out);
}

std::uint32_t Topology::compute_candidates(RouterId router, RouterId dst,
                                           PortId out[3]) const {
  if (kind_ != hw::InterconnectKind::kMesh) {
    out[0] = route_[static_cast<std::size_t>(router) * router_count() + dst];
    return 1;
  }
  const std::uint32_t w = mesh_width_;
  const auto x = static_cast<std::int32_t>(router % w);
  const auto y = static_cast<std::int32_t>(router / w);
  const std::int32_t dx = static_cast<std::int32_t>(dst % w) - x;
  const std::int32_t dy = static_cast<std::int32_t>(dst / w) - y;

  const auto port_toward = [&](RouterId next) -> PortId {
    for (PortId p = 0; p < neighbors_[router].size(); ++p) {
      if (neighbors_[router][p] == next) return p;
    }
    throw std::logic_error("Topology: next hop is not a neighbor");
  };
  // Productive neighbor routers per direction ("north" = decreasing y).
  const RouterId east = router + 1;
  const RouterId west = router - 1;
  const RouterId south = router + w;
  const RouterId north = router - w;

  std::uint32_t count = 0;
  const auto add = [&](RouterId next) { out[count++] = port_toward(next); };
  switch (routing_) {
    case MeshRouting::kXY:
      if (dx != 0) {
        add(dx > 0 ? east : west);
      } else {
        add(dy > 0 ? south : north);
      }
      break;
    case MeshRouting::kYX:
      if (dy != 0) {
        add(dy > 0 ? south : north);
      } else {
        add(dx > 0 ? east : west);
      }
      break;
    case MeshRouting::kWestFirst:
      // Westward moves must complete first; otherwise fully adaptive among
      // the remaining productive directions {E, N, S}.
      if (dx < 0) {
        add(west);
      } else {
        if (dx > 0) add(east);
        if (dy < 0) add(north);
        if (dy > 0) add(south);
      }
      break;
    case MeshRouting::kNorthLast:
      // Turns out of the north direction are forbidden, so go north only
      // when it is the sole productive direction.
      if (dx > 0) add(east);
      if (dx < 0) add(west);
      if (dy > 0) add(south);
      if (count == 0 && dy < 0) add(north);
      break;
  }
  return count;
}

std::uint32_t Topology::hop_distance(TileId a, TileId b) const {
  const RouterId r = router_of_tile(a);
  const RouterId dst = router_of_tile(b);
  // All routing algorithms are minimal (every candidate strictly decreases
  // distance), so the walked path length equals the precomputed distance.
  const std::uint32_t hops =
      dist_[static_cast<std::size_t>(r) * router_count() + dst];
  if (hops == static_cast<std::uint32_t>(-1)) {
    throw std::logic_error("Topology: destination unreachable");
  }
  return hops;
}

void Topology::build_tables() {
  const std::uint32_t n = router_count();
  // Hop distances: BFS from every destination (neighbors in port order).
  dist_.assign(static_cast<std::size_t>(n) * n,
               static_cast<std::uint32_t>(-1));
  std::deque<RouterId> queue;
  for (RouterId dst = 0; dst < n; ++dst) {
    std::uint32_t* row = dist_.data() + static_cast<std::size_t>(dst) * n;
    row[dst] = 0;
    queue.assign(1, dst);
    while (!queue.empty()) {
      const RouterId cur = queue.front();
      queue.pop_front();
      for (const RouterId nb : neighbors_[cur]) {
        if (row[nb] != static_cast<std::uint32_t>(-1)) continue;
        row[nb] = row[cur] + 1;
        queue.push_back(nb);
      }
    }
  }
  // dist_ is destination-major after the BFS above; transpose to
  // router-major (dist is symmetric on these undirected topologies, but
  // transpose anyway so the layout is correct by construction).
  for (RouterId r = 0; r < n; ++r) {
    for (RouterId dst = r + 1; dst < n; ++dst) {
      std::swap(dist_[static_cast<std::size_t>(r) * n + dst],
                dist_[static_cast<std::size_t>(dst) * n + r]);
    }
  }

  // Packed candidate table; skipped (callers fall back to
  // compute_candidates) if ports would not fit the uint8 encoding.
  std::uint32_t max_ports = 0;
  for (const auto& nb : neighbors_) {
    max_ports = std::max(max_ports, static_cast<std::uint32_t>(nb.size()));
  }
  if (max_ports >= kTableLocal) {
    route_table_.clear();
    return;
  }
  route_table_.assign(static_cast<std::size_t>(n) * n, RouteEntry{});
  for (RouterId r = 0; r < n; ++r) {
    for (RouterId dst = 0; dst < n; ++dst) {
      RouteEntry& e = route_table_[static_cast<std::size_t>(r) * n + dst];
      if (r == dst) {
        e.count = 1;
        e.port[0] = kTableLocal;
        continue;
      }
      PortId candidates[3];
      const std::uint32_t count = compute_candidates(r, dst, candidates);
      e.count = static_cast<std::uint8_t>(count);
      for (std::uint32_t k = 0; k < count; ++k) {
        e.port[k] = static_cast<std::uint8_t>(candidates[k]);
      }
    }
  }
}

Topology Topology::mesh(std::uint32_t width, std::uint32_t height) {
  if (width == 0 || height == 0) {
    throw std::invalid_argument("Topology: mesh dimensions must be > 0");
  }
  Topology t;
  t.kind_ = hw::InterconnectKind::kMesh;
  t.mesh_width_ = width;
  t.mesh_height_ = height;
  const std::uint32_t n = width * height;
  t.neighbors_.resize(n);
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      const RouterId r = y * width + x;
      auto& nb = t.neighbors_[r];
      if (x + 1 < width) nb.push_back(r + 1);
      if (x > 0) nb.push_back(r - 1);
      if (y + 1 < height) nb.push_back(r + width);
      if (y > 0) nb.push_back(r - width);
    }
  }
  t.tile_router_.resize(n);
  t.router_tile_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    t.tile_router_[i] = i;
    t.router_tile_[i] = i;
  }
  t.link_count_ = (width - 1) * height + width * (height - 1);
  t.build_tables();
  return t;
}

Topology Topology::tree(std::uint32_t tiles, std::uint32_t arity) {
  if (tiles == 0) throw std::invalid_argument("Topology: tree needs tiles");
  if (arity < 2) throw std::invalid_argument("Topology: tree arity must be >= 2");
  Topology t;
  t.kind_ = hw::InterconnectKind::kTree;
  // Level 0: one leaf router per tile; parents group `arity` children until
  // a single root remains.
  std::vector<RouterId> level;
  for (std::uint32_t i = 0; i < tiles; ++i) {
    t.neighbors_.emplace_back();
    level.push_back(i);
    t.router_tile_.push_back(i);
    t.tile_router_.push_back(i);
  }
  while (level.size() > 1) {
    std::vector<RouterId> parents;
    for (std::size_t i = 0; i < level.size(); i += arity) {
      const RouterId parent = static_cast<RouterId>(t.neighbors_.size());
      t.neighbors_.emplace_back();
      t.router_tile_.push_back(kNoRouter);
      for (std::size_t j = i; j < std::min(level.size(), i + arity); ++j) {
        t.neighbors_[parent].push_back(level[j]);
        t.neighbors_[level[j]].push_back(parent);
        ++t.link_count_;
      }
      parents.push_back(parent);
    }
    level = std::move(parents);
  }
  t.build_routes();
  t.build_tables();
  return t;
}

Topology Topology::ring(std::uint32_t tiles) {
  if (tiles == 0) throw std::invalid_argument("Topology: ring needs tiles");
  Topology t;
  t.kind_ = hw::InterconnectKind::kRing;
  t.neighbors_.resize(tiles);
  t.tile_router_.resize(tiles);
  t.router_tile_.resize(tiles);
  for (std::uint32_t i = 0; i < tiles; ++i) {
    t.tile_router_[i] = i;
    t.router_tile_[i] = i;
    if (tiles > 1) {
      t.neighbors_[i].push_back((i + 1) % tiles);             // clockwise
      if (tiles > 2) t.neighbors_[i].push_back((i + tiles - 1) % tiles);
    }
  }
  t.link_count_ = tiles > 2 ? tiles : (tiles == 2 ? 1 : 0);
  t.build_routes();
  t.build_tables();
  return t;
}

Topology Topology::for_architecture(const hw::Architecture& arch) {
  switch (arch.interconnect) {
    case hw::InterconnectKind::kMesh:
      return mesh(arch.mesh_width(), arch.mesh_height());
    case hw::InterconnectKind::kTree:
      return tree(arch.crossbar_count, arch.tree_arity);
    case hw::InterconnectKind::kRing:
      return ring(arch.crossbar_count);
  }
  throw std::logic_error("Topology: unknown interconnect kind");
}

void Topology::build_routes() {
  const std::uint32_t n = router_count();
  route_.assign(static_cast<std::size_t>(n) * n, kLocalPort);
  // BFS from every destination; route_[r][dst] = port on r toward dst.
  // Lowest-port tie-break comes from BFS visiting neighbors in port order.
  std::vector<std::uint32_t> dist(n);
  for (RouterId dst = 0; dst < n; ++dst) {
    std::fill(dist.begin(), dist.end(), static_cast<std::uint32_t>(-1));
    dist[dst] = 0;
    std::deque<RouterId> queue{dst};
    while (!queue.empty()) {
      const RouterId cur = queue.front();
      queue.pop_front();
      for (PortId p = 0; p < neighbors_[cur].size(); ++p) {
        const RouterId nb = neighbors_[cur][p];
        if (dist[nb] != static_cast<std::uint32_t>(-1)) continue;
        dist[nb] = dist[cur] + 1;
        queue.push_back(nb);
      }
    }
    for (RouterId r = 0; r < n; ++r) {
      if (r == dst) continue;
      // Choose the lowest-index port that decreases distance to dst.
      for (PortId p = 0; p < neighbors_[r].size(); ++p) {
        if (dist[neighbors_[r][p]] + 1 == dist[r]) {
          route_[static_cast<std::size_t>(r) * n + dst] = p;
          break;
        }
      }
    }
  }
}

}  // namespace snnmap::noc
