#include "util/table.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace snnmap::util {

std::string format_double(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row has " +
                                std::to_string(cells.size()) +
                                " cells, expected " +
                                std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(cells));
}

void Table::begin_row() {
  if (building_ && !pending_.empty()) {
    throw std::logic_error("Table: begin_row while a row is in progress");
  }
  pending_.clear();
  building_ = true;
}

void Table::cell(const std::string& value) {
  if (!building_) throw std::logic_error("Table: cell() before begin_row()");
  pending_.push_back(value);
  if (pending_.size() == headers_.size()) {
    rows_.push_back(std::move(pending_));
    pending_.clear();
    building_ = false;
  }
}

void Table::cell(double value, int precision) {
  cell(format_double(value, precision));
}

void Table::cell(std::int64_t value) { cell(std::to_string(value)); }

void Table::cell(std::size_t value) { cell(std::to_string(value)); }

std::string Table::to_ascii() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto rule = [&] {
    std::string s = "+";
    for (auto w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      s += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') +
           " |";
    }
    return s + "\n";
  };
  std::string out = rule() + line(headers_) + rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  return out + "\"";
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c ? "," : "") << csv_escape(headers_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c ? "," : "") << csv_escape(row[c]);
    }
    out << '\n';
  }
  return out.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Table: cannot open " + path);
  out << to_csv();
  if (!out) throw std::runtime_error("Table: write failed for " + path);
}

}  // namespace snnmap::util
