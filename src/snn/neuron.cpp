#include "snn/neuron.hpp"

#include <algorithm>

namespace snnmap::snn {

const char* to_string(NeuronModel model) noexcept {
  switch (model) {
    case NeuronModel::kLif: return "lif";
    case NeuronModel::kIzhikevich: return "izhikevich";
    case NeuronModel::kPoisson: return "poisson";
  }
  return "?";
}

NeuronState initial_state(NeuronModel model, const LifParams& lif,
                          const IzhikevichParams& izh) noexcept {
  NeuronState s;
  switch (model) {
    case NeuronModel::kLif:
      s.v = lif.v_rest;
      s.u = 0.0;
      break;
    case NeuronModel::kIzhikevich:
      s.v = izh.c;
      s.u = izh.b * izh.c;
      break;
    case NeuronModel::kPoisson:
      s.v = 0.0;
      s.u = 0.0;
      break;
  }
  return s;
}

bool step_lif(NeuronState& state, const LifParams& p, double input,
              double now_ms, double dt_ms) noexcept {
  if (now_ms < state.refractory_until_ms) {
    state.v = p.v_reset;
    return false;
  }
  // Exponential-Euler style update: dv = (-(v - v_rest) + R*I) / tau * dt.
  const double dv =
      (-(state.v - p.v_rest) + p.r_m * input) / p.tau_m_ms * dt_ms;
  state.v += dv;
  if (state.v >= p.v_thresh) {
    state.v = p.v_reset;
    state.refractory_until_ms = now_ms + p.refractory_ms;
    return true;
  }
  return false;
}

bool step_izhikevich(NeuronState& state, const IzhikevichParams& p,
                     double input, double dt_ms) noexcept {
  // Two half-steps for v (as in Izhikevich 2003 / CARLsim) keep the quadratic
  // term stable at dt = 1 ms.
  const int substeps = 2;
  const double h = dt_ms / substeps;
  bool spiked = false;
  for (int i = 0; i < substeps; ++i) {
    state.v += h * (0.04 * state.v * state.v + 5.0 * state.v + 140.0 -
                    state.u + input);
    if (state.v >= 30.0) {
      state.v = p.c;
      state.u += p.d;
      spiked = true;
    }
  }
  state.u += dt_ms * p.a * (p.b * state.v - state.u);
  // Clamp against numerical blow-up under extreme inputs; keeps the
  // simulator total even when a workload drives neurons unphysically hard.
  state.v = std::clamp(state.v, -120.0, 40.0);
  return spiked;
}

}  // namespace snnmap::snn
