#include "snn/network.hpp"

#include <cmath>
#include <stdexcept>

namespace snnmap::snn {

Network::GroupId Network::add_group(Group g) {
  if (g.size == 0) {
    throw std::invalid_argument("Network: group '" + g.name +
                                "' must have at least one neuron");
  }
  g.first = next_id_;
  next_id_ += g.size;
  groups_.push_back(std::move(g));
  return groups_.size() - 1;
}

Network::GroupId Network::add_lif_group(std::string name, std::uint32_t size,
                                        const LifParams& params) {
  Group g;
  g.name = std::move(name);
  g.size = size;
  g.model = NeuronModel::kLif;
  g.lif = params;
  return add_group(std::move(g));
}

Network::GroupId Network::add_izhikevich_group(std::string name,
                                               std::uint32_t size,
                                               const IzhikevichParams& params) {
  Group g;
  g.name = std::move(name);
  g.size = size;
  g.model = NeuronModel::kIzhikevich;
  g.izh = params;
  return add_group(std::move(g));
}

Network::GroupId Network::add_poisson_group(std::string name,
                                            std::uint32_t size,
                                            double rate_hz) {
  if (rate_hz < 0.0) {
    throw std::invalid_argument("Network: negative Poisson rate");
  }
  Group g;
  g.name = std::move(name);
  g.size = size;
  g.model = NeuronModel::kPoisson;
  g.poisson_rate_hz = rate_hz;
  return add_group(std::move(g));
}

void Network::set_rate_function(
    GroupId group, std::function<double(std::uint32_t, double)> rate_fn) {
  check_group(group);
  if (groups_[group].model != NeuronModel::kPoisson) {
    throw std::invalid_argument(
        "Network: rate function only applies to Poisson groups");
  }
  groups_[group].rate_fn = std::move(rate_fn);
}

void Network::check_group(GroupId g) const {
  if (g >= groups_.size()) {
    throw std::out_of_range("Network: invalid group id " + std::to_string(g));
  }
}

void Network::connect_full(GroupId pre, GroupId post, WeightSpec weights,
                           util::Rng& rng, std::uint16_t delay_steps,
                           bool plastic, bool allow_self) {
  check_group(pre);
  check_group(post);
  const Group& a = groups_[pre];
  const Group& b = groups_[post];
  synapses_.reserve(synapses_.size() +
                    static_cast<std::size_t>(a.size) * b.size);
  for (std::uint32_t i = 0; i < a.size; ++i) {
    for (std::uint32_t j = 0; j < b.size; ++j) {
      const NeuronId src = a.first + i;
      const NeuronId dst = b.first + j;
      if (src == dst && !allow_self) continue;
      add_synapse(src, dst, weights.sample(rng), delay_steps, plastic);
    }
  }
}

void Network::connect_random(GroupId pre, GroupId post, double probability,
                             WeightSpec weights, util::Rng& rng,
                             std::uint16_t delay_steps, bool plastic,
                             bool allow_self) {
  check_group(pre);
  check_group(post);
  if (probability < 0.0 || probability > 1.0) {
    throw std::invalid_argument("Network: connection probability not in [0,1]");
  }
  const Group& a = groups_[pre];
  const Group& b = groups_[post];
  for (std::uint32_t i = 0; i < a.size; ++i) {
    for (std::uint32_t j = 0; j < b.size; ++j) {
      const NeuronId src = a.first + i;
      const NeuronId dst = b.first + j;
      if (src == dst && !allow_self) continue;
      if (rng.chance(probability)) {
        add_synapse(src, dst, weights.sample(rng), delay_steps, plastic);
      }
    }
  }
}

void Network::connect_one_to_one(GroupId pre, GroupId post, WeightSpec weights,
                                 util::Rng& rng, std::uint16_t delay_steps,
                                 bool plastic) {
  check_group(pre);
  check_group(post);
  const Group& a = groups_[pre];
  const Group& b = groups_[post];
  if (a.size != b.size) {
    throw std::invalid_argument(
        "Network: one-to-one requires equal group sizes (" + a.name + "=" +
        std::to_string(a.size) + ", " + b.name + "=" + std::to_string(b.size) +
        ")");
  }
  for (std::uint32_t i = 0; i < a.size; ++i) {
    add_synapse(a.first + i, b.first + i, weights.sample(rng), delay_steps,
                plastic);
  }
}

void Network::connect_gaussian_2d(GroupId pre, GroupId post,
                                  std::uint32_t width, std::uint32_t height,
                                  int radius, double peak_weight, double sigma,
                                  std::uint16_t delay_steps) {
  check_group(pre);
  check_group(post);
  const Group& a = groups_[pre];
  const Group& b = groups_[post];
  const std::uint64_t pixels =
      static_cast<std::uint64_t>(width) * static_cast<std::uint64_t>(height);
  if (a.size != pixels || b.size != pixels) {
    throw std::invalid_argument(
        "Network: gaussian_2d group sizes must equal width*height");
  }
  if (radius < 0) throw std::invalid_argument("Network: negative radius");
  if (sigma <= 0.0) throw std::invalid_argument("Network: sigma must be > 0");
  const double denom = 2.0 * sigma * sigma;
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      const NeuronId dst = b.first + y * width + x;
      for (int dy = -radius; dy <= radius; ++dy) {
        for (int dx = -radius; dx <= radius; ++dx) {
          const int sx = static_cast<int>(x) + dx;
          const int sy = static_cast<int>(y) + dy;
          if (sx < 0 || sy < 0 || sx >= static_cast<int>(width) ||
              sy >= static_cast<int>(height)) {
            continue;
          }
          const NeuronId src = a.first +
                               static_cast<std::uint32_t>(sy) * width +
                               static_cast<std::uint32_t>(sx);
          const double d2 = static_cast<double>(dx * dx + dy * dy);
          add_synapse(src, dst, peak_weight * std::exp(-d2 / denom),
                      delay_steps, /*plastic=*/false);
        }
      }
    }
  }
}

void Network::add_synapse(NeuronId pre, NeuronId post, double weight,
                          std::uint16_t delay_steps, bool plastic) {
  if (pre >= next_id_ || post >= next_id_) {
    throw std::out_of_range("Network: synapse endpoint out of range");
  }
  if (delay_steps == 0) {
    throw std::invalid_argument("Network: synaptic delay must be >= 1 step");
  }
  Synapse s;
  s.pre = pre;
  s.post = post;
  s.weight = static_cast<float>(weight);
  s.delay_steps = delay_steps;
  s.plastic = plastic;
  synapses_.push_back(s);
  if (delay_steps > max_delay_steps_) max_delay_steps_ = delay_steps;
  invalidate_index();
}

Network::GroupId Network::group_of(NeuronId id) const noexcept {
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (groups_[g].contains(id)) return g;
  }
  return kNoGroup;
}

NeuronId Network::global_id(GroupId g, std::uint32_t local) const {
  check_group(g);
  if (local >= groups_[g].size) {
    throw std::out_of_range("Network: local neuron index out of range");
  }
  return groups_[g].first + local;
}

Network::GroupId Network::find_group(const std::string& name) const noexcept {
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (groups_[g].name == name) return g;
  }
  return kNoGroup;
}

void Network::build_index() const {
  fanout_offsets_.assign(neuron_count() + 1, 0);
  for (const auto& s : synapses_) ++fanout_offsets_[s.pre + 1];
  for (std::size_t i = 1; i < fanout_offsets_.size(); ++i) {
    fanout_offsets_[i] += fanout_offsets_[i - 1];
  }
  fanout_synapses_.resize(synapses_.size());
  std::vector<std::uint32_t> cursor(fanout_offsets_.begin(),
                                    fanout_offsets_.end() - 1);
  for (std::uint32_t idx = 0; idx < synapses_.size(); ++idx) {
    fanout_synapses_[cursor[synapses_[idx].pre]++] = idx;
  }
  index_built_ = true;
}

const std::vector<std::uint32_t>& Network::fanout_offsets() const {
  if (!index_built_) build_index();
  return fanout_offsets_;
}

const std::vector<std::uint32_t>& Network::fanout_synapses() const {
  if (!index_built_) build_index();
  return fanout_synapses_;
}

}  // namespace snnmap::snn
