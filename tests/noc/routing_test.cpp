// Tests for the configurable mesh routing algorithms (Noxim's "routing
// algorithm" + "selection strategy" parameters, Sec. IV).
#include <gtest/gtest.h>

#include <tuple>

#include "noc/simulator.hpp"
#include "noc/topology.hpp"
#include "util/rng.hpp"

namespace snnmap::noc {
namespace {

TEST(MeshRouting, NamesRoundTrip) {
  for (const auto r : {MeshRouting::kXY, MeshRouting::kYX,
                       MeshRouting::kWestFirst, MeshRouting::kNorthLast}) {
    EXPECT_EQ(mesh_routing_from_string(to_string(r)), r);
  }
  EXPECT_THROW(mesh_routing_from_string("zigzag"), std::invalid_argument);
}

TEST(MeshRouting, OnlyMeshAcceptsRoutingConfig) {
  auto tree = Topology::tree(4, 4);
  EXPECT_THROW(tree.set_mesh_routing(MeshRouting::kYX), std::logic_error);
  auto mesh = Topology::mesh(3, 3);
  EXPECT_NO_THROW(mesh.set_mesh_routing(MeshRouting::kYX));
  EXPECT_EQ(mesh.mesh_routing(), MeshRouting::kYX);
}

TEST(MeshRouting, XyGoesXFirstYxGoesYFirst) {
  auto mesh = Topology::mesh(3, 3);
  // 0=(0,0) -> 8=(2,2).
  mesh.set_mesh_routing(MeshRouting::kXY);
  EXPECT_EQ(mesh.neighbor(0, mesh.next_port(0, 8)), 1u);  // east
  mesh.set_mesh_routing(MeshRouting::kYX);
  EXPECT_EQ(mesh.neighbor(0, mesh.next_port(0, 8)), 3u);  // south
}

TEST(MeshRouting, DeterministicAlgorithmsHaveOneCandidate) {
  auto mesh = Topology::mesh(4, 4);
  PortId out[3];
  for (const auto r : {MeshRouting::kXY, MeshRouting::kYX}) {
    mesh.set_mesh_routing(r);
    for (RouterId a = 0; a < 16; ++a) {
      for (RouterId b = 0; b < 16; ++b) {
        if (a == b) continue;
        EXPECT_EQ(mesh.route_candidates(a, b, out), 1u);
      }
    }
  }
}

TEST(MeshRouting, WestFirstForcesWestwardMoves) {
  auto mesh = Topology::mesh(4, 4);
  mesh.set_mesh_routing(MeshRouting::kWestFirst);
  PortId out[3];
  // 5=(1,1) -> 0=(0,0): west is productive, so west is the only candidate.
  ASSERT_EQ(mesh.route_candidates(5, 0, out), 1u);
  EXPECT_EQ(mesh.neighbor(5, out[0]), 4u);
  // 5=(1,1) -> 15=(3,3): east+south both legal (adaptive).
  const auto count = mesh.route_candidates(5, 15, out);
  EXPECT_EQ(count, 2u);
  std::set<RouterId> nexts;
  for (std::uint32_t k = 0; k < count; ++k) {
    nexts.insert(mesh.neighbor(5, out[k]));
  }
  EXPECT_EQ(nexts, (std::set<RouterId>{6, 9}));
}

TEST(MeshRouting, NorthLastDefersNorthMoves) {
  auto mesh = Topology::mesh(4, 4);
  mesh.set_mesh_routing(MeshRouting::kNorthLast);
  PortId out[3];
  // 13=(1,3) -> 2=(2,0): east productive and north productive; north must
  // not be offered while east is available.
  const auto count = mesh.route_candidates(13, 2, out);
  ASSERT_EQ(count, 1u);
  EXPECT_EQ(mesh.neighbor(13, out[0]), 14u);  // east only
  // 14=(2,3) -> 2=(2,0): pure north -> north allowed as the sole option.
  ASSERT_EQ(mesh.route_candidates(14, 2, out), 1u);
  EXPECT_EQ(mesh.neighbor(14, out[0]), 10u);
}

TEST(MeshRouting, AllCandidatesAreProductive) {
  // Candidates must strictly reduce Manhattan distance for every algorithm.
  auto mesh = Topology::mesh(5, 4);
  const auto manhattan = [&](RouterId a, RouterId b) {
    const int ax = static_cast<int>(a % 5), ay = static_cast<int>(a / 5);
    const int bx = static_cast<int>(b % 5), by = static_cast<int>(b / 5);
    return std::abs(ax - bx) + std::abs(ay - by);
  };
  PortId out[3];
  for (const auto r : {MeshRouting::kXY, MeshRouting::kYX,
                       MeshRouting::kWestFirst, MeshRouting::kNorthLast}) {
    mesh.set_mesh_routing(r);
    for (RouterId a = 0; a < 20; ++a) {
      for (RouterId b = 0; b < 20; ++b) {
        if (a == b) continue;
        const auto count = mesh.route_candidates(a, b, out);
        ASSERT_GE(count, 1u) << to_string(r);
        for (std::uint32_t k = 0; k < count; ++k) {
          EXPECT_EQ(manhattan(mesh.neighbor(a, out[k]), b),
                    manhattan(a, b) - 1)
              << to_string(r) << " " << a << "->" << b;
        }
      }
    }
  }
}

TEST(MeshRouting, HopDistanceStaysManhattanUnderAllAlgorithms) {
  auto mesh = Topology::mesh(4, 4);
  for (const auto r : {MeshRouting::kXY, MeshRouting::kYX,
                       MeshRouting::kWestFirst, MeshRouting::kNorthLast}) {
    mesh.set_mesh_routing(r);
    EXPECT_EQ(mesh.hop_distance(0, 15), 6u) << to_string(r);
    EXPECT_EQ(mesh.hop_distance(12, 3), 6u) << to_string(r);
    EXPECT_EQ(mesh.hop_distance(5, 6), 1u) << to_string(r);
  }
}

TEST(Selection, Names) {
  EXPECT_STREQ(to_string(SelectionStrategy::kFirstCandidate),
               "first-candidate");
  EXPECT_STREQ(to_string(SelectionStrategy::kBufferLevel), "buffer-level");
}

/// End-to-end property: under every (routing, selection) combination, random
/// traffic drains completely, every copy is delivered, and latency is at
/// least the Manhattan distance.
class RoutingProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RoutingProperty, RandomTrafficDrainsAndDelivers) {
  const auto [routing_index, selection_index, seed] = GetParam();
  auto topo = Topology::mesh(4, 4);
  topo.set_mesh_routing(static_cast<MeshRouting>(routing_index));
  NocConfig config;
  config.selection = static_cast<SelectionStrategy>(selection_index);
  config.buffer_depth = 2;  // pressure makes adaptivity matter

  util::Rng rng(static_cast<std::uint64_t>(seed) * 101 + 7);
  std::vector<SpikePacketEvent> traffic;
  std::size_t expected = 0;
  for (int i = 0; i < 400; ++i) {
    SpikePacketEvent ev;
    ev.emit_cycle = static_cast<std::uint64_t>(i / 8);
    ev.emit_step = ev.emit_cycle;
    ev.source_neuron = static_cast<std::uint32_t>(rng.below(128));
    ev.source_tile = static_cast<TileId>(rng.below(16));
    TileId dest;
    do {
      dest = static_cast<TileId>(rng.below(16));
    } while (dest == ev.source_tile);
    ev.dest_tiles = {dest};
    ++expected;
    // A third of the packets are 2-destination multicasts.
    if (i % 3 == 0) {
      TileId second;
      do {
        second = static_cast<TileId>(rng.below(16));
      } while (second == ev.source_tile || second == dest);
      ev.dest_tiles.push_back(second);
      ++expected;
    }
    traffic.push_back(std::move(ev));
  }

  NocSimulator sim(std::move(topo), config);
  const auto result = sim.run(traffic);
  ASSERT_TRUE(result.stats.drained);
  EXPECT_EQ(result.stats.copies_delivered, expected);
  const auto manhattan = [](TileId a, TileId b) {
    const int ax = static_cast<int>(a % 4), ay = static_cast<int>(a / 4);
    const int bx = static_cast<int>(b % 4), by = static_cast<int>(b / 4);
    return static_cast<std::uint64_t>(std::abs(ax - bx) + std::abs(ay - by));
  };
  for (const auto& d : result.delivered) {
    EXPECT_GE(d.latency(), manhattan(d.source_tile, d.dest_tile));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoutingProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),  // routing algorithms
                       ::testing::Values(0, 1),        // selection strategies
                       ::testing::Values(1, 2)));      // seeds

}  // namespace
}  // namespace snnmap::noc
