// Deterministic synthetic traffic generators shared by the benchmark
// harnesses (bench/ablation_routing, bench/noc_sim_benchmarks) and the
// golden determinism tests (tests/noc/golden_scenarios.hpp).
//
// The golden fixtures and the recorded BENCH_noc.json numbers both pin the
// exact spike streams these produce — any change to a generator invalidates
// golden fixtures (regenerate with snnmap_noc_golden_capture) and resets
// the benchmark trajectory, so change them deliberately.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "noc/simulator.hpp"
#include "util/rng.hpp"

namespace snnmap::noc::patterns {

/// Bursty traffic with random multicast fan-out over `tiles` tiles.
inline std::vector<SpikePacketEvent> multicast_traffic(
    std::uint64_t seed, std::uint32_t tiles, std::size_t packets,
    std::uint32_t max_fanout, std::uint32_t packets_per_cycle) {
  util::Rng rng(seed);
  std::vector<SpikePacketEvent> traffic;
  traffic.reserve(packets);
  for (std::size_t i = 0; i < packets; ++i) {
    SpikePacketEvent ev;
    ev.emit_cycle = static_cast<std::uint64_t>(i / packets_per_cycle);
    ev.emit_step = ev.emit_cycle / 8;
    ev.source_neuron = static_cast<std::uint32_t>(rng.below(128));
    ev.source_tile = static_cast<TileId>(rng.below(tiles));
    const std::uint32_t fanout =
        1 + static_cast<std::uint32_t>(rng.below(max_fanout));
    for (std::uint32_t k = 0; k < fanout; ++k) {
      const TileId dest = static_cast<TileId>(rng.below(tiles));
      if (dest == ev.source_tile) continue;
      bool seen = false;
      for (const TileId have : ev.dest_tiles) seen = seen || have == dest;
      if (!seen) ev.dest_tiles.push_back(dest);
    }
    if (ev.dest_tiles.empty()) continue;
    std::sort(ev.dest_tiles.begin(), ev.dest_tiles.end());
    traffic.push_back(std::move(ev));
  }
  return traffic;
}

/// Right-column hotspot on a 4x4 mesh: the left three columns stream
/// single-destination packets at the two right-column sinks (tiles 3 and
/// 15), so deterministic XY funnels everything through the east column.
inline std::vector<SpikePacketEvent> mesh_hotspot_traffic(
    std::uint64_t seed, std::size_t packets) {
  util::Rng rng(seed);
  std::vector<SpikePacketEvent> traffic;
  traffic.reserve(packets);
  for (std::size_t i = 0; i < packets; ++i) {
    SpikePacketEvent ev;
    ev.emit_cycle = static_cast<std::uint64_t>(i / 6);
    ev.emit_step = ev.emit_cycle;
    ev.source_neuron = static_cast<std::uint32_t>(rng.below(256));
    ev.source_tile = static_cast<TileId>(rng.below(12));  // left 3 columns
    ev.dest_tiles = {static_cast<TileId>(rng.chance(0.5) ? 3 : 15)};
    if (ev.dest_tiles[0] == ev.source_tile) continue;
    traffic.push_back(std::move(ev));
  }
  return traffic;
}

}  // namespace snnmap::noc::patterns
