#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace snnmap::util {

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const std::size_t total = n_ + other.n_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) /
                         static_cast<double>(total);
  mean_ = (mean_ * static_cast<double>(n_) +
           other.mean_ * static_cast<double>(other.n_)) /
          static_cast<double>(total);
  sum_ += other.sum_;
  n_ = total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::mean() const noexcept { return n_ ? mean_ : 0.0; }

double Accumulator::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double mean_of(const std::vector<double>& values) {
  Accumulator acc;
  for (double v : values) acc.add(v);
  return acc.mean();
}

double stddev_of(const std::vector<double>& values) {
  Accumulator acc;
  for (double v : values) acc.add(v);
  return acc.stddev();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  const auto raw = static_cast<std::ptrdiff_t>(
      std::floor(t * static_cast<double>(counts_.size())));
  const std::ptrdiff_t last = static_cast<std::ptrdiff_t>(counts_.size()) - 1;
  const std::ptrdiff_t idx = std::clamp<std::ptrdiff_t>(raw, 0, last);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar = counts_[i] * width / peak;
    out << '[' << bin_low(i) << ", " << bin_high(i) << ") "
        << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  return out.str();
}

}  // namespace snnmap::util
