#include "core/partition.hpp"

#include <stdexcept>
#include <string>

namespace snnmap::core {

Partition::Partition(std::uint32_t neuron_count, std::uint32_t crossbar_count)
    : assignment_(neuron_count, kUnassigned), crossbar_count_(crossbar_count) {
  if (crossbar_count == 0) {
    throw std::invalid_argument("Partition: need at least one crossbar");
  }
}

void Partition::assign(std::uint32_t neuron, CrossbarId crossbar) {
  if (neuron >= assignment_.size()) {
    throw std::out_of_range("Partition: neuron id out of range");
  }
  if (crossbar != kUnassigned && crossbar >= crossbar_count_) {
    throw std::out_of_range("Partition: crossbar id out of range");
  }
  assignment_[neuron] = crossbar;
}

std::vector<std::uint32_t> Partition::occupancy() const {
  std::vector<std::uint32_t> occ(crossbar_count_, 0);
  for (const CrossbarId c : assignment_) {
    if (c != kUnassigned) ++occ[c];
  }
  return occ;
}

bool Partition::is_complete() const noexcept {
  for (const CrossbarId c : assignment_) {
    if (c == kUnassigned) return false;
  }
  return true;
}

bool Partition::satisfies_capacity(std::uint32_t capacity) const {
  for (const std::uint32_t occ : occupancy()) {
    if (occ > capacity) return false;
  }
  return true;
}

void Partition::validate(const hw::Architecture& arch) const {
  if (crossbar_count_ != arch.crossbar_count) {
    throw std::runtime_error("Partition: crossbar count mismatch (" +
                             std::to_string(crossbar_count_) + " vs " +
                             std::to_string(arch.crossbar_count) + ")");
  }
  if (!is_complete()) {
    throw std::runtime_error(
        "Partition: constraint Eq.4 violated (unassigned neuron)");
  }
  if (!satisfies_capacity(arch.neurons_per_crossbar)) {
    throw std::runtime_error(
        "Partition: constraint Eq.5 violated (crossbar over capacity)");
  }
}

std::vector<std::uint32_t> Partition::neurons_on(CrossbarId crossbar) const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < assignment_.size(); ++i) {
    if (assignment_[i] == crossbar) out.push_back(i);
  }
  return out;
}

}  // namespace snnmap::core
