// Per-link congestion monitoring over the NoC's energy-window boundaries.
//
// The monitor consumes the per-directed-link flit deltas the simulator
// already computes at every close_energy_window() call, maintains an EWMA
// occupancy (flits per cycle of window span) per link, and tracks how many
// *consecutive* windows each link stayed above the hot-occupancy
// threshold.  A link whose streak reaches `persistence_windows` is
// persistently hot — exactly the signal the ROADMAP's UGAL/remap closed
// loop needs (treat "persistently hot" like "dead": mask the link and let
// the fault-fallback routing steer around it).
//
// Cost model: O(links) per window close, zero per cycle; with the default
// (disabled) config the simulator never constructs a monitor and the
// window-close loop is unchanged.  All state is a deterministic function
// of the simulated activity; window *placement* is the caller's chunking,
// so reports are comparable only across runs with the same window schedule
// (the cosim closes one window per lockstep step, which is such a
// schedule).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace snnmap::obs {

/// Congestion-monitor settings.  Default: disabled, nothing tracked.
struct MonitorConfig {
  bool enabled = false;
  /// EWMA smoothing factor in (0, 1]: 1 = last window only.
  double ewma_alpha = 0.25;
  /// Occupancy (flits per cycle of window span) at or above which a link
  /// counts as hot for the window; must be finite and >= 0.
  double hot_occupancy = 0.5;
  /// Consecutive hot windows before a link is reported persistently hot;
  /// must be >= 1 when enabled.
  std::uint32_t persistence_windows = 3;

  /// Throws std::invalid_argument on NaN / out-of-range values (parity
  /// with FaultConfig::validate()).
  void validate() const;
};

/// One persistently-hot directed link.  `link` is the simulator's global
/// port index; from/to are filled by the owner (NocSimulator) which knows
/// the port geometry.
struct HotLink {
  std::uint32_t link = 0;
  std::uint32_t from_router = 0;
  std::uint32_t to_router = 0;
  double ewma_occupancy = 0.0;
  std::uint32_t hot_streak = 0;  ///< consecutive hot windows, incl. current
};

/// Congestion summary of one session (embedded in NocRunResult and, for
/// closed-loop runs, cosim::FidelityReport).
struct CongestionReport {
  bool monitored = false;  ///< false = monitor disabled, everything zero
  std::uint64_t windows_observed = 0;
  std::uint32_t links_tracked = 0;
  /// Links hot in >= 1 window / persistently hot at session end.
  std::uint32_t links_ever_hot = 0;
  std::uint32_t hot_links = 0;
  double max_ewma_occupancy = 0.0;
  /// Persistently-hot links, sorted by link index.
  std::vector<HotLink> hot;
};

class CongestionMonitor {
 public:
  /// `config` is validated here (the NocSimulator constructor also
  /// validates up front so a bad config fails before any session runs).
  CongestionMonitor(std::size_t link_count, const MonitorConfig& config);

  /// Folds one closed window into the EWMAs: `deltas[i]` is link i's flit
  /// count within the window, `span_cycles` the window's virtual-time
  /// span.  Zero-span windows (back-to-back closes) are ignored — there is
  /// no occupancy to measure.
  void observe_window(const std::vector<std::uint64_t>& deltas,
                      std::uint64_t span_cycles);

  std::uint64_t windows_observed() const noexcept { return windows_; }
  double ewma(std::size_t link) const { return ewma_.at(link); }
  std::uint32_t hot_streak(std::size_t link) const {
    return streak_.at(link);
  }
  bool persistently_hot(std::size_t link) const {
    return streak_.at(link) >= config_.persistence_windows;
  }

  /// Builds the summary (from/to router fields left zero — the owner
  /// annotates them from its port geometry).
  CongestionReport report() const;

 private:
  MonitorConfig config_;
  std::vector<double> ewma_;
  std::vector<std::uint32_t> streak_;
  std::vector<std::uint8_t> ever_hot_;
  std::uint64_t windows_ = 0;
};

}  // namespace snnmap::obs
