#include "util/rng.hpp"

#include <cmath>

namespace snnmap::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // splitmix64 expansion guarantees a non-zero state for any seed.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) return lo;
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double f = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * f;
  has_cached_normal_ = true;
  return u * f;
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) noexcept {
  if (rate <= 0.0) return 0.0;
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform()) / rate;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until the product drops below e^-mean.
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction, adequate for rate
  // parameters used by the workload generators.
  const double x = normal(mean, std::sqrt(mean)) + 0.5;
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x);
}

Rng Rng::fork() noexcept {
  return Rng{next() ^ 0xD1B54A32D192ED03ULL};
}

}  // namespace snnmap::util
