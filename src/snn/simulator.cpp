#include "snn/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "snn/poisson.hpp"

namespace snnmap::snn {

double SimulationResult::mean_rate_hz() const noexcept {
  if (spikes.empty() || duration_ms <= 0.0) return 0.0;
  return static_cast<double>(total_spikes) /
         static_cast<double>(spikes.size()) / duration_ms * 1000.0;
}

Simulator::Simulator(Network& network, SimulationConfig config)
    : network_(network), config_(config), rng_(config.seed) {
  // !(x > 0) instead of x <= 0 so NaN is rejected too.
  if (!(config_.dt_ms > 0.0) || !std::isfinite(config_.dt_ms)) {
    throw std::invalid_argument("Simulator: dt must be a finite value > 0 (got " +
                                std::to_string(config_.dt_ms) + ")");
  }
  if (!(config_.duration_ms >= 0.0) || !std::isfinite(config_.duration_ms)) {
    throw std::invalid_argument(
        "Simulator: duration_ms must be finite and >= 0 (got " +
        std::to_string(config_.duration_ms) + ")");
  }
  const std::uint32_t n = network_.neuron_count();
  neuron_count_ = n;
  states_.resize(n);
  group_runs_.reserve(network_.group_count());
  for (std::size_t g = 0; g < network_.group_count(); ++g) {
    const Group& grp = network_.group(g);
    GroupRun run;
    run.first = grp.first;
    run.last = grp.last();
    run.model = grp.model;
    run.lif = grp.lif;
    run.izh = grp.izh;
    run.step_spike_prob =
        poisson_step_probability(grp.poisson_rate_hz, config_.dt_ms);
    run.rate_fn = grp.rate_fn;
    group_runs_.push_back(std::move(run));
    for (NeuronId id = grp.first; id < grp.last(); ++id) {
      states_[id] = initial_state(grp.model, grp.lif, grp.izh);
    }
  }

  // Packed fan-out CSR: one contiguous (post, weight, delay, plastic) record
  // per synapse in the Network's fan-out order, replacing the
  // fanout_synapses -> Synapse double indirection in the delivery loop.
  const auto& offsets = network_.fanout_offsets();
  const auto& order = network_.fanout_synapses();
  const auto& synapses = network_.synapses();
  csr_offsets_.assign(offsets.begin(), offsets.end());
  csr_post_.resize(synapses.size());
  csr_weight_.resize(synapses.size());
  csr_delay_.resize(synapses.size());
  csr_plastic_.resize(synapses.size());
  csr_synapse_.assign(order.begin(), order.end());
  for (std::size_t k = 0; k < order.size(); ++k) {
    const Synapse& s = synapses[order[k]];
    csr_post_[k] = s.post;
    csr_weight_[k] = s.weight;
    csr_delay_[k] = s.delay_steps;
    csr_plastic_[k] = s.plastic ? 1 : 0;
  }
  fan_kind_.assign(n, kGeneralFanout);
  fan_delay_.assign(n, 1);
  fan_has_plastic_.assign(n, 0);
  for (NeuronId pre = 0; pre < n; ++pre) {
    const std::uint32_t begin = csr_offsets_[pre];
    const std::uint32_t end = csr_offsets_[pre + 1];
    if (begin == end) continue;
    bool uniform = true;
    bool contiguous = true;
    bool plastic = csr_plastic_[begin] != 0;
    for (std::uint32_t k = begin + 1; k < end; ++k) {
      uniform = uniform && csr_delay_[k] == csr_delay_[begin];
      contiguous = contiguous && csr_post_[k] == csr_post_[k - 1] + 1;
      plastic = plastic || csr_plastic_[k] != 0;
    }
    if (uniform) {
      fan_kind_[pre] = contiguous ? kContiguousFanout : kUniformFanout;
      fan_delay_[pre] = csr_delay_[begin];
    }
    fan_has_plastic_[pre] = plastic ? 1 : 0;
  }

  // Ring size from the delays actually present in the CSR, not the
  // Network's incrementally-maintained max: a caller can legally raise a
  // delay through mutable_synapses(), and an undersized ring would send the
  // wrap arithmetic in deliver_spike out of bounds.  Delays lowered to 0
  // the same way are rejected — a same-slot arrival would reach only the
  // neurons not yet stepped this dt, an order-dependent half-delivery.
  std::uint16_t max_delay = network_.max_delay_steps();
  for (const std::uint16_t d : csr_delay_) {
    if (d == 0) {
      throw std::invalid_argument("Simulator: synaptic delay must be >= 1 step");
    }
    if (d > max_delay) max_delay = d;
  }
  ring_ = static_cast<std::size_t>(max_delay) + 1;
  csr_cut_.assign(csr_delay_.size(), 0);
  cut_count_.assign(n, 0);
  fan_has_cut_.assign(n, 0);
  pending_.assign(ring_ * n, 0.0);
  external_.assign(n, 0.0);
  if (config_.syn_tau_ms > 0.0) {
    syn_current_.assign(n, 0.0);
    syn_decay_ = std::exp(-config_.dt_ms / config_.syn_tau_ms);
  }
  last_spike_ms_.assign(n, -1.0);

  // Fan-in index over plastic synapses only (for potentiation on post
  // spike), stored as (pre, fan-out slot) so STDP updates hit csr_weight_
  // directly.  Built in synapse-index order per post neuron — the same
  // iteration order as the pre-refactor engine.
  plastic_fanin_offsets_.assign(n + 1, 0);
  for (const auto& s : synapses) {
    if (s.plastic) ++plastic_fanin_offsets_[s.post + 1];
  }
  for (std::size_t i = 1; i < plastic_fanin_offsets_.size(); ++i) {
    plastic_fanin_offsets_[i] += plastic_fanin_offsets_[i - 1];
  }
  plastic_fanin_pre_.resize(plastic_fanin_offsets_.back());
  plastic_fanin_slot_.resize(plastic_fanin_offsets_.back());
  std::vector<std::uint32_t> slot_of(synapses.size());
  for (std::uint32_t k = 0; k < order.size(); ++k) slot_of[order[k]] = k;
  std::vector<std::uint32_t> cursor(plastic_fanin_offsets_.begin(),
                                    plastic_fanin_offsets_.end() - 1);
  for (std::uint32_t idx = 0; idx < synapses.size(); ++idx) {
    if (synapses[idx].plastic) {
      const std::uint32_t at = cursor[synapses[idx].post]++;
      plastic_fanin_pre_[at] = synapses[idx].pre;
      plastic_fanin_slot_[at] = slot_of[idx];
    }
  }
}

void Simulator::inject_current(NeuronId neuron, double current) {
  if (neuron >= external_.size()) {
    throw std::out_of_range("Simulator: inject_current neuron out of range");
  }
  external_[neuron] += current;
}

void Simulator::deliver_spike(NeuronId neuron) {
  // Non-plastic fast path: no STDP checks inside the loop.  Addition order
  // over k is identical in every branch, so all three are bit-identical.
  const std::uint32_t begin = csr_offsets_[neuron];
  const std::uint32_t end = csr_offsets_[neuron + 1];
  if (begin == end) return;
  double* pending = pending_.data();
  const std::size_t n = neuron_count_;
  const std::size_t ring = ring_;
  if (fan_kind_[neuron] != kGeneralFanout) {
    std::size_t arrive = slot_ + fan_delay_[neuron];
    if (arrive >= ring) arrive -= ring;  // delay <= ring - 1, so one wrap
    double* base = pending + arrive * n;
    if (fan_kind_[neuron] == kContiguousFanout) {
      double* out = base + csr_post_[begin];
      const float* w = csr_weight_.data() + begin;
      const std::uint32_t count = end - begin;
      for (std::uint32_t j = 0; j < count; ++j) {
        out[j] += static_cast<double>(w[j]);
      }
    } else {
      for (std::uint32_t k = begin; k < end; ++k) {
        base[csr_post_[k]] += static_cast<double>(csr_weight_[k]);
      }
    }
    return;
  }
  for (std::uint32_t k = begin; k < end; ++k) {
    std::size_t arrive = slot_ + csr_delay_[k];
    if (arrive >= ring) arrive -= ring;
    pending[arrive * n + csr_post_[k]] += static_cast<double>(csr_weight_[k]);
  }
}

void Simulator::deliver_spike_plastic(NeuronId neuron) {
  double* pending = pending_.data();
  const std::size_t n = neuron_count_;
  const std::size_t ring = ring_;
  const std::uint32_t end = csr_offsets_[neuron + 1];
  for (std::uint32_t k = csr_offsets_[neuron]; k < end; ++k) {
    std::size_t arrive = slot_ + csr_delay_[k];
    if (arrive >= ring) arrive -= ring;
    pending[arrive * n + csr_post_[k]] += static_cast<double>(csr_weight_[k]);
    if (csr_plastic_[k]) apply_stdp_on_pre(k);
  }
}

void Simulator::apply_stdp_on_pre(std::uint32_t slot) {
  const double w = stdp_update_on_pre(config_.stdp,
                                      static_cast<double>(csr_weight_[slot]),
                                      last_spike_ms_[csr_post_[slot]], now_ms_);
  const float packed = static_cast<float>(w);
  csr_weight_[slot] = packed;
  // Write through so the Network's synapse list stays the authoritative,
  // externally visible weight state at every step.
  network_.mutable_synapses()[csr_synapse_[slot]].weight = packed;
}

void Simulator::apply_stdp_on_post(NeuronId post) {
  auto& synapses = network_.mutable_synapses();
  const std::uint32_t end = plastic_fanin_offsets_[post + 1];
  for (std::uint32_t j = plastic_fanin_offsets_[post]; j < end; ++j) {
    const std::uint32_t slot = plastic_fanin_slot_[j];
    const double w = stdp_update_on_post(
        config_.stdp, static_cast<double>(csr_weight_[slot]),
        last_spike_ms_[plastic_fanin_pre_[j]], now_ms_);
    const float packed = static_cast<float>(w);
    csr_weight_[slot] = packed;
    synapses[csr_synapse_[slot]].weight = packed;
  }
}

void Simulator::on_spike(NeuronId neuron) {
  events_.push_back({neuron, now_ms_});
  ++total_spikes_;
  last_spike_ms_[neuron] = now_ms_;
  if (config_.enable_stdp) {
    // Only neurons that actually have plastic outgoing synapses pay the
    // per-record plastic checks; the rest keep the fast fan-out paths
    // (identical addition order, so still bit-identical).
    if (fan_has_plastic_[neuron]) {
      deliver_spike_plastic(neuron);
    } else {
      deliver_spike(neuron);
    }
    apply_stdp_on_post(neuron);
  } else {
    deliver_spike(neuron);
  }
}

template <bool kDeferred>
void Simulator::step_impl() {
  const std::uint32_t n = neuron_count_;
  double* arriving = pending_.data() + slot_ * n;

  // Fires one neuron: inline delivery on the normal path, a recorded id on
  // the deferred (co-simulation) path.  Deferral is exact because on_spike
  // only writes future ring slots / STDP state the remaining integration
  // never reads (see the seam contract in the header).
  const auto fire = [&](NeuronId i) {
    if constexpr (kDeferred) {
      deferred_spikes_.push_back(i);
      pending_remote_records_ += cut_count_[i];
    } else {
      on_spike(i);
    }
  };

  // Exponential synapses: fold this step's arrivals into a decaying current.
  const bool exponential = !syn_current_.empty();
  if (exponential) {
    const double decay = syn_decay_;
    for (NeuronId i = 0; i < n; ++i) {
      syn_current_[i] = syn_current_[i] * decay + arriving[i];
    }
  }
  const double* input_base = exponential ? syn_current_.data() : arriving;
  const double* external = external_.data();

  for (const GroupRun& run : group_runs_) {
    switch (run.model) {
      case NeuronModel::kPoisson:
        if (run.rate_fn) {
          for (NeuronId i = run.first; i < run.last; ++i) {
            if (poisson_step_spike(run.rate_fn(i - run.first, now_ms_),
                                   config_.dt_ms, rng_)) {
              fire(i);
            }
          }
        } else {
          // Cached constant-rate probability; Rng::chance draws nothing for
          // p <= 0, exactly like poisson_step_spike's rate <= 0 guard.
          const double p = run.step_spike_prob;
          for (NeuronId i = run.first; i < run.last; ++i) {
            if (rng_.chance(p)) fire(i);
          }
        }
        break;
      case NeuronModel::kLif: {
        const LifParams& p = run.lif;
        for (NeuronId i = run.first; i < run.last; ++i) {
          const double input = input_base[i] + external[i];
          if (step_lif(states_[i], p, input, now_ms_, config_.dt_ms)) {
            fire(i);
          }
        }
        break;
      }
      case NeuronModel::kIzhikevich: {
        const IzhikevichParams& p = run.izh;
        for (NeuronId i = run.first; i < run.last; ++i) {
          const double input = input_base[i] + external[i];
          if (step_izhikevich(states_[i], p, input, config_.dt_ms)) {
            fire(i);
          }
        }
        break;
      }
    }
  }

  if constexpr (!kDeferred) finish_step();
}

void Simulator::finish_step() {
  const std::uint32_t n = neuron_count_;
  double* arriving = pending_.data() + slot_ * n;
  std::fill(arriving, arriving + n, 0.0);
  std::fill(external_.begin(), external_.end(), 0.0);
  slot_ = slot_ + 1 == ring_ ? 0 : slot_ + 1;
  ++step_count_;
  now_ms_ = static_cast<double>(step_count_) * config_.dt_ms;
}

void Simulator::step() {
  if (in_deferred_step_) {
    throw std::logic_error(
        "Simulator: step() with a deferred step open (flush_deferred first)");
  }
  step_impl<false>();
}

void Simulator::step_deferred() {
  if (in_deferred_step_) {
    throw std::logic_error(
        "Simulator: step_deferred() with a deferred step already open");
  }
  deferred_spikes_.clear();
  pending_remote_records_ = 0;
  in_deferred_step_ = true;
  step_impl<true>();
}

void Simulator::cut_remote_synapses(const std::vector<std::uint8_t>& cut) {
  // Legal before the first step *and* between closed steps (the fault path
  // re-cuts after a mid-run remap); only an open deferred step — whose
  // verdict stream was sized by the old mask — forbids it.
  if (in_deferred_step_) {
    throw std::logic_error(
        "Simulator: cut_remote_synapses with a deferred step open (the "
        "pending verdict stream was enumerated under the old cut mask; "
        "flush_deferred first)");
  }
  if (cut.size() != network_.synapses().size()) {
    throw std::invalid_argument(
        "Simulator: cut mask size must match the synapse count");
  }
  // Validate the whole mask before mutating anything, so a rejected re-cut
  // leaves the previous mask fully intact.
  for (std::size_t k = 0; k < csr_cut_.size(); ++k) {
    // The plastic flag is inert while STDP is off (delivery takes the
    // non-plastic paths and weights never change), so cutting such a
    // synapse is safe; only live STDP bookkeeping forbids it.
    if (cut[csr_synapse_[k]] != 0 && csr_plastic_[k] && config_.enable_stdp) {
      throw std::invalid_argument(
          "Simulator: a plastic synapse cannot be remote-cut while STDP is "
          "enabled (its weight would live on the remote crossbar, outside "
          "the local STDP bookkeeping)");
    }
  }
  cut_count_.assign(neuron_count_, 0);
  fan_has_cut_.assign(neuron_count_, 0);
  for (std::size_t k = 0; k < csr_cut_.size(); ++k) {
    csr_cut_[k] = cut[csr_synapse_[k]] != 0 ? 1 : 0;
  }
  for (NeuronId pre = 0; pre < neuron_count_; ++pre) {
    std::uint32_t count = 0;
    for (std::uint32_t k = csr_offsets_[pre]; k < csr_offsets_[pre + 1]; ++k) {
      count += csr_cut_[k];
    }
    cut_count_[pre] = count;
    fan_has_cut_[pre] = count != 0 ? 1 : 0;
  }
}

void Simulator::inject_remote(NeuronId post, double weight,
                              std::uint16_t delay_steps) {
  if (!in_deferred_step_) {
    throw std::logic_error(
        "Simulator: inject_remote is only legal inside an open deferred "
        "step (between step_deferred and flush_deferred)");
  }
  if (post >= neuron_count_) {
    throw std::out_of_range("Simulator: inject_remote neuron out of range");
  }
  if (delay_steps == 0 || delay_steps >= ring_) {
    throw std::invalid_argument(
        "Simulator: inject_remote delay must be >= 1 and within the delay "
        "ring");
  }
  std::size_t arrive = slot_ + delay_steps;
  if (arrive >= ring_) arrive -= ring_;
  pending_[arrive * neuron_count_ + post] += weight;
}

void Simulator::deliver_spike_filtered(NeuronId neuron,
                                       const RemoteVerdict* verdicts,
                                       std::size_t& cursor) {
  double* pending = pending_.data();
  const std::size_t n = neuron_count_;
  const std::size_t ring = ring_;
  const bool stdp = config_.enable_stdp;
  const std::uint32_t end = csr_offsets_[neuron + 1];
  for (std::uint32_t k = csr_offsets_[neuron]; k < end; ++k) {
    if (csr_cut_[k] &&
        verdicts[cursor++] == RemoteVerdict::kWithhold) {
      continue;
    }
    std::size_t arrive = slot_ + csr_delay_[k];
    if (arrive >= ring) arrive -= ring;
    pending[arrive * n + csr_post_[k]] += static_cast<double>(csr_weight_[k]);
    if (stdp && csr_plastic_[k]) apply_stdp_on_pre(k);
  }
}

void Simulator::replay_spike(NeuronId neuron, const RemoteVerdict* verdicts,
                             std::size_t& cursor) {
  // Mirrors on_spike exactly, substituting the verdict-aware delivery for
  // neurons with cut records (the per-record loop adds in the same slot
  // order as every fast path, so the replay stays bit-identical).
  events_.push_back({neuron, now_ms_});
  ++total_spikes_;
  last_spike_ms_[neuron] = now_ms_;
  if (fan_has_cut_[neuron]) {
    deliver_spike_filtered(neuron, verdicts, cursor);
    if (config_.enable_stdp) apply_stdp_on_post(neuron);
  } else if (config_.enable_stdp) {
    if (fan_has_plastic_[neuron]) {
      deliver_spike_plastic(neuron);
    } else {
      deliver_spike(neuron);
    }
    apply_stdp_on_post(neuron);
  } else {
    deliver_spike(neuron);
  }
}

void Simulator::flush_deferred(const std::vector<RemoteVerdict>& verdicts) {
  if (!in_deferred_step_) {
    throw std::logic_error(
        "Simulator: flush_deferred without an open deferred step");
  }
  if (verdicts.size() != pending_remote_records_) {
    throw std::invalid_argument(
        "Simulator: flush_deferred verdict count mismatch (expected " +
        std::to_string(pending_remote_records_) + ", got " +
        std::to_string(verdicts.size()) + ")");
  }
  std::size_t cursor = 0;
  for (const NeuronId s : deferred_spikes_) {
    replay_spike(s, verdicts.data(), cursor);
  }
  in_deferred_step_ = false;
  finish_step();
}

std::uint64_t simulation_step_count(const SimulationConfig& config) noexcept {
  // The previous round-to-nearest under-ran non-commensurate configs
  // (e.g. 10 ms at dt = 3 ms simulated only 9 ms); see the header for the
  // ceil-with-tolerance contract.
  const double ratio = config.duration_ms / config.dt_ms;
  if (!std::isfinite(ratio) || ratio < 0.0) return 0;
  return static_cast<std::uint64_t>(std::ceil(ratio * (1.0 - 1e-12)));
}

SimulationResult Simulator::run() {
  const std::uint64_t steps = simulation_step_count(config_);
  for (std::uint64_t i = 0; i < steps; ++i) step();
  return result();
}

SimulationResult Simulator::result() const {
  SimulationResult r;
  r.spikes = trains_from_events(neuron_count_, events_);
  r.duration_ms = now_ms_;
  r.total_spikes = total_spikes_;
  return r;
}

std::vector<SpikeTrain> Simulator::spikes() const {
  return trains_from_events(neuron_count_, events_);
}

}  // namespace snnmap::snn
