// Figure 7 — "Exploration with swarm size": global-synapse energy found by
// the PSO as a function of swarm size (log scale, 10..1000 particles) at a
// fixed iteration budget, for hello_world, heartbeat estimation, synth_1x800
// and synth_2x200.  Energy per application is normalized to the minimum over
// the sweep, exactly as the paper plots it.
//
// Expected shape: normalized energy is non-increasing in swarm size (larger
// swarms find equal or better optima at fixed iterations) and flattens out
// well before 1000 particles.
//
// This figure characterizes the RAW binary swarm, so the memetic refinement
// and baseline seeding are disabled (either would hide the sensitivity the
// figure demonstrates), and the fitness is the literal per-edge Eq. 8 cut:
// the AER-packet objective is partition-invariant for the single-layer
// synthetic topologies (every source's fan-out necessarily spans all
// crossbars), which would flatten their curves trivially.
#include <iostream>
#include <map>
#include <vector>

#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "core/cost.hpp"
#include "core/pso.hpp"
#include "util/table.hpp"

int main() {
  using namespace snnmap;
  const bool quick = bench::quick_mode();

  const std::vector<std::string> workloads = {"HW", "HE", "synth_1x800",
                                              "synth_2x200"};
  std::vector<std::uint32_t> swarm_sizes = {10, 32, 100, 316, 1000};
  std::uint32_t iterations = 100;  // fixed to 100 in the paper
  if (quick) {
    swarm_sizes = {10, 50};
    iterations = 20;
  }

  std::map<std::string, std::vector<double>> energy;
  for (const auto& name : workloads) {
    const snn::SnnGraph graph = apps::build_app(name, /*seed=*/42);
    const hw::Architecture arch = bench::scaled_cxquad(graph);

    for (const std::uint32_t swarm : swarm_sizes) {
      core::PsoConfig config;
      config.swarm_size = swarm;
      config.iterations = iterations;
      config.seed = 42;
      config.seed_with_baselines = false;
      config.refine_sweeps = 0;
      config.refine_swap_factor = 0;
      config.objective = core::Objective::kCutSpikes;
      core::PsoPartitioner pso(graph, arch, config);
      const auto result = pso.optimize();
      // The fitness F (Eq. 8) is the interconnect energy proxy: on the tree
      // every crossbar pair is equidistant, so per-edge energy is
      // proportional to the cut.
      energy[name].push_back(static_cast<double>(result.best_cost));
    }
  }

  std::vector<std::string> headers = {"swarm size"};
  for (const auto& name : workloads) headers.push_back(name);
  util::Table table(headers);
  for (std::size_t s = 0; s < swarm_sizes.size(); ++s) {
    table.begin_row();
    table.cell(static_cast<std::size_t>(swarm_sizes[s]));
    for (const auto& name : workloads) {
      double min_e = 1e300;
      for (const double e : energy[name]) min_e = std::min(min_e, e);
      if (min_e <= 0.0) min_e = 1.0;
      table.cell(energy[name][s] / min_e, 3);
    }
  }

  std::cout << "=== Figure 7: normalized global-synapse energy vs swarm size "
               "(iterations = "
            << iterations << ", normalized to per-app minimum) ===\n"
            << table.to_ascii() << '\n';
  std::cout << "Paper shape: energy decreases with swarm size and flattens "
               "before 1000 particles (synth_2x200 bottoms out early).\n";
  return 0;
}
