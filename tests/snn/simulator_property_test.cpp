// Property tests for the SoA simulator engine: invariants that must hold
// for every random network/seed, complementing the exact-replay golden
// fixtures.  Axes from the engine's contract: STDP clamping, the
// exponential-synapse limit tau -> 0 degenerating to delta synapses, delay
// ring boundary arrivals at max_delay_steps, and spike accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "snn/network.hpp"
#include "snn/simulator.hpp"
#include "util/rng.hpp"

namespace snnmap::snn {
namespace {

/// Random recurrent network with plastic synapses everywhere.
Network random_plastic_network(std::uint64_t seed) {
  Network net;
  util::Rng rng(seed);
  const auto in = net.add_poisson_group(
      "in", 12, 20.0 + static_cast<double>(rng.below(80)));
  const auto exc = net.add_izhikevich_group(
      "exc", 20, IzhikevichParams::regular_spiking());
  const auto out = net.add_lif_group("out", 10);
  net.connect_random(in, exc, 0.6, WeightSpec::uniform(2.0, 9.0), rng,
                     /*delay=*/1, /*plastic=*/true);
  net.connect_random(exc, out, 0.5, WeightSpec::uniform(3.0, 8.0), rng,
                     static_cast<std::uint16_t>(1 + rng.below(4)),
                     /*plastic=*/true);
  net.connect_random(out, exc, 0.3, WeightSpec::uniform(-6.0, -1.0), rng,
                     /*delay=*/2, /*plastic=*/true);
  return net;
}

TEST(SimulatorProperty, StdpWeightsStayWithinBounds) {
  // Clamping applies on every STDP update, so weights that start inside
  // [w_min, w_max] can never leave it, however the random trains land.
  // Aggressive amplitudes + long runs push many weights onto the rails.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Network net = random_plastic_network(seed);
    SimulationConfig cfg;
    cfg.duration_ms = 800.0;
    cfg.seed = seed * 101;
    cfg.enable_stdp = true;
    cfg.stdp.w_min = -6.5;  // covers the builder's initial draws (-6 .. 9)
    cfg.stdp.w_max = 9.5;
    cfg.stdp.a_plus = 0.05;
    cfg.stdp.a_minus = 0.06;
    for (const Synapse& s : net.synapses()) {
      ASSERT_GE(s.weight, static_cast<float>(cfg.stdp.w_min));
      ASSERT_LE(s.weight, static_cast<float>(cfg.stdp.w_max));
    }
    Simulator sim(net, cfg);
    const auto result = sim.run();
    EXPECT_GT(result.total_spikes, 0u) << "seed " << seed;
    for (const Synapse& s : net.synapses()) {
      if (!s.plastic) continue;
      EXPECT_GE(s.weight, static_cast<float>(cfg.stdp.w_min)) << "seed " << seed;
      EXPECT_LE(s.weight, static_cast<float>(cfg.stdp.w_max)) << "seed " << seed;
    }
  }
}

TEST(SimulatorProperty, ExponentialTauToZeroConvergesToDelta) {
  // As syn_tau_ms -> 0 the decay factor exp(-dt/tau) underflows to 0, so
  // the folded current equals the per-step arrivals exactly: the spike
  // trains must be bit-identical to the delta-synapse (tau = 0) engine.
  const auto run_with_tau = [](double tau) {
    Network net;
    util::Rng rng(17);
    const auto in = net.add_poisson_group("in", 15, 70.0);
    const auto mid = net.add_lif_group("mid", 25);
    const auto out = net.add_izhikevich_group(
        "out", 15, IzhikevichParams::regular_spiking());
    net.connect_random(in, mid, 0.5, WeightSpec::uniform(8.0, 14.0), rng);
    net.connect_random(mid, out, 0.5, WeightSpec::uniform(6.0, 10.0), rng,
                       /*delay=*/3);
    SimulationConfig cfg;
    cfg.duration_ms = 600.0;
    cfg.seed = 23;
    cfg.syn_tau_ms = tau;
    Simulator sim(net, cfg);
    return sim.run();
  };
  const auto delta = run_with_tau(0.0);
  ASSERT_GT(delta.total_spikes, 0u);
  for (const double tau : {1e-3, 1e-6, 1e-9}) {
    const auto exponential = run_with_tau(tau);
    EXPECT_EQ(exponential.total_spikes, delta.total_spikes) << "tau " << tau;
    EXPECT_EQ(exponential.spikes, delta.spikes) << "tau " << tau;
  }
}

TEST(SimulatorProperty, MaxDelayBoundaryArrivalsAreExact) {
  // One strong synapse at the network's max delay (the last ring slot):
  // every post spike must sit exactly delay ms after some pre spike (the
  // post neuron fires on arrival, or not at all while refractory).
  for (const int delay_int : {2, 7, 12, 31}) {
    const auto delay = static_cast<std::uint16_t>(delay_int);
    Network net;
    util::Rng rng(5);
    const auto in = net.add_poisson_group("in", 1, 40.0);
    const auto out = net.add_lif_group("out", 1);
    net.connect_one_to_one(in, out, WeightSpec::fixed(40.0), rng, delay);
    ASSERT_EQ(net.max_delay_steps(), delay);
    SimulationConfig cfg;
    cfg.duration_ms = 1500.0;
    cfg.seed = delay;
    Simulator sim(net, cfg);
    const auto result = sim.run();
    const SpikeTrain& pre = result.spikes[0];
    const SpikeTrain& post = result.spikes[1];
    ASSERT_FALSE(pre.empty());
    ASSERT_FALSE(post.empty()) << "delay " << delay;
    for (const TimeMs t : post) {
      const TimeMs emitted = t - static_cast<double>(delay);
      EXPECT_TRUE(std::binary_search(pre.begin(), pre.end(), emitted))
          << "delay " << delay << ": post spike at " << t
          << " has no pre spike at " << emitted;
    }
  }
}

TEST(SimulatorProperty, TotalSpikesEqualsSumOfTrainSizes) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Network net = random_plastic_network(seed + 40);
    SimulationConfig cfg;
    cfg.duration_ms = 700.0;
    cfg.seed = seed;
    cfg.enable_stdp = seed % 2 == 0;
    Simulator sim(net, cfg);
    const auto result = sim.run();
    std::uint64_t sum = 0;
    for (const SpikeTrain& train : result.spikes) {
      EXPECT_TRUE(is_valid_train(train));
      sum += train.size();
    }
    EXPECT_EQ(sum, result.total_spikes) << "seed " << seed;
    EXPECT_EQ(result.spikes.size(), net.neuron_count());
  }
}

TEST(SimulatorProperty, StepApiSpikesMatchRunResult) {
  // Stepping manually for the same number of steps must produce the same
  // log as run(); spikes() materializes the same trains as result().
  Network net = random_plastic_network(9);
  SimulationConfig cfg;
  cfg.duration_ms = 300.0;
  cfg.seed = 3;
  Simulator by_run(net, cfg);
  const auto result = by_run.run();

  Network net2 = random_plastic_network(9);
  Simulator by_step(net2, cfg);
  for (int i = 0; i < 300; ++i) by_step.step();
  EXPECT_EQ(by_step.total_spikes(), result.total_spikes);
  EXPECT_EQ(by_step.spikes(), result.spikes);
  EXPECT_EQ(by_step.result().spikes, result.spikes);
}

}  // namespace
}  // namespace snnmap::snn
