// Domain example 1: mapping the Diehl & Cook handwritten-digit network
// (Table I, "HD") onto architectures with different crossbar sizes — a
// miniature of the paper's Sec. V-C exploration, showing how a user would
// pick a crossbar dimension for a given application.
//
//   ./build/examples/digit_mapping
#include <iostream>

#include "apps/digit_recognition.hpp"
#include "core/framework.hpp"
#include "util/table.hpp"

int main() {
  using namespace snnmap;

  apps::DigitRecognitionConfig app;
  app.seed = 11;
  app.digit = 5;
  const snn::SnnGraph graph = apps::build_digit_recognition(app);
  std::cout << "Digit network: " << graph.neuron_count() << " neurons, "
            << graph.edge_count() << " synapses, mean rate "
            << graph.mean_rate_hz() << " Hz\n\n";

  util::Table table({"neurons/crossbar", "crossbars", "local events",
                     "global spikes", "local E (uJ)", "global E (uJ)",
                     "total E (uJ)"});
  for (const std::uint32_t per_crossbar : {128u, 256u, 512u, 1024u}) {
    core::MappingFlowConfig flow;
    flow.arch = hw::Architecture::sized_for(graph.neuron_count(), per_crossbar,
                                            hw::InterconnectKind::kTree);
    flow.partitioner = core::PartitionerKind::kPso;
    flow.pso.swarm_size = 30;
    flow.pso.iterations = 40;
    const core::MappingReport report = core::run_mapping_flow(graph, flow);
    table.begin_row();
    table.cell(static_cast<std::size_t>(per_crossbar));
    table.cell(static_cast<std::size_t>(flow.arch.crossbar_count));
    table.cell(static_cast<std::size_t>(report.local_events));
    table.cell(static_cast<std::size_t>(report.global_spikes));
    table.cell(report.local_energy_pj * 1e-6, 2);
    table.cell(report.global_energy_pj * 1e-6, 2);
    table.cell(report.total_energy_uj(), 2);
  }
  std::cout << table.to_ascii();
  std::cout << "\nLarger crossbars localize more synapses (global energy "
               "falls, local energy rises).\n";
  return 0;
}
