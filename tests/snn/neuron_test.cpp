#include "snn/neuron.hpp"

#include <gtest/gtest.h>

namespace snnmap::snn {
namespace {

TEST(Lif, RestsWithoutInput) {
  LifParams p;
  NeuronState s = initial_state(NeuronModel::kLif, p, {});
  for (int t = 0; t < 100; ++t) {
    EXPECT_FALSE(step_lif(s, p, 0.0, t, 1.0));
  }
  EXPECT_NEAR(s.v, p.v_rest, 1e-9);
}

TEST(Lif, FiresUnderStrongConstantCurrent) {
  LifParams p;
  NeuronState s = initial_state(NeuronModel::kLif, p, {});
  bool fired = false;
  for (int t = 0; t < 100 && !fired; ++t) {
    fired = step_lif(s, p, 5.0, t, 1.0);  // R*I = 50 mV >> threshold gap
  }
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(s.v, p.v_reset);
}

TEST(Lif, SubthresholdCurrentNeverFires) {
  LifParams p;  // needs (v_thresh - v_rest)/r_m = 1.5 units to reach threshold
  NeuronState s = initial_state(NeuronModel::kLif, p, {});
  for (int t = 0; t < 2000; ++t) {
    EXPECT_FALSE(step_lif(s, p, 1.0, t, 1.0));
  }
  // Steady state ~= v_rest + R*I.
  EXPECT_NEAR(s.v, p.v_rest + p.r_m * 1.0, 0.5);
}

TEST(Lif, RefractoryPeriodBlocksFiring) {
  LifParams p;
  p.refractory_ms = 5.0;
  NeuronState s = initial_state(NeuronModel::kLif, p, {});
  double now = 0.0;
  // Drive hard until the first spike.
  while (!step_lif(s, p, 10.0, now, 1.0)) now += 1.0;
  const double spike_time = now;
  // During refractoriness the neuron must stay silent despite huge drive.
  for (double t = spike_time + 1.0; t < spike_time + p.refractory_ms;
       t += 1.0) {
    EXPECT_FALSE(step_lif(s, p, 100.0, t, 1.0));
    EXPECT_DOUBLE_EQ(s.v, p.v_reset);
  }
}

TEST(Lif, FiringRateGrowsWithCurrent) {
  LifParams p;
  int spikes_low = 0;
  int spikes_high = 0;
  NeuronState a = initial_state(NeuronModel::kLif, p, {});
  NeuronState b = initial_state(NeuronModel::kLif, p, {});
  for (int t = 0; t < 1000; ++t) {
    spikes_low += step_lif(a, p, 2.0, t, 1.0) ? 1 : 0;
    spikes_high += step_lif(b, p, 6.0, t, 1.0) ? 1 : 0;
  }
  EXPECT_GT(spikes_low, 0);
  EXPECT_GT(spikes_high, spikes_low);
}

TEST(Izhikevich, RestingStateIsStable) {
  const IzhikevichParams p = IzhikevichParams::regular_spiking();
  NeuronState s = initial_state(NeuronModel::kIzhikevich, {}, p);
  for (int t = 0; t < 500; ++t) {
    EXPECT_FALSE(step_izhikevich(s, p, 0.0, 1.0));
  }
  // The RS model's true resting point is v = -70 mV (where
  // 0.04v^2 + 5v + 140 = b*v), slightly below the reset c = -65.
  EXPECT_NEAR(s.v, -70.0, 3.0);
}

TEST(Izhikevich, RegularSpikingFiresTonic) {
  const IzhikevichParams p = IzhikevichParams::regular_spiking();
  NeuronState s = initial_state(NeuronModel::kIzhikevich, {}, p);
  int spikes = 0;
  for (int t = 0; t < 1000; ++t) {
    spikes += step_izhikevich(s, p, 10.0, 1.0) ? 1 : 0;
  }
  // Canonical RS response to 10 units DC: a few to tens of Hz.
  EXPECT_GT(spikes, 3);
  EXPECT_LT(spikes, 200);
}

TEST(Izhikevich, FastSpikingOutpacesRegularSpiking) {
  NeuronState rs_state =
      initial_state(NeuronModel::kIzhikevich,
                    {}, IzhikevichParams::regular_spiking());
  NeuronState fs_state =
      initial_state(NeuronModel::kIzhikevich,
                    {}, IzhikevichParams::fast_spiking());
  const auto rs = IzhikevichParams::regular_spiking();
  const auto fs = IzhikevichParams::fast_spiking();
  int rs_spikes = 0;
  int fs_spikes = 0;
  for (int t = 0; t < 1000; ++t) {
    rs_spikes += step_izhikevich(rs_state, rs, 10.0, 1.0) ? 1 : 0;
    fs_spikes += step_izhikevich(fs_state, fs, 10.0, 1.0) ? 1 : 0;
  }
  EXPECT_GT(fs_spikes, rs_spikes);
}

TEST(Izhikevich, StateStaysBoundedUnderExtremeInput) {
  const IzhikevichParams p = IzhikevichParams::regular_spiking();
  NeuronState s = initial_state(NeuronModel::kIzhikevich, {}, p);
  for (int t = 0; t < 1000; ++t) {
    step_izhikevich(s, p, 500.0, 1.0);
    EXPECT_GE(s.v, -120.0);
    EXPECT_LE(s.v, 40.0);
  }
}

TEST(Izhikevich, ResetAfterSpike) {
  const IzhikevichParams p = IzhikevichParams::regular_spiking();
  NeuronState s = initial_state(NeuronModel::kIzhikevich, {}, p);
  const double u_before = s.u;
  bool fired = false;
  for (int t = 0; t < 200 && !fired; ++t) {
    fired = step_izhikevich(s, p, 15.0, 1.0);
  }
  ASSERT_TRUE(fired);
  EXPECT_LE(s.v, p.c + 10.0);   // back near reset
  EXPECT_GT(s.u, u_before);     // recovery variable incremented by d
}

TEST(NeuronModel, InitialStates) {
  LifParams lif;
  const auto izh = IzhikevichParams::regular_spiking();
  EXPECT_EQ(initial_state(NeuronModel::kLif, lif, izh).v, lif.v_rest);
  const auto s = initial_state(NeuronModel::kIzhikevich, lif, izh);
  EXPECT_EQ(s.v, izh.c);
  EXPECT_EQ(s.u, izh.b * izh.c);
  EXPECT_EQ(initial_state(NeuronModel::kPoisson, lif, izh).v, 0.0);
}

TEST(NeuronModel, Names) {
  EXPECT_STREQ(to_string(NeuronModel::kLif), "lif");
  EXPECT_STREQ(to_string(NeuronModel::kIzhikevich), "izhikevich");
  EXPECT_STREQ(to_string(NeuronModel::kPoisson), "poisson");
}

}  // namespace
}  // namespace snnmap::snn
