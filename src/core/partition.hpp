// Neuron-to-crossbar assignment (the decision variables of Sec. III).
//
// A Partition assigns every neuron a_i to exactly one crossbar c_k — the
// one-hot view of the paper's x_{i,k} variables.  The two PSO constraints
// (Eq. 4: one crossbar per neuron; Eq. 5: at most Nc neurons per crossbar)
// are checkable here and enforced by the partitioners' repair operators.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/architecture.hpp"

namespace snnmap::core {

using CrossbarId = std::uint32_t;
inline constexpr CrossbarId kUnassigned = static_cast<CrossbarId>(-1);

class Partition {
 public:
  Partition() = default;
  /// All neurons start unassigned.
  Partition(std::uint32_t neuron_count, std::uint32_t crossbar_count);

  std::uint32_t neuron_count() const noexcept {
    return static_cast<std::uint32_t>(assignment_.size());
  }
  std::uint32_t crossbar_count() const noexcept { return crossbar_count_; }

  CrossbarId crossbar_of(std::uint32_t neuron) const {
    return assignment_.at(neuron);
  }
  void assign(std::uint32_t neuron, CrossbarId crossbar);

  const std::vector<CrossbarId>& assignment() const noexcept {
    return assignment_;
  }

  /// Neurons currently on each crossbar.
  std::vector<std::uint32_t> occupancy() const;

  /// Eq. 4: every neuron assigned to exactly one crossbar.
  bool is_complete() const noexcept;
  /// Eq. 5: no crossbar holds more than `capacity` neurons.
  bool satisfies_capacity(std::uint32_t capacity) const;

  /// Throws std::runtime_error naming the violated constraint, if any.
  void validate(const hw::Architecture& arch) const;

  /// Neurons resident on one crossbar (convenience for reports).
  std::vector<std::uint32_t> neurons_on(CrossbarId crossbar) const;

  friend bool operator==(const Partition&, const Partition&) = default;

 private:
  std::vector<CrossbarId> assignment_;
  std::uint32_t crossbar_count_ = 0;
};

}  // namespace snnmap::core
