// Interconnect metrics, including the two SNN-specific metrics the paper
// introduces (Sec. II):
//
//  * Spike disorder count — fraction of delivered spikes that arrive at a
//    destination after a spike that was emitted later ("crossbar with B is
//    arbitrated to occupy the interconnect prior to crossbar with A").
//  * Inter-spike-interval (ISI) distortion — per (source neuron, destination)
//    stream, the difference between consecutive emission intervals and the
//    corresponding arrival intervals, caused by congestion delaying some
//    packets more than others.  Table II reports the average; Sec. III also
//    defines the maximum — both are computed.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "noc/topology.hpp"
#include "util/stats.hpp"

namespace snnmap::noc {

/// One delivered spike copy, as observed by the destination decoder.
struct DeliveredSpike {
  std::uint32_t source_neuron = 0;
  TileId source_tile = 0;
  TileId dest_tile = 0;
  std::uint64_t emit_cycle = 0;  ///< cycle the encoder transmitted the packet
  /// SNN timestep (ms index) of the spike.  Disorder is judged on this, not
  /// on emit_cycle: spikes of the same 1 ms step have no defined order (the
  /// encoder serializes them arbitrarily), so only cross-step overtaking is
  /// information loss.
  std::uint64_t emit_step = 0;
  std::uint64_t recv_cycle = 0;  ///< cycle the decoder received it
  std::uint32_t sequence = 0;    ///< per-source-neuron emission counter

  std::uint64_t latency() const noexcept { return recv_cycle - emit_cycle; }
};

/// Conventional interconnect statistics (latency/energy/throughput, Sec. II).
struct NocStats {
  std::uint64_t packets_injected = 0;   ///< traffic events offered
  std::uint64_t flits_injected = 0;     ///< flit copies entering the NoC
  std::uint64_t copies_delivered = 0;   ///< flit copies reaching a decoder
  std::uint64_t link_hops = 0;          ///< flit-link traversals
  std::uint64_t router_traversals = 0;  ///< flit-router traversals
  double global_energy_pj = 0.0;        ///< interconnect (global synapse) energy
  util::Accumulator latency_cycles;     ///< per delivered copy
  std::uint64_t max_latency_cycles = 0;
  std::uint64_t duration_cycles = 0;    ///< cycles until the NoC drained
  bool drained = true;                  ///< false if max_cycles was hit
  /// Flit traversals per directed link, keyed (from_router << 32) | to.
  /// Exposes hotspots; summarized by link_utilization_*() below.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> link_flits;

  /// AER packets per millisecond observed at decoders.
  double throughput_aer_per_ms(std::uint32_t cycles_per_ms) const noexcept;

  /// Max and mean flits over links that carried traffic (0 when none).
  std::uint64_t max_link_flits() const noexcept;
  double mean_link_flits() const noexcept;
  /// Hotspot factor: max/mean over used links (1.0 = perfectly even).
  double link_hotspot_factor() const noexcept;
};

/// The paper's SNN performance metrics.
struct SnnMetrics {
  double isi_distortion_avg_cycles = 0.0;
  double isi_distortion_max_cycles = 0.0;
  double disorder_fraction = 0.0;  ///< disordered spikes / delivered spikes
  std::uint64_t disordered_spikes = 0;
  std::uint64_t delivered_spikes = 0;
  std::uint64_t isi_pairs = 0;  ///< number of (stream, consecutive-pair) samples

  double disorder_percent() const noexcept { return disorder_fraction * 100.0; }
};

/// Computes disorder + ISI distortion from the delivery log.
/// Disorder: per destination tile, scan deliveries in arrival order and count
/// spikes overtaken by a later-emitted spike.
/// ISI distortion: per (source neuron, destination tile) stream in emission
/// order, |(recv_i - recv_{i-1}) - (emit_i - emit_{i-1})|.
SnnMetrics compute_snn_metrics(std::vector<DeliveredSpike> delivered);

}  // namespace snnmap::noc
