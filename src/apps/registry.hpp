// Application registry — maps the workload names used throughout the paper's
// evaluation ("HW", "IS", "HD", "HE", "synth_MxN" / "MxN") to builders, so
// every bench harness and example can construct workloads by name.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "snn/graph.hpp"

namespace snnmap::apps {

struct AppInfo {
  std::string name;         ///< canonical short name (e.g. "HW")
  std::string full_name;    ///< paper name (e.g. "hello world")
  std::string topology;     ///< Table I topology string
  std::function<snn::SnnGraph(std::uint64_t seed)> build;
};

/// The four realistic applications of Table I, in paper order.
const std::vector<AppInfo>& realistic_apps();

/// Builds any workload by name: one of the Table I short/full names, or a
/// synthetic "MxN" / "synth_MxN" topology.  Throws std::invalid_argument on
/// unknown names.
snn::SnnGraph build_app(const std::string& name, std::uint64_t seed);

/// True if `name` resolves (realistic or synthetic).
bool is_known_app(const std::string& name);

}  // namespace snnmap::apps
