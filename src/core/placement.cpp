#include "core/placement.hpp"

#include <stdexcept>

namespace snnmap::core {

Placement identity_placement(std::uint32_t crossbar_count,
                             const noc::Topology& topology) {
  if (topology.tile_count() < crossbar_count) {
    throw std::invalid_argument("identity_placement: topology has " +
                                std::to_string(topology.tile_count()) +
                                " tiles for " +
                                std::to_string(crossbar_count) + " crossbars");
  }
  Placement p(crossbar_count);
  for (std::uint32_t k = 0; k < crossbar_count; ++k) p[k] = k;
  return p;
}

std::uint64_t placement_cost(const Placement& placement,
                             const std::vector<std::uint64_t>& traffic_matrix,
                             const noc::Topology& topology) {
  const std::size_t c = placement.size();
  if (traffic_matrix.size() != c * c) {
    throw std::invalid_argument("placement_cost: traffic matrix size mismatch");
  }
  std::uint64_t cost = 0;
  for (std::size_t k1 = 0; k1 < c; ++k1) {
    for (std::size_t k2 = 0; k2 < c; ++k2) {
      const std::uint64_t t = traffic_matrix[k1 * c + k2];
      if (t == 0 || k1 == k2) continue;
      cost += t * topology.hop_distance(placement[k1], placement[k2]);
    }
  }
  return cost;
}

Placement greedy_placement(const std::vector<std::uint64_t>& traffic_matrix,
                           std::uint32_t crossbar_count,
                           const noc::Topology& topology,
                           std::uint32_t max_passes) {
  Placement placement = identity_placement(crossbar_count, topology);
  std::uint64_t cost = placement_cost(placement, traffic_matrix, topology);
  for (std::uint32_t pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    for (std::uint32_t a = 0; a < crossbar_count; ++a) {
      for (std::uint32_t b = a + 1; b < crossbar_count; ++b) {
        std::swap(placement[a], placement[b]);
        const std::uint64_t trial =
            placement_cost(placement, traffic_matrix, topology);
        if (trial < cost) {
          cost = trial;
          improved = true;
        } else {
          std::swap(placement[a], placement[b]);  // revert
        }
      }
    }
    if (!improved) break;
  }
  return placement;
}

}  // namespace snnmap::core
