// Domain example 2: temporal coding end-to-end — the heartbeat-estimation
// LSM ("HE").  Shows why the paper's ISI-distortion metric matters: the
// heart rate is read out of inter-spike intervals, so interconnect
// congestion translates directly into estimation error (Sec. V-B: "20%
// reduction of ISI distortion improves estimation accuracy by over 5%").
//
//   ./build/examples/heartbeat_temporal
#include <algorithm>
#include <iostream>

#include "apps/heartbeat.hpp"
#include "core/framework.hpp"
#include "util/table.hpp"

int main() {
  using namespace snnmap;

  apps::HeartbeatConfig app;
  app.seed = 3;
  apps::HeartbeatGroundTruth truth;
  const snn::SnnGraph graph = apps::build_heartbeat(app, &truth);
  std::cout << "ECG ground truth: " << truth.r_peak_times_ms.size()
            << " beats, mean RR " << truth.mean_rr_ms << " ms ("
            << 60000.0 / truth.mean_rr_ms << " bpm)\n";

  // Reference estimate from the undistorted readout trains.
  snn::SpikeTrain merged;
  for (std::uint32_t i = 0; i < truth.readout_count; ++i) {
    merged = snn::merge_trains(merged, graph.spike_train(truth.readout_first + i));
  }
  const double clean_rr = apps::estimate_mean_rr_ms(merged);
  std::cout << "Readout estimate (no interconnect): " << clean_rr << " ms, "
            << "error "
            << apps::heart_rate_error_percent(clean_rr, truth.mean_rr_ms)
            << " %\n\n";

  util::Table table({"mapper", "avg ISI distortion (cycles)",
                     "max ISI distortion", "disorder (%)",
                     "max latency (cycles)"});
  for (const auto kind :
       {core::PartitionerKind::kPacman, core::PartitionerKind::kPso}) {
    core::MappingFlowConfig flow;
    flow.arch = hw::Architecture::cxquad();
    flow.arch.neurons_per_crossbar = 32;  // stress the interconnect
    flow.arch.crossbar_count = 4;
    flow.partitioner = kind;
    flow.pso.swarm_size = 60;
    flow.pso.iterations = 60;
    const core::MappingReport report = core::run_mapping_flow(graph, flow);
    table.begin_row();
    table.cell(std::string(core::to_string(kind)));
    table.cell(report.snn_metrics.isi_distortion_avg_cycles, 2);
    table.cell(report.snn_metrics.isi_distortion_max_cycles, 1);
    table.cell(report.snn_metrics.disorder_percent(), 3);
    table.cell(static_cast<std::size_t>(report.noc_stats.max_latency_cycles));
  }
  std::cout << table.to_ascii();
  std::cout << "\nLower ISI distortion preserves the temporal code the "
               "readout depends on.\n";
  return 0;
}
