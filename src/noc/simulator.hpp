// Cycle-accurate simulator of the time-multiplexed global-synapse
// interconnect (the Noxim++ substitute).
//
// The simulator consumes a spike traffic trace (one SpikePacketEvent per
// source-neuron spike, with the set of destination crossbars computed by the
// mapping flow), runs the routers cycle by cycle with backpressure and
// round-robin arbitration, and produces the conventional metrics
// (latency / energy / throughput) plus the delivery log from which the
// SNN-specific metrics (disorder, ISI distortion) are computed.
//
// The hot path is flat-array and worklist-driven (see README "NoC simulator
// architecture"): routing decisions are O(1) loads from Topology's packed
// route table, multicast destination sets live in a pooled arena so forking
// a subset at a router is a partition instead of an allocate-copy-erase, and
// only routers with buffered flits are visited each cycle.  The cycle-level
// semantics are bit-identical to the original per-router scan engine
// (pinned by tests/noc/golden_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "hw/energy_model.hpp"
#include "noc/metrics.hpp"
#include "noc/router.hpp"
#include "noc/topology.hpp"

namespace snnmap::noc {

/// One spike offered to the interconnect.
struct SpikePacketEvent {
  std::uint64_t emit_cycle = 0;
  /// SNN timestep (ms index) of the spike; used for disorder accounting
  /// (see DeliveredSpike::emit_step).
  std::uint64_t emit_step = 0;
  std::uint32_t source_neuron = 0;
  TileId source_tile = 0;
  /// Remote crossbars holding at least one post-synaptic neuron.  Must not
  /// contain source_tile (local synapses never enter the NoC).
  std::vector<TileId> dest_tiles;
};

/// How a flit with several legal (adaptive) next hops picks one — Noxim's
/// "selection strategy".  Applies to single-destination flits under the
/// adaptive mesh routings; multi-destination (multicast) flits always take
/// each destination's first candidate.
enum class SelectionStrategy : std::uint8_t {
  kFirstCandidate,  ///< deterministic: lowest-priority candidate that fits
  kBufferLevel,     ///< congestion-aware: most free downstream buffer space
};

const char* to_string(SelectionStrategy selection) noexcept;

struct NocConfig {
  std::uint32_t buffer_depth = 4;  ///< flits per inter-router input FIFO
  bool multicast = true;           ///< false = source-replicated unicasts
  SelectionStrategy selection = SelectionStrategy::kFirstCandidate;
  hw::EnergyModel energy;
  /// Safety bound; the run reports drained=false if traffic does not
  /// complete within this many cycles.
  std::uint64_t max_cycles = 20'000'000;
  /// Streaming-stats mode: when false, the run aggregates NocStats online
  /// but does not materialize a DeliveredSpike per delivered copy (and the
  /// log-derived SnnMetrics stay zero).  Use for large traces where only
  /// the conventional metrics matter.
  bool collect_delivered = true;
};

struct NocRunResult {
  NocStats stats;
  /// Zero when the run used collect_delivered = false.
  SnnMetrics snn;
  /// Empty when the run used collect_delivered = false.
  std::vector<DeliveredSpike> delivered;
};

class NocSimulator {
 public:
  /// Throws std::invalid_argument on degenerate configs (buffer_depth == 0
  /// would deadlock every inter-router FIFO; max_cycles == 0 could never
  /// simulate a cycle).
  NocSimulator(Topology topology, NocConfig config);

  /// Simulates the trace to completion (or max_cycles).  The trace is sorted
  /// by emit_cycle internally; sequence numbers are assigned per source
  /// neuron in emission order.
  NocRunResult run(std::vector<SpikePacketEvent> traffic);

  const Topology& topology() const noexcept { return topology_; }
  const NocConfig& config() const noexcept { return config_; }

 private:
  Topology topology_;
  NocConfig config_;
  // Flat per-port geometry, hoisted out of the cycle loop: global port index
  // port_base_[r] + p addresses (router r, inter-router port p) in
  // neighbor_/reverse_port_ and in the per-cycle staged/link counters.
  std::vector<std::uint32_t> port_base_;     // prefix sums; size n + 1
  std::vector<RouterId> neighbor_;           // neighbor router per port
  std::vector<std::uint32_t> reverse_port_;  // input port at that neighbor
  std::vector<RouterId> tile_router_;        // tile -> attached router
};

}  // namespace snnmap::noc
