#include "apps/synthetic.hpp"

#include <stdexcept>

#include "snn/network.hpp"
#include "snn/simulator.hpp"

namespace snnmap::apps {

snn::Network build_synthetic_network(const SyntheticConfig& config) {
  if (config.layers == 0 || config.neurons_per_layer == 0) {
    throw std::invalid_argument("build_synthetic: empty topology");
  }
  util::Rng rng(config.seed);
  snn::Network net;

  const auto input =
      net.add_poisson_group("input", config.input_neurons, 0.0);
  const double lo = config.min_rate_hz;
  const double hi = config.max_rate_hz;
  const std::uint32_t inputs = config.input_neurons;
  net.set_rate_function(input, [lo, hi, inputs](std::uint32_t local, double) {
    // Mean firing rates spread evenly over [lo, hi] Hz.
    return lo + (hi - lo) * static_cast<double>(local) /
                    static_cast<double>(inputs > 1 ? inputs - 1 : 1);
  });

  // LIF layers; weights scale with 1/fan_in so that every layer stays in a
  // biologically plausible firing regime (validated by the property tests).
  snn::LifParams lif;
  lif.tau_m_ms = 16.0;
  std::vector<snn::Network::GroupId> layers;
  for (std::uint32_t l = 0; l < config.layers; ++l) {
    layers.push_back(net.add_lif_group("layer" + std::to_string(l),
                                       config.neurons_per_layer, lif));
  }
  const double input_fan = static_cast<double>(config.input_neurons);
  net.connect_full(input, layers.front(),
                   snn::WeightSpec::uniform(100.0 / input_fan,
                                            150.0 / input_fan),
                   rng);
  const double layer_fan = static_cast<double>(config.neurons_per_layer);
  for (std::size_t l = 1; l < layers.size(); ++l) {
    net.connect_full(layers[l - 1], layers[l],
                     snn::WeightSpec::uniform(90.0 / layer_fan,
                                              140.0 / layer_fan),
                     rng);
  }
  return net;
}

snn::SimulationConfig synthetic_sim_config(const SyntheticConfig& config) {
  snn::SimulationConfig sim_config;
  sim_config.seed = config.seed;
  sim_config.duration_ms = config.duration_ms;
  return sim_config;
}

snn::SnnGraph build_synthetic(const SyntheticConfig& config) {
  snn::Network net = build_synthetic_network(config);
  snn::Simulator sim(net, synthetic_sim_config(config));
  return snn::SnnGraph::from_simulation(net, sim.run());
}

SyntheticConfig parse_synthetic_name(const std::string& name) {
  std::string body = name;
  if (body.rfind("synth_", 0) == 0) body = body.substr(6);
  const auto x = body.find('x');
  if (x == std::string::npos || x == 0 || x + 1 >= body.size()) {
    throw std::invalid_argument("parse_synthetic_name: expected MxN, got '" +
                                name + "'");
  }
  SyntheticConfig config;
  try {
    config.layers = static_cast<std::uint32_t>(std::stoul(body.substr(0, x)));
    config.neurons_per_layer =
        static_cast<std::uint32_t>(std::stoul(body.substr(x + 1)));
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_synthetic_name: expected MxN, got '" +
                                name + "'");
  }
  if (config.layers == 0 || config.neurons_per_layer == 0) {
    throw std::invalid_argument("parse_synthetic_name: zero-sized topology '" +
                                name + "'");
  }
  return config;
}

}  // namespace snnmap::apps
