// Golden-equivalence property: closed-loop co-simulation under an ideal
// interconnect — a cycles_per_timestep budget large enough that every
// packet lands within its emission window, drops disabled — must reproduce
// the standalone snn::Simulator spike log bit for bit on the PR 3 golden
// scenarios (tests/snn/golden_scenarios.hpp), including final synapse
// weights on the STDP scenarios.
//
// Each scenario is mapped onto multiple crossbars so real AER traffic
// crosses the NoC (asserted).  Plastic synapses must stay crossbar-local
// (the engine rejects cut plastic synapses), so the partition groups
// plastically-connected components before block-packing — the co-residency
// rule any STDP-capable mapping must obey anyway.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "../snn/golden_scenarios.hpp"
#include "core/partition.hpp"
#include "core/placement.hpp"
#include "cosim/cosim.hpp"
#include "cosim/fidelity.hpp"
#include "noc/topology.hpp"
#include "test_mappings.hpp"

namespace snnmap::cosim {
namespace {

using test::plastic_safe_partition;

/// Ideal-window budget: far above any queueing the scenarios can produce
/// (every window fully drains, checked by the deadline-miss assertion).
constexpr std::uint32_t kIdealBudget = 1u << 15;

TEST(CoSimIdealEquivalence, GoldenScenariosReproduceStandaloneBitForBit) {
  std::size_t scenarios_with_traffic = 0;
  for (const auto& scenario : snn::golden::scenarios()) {
    SCOPED_TRACE(scenario.name);

    // Standalone reference (its own network instance: STDP mutates state).
    snn::Network reference = scenario.build();
    snn::Simulator standalone(reference, scenario.config);
    const snn::SimulationResult expected = standalone.run();

    snn::Network net = scenario.build();
    const core::Partition partition = plastic_safe_partition(net);
    noc::Topology topology =
        noc::Topology::tree(partition.crossbar_count(), 4);
    const core::Placement placement =
        core::identity_placement(partition.crossbar_count(), topology);

    CoSimConfig config;
    config.snn = scenario.config;
    config.cycles_per_timestep = kIdealBudget;
    CoSimulator cosim(net, partition, placement, std::move(topology),
                      config);
    const CoSimResult result = cosim.run();

    // The interconnect really was ideal...
    EXPECT_EQ(result.fidelity.deadline_misses, 0u);
    EXPECT_EQ(result.fidelity.receive_drops, 0u);
    EXPECT_EQ(result.fidelity.undelivered, 0u);
    if (result.fidelity.packets_offered > 0) ++scenarios_with_traffic;

    // ...and the dynamics are bit-identical: spike log and final weights.
    EXPECT_EQ(result.snn.total_spikes, expected.total_spikes);
    EXPECT_EQ(result.snn.spikes, expected.spikes);
    ASSERT_EQ(net.synapses().size(), reference.synapses().size());
    for (std::size_t s = 0; s < net.synapses().size(); ++s) {
      EXPECT_EQ(net.synapses()[s].weight, reference.synapses()[s].weight)
          << "synapse " << s;
    }
  }
  // The property is vacuous unless the mappings actually ship spikes.
  EXPECT_GE(scenarios_with_traffic, 8u);
}

}  // namespace
}  // namespace snnmap::cosim
