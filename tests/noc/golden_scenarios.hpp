// Shared scenario definitions for the NoC simulator golden determinism
// tests.  The fixtures in golden_fixtures.inc were captured from the
// pre-refactor (PR 1) simulator by running snnmap_noc_golden_capture; the
// golden test replays the identical scenarios on the current simulator and
// requires bit-identical delivered-spike streams and statistics.
//
// Scenarios only touch the public simulator API, so they survive internal
// rewrites.  Every scenario is fully deterministic (util::Rng-seeded
// traffic); covered axes: mesh/tree/ring topologies, all four mesh routing
// algorithms, both selection strategies, multicast on/off, deep and shallow
// buffers, and a non-drained (max_cycles exceeded) run.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "../support/fnv1a.hpp"
#include "noc/simulator.hpp"
#include "noc/traffic_patterns.hpp"
#include "util/rng.hpp"

namespace snnmap::noc::golden {

struct Scenario {
  std::string name;
  Topology topology;
  NocConfig config;
  std::vector<SpikePacketEvent> traffic;
};

/// Order-sensitive digest of everything a NocRunResult exposes.
struct Digest {
  std::uint64_t delivered_hash = 0;  ///< full delivery log, delivery order
  std::uint64_t stats_hash = 0;      ///< every NocStats field incl. link map
  std::uint64_t snn_hash = 0;        ///< disorder / ISI metrics
  std::uint64_t copies_delivered = 0;
  std::uint64_t duration_cycles = 0;
  std::uint64_t link_hops = 0;
};

namespace detail {
using Fnv1a = snnmap::test::Fnv1a;
}  // namespace detail

inline Digest digest_of(const NocRunResult& result) {
  Digest d;
  detail::Fnv1a delivered;
  for (const DeliveredSpike& s : result.delivered) {
    delivered.mix(static_cast<std::uint64_t>(s.source_neuron));
    delivered.mix(static_cast<std::uint64_t>(s.source_tile));
    delivered.mix(static_cast<std::uint64_t>(s.dest_tile));
    delivered.mix(s.emit_cycle);
    delivered.mix(s.emit_step);
    delivered.mix(s.recv_cycle);
    delivered.mix(static_cast<std::uint64_t>(s.sequence));
  }
  d.delivered_hash = delivered.value();

  const NocStats& st = result.stats;
  detail::Fnv1a stats;
  stats.mix(st.packets_injected);
  stats.mix(st.flits_injected);
  stats.mix(st.copies_delivered);
  stats.mix(st.link_hops);
  stats.mix(st.router_traversals);
  stats.mix(st.global_energy_pj);
  stats.mix(static_cast<std::uint64_t>(st.latency_cycles.count()));
  stats.mix(st.latency_cycles.sum());
  stats.mix(st.latency_cycles.mean());
  stats.mix(st.latency_cycles.variance());
  stats.mix(st.latency_cycles.min());
  stats.mix(st.latency_cycles.max());
  stats.mix(st.max_latency_cycles);
  stats.mix(st.duration_cycles);
  stats.mix(static_cast<std::uint64_t>(st.drained ? 1 : 0));
  for (const auto& [link, flits] : st.link_flits) {
    stats.mix(link);
    stats.mix(flits);
  }
  d.stats_hash = stats.value();

  const SnnMetrics& sm = result.snn;
  detail::Fnv1a snn;
  snn.mix(sm.isi_distortion_avg_cycles);
  snn.mix(sm.isi_distortion_max_cycles);
  snn.mix(sm.disorder_fraction);
  snn.mix(sm.disordered_spikes);
  snn.mix(sm.delivered_spikes);
  snn.mix(sm.isi_pairs);
  d.snn_hash = snn.value();

  d.copies_delivered = st.copies_delivered;
  d.duration_cycles = st.duration_cycles;
  d.link_hops = st.link_hops;
  return d;
}

inline std::vector<Scenario> scenarios() {
  std::vector<Scenario> list;

  const auto mesh = [](MeshRouting routing) {
    Topology t = Topology::mesh(4, 4);
    t.set_mesh_routing(routing);
    return t;
  };
  const auto config = [](std::uint32_t buffer_depth, bool multicast,
                         SelectionStrategy selection,
                         std::uint64_t max_cycles = 20'000'000) {
    NocConfig c;
    c.buffer_depth = buffer_depth;
    c.multicast = multicast;
    c.selection = selection;
    c.max_cycles = max_cycles;
    return c;
  };
  constexpr auto kFirst = SelectionStrategy::kFirstCandidate;
  constexpr auto kLevel = SelectionStrategy::kBufferLevel;

  list.push_back({"mesh4x4_xy_multicast", mesh(MeshRouting::kXY),
                  config(4, true, kFirst),
                  patterns::multicast_traffic(101, 16, 1500, 5, 4)});
  list.push_back({"mesh4x4_xy_unicast", mesh(MeshRouting::kXY),
                  config(4, false, kFirst),
                  patterns::multicast_traffic(101, 16, 1500, 5, 4)});
  list.push_back({"mesh4x4_yx_multicast_buffer2", mesh(MeshRouting::kYX),
                  config(2, true, kFirst),
                  patterns::multicast_traffic(202, 16, 1200, 4, 6)});
  list.push_back({"mesh4x4_westfirst_first_candidate",
                  mesh(MeshRouting::kWestFirst), config(2, true, kFirst),
                  patterns::mesh_hotspot_traffic(7, 3000)});
  list.push_back({"mesh4x4_westfirst_buffer_level",
                  mesh(MeshRouting::kWestFirst), config(2, true, kLevel),
                  patterns::mesh_hotspot_traffic(7, 3000)});
  // Multicast flits that decay to a single remaining destination exercise
  // the late switch into adaptive selection.
  list.push_back({"mesh4x4_northlast_buffer_level",
                  mesh(MeshRouting::kNorthLast), config(2, true, kLevel),
                  patterns::multicast_traffic(303, 16, 1200, 3, 6)});
  list.push_back({"tree16x4_multicast", Topology::tree(16, 4),
                  config(4, true, kFirst),
                  patterns::multicast_traffic(404, 16, 1500, 6, 4)});
  list.push_back({"tree16x4_unicast_buffer1", Topology::tree(16, 4),
                  config(1, false, kFirst),
                  patterns::multicast_traffic(404, 16, 800, 4, 3)});
  list.push_back({"ring9_multicast", Topology::ring(9),
                  config(4, true, kFirst),
                  patterns::multicast_traffic(505, 9, 600, 3, 1)});
  list.push_back({"mesh4x4_xy_not_drained", mesh(MeshRouting::kXY),
                  config(1, true, kFirst, /*max_cycles=*/120),
                  patterns::multicast_traffic(606, 16, 2000, 6, 50)});
  // Multi-chip fabrics: one chip per dragonfly group / fat-tree pod, so
  // off-chip SerDes latency and the distinct boundary energy shape the
  // delivered stream (captured post-PR-6; pinned forever after).
  Topology dragonfly = Topology::dragonfly(4, 5, 1);
  dragonfly.assign_chips(5);
  list.push_back({"dragonfly4x5x1_5chip_multicast", std::move(dragonfly),
                  config(4, true, kFirst),
                  patterns::multicast_traffic(707, 20, 1200, 5, 4)});
  Topology fattree = Topology::fattree(4);
  fattree.assign_chips(4);
  list.push_back({"fattree4_4chip_unicast_buffer_level", std::move(fattree),
                  config(2, false, kLevel),
                  patterns::multicast_traffic(808, 8, 900, 3, 3)});

  // Faulted fabric (captured post-PR-7): seeded random link/tile faults,
  // transient outages, and lossy wires over XY-mesh multicast traffic.  The
  // digest fields are fault-free quantities, so this scenario pins the
  // fault-aware reroute/prune path without touching the older fixtures.
  {
    NocConfig faulted = config(4, true, kFirst);
    faulted.faults.seed = 909;
    faulted.faults.link_fault_rate = 0.08;
    faulted.faults.tile_fault_rate = 0.05;
    faulted.faults.transient_link_rate = 0.15;
    faulted.faults.transient_duration_cycles = 400;
    faulted.faults.flit_drop_probability = 0.02;
    faulted.faults.horizon_cycles = 4'000;
    list.push_back({"mesh4x4_xy_multicast_faulted", mesh(MeshRouting::kXY),
                    std::move(faulted),
                    patterns::multicast_traffic(909, 16, 1500, 5, 4)});
  }

  return list;
}

}  // namespace snnmap::noc::golden
