// Fixture: every forbidden nondeterminism source, one per line, plus a
// bare waiver that must NOT silence its line (no justification text).
#include <random>
#include <chrono>

namespace fixture {

unsigned draw() {
  std::random_device rd;
  std::mt19937 gen(rd());
  std::uniform_int_distribution<unsigned> dist(0, 9);
  return dist(gen);
}

double now_seconds() {
  const auto t = std::chrono::steady_clock::now();
  return static_cast<double>(t.time_since_epoch().count());
}

unsigned legacy() {
  srand(42);
  // snnmap-lint: allow(nondeterminism)
  return static_cast<unsigned>(rand());
}

const char* ambient() { return getenv("SNNMAP_MODE"); }

}  // namespace fixture
