#include "noc/aer.hpp"

#include <stdexcept>

namespace snnmap::noc {

AerWord aer_encode(const AerEvent& event) {
  if (event.source_neuron > kAerMaxNeuron) {
    throw std::out_of_range("aer_encode: neuron id exceeds 20-bit field");
  }
  if (event.source_crossbar > kAerMaxCrossbar) {
    throw std::out_of_range("aer_encode: crossbar id exceeds 12-bit field");
  }
  AerWord w;
  w.bits = (static_cast<std::uint64_t>(event.source_neuron)
            << (kAerCrossbarBits + kAerTimeBits)) |
           (static_cast<std::uint64_t>(event.source_crossbar) << kAerTimeBits) |
           static_cast<std::uint64_t>(event.timestamp);
  return w;
}

AerEvent aer_decode(AerWord word) noexcept {
  AerEvent e;
  e.timestamp = static_cast<std::uint32_t>(word.bits & 0xFFFFFFFFULL);
  e.source_crossbar = static_cast<std::uint32_t>(
      (word.bits >> kAerTimeBits) & kAerMaxCrossbar);
  e.source_neuron = static_cast<std::uint32_t>(
      (word.bits >> (kAerCrossbarBits + kAerTimeBits)) & kAerMaxNeuron);
  return e;
}

}  // namespace snnmap::noc
