// Deterministic event tracing for the NoC / co-simulation stack.
//
// The tracer is a flat ring buffer of typed, integer-timestamped events —
// flit lifecycle (inject / hop / park / deliver / drop), fault transitions,
// AER retries, remap triggers, DVFS window decisions — recorded from gated
// call sites in noc::NocSimulator and cosim::CoSimulator.  Gating follows
// the fault subsystem's discipline: every call site tests one hoisted bool
// (`trace_active_`), so a default TraceConfig records nothing and the
// disabled path costs a predictable branch (BM_TraceOverhead pins it
// within noise of a trace-free build).
//
// Determinism contract: the recorded stream is a pure function of
// (config, topology, traffic).  Trace events are emitted only when fabric
// state actually changes, and a cycle the event engine skips is by
// definition one in which nothing changes, so the stream is bit-identical
// across NocEngine::kCycle / kEvent and across any run_until / window
// chunking of a session (tests/obs/trace_determinism_test.cpp pins both).
// Fault-transition events carry their *scheduled* timeline cycle and are
// recorded up front at session begin — the timeline is a pure function of
// (topology, FaultConfig) — because the cycle at which an idle fabric
// happens to apply a batch of transitions is chunking-dependent.
//
// The ring keeps the most recent `ring_capacity` events for export; the
// FNV-1a digest is mixed at record time and therefore covers the *entire*
// stream, wraparound or not, which is what the determinism tests compare.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace snnmap::obs {

/// Event-tracer settings.  Defaults are inert: nothing records and no
/// trace branch in the simulators is ever taken, preserving every golden
/// stream bit for bit.
struct TraceConfig {
  bool enabled = false;
  /// Events the ring retains for export (the digest always covers the full
  /// stream).  Must be >= 1 when enabled.
  std::uint32_t ring_capacity = 65536;

  /// Throws std::invalid_argument when enabled with a zero ring capacity
  /// (parity with hw::EnergyModel::validate() / FaultConfig::validate()).
  void validate() const;
};

/// What one TraceEvent describes.  Values are part of the trace schema
/// (CSV export writes the names, the digest mixes the raw values); append
/// new types at the end, never reorder.
enum class TraceEventType : std::uint8_t {
  kFlitInject = 0,   ///< a = source router, b = destination copies, c = neuron
  kFlitHop = 1,      ///< a = from router, b = out port, c = neuron
  kFlitPark = 2,     ///< a = at router, b = in port, c = un-park cycle
  kFlitDeliver = 3,  ///< a = dest router, b = dest tile, c = neuron
  kFlitDrop = 4,     ///< lossy wire: a = from router, b = out port, c = neuron
  kFaultLinkDown = 5,    ///< a = router, b = port (scheduled cycle)
  kFaultLinkUp = 6,      ///< a = router, b = port (transient heal)
  kFaultRouterDown = 7,  ///< a = router
  kFaultRouterUp = 8,    ///< a = router
  kFaultTileDown = 9,    ///< a = tile
  kFaultTileUp = 10,     ///< a = tile
  kAerRetry = 11,      ///< a = neuron, b = dest tile, c = attempt number
  kRemapTrigger = 12,  ///< a = dead crossbars, b = migrated, c = stranded
  kDvfsDecision = 13,  ///< a = window cycles, b = nominal cycles, c = step
};

/// Number of distinct TraceEventType values (CSV header / name table).
inline constexpr std::size_t kTraceEventTypeCount = 14;

const char* to_string(TraceEventType type) noexcept;

/// One trace record.  `cycle` is virtual interconnect time; the meaning of
/// a / b / c depends on `type` (see TraceEventType).
struct TraceEvent {
  std::uint64_t cycle = 0;
  TraceEventType type = TraceEventType::kFlitInject;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t c = 0;

  bool operator==(const TraceEvent&) const = default;
};

/// The ring-buffer event recorder.  Owned by NocSimulator (one per
/// session); CoSimulator records its lockstep-level events through the
/// same instance so the stream interleaves fabric and protocol activity
/// in deterministic record order.
class Tracer {
 public:
  /// Applies a validated config: reset() + enable/resize.  Called from
  /// NocSimulator::begin() so every session starts with an empty stream.
  void configure(const TraceConfig& config);

  /// Drops all recorded events and restarts the digest.
  void reset();

  bool enabled() const noexcept { return enabled_; }

  /// Appends one event.  Callers gate on enabled() (hoisted, like
  /// faults_active_); record() itself does not re-check.
  void record(std::uint64_t cycle, TraceEventType type, std::uint32_t a,
              std::uint32_t b, std::uint64_t c) {
    mix(cycle);
    mix((static_cast<std::uint64_t>(a) << 8) |
        static_cast<std::uint64_t>(type));
    mix((static_cast<std::uint64_t>(b) << 32) ^ c);
    ++recorded_;
    if (ring_.size() < capacity_) {
      ring_.push_back(TraceEvent{cycle, type, a, b, c});
      return;
    }
    ring_[head_] = TraceEvent{cycle, type, a, b, c};
    head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
  }

  /// Events recorded since the last reset (including any the ring evicted).
  std::uint64_t recorded() const noexcept { return recorded_; }
  /// Events the ring evicted (recorded() - retained).
  std::uint64_t evicted() const noexcept { return recorded_ - ring_.size(); }

  /// FNV-1a digest over the full recorded stream (order-sensitive).
  std::uint64_t digest() const noexcept { return digest_; }

  /// The retained events, oldest first (unwraps the ring).  O(retained).
  std::vector<TraceEvent> events() const;

 private:
  void mix(std::uint64_t v) noexcept {
    // FNV-1a over the value's 8 bytes, unrolled byte-at-a-time.
    for (int s = 0; s < 64; s += 8) {
      digest_ ^= (v >> s) & 0xffU;
      digest_ *= 0x100000001b3ULL;
    }
  }

  bool enabled_ = false;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;  // next eviction slot once the ring is full
  std::vector<TraceEvent> ring_;
  std::uint64_t recorded_ = 0;
  std::uint64_t digest_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
};

}  // namespace snnmap::obs
