// Resilience-path tests: AER retry protocol validation and recovery,
// timeout loss accounting under permanent faults, remap-on-failure graceful
// degradation, and bit-exact determinism of fully-faulted closed-loop runs.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/partition.hpp"
#include "core/placement.hpp"
#include "cosim/cosim.hpp"
#include "cosim/fidelity.hpp"
#include "hw/architecture.hpp"
#include "noc/faults.hpp"
#include "noc/topology.hpp"
#include "snn/network.hpp"
#include "snn/simulator.hpp"
#include "util/rng.hpp"

namespace snnmap::cosim {
namespace {

/// Two Poisson-driven LIF populations wired across both directions (the
/// cosim_test.cpp fixture): in + a on crossbar 0, b on crossbar 1.
snn::Network two_block_network(std::uint64_t wiring_seed = 5) {
  snn::Network net;
  util::Rng rng(wiring_seed);
  const auto in = net.add_poisson_group("in", 12, 60.0);
  const auto a = net.add_lif_group("a", 12);
  const auto b = net.add_lif_group("b", 12);
  net.connect_random(in, a, 0.7, snn::WeightSpec::uniform(9.0, 14.0), rng);
  net.connect_random(a, b, 0.5, snn::WeightSpec::uniform(8.0, 12.0), rng,
                     /*delay=*/2);
  net.connect_random(b, a, 0.4, snn::WeightSpec::uniform(-4.0, -2.0), rng,
                     /*delay=*/3);
  return net;
}

core::Partition two_block_partition(const snn::Network& net) {
  core::Partition partition(net.neuron_count(), 2);
  for (snn::NeuronId i = 0; i < net.neuron_count(); ++i) {
    partition.assign(i, i < 24 ? 0 : 1);
  }
  return partition;
}

CoSimConfig base_config(double duration_ms = 200.0,
                        std::uint32_t cpt = 4096) {
  CoSimConfig config;
  config.snn.duration_ms = duration_ms;
  config.snn.seed = 9;
  config.cycles_per_timestep = cpt;
  return config;
}

CoSimResult run_two_block(const CoSimConfig& config) {
  snn::Network net = two_block_network();
  const auto partition = two_block_partition(net);
  noc::Topology topology = noc::Topology::ring(2);
  const auto placement = core::identity_placement(2, topology);
  CoSimulator sim(net, partition, placement, std::move(topology), config);
  return sim.run();
}

TEST(AerRetry, RejectsDegenerateRetryConfigs) {
  snn::Network net = two_block_network();
  const auto partition = two_block_partition(net);
  const auto placement = core::identity_placement(2, noc::Topology::ring(2));
  for (int field = 0; field < 3; ++field) {
    auto config = base_config();
    config.retry.enabled = true;
    if (field == 0) config.retry.max_retries = 0;
    if (field == 1) config.retry.backoff_windows = 0;
    if (field == 2) config.retry.timeout_windows = 0;
    EXPECT_THROW(CoSimulator(net, partition, placement,
                             noc::Topology::ring(2), config),
                 std::invalid_argument)
        << field;
  }
  // The same zeros are fine while the protocol is disabled.
  auto config = base_config();
  config.retry.max_retries = 0;
  EXPECT_NO_THROW(CoSimulator(net, partition, placement,
                              noc::Topology::ring(2), config));
}

TEST(AerRetry, DisabledProtocolReportsNothing) {
  const CoSimResult result = run_two_block(base_config());
  EXPECT_EQ(result.resilience.retransmit_packets, 0u);
  EXPECT_EQ(result.resilience.spikes_lost_timeout, 0u);
  EXPECT_EQ(result.resilience.pending_at_end, 0u);
  EXPECT_FALSE(result.resilience.any());
}

TEST(AerRetry, RecoversFlitDropLosses) {
  // A lossy fabric without retry loses synaptic deliveries for good; with
  // the retry protocol nearly all of them are retransmitted and recovered.
  auto lossy = base_config();
  lossy.noc.faults.seed = 21;
  lossy.noc.faults.flit_drop_probability = 0.2;

  const CoSimResult no_retry = run_two_block(lossy);
  ASSERT_GT(no_retry.resilience.noc_faults.flits_dropped, 0u);
  ASSERT_GT(no_retry.fidelity.undelivered, 0u);

  auto with_retry = lossy;
  with_retry.retry.enabled = true;
  with_retry.retry.max_retries = 10;
  with_retry.retry.timeout_windows = 60;
  const CoSimResult retried = run_two_block(with_retry);
  const ResilienceReport& rs = retried.resilience;
  EXPECT_GT(rs.retransmit_packets, 0u);
  EXPECT_GE(rs.retransmit_copies, rs.retransmit_packets);
  EXPECT_GT(rs.retry_recoveries, 0u);
  // Source-side retry energy is priced per retransmitted packet
  // (accumulated sum, so allow FP addition noise).
  EXPECT_NEAR(rs.retransmit_energy_pj,
              static_cast<double>(rs.retransmit_packets) *
                  with_retry.noc.energy.retransmit_pj,
              1e-6);
  // Ten attempts against a 20% drop rate: losing a delivery outright is a
  // ~2e-8 event, so the timeout path stays untouched.
  EXPECT_EQ(rs.spikes_lost_timeout, 0u);
  // Permanent losses with retry (abandoned + still open at run end) stay
  // far below the drop-only run's losses.  fidelity.undelivered is not the
  // comparison: retransmit copies inflate `offered` there by design.
  EXPECT_LT(rs.spikes_lost_timeout + rs.pending_at_end,
            no_retry.fidelity.undelivered);
}

TEST(AerRetry, PermanentTileFaultExhaustsRetriesAndCompletes) {
  // Crossbar b's tile dies mid-run and never heals: every subsequent a->b
  // delivery fails all its retransmits and is abandoned after
  // timeout_windows, with the loss accounted — the run itself completes.
  auto config = base_config();
  noc::ScheduledFault f;
  f.kind = noc::ScheduledFault::Kind::kTile;
  f.tile = 1;
  f.start_cycle = 100 * config.cycles_per_timestep;
  config.noc.faults.scheduled.push_back(f);
  config.retry.enabled = true;
  config.retry.max_retries = 3;
  config.retry.timeout_windows = 8;

  const CoSimResult result = run_two_block(config);
  const ResilienceReport& rs = result.resilience;
  EXPECT_EQ(rs.noc_faults.tile_faults, 1u);
  EXPECT_GT(rs.noc_faults.copies_lost(), 0u);
  EXPECT_GT(rs.retransmit_packets, 0u);
  EXPECT_GT(rs.spikes_lost_timeout, 0u);
  EXPECT_TRUE(rs.any());
  // The loss is visible in the fidelity accounting too.
  EXPECT_GT(result.fidelity.undelivered, 0u);
}

/// Four 12-neuron populations on four 16-capacity crossbars (slack for a
/// full evacuation), excitatory chain in -> a -> b -> c -> a.
struct RemapScenario {
  snn::Network net;
  core::Partition partition{48, 4};
  noc::Topology topology = noc::Topology::mesh(2, 2);
  core::Placement placement;
  hw::Architecture arch;

  RemapScenario() {
    util::Rng rng(13);
    const auto in = net.add_poisson_group("in", 12, 80.0);
    const auto a = net.add_lif_group("a", 12);
    const auto b = net.add_lif_group("b", 12);
    const auto c = net.add_lif_group("c", 12);
    net.connect_random(in, a, 0.7, snn::WeightSpec::uniform(9.0, 14.0), rng);
    net.connect_random(a, b, 0.5, snn::WeightSpec::uniform(8.0, 12.0), rng,
                       /*delay=*/2);
    net.connect_random(b, c, 0.5, snn::WeightSpec::uniform(8.0, 12.0), rng,
                       /*delay=*/2);
    net.connect_random(c, a, 0.3, snn::WeightSpec::uniform(-4.0, -2.0), rng,
                       /*delay=*/3);
    for (snn::NeuronId i = 0; i < 48; ++i) partition.assign(i, i / 12);
    placement = core::identity_placement(4, topology);
    arch.crossbar_count = 4;
    arch.neurons_per_crossbar = 16;
    arch.interconnect = hw::InterconnectKind::kMesh;
  }
};

CoSimConfig remap_config(bool remap_on, const hw::Architecture& arch) {
  CoSimConfig config;
  config.snn.duration_ms = 300.0;
  config.snn.seed = 17;
  config.cycles_per_timestep = 1000;
  // Kill crossbar a's tile a third into the run.
  noc::ScheduledFault f;
  f.kind = noc::ScheduledFault::Kind::kTile;
  f.tile = 1;
  f.start_cycle = 100 * config.cycles_per_timestep;
  config.noc.faults.scheduled.push_back(f);
  config.failure_remap.enabled = remap_on;
  config.failure_remap.arch = arch;
  return config;
}

TEST(RemapOnFailure, EvacuatesDeadCrossbarIntoSlack) {
  RemapScenario s;
  CoSimulator sim(s.net, s.partition, s.placement, s.topology,
                  remap_config(true, s.arch));
  const CoSimResult result = sim.run();
  const ResilienceReport& rs = result.resilience;
  EXPECT_EQ(rs.noc_faults.tile_faults, 1u);
  EXPECT_EQ(rs.remap_events, 1u);
  // All 12 neurons of the dead crossbar fit the 3 x 4 slots of slack.
  EXPECT_EQ(rs.neurons_migrated, 12u);
  EXPECT_EQ(rs.neurons_stranded, 0u);
}

TEST(RemapOnFailure, ReducesPostFaultDivergence) {
  // The acceptance check: against the same ideal-interconnect reference,
  // the remapped run diverges measurably less than the one that keeps
  // sourcing/sinking spikes on dead hardware.
  RemapScenario ideal_s;
  snn::Simulator ideal(ideal_s.net, remap_config(false, ideal_s.arch).snn);
  const auto reference = ideal.run();

  RemapScenario no_remap_s;
  CoSimulator no_remap(no_remap_s.net, no_remap_s.partition,
                       no_remap_s.placement, no_remap_s.topology,
                       remap_config(false, no_remap_s.arch));
  const CoSimResult degraded = no_remap.run();

  RemapScenario remap_s;
  CoSimulator remapped(remap_s.net, remap_s.partition, remap_s.placement,
                       remap_s.topology, remap_config(true, remap_s.arch));
  const CoSimResult healed = remapped.run();

  const SpikeDivergence div_degraded =
      spike_divergence(reference.spikes, degraded.snn.spikes);
  const SpikeDivergence div_healed =
      spike_divergence(reference.spikes, healed.snn.spikes);
  // The fault costs both runs fidelity, but evacuation restores the spike
  // flow while the degraded run starves a whole population.
  EXPECT_GT(div_degraded.fraction(), 0.0);
  EXPECT_LT(div_healed.fraction(), div_degraded.fraction());
}

TEST(Resilience, FaultedClosedLoopRunsAreBitIdentical) {
  // Random faults + drops + retry + remap, twice: identical spike trains
  // and identical resilience counters (the whole fault path is seeded).
  auto make_config = [] {
    RemapScenario s;
    CoSimConfig config = remap_config(true, s.arch);
    config.noc.faults.seed = 31;
    config.noc.faults.flit_drop_probability = 0.1;
    config.retry.enabled = true;
    return config;
  };
  auto run_once = [&] {
    RemapScenario s;
    CoSimulator sim(s.net, s.partition, s.placement, s.topology,
                    make_config());
    return sim.run();
  };
  const CoSimResult a = run_once();
  const CoSimResult b = run_once();

  EXPECT_EQ(a.snn.spikes, b.snn.spikes);  // exact per-neuron spike times
  EXPECT_EQ(a.resilience.noc_faults.flits_dropped,
            b.resilience.noc_faults.flits_dropped);
  EXPECT_EQ(a.resilience.retransmit_packets,
            b.resilience.retransmit_packets);
  EXPECT_EQ(a.resilience.retry_recoveries, b.resilience.retry_recoveries);
  EXPECT_EQ(a.resilience.spikes_lost_timeout,
            b.resilience.spikes_lost_timeout);
  EXPECT_EQ(a.resilience.neurons_migrated, b.resilience.neurons_migrated);
  EXPECT_EQ(a.fidelity.copies_arrived, b.fidelity.copies_arrived);
  EXPECT_EQ(a.fidelity.fabric_energy_pj, b.fidelity.fabric_energy_pj);
}

TEST(Resilience, FaultFreeRunMatchesPreFaultSubsystemExactly) {
  // A config with the resilience features compiled in but inert (no
  // faults, retry/remap off) must reproduce the plain run bit for bit.
  const CoSimResult plain = run_two_block(base_config());
  auto gated = base_config();
  gated.noc.faults = noc::FaultConfig{};
  gated.retry = AerRetryConfig{};
  const CoSimResult same = run_two_block(gated);
  EXPECT_EQ(plain.snn.spikes, same.snn.spikes);
  EXPECT_EQ(plain.fidelity.copies_arrived, same.fidelity.copies_arrived);
  EXPECT_EQ(plain.fidelity.fabric_energy_pj, same.fidelity.fabric_energy_pj);
  EXPECT_FALSE(same.resilience.any());
}

}  // namespace
}  // namespace snnmap::cosim
