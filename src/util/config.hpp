// YAML-subset configuration parser.
//
// Noxim loads its power model from a YAML file; the paper's Noxim++ keeps that
// mechanism ("users can modify the power values in external loaded YAML
// file").  We reproduce the same workflow with a small, dependency-free
// parser covering the subset those files actually use:
//
//   # comment
//   key: value            (scalar: int, float, bool, string)
//   section:
//     nested_key: 3.14    (one level of two-space indentation)
//   list_key: [1, 2, 3]   (flow-style scalar lists)
//
// Keys are exposed flattened as "section.nested_key".
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace snnmap::util {

/// Flattened key/value view of a YAML-subset document.
class Config {
 public:
  Config() = default;

  /// Parses text; throws std::runtime_error with a line number on malformed
  /// input (tabs, bad indentation, missing ':').
  static Config parse(const std::string& text);

  /// Loads and parses a file; throws std::runtime_error if unreadable.
  static Config load_file(const std::string& path);

  bool contains(const std::string& key) const;

  /// Typed getters return std::nullopt when the key is absent and throw
  /// std::runtime_error when present but not convertible.
  std::optional<std::string> get_string(const std::string& key) const;
  std::optional<double> get_double(const std::string& key) const;
  std::optional<std::int64_t> get_int(const std::string& key) const;
  std::optional<bool> get_bool(const std::string& key) const;
  std::optional<std::vector<double>> get_double_list(
      const std::string& key) const;

  /// Convenience getters with defaults.
  std::string string_or(const std::string& key, std::string def) const;
  double double_or(const std::string& key, double def) const;
  std::int64_t int_or(const std::string& key, std::int64_t def) const;
  bool bool_or(const std::string& key, bool def) const;

  /// Programmatic insertion (used by tests and by presets).
  void set(const std::string& key, const std::string& value);

  /// All flattened keys, sorted (deterministic iteration for dumps).
  std::vector<std::string> keys() const;

  /// Serializes back to the accepted subset (flat "a.b: v" lines).
  std::string dump() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace snnmap::util
