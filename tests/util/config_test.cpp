#include "util/config.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace snnmap::util {
namespace {

TEST(Config, ParsesFlatScalars) {
  const auto cfg = Config::parse(
      "name: noxim\n"
      "buffer_depth: 4\n"
      "rate: 2.5\n"
      "multicast: true\n");
  EXPECT_EQ(cfg.get_string("name"), "noxim");
  EXPECT_EQ(cfg.get_int("buffer_depth"), 4);
  EXPECT_EQ(cfg.get_double("rate"), 2.5);
  EXPECT_EQ(cfg.get_bool("multicast"), true);
}

TEST(Config, ParsesNestedSection) {
  const auto cfg = Config::parse(
      "energy:\n"
      "  link_hop_pj: 10.5\n"
      "  router_flit_pj: 6\n"
      "noc:\n"
      "  buffer_depth: 8\n");
  EXPECT_EQ(cfg.get_double("energy.link_hop_pj"), 10.5);
  EXPECT_EQ(cfg.get_double("energy.router_flit_pj"), 6.0);
  EXPECT_EQ(cfg.get_int("noc.buffer_depth"), 8);
}

TEST(Config, IgnoresCommentsAndBlankLines) {
  const auto cfg = Config::parse(
      "# power model\n"
      "\n"
      "a: 1  # trailing comment\n"
      "   \n"
      "b: 2\n");
  EXPECT_EQ(cfg.get_int("a"), 1);
  EXPECT_EQ(cfg.get_int("b"), 2);
}

TEST(Config, QuotedStringsKeepHashAndSpaces) {
  const auto cfg = Config::parse("label: \"mesh # 4x4\"\n");
  EXPECT_EQ(cfg.get_string("label"), "mesh # 4x4");
}

TEST(Config, MissingKeyIsNullopt) {
  const auto cfg = Config::parse("a: 1\n");
  EXPECT_FALSE(cfg.get_string("zzz").has_value());
  EXPECT_FALSE(cfg.get_double("zzz").has_value());
  EXPECT_FALSE(cfg.contains("zzz"));
  EXPECT_TRUE(cfg.contains("a"));
}

TEST(Config, DefaultsApplyOnlyWhenAbsent) {
  const auto cfg = Config::parse("x: 3\n");
  EXPECT_EQ(cfg.int_or("x", 99), 3);
  EXPECT_EQ(cfg.int_or("y", 99), 99);
  EXPECT_EQ(cfg.double_or("y", 1.5), 1.5);
  EXPECT_EQ(cfg.string_or("y", "dflt"), "dflt");
  EXPECT_EQ(cfg.bool_or("y", true), true);
}

TEST(Config, TypeErrorsThrow) {
  const auto cfg = Config::parse("word: hello\n");
  EXPECT_THROW((void)cfg.get_double("word"), std::runtime_error);
  EXPECT_THROW((void)cfg.get_int("word"), std::runtime_error);
  EXPECT_THROW((void)cfg.get_bool("word"), std::runtime_error);
}

TEST(Config, BoolAcceptsCommonSpellings) {
  const auto cfg = Config::parse(
      "a: yes\nb: NO\nc: On\nd: off\ne: 1\nf: 0\n");
  EXPECT_EQ(cfg.get_bool("a"), true);
  EXPECT_EQ(cfg.get_bool("b"), false);
  EXPECT_EQ(cfg.get_bool("c"), true);
  EXPECT_EQ(cfg.get_bool("d"), false);
  EXPECT_EQ(cfg.get_bool("e"), true);
  EXPECT_EQ(cfg.get_bool("f"), false);
}

TEST(Config, FlowListParses) {
  const auto cfg = Config::parse("weights: [1, 2.5, -3]\n");
  const auto list = cfg.get_double_list("weights");
  ASSERT_TRUE(list.has_value());
  ASSERT_EQ(list->size(), 3u);
  EXPECT_EQ((*list)[0], 1.0);
  EXPECT_EQ((*list)[1], 2.5);
  EXPECT_EQ((*list)[2], -3.0);
}

TEST(Config, NonListThrowsOnListAccess) {
  const auto cfg = Config::parse("x: 5\n");
  EXPECT_THROW((void)cfg.get_double_list("x"), std::runtime_error);
}

TEST(Config, RejectsTabs) {
  EXPECT_THROW(Config::parse("a:\n\tb: 1\n"), std::runtime_error);
}

TEST(Config, RejectsBadIndent) {
  EXPECT_THROW(Config::parse("a:\n   b: 1\n"), std::runtime_error);
  EXPECT_THROW(Config::parse(" a: 1\n"), std::runtime_error);
}

TEST(Config, RejectsMissingColon) {
  EXPECT_THROW(Config::parse("just a line\n"), std::runtime_error);
}

TEST(Config, RejectsNestedWithoutSection) {
  EXPECT_THROW(Config::parse("  a: 1\n"), std::runtime_error);
}

TEST(Config, RejectsDeepNesting) {
  EXPECT_THROW(Config::parse("a:\n  b:\n"), std::runtime_error);
}

TEST(Config, SetAndDumpRoundTrip) {
  Config cfg;
  cfg.set("energy.link_hop_pj", "10.5");
  cfg.set("name", "x");
  const auto reparsed = Config::parse(cfg.dump());
  EXPECT_EQ(reparsed.get_double("energy.link_hop_pj"), 10.5);
  EXPECT_EQ(reparsed.get_string("name"), "x");
}

TEST(Config, KeysAreSorted) {
  Config cfg;
  cfg.set("b", "1");
  cfg.set("a", "2");
  const auto keys = cfg.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
}

TEST(Config, LoadFileMissingThrows) {
  EXPECT_THROW(Config::load_file("/nonexistent/path.yaml"),
               std::runtime_error);
}

}  // namespace
}  // namespace snnmap::util
