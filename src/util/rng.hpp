// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component in the framework (Poisson spike sources, PSO
// initialization, NoC injection jitter, synthetic workload generation) draws
// from an explicitly seeded Rng instance.  We do not use std::mt19937 through
// std::uniform_*_distribution because the distributions are
// implementation-defined and would make experiment outputs differ across
// standard libraries; instead the generator and all distributions here are
// fully specified.
#pragma once

#include <cstdint>
#include <vector>

namespace snnmap::util {

/// xoshiro256** by Blackman & Vigna, seeded via splitmix64.
/// Fast, 256-bit state, passes BigCrush; fully deterministic across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator whose entire stream is a pure function of `seed`.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n) using Lemire's unbiased bounded method.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept;

  /// Standard normal deviate (Marsaglia polar method, cached pair).
  double normal() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Exponential deviate with the given rate (lambda), i.e. mean 1/lambda.
  double exponential(double rate) noexcept;

  /// Poisson-distributed count with the given mean.  Uses Knuth's method for
  /// small means and normal approximation (rounded, clamped at 0) for large.
  std::uint64_t poisson(double mean) noexcept;

  /// Fisher-Yates shuffle of a vector in place.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; used to give each subsystem its
  /// own stream so adding draws in one module never perturbs another.
  Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace snnmap::util
