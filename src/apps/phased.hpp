// Phased cluster workload — the drive for run-time remapping.
//
// The paper closes with "Run-time SNN mapping will be addressed in future"
// (Sec. VI).  To exercise that extension (src/core/runtime_remap.*) we need
// workloads whose *traffic* shifts over time while the topology stays fixed:
// K neuron clusters (dense intra-cluster connectivity, a sparse ring of
// inter-cluster bridges), where each phase makes a different subset of
// clusters "hot" (high firing rate).  A partition tuned for phase 0 keeps
// the wrong clusters co-resident once the hot set rotates.
#pragma once

#include <cstdint>

#include "snn/graph.hpp"

namespace snnmap::apps {

struct PhasedConfig {
  std::uint32_t clusters = 8;
  std::uint32_t cluster_size = 16;
  /// Intra-cluster connection probability (dense).
  double intra_probability = 0.6;
  /// Inter-cluster bridges per adjacent cluster pair (sparse ring).
  std::uint32_t bridges_per_pair = 2;
  /// Relay neurons attached to each cluster (0 = none).  A relay projects
  /// `relay_fanout` synapses into its home cluster and fires hot exactly
  /// when that cluster is hot.  Relays are laid out *after* all clusters,
  /// so capacity pressure decides which relays get to live beside their
  /// cluster — the decision that must be revisited every phase, making
  /// relays the neuron-granularity remapping opportunity.
  std::uint32_t relays_per_cluster = 0;
  std::uint32_t relay_fanout = 2;
  double hot_rate_hz = 100.0;
  double cold_rate_hz = 5.0;
  /// Fraction of clusters hot in any phase.
  double hot_fraction = 0.25;
  double duration_ms = 500.0;
  std::uint64_t seed = 1;

  std::uint32_t neuron_count() const noexcept {
    return clusters * (cluster_size + relays_per_cluster);
  }
};

/// Builds the spike graph for one phase.  The topology (edges) is identical
/// for every phase of the same config/seed; only the spike trains change —
/// phase p heats clusters {p, p+1, ...} (mod clusters) in a rotating window.
snn::SnnGraph build_phased_clusters(const PhasedConfig& config,
                                    std::uint32_t phase);

}  // namespace snnmap::apps
