// Deterministic mixing helpers shared across the trace builders.
#pragma once

#include <cstdint>

namespace snnmap::util {

/// splitmix64-finalizer hash of a (neuron, per-neuron spike index) pair —
/// the deterministic per-spike jitter source.  The open-loop trace builder
/// (core::build_traffic) and the closed-loop co-simulator's encoder both
/// draw from this one definition so their injection jitter can never
/// silently diverge.
inline constexpr std::uint64_t spike_jitter_hash(std::uint64_t neuron,
                                                 std::uint64_t index) noexcept {
  std::uint64_t z = neuron * 0x9E3779B97F4A7C15ULL + index + 1;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace snnmap::util
