#include "snn/stdp.hpp"

#include <algorithm>
#include <cmath>

namespace snnmap::snn {

double stdp_potentiation(const StdpParams& p, double dt_ms) noexcept {
  if (dt_ms < 0.0) return 0.0;
  return p.a_plus * std::exp(-dt_ms / p.tau_plus_ms);
}

double stdp_depression(const StdpParams& p, double dt_ms) noexcept {
  if (dt_ms < 0.0) return 0.0;
  return p.a_minus * std::exp(-dt_ms / p.tau_minus_ms);
}

double stdp_update_on_post(const StdpParams& p, double weight,
                           double last_pre_ms, double now_ms) noexcept {
  if (last_pre_ms < 0.0) return weight;  // pre never fired
  const double dw = stdp_potentiation(p, now_ms - last_pre_ms);
  return std::clamp(weight + dw, p.w_min, p.w_max);
}

double stdp_update_on_pre(const StdpParams& p, double weight,
                          double last_post_ms, double now_ms) noexcept {
  if (last_post_ms < 0.0) return weight;  // post never fired
  const double dw = stdp_depression(p, now_ms - last_post_ms);
  return std::clamp(weight - dw, p.w_min, p.w_max);
}

}  // namespace snnmap::snn
