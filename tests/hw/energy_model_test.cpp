#include "hw/energy_model.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace snnmap::hw {
namespace {

TEST(EnergyModel, DefaultsArePositive) {
  const EnergyModel m = EnergyModel::cxquad();
  EXPECT_GT(m.crossbar_event_pj, 0.0);
  EXPECT_GT(m.link_hop_pj, 0.0);
  EXPECT_GT(m.router_flit_pj, 0.0);
  EXPECT_GT(m.aer_codec_pj, 0.0);
  // SerDes crossings cost more than on-die wires by default.
  EXPECT_GT(m.offchip_link_hop_pj, m.link_hop_pj);
}

TEST(EnergyModel, PacketEnergyGrowsWithHops) {
  const EnergyModel m;
  EXPECT_LT(m.packet_energy_pj(0), m.packet_energy_pj(1));
  EXPECT_LT(m.packet_energy_pj(1), m.packet_energy_pj(5));
  // Linear: the increment per hop is link + router.
  const double inc = m.packet_energy_pj(3) - m.packet_energy_pj(2);
  EXPECT_NEAR(inc, m.link_hop_pj + m.router_flit_pj, 1e-12);
}

TEST(EnergyModel, ZeroHopStillPaysCodecAndOneRouter) {
  const EnergyModel m;
  EXPECT_NEAR(m.packet_energy_pj(0), m.aer_codec_pj + m.router_flit_pj, 1e-12);
}

TEST(EnergyModel, FromConfigOverridesSelectively) {
  util::Config cfg = util::Config::parse(
      "energy:\n"
      "  link_hop_pj: 99.0\n"
      "  aer_codec_pj: 0.5\n");
  const EnergyModel m = EnergyModel::from_config(cfg);
  const EnergyModel d;
  EXPECT_EQ(m.link_hop_pj, 99.0);
  EXPECT_EQ(m.aer_codec_pj, 0.5);
  EXPECT_EQ(m.crossbar_event_pj, d.crossbar_event_pj);  // untouched
  EXPECT_EQ(m.router_flit_pj, d.router_flit_pj);
}

TEST(EnergyModel, ValidateRejectsNanInfAndNegative) {
  const double bad_values[] = {std::numeric_limits<double>::quiet_NaN(),
                               std::numeric_limits<double>::infinity(),
                               -std::numeric_limits<double>::infinity(),
                               -0.001};
  for (const double bad : bad_values) {
    for (int field = 0; field < 6; ++field) {
      EnergyModel m;
      (field == 0   ? m.crossbar_event_pj
       : field == 1 ? m.link_hop_pj
       : field == 2 ? m.router_flit_pj
       : field == 3 ? m.offchip_link_hop_pj
       : field == 4 ? m.retransmit_pj
                    : m.aer_codec_pj) = bad;
      EXPECT_THROW(m.validate(), std::invalid_argument)
          << "field " << field << " value " << bad;
    }
  }
  EXPECT_NO_THROW(EnergyModel{}.validate());
  EnergyModel zero;
  zero.aer_codec_pj = 0.0;  // zero is odd but harmless
  EXPECT_NO_THROW(zero.validate());
}

TEST(EnergyModel, FromConfigRejectsBadValues) {
  // NaN/inf/negative used to be accepted silently and poisoned every
  // derived energy statistic downstream.
  for (const char* bad : {"nan", "inf", "-inf", "-3.5"}) {
    util::Config cfg;
    cfg.set("energy.link_hop_pj", bad);
    EXPECT_THROW(EnergyModel::from_config(cfg), std::invalid_argument)
        << bad;
  }
  util::Config ok;
  ok.set("energy.link_hop_pj", "7.25");
  EXPECT_EQ(EnergyModel::from_config(ok).link_hop_pj, 7.25);
}

TEST(EnergyModel, ActivityEnergyPricesEachCounter) {
  EnergyModel m;
  m.aer_codec_pj = 1.0;
  m.link_hop_pj = 10.0;
  m.router_flit_pj = 5.0;
  m.offchip_link_hop_pj = 40.0;
  EXPECT_DOUBLE_EQ(m.activity_energy_pj(0.0, 0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.activity_energy_pj(2.0, 3.0, 4.0),
                   2.0 * 1.0 + 3.0 * 10.0 + 4.0 * 5.0);
  // The off-chip term prices inter-chip hops at the distinct constant, and
  // a zero off-chip count is bit-identical to the 3-argument form.
  EXPECT_DOUBLE_EQ(m.activity_energy_pj(2.0, 3.0, 4.0, 5.0),
                   2.0 * 1.0 + 3.0 * 10.0 + 4.0 * 5.0 + 5.0 * 40.0);
  const double three = m.activity_energy_pj(2.0, 3.0, 4.0);
  const double four = m.activity_energy_pj(2.0, 3.0, 4.0, 0.0);
  EXPECT_EQ(three, four);
  // Consistent with the per-packet closed form: a unicast copy over h hops
  // is 2 codec events, h link hops and h + 1 router traversals.
  const std::uint32_t h = 3;
  EXPECT_DOUBLE_EQ(
      m.activity_energy_pj(2.0, static_cast<double>(h),
                           static_cast<double>(h + 1)),
      m.packet_energy_pj(h) + m.aer_codec_pj);
}

TEST(EnergyModel, DvfsEnergyScaleIsQuadraticAndExactAtNominal) {
  EXPECT_DOUBLE_EQ(EnergyModel::dvfs_energy_scale(1.0), 1.0);
  EXPECT_DOUBLE_EQ(EnergyModel::dvfs_energy_scale(0.5), 0.25);
  EXPECT_DOUBLE_EQ(EnergyModel::dvfs_energy_scale(0.25), 0.0625);
}

TEST(EnergyModel, ToConfigRoundTrips) {
  EnergyModel m;
  m.link_hop_pj = 12.25;
  m.crossbar_event_pj = 3.5;
  m.offchip_link_hop_pj = 52.5;
  m.retransmit_pj = 4.75;
  util::Config cfg;
  m.to_config(cfg);
  const EnergyModel back = EnergyModel::from_config(cfg);
  EXPECT_NEAR(back.link_hop_pj, 12.25, 1e-9);
  EXPECT_NEAR(back.crossbar_event_pj, 3.5, 1e-9);
  EXPECT_NEAR(back.offchip_link_hop_pj, 52.5, 1e-9);
  EXPECT_NEAR(back.retransmit_pj, 4.75, 1e-9);
}

TEST(EnergyModel, RetransmitKeyOverlaysFromConfig) {
  const EnergyModel d;
  EXPECT_GT(d.retransmit_pj, 0.0);  // retries are never free by default
  util::Config cfg = util::Config::parse(
      "energy:\n"
      "  retransmit_pj: 1.5\n");
  const EnergyModel m = EnergyModel::from_config(cfg);
  EXPECT_EQ(m.retransmit_pj, 1.5);
  EXPECT_EQ(m.link_hop_pj, d.link_hop_pj);  // untouched
}

}  // namespace
}  // namespace snnmap::hw
