// Ablation: mesh routing algorithms x selection strategies under hotspot
// traffic.  Noxim exposes both as configuration ("routing algorithm,
// selection strategy, among others", Sec. IV); this harness shows where the
// partially adaptive turn models (West-first, North-last) with buffer-level
// selection pay off: column hotspots that deterministic XY funnels through
// one link.
#include <iostream>

#include "noc/simulator.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace snnmap;

  // Hotspot trace on a 4x4 mesh: every tile streams packets to the two
  // right-column sinks, so XY funnels everything through the east column.
  const auto make_traffic = [] {
    util::Rng rng(7);
    std::vector<noc::SpikePacketEvent> traffic;
    for (int i = 0; i < 3000; ++i) {
      noc::SpikePacketEvent ev;
      ev.emit_cycle = static_cast<std::uint64_t>(i / 6);
      ev.emit_step = ev.emit_cycle;
      ev.source_neuron = static_cast<std::uint32_t>(rng.below(256));
      ev.source_tile = static_cast<noc::TileId>(rng.below(12));  // left 3 cols
      ev.dest_tiles = {static_cast<noc::TileId>(rng.chance(0.5) ? 3 : 15)};
      if (ev.dest_tiles[0] == ev.source_tile) continue;
      traffic.push_back(std::move(ev));
    }
    return traffic;
  };

  util::Table table({"routing", "selection", "avg latency (cycles)",
                     "max latency", "drain time (cycles)",
                     "link hotspot (max/mean)", "energy (uJ)"});
  for (const auto routing :
       {noc::MeshRouting::kXY, noc::MeshRouting::kYX,
        noc::MeshRouting::kWestFirst, noc::MeshRouting::kNorthLast}) {
    for (const auto selection :
         {noc::SelectionStrategy::kFirstCandidate,
          noc::SelectionStrategy::kBufferLevel}) {
      auto topo = noc::Topology::mesh(4, 4);
      topo.set_mesh_routing(routing);
      noc::NocConfig config;
      config.buffer_depth = 2;
      config.selection = selection;
      noc::NocSimulator sim(std::move(topo), config);
      const auto result = sim.run(make_traffic());
      table.begin_row();
      table.cell(std::string(to_string(routing)));
      table.cell(std::string(to_string(selection)));
      table.cell(result.stats.latency_cycles.mean(), 1);
      table.cell(static_cast<std::size_t>(result.stats.max_latency_cycles));
      table.cell(static_cast<std::size_t>(result.stats.duration_cycles));
      table.cell(result.stats.link_hotspot_factor(), 2);
      table.cell(result.stats.global_energy_pj * 1e-6, 3);
    }
  }
  std::cout << "=== Ablation: mesh routing algorithm x selection strategy "
               "(right-column hotspot) ===\n"
            << table.to_ascii() << '\n';
  std::cout << "Expected: adaptive turn models with buffer-level selection "
               "spread the hotspot over multiple columns, cutting average "
               "and tail latency vs deterministic XY; energy is nearly "
               "constant (minimal routes everywhere).\n";
  return 0;
}
