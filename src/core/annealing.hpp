// Simulated-annealing partitioner (ablation comparator).
//
// Sec. III motivates PSO as "computationally less expensive with faster
// convergence compared to its counterparts such as genetic algorithm (GA) or
// simulated annealing (SA)".  This SA implementation backs that claim
// empirically in bench/ablation_optimizers: single-neuron moves and
// neuron-pair swaps evaluated incrementally via CostModel::move_delta under
// a geometric cooling schedule.
//
// Both objectives are supported with incremental move deltas: kCutSpikes
// via CostModel::move_delta, kAerPackets via IncrementalAerCost.
//
// A chain is inherently sequential (every move depends on the last), so the
// parallel axis is restarts: `restarts` independent chains with seeds derived
// deterministically from the base seed run concurrently on a ThreadPool and
// the best final cost wins (ties -> lowest chain index).  Chain results are
// a pure function of the chain seed, so the outcome is identical at any
// thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cost.hpp"
#include "core/partition.hpp"
#include "hw/architecture.hpp"
#include "snn/graph.hpp"

namespace snnmap::core {

struct AnnealingConfig {
  std::uint64_t moves = 200'000;    ///< proposed moves
  double initial_temp = 0.0;        ///< 0 = auto-calibrate from move deltas
  double cooling = 0.999;           ///< geometric factor per accepted batch
  double swap_probability = 0.3;    ///< swap two neurons vs single move
  Objective objective = Objective::kAerPackets;
  std::uint64_t seed = 42;
  /// Independent restart chains; chain 0 reuses `seed` verbatim, so
  /// restarts=1 reproduces the single-chain result exactly.
  std::uint32_t restarts = 1;
  /// Worker threads for concurrent chains: 0 = one per hardware thread,
  /// 1 = serial.  Results are identical for every value.
  std::uint32_t threads = 0;
  bool track_history = false;       ///< record best cost every `moves`/100
};

struct AnnealingResult {
  Partition best;
  std::uint64_t best_cost = 0;
  std::uint64_t moves_accepted = 0;   ///< summed over all chains
  std::uint64_t moves_proposed = 0;   ///< summed over all chains
  std::uint32_t best_chain = 0;       ///< restart chain that produced `best`
  std::vector<std::uint64_t> history; ///< from the winning chain
};

/// Starts from the PACMAN solution and anneals; always returns a feasible
/// partition at least as good as the start.
AnnealingResult annealing_partition(const snn::SnnGraph& graph,
                                    const hw::Architecture& arch,
                                    const AnnealingConfig& config);

}  // namespace snnmap::core
