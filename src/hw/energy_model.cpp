#include "hw/energy_model.hpp"

#include <cmath>
#include <stdexcept>

namespace snnmap::hw {
namespace {

void check_pj(const char* name, double value) {
  if (!std::isfinite(value) || value < 0.0) {
    throw std::invalid_argument(std::string("EnergyModel: ") + name +
                                " must be finite and >= 0 pJ (got " +
                                std::to_string(value) + ")");
  }
}

}  // namespace

void EnergyModel::validate() const {
  check_pj("crossbar_event_pj", crossbar_event_pj);
  check_pj("link_hop_pj", link_hop_pj);
  check_pj("offchip_link_hop_pj", offchip_link_hop_pj);
  check_pj("router_flit_pj", router_flit_pj);
  check_pj("aer_codec_pj", aer_codec_pj);
  check_pj("retransmit_pj", retransmit_pj);
}

EnergyModel EnergyModel::from_config(const util::Config& config) {
  EnergyModel m;
  m.crossbar_event_pj =
      config.double_or("energy.crossbar_event_pj", m.crossbar_event_pj);
  m.link_hop_pj = config.double_or("energy.link_hop_pj", m.link_hop_pj);
  m.offchip_link_hop_pj = config.double_or("energy.offchip_link_hop_pj",
                                           m.offchip_link_hop_pj);
  m.router_flit_pj =
      config.double_or("energy.router_flit_pj", m.router_flit_pj);
  m.aer_codec_pj = config.double_or("energy.aer_codec_pj", m.aer_codec_pj);
  m.retransmit_pj =
      config.double_or("energy.retransmit_pj", m.retransmit_pj);
  m.validate();
  return m;
}

void EnergyModel::to_config(util::Config& config) const {
  config.set("energy.crossbar_event_pj", std::to_string(crossbar_event_pj));
  config.set("energy.link_hop_pj", std::to_string(link_hop_pj));
  config.set("energy.offchip_link_hop_pj",
             std::to_string(offchip_link_hop_pj));
  config.set("energy.router_flit_pj", std::to_string(router_flit_pj));
  config.set("energy.aer_codec_pj", std::to_string(aer_codec_pj));
  config.set("energy.retransmit_pj", std::to_string(retransmit_pj));
}

}  // namespace snnmap::hw
