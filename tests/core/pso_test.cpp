#include "core/pso.hpp"

#include <gtest/gtest.h>

#include "core/neutrams.hpp"
#include "core/pacman.hpp"
#include "snn/graph.hpp"

namespace snnmap::core {
namespace {

/// Two 6-neuron cliques joined by a single bridge edge.  The optimal 2-way
/// partition (capacity 6) puts each clique on its own crossbar, cutting only
/// the bridge.
snn::SnnGraph two_cliques() {
  std::vector<snn::GraphEdge> edges;
  const auto clique = [&edges](std::uint32_t base) {
    for (std::uint32_t a = 0; a < 6; ++a) {
      for (std::uint32_t b = 0; b < 6; ++b) {
        if (a != b) edges.push_back({base + a, base + b, 1.0F});
      }
    }
  };
  clique(0);
  clique(6);
  edges.push_back({0, 6, 1.0F});  // bridge
  std::vector<snn::SpikeTrain> trains(12, snn::SpikeTrain{1.0, 2.0, 3.0});
  return snn::SnnGraph::from_parts(12, std::move(edges), std::move(trains),
                                   10.0);
}

/// The cliques interleaved in declaration order (worst case for PACMAN):
/// even ids belong to clique A, odd ids to clique B.
snn::SnnGraph interleaved_cliques() {
  std::vector<snn::GraphEdge> edges;
  for (std::uint32_t a = 0; a < 12; a += 2) {
    for (std::uint32_t b = 0; b < 12; b += 2) {
      if (a != b) edges.push_back({a, b, 1.0F});
    }
  }
  for (std::uint32_t a = 1; a < 12; a += 2) {
    for (std::uint32_t b = 1; b < 12; b += 2) {
      if (a != b) edges.push_back({a, b, 1.0F});
    }
  }
  std::vector<snn::SpikeTrain> trains(12, snn::SpikeTrain{1.0, 2.0, 3.0});
  return snn::SnnGraph::from_parts(12, std::move(edges), std::move(trains),
                                   10.0);
}

hw::Architecture arch_2x6() {
  hw::Architecture arch;
  arch.crossbar_count = 2;
  arch.neurons_per_crossbar = 6;
  return arch;
}

TEST(Pso, FindsTheObviousCut) {
  const auto g = two_cliques();
  PsoConfig config;
  config.swarm_size = 40;
  config.iterations = 60;
  config.seed = 1;
  PsoPartitioner pso(g, arch_2x6(), config);
  const auto result = pso.optimize();
  // Optimal cut = the bridge only = 3 spikes (neuron 0 fires 3 times).
  EXPECT_EQ(result.best_cost, 3u);
  result.best.validate(arch_2x6());
}

TEST(Pso, BeatsPacmanOnInterleavedLayout) {
  const auto g = interleaved_cliques();
  const CostModel cost(g);
  const auto pacman_cost =
      cost.multicast_packet_count(pacman_partition(g, arch_2x6()));
  PsoConfig config;
  config.swarm_size = 40;
  config.iterations = 60;
  config.seed = 2;
  config.seed_with_baselines = false;  // make it earn the win
  PsoPartitioner pso(g, arch_2x6(), config);
  const auto result = pso.optimize();
  EXPECT_LT(result.best_cost, pacman_cost);
  EXPECT_EQ(result.best_cost, 0u);  // cliques are separable
}

TEST(Pso, SeedingGuaranteesNoWorseThanBaselines) {
  const auto g = two_cliques();
  const CostModel cost(g);
  const auto arch = arch_2x6();
  const auto pacman_cost =
      cost.multicast_packet_count(pacman_partition(g, arch));
  const auto neutrams_cost =
      cost.multicast_packet_count(neutrams_partition(g, arch));
  PsoConfig config;
  config.swarm_size = 5;
  config.iterations = 2;  // almost no optimization: seeding must carry it
  config.seed_with_baselines = true;
  PsoPartitioner pso(g, arch, config);
  const auto result = pso.optimize();
  EXPECT_LE(result.best_cost, std::min(pacman_cost, neutrams_cost));
}

TEST(Pso, ResultSatisfiesConstraints) {
  const auto g = interleaved_cliques();
  hw::Architecture arch;
  arch.crossbar_count = 4;
  arch.neurons_per_crossbar = 4;  // tight capacity forces repair activity
  PsoConfig config;
  config.swarm_size = 20;
  config.iterations = 20;
  PsoPartitioner pso(g, arch, config);
  const auto result = pso.optimize();
  EXPECT_NO_THROW(result.best.validate(arch));
}

TEST(Pso, DeterministicForSameSeed) {
  const auto g = interleaved_cliques();
  PsoConfig config;
  config.swarm_size = 15;
  config.iterations = 15;
  config.seed = 77;
  const auto a = PsoPartitioner(g, arch_2x6(), config).optimize();
  const auto b = PsoPartitioner(g, arch_2x6(), config).optimize();
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.best, b.best);
}

TEST(Pso, HistoryIsMonotoneNonIncreasing) {
  const auto g = interleaved_cliques();
  PsoConfig config;
  config.swarm_size = 20;
  config.iterations = 30;
  config.track_history = true;
  PsoPartitioner pso(g, arch_2x6(), config);
  const auto result = pso.optimize();
  ASSERT_EQ(result.history.size(), 30u);
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_LE(result.history[i], result.history[i - 1]);
  }
  EXPECT_EQ(result.history.back(), result.best_cost);
}

TEST(Pso, LargerSwarmsDoNoWorse) {
  // The Fig. 7 premise: more particles -> better (or equal) optimum at a
  // fixed iteration budget.
  const auto g = interleaved_cliques();
  PsoConfig small;
  small.swarm_size = 4;
  small.iterations = 15;
  small.seed = 5;
  small.seed_with_baselines = false;
  PsoConfig large = small;
  large.swarm_size = 64;
  const auto small_cost =
      PsoPartitioner(g, arch_2x6(), small).optimize().best_cost;
  const auto large_cost =
      PsoPartitioner(g, arch_2x6(), large).optimize().best_cost;
  EXPECT_LE(large_cost, small_cost);
}

TEST(Pso, PatienceStopsEarly) {
  const auto g = two_cliques();
  PsoConfig config;
  config.swarm_size = 30;
  config.iterations = 200;
  config.patience = 5;
  PsoPartitioner pso(g, arch_2x6(), config);
  const auto result = pso.optimize();
  EXPECT_LT(result.iterations_run, 200u);
  EXPECT_EQ(result.best_cost, 3u);  // still finds the optimum
}

TEST(Pso, RejectsOversizedNetworks) {
  const auto g = two_cliques();
  hw::Architecture arch;
  arch.crossbar_count = 2;
  arch.neurons_per_crossbar = 4;  // capacity 8 < 12 neurons
  EXPECT_THROW(PsoPartitioner(g, arch, {}), std::invalid_argument);
}

TEST(Pso, RejectsEmptySwarm) {
  const auto g = two_cliques();
  PsoConfig config;
  config.swarm_size = 0;
  EXPECT_THROW(PsoPartitioner(g, arch_2x6(), config), std::invalid_argument);
}

TEST(Pso, CountsFitnessEvaluations) {
  const auto g = two_cliques();
  PsoConfig config;
  config.swarm_size = 10;
  config.iterations = 7;
  PsoPartitioner pso(g, arch_2x6(), config);
  const auto result = pso.optimize();
  EXPECT_EQ(result.fitness_evaluations, 70u);
}

}  // namespace
}  // namespace snnmap::core
