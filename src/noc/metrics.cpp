#include "noc/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace snnmap::noc {

std::uint64_t NocStats::max_link_flits() const noexcept {
  std::uint64_t max_flits = 0;
  for (const auto& [link, flits] : link_flits) {
    max_flits = std::max(max_flits, flits);
  }
  return max_flits;
}

double NocStats::mean_link_flits() const noexcept {
  if (link_flits.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [link, flits] : link_flits) {
    sum += static_cast<double>(flits);
  }
  return sum / static_cast<double>(link_flits.size());
}

double NocStats::link_hotspot_factor() const noexcept {
  const double mean = mean_link_flits();
  return mean > 0.0 ? static_cast<double>(max_link_flits()) / mean : 0.0;
}

double NocStats::throughput_aer_per_ms(
    std::uint32_t cycles_per_ms) const noexcept {
  if (duration_cycles == 0 || cycles_per_ms == 0) return 0.0;
  const double ms =
      static_cast<double>(duration_cycles) / static_cast<double>(cycles_per_ms);
  return static_cast<double>(copies_delivered) / ms;
}

SnnMetrics compute_snn_metrics(std::vector<DeliveredSpike> delivered) {
  SnnMetrics m;
  m.delivered_spikes = delivered.size();
  if (delivered.empty()) return m;

  // ---- Spike disorder: per destination, arrival order vs emission order.
  std::sort(delivered.begin(), delivered.end(),
            [](const DeliveredSpike& a, const DeliveredSpike& b) {
              if (a.dest_tile != b.dest_tile) return a.dest_tile < b.dest_tile;
              if (a.recv_cycle != b.recv_cycle)
                return a.recv_cycle < b.recv_cycle;
              return a.emit_cycle < b.emit_cycle;
            });
  std::size_t i = 0;
  while (i < delivered.size()) {
    std::size_t j = i;
    std::uint64_t max_step_seen = 0;
    bool first = true;
    while (j < delivered.size() &&
           delivered[j].dest_tile == delivered[i].dest_tile) {
      if (!first && delivered[j].emit_step < max_step_seen) {
        ++m.disordered_spikes;  // an earlier-step spike arrived late
      }
      max_step_seen = std::max(max_step_seen, delivered[j].emit_step);
      first = false;
      ++j;
    }
    i = j;
  }
  m.disorder_fraction = static_cast<double>(m.disordered_spikes) /
                        static_cast<double>(m.delivered_spikes);

  // ---- ISI distortion: per (source neuron, destination) stream.
  std::sort(delivered.begin(), delivered.end(),
            [](const DeliveredSpike& a, const DeliveredSpike& b) {
              if (a.source_neuron != b.source_neuron)
                return a.source_neuron < b.source_neuron;
              if (a.dest_tile != b.dest_tile) return a.dest_tile < b.dest_tile;
              return a.sequence < b.sequence;
            });
  util::Accumulator isi;
  double max_distortion = 0.0;
  for (std::size_t k = 1; k < delivered.size(); ++k) {
    const DeliveredSpike& prev = delivered[k - 1];
    const DeliveredSpike& cur = delivered[k];
    if (prev.source_neuron != cur.source_neuron ||
        prev.dest_tile != cur.dest_tile) {
      continue;
    }
    const double sent_isi = static_cast<double>(cur.emit_cycle) -
                            static_cast<double>(prev.emit_cycle);
    const double recv_isi = static_cast<double>(cur.recv_cycle) -
                            static_cast<double>(prev.recv_cycle);
    const double distortion = std::abs(recv_isi - sent_isi);
    isi.add(distortion);
    max_distortion = std::max(max_distortion, distortion);
  }
  m.isi_pairs = isi.count();
  m.isi_distortion_avg_cycles = isi.mean();
  m.isi_distortion_max_cycles = max_distortion;
  return m;
}

}  // namespace snnmap::noc
