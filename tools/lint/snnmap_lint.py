#!/usr/bin/env python3
"""snnmap-lint: repo-specific determinism and contract checks.

The dynamic test suite (golden fixtures, serial-vs-parallel determinism
tests) can only catch a nondeterminism bug once an input exposes it; these
rules reject the *source patterns* that produce such bugs, at lint time:

  nondeterminism       No wall-clock, rand()/random_device, std::<random>
                       distributions, or environment reads in src/.  Every
                       stochastic or time-like input must flow through the
                       fully-specified util::Rng / simulated cycle clock.
  unordered-iteration  Every declaration of std::unordered_map/set in src/
                       and every range-for / .begin() walk over one must
                       carry a waiver justifying that iteration order cannot
                       reach outputs, digests, or FP-summation order.
  hoisted-gate         Optional hot-path subsystems stay inert when off:
                       every tracer_.record(...) / fault_model_ call site
                       must sit under a hoisted `*_active_` (or local
                       `trace_on`) gate, so the default config pays no cost
                       and golden digests cannot shift.
  ci-bench-sync        The bench-binary list scripts/ci.sh asserts must
                       equal the Google-Benchmark targets declared in
                       bench/CMakeLists.txt (a silently-unbuilt suite would
                       pass CI while its BENCH_*.json trajectory rots).
  config-key-coverage  Every "section.key" literal read by *_from_config
                       must be written by *_to_config (the save->load->save
                       byte-stability precondition) and must appear in
                       tests/core/config_io_test.cpp's schema coverage.

Waivers: a finding is silenced by a justification comment on the flagged
line or the line directly above it:

    // snnmap-lint: allow(<rule>) -- <why this cannot break determinism>

(`#` comments in shell/CMake files).  The justification text is mandatory;
a bare allow() does not waive.  For hoisted-gate, a waiver on an enclosing
block's header line (e.g. a function whose every call site is gated)
covers the whole block.

Exit status: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

ALL_RULES = (
    "nondeterminism",
    "unordered-iteration",
    "hoisted-gate",
    "ci-bench-sync",
    "config-key-coverage",
)

WAIVER_RE = re.compile(
    r"(?://|#)\s*snnmap-lint:\s*allow\(([a-z-]+)\)\s*(?:--|—)\s*(\S.*)"
)
BARE_WAIVER_RE = re.compile(r"(?://|#)\s*snnmap-lint:\s*allow\(([a-z-]+)\)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def scan_waivers(raw_lines):
    """Maps 1-based line number -> set of waived rules (with justification).

    A waiver covers its own line and the line below it, matching the common
    shapes `code  // waiver` and `// waiver` above the flagged line.
    """
    waived = {}
    malformed = []
    comment_only = re.compile(r"\s*(?://|#)")
    for i, line in enumerate(raw_lines, start=1):
        m = WAIVER_RE.search(line)
        if m:
            # The waiver covers its own line, any immediately following
            # comment-only continuation lines, and the first code line after
            # them (the flagged line).
            end = i
            while end < len(raw_lines) and \
                    comment_only.match(raw_lines[end]):
                end += 1
            for covered in range(i, end + 2):
                waived.setdefault(covered, set()).add(m.group(1))
        elif BARE_WAIVER_RE.search(line):
            malformed.append(i)
    return waived, malformed


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literal contents, preserving
    line structure and column offsets so findings map back to source."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
            elif c == "'":
                state = "char"
                out.append(c)
            else:
                out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated; bail to code to stay line-stable
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def line_of_offset(text, offset):
    return text.count("\n", 0, offset) + 1


def src_files(repo):
    root = repo / "src"
    return sorted(
        p for p in root.rglob("*") if p.suffix in (".cpp", ".hpp", ".h")
    )


def is_waived(waivers, line, rule):
    return rule in waivers.get(line, set())


# --------------------------------------------------------------------------
# Rule: nondeterminism
# --------------------------------------------------------------------------

NONDET_PATTERNS = (
    (re.compile(r"#\s*include\s*<random>"),
     "std::<random> distributions are implementation-defined; use util::Rng"),
    (re.compile(r"#\s*include\s*<chrono>"),
     "wall-clock time in src/ breaks replayability; use the simulated "
     "cycle clock"),
    (re.compile(r"\brandom_device\b"),
     "random_device is a nondeterminism source; seed util::Rng explicitly"),
    (re.compile(r"\bmt19937(?:_64)?\b"),
     "std::mt19937 streams differ across distribution implementations; "
     "use util::Rng"),
    (re.compile(r"\buniform_(?:int|real)_distribution\b"),
     "std:: distributions are implementation-defined; use util::Rng"),
    (re.compile(r"\b(?:system|steady|high_resolution)_clock\b"),
     "wall-clock reads make runs irreproducible; use the simulated "
     "cycle clock"),
    (re.compile(r"\bsrand\s*\(|(?<![\w.])rand\s*\(\s*\)"),
     "rand()/srand() is seeded process state; use util::Rng"),
    (re.compile(r"\b(?:gettimeofday|clock_gettime|timespec_get)\b"),
     "wall-clock reads make runs irreproducible"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
     "time() is a nondeterminism source"),
    (re.compile(r"\bgetenv\b"),
     "environment reads make results depend on ambient state; thread "
     "settings through config_io"),
)


def rule_nondeterminism(repo):
    findings = []
    for path in src_files(repo):
        raw = path.read_text()
        raw_lines = raw.splitlines()
        waivers, malformed = scan_waivers(raw_lines)
        rel = path.relative_to(repo)
        for line in malformed:
            findings.append(Finding(rel, line, "nondeterminism",
                                    "waiver without justification text"))
        stripped = strip_comments_and_strings(raw)
        for lineno, line in enumerate(stripped.splitlines(), start=1):
            for pattern, why in NONDET_PATTERNS:
                if pattern.search(line):
                    if is_waived(waivers, lineno, "nondeterminism"):
                        continue
                    findings.append(
                        Finding(rel, lineno, "nondeterminism", why))
    return findings


# --------------------------------------------------------------------------
# Rule: unordered-iteration
# --------------------------------------------------------------------------

UNORDERED_DECL_RE = re.compile(r"\bstd::unordered_(?:map|set)\s*<")


def balanced_angle_end(text, open_idx):
    """Index just past the matching '>' for the '<' at open_idx, or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c == ";":
            return -1
    return -1


def rule_unordered_iteration(repo):
    findings = []
    for path in src_files(repo):
        raw = path.read_text()
        raw_lines = raw.splitlines()
        waivers, _ = scan_waivers(raw_lines)
        rel = path.relative_to(repo)
        stripped = strip_comments_and_strings(raw)

        tracked = set()
        for m in UNORDERED_DECL_RE.finditer(stripped):
            lineno = line_of_offset(stripped, m.start())
            end = balanced_angle_end(stripped, m.end() - 1)
            name = None
            if end > 0:
                nm = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*[;={(]",
                              stripped[end:end + 120])
                if nm:
                    name = nm.group(1)
            if name:
                tracked.add(name)
            if is_waived(waivers, lineno, "unordered-iteration"):
                continue
            findings.append(Finding(
                rel, lineno, "unordered-iteration",
                "unordered container declared; justify (waiver) that its "
                "iteration order cannot reach outputs, digests, or "
                "FP-summation order"))

        if not tracked:
            continue
        names = "|".join(sorted(tracked))
        iter_res = (
            re.compile(r"for\s*\([^();]*:\s*(" + names + r")\s*\)"),
            re.compile(r"\b(" + names + r")\s*\.\s*c?begin\s*\("),
        )
        for lineno, line in enumerate(stripped.splitlines(), start=1):
            for pattern in iter_res:
                if pattern.search(line):
                    if is_waived(waivers, lineno, "unordered-iteration"):
                        continue
                    findings.append(Finding(
                        rel, lineno, "unordered-iteration",
                        "iteration over unordered container "
                        f"'{pattern.search(line).group(1)}': order can leak "
                        "into results; materialize sorted or waive with "
                        "justification"))
    return findings


# --------------------------------------------------------------------------
# Rule: hoisted-gate
# --------------------------------------------------------------------------

GATED_CALLS = (
    (re.compile(r"\btracer_?\s*\.\s*record\s*\("),
     ("trace_active_", "trace_on"),
     "tracer record call not under a hoisted trace gate"),
    (re.compile(r"\bfault_model_\s*\.\s*\w+\s*\("),
     ("faults_active_",),
     "fault-model call not under the hoisted faults_active_ gate"),
)

GATE_ASSIGN_RE = re.compile(r"\b\w+_active_\s*=[^=]")


def enclosing_headers(stripped):
    """Yields (offset, headers) state by walking the brace structure.

    Returns a list of (start_offset, end_offset, header_text, header_line)
    "block" records plus a function mapping offset -> list of enclosing
    header records, implemented as a closure over a precomputed event list.
    """
    events = []  # (offset, 'push'|'pop', header_text, header_line)
    stmt_start = 0
    for i, c in enumerate(stripped):
        if c == "{":
            header = stripped[stmt_start:i]
            lead = len(header) - len(header.lstrip())
            events.append((i, "push", header,
                           line_of_offset(stripped, stmt_start + lead)))
            stmt_start = i + 1
        elif c == "}":
            events.append((i, "pop", None, None))
            stmt_start = i + 1
        elif c == ";":
            stmt_start = i + 1
    return events


def rule_hoisted_gate(repo):
    findings = []
    for path in src_files(repo):
        raw = path.read_text()
        raw_lines = raw.splitlines()
        waivers, _ = scan_waivers(raw_lines)
        rel = path.relative_to(repo)
        stripped = strip_comments_and_strings(raw)

        matches = []  # (offset, lineno, gates, message)
        for pattern, gates, message in GATED_CALLS:
            for m in pattern.finditer(stripped):
                lineno = line_of_offset(stripped, m.start())
                matches.append((m.start(), lineno, gates, message))
        if not matches:
            continue
        matches.sort()

        events = enclosing_headers(stripped)
        ev_idx = 0
        stack = []  # (header_text, header_line)
        stmt_start = 0
        for offset, lineno, gates, message in matches:
            while ev_idx < len(events) and events[ev_idx][0] < offset:
                ev_offset, kind, header, header_line = events[ev_idx]
                if kind == "push":
                    stack.append((header, header_line))
                elif stack:
                    stack.pop()
                stmt_start = ev_offset + 1
                ev_idx += 1
            # Current partial statement (covers `if (gate && call())` and
            # the hoist assignment `x_active_ = fault_model_.active()`).
            semi = stripped.rfind(";", stmt_start, offset)
            stmt = stripped[semi + 1 if semi >= 0 else stmt_start:offset]
            ok = any(g in stmt for g in gates) or GATE_ASSIGN_RE.search(stmt)
            for header, header_line in stack:
                if ok:
                    break
                if any(g in header for g in gates):
                    ok = True
                elif is_waived(waivers, header_line, "hoisted-gate"):
                    ok = True
            if ok or is_waived(waivers, lineno, "hoisted-gate"):
                continue
            findings.append(Finding(rel, lineno, "hoisted-gate", message))
    return findings


# --------------------------------------------------------------------------
# Rule: ci-bench-sync
# --------------------------------------------------------------------------


def rule_ci_bench_sync(repo):
    findings = []
    ci = repo / "scripts" / "ci.sh"
    cmake = repo / "bench" / "CMakeLists.txt"
    if not ci.exists() or not cmake.exists():
        return [Finding(repo, 1, "ci-bench-sync",
                        "scripts/ci.sh or bench/CMakeLists.txt missing")]

    ci_text = ci.read_text().replace("\\\n", " ")
    m = re.search(r"for\s+bench\s+in\s+([^;]*);", ci_text)
    ci_list = set(m.group(1).split()) if m else set()
    if not ci_list:
        findings.append(Finding("scripts/ci.sh", 1, "ci-bench-sync",
                                "no `for bench in ...` assertion list found"))

    cmake_lines = cmake.read_text().splitlines()
    waivers, _ = scan_waivers(cmake_lines)
    cmake_targets = {}
    in_benchmark_block = False
    for lineno, line in enumerate(cmake_lines, start=1):
        if re.search(r"if\s*\(\s*benchmark_FOUND\s*\)", line):
            in_benchmark_block = True
        elif re.match(r"\s*(else|endif)\s*\(", line):
            in_benchmark_block = False
        am = re.search(r"add_executable\s*\(\s*([\w-]+)", line)
        if am and in_benchmark_block:
            if is_waived(waivers, lineno, "ci-bench-sync"):
                continue
            cmake_targets[am.group(1)] = lineno

    for target, lineno in sorted(cmake_targets.items()):
        if target not in ci_list:
            findings.append(Finding(
                "bench/CMakeLists.txt", lineno, "ci-bench-sync",
                f"benchmark target '{target}' is not asserted buildable by "
                "scripts/ci.sh (add it to the `for bench in` list or waive)"))
    for target in sorted(ci_list - set(cmake_targets)):
        findings.append(Finding(
            "scripts/ci.sh", 1, "ci-bench-sync",
            f"ci.sh asserts bench binary '{target}' but bench/CMakeLists.txt "
            "declares no such Google-Benchmark target"))
    return findings


# --------------------------------------------------------------------------
# Rule: config-key-coverage
# --------------------------------------------------------------------------

CONFIG_SOURCES = ("src/core/config_io.cpp", "src/hw/energy_model.cpp")
CONFIG_TEST = "tests/core/config_io_test.cpp"

READ_KEY_RE = re.compile(
    r"\.\s*(?:int_or|double_or|bool_or|get_string)\s*\(\s*\"([a-z_0-9.]+)\"",
    re.S)
WRITE_KEY_RE = re.compile(r"\.\s*set\s*\(\s*\"([a-z_0-9.]+)\"", re.S)


def rule_config_key_coverage(repo):
    findings = []
    reads, writes = {}, {}
    for rel in CONFIG_SOURCES:
        path = repo / rel
        if not path.exists():
            findings.append(Finding(rel, 1, "config-key-coverage",
                                    "expected config source file missing"))
            continue
        text = path.read_text()
        for m in READ_KEY_RE.finditer(text):
            reads.setdefault(m.group(1), (rel, line_of_offset(text,
                                                              m.start())))
        for m in WRITE_KEY_RE.finditer(text):
            writes.setdefault(m.group(1), (rel, line_of_offset(text,
                                                               m.start())))

    for key, (rel, line) in sorted(reads.items()):
        if key not in writes:
            findings.append(Finding(
                rel, line, "config-key-coverage",
                f"key '{key}' is read by from_config but never written by "
                "to_config: save->load->save cannot be byte-stable"))
    for key, (rel, line) in sorted(writes.items()):
        if key not in reads:
            findings.append(Finding(
                rel, line, "config-key-coverage",
                f"key '{key}' is written by to_config but never read back: "
                "the value silently drops on reload"))

    test_path = repo / CONFIG_TEST
    if not test_path.exists():
        findings.append(Finding(CONFIG_TEST, 1, "config-key-coverage",
                                "round-trip test file missing"))
        return findings
    test_text = test_path.read_text()
    for key, (rel, line) in sorted({**reads, **writes}.items()):
        if key not in test_text:
            findings.append(Finding(
                rel, line, "config-key-coverage",
                f"key '{key}' does not appear in {CONFIG_TEST}: add it to "
                "the byte-stable round-trip schema coverage"))
    for m in re.finditer(r"\"([a-z_0-9]+\.[a-z_0-9]+)\"", test_text):
        key = m.group(1)
        if key not in reads and key not in writes:
            findings.append(Finding(
                CONFIG_TEST, line_of_offset(test_text, m.start()),
                "config-key-coverage",
                f"test references key '{key}' that config_io neither reads "
                "nor writes (stale after a rename?)"))
    return findings


# --------------------------------------------------------------------------

RULE_FNS = {
    "nondeterminism": rule_nondeterminism,
    "unordered-iteration": rule_unordered_iteration,
    "hoisted-gate": rule_hoisted_gate,
    "ci-bench-sync": rule_ci_bench_sync,
    "config-key-coverage": rule_config_key_coverage,
}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repo", default=None,
                        help="repository root (default: two levels up)")
    parser.add_argument("--rule", action="append", choices=ALL_RULES,
                        help="run only the given rule(s)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(rule)
        return 0

    repo = pathlib.Path(args.repo) if args.repo else \
        pathlib.Path(__file__).resolve().parents[2]
    if not (repo / "src").is_dir():
        print(f"snnmap-lint: no src/ under {repo}", file=sys.stderr)
        return 2

    findings = []
    for rule in (args.rule or ALL_RULES):
        findings.extend(RULE_FNS[rule](repo))
    for finding in findings:
        print(finding)
    if findings:
        print(f"snnmap-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
