// Figure 6 — "Architecture exploration with hand-written digit recognition":
// sweeping the crossbar size from 90 to 1440 neurons per crossbar, report
// local / global / total synapse energy (uJ, per processed 28x28 image) and
// the worst-case spike latency on the global synapse interconnect.
//
// Expected shape: global energy monotonically falls as crossbars grow (more
// synapses become local), local energy rises, the total has an interior
// minimum, and worst-case latency falls.
#include <iostream>

#include "apps/digit_recognition.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace snnmap;
  const bool quick = bench::quick_mode();

  apps::DigitRecognitionConfig app;
  app.seed = 42;
  const snn::SnnGraph graph = apps::build_digit_recognition(app);
  std::cout << "digit recognition: " << graph.neuron_count() << " neurons, "
            << graph.edge_count() << " synapses, one 28x28 image over "
            << graph.duration_ms() << " ms\n\n";

  std::vector<std::uint32_t> sizes = {90, 180, 270, 360, 540, 720, 1080, 1440};
  if (quick) sizes = {180, 720, 1440};

  util::Table table({"neurons/crossbar", "crossbars",
                     "local energy (uJ)", "global energy (uJ)",
                     "total energy (uJ)", "worst-case latency (cycles)"});

  double best_total = 1e300;
  std::uint32_t best_size = 0;
  for (const std::uint32_t size : sizes) {
    core::MappingFlowConfig flow;
    flow.arch = hw::Architecture::sized_for(graph.neuron_count(), size,
                                            hw::InterconnectKind::kTree);
    flow.arch.tree_arity = 4;
    // Same time-multiplexing regime as the Table II harness.
    flow.arch.cycles_per_ms = 25;
    flow.injection_jitter_cycles = 20;
    flow.partitioner = core::PartitionerKind::kPso;
    flow.pso = bench::default_pso();
    // Larger search spaces (small crossbars) get the same budget; the PSO
    // seeds with PACMAN so results remain meaningful everywhere.
    const auto report = core::run_mapping_flow(graph, flow);

    const double local_uj = report.local_energy_pj * 1e-6;
    const double global_uj = report.global_energy_pj * 1e-6;
    const double total_uj = local_uj + global_uj;
    if (total_uj < best_total) {
      best_total = total_uj;
      best_size = size;
    }
    table.begin_row();
    table.cell(static_cast<std::size_t>(size));
    table.cell(static_cast<std::size_t>(flow.arch.crossbar_count));
    table.cell(local_uj, 3);
    table.cell(global_uj, 3);
    table.cell(total_uj, 3);
    table.cell(static_cast<std::size_t>(report.noc_stats.max_latency_cycles));
  }

  std::cout << "=== Figure 6: local/global synapse energy and worst-case "
               "latency vs crossbar size ===\n"
            << table.to_ascii() << '\n';
  std::cout << "Paper shape: global energy and latency fall with crossbar "
               "size, local energy rises, total minimized at an intermediate "
               "point.\n";
  std::cout << "Measured minimum total energy at " << best_size
            << " neurons/crossbar (" << best_total << " uJ).\n";
  return 0;
}
