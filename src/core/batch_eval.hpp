// Parallel batch evaluation: optimizer fitness batches (BatchEvaluator) and
// independent NoC scenario simulations (BatchNocEvaluator).
//
// Every PSO iteration / GA generation evaluates the Eq. 7/8 objective for an
// entire swarm or population against the same immutable spike graph.  The
// evaluations are independent, so they fan out over a ThreadPool.  CostModel
// carries mutable stamp-marking scratch per instance, so the evaluator owns
// one CostModel per worker — each touched by exactly one thread per batch —
// and all randomness stays on the caller's thread.  Costs land in a slot
// indexed by candidate, making parallel results bit-identical to the serial
// path under a fixed seed.
//
// BatchNocEvaluator applies the same pattern to whole NoC simulations:
// ablation sweeps and multi-app workloads run many independent
// (topology, config, traffic) scenarios, each of which is single-threaded
// and deterministic, so they spread across the pool with results landing in
// slots indexed by scenario.
//
// BatchSnnEvaluator closes the loop at the front of the mapping flow: the
// spike trains that annotate the synapse graph come from stochastic
// Poisson-driven simulations, so trustworthy spike statistics need many
// seeds, not a single-seed point estimate.  Each scenario builds its own
// Network (STDP mutates weights in place, so instances cannot be shared)
// and simulates it with its own seeded Rng; results are slot-indexed and
// bit-identical to serial execution.
// BatchCoSimEvaluator fans whole closed-loop co-simulations
// (cosim::CoSimulator) the same way: every scenario owns its Network,
// mapping, topology, and config, runs single-threaded, and lands in a slot
// indexed by scenario — bit-identical across thread counts and submission
// orders, which the fidelity sweeps (mappings x seeds x architectures x
// cycles_per_timestep) rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/cost.hpp"
#include "core/partition.hpp"
#include "core/placement.hpp"
#include "cosim/cosim.hpp"
#include "cosim/fidelity.hpp"
#include "noc/simulator.hpp"
#include "snn/graph.hpp"
#include "snn/simulator.hpp"
#include "util/thread_pool.hpp"

namespace snnmap::core {

class BatchEvaluator {
 public:
  /// threads = 0 resolves to hardware_concurrency(); 1 evaluates inline on
  /// the calling thread (serial fallback).  `max_parallelism` is the
  /// largest batch the caller will ever submit (e.g. the swarm size):
  /// worker threads and their CostModel replicas beyond it would never
  /// receive a block, so the pool is clamped to it.
  explicit BatchEvaluator(const snn::SnnGraph& graph,
                          std::uint32_t threads = 0,
                          std::size_t max_parallelism = ~std::size_t{0});

  std::uint32_t thread_count() const noexcept { return pool_.size(); }

  /// Worker-local cost model.  Worker 0's model doubles as the caller's
  /// serial model (repair operators, one-off evaluations): batches never run
  /// while the caller is between evaluate() calls, so no thread contends.
  const CostModel& model(std::uint32_t worker = 0) const {
    return *models_[worker];
  }

  using AssignmentAt =
      std::function<const std::vector<CrossbarId>&(std::size_t)>;

  /// Evaluates `count` candidates into `costs` (resized to `count`):
  /// costs[i] = objective_cost(at(i), objective).  `at` is called from
  /// worker threads and must be safe to invoke concurrently for distinct
  /// indices (a pure indexed view into caller-owned storage).
  void evaluate(std::size_t count, const AssignmentAt& at,
                Objective objective, std::vector<std::uint64_t>& costs);

  /// Convenience over a contiguous population of assignment vectors.
  void evaluate(const std::vector<std::vector<CrossbarId>>& population,
                Objective objective, std::vector<std::uint64_t>& costs);

 private:
  util::ThreadPool pool_;
  std::vector<std::unique_ptr<CostModel>> models_;  ///< one per worker
};

/// One independent interconnect simulation of a batch.
struct NocScenario {
  noc::Topology topology;
  noc::NocConfig config;
  std::vector<noc::SpikePacketEvent> traffic;
};

/// Fans independent NoC scenario simulations across a ThreadPool.  Every
/// scenario is simulated exactly as a standalone NocSimulator::run would
/// (results are slot-indexed and bit-identical to serial execution);
/// threads = 1 runs inline on the calling thread.
class BatchNocEvaluator {
 public:
  /// threads = 0 resolves to hardware_concurrency().
  explicit BatchNocEvaluator(std::uint32_t threads = 0);

  std::uint32_t thread_count() const noexcept { return pool_.size(); }

  /// Simulates every scenario; results[i] corresponds to scenarios[i].
  /// Scenario traffic is consumed (moved into the simulators).
  std::vector<noc::NocRunResult> run_all(std::vector<NocScenario> scenarios);

 private:
  util::ThreadPool pool_;
};

/// One independent SNN simulation of a batch.  `build` returns a fresh
/// Network per run (called once, on the worker that simulates the scenario);
/// it must be deterministic and safe to invoke concurrently with the other
/// scenarios' builders.
struct SnnScenario {
  std::function<snn::Network()> build;
  snn::SimulationConfig config;
};

/// Everything one scenario run produces: the spike trains plus the final
/// synapse weights (the STDP-visible state the trains alone don't expose).
struct SnnRunResult {
  snn::SimulationResult result;
  std::vector<float> final_weights;  ///< synapse order of the built Network
};

/// Fans independent SNN scenario simulations across a ThreadPool.  Every
/// scenario is simulated exactly as a standalone Simulator::run would
/// (results are slot-indexed and bit-identical to serial execution,
/// independent of submission order); threads = 1 runs inline on the calling
/// thread.
class BatchSnnEvaluator {
 public:
  /// threads = 0 resolves to hardware_concurrency().
  explicit BatchSnnEvaluator(std::uint32_t threads = 0);

  std::uint32_t thread_count() const noexcept { return pool_.size(); }

  /// Simulates every scenario; results[i] corresponds to scenarios[i].
  std::vector<SnnRunResult> run_all(const std::vector<SnnScenario>& scenarios);

  /// Multi-seed sweep convenience: one run of `build` per seed under the
  /// same config; results[i] corresponds to seeds[i].
  std::vector<SnnRunResult> run_seeds(std::function<snn::Network()> build,
                                      snn::SimulationConfig config,
                                      const std::vector<std::uint64_t>& seeds);

 private:
  util::ThreadPool pool_;
};

/// One independent closed-loop co-simulation of a batch.  `build` returns a
/// fresh Network per run (STDP and the co-sim cut marks are per-instance
/// state); it must be deterministic and safe to invoke concurrently with
/// the other scenarios' builders.
struct CoSimScenario {
  std::function<snn::Network()> build;
  Partition partition;
  Placement placement;
  noc::Topology topology;
  cosim::CoSimConfig config;
  /// Also run the same-seed open-loop snn::Simulator and report the
  /// spike-train divergence against it (doubles the SNN work; disable for
  /// pure throughput sweeps).
  bool with_ideal_baseline = true;
};

/// Closed-loop run + its divergence from the ideal interconnect.
struct CoSimOutcome {
  cosim::CoSimResult result;
  /// Zero-initialized when the scenario disabled the baseline run.
  cosim::SpikeDivergence divergence;
};

/// Fans independent co-simulations across a ThreadPool.  Every scenario
/// runs exactly as a standalone cosim::CoSimulator would (results are
/// slot-indexed and bit-identical to serial execution, independent of
/// submission order); threads = 1 runs inline on the calling thread.
class BatchCoSimEvaluator {
 public:
  /// threads = 0 resolves to hardware_concurrency().
  explicit BatchCoSimEvaluator(std::uint32_t threads = 0);

  std::uint32_t thread_count() const noexcept { return pool_.size(); }

  /// Runs every scenario; results[i] corresponds to scenarios[i].
  /// Scenarios are consumed (topologies move into the simulators).
  std::vector<CoSimOutcome> run_all(std::vector<CoSimScenario> scenarios);

  /// Fidelity sweep convenience: one run of `base` per cycles_per_timestep
  /// value (the shrinking-fabric axis); results[i] corresponds to
  /// cycles_per_timestep[i].
  std::vector<CoSimOutcome> run_cpt_sweep(
      const CoSimScenario& base,
      const std::vector<std::uint32_t>& cycles_per_timestep);

  /// DVFS sweep: one run of `base` per fabric-scaling policy (the
  /// energy-vs-fidelity frontier axis); results[i] corresponds to
  /// policies[i].
  std::vector<CoSimOutcome> run_dvfs_sweep(
      const CoSimScenario& base,
      const std::vector<cosim::DvfsPolicy>& policies);

  /// Multi-seed sweep: one run of `base` per SNN seed.
  std::vector<CoSimOutcome> run_seeds(const CoSimScenario& base,
                                      const std::vector<std::uint64_t>& seeds);

  /// Resilience sweep: one run of `base` per fault configuration (the
  /// degradation-vs-fault-intensity axis); results[i] corresponds to
  /// fault_configs[i].  An all-default FaultConfig entry yields the
  /// fault-free baseline inside the same batch.
  std::vector<CoSimOutcome> run_fault_sweep(
      const CoSimScenario& base,
      const std::vector<noc::FaultConfig>& fault_configs);

 private:
  util::ThreadPool pool_;
};

}  // namespace snnmap::core
