#include "noc/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace snnmap::noc {
namespace {

SpikePacketEvent event(std::uint64_t cycle, std::uint32_t neuron,
                       TileId src, std::vector<TileId> dests) {
  SpikePacketEvent e;
  e.emit_cycle = cycle;
  e.source_neuron = neuron;
  e.source_tile = src;
  e.dest_tiles = std::move(dests);
  return e;
}

TEST(NocSimulator, SinglePacketCrossesMesh) {
  NocSimulator sim(Topology::mesh(2, 2), NocConfig{});
  const auto result = sim.run({event(0, 1, 0, {3})});
  ASSERT_EQ(result.delivered.size(), 1u);
  const auto& d = result.delivered[0];
  EXPECT_EQ(d.source_neuron, 1u);
  EXPECT_EQ(d.dest_tile, 3u);
  // 2 hops + injection/ejection stages: latency is small but nonzero.
  EXPECT_GE(d.latency(), 2u);
  EXPECT_LE(d.latency(), 8u);
  EXPECT_TRUE(result.stats.drained);
  EXPECT_EQ(result.stats.packets_injected, 1u);
  EXPECT_EQ(result.stats.copies_delivered, 1u);
  EXPECT_EQ(result.stats.link_hops, 2u);
}

TEST(NocSimulator, LatencyGrowsWithDistance) {
  NocSimulator sim(Topology::mesh(4, 4), NocConfig{});
  const auto near = sim.run({event(0, 1, 0, {1})});
  NocSimulator sim2(Topology::mesh(4, 4), NocConfig{});
  const auto far = sim2.run({event(0, 1, 0, {15})});
  EXPECT_LT(near.delivered[0].latency(), far.delivered[0].latency());
}

TEST(NocSimulator, MulticastDeliversAllDestinations) {
  NocSimulator sim(Topology::tree(4, 4), NocConfig{});
  const auto result = sim.run({event(0, 7, 0, {1, 2, 3})});
  EXPECT_EQ(result.stats.packets_injected, 1u);
  EXPECT_EQ(result.stats.copies_delivered, 3u);
  std::vector<TileId> dests;
  for (const auto& d : result.delivered) dests.push_back(d.dest_tile);
  std::sort(dests.begin(), dests.end());
  EXPECT_EQ(dests, (std::vector<TileId>{1, 2, 3}));
}

TEST(NocSimulator, TreeMulticastSharesTrunkLinks) {
  // One packet to 3 leaves of a CxQuad tree: the uplink to the hub is
  // traversed once, then 3 downlinks -> 4 link hops, not 6.
  NocSimulator sim(Topology::tree(4, 4), NocConfig{});
  const auto result = sim.run({event(0, 7, 0, {1, 2, 3})});
  EXPECT_EQ(result.stats.link_hops, 4u);
}

TEST(NocSimulator, UnicastModeReplicatesAtSource) {
  NocConfig config;
  config.multicast = false;
  NocSimulator sim(Topology::tree(4, 4), config);
  const auto result = sim.run({event(0, 7, 0, {1, 2, 3})});
  EXPECT_EQ(result.stats.packets_injected, 1u);
  EXPECT_EQ(result.stats.flits_injected, 3u);
  EXPECT_EQ(result.stats.copies_delivered, 3u);
  EXPECT_EQ(result.stats.link_hops, 6u);  // no trunk sharing
}

TEST(NocSimulator, UnicastCostsMoreEnergyThanMulticast) {
  const auto traffic = [] {
    std::vector<SpikePacketEvent> t;
    for (int i = 0; i < 20; ++i) {
      t.push_back(event(static_cast<std::uint64_t>(i) * 3, 1, 0, {1, 2, 3}));
    }
    return t;
  };
  NocConfig multicast_cfg;
  NocSimulator multicast_sim(Topology::tree(4, 4), multicast_cfg);
  const auto with_multicast = multicast_sim.run(traffic());
  NocConfig unicast_cfg;
  unicast_cfg.multicast = false;
  NocSimulator unicast_sim(Topology::tree(4, 4), unicast_cfg);
  const auto with_unicast = unicast_sim.run(traffic());
  EXPECT_GT(with_unicast.stats.global_energy_pj,
            with_multicast.stats.global_energy_pj);
}

TEST(NocSimulator, CongestionQueuesPackets) {
  // Many sources target one destination in the same cycle: deliveries are
  // serialized by the destination's ejection port, so the last arrival's
  // latency must exceed the lone-packet latency.
  std::vector<SpikePacketEvent> traffic;
  for (TileId src = 1; src < 9; ++src) {
    traffic.push_back(event(0, src, src, {0}));
  }
  NocSimulator sim(Topology::mesh(3, 3), NocConfig{});
  const auto result = sim.run(traffic);
  EXPECT_EQ(result.stats.copies_delivered, 8u);
  EXPECT_GT(result.stats.max_latency_cycles, 6u);
  // Delivery cycles at tile 0 must be unique (one ejection per cycle).
  std::vector<std::uint64_t> recv;
  for (const auto& d : result.delivered) recv.push_back(d.recv_cycle);
  std::sort(recv.begin(), recv.end());
  EXPECT_TRUE(std::adjacent_find(recv.begin(), recv.end()) == recv.end());
}

TEST(NocSimulator, EnergyMatchesHopAccounting) {
  NocConfig config;
  config.energy.link_hop_pj = 10.0;
  config.energy.router_flit_pj = 5.0;
  config.energy.aer_codec_pj = 1.0;
  NocSimulator sim(Topology::mesh(2, 2), config);
  const auto result = sim.run({event(0, 1, 0, {3})});
  // 2 link hops -> 2 * (10 + 5) for forwarding, final router +5, codec
  // charged at inject (+1) and deliver (+1).
  EXPECT_DOUBLE_EQ(result.stats.global_energy_pj,
                   2.0 * 15.0 + 5.0 + 1.0 + 1.0);
}

TEST(NocSimulator, OffchipHopsAreCountedAndPricedSeparately) {
  auto topo = Topology::mesh(4, 1);
  topo.assign_chips(2);  // tiles {0,1} on chip 0, {2,3} on chip 1
  NocConfig config;
  config.energy.link_hop_pj = 10.0;
  config.energy.offchip_link_hop_pj = 40.0;
  config.energy.router_flit_pj = 5.0;
  config.energy.aer_codec_pj = 1.0;
  NocSimulator sim(std::move(topo), config);
  const auto result = sim.run({event(0, 1, 0, {3})});
  ASSERT_TRUE(result.stats.drained);
  EXPECT_EQ(result.stats.link_hops, 3u);          // total, on + off chip
  EXPECT_EQ(result.stats.offchip_link_hops, 1u);  // the 1 -> 2 crossing
  // 2 on-chip hops, 1 off-chip hop, 3 forwarding + 1 ejecting router flit,
  // codec charged at inject and deliver.
  EXPECT_DOUBLE_EQ(result.stats.global_energy_pj,
                   2.0 * 10.0 + 40.0 + 4.0 * 5.0 + 1.0 + 1.0);
}

TEST(NocSimulator, OffchipCrossingsAddSerdesLatency) {
  const auto run_with = [](std::uint32_t chips, std::uint32_t serdes) {
    auto topo = Topology::mesh(4, 1);
    topo.assign_chips(chips);
    NocConfig config;
    config.offchip_link_latency = serdes;
    NocSimulator sim(std::move(topo), config);
    return sim.run({event(0, 1, 0, {3})});
  };
  const auto onchip = run_with(1, 2);
  const auto twochip = run_with(2, 2);
  const auto slow = run_with(2, 9);
  ASSERT_EQ(onchip.delivered.size(), 1u);
  ASSERT_EQ(twochip.delivered.size(), 1u);
  ASSERT_EQ(slow.delivered.size(), 1u);
  EXPECT_EQ(onchip.stats.offchip_link_hops, 0u);
  EXPECT_EQ(twochip.stats.offchip_link_hops, 1u);
  // The path crosses exactly one chip boundary, so delivery slips by
  // exactly the configured SerDes latency relative to the monolithic die.
  EXPECT_EQ(twochip.delivered[0].latency(),
            onchip.delivered[0].latency() + 2u);
  EXPECT_EQ(slow.delivered[0].latency(),
            onchip.delivered[0].latency() + 9u);
}

TEST(NocSimulator, DrainsLargeRandomTraffic) {
  std::vector<SpikePacketEvent> traffic;
  std::uint64_t cycle = 0;
  for (int i = 0; i < 2000; ++i) {
    const TileId src = static_cast<TileId>(i % 9);
    const TileId dst = static_cast<TileId>((i * 5 + 3) % 9);
    if (src == dst) continue;
    traffic.push_back(event(cycle, static_cast<std::uint32_t>(i % 64),
                            src, {dst}));
    if (i % 3 == 0) ++cycle;
  }
  NocSimulator sim(Topology::mesh(3, 3), NocConfig{});
  const auto result = sim.run(traffic);
  EXPECT_TRUE(result.stats.drained);
  EXPECT_EQ(result.stats.copies_delivered, traffic.size());
}

TEST(NocSimulator, RingTrafficDrains) {
  std::vector<SpikePacketEvent> traffic;
  for (int i = 0; i < 200; ++i) {
    traffic.push_back(event(static_cast<std::uint64_t>(i), 1,
                            static_cast<TileId>(i % 5),
                            {static_cast<TileId>((i + 2) % 5)}));
  }
  NocSimulator sim(Topology::ring(5), NocConfig{});
  const auto result = sim.run(traffic);
  EXPECT_TRUE(result.stats.drained);
  EXPECT_EQ(result.stats.copies_delivered, 200u);
}

TEST(NocSimulator, SequenceNumbersFollowEmissionOrder) {
  NocSimulator sim(Topology::mesh(2, 2), NocConfig{});
  const auto result = sim.run({
      event(0, 5, 0, {3}),
      event(10, 5, 0, {3}),
      event(20, 5, 0, {3}),
  });
  ASSERT_EQ(result.delivered.size(), 3u);
  std::vector<std::uint32_t> seqs;
  for (const auto& d : result.delivered) seqs.push_back(d.sequence);
  std::sort(seqs.begin(), seqs.end());
  EXPECT_EQ(seqs, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(NocSimulator, RejectsEmptyDestinations) {
  NocSimulator sim(Topology::mesh(2, 2), NocConfig{});
  EXPECT_THROW(sim.run({event(0, 1, 0, {})}), std::invalid_argument);
}

TEST(NocSimulator, RejectsZeroBufferDepth) {
  NocConfig config;
  config.buffer_depth = 0;
  EXPECT_THROW(NocSimulator(Topology::mesh(2, 2), config),
               std::invalid_argument);
}

TEST(NocSimulator, RejectsZeroMaxCycles) {
  NocConfig config;
  config.max_cycles = 0;
  EXPECT_THROW(NocSimulator(Topology::mesh(2, 2), config),
               std::invalid_argument);
}

TEST(NocSimulator, MaxCyclesGuardReportsNotDrained) {
  NocConfig config;
  config.max_cycles = 2;  // far too few for a cross-mesh packet
  NocSimulator sim(Topology::mesh(4, 4), config);
  const auto result = sim.run({event(0, 1, 0, {15})});
  EXPECT_FALSE(result.stats.drained);
  // The truncated run still reports consistent partial statistics.
  EXPECT_EQ(result.stats.duration_cycles, 2u);
  EXPECT_EQ(result.stats.packets_injected, 1u);
  EXPECT_EQ(result.stats.copies_delivered, 0u);
  EXPECT_EQ(result.delivered.size(), 0u);
}

TEST(NocSimulator, NotDrainedUnderSustainedOverloadKeepsPartialLog) {
  // Every tile floods tile 0 faster than one ejection/cycle can drain.
  std::vector<SpikePacketEvent> traffic;
  for (int i = 0; i < 500; ++i) {
    traffic.push_back(event(static_cast<std::uint64_t>(i / 8),
                            static_cast<std::uint32_t>(i),
                            static_cast<TileId>(1 + i % 8), {0}));
  }
  NocConfig config;
  config.max_cycles = 30;
  config.buffer_depth = 1;
  NocSimulator sim(Topology::mesh(3, 3), config);
  const auto result = sim.run(traffic);
  EXPECT_FALSE(result.stats.drained);
  EXPECT_EQ(result.stats.duration_cycles, 30u);
  // Some copies made it; each is logged exactly once.
  EXPECT_GT(result.stats.copies_delivered, 0u);
  EXPECT_LT(result.stats.copies_delivered, traffic.size());
  EXPECT_EQ(result.delivered.size(), result.stats.copies_delivered);
  // Drained state never reports more deliveries than injections.
  EXPECT_LE(result.stats.copies_delivered, result.stats.flits_injected);
}

TEST(NocSimulator, StreamingStatsModeMatchesAggregates) {
  const auto traffic = [] {
    std::vector<SpikePacketEvent> t;
    for (int i = 0; i < 300; ++i) {
      t.push_back(event(static_cast<std::uint64_t>(i / 3),
                        static_cast<std::uint32_t>(i % 32),
                        static_cast<TileId>(i % 9),
                        {static_cast<TileId>((i + 4) % 9),
                         static_cast<TileId>((i + 7) % 9)}));
    }
    return t;
  };
  NocSimulator full(Topology::mesh(3, 3), NocConfig{});
  const auto with_log = full.run(traffic());

  NocConfig streaming_config;
  streaming_config.collect_delivered = false;
  NocSimulator streaming(Topology::mesh(3, 3), streaming_config);
  const auto stats_only = streaming.run(traffic());

  // No per-copy log materialized, but every aggregate is identical.
  EXPECT_TRUE(stats_only.delivered.empty());
  EXPECT_FALSE(with_log.delivered.empty());
  EXPECT_EQ(stats_only.stats.packets_injected,
            with_log.stats.packets_injected);
  EXPECT_EQ(stats_only.stats.flits_injected, with_log.stats.flits_injected);
  EXPECT_EQ(stats_only.stats.copies_delivered,
            with_log.stats.copies_delivered);
  EXPECT_EQ(stats_only.stats.link_hops, with_log.stats.link_hops);
  EXPECT_EQ(stats_only.stats.router_traversals,
            with_log.stats.router_traversals);
  EXPECT_EQ(stats_only.stats.duration_cycles, with_log.stats.duration_cycles);
  EXPECT_EQ(stats_only.stats.max_latency_cycles,
            with_log.stats.max_latency_cycles);
  EXPECT_DOUBLE_EQ(stats_only.stats.global_energy_pj,
                   with_log.stats.global_energy_pj);
  EXPECT_DOUBLE_EQ(stats_only.stats.latency_cycles.mean(),
                   with_log.stats.latency_cycles.mean());
  EXPECT_EQ(stats_only.stats.link_flits, with_log.stats.link_flits);
  // The log-derived SNN metrics stay zeroed in streaming mode.
  EXPECT_EQ(stats_only.snn.delivered_spikes, 0u);
  EXPECT_EQ(stats_only.snn.isi_pairs, 0u);
}

TEST(NocSimulator, IdleGapsAreFastForwarded) {
  // Two packets a million cycles apart must not take a million iterations;
  // if fast-forward works this returns instantly and duration covers the gap.
  NocSimulator sim(Topology::mesh(2, 2), NocConfig{});
  const auto result = sim.run({
      event(0, 1, 0, {3}),
      event(1'000'000, 1, 0, {3}),
  });
  EXPECT_TRUE(result.stats.drained);
  EXPECT_EQ(result.stats.copies_delivered, 2u);
  EXPECT_GT(result.stats.duration_cycles, 1'000'000u);
}

TEST(NocSimulator, LinkUtilizationAccountsEveryHop) {
  NocSimulator sim(Topology::mesh(3, 3), NocConfig{});
  const auto result = sim.run({
      event(0, 1, 0, {8}),  // 4 hops
      event(5, 2, 0, {2}),  // 2 hops
  });
  ASSERT_TRUE(result.stats.drained);
  std::uint64_t total = 0;
  for (const auto& [link, flits] : result.stats.link_flits) {
    total += flits;
  }
  EXPECT_EQ(total, result.stats.link_hops);
  EXPECT_EQ(result.stats.link_hops, 6u);
  EXPECT_GE(result.stats.max_link_flits(), 1u);
  EXPECT_GE(result.stats.link_hotspot_factor(), 1.0);
}

TEST(NocSimulator, SharedPathCreatesLinkHotspot) {
  // Two packets over the same 3-hop row: the shared links carry 2 flits
  // each and the hotspot factor is exactly max/mean = 2/2 = 1 (all links
  // shared); add a third packet on a different path to break evenness.
  NocSimulator sim(Topology::mesh(4, 1), NocConfig{});
  const auto result = sim.run({
      event(0, 1, 0, {3}),
      event(10, 1, 0, {3}),
      event(20, 2, 1, {2}),
  });
  ASSERT_TRUE(result.stats.drained);
  EXPECT_EQ(result.stats.max_link_flits(), 3u);  // link 1->2 used thrice
  EXPECT_GT(result.stats.link_hotspot_factor(), 1.0);
}

TEST(NocSimulator, ThroughputReflectsDeliveries) {
  std::vector<SpikePacketEvent> traffic;
  for (int i = 0; i < 100; ++i) {
    traffic.push_back(event(static_cast<std::uint64_t>(i) * 10, 1, 0, {3}));
  }
  NocSimulator sim(Topology::mesh(2, 2), NocConfig{});
  const auto result = sim.run(traffic);
  EXPECT_EQ(result.stats.copies_delivered, 100u);
  EXPECT_GT(result.stats.throughput_aer_per_ms(1000), 0.0);
}

// --- incremental session API (the co-simulation seam) --------------------

/// Deterministic multi-tile burst trace with distinct sort keys.
std::vector<SpikePacketEvent> session_trace(std::uint64_t window,
                                            std::uint64_t base_cycle) {
  std::vector<SpikePacketEvent> traffic;
  for (std::uint32_t k = 0; k < 6; ++k) {
    SpikePacketEvent e = event(base_cycle + k % 3, 10 * window + k,
                               k % 4, {TileId{(k + 5) % 9}, TileId{8}});
    if (e.source_tile == 8) e.source_tile = 7;
    e.dest_tiles.erase(
        std::remove(e.dest_tiles.begin(), e.dest_tiles.end(), e.source_tile),
        e.dest_tiles.end());
    e.emit_step = window;
    traffic.push_back(std::move(e));
  }
  return traffic;
}

TEST(NocSimulatorSession, WindowedRunMatchesOneShotRun) {
  // The same trace, simulated (a) in one run() call and (b) as a session
  // of bounded windows with per-window enqueue + drain, must produce the
  // identical delivery log and aggregate statistics.
  std::vector<SpikePacketEvent> all;
  std::vector<std::vector<SpikePacketEvent>> windows;
  const std::uint64_t kWindow = 25;
  for (std::uint64_t w = 0; w < 8; ++w) {
    auto chunk = session_trace(w, w * kWindow);
    windows.push_back(chunk);
    all.insert(all.end(), chunk.begin(), chunk.end());
  }

  NocSimulator one_shot(Topology::mesh(3, 3), NocConfig{});
  const auto expected = one_shot.run(all);
  ASSERT_TRUE(expected.stats.drained);

  NocSimulator session(Topology::mesh(3, 3), NocConfig{});
  session.begin();
  std::vector<DeliveredSpike> log;
  for (std::uint64_t w = 0; w < 8; ++w) {
    session.enqueue(windows[w]);
    session.run_until((w + 1) * kWindow);
    const auto chunk = session.drain_delivered();
    log.insert(log.end(), chunk.begin(), chunk.end());
  }
  session.run_until(kNoCycleLimit);  // drain the tail
  const auto tail = session.drain_delivered();
  log.insert(log.end(), tail.begin(), tail.end());
  const auto finished = session.finish();

  ASSERT_EQ(log.size(), expected.delivered.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i].source_neuron, expected.delivered[i].source_neuron);
    EXPECT_EQ(log[i].dest_tile, expected.delivered[i].dest_tile);
    EXPECT_EQ(log[i].emit_cycle, expected.delivered[i].emit_cycle);
    EXPECT_EQ(log[i].recv_cycle, expected.delivered[i].recv_cycle);
    EXPECT_EQ(log[i].sequence, expected.delivered[i].sequence);
  }
  EXPECT_EQ(finished.stats.copies_delivered,
            expected.stats.copies_delivered);
  EXPECT_EQ(finished.stats.link_hops, expected.stats.link_hops);
  EXPECT_EQ(finished.stats.router_traversals,
            expected.stats.router_traversals);
  EXPECT_EQ(finished.stats.link_flits, expected.stats.link_flits);
  EXPECT_DOUBLE_EQ(finished.stats.global_energy_pj,
                   expected.stats.global_energy_pj);
  EXPECT_DOUBLE_EQ(finished.stats.latency_cycles.mean(),
                   expected.stats.latency_cycles.mean());
  EXPECT_TRUE(finished.stats.drained);
}

TEST(NocSimulatorSession, RunUntilAdvancesVirtualTimeWhenIdle) {
  NocSimulator sim(Topology::mesh(2, 2), NocConfig{});
  sim.begin();
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.run_until(100), 100u);  // idle window: time still passes
  EXPECT_EQ(sim.now(), 100u);
  sim.enqueue({event(250, 1, 0, {3})});
  EXPECT_FALSE(sim.idle());
  EXPECT_EQ(sim.run_until(200), 200u);  // event is beyond the window
  EXPECT_TRUE(sim.drain_delivered().empty());
  sim.run_until(400);
  EXPECT_TRUE(sim.idle());
  const auto log = sim.drain_delivered();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_GE(log[0].recv_cycle, 250u);
}

TEST(NocSimulatorSession, RunCyclesIsRelative) {
  NocSimulator sim(Topology::mesh(2, 2), NocConfig{});
  sim.begin();
  sim.enqueue({event(0, 1, 0, {3})});
  sim.run_cycles(10);
  EXPECT_EQ(sim.now(), 10u);
  EXPECT_EQ(sim.drain_delivered().size(), 1u);
}

TEST(NocSimulatorSession, HaltsAtMaxCyclesAndStaysHalted) {
  NocConfig config;
  config.max_cycles = 2;  // far too few for a cross-mesh packet
  NocSimulator sim(Topology::mesh(4, 4), config);
  sim.begin();
  sim.enqueue({event(0, 1, 0, {15})});
  sim.run_until(50);
  EXPECT_TRUE(sim.halted());
  EXPECT_EQ(sim.now(), 2u);
  sim.run_until(100);  // no-op once halted
  EXPECT_EQ(sim.now(), 2u);
  const auto result = sim.finish();
  EXPECT_FALSE(result.stats.drained);
  EXPECT_EQ(result.stats.duration_cycles, config.max_cycles);
}

TEST(NocSimulatorSession, WindowEnergySamplesTrackActivity) {
  NocConfig config;
  config.energy.aer_codec_pj = 1.0;
  config.energy.link_hop_pj = 10.0;
  config.energy.router_flit_pj = 5.0;
  NocSimulator sim(Topology::mesh(2, 2), config);
  sim.begin();

  // Window 0: one 2-hop packet, delivered inside the window.
  sim.enqueue({event(0, 1, 0, {3})});
  sim.run_until(50);
  const auto w0 = sim.close_energy_window();
  EXPECT_EQ(w0.index, 0u);
  EXPECT_EQ(w0.start_cycle, 0u);
  EXPECT_EQ(w0.end_cycle, 50u);
  EXPECT_EQ(w0.flits_injected, 1u);
  EXPECT_EQ(w0.copies_delivered, 1u);
  EXPECT_EQ(w0.link_hops, 2u);
  EXPECT_EQ(w0.router_traversals, 3u);  // 2 forwards + 1 ejection
  EXPECT_EQ(w0.codec_events(), 2u);     // encode + decode
  EXPECT_EQ(w0.peak_link_flits, 1u);
  // The fabric went idle after a few busy cycles; the rest fast-forwarded.
  EXPECT_GT(w0.busy_cycles, 0u);
  EXPECT_LT(w0.busy_cycles, 10u);
  EXPECT_GT(w0.utilization(), 0.0);
  EXPECT_LT(w0.utilization(), 1.0);
  EXPECT_DOUBLE_EQ(w0.energy_pj, 2.0 * 1.0 + 2.0 * 10.0 + 3.0 * 5.0);

  // Window 1: empty span — zero activity, zero energy.
  sim.run_until(100);
  const auto w1 = sim.close_energy_window();
  EXPECT_EQ(w1.start_cycle, 50u);
  EXPECT_EQ(w1.end_cycle, 100u);
  EXPECT_EQ(w1.codec_events(), 0u);
  EXPECT_EQ(w1.busy_cycles, 0u);
  EXPECT_DOUBLE_EQ(w1.utilization(), 0.0);
  EXPECT_DOUBLE_EQ(w1.energy_pj, 0.0);

  // Window 2: two packets sharing a link raise the per-window peak.
  sim.enqueue({event(100, 1, 0, {3}), event(100, 2, 0, {3})});
  sim.run_until(200);
  const auto w2 = sim.close_energy_window();
  EXPECT_EQ(w2.flits_injected, 2u);
  EXPECT_EQ(w2.peak_link_flits, 2u);

  const auto result = sim.finish();
  // No activity after the last close: finish() appends no trailing window.
  EXPECT_EQ(result.window_energy.windows.size(), 3u);
  EXPECT_EQ(result.window_energy.codec_events, 6u);
  EXPECT_EQ(result.window_energy.total_energy_pj,
            result.stats.global_energy_pj);
}

TEST(NocSimulator, EnergyValidationRejectsBadModel) {
  NocConfig config;
  config.energy.router_flit_pj = -1.0;
  EXPECT_THROW(NocSimulator(Topology::mesh(2, 2), config),
               std::invalid_argument);
}

TEST(NocSimulator, MaxCyclesBoundaryNeverInjectsLateTraffic) {
  // Contract (NocConfig::max_cycles): cycle max_cycles is never simulated,
  // so traffic due at or beyond it is never injected — the session halts
  // with it still queued.  Previously such events were injected during the
  // idle fast-forward (the halt check only ran with flits in flight), so
  // one-shot runs padded packets_injected with packets the fabric never
  // moved, and the halt cycle depended on the emission schedule.
  const auto traffic = [] {
    return std::vector<SpikePacketEvent>{
        event(50, 1, 0, {3}),    // inside the budget: delivered
        event(100, 2, 0, {3}),   // exactly at the boundary: never injected
        event(150, 3, 0, {3}),   // beyond it: never injected
    };
  };
  for (const NocEngine engine : {NocEngine::kCycle, NocEngine::kEvent}) {
    SCOPED_TRACE(to_string(engine));
    NocConfig config;
    config.max_cycles = 100;
    config.engine = engine;
    NocSimulator one_shot(Topology::mesh(2, 2), config);
    const auto result = one_shot.run(traffic());
    EXPECT_FALSE(result.stats.drained);
    EXPECT_EQ(result.stats.duration_cycles, 100u);
    EXPECT_EQ(result.stats.packets_injected, 1u);
    EXPECT_EQ(result.stats.copies_delivered, 1u);
    // The never-injected copies are stranded, closing the conservation
    // identity delivered + lost == offered for the halted run.
    EXPECT_EQ(result.stats.fault.copies_stranded, 2u);
    EXPECT_EQ(result.stats.copies_delivered +
                  result.stats.fault.copies_lost(),
              3u);
    // Stranding is bookkeeping, not a fault: the run is still fault-free.
    EXPECT_FALSE(result.stats.fault.any());

    // A session chopped into windows across the boundary agrees exactly.
    NocSimulator session(Topology::mesh(2, 2), config);
    session.begin();
    session.enqueue(traffic());
    for (std::uint64_t end = 30; end <= 180 && !session.halted();
         end += 30) {
      session.run_until(end);
    }
    EXPECT_TRUE(session.halted());
    const auto windowed = session.finish();
    EXPECT_FALSE(windowed.stats.drained);
    EXPECT_EQ(windowed.stats.duration_cycles, 100u);
    EXPECT_EQ(windowed.stats.packets_injected, 1u);
    EXPECT_EQ(windowed.stats.copies_delivered, 1u);
    EXPECT_EQ(windowed.stats.fault.copies_stranded, 2u);
  }
}

TEST(NocSimulator, EventEngineMatchesCycleEngineAcrossOffchipParking) {
  // Two-chip mesh with a SerDes latency far longer than any on-chip path:
  // between bursts the only pending work sits parked on the boundary
  // links, which is exactly the fixed-point state the event engine skips
  // through its wake-up queue.  Everything observable must still match the
  // cycle oracle bit for bit — including busy_cycles, which counts the
  // skipped stall spans as if they had been simulated.
  std::vector<SpikePacketEvent> traffic;
  std::uint32_t neuron = 0;
  for (std::uint64_t burst = 0; burst < 8; ++burst) {
    const std::uint64_t at = burst * 5'000;
    traffic.push_back(event(at, neuron++, 0, {7, 4}));
    traffic.push_back(event(at + 1, neuron++, 5, {2}));
  }
  const auto run_with = [&](NocEngine engine) {
    Topology t = Topology::mesh(4, 2);
    t.assign_chips(2);
    NocConfig config;
    config.engine = engine;
    config.offchip_link_latency = 700;
    NocSimulator sim(std::move(t), config);
    return sim.run(traffic);
  };
  const auto oracle = run_with(NocEngine::kCycle);
  const auto evt = run_with(NocEngine::kEvent);
  ASSERT_TRUE(oracle.stats.drained);
  EXPECT_TRUE(evt.stats.drained);
  EXPECT_EQ(evt.stats.duration_cycles, oracle.stats.duration_cycles);
  EXPECT_EQ(evt.stats.copies_delivered, oracle.stats.copies_delivered);
  EXPECT_EQ(evt.stats.link_hops, oracle.stats.link_hops);
  EXPECT_EQ(evt.stats.offchip_link_hops, oracle.stats.offchip_link_hops);
  EXPECT_EQ(evt.stats.global_energy_pj, oracle.stats.global_energy_pj);
  EXPECT_EQ(evt.window_energy.busy_cycles, oracle.window_energy.busy_cycles);
  ASSERT_EQ(evt.delivered.size(), oracle.delivered.size());
  for (std::size_t i = 0; i < oracle.delivered.size(); ++i) {
    EXPECT_EQ(evt.delivered[i].dest_tile, oracle.delivered[i].dest_tile);
    EXPECT_EQ(evt.delivered[i].recv_cycle, oracle.delivered[i].recv_cycle);
    EXPECT_EQ(evt.delivered[i].sequence, oracle.delivered[i].sequence);
  }
}

TEST(NocSimulatorSession, BeginResetsEverything) {
  NocSimulator sim(Topology::mesh(2, 2), NocConfig{});
  sim.run({event(0, 1, 0, {3})});  // first full run
  sim.begin();
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_TRUE(sim.idle());
  sim.enqueue({event(0, 1, 0, {3})});
  sim.run_until(kNoCycleLimit);
  const auto result = sim.finish();
  EXPECT_EQ(result.stats.packets_injected, 1u);
  EXPECT_EQ(result.stats.copies_delivered, 1u);
  // Sequence numbering restarted with the session.
  ASSERT_EQ(result.delivered.size(), 1u);
  EXPECT_EQ(result.delivered[0].sequence, 0u);
}

}  // namespace
}  // namespace snnmap::noc
