#include "hw/architecture.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace snnmap::hw {
namespace {

TEST(Architecture, CxquadPreset) {
  const auto a = Architecture::cxquad();
  EXPECT_EQ(a.crossbar_count, 4u);
  EXPECT_EQ(a.neurons_per_crossbar, 256u);
  EXPECT_EQ(a.interconnect, InterconnectKind::kTree);
  EXPECT_EQ(a.capacity(), 1024u);
  EXPECT_TRUE(a.fits(1024));
  EXPECT_FALSE(a.fits(1025));
}

TEST(Architecture, SizedForRoundsUp) {
  const auto a = Architecture::sized_for(1000, 256, InterconnectKind::kMesh);
  EXPECT_EQ(a.crossbar_count, 4u);
  const auto b = Architecture::sized_for(1025, 256, InterconnectKind::kMesh);
  EXPECT_EQ(b.crossbar_count, 5u);
  const auto c = Architecture::sized_for(0, 256, InterconnectKind::kMesh);
  EXPECT_EQ(c.crossbar_count, 1u);
}

TEST(Architecture, SizedForRejectsZeroCapacity) {
  EXPECT_THROW(Architecture::sized_for(10, 0, InterconnectKind::kMesh),
               std::invalid_argument);
}

TEST(Architecture, MeshDimensionsCoverCrossbars) {
  for (std::uint32_t count : {1u, 2u, 3u, 4u, 5u, 7u, 9u, 12u, 16u, 17u}) {
    Architecture a;
    a.crossbar_count = count;
    EXPECT_GE(a.mesh_width() * a.mesh_height(), count) << count;
    // Squarish: width within one row/col of height.
    EXPECT_LE(a.mesh_width(), a.mesh_height() + count);
  }
}

TEST(Architecture, MeshIsSquareForPerfectSquares) {
  Architecture a;
  a.crossbar_count = 16;
  EXPECT_EQ(a.mesh_width(), 4u);
  EXPECT_EQ(a.mesh_height(), 4u);
}

TEST(InterconnectKind, StringRoundTrip) {
  EXPECT_EQ(interconnect_from_string("mesh"), InterconnectKind::kMesh);
  EXPECT_EQ(interconnect_from_string("tree"), InterconnectKind::kTree);
  EXPECT_EQ(interconnect_from_string("ring"), InterconnectKind::kRing);
  EXPECT_STREQ(to_string(InterconnectKind::kMesh), "mesh");
  EXPECT_STREQ(to_string(InterconnectKind::kTree), "tree");
  EXPECT_STREQ(to_string(InterconnectKind::kRing), "ring");
  EXPECT_THROW(interconnect_from_string("torus"), std::invalid_argument);
}

TEST(Architecture, DescribeMentionsShape) {
  const auto a = Architecture::cxquad();
  const auto text = a.describe();
  EXPECT_NE(text.find("4 crossbars"), std::string::npos);
  EXPECT_NE(text.find("tree"), std::string::npos);
}

}  // namespace
}  // namespace snnmap::hw
