// Fixture: every rule's allowed shape in one translation unit — gated
// subsystem calls, waived unordered usage, util::Rng-only randomness.
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Engine {
  void step() {
    // Statement-level gate: the draw only happens on the fault path.
    if (faults_active_ && fault_model_.draw_drop()) {
      drops_++;
    }
    if (trace_active_) {
      tracer_.record(now_, 1, 2, 3, 4);
    }
  }

  void begin() {
    // The hoist itself: assigning the gate from the subsystem is legal.
    faults_active_ = fault_model_.active();
  }

  // snnmap-lint: allow(hoisted-gate) -- whole helper is only invoked from
  // step() under the faults_active_ gate.
  bool port_live(unsigned g) const {
    return fault_model_.link_live(g) && fault_model_.router_live(g);
  }

  bool faults_active_ = false;
  bool trace_active_ = false;
  FaultModel fault_model_;
  Tracer tracer_;
  unsigned long long now_ = 0;
  unsigned drops_ = 0;
};

unsigned sum_remote(const Graph& graph) {
  // snnmap-lint: allow(unordered-iteration) -- membership-only dedup;
  // never iterated, so order cannot leak.
  std::unordered_set<unsigned> seen;
  // snnmap-lint: allow(unordered-iteration) -- per-key lookup only.
  std::unordered_map<unsigned, unsigned> cache;
  unsigned total = 0;
  for (unsigned v : graph.nodes()) {
    if (seen.insert(v).second) total += cache[v];
  }
  return total;
}

}  // namespace fixture
