#include "noc/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace snnmap::noc {

std::uint64_t NocStats::max_link_flits() const noexcept {
  std::uint64_t max_flits = 0;
  for (const auto& [link, flits] : link_flits) {
    max_flits = std::max(max_flits, flits);
  }
  return max_flits;
}

double NocStats::mean_link_flits() const noexcept {
  if (link_flits.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [link, flits] : link_flits) {
    sum += static_cast<double>(flits);
  }
  return sum / static_cast<double>(link_flits.size());
}

double NocStats::link_hotspot_factor() const noexcept {
  const double mean = mean_link_flits();
  return mean > 0.0 ? static_cast<double>(max_link_flits()) / mean : 0.0;
}

double NocStats::throughput_aer_per_ms(
    std::uint32_t cycles_per_ms) const noexcept {
  if (duration_cycles == 0 || cycles_per_ms == 0) return 0.0;
  const double ms =
      static_cast<double>(duration_cycles) / static_cast<double>(cycles_per_ms);
  return static_cast<double>(copies_delivered) / ms;
}

namespace {

/// Stable counting-sort of `spikes` by key (gather into a fresh vector).
/// Used instead of comparison sorts because simulator delivery logs arrive
/// pre-sorted by recv_cycle: a stable pass per remaining key reproduces the
/// exact multi-key order at O(n) instead of O(n log n) over 48-byte
/// elements.
template <typename Key>
void stable_bucket_by(std::vector<DeliveredSpike>& spikes, Key&& key,
                      std::size_t key_bound) {
  std::vector<std::size_t> offsets(key_bound + 1, 0);
  for (const DeliveredSpike& s : spikes) {
    ++offsets[static_cast<std::size_t>(key(s)) + 1];
  }
  for (std::size_t k = 1; k <= key_bound; ++k) offsets[k] += offsets[k - 1];
  std::vector<DeliveredSpike> sorted(spikes.size());
  for (const DeliveredSpike& s : spikes) {
    sorted[offsets[static_cast<std::size_t>(key(s))]++] = s;
  }
  spikes = std::move(sorted);
}

/// True when a counting pass over ids bounded by `max_key` costs less than
/// a comparison sort of `n` elements would.
bool dense_enough(std::uint32_t max_key, std::size_t n) {
  return static_cast<std::uint64_t>(max_key) <
         static_cast<std::uint64_t>(n) * 4 + 1024;
}

}  // namespace

SnnMetrics compute_snn_metrics(std::vector<DeliveredSpike> delivered) {
  SnnMetrics m;
  m.delivered_spikes = delivered.size();
  if (delivered.empty()) return m;

  std::uint32_t max_dest = 0;
  std::uint32_t max_neuron = 0;
  for (const DeliveredSpike& s : delivered) {
    max_dest = std::max(max_dest, s.dest_tile);
    max_neuron = std::max(max_neuron, s.source_neuron);
  }

  // ---- Spike disorder: per destination, arrival order vs emission order,
  // i.e. sorted by (dest_tile, recv_cycle, emit_cycle).  The bucket pass
  // preserves arrival order inside each destination; only inputs that are
  // not already recv-ordered (handcrafted logs) need the per-bucket sort.
  // Pathologically sparse tile ids (possible for handcrafted logs — the
  // simulator's ids are bounded by tile_count) fall back to the comparison
  // sort, which also avoids the + 1 overflow a UINT32_MAX key would hit.
  if (dense_enough(max_dest, delivered.size())) {
    stable_bucket_by(
        delivered, [](const DeliveredSpike& s) { return s.dest_tile; },
        static_cast<std::size_t>(max_dest) + 1);
    const auto recv_emit_less = [](const DeliveredSpike& a,
                                   const DeliveredSpike& b) {
      if (a.recv_cycle != b.recv_cycle) return a.recv_cycle < b.recv_cycle;
      return a.emit_cycle < b.emit_cycle;
    };
    std::size_t i = 0;
    while (i < delivered.size()) {
      std::size_t j = i + 1;
      while (j < delivered.size() &&
             delivered[j].dest_tile == delivered[i].dest_tile) {
        ++j;
      }
      if (!std::is_sorted(delivered.begin() + static_cast<std::ptrdiff_t>(i),
                          delivered.begin() + static_cast<std::ptrdiff_t>(j),
                          recv_emit_less)) {
        std::sort(delivered.begin() + static_cast<std::ptrdiff_t>(i),
                  delivered.begin() + static_cast<std::ptrdiff_t>(j),
                  recv_emit_less);
      }
      i = j;
    }
  } else {
    std::sort(delivered.begin(), delivered.end(),
              [](const DeliveredSpike& a, const DeliveredSpike& b) {
                if (a.dest_tile != b.dest_tile)
                  return a.dest_tile < b.dest_tile;
                if (a.recv_cycle != b.recv_cycle)
                  return a.recv_cycle < b.recv_cycle;
                return a.emit_cycle < b.emit_cycle;
              });
  }
  std::size_t i = 0;
  while (i < delivered.size()) {
    std::size_t j = i;
    std::uint64_t max_step_seen = 0;
    bool first = true;
    while (j < delivered.size() &&
           delivered[j].dest_tile == delivered[i].dest_tile) {
      if (!first && delivered[j].emit_step < max_step_seen) {
        ++m.disordered_spikes;  // an earlier-step spike arrived late
      }
      max_step_seen = std::max(max_step_seen, delivered[j].emit_step);
      first = false;
      ++j;
    }
    i = j;
  }
  m.disorder_fraction = static_cast<double>(m.disordered_spikes) /
                        static_cast<double>(m.delivered_spikes);

  // ---- ISI distortion: per (source neuron, destination) stream, sorted by
  // (source_neuron, dest_tile, sequence).  A stable pass by neuron over the
  // dest-sorted array yields (neuron, dest) grouping directly; only streams
  // where congestion actually reordered arrivals need the per-stream sort.
  if (dense_enough(max_neuron, delivered.size())) {
    stable_bucket_by(
        delivered, [](const DeliveredSpike& s) { return s.source_neuron; },
        static_cast<std::size_t>(max_neuron) + 1);
    const auto sequence_less = [](const DeliveredSpike& a,
                                  const DeliveredSpike& b) {
      return a.sequence < b.sequence;
    };
    std::size_t i = 0;
    while (i < delivered.size()) {
      std::size_t j = i + 1;
      while (j < delivered.size() &&
             delivered[j].source_neuron == delivered[i].source_neuron &&
             delivered[j].dest_tile == delivered[i].dest_tile) {
        ++j;
      }
      if (!std::is_sorted(delivered.begin() + static_cast<std::ptrdiff_t>(i),
                          delivered.begin() + static_cast<std::ptrdiff_t>(j),
                          sequence_less)) {
        std::sort(delivered.begin() + static_cast<std::ptrdiff_t>(i),
                  delivered.begin() + static_cast<std::ptrdiff_t>(j),
                  sequence_less);
      }
      i = j;
    }
  } else {
    // Pathologically sparse neuron ids: a counting pass would allocate more
    // than the comparison sort costs.
    std::sort(delivered.begin(), delivered.end(),
              [](const DeliveredSpike& a, const DeliveredSpike& b) {
                if (a.source_neuron != b.source_neuron)
                  return a.source_neuron < b.source_neuron;
                if (a.dest_tile != b.dest_tile)
                  return a.dest_tile < b.dest_tile;
                return a.sequence < b.sequence;
              });
  }
  util::Accumulator isi;
  double max_distortion = 0.0;
  for (std::size_t k = 1; k < delivered.size(); ++k) {
    const DeliveredSpike& prev = delivered[k - 1];
    const DeliveredSpike& cur = delivered[k];
    if (prev.source_neuron != cur.source_neuron ||
        prev.dest_tile != cur.dest_tile) {
      continue;
    }
    const double sent_isi = static_cast<double>(cur.emit_cycle) -
                            static_cast<double>(prev.emit_cycle);
    const double recv_isi = static_cast<double>(cur.recv_cycle) -
                            static_cast<double>(prev.recv_cycle);
    const double distortion = std::abs(recv_isi - sent_isi);
    isi.add(distortion);
    max_distortion = std::max(max_distortion, distortion);
  }
  m.isi_pairs = isi.count();
  m.isi_distortion_avg_cycles = isi.mean();
  m.isi_distortion_max_cycles = max_distortion;
  return m;
}

}  // namespace snnmap::noc
