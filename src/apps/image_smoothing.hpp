// "image smoothing" (IS) — Table I: feedforward (1024, 1024).
// A 32x32 synthetic image is rate-coded by 1024 Poisson pixels and smoothed
// through a 2-D Gaussian kernel into 1024 LIF neurons, CARLsim's classic
// convolution demo.  The output spike rates approximate the blurred image
// (checked in tests).
#pragma once

#include <cstdint>
#include <vector>

#include "snn/graph.hpp"
#include "snn/network.hpp"
#include "snn/simulator.hpp"

namespace snnmap::apps {

struct ImageSmoothingConfig {
  std::uint64_t seed = 1;
  double duration_ms = 400.0;
  std::uint32_t width = 32;
  std::uint32_t height = 32;
  int kernel_radius = 2;
  double kernel_sigma = 1.0;
  double max_rate_hz = 80.0;  ///< rate of a full-intensity pixel
};

/// Procedural test image in [0,1]: smooth gradient + bright blob + noise.
std::vector<double> make_test_image(std::uint32_t width, std::uint32_t height,
                                    std::uint64_t seed);

snn::SnnGraph build_image_smoothing(const ImageSmoothingConfig& config = {});

/// The network the graph builder simulates (closed-loop co-simulation
/// entry point) and the simulation config that extraction uses.
snn::Network build_image_smoothing_network(
    const ImageSmoothingConfig& config = {});
snn::SimulationConfig image_smoothing_sim_config(
    const ImageSmoothingConfig& config = {});

}  // namespace snnmap::apps
