// Shared mapping helper for the co-simulation golden-scenario tests:
// partitions a network into ~4 crossbars while keeping plastically-connected
// neurons co-resident (cut synapses must not be plastic while STDP is
// live), so every SNN golden scenario can be pushed through the closed loop
// with real AER traffic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/partition.hpp"
#include "snn/network.hpp"

namespace snnmap::cosim::test {

/// Partitions `net` into blocks of ~neuron_count/4 while keeping neurons
/// joined by plastic synapses on one crossbar (union-find over plastic
/// edges, components packed first-fit in ascending-root order).
inline core::Partition plastic_safe_partition(const snn::Network& net) {
  const std::uint32_t n = net.neuron_count();
  std::vector<std::uint32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const snn::Synapse& s : net.synapses()) {
    if (!s.plastic) continue;
    parent[find(s.pre)] = find(s.post);
  }

  // Component sizes, then first-fit into bins of capacity ~n/4 (a
  // component larger than the capacity still gets one bin to itself).
  const std::uint32_t capacity = std::max<std::uint32_t>(1, (n + 3) / 4);
  std::vector<std::uint32_t> component_bin(n, core::kUnassigned);
  std::vector<std::uint32_t> bin_load;
  std::vector<std::uint32_t> component_size(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) ++component_size[find(i)];
  std::vector<core::CrossbarId> assignment(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t root = find(i);
    if (component_bin[root] == core::kUnassigned) {
      std::uint32_t bin = 0;
      for (; bin < bin_load.size(); ++bin) {
        if (bin_load[bin] + component_size[root] <= capacity) break;
      }
      if (bin == bin_load.size()) bin_load.push_back(0);
      bin_load[bin] += component_size[root];
      component_bin[root] = bin;
    }
    assignment[i] = component_bin[root];
  }
  // A fully plastically-connected network legitimately collapses to one
  // bin (any multi-crossbar split would cut a plastic synapse); keep a
  // second, empty crossbar so the co-sim path still runs a real topology.
  const auto bins = std::max<std::uint32_t>(
      2, static_cast<std::uint32_t>(bin_load.size()));
  core::Partition result(n, bins);
  for (std::uint32_t i = 0; i < n; ++i) result.assign(i, assignment[i]);
  return result;
}

}  // namespace snnmap::cosim::test
