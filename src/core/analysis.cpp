#include "core/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace snnmap::core {

MappingAnalysis analyze_mapping(const snn::SnnGraph& graph,
                                const Partition& partition,
                                std::size_t top_pairs) {
  if (!partition.is_complete()) {
    throw std::invalid_argument("analyze_mapping: incomplete partition");
  }
  const std::uint32_t c = partition.crossbar_count();
  MappingAnalysis analysis;
  analysis.loads.resize(c);
  for (CrossbarId k = 0; k < c; ++k) analysis.loads[k].crossbar = k;

  const auto occupancy = partition.occupancy();
  for (CrossbarId k = 0; k < c; ++k) {
    analysis.loads[k].neurons = occupancy[k];
  }

  const CostModel cost(graph);
  // Local events per crossbar + packet traffic per crossbar pair.
  const auto& part = partition.assignment();
  const auto& offsets = graph.fanout_offsets();
  const auto& targets = graph.fanout_targets();
  std::vector<std::uint64_t> pair_spikes(static_cast<std::size_t>(c) * c, 0);
  // snnmap-lint: allow(unordered-iteration) -- iterated below for integer
  // accumulation only; addition over uint64 counters is order-insensitive.
  std::unordered_set<CrossbarId> remote;
  for (std::uint32_t i = 0; i < graph.neuron_count(); ++i) {
    const std::uint64_t spikes = graph.spike_count(i);
    if (spikes == 0) continue;
    const CrossbarId own = part[i];
    remote.clear();
    for (std::uint32_t k = offsets[i]; k < offsets[i + 1]; ++k) {
      const CrossbarId dest = part[targets[k]];
      if (dest == own) continue;
      remote.insert(dest);
    }
    // snnmap-lint: allow(unordered-iteration) -- all sinks are uint64 +=.
    for (const CrossbarId dest : remote) {
      pair_spikes[static_cast<std::size_t>(own) * c + dest] += spikes;
      analysis.loads[own].spikes_out += spikes;
      analysis.loads[dest].spikes_in += spikes;
      analysis.total_aer_packets += spikes;
    }
  }
  // Local events: charge the pre neuron's crossbar.
  for (const auto& e : graph.edges()) {
    if (part[e.pre] == part[e.post]) {
      const std::uint64_t spikes = graph.spike_count(e.pre);
      analysis.loads[part[e.pre]].local_events += spikes;
      analysis.total_local_events += spikes;
    }
  }

  // Heaviest pairs.
  for (CrossbarId a = 0; a < c; ++a) {
    for (CrossbarId b = 0; b < c; ++b) {
      const std::uint64_t spikes =
          pair_spikes[static_cast<std::size_t>(a) * c + b];
      if (spikes > 0) analysis.heaviest_pairs.push_back({a, b, spikes});
    }
  }
  std::sort(analysis.heaviest_pairs.begin(), analysis.heaviest_pairs.end(),
            [](const TrafficPair& x, const TrafficPair& y) {
              if (x.spikes != y.spikes) return x.spikes > y.spikes;
              if (x.from != y.from) return x.from < y.from;
              return x.to < y.to;
            });
  if (analysis.heaviest_pairs.size() > top_pairs) {
    analysis.heaviest_pairs.resize(top_pairs);
  }

  // Locality fraction over all synaptic events.
  const std::uint64_t global_events = cost.global_spike_count(partition);
  const std::uint64_t total_events = cost.total_event_count();
  analysis.locality_fraction =
      total_events == 0
          ? 1.0
          : 1.0 - static_cast<double>(global_events) /
                      static_cast<double>(total_events);

  // Source imbalance: max outgoing packets / mean outgoing packets.
  if (analysis.total_aer_packets > 0) {
    std::uint64_t max_out = 0;
    for (const auto& load : analysis.loads) {
      max_out = std::max(max_out, load.spikes_out);
    }
    const double mean_out = static_cast<double>(analysis.total_aer_packets) /
                            static_cast<double>(c);
    analysis.source_imbalance =
        mean_out > 0.0 ? static_cast<double>(max_out) / mean_out : 0.0;
  }

  // Gini over occupancy (mean absolute difference / (2 * mean)).
  double mean_occ = 0.0;
  for (const auto occ : occupancy) mean_occ += occ;
  mean_occ /= static_cast<double>(c);
  if (mean_occ > 0.0) {
    double mad = 0.0;
    for (const auto a : occupancy) {
      for (const auto b : occupancy) {
        mad += std::abs(static_cast<double>(a) - static_cast<double>(b));
      }
    }
    mad /= static_cast<double>(c) * static_cast<double>(c);
    analysis.occupancy_gini = mad / (2.0 * mean_occ);
  }
  return analysis;
}

std::string MappingAnalysis::render(std::size_t max_pairs) const {
  std::ostringstream out;
  out << "mapping analysis\n";
  out << "  locality: " << locality_fraction * 100.0
      << "% of synaptic events served inside crossbars\n";
  out << "  AER packets on interconnect: " << total_aer_packets << "\n";
  out << "  source imbalance (max/mean outgoing): " << source_imbalance
      << "\n";
  out << "  occupancy gini: " << occupancy_gini << "\n";
  out << "  per-crossbar [neurons | local events | out | in]:\n";
  for (const auto& load : loads) {
    out << "    xb" << load.crossbar << ": " << load.neurons << " | "
        << load.local_events << " | " << load.spikes_out << " | "
        << load.spikes_in << "\n";
  }
  if (!heaviest_pairs.empty()) {
    out << "  heaviest crossbar pairs (spikes):\n";
    for (std::size_t i = 0; i < heaviest_pairs.size() && i < max_pairs; ++i) {
      out << "    xb" << heaviest_pairs[i].from << " -> xb"
          << heaviest_pairs[i].to << ": " << heaviest_pairs[i].spikes << "\n";
    }
  }
  return out.str();
}

}  // namespace snnmap::core
