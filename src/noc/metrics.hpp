// Interconnect metrics, including the two SNN-specific metrics the paper
// introduces (Sec. II):
//
//  * Spike disorder count — fraction of delivered spikes that arrive at a
//    destination after a spike that was emitted later ("crossbar with B is
//    arbitrated to occupy the interconnect prior to crossbar with A").
//  * Inter-spike-interval (ISI) distortion — per (source neuron, destination)
//    stream, the difference between consecutive emission intervals and the
//    corresponding arrival intervals, caused by congestion delaying some
//    packets more than others.  Table II reports the average; Sec. III also
//    defines the maximum — both are computed.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "hw/energy_model.hpp"
#include "noc/topology.hpp"
#include "util/stats.hpp"

namespace snnmap::noc {

/// One delivered spike copy, as observed by the destination decoder.
struct DeliveredSpike {
  std::uint32_t source_neuron = 0;
  TileId source_tile = 0;
  TileId dest_tile = 0;
  std::uint64_t emit_cycle = 0;  ///< cycle the encoder transmitted the packet
  /// SNN timestep (ms index) of the spike.  Disorder is judged on this, not
  /// on emit_cycle: spikes of the same 1 ms step have no defined order (the
  /// encoder serializes them arbitrarily), so only cross-step overtaking is
  /// information loss.
  std::uint64_t emit_step = 0;
  std::uint64_t recv_cycle = 0;  ///< cycle the decoder received it
  std::uint32_t sequence = 0;    ///< per-source-neuron emission counter

  std::uint64_t latency() const noexcept { return recv_cycle - emit_cycle; }
};

/// Fault-injection accounting of one run/session (all zero — and the fault
/// branches never taken — when no FaultConfig is set; see noc/faults.hpp).
struct FaultStats {
  std::uint64_t link_faults = 0;       ///< bidirectional link-down transitions
  std::uint64_t router_faults = 0;     ///< router-down transitions
  std::uint64_t tile_faults = 0;       ///< direct tile-down transitions
  std::uint64_t links_restored = 0;    ///< transient link recoveries
  /// Flits forwarded through a non-primary port because the primary
  /// candidate was fault-masked (the fault-aware reroute counter).
  std::uint64_t reroutes = 0;
  std::uint64_t flits_dropped = 0;   ///< flit copies lost on a lossy wire
  std::uint64_t copies_dropped = 0;  ///< destination copies those flits held
  /// Destination copies purged from a dying router's buffers.
  std::uint64_t copies_killed = 0;
  /// Destination copies abandoned because no live route exists (pruned at
  /// injection, at a fault transition, or when a flit reaches a router
  /// with every candidate port dead).
  std::uint64_t copies_unroutable = 0;
  /// Destination copies of packets whose *source* tile/router was dead at
  /// injection time (the spike never entered the fabric).
  std::uint64_t copies_blocked_at_source = 0;
  /// Packet events that contributed no flit at all (dead source, or every
  /// destination unroutable).
  std::uint64_t packets_blocked = 0;
  /// Destination copies a max_cycles halt left undelivered: still buffered
  /// in the fabric, or held by queued events that were never injected
  /// (traffic due at or beyond max_cycles is not injected — see
  /// NocConfig::max_cycles).  Zero on drained runs.  Not a fault mechanism
  /// (any() ignores it; fault-free halts strand copies too), but part of
  /// copies_lost() so the conservation identity
  ///   copies_delivered + copies_lost() == copies offered
  /// holds for halted sessions exactly as for drained ones.
  std::uint64_t copies_stranded = 0;

  /// Destination copies that did not (and will never) reach a decoder, by
  /// every mechanism — fault losses plus halt stranding.
  std::uint64_t copies_lost() const noexcept {
    return copies_dropped + copies_killed + copies_unroutable +
           copies_blocked_at_source + copies_stranded;
  }
  bool any() const noexcept {
    return link_faults != 0 || router_faults != 0 || tile_faults != 0 ||
           reroutes != 0 || flits_dropped != 0 || copies_dropped != 0 ||
           copies_killed != 0 || copies_unroutable != 0 ||
           copies_blocked_at_source != 0;
  }
};

/// Conventional interconnect statistics (latency/energy/throughput, Sec. II).
struct NocStats {
  std::uint64_t packets_injected = 0;   ///< traffic events offered
  std::uint64_t flits_injected = 0;     ///< flit copies entering the NoC
  std::uint64_t copies_delivered = 0;   ///< flit copies reaching a decoder
  std::uint64_t link_hops = 0;          ///< flit-link traversals (on + off chip)
  /// Subset of link_hops crossing a chip boundary (0 on single-chip
  /// fabrics); priced at EnergyModel::offchip_link_hop_pj.
  std::uint64_t offchip_link_hops = 0;
  std::uint64_t router_traversals = 0;  ///< flit-router traversals
  double global_energy_pj = 0.0;        ///< interconnect (global synapse) energy
  util::Accumulator latency_cycles;     ///< per delivered copy
  std::uint64_t max_latency_cycles = 0;
  std::uint64_t duration_cycles = 0;    ///< cycles until the NoC drained
  bool drained = true;                  ///< false if max_cycles was hit
  /// Flit traversals per directed link, keyed (from_router << 32) | to.
  /// Exposes hotspots; summarized by link_utilization_*() below.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> link_flits;
  /// Fault-injection accounting (all zero on fault-free runs).
  FaultStats fault;

  /// AER packets per millisecond observed at decoders.
  double throughput_aer_per_ms(std::uint32_t cycles_per_ms) const noexcept;

  /// Max and mean flits over links that carried traffic (0 when none).
  std::uint64_t max_link_flits() const noexcept;
  double mean_link_flits() const noexcept;
  /// Hotspot factor: max/mean over used links (1.0 = perfectly even).
  double link_hotspot_factor() const noexcept;
};

/// Activity observed by one accounting window of a NocSimulator session
/// ([start_cycle, end_cycle) of virtual time).  All counts are exact
/// integers — deltas of the simulator's flat counters at the window
/// boundary — so summing windows reproduces the one-shot aggregates with
/// no floating-point drift.
struct WindowEnergySample {
  std::uint64_t index = 0;        ///< position in the session's window list
  std::uint64_t start_cycle = 0;
  std::uint64_t end_cycle = 0;
  /// Cycles the fabric actually arbitrated inside the window (idle spans
  /// are fast-forwarded and cost no energy or activity).
  std::uint64_t busy_cycles = 0;
  std::uint64_t flits_injected = 0;    ///< AER encodes (one per flit copy)
  std::uint64_t copies_delivered = 0;  ///< AER decodes (one per delivery)
  std::uint64_t link_hops = 0;         ///< flit-link traversals (on + off chip)
  std::uint64_t offchip_link_hops = 0; ///< subset crossing a chip boundary
  std::uint64_t router_traversals = 0; ///< flit-router (switch) traversals
  /// Largest per-directed-link flit count within the window (hotspot peak).
  std::uint64_t peak_link_flits = 0;
  /// Window activity priced at the nominal EnergyModel constants, in pJ
  /// (DVFS scaling is applied by the consumer, e.g. cosim::CoSimulator).
  double energy_pj = 0.0;

  std::uint64_t codec_events() const noexcept {
    return flits_injected + copies_delivered;
  }
  /// Busy fraction of the window's virtual-time span (0 for empty spans).
  double utilization() const noexcept {
    return end_cycle > start_cycle
               ? static_cast<double>(busy_cycles) /
                     static_cast<double>(end_cycle - start_cycle)
               : 0.0;
  }
};

/// Per-window energy accounting of one NocSimulator session.  The integer
/// totals are exact sums of the samples' deltas, so `total_energy_pj` is
/// bit-identical to the NocStats::global_energy_pj the same session reports
/// — windowing loses nothing relative to one-shot accounting.
struct WindowEnergyReport {
  std::vector<WindowEnergySample> windows;
  std::uint64_t busy_cycles = 0;
  std::uint64_t codec_events = 0;
  std::uint64_t link_hops = 0;          ///< on + off chip
  std::uint64_t offchip_link_hops = 0;
  std::uint64_t router_traversals = 0;
  /// Summed integer activity priced through
  /// hw::EnergyModel::activity_energy_pj at nominal constants.
  double total_energy_pj = 0.0;
};

/// The paper's SNN performance metrics.
struct SnnMetrics {
  double isi_distortion_avg_cycles = 0.0;
  double isi_distortion_max_cycles = 0.0;
  double disorder_fraction = 0.0;  ///< disordered spikes / delivered spikes
  std::uint64_t disordered_spikes = 0;
  std::uint64_t delivered_spikes = 0;
  std::uint64_t isi_pairs = 0;  ///< number of (stream, consecutive-pair) samples

  double disorder_percent() const noexcept { return disorder_fraction * 100.0; }
};

/// Computes disorder + ISI distortion from the delivery log.
/// Disorder: per destination tile, scan deliveries in arrival order and count
/// spikes overtaken by a later-emitted spike.
/// ISI distortion: per (source neuron, destination tile) stream in emission
/// order, |(recv_i - recv_{i-1}) - (emit_i - emit_{i-1})|.
SnnMetrics compute_snn_metrics(std::vector<DeliveredSpike> delivered);

}  // namespace snnmap::noc
