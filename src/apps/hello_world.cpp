#include "apps/hello_world.hpp"

#include "snn/network.hpp"
#include "snn/simulator.hpp"

namespace snnmap::apps {

snn::Network build_hello_world_network(const HelloWorldConfig& config) {
  util::Rng rng(config.seed);
  snn::Network net;

  const auto input = net.add_poisson_group("input", 117, 20.0);
  // Spread rates over 10..50 Hz by grid position (rate coding).
  net.set_rate_function(input, [](std::uint32_t local, double) {
    return 10.0 + 40.0 * static_cast<double>(local) / 116.0;
  });

  const auto grid = net.add_izhikevich_group(
      "grid", 117, snn::IzhikevichParams::regular_spiking());
  const auto out = net.add_izhikevich_group(
      "out", 9, snn::IzhikevichParams::regular_spiking());

  // One-to-one drive strong enough that a single input spike fires the
  // grid neuron (the Izhikevich quadratic needs ~30 units in one step to
  // escape rest), so the grid mirrors the input rates; convergent weights
  // into the 9 detectors sized for sustained multi-unit drive.
  net.connect_one_to_one(input, grid, snn::WeightSpec::uniform(28.0, 34.0),
                         rng);
  net.connect_full(grid, out, snn::WeightSpec::uniform(1.5, 2.5), rng);
  return net;
}

snn::SimulationConfig hello_world_sim_config(const HelloWorldConfig& config) {
  snn::SimulationConfig sim_config;
  sim_config.seed = config.seed;
  sim_config.duration_ms = config.duration_ms;
  return sim_config;
}

snn::SnnGraph build_hello_world(const HelloWorldConfig& config) {
  snn::Network net = build_hello_world_network(config);
  snn::Simulator sim(net, hello_world_sim_config(config));
  return snn::SnnGraph::from_simulation(net, sim.run());
}

}  // namespace snnmap::apps
