// Ablation: interconnect families.  Noxim++ "adds different interconnect
// models for representative neuromorphic hardware" (Sec. IV) — NoC-tree
// (CxQuad), NoC-mesh (TrueNorth, HiCANN) — plus a ring as a low-cost
// straw man.  Same workload, same PSO partition budget, identical crossbar
// resources; only the global-synapse network changes.
#include <iostream>

#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace snnmap;
  const bool quick = bench::quick_mode();

  std::vector<std::string> workloads = {"HW", "2x200", "HD"};
  if (quick) workloads = {"HW"};

  util::Table table({"workload", "interconnect", "global E (uJ)",
                     "avg latency (cycles)", "max latency",
                     "disorder (%)", "avg ISI distortion (cycles)"});

  for (const auto& name : workloads) {
    const snn::SnnGraph graph = apps::build_app(name, /*seed=*/42);
    const std::uint32_t crossbar =
        bench::crossbar_size_for(graph.neuron_count(), 8);
    for (const auto kind :
         {hw::InterconnectKind::kTree, hw::InterconnectKind::kMesh,
          hw::InterconnectKind::kRing}) {
      core::MappingFlowConfig flow;
      flow.arch =
          hw::Architecture::sized_for(graph.neuron_count(), crossbar, kind);
      flow.arch.tree_arity = 4;
      flow.partitioner = core::PartitionerKind::kPso;
      flow.pso = bench::default_pso();
      const auto report = core::run_mapping_flow(graph, flow);
      table.begin_row();
      table.cell(name);
      table.cell(std::string(hw::to_string(kind)));
      table.cell(report.global_energy_pj * 1e-6, 3);
      table.cell(report.noc_stats.latency_cycles.mean(), 1);
      table.cell(
          static_cast<std::size_t>(report.noc_stats.max_latency_cycles));
      table.cell(report.snn_metrics.disorder_percent(), 3);
      table.cell(report.snn_metrics.isi_distortion_avg_cycles, 2);
    }
  }

  std::cout << "=== Ablation: interconnect families at equal crossbar "
               "resources ===\n"
            << table.to_ascii() << '\n';
  std::cout << "Reading: at light load the ring's short average paths can "
               "win on energy, but its max latency degrades first as load "
               "grows; the tree keeps ISI distortion lowest (every pair "
               "equidistant), matching CxQuad's design point; the mesh sits "
               "between and scales best with crossbar count.\n";
  return 0;
}
