// Ablation: router-level multicast vs source-replicated unicast.  Multicast
// is one of the three Noxim++ extensions the paper lists (Sec. IV: "spike
// packets can be communicated to a selected subset of crossbars"); this
// harness quantifies what it buys — shared trunk links reduce flit-hops,
// energy, and the congestion that drives disorder/ISI distortion.
#include <iostream>

#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace snnmap;
  const bool quick = bench::quick_mode();

  std::vector<std::string> workloads = {"1x200", "3x200", "HD"};
  if (quick) workloads = {"1x200"};

  util::Table table({"workload", "mode", "flits injected", "link hops",
                     "global E (uJ)", "max latency (cycles)",
                     "disorder (%)"});

  for (const auto& name : workloads) {
    const snn::SnnGraph graph = apps::build_app(name, /*seed=*/42);
    for (const bool multicast : {true, false}) {
      core::MappingFlowConfig flow;
      flow.arch = bench::scaled_cxquad(graph, /*min_crossbars=*/8);
      flow.partitioner = core::PartitionerKind::kPso;
      flow.pso = bench::default_pso();
      flow.noc.multicast = multicast;
      const auto report = core::run_mapping_flow(graph, flow);
      table.begin_row();
      table.cell(name);
      table.cell(std::string(multicast ? "multicast" : "unicast"));
      table.cell(static_cast<std::size_t>(report.noc_stats.flits_injected));
      table.cell(static_cast<std::size_t>(report.noc_stats.link_hops));
      table.cell(report.global_energy_pj * 1e-6, 3);
      table.cell(
          static_cast<std::size_t>(report.noc_stats.max_latency_cycles));
      table.cell(report.snn_metrics.disorder_percent(), 3);
    }
  }

  std::cout << "=== Ablation: multicast vs source-replicated unicast ===\n"
            << table.to_ascii() << '\n';
  std::cout << "Expected: multicast injects fewer flits and traverses fewer "
               "links for the same delivered spikes, lowering energy and "
               "congestion-driven metrics.\n";
  return 0;
}
