// Golden determinism tests: the simulator must reproduce, bit for bit, the
// delivered-spike streams and statistics captured from the pre-refactor
// (PR 1 seed) simulator across topologies, routing algorithms, selection
// strategies, multicast modes, buffer depths, and the non-drained path.
// Fixtures are regenerated with the snnmap_noc_golden_capture tool.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "golden_scenarios.hpp"

namespace snnmap::noc {
namespace {

struct GoldenFixture {
  const char* name;
  std::uint64_t delivered_hash;
  std::uint64_t stats_hash;
  std::uint64_t snn_hash;
  std::uint64_t copies_delivered;
  std::uint64_t duration_cycles;
  std::uint64_t link_hops;
};

constexpr GoldenFixture kGolden[] = {
#include "golden_fixtures.inc"
};

const GoldenFixture* find_fixture(const std::string& name) {
  for (const GoldenFixture& f : kGolden) {
    if (name == f.name) return &f;
  }
  return nullptr;
}

TEST(NocGolden, EveryScenarioHasAFixture) {
  const auto scenarios = golden::scenarios();
  EXPECT_EQ(scenarios.size(), std::size(kGolden));
  for (const auto& s : scenarios) {
    EXPECT_NE(find_fixture(s.name), nullptr) << s.name;
  }
}

TEST(NocGolden, BitIdenticalToSeedSimulator) {
  for (auto& scenario : golden::scenarios()) {
    SCOPED_TRACE(scenario.name);
    const GoldenFixture* fixture = find_fixture(scenario.name);
    ASSERT_NE(fixture, nullptr);
    NocSimulator sim(std::move(scenario.topology), scenario.config);
    const golden::Digest d = golden::digest_of(sim.run(scenario.traffic));
    // Scalars first: a drift here localizes the failure far better than a
    // hash mismatch.
    EXPECT_EQ(d.copies_delivered, fixture->copies_delivered);
    EXPECT_EQ(d.duration_cycles, fixture->duration_cycles);
    EXPECT_EQ(d.link_hops, fixture->link_hops);
    EXPECT_EQ(d.delivered_hash, fixture->delivered_hash);
    EXPECT_EQ(d.stats_hash, fixture->stats_hash);
    EXPECT_EQ(d.snn_hash, fixture->snn_hash);
  }
}

TEST(NocGolden, NotDrainedScenarioReportsNotDrained) {
  for (auto& scenario : golden::scenarios()) {
    if (scenario.name != "mesh4x4_xy_not_drained") continue;
    NocSimulator sim(std::move(scenario.topology), scenario.config);
    const auto result = sim.run(scenario.traffic);
    EXPECT_FALSE(result.stats.drained);
    // A truncated run still reports internally consistent partial stats.
    EXPECT_EQ(result.stats.duration_cycles, scenario.config.max_cycles);
    EXPECT_EQ(result.delivered.size(), result.stats.copies_delivered);
    EXPECT_LT(result.stats.copies_delivered, result.stats.flits_injected);
    return;
  }
  FAIL() << "non-drained scenario missing";
}

}  // namespace
}  // namespace snnmap::noc
