// Run-time SNN remapping — the paper's stated future work (Sec. VI: "Run-
// time SNN mapping will be addressed in future").
//
// Setting: a deployed SNN's topology is fixed but its traffic shifts between
// workload phases (sensor regime changes, attention, diurnal input shifts).
// A partition tuned offline for one phase degrades in the next.  Migrating a
// neuron at run time is possible but expensive on memristive hardware (its
// synaptic rows must be rewritten on the target crossbar), so the remapper
// works under a *migration budget*: per observed phase it applies at most
// `max_migrations_per_epoch` neuron moves/swaps, chosen greedily by their
// AER-packet improvement on the newly observed traffic, and only while each
// step's relative improvement exceeds `min_relative_gain`.
#pragma once

#include <cstdint>
#include <vector>

#include "core/incremental.hpp"
#include "core/partition.hpp"
#include "hw/architecture.hpp"
#include "snn/graph.hpp"

namespace snnmap::core {

struct RemapConfig {
  /// Hard cap on neuron migrations per observed phase (a swap costs two).
  std::uint32_t max_migrations_per_epoch = 16;
  /// Stop early once the best available step improves the current cost by
  /// less than this fraction (avoids paying migration cost for noise).
  double min_relative_gain = 0.005;
  /// Random swap candidates examined per migration step.
  std::uint32_t swap_candidates = 256;
  std::uint64_t seed = 42;
};

struct RemapEpochReport {
  std::uint64_t cost_before = 0;   ///< AER packets under the new phase, old map
  std::uint64_t cost_after = 0;    ///< after this epoch's migrations
  std::uint32_t migrations = 0;    ///< neurons moved (swap = 2)
  bool budget_exhausted = false;

  double improvement_fraction() const noexcept {
    return cost_before == 0
               ? 0.0
               : 1.0 - static_cast<double>(cost_after) /
                           static_cast<double>(cost_before);
  }
};

/// Result of evacuating the neurons of failed crossbars (fault path).
struct EvacuationReport {
  std::uint32_t evacuated = 0;  ///< neurons migrated off dead crossbars
  std::uint32_t stranded = 0;   ///< neurons with no live crossbar capacity
  std::uint64_t cost_before = 0;  ///< AER packets before evacuation
  std::uint64_t cost_after = 0;   ///< after (includes knock-on traffic shift)

  bool complete() const noexcept { return stranded == 0; }
};

/// Stateful remapper: owns the current partition across phases.
class RuntimeRemapper {
 public:
  /// Starts from an offline partition (validated against `arch`).
  RuntimeRemapper(hw::Architecture arch, Partition initial,
                  RemapConfig config);

  /// Observes the traffic of a new phase (same neuron count/topology family;
  /// only spike annotations matter) and migrates within budget.  Crossbars
  /// previously declared dead via evacuate() are never chosen as targets.
  RemapEpochReport observe_phase(const snn::SnnGraph& phase_graph);

  /// Declares `dead` crossbars permanently failed and migrates every neuron
  /// currently mapped onto one of them to the live crossbar (with spare
  /// capacity) that minimizes the AER-packet cost of `traffic_graph`.
  /// Evacuation is *forced*: unlike observe_phase it ignores the migration
  /// budget and min_relative_gain (a neuron on a dead crossbar is silent
  /// hardware; any live home beats none).  Neurons that fit nowhere are
  /// reported stranded and keep their (dead) assignment so the partition
  /// stays structurally valid; callers account their spikes as lost.
  /// Dead crossbars accumulate across calls.
  EvacuationReport evacuate(const std::vector<CrossbarId>& dead,
                            const snn::SnnGraph& traffic_graph);

  const Partition& partition() const noexcept { return partition_; }
  std::uint64_t total_migrations() const noexcept { return total_migrations_; }
  std::uint32_t epochs_observed() const noexcept { return epochs_; }
  /// True iff crossbar `k` has been declared dead by a prior evacuate().
  bool crossbar_dead(CrossbarId k) const noexcept {
    return k < dead_.size() && dead_[k] != 0;
  }

 private:
  hw::Architecture arch_;
  Partition partition_;
  RemapConfig config_;
  util::Rng rng_;
  std::uint64_t total_migrations_ = 0;
  std::uint32_t epochs_ = 0;
  std::vector<char> dead_;  ///< per-crossbar dead flag (empty = none dead)
};

}  // namespace snnmap::core
