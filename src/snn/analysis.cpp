#include "snn/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace snnmap::snn {
namespace {

std::vector<double> binned_counts(const SpikeTrain& train, TimeMs duration_ms,
                                  double bin_ms) {
  if (bin_ms <= 0.0 || duration_ms <= 0.0) {
    throw std::invalid_argument("analysis: bins and duration must be > 0");
  }
  const auto bins = static_cast<std::size_t>(duration_ms / bin_ms);
  std::vector<double> counts(std::max<std::size_t>(bins, 1), 0.0);
  for (const double t : train) {
    const auto idx = static_cast<std::size_t>(t / bin_ms);
    if (idx < counts.size()) counts[idx] += 1.0;
  }
  return counts;
}

}  // namespace

std::vector<std::uint64_t> psth(const std::vector<SpikeTrain>& trains,
                                TimeMs duration_ms, double bin_ms) {
  if (bin_ms <= 0.0 || duration_ms <= 0.0) {
    throw std::invalid_argument("psth: bins and duration must be > 0");
  }
  const auto bins = static_cast<std::size_t>(duration_ms / bin_ms);
  std::vector<std::uint64_t> hist(std::max<std::size_t>(bins, 1), 0);
  for (const auto& train : trains) {
    for (const double t : train) {
      const auto idx = static_cast<std::size_t>(t / bin_ms);
      if (idx < hist.size()) ++hist[idx];
    }
  }
  return hist;
}

double fano_factor(const SpikeTrain& train, TimeMs duration_ms,
                   double window_ms) {
  const auto counts = binned_counts(train, duration_ms, window_ms);
  if (counts.size() < 2) return 0.0;
  util::Accumulator acc;
  for (const double c : counts) acc.add(c);
  if (acc.mean() <= 0.0) return 0.0;
  return acc.variance() / acc.mean();
}

double spike_count_correlation(const SpikeTrain& a, const SpikeTrain& b,
                               TimeMs duration_ms, double bin_ms) {
  const auto ca = binned_counts(a, duration_ms, bin_ms);
  const auto cb = binned_counts(b, duration_ms, bin_ms);
  const std::size_t n = std::min(ca.size(), cb.size());
  if (n < 2) return 0.0;
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_a += ca[i];
    mean_b += cb[i];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = ca[i] - mean_a;
    const double db = cb[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

double synchrony_index(const std::vector<SpikeTrain>& trains,
                       TimeMs duration_ms, double bin_ms) {
  if (trains.empty()) return 0.0;
  std::vector<std::vector<double>> all;
  all.reserve(trains.size());
  for (const auto& t : trains) {
    all.push_back(binned_counts(t, duration_ms, bin_ms));
  }
  const std::size_t bins = all.front().size();
  if (bins < 2) return 0.0;
  // Population rate variance vs sum of individual variances.
  std::vector<double> population(bins, 0.0);
  double sum_individual_var = 0.0;
  for (const auto& counts : all) {
    util::Accumulator acc;
    for (std::size_t i = 0; i < bins; ++i) {
      acc.add(counts[i]);
      population[i] += counts[i];
    }
    sum_individual_var += acc.variance();
  }
  util::Accumulator pop;
  for (const double p : population) pop.add(p);
  if (sum_individual_var <= 0.0) return 0.0;
  // Normalized so independent trains give ~1/N... rescale by N for [0,1].
  const double chi2 = pop.variance() /
                      (sum_individual_var * static_cast<double>(all.size()));
  return std::min(1.0, chi2);
}

}  // namespace snnmap::snn
