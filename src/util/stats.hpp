// Lightweight descriptive statistics used by the metric collectors and the
// benchmark harnesses (means, percentiles, histograms, online accumulators).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace snnmap::util {

/// Online accumulator for mean/variance/min/max (Welford's algorithm).
/// Safe to merge; numerically stable for long runs.
class Accumulator {
 public:
  /// Inline: called once per delivered packet copy in the NoC cycle loop.
  void add(double x) noexcept {
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = x < min_ ? x : min_;
    max_ = x > max_ ? x : max_;
  }
  void merge(const Accumulator& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  double sum() const noexcept { return sum_; }
  /// Mean of the observations; 0 when empty.
  double mean() const noexcept;
  /// Unbiased sample variance; 0 for fewer than two observations.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile with linear interpolation; `p` in [0, 100].
/// The input is copied and sorted; 0 is returned for empty input.
double percentile(std::vector<double> values, double p);

/// Arithmetic mean; 0 for empty input.
double mean_of(const std::vector<double>& values);

/// Sample standard deviation; 0 for fewer than two observations.
double stddev_of(const std::vector<double>& values);

/// Fixed-bin histogram over [lo, hi); values outside are clamped into the
/// first/last bin so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;

  /// Multi-line ASCII rendering for logs/reports.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace snnmap::util
