#include "snn/poisson.hpp"

namespace snnmap::snn {

SpikeTrain generate_poisson_train(double rate_hz, TimeMs duration_ms,
                                  util::Rng& rng) {
  SpikeTrain train;
  if (rate_hz <= 0.0 || duration_ms <= 0.0) return train;
  const double rate_per_ms = rate_hz / 1000.0;
  TimeMs t = rng.exponential(rate_per_ms);
  while (t < duration_ms) {
    train.push_back(t);
    t += rng.exponential(rate_per_ms);
  }
  return train;
}

bool poisson_step_spike(double rate_hz, double dt_ms, util::Rng& rng) {
  if (rate_hz <= 0.0) return false;
  return rng.chance(poisson_step_probability(rate_hz, dt_ms));
}

}  // namespace snnmap::snn
