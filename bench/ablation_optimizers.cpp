// Ablation: PSO vs simulated annealing vs genetic algorithm, and PSO with /
// without baseline seeding.  Sec. III motivates PSO as "computationally less
// expensive with faster convergence compared to ... GA or SA"; this harness
// backs the claim on our workloads: best cut found, wall time, and fitness
// evaluations for each optimizer.
#include <chrono>
#include <iostream>

#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "core/annealing.hpp"
#include "core/cost.hpp"
#include "core/genetic.hpp"
#include "core/pso.hpp"
#include "util/table.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  using namespace snnmap;
  const bool quick = bench::quick_mode();

  std::vector<std::string> workloads = {"2x200", "1x600", "HW"};
  if (quick) workloads = {"1x200"};

  util::Table table({"workload", "optimizer", "best cost (AER packets)",
                     "evaluations", "wall time (s)"});

  for (const auto& name : workloads) {
    const snn::SnnGraph graph = apps::build_app(name, /*seed=*/42);
    const hw::Architecture arch = bench::scaled_cxquad(graph);
    const core::CostModel cost(graph);

    // PSO (seeded, paper setup).
    {
      core::PsoConfig config = bench::default_pso();
      config.seed = 42;
      const auto start = std::chrono::steady_clock::now();
      const auto result =
          core::PsoPartitioner(graph, arch, config).optimize();
      table.begin_row();
      table.cell(name);
      table.cell(std::string("PSO (seeded)"));
      table.cell(static_cast<std::size_t>(result.best_cost));
      table.cell(static_cast<std::size_t>(result.fitness_evaluations));
      table.cell(seconds_since(start), 2);
    }
    // PSO without seeding (pure swarm).
    {
      core::PsoConfig config = bench::default_pso();
      config.seed = 42;
      config.seed_with_baselines = false;
      const auto start = std::chrono::steady_clock::now();
      const auto result =
          core::PsoPartitioner(graph, arch, config).optimize();
      table.begin_row();
      table.cell(name);
      table.cell(std::string("PSO (unseeded)"));
      table.cell(static_cast<std::size_t>(result.best_cost));
      table.cell(static_cast<std::size_t>(result.fitness_evaluations));
      table.cell(seconds_since(start), 2);
    }
    // Simulated annealing with a comparable move budget.
    {
      core::AnnealingConfig config;
      config.moves = quick ? 20000 : 300000;
      config.seed = 42;
      const auto start = std::chrono::steady_clock::now();
      const auto result = core::annealing_partition(graph, arch, config);
      table.begin_row();
      table.cell(name);
      table.cell(std::string("Simulated annealing"));
      table.cell(static_cast<std::size_t>(result.best_cost));
      table.cell(static_cast<std::size_t>(result.moves_proposed));
      table.cell(seconds_since(start), 2);
    }
    // Genetic algorithm with the same population x generation budget as PSO.
    {
      core::GeneticConfig config;
      config.population = bench::default_pso().swarm_size;
      config.generations = bench::default_pso().iterations;
      config.seed = 42;
      const auto start = std::chrono::steady_clock::now();
      const auto result = core::genetic_partition(graph, arch, config);
      table.begin_row();
      table.cell(name);
      table.cell(std::string("Genetic algorithm"));
      table.cell(static_cast<std::size_t>(result.best_cost));
      table.cell(static_cast<std::size_t>(result.fitness_evaluations));
      table.cell(seconds_since(start), 2);
    }
  }

  std::cout << "=== Ablation: optimizer comparison (objective: AER packets; "
               "lower is better) ===\n"
            << table.to_ascii() << '\n';
  std::cout << "Claim under test (Sec. III): PSO reaches costs comparable "
               "to SA/GA at similar budgets; seeding guarantees PSO is never "
               "worse than the baselines from iteration 0.\n";
  return 0;
}
