// Order-sensitive FNV-1a digest shared by the golden-fixture harnesses
// (tests/noc/golden_scenarios.hpp, tests/snn/golden_scenarios.hpp).  The
// fixtures committed in each suite's golden_fixtures.inc are hashes produced
// by this exact algorithm; changing it invalidates every captured fixture.
#pragma once

#include <cstdint>
#include <cstring>

namespace snnmap::test {

class Fnv1a {
 public:
  void mix(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xFF;
      h_ *= 0x100000001B3ULL;
    }
  }
  void mix(double v) noexcept {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  }
  void mix(float v) noexcept {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    mix(static_cast<std::uint64_t>(bits));
  }
  std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0xCBF29CE484222325ULL;
};

}  // namespace snnmap::test
