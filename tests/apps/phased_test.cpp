#include "apps/phased.hpp"

#include <gtest/gtest.h>

namespace snnmap::apps {
namespace {

TEST(PhasedClusters, TopologyIsPhaseInvariant) {
  PhasedConfig cfg;
  cfg.clusters = 4;
  cfg.cluster_size = 6;
  const auto a = build_phased_clusters(cfg, 0);
  const auto b = build_phased_clusters(cfg, 2);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (std::size_t i = 0; i < a.edge_count(); ++i) {
    EXPECT_EQ(a.edges()[i].pre, b.edges()[i].pre);
    EXPECT_EQ(a.edges()[i].post, b.edges()[i].post);
  }
  EXPECT_EQ(a.neuron_count(), 24u);
}

TEST(PhasedClusters, HotWindowRotatesWithPhase) {
  PhasedConfig cfg;
  cfg.clusters = 8;
  cfg.cluster_size = 4;
  cfg.hot_fraction = 0.25;  // 2 hot clusters
  cfg.duration_ms = 2000.0;
  const auto rate_of_cluster = [&](const snn::SnnGraph& g, std::uint32_t k) {
    std::uint64_t spikes = 0;
    for (std::uint32_t i = 0; i < cfg.cluster_size; ++i) {
      spikes += g.spike_count(k * cfg.cluster_size + i);
    }
    return static_cast<double>(spikes) / cfg.cluster_size /
           (cfg.duration_ms / 1000.0);
  };
  const auto g0 = build_phased_clusters(cfg, 0);
  const auto g3 = build_phased_clusters(cfg, 3);
  // Phase 0: cluster 0 hot, cluster 3 cold.  Phase 3: cluster 3 hot.
  EXPECT_GT(rate_of_cluster(g0, 0), 60.0);
  EXPECT_LT(rate_of_cluster(g0, 3), 20.0);
  EXPECT_GT(rate_of_cluster(g3, 3), 60.0);
  EXPECT_LT(rate_of_cluster(g3, 0), 20.0);
}

TEST(PhasedClusters, HotAndColdRatesMatchConfig) {
  PhasedConfig cfg;
  cfg.clusters = 4;
  cfg.cluster_size = 16;
  cfg.hot_rate_hz = 80.0;
  cfg.cold_rate_hz = 4.0;
  cfg.duration_ms = 5000.0;
  const auto g = build_phased_clusters(cfg, 0);
  double hot_rate = 0.0;
  double cold_rate = 0.0;
  for (std::uint32_t i = 0; i < cfg.cluster_size; ++i) {
    hot_rate += static_cast<double>(g.spike_count(i));
    cold_rate += static_cast<double>(
        g.spike_count(2 * cfg.cluster_size + i));
  }
  hot_rate /= cfg.cluster_size * 5.0;   // Hz
  cold_rate /= cfg.cluster_size * 5.0;
  EXPECT_NEAR(hot_rate, 80.0, 8.0);
  EXPECT_NEAR(cold_rate, 4.0, 2.0);
}

TEST(PhasedClusters, PhaseWrapsModuloClusters) {
  PhasedConfig cfg;
  cfg.clusters = 4;
  cfg.cluster_size = 4;
  cfg.duration_ms = 1000.0;
  const auto a = build_phased_clusters(cfg, 1);
  const auto b = build_phased_clusters(cfg, 5);  // 5 mod 4 == 1
  ASSERT_EQ(a.neuron_count(), b.neuron_count());
  for (std::uint32_t i = 0; i < a.neuron_count(); ++i) {
    EXPECT_EQ(a.spike_count(i), b.spike_count(i));
  }
}

TEST(PhasedClusters, RejectsDegenerateConfig) {
  PhasedConfig cfg;
  cfg.clusters = 1;
  EXPECT_THROW(build_phased_clusters(cfg, 0), std::invalid_argument);
  cfg.clusters = 4;
  cfg.cluster_size = 0;
  EXPECT_THROW(build_phased_clusters(cfg, 0), std::invalid_argument);
}

TEST(PhasedClusters, BridgesConnectAdjacentClusters) {
  PhasedConfig cfg;
  cfg.clusters = 4;
  cfg.cluster_size = 4;
  cfg.intra_probability = 0.0;  // only bridges remain
  cfg.bridges_per_pair = 3;
  const auto g = build_phased_clusters(cfg, 0);
  EXPECT_EQ(g.edge_count(), 4u * 3u);
  for (const auto& e : g.edges()) {
    const std::uint32_t pre_cluster = e.pre / cfg.cluster_size;
    const std::uint32_t post_cluster = e.post / cfg.cluster_size;
    EXPECT_EQ((pre_cluster + 1) % cfg.clusters, post_cluster);
  }
}

}  // namespace
}  // namespace snnmap::apps
