// Cycle-accurate simulator of the time-multiplexed global-synapse
// interconnect (the Noxim++ substitute).
//
// The simulator consumes a spike traffic trace (one SpikePacketEvent per
// source-neuron spike, with the set of destination crossbars computed by the
// mapping flow), runs the routers cycle by cycle with backpressure and
// round-robin arbitration, and produces the conventional metrics
// (latency / energy / throughput) plus the delivery log from which the
// SNN-specific metrics (disorder, ISI distortion) are computed.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/energy_model.hpp"
#include "noc/metrics.hpp"
#include "noc/router.hpp"
#include "noc/topology.hpp"

namespace snnmap::noc {

/// One spike offered to the interconnect.
struct SpikePacketEvent {
  std::uint64_t emit_cycle = 0;
  /// SNN timestep (ms index) of the spike; used for disorder accounting
  /// (see DeliveredSpike::emit_step).
  std::uint64_t emit_step = 0;
  std::uint32_t source_neuron = 0;
  TileId source_tile = 0;
  /// Remote crossbars holding at least one post-synaptic neuron.  Must not
  /// contain source_tile (local synapses never enter the NoC).
  std::vector<TileId> dest_tiles;
};

/// How a flit with several legal (adaptive) next hops picks one — Noxim's
/// "selection strategy".  Applies to single-destination flits under the
/// adaptive mesh routings; multi-destination (multicast) flits always take
/// each destination's first candidate.
enum class SelectionStrategy : std::uint8_t {
  kFirstCandidate,  ///< deterministic: lowest-priority candidate that fits
  kBufferLevel,     ///< congestion-aware: most free downstream buffer space
};

const char* to_string(SelectionStrategy selection) noexcept;

struct NocConfig {
  std::uint32_t buffer_depth = 4;  ///< flits per inter-router input FIFO
  bool multicast = true;           ///< false = source-replicated unicasts
  SelectionStrategy selection = SelectionStrategy::kFirstCandidate;
  hw::EnergyModel energy;
  /// Safety bound; the run reports drained=false if traffic does not
  /// complete within this many cycles.
  std::uint64_t max_cycles = 20'000'000;
};

struct NocRunResult {
  NocStats stats;
  SnnMetrics snn;
  std::vector<DeliveredSpike> delivered;
};

class NocSimulator {
 public:
  NocSimulator(Topology topology, NocConfig config);

  /// Simulates the trace to completion (or max_cycles).  The trace is sorted
  /// by emit_cycle internally; sequence numbers are assigned per source
  /// neuron in emission order.
  NocRunResult run(std::vector<SpikePacketEvent> traffic);

  const Topology& topology() const noexcept { return topology_; }
  const NocConfig& config() const noexcept { return config_; }

 private:
  struct StagedMove {
    RouterId to_router;
    std::uint32_t to_port;
    Flit flit;
  };

  /// Destinations of `flit` assigned to `out_port` this cycle: local
  /// ejections when out_port is the local port, otherwise remote dests whose
  /// chosen next hop (deterministic first candidate, or the selection
  /// strategy's pick for single-destination flits) is out_port.
  std::vector<TileId> dests_via_port(
      const Router& r, const Flit& flit, std::uint32_t out_port,
      const std::vector<std::vector<std::size_t>>& staged_count,
      const std::vector<Router>& routers) const;

  Topology topology_;
  NocConfig config_;
  std::vector<std::vector<std::uint32_t>> reverse_port_;  // [r][out] -> in at nb
};

}  // namespace snnmap::noc
