#include "util/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace snnmap::util {
namespace {

TEST(Table, RequiresColumns) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, AddRowChecksArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, CellBuilderCompletesRows) {
  Table t({"a", "b", "c"});
  t.begin_row();
  t.cell(std::string("x"));
  t.cell(1.23456, 2);
  t.cell(static_cast<std::int64_t>(-7));
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.data()[0][0], "x");
  EXPECT_EQ(t.data()[0][1], "1.23");
  EXPECT_EQ(t.data()[0][2], "-7");
}

TEST(Table, CellWithoutBeginThrows) {
  Table t({"a"});
  EXPECT_THROW(t.cell(std::string("x")), std::logic_error);
}

TEST(Table, BeginRowTwiceMidRowThrows) {
  Table t({"a", "b"});
  t.begin_row();
  t.cell(std::string("x"));
  EXPECT_THROW(t.begin_row(), std::logic_error);
}

TEST(Table, AsciiContainsHeadersAndCells) {
  Table t({"name", "value"});
  t.add_row({"alpha", "42"});
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("name"), std::string::npos);
  EXPECT_NE(ascii.find("alpha"), std::string::npos);
  EXPECT_NE(ascii.find("42"), std::string::npos);
  EXPECT_NE(ascii.find('+'), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.add_row({"x,y", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvPlainRows) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(Table, WriteCsvBadPathThrows) {
  Table t({"a"});
  EXPECT_THROW(t.write_csv("/nonexistent/dir/file.csv"), std::runtime_error);
}

}  // namespace
}  // namespace snnmap::util
