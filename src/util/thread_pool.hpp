// Minimal fixed-size worker pool for deterministic fork-join parallelism.
//
// Built for the optimizers' batch fitness evaluation: parallel_blocks()
// splits an index range [0, n) into one contiguous block per worker and
// blocks until every block finished.  Work never migrates between workers,
// so per-worker scratch state (e.g. a CostModel) is touched by exactly one
// thread per job, and the index -> worker mapping is a pure function of
// (n, size()) — never of timing.  Results written to slots indexed by item
// are therefore bit-identical to a serial run.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace snnmap::util {

class ThreadPool {
 public:
  /// Hard cap on pool size, guarding against nonsense reaching resolve()
  /// from config files or CLI casts (e.g. "-1" wrapping to ~4 billion).
  static constexpr std::uint32_t kMaxThreads = 256;

  /// fn(worker, begin, end): process items [begin, end) on `worker`.
  using BlockFn =
      std::function<void(std::uint32_t, std::size_t, std::size_t)>;

  /// threads = 0 resolves to hardware_concurrency().  A pool of size 1
  /// spawns no threads: every job runs inline on the calling thread (the
  /// serial fallback on single-core hosts or with an explicit threads=1).
  explicit ThreadPool(std::uint32_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::uint32_t size() const noexcept { return worker_count_; }

  /// Splits [0, n) into min(size(), n) contiguous blocks and runs fn once
  /// per block; the calling thread executes block 0.  Returns after every
  /// block finished; the first exception thrown by any block is rethrown.
  void parallel_blocks(std::size_t n, const BlockFn& fn);

  /// Element-wise convenience: fn(worker, index) for every index in [0, n).
  template <typename F>
  void parallel_for(std::size_t n, F&& fn) {
    parallel_blocks(
        n, [&fn](std::uint32_t worker, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) fn(worker, i);
        });
  }

  /// 0 -> hardware_concurrency(); the result is clamped to
  /// [1, kMaxThreads].
  static std::uint32_t resolve(std::uint32_t requested) noexcept;

 private:
  void worker_loop(std::uint32_t worker);

  std::uint32_t worker_count_ = 1;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const BlockFn* job_ = nullptr;   ///< current job (valid while active_ > 0)
  std::size_t job_n_ = 0;          ///< item count of the current job
  std::uint32_t job_blocks_ = 0;   ///< blocks in the current job
  std::uint64_t generation_ = 0;   ///< bumped per job so workers run it once
  std::uint32_t active_ = 0;       ///< spawned workers still inside the job
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace snnmap::util
