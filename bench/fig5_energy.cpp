// Figure 5 — "Exploration with synthetic and realistic SNN-based
// applications": normalized energy consumption on the global synapse
// interconnect for NEUTRAMS, PACMAN and the proposed PSO partitioning, over
// the synthetic topologies 1x200, 1x600, 3x200, 4x200 (plus the other four
// evaluated in the text) and the four realistic applications HW, IS, HD, HE.
// Energy is normalized to NEUTRAMS (= 1.0), exactly as in the paper.
//
// Expected shape: PSO <= PACMAN <= NEUTRAMS everywhere, with the largest
// gains on sparse topologies (1x200) and near-parity on dense ones (4x200).
#include <iostream>
#include <vector>

#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace snnmap;
  const bool quick = bench::quick_mode();

  // 8 synthetic topologies evaluated in Sec. V (4 plotted) + Table I apps.
  std::vector<std::string> workloads = {"1x200", "1x600", "3x200", "4x200",
                                        "1x400", "1x800", "2x200", "2x400",
                                        "HW",    "IS",    "HD",    "HE"};
  if (quick) workloads = {"1x200", "2x200", "HW", "HE"};

  util::Table table({"workload", "synapses", "NEUTRAMS", "PACMAN [8]",
                     "Proposed PSO", "PSO vs NEUTRAMS (%)",
                     "PSO vs PACMAN (%)"});
  util::Accumulator gain_vs_neutrams_synthetic;
  util::Accumulator gain_vs_pacman_synthetic;
  util::Accumulator gain_vs_neutrams_realistic;
  util::Accumulator gain_vs_pacman_realistic;

  for (const auto& name : workloads) {
    const snn::SnnGraph graph = apps::build_app(name, /*seed=*/42);

    core::MappingFlowConfig flow;
    flow.arch = bench::scaled_cxquad(graph);
    flow.pso = bench::default_pso();

    double energy[3] = {0.0, 0.0, 0.0};
    const core::PartitionerKind kinds[3] = {core::PartitionerKind::kNeutrams,
                                            core::PartitionerKind::kPacman,
                                            core::PartitionerKind::kPso};
    for (int k = 0; k < 3; ++k) {
      flow.partitioner = kinds[k];
      energy[k] = core::run_mapping_flow(graph, flow).global_energy_pj;
    }
    const double base = energy[0] > 0.0 ? energy[0] : 1.0;
    const double vs_neutrams = (1.0 - energy[2] / base) * 100.0;
    const double vs_pacman =
        energy[1] > 0.0 ? (1.0 - energy[2] / energy[1]) * 100.0 : 0.0;
    const bool realistic = name == "HW" || name == "IS" || name == "HD" ||
                           name == "HE";
    (realistic ? gain_vs_neutrams_realistic : gain_vs_neutrams_synthetic)
        .add(vs_neutrams);
    (realistic ? gain_vs_pacman_realistic : gain_vs_pacman_synthetic)
        .add(vs_pacman);

    table.begin_row();
    table.cell(name);
    table.cell(graph.edge_count());
    table.cell(1.0, 3);
    table.cell(energy[1] / base, 3);
    table.cell(energy[2] / base, 3);
    table.cell(vs_neutrams, 1);
    table.cell(vs_pacman, 1);
  }

  std::cout << "=== Figure 5: normalized global-synapse interconnect energy "
               "(NEUTRAMS = 1.0) ===\n"
            << table.to_ascii() << '\n';
  std::cout << "Paper reports (synthetic): 2.4%-48.7% vs NEUTRAMS (avg "
               "20.2%), 1.5%-45.4% vs PACMAN (avg 17.2%).\n";
  std::cout << "Measured  (synthetic): avg " << gain_vs_neutrams_synthetic.mean()
            << "% vs NEUTRAMS [" << gain_vs_neutrams_synthetic.min() << "%, "
            << gain_vs_neutrams_synthetic.max() << "%], avg "
            << gain_vs_pacman_synthetic.mean() << "% vs PACMAN ["
            << gain_vs_pacman_synthetic.min() << "%, "
            << gain_vs_pacman_synthetic.max() << "%]\n";
  std::cout << "Paper reports (realistic): 27.0%-52.1% vs NEUTRAMS (avg 38%), "
               "21.2%-48.7% vs PACMAN (avg 33%).\n";
  std::cout << "Measured  (realistic): avg "
            << gain_vs_neutrams_realistic.mean() << "% vs NEUTRAMS, avg "
            << gain_vs_pacman_realistic.mean() << "% vs PACMAN\n";
  return 0;
}
