// Point-neuron dynamics.
//
// CARLsim's workhorse is the Izhikevich model; the LIF model is provided as a
// cheaper alternative used by the larger synthetic workloads.  Both are
// integrated with a fixed 1 ms step (Izhikevich uses two 0.5 ms half-steps for
// numerical stability, following the original 2003 paper and CARLsim).
#pragma once

#include <cstdint>

namespace snnmap::snn {

/// Which dynamics govern a neuron group.
enum class NeuronModel : std::uint8_t {
  kLif,         ///< leaky integrate-and-fire
  kIzhikevich,  ///< Izhikevich 2003 two-variable model
  kPoisson,     ///< stateless stochastic spike source (inputs)
};

const char* to_string(NeuronModel model) noexcept;

/// Leaky integrate-and-fire parameters (membrane in mV, current in
/// dimensionless "input units" scaled by r_m).
struct LifParams {
  double tau_m_ms = 20.0;      ///< membrane time constant
  double v_rest = -65.0;       ///< resting potential (mV)
  double v_reset = -70.0;      ///< post-spike reset potential (mV)
  double v_thresh = -50.0;     ///< firing threshold (mV)
  double r_m = 10.0;           ///< membrane resistance (mV per input unit)
  double refractory_ms = 2.0;  ///< absolute refractory period
};

/// Izhikevich parameters; defaults are the canonical regular-spiking set.
struct IzhikevichParams {
  double a = 0.02;
  double b = 0.2;
  double c = -65.0;
  double d = 8.0;

  static IzhikevichParams regular_spiking() noexcept { return {}; }
  static IzhikevichParams fast_spiking() noexcept {
    return {0.1, 0.2, -65.0, 2.0};
  }
  static IzhikevichParams chattering() noexcept {
    return {0.02, 0.2, -50.0, 2.0};
  }
  static IzhikevichParams intrinsically_bursting() noexcept {
    return {0.02, 0.2, -55.0, 4.0};
  }
};

/// Per-neuron dynamic state shared across models (u unused by LIF).
struct NeuronState {
  double v = -65.0;  ///< membrane potential (mV)
  double u = 0.0;    ///< Izhikevich recovery variable
  double refractory_until_ms = -1.0;
};

/// Initializes state at the model's resting point.
NeuronState initial_state(NeuronModel model, const LifParams& lif,
                          const IzhikevichParams& izh) noexcept;

/// Advances a LIF neuron by dt_ms under input current; returns true on spike.
bool step_lif(NeuronState& state, const LifParams& p, double input,
              double now_ms, double dt_ms) noexcept;

/// Advances an Izhikevich neuron by dt_ms; returns true on spike.
bool step_izhikevich(NeuronState& state, const IzhikevichParams& p,
                     double input, double dt_ms) noexcept;

}  // namespace snnmap::snn
