// BM_TraceOverhead: observability cost in the NoC cycle loop.
//
// Run via scripts/bench.sh, which writes BENCH_obs.json so the cost of the
// obs subsystem is tracked PR over PR.  Every leg replays the *same*
// deterministic mesh multicast trace; only the obs configuration differs:
//
//  * mode=0 — everything off.  Every trace call site is gated on the
//    hoisted trace_active_ bool and the monitor on a has_value() check, so
//    this leg must stay within noise of the pre-obs BM_NocSimulator
//    trajectory: the dark hot path pays nothing for the subsystem's
//    existence.
//  * mode=1 — tracing on (64Ki ring): every inject/hop/park/deliver pays a
//    record() — three FNV-1a mixes plus a ring push.  events_per_sec makes
//    the tracer's own throughput visible next to the cycle loop's.
//  * mode=2 — tracing + congestion monitor + per-window histograms: the
//    full observability stack as snnmap_cli --trace --monitor runs it.
//
// trace_recorded per iteration is exported so a throughput change can be
// told apart from a workload/event-count change.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "noc/simulator.hpp"
#include "noc/traffic_patterns.hpp"
#include "obs/trace.hpp"

namespace {

using namespace snnmap;

/// Same 8x8 XY mesh multicast workload as fault_benchmarks, so the mode=0
/// leg is directly comparable against the BM_FaultedNoc severity=0 leg.
struct ObsWorkload {
  noc::Topology topology = noc::Topology::mesh(8, 8);
  noc::NocConfig config;
  std::vector<noc::SpikePacketEvent> traffic =
      noc::patterns::multicast_traffic(/*seed=*/909, /*tiles=*/64,
                                       /*packets=*/6000, /*max_fanout=*/5,
                                       /*packets_per_cycle=*/4);
};

noc::NocConfig obs_mode(noc::NocConfig config, int mode) {
  if (mode >= 1) {
    config.trace.enabled = true;
    config.trace.ring_capacity = 1u << 16;
  }
  if (mode >= 2) {
    config.monitor.enabled = true;
    config.monitor.hot_occupancy = 0.25;
  }
  return config;
}

void BM_TraceOverhead(benchmark::State& state) {
  static const ObsWorkload base;
  ObsWorkload workload;
  workload.config = obs_mode(base.config, static_cast<int>(state.range(0)));
  std::uint64_t cycles = 0;
  std::uint64_t delivered = 0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    noc::NocSimulator sim(base.topology, workload.config);
    const auto result = sim.run(base.traffic);
    benchmark::DoNotOptimize(result.stats.copies_delivered);
    cycles += result.stats.duration_cycles;
    delivered += result.stats.copies_delivered;
    events += result.trace_recorded;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(base.traffic.size()));
  state.counters["cycles_per_sec"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["delivered_per_sec"] = benchmark::Counter(
      static_cast<double>(delivered), benchmark::Counter::kIsRate);
  if (events > 0) {
    state.counters["events_per_sec"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
  }
  state.counters["trace_recorded"] =
      static_cast<double>(events) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_TraceOverhead)
    ->ArgName("mode")  // 0=dark baseline 1=trace 2=trace+monitor
    ->DenseRange(0, 2);

// The tracer in isolation: record() is three FNV-1a mixes and a ring push,
// and its throughput bounds how much instrumentation the cycle loop can
// afford.  Kept separate from the workload legs so a regression here is
// attributable to the tracer itself, not the simulator.
void BM_TracerRecord(benchmark::State& state) {
  obs::TraceConfig config;
  config.enabled = true;
  config.ring_capacity = static_cast<std::uint32_t>(state.range(0));
  obs::Tracer tracer;
  tracer.configure(config);
  std::uint64_t cycle = 0;
  for (auto _ : state) {
    tracer.record(cycle, obs::TraceEventType::kFlitHop,
                  static_cast<std::uint32_t>(cycle & 63),
                  static_cast<std::uint32_t>(cycle & 3),
                  static_cast<std::uint32_t>(cycle));
    ++cycle;
  }
  benchmark::DoNotOptimize(tracer.digest());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TracerRecord)->ArgName("ring")->Arg(64)->Arg(1 << 16);

}  // namespace
