// Property test pinning the routing-function <-> route-cache equivalence:
// Topology::build_route_cache() is filled from the same per-topology routing
// functions route_candidates()/route_entry() evaluate on the fly, so cached
// and uncached lookups must agree entry for entry on every (router, dst)
// pair — for every interconnect kind, several sizes, and every mesh routing
// algorithm.  This is the contract that lets the simulator run table-free on
// large fabrics while small hot-loop runs opt into the O(R x D) cache.
#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "noc/topology.hpp"

namespace snnmap::noc {
namespace {

void expect_cache_matches_function(const Topology& uncached,
                                   const char* label) {
  Topology cached = uncached;  // value copy; cache built on one side only
  cached.build_route_cache();
  ASSERT_TRUE(cached.has_route_cache());
  ASSERT_FALSE(uncached.has_route_cache());
  const std::uint32_t n = uncached.router_count();
  ASSERT_EQ(cached.route_table().size(),
            static_cast<std::size_t>(n) * n);
  for (RouterId r = 0; r < n; ++r) {
    for (RouterId dst = 0; dst < n; ++dst) {
      const Topology::RouteEntry fn = uncached.route_entry(r, dst);
      const Topology::RouteEntry tab = cached.route_entry(r, dst);
      ASSERT_EQ(fn.count, tab.count) << label << " " << r << "->" << dst;
      for (std::uint32_t k = 0; k < fn.count; ++k) {
        ASSERT_EQ(fn.port[k], tab.port[k])
            << label << " " << r << "->" << dst << " candidate " << k;
      }
      if (r == dst) {
        EXPECT_EQ(fn.count, 1u);
        EXPECT_EQ(fn.port[0], Topology::kTableLocal);
      } else {
        // The checked API must agree with the packed entries too.
        PortId candidates[3];
        const std::uint32_t count =
            uncached.route_candidates(r, dst, candidates);
        ASSERT_EQ(count, fn.count);
        for (std::uint32_t k = 0; k < count; ++k) {
          ASSERT_EQ(candidates[k], fn.port[k]);
        }
        EXPECT_EQ(cached.next_port(r, dst), uncached.next_port(r, dst));
      }
    }
  }
}

TEST(RouteFunction, MeshMatchesCacheForAllRoutings) {
  for (const auto& wh : {std::pair<std::uint32_t, std::uint32_t>{1, 1},
                        {4, 1},
                        {3, 3},
                        {5, 4}}) {
    for (const auto routing :
         {MeshRouting::kXY, MeshRouting::kYX, MeshRouting::kWestFirst,
          MeshRouting::kNorthLast}) {
      auto mesh = Topology::mesh(wh.first, wh.second);
      mesh.set_mesh_routing(routing);
      expect_cache_matches_function(mesh, to_string(routing));
    }
  }
}

TEST(RouteFunction, TreeMatchesCache) {
  for (const auto& [tiles, arity] :
       {std::pair<std::uint32_t, std::uint32_t>{1, 2},
        {4, 4},
        {8, 2},
        {9, 3},
        {13, 4}}) {  // 13 = ragged last parent on two levels
    expect_cache_matches_function(Topology::tree(tiles, arity), "tree");
  }
}

TEST(RouteFunction, RingMatchesCache) {
  for (const std::uint32_t tiles : {2u, 3u, 6u, 9u}) {
    expect_cache_matches_function(Topology::ring(tiles), "ring");
  }
}

TEST(RouteFunction, DragonflyMatchesCache) {
  for (const auto& [a, g, h] :
       {std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>{2, 2, 1},
        {4, 5, 1},
        {3, 4, 2},     // multiple replicas: adaptive cross-group candidates
        {4, 7, 2}}) {  // a*h > g-1 with a dark channel remainder
    expect_cache_matches_function(Topology::dragonfly(a, g, h), "dragonfly");
  }
}

TEST(RouteFunction, FattreeMatchesCache) {
  for (const std::uint32_t k : {2u, 4u, 6u}) {
    expect_cache_matches_function(Topology::fattree(k), "fattree");
  }
}

TEST(RouteFunction, CacheRebuildsWithMeshRouting) {
  auto mesh = Topology::mesh(4, 4);
  mesh.build_route_cache();
  mesh.set_mesh_routing(MeshRouting::kWestFirst);  // must rebuild the cache
  auto reference = Topology::mesh(4, 4);
  reference.set_mesh_routing(MeshRouting::kWestFirst);
  for (RouterId r = 0; r < mesh.router_count(); ++r) {
    for (RouterId dst = 0; dst < mesh.router_count(); ++dst) {
      const auto a = mesh.route_entry(r, dst);
      const auto b = reference.route_entry(r, dst);
      ASSERT_EQ(a.count, b.count);
      for (std::uint32_t k = 0; k < a.count; ++k) {
        ASSERT_EQ(a.port[k], b.port[k]);
      }
    }
  }
}

TEST(RouteFunction, CacheRejectsUnpackablePortCounts) {
  // A 255-ary tree hub has 256 ports — the packed uint8 encoding cannot
  // address them, so the opt-in cache must refuse (function routing still
  // works through the wide PortId API).
  auto wide = Topology::tree(256, 255);
  EXPECT_THROW(wide.build_route_cache(), std::invalid_argument);
  EXPECT_NO_THROW((void)wide.next_port(0, 255));
}

}  // namespace
}  // namespace snnmap::noc
