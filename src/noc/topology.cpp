#include "noc/topology.hpp"

#include <algorithm>
#include <stdexcept>

namespace snnmap::noc {

const char* to_string(MeshRouting routing) noexcept {
  switch (routing) {
    case MeshRouting::kXY: return "xy";
    case MeshRouting::kYX: return "yx";
    case MeshRouting::kWestFirst: return "west-first";
    case MeshRouting::kNorthLast: return "north-last";
  }
  return "?";
}

MeshRouting mesh_routing_from_string(const std::string& name) {
  if (name == "xy") return MeshRouting::kXY;
  if (name == "yx") return MeshRouting::kYX;
  if (name == "west-first") return MeshRouting::kWestFirst;
  if (name == "north-last") return MeshRouting::kNorthLast;
  throw std::invalid_argument("unknown mesh routing: '" + name + "'");
}

void Topology::set_mesh_routing(MeshRouting routing) {
  if (kind_ != hw::InterconnectKind::kMesh) {
    throw std::logic_error("Topology: routing algorithms apply to mesh only");
  }
  if (routing == routing_) return;
  routing_ = routing;
  if (has_route_cache()) build_route_cache();  // candidate sets changed
}

void Topology::check_router(RouterId router) const {
  if (router >= router_count()) {
    throw std::out_of_range("Topology: router id out of range");
  }
}

RouterId Topology::router_of_tile(TileId tile) const {
  if (tile >= tile_router_.size()) {
    throw std::out_of_range("Topology: tile id out of range");
  }
  return tile_router_[tile];
}

TileId Topology::tile_of_router(RouterId router) const {
  check_router(router);
  return router_tile_[router];
}

std::uint32_t Topology::port_count(RouterId router) const {
  check_router(router);
  return static_cast<std::uint32_t>(neighbors_[router].size());
}

RouterId Topology::neighbor(RouterId router, PortId port) const {
  check_router(router);
  if (port >= neighbors_[router].size()) {
    throw std::out_of_range("Topology: port id out of range");
  }
  return neighbors_[router][port];
}

PortId Topology::next_port(RouterId router, RouterId dst) const {
  if (router == dst) {
    check_router(router);
    return kLocalPort;
  }
  PortId candidates[3];
  const std::uint32_t count = route_candidates(router, dst, candidates);
  if (count == 0) {
    throw std::logic_error("Topology: no route candidate");
  }
  return candidates[0];
}

std::uint32_t Topology::route_candidates(RouterId router, RouterId dst,
                                         PortId out[3]) const {
  check_router(router);
  check_router(dst);
  if (router == dst) {
    out[0] = kLocalPort;
    return 1;
  }
  if (!route_table_.empty()) {
    const RouteEntry& e =
        route_table_[static_cast<std::size_t>(router) * router_count() + dst];
    for (std::uint32_t k = 0; k < e.count; ++k) out[k] = e.port[k];
    return e.count;
  }
  return compute_candidates(router, dst, out);
}

std::uint32_t Topology::compute_candidates(RouterId router, RouterId dst,
                                           PortId out[3]) const {
  switch (kind_) {
    case hw::InterconnectKind::kMesh:
      return mesh_candidates(router, dst, out);
    case hw::InterconnectKind::kTree:
      return tree_candidates(router, dst, out);
    case hw::InterconnectKind::kRing:
      return ring_candidates(router, dst, out);
    case hw::InterconnectKind::kDragonfly:
      return dragonfly_candidates(router, dst, out);
    case hw::InterconnectKind::kFattree:
      return fattree_candidates(router, dst, out);
  }
  throw std::logic_error("Topology: unknown interconnect kind");
}

std::uint32_t Topology::fault_fallback_candidates(RouterId router,
                                                  RouterId dst,
                                                  PortId out[2]) const {
  if (kind_ != hw::InterconnectKind::kMesh || router == dst) return 0;
  const std::uint32_t w = mesh_width_;
  const auto x = static_cast<std::int32_t>(router % w);
  const auto y = static_cast<std::int32_t>(router / w);
  const std::int32_t dx = static_cast<std::int32_t>(dst % w) - x;
  const std::int32_t dy = static_cast<std::int32_t>(dst / w) - y;
  const auto port_toward = [&](RouterId next) -> PortId {
    for (PortId p = 0; p < neighbors_[router].size(); ++p) {
      if (neighbors_[router][p] == next) return p;
    }
    throw std::logic_error("Topology: next hop is not a neighbor");
  };
  std::uint32_t count = 0;
  if (dx != 0) out[count++] = port_toward(dx > 0 ? router + 1 : router - 1);
  if (dy != 0) out[count++] = port_toward(dy > 0 ? router + w : router - w);
  return count;
}

std::uint32_t Topology::mesh_candidates(RouterId router, RouterId dst,
                                        PortId out[3]) const {
  const std::uint32_t w = mesh_width_;
  const auto x = static_cast<std::int32_t>(router % w);
  const auto y = static_cast<std::int32_t>(router / w);
  const std::int32_t dx = static_cast<std::int32_t>(dst % w) - x;
  const std::int32_t dy = static_cast<std::int32_t>(dst / w) - y;

  const auto port_toward = [&](RouterId next) -> PortId {
    for (PortId p = 0; p < neighbors_[router].size(); ++p) {
      if (neighbors_[router][p] == next) return p;
    }
    throw std::logic_error("Topology: next hop is not a neighbor");
  };
  // Productive neighbor routers per direction ("north" = decreasing y).
  const RouterId east = router + 1;
  const RouterId west = router - 1;
  const RouterId south = router + w;
  const RouterId north = router - w;

  std::uint32_t count = 0;
  const auto add = [&](RouterId next) { out[count++] = port_toward(next); };
  switch (routing_) {
    case MeshRouting::kXY:
      if (dx != 0) {
        add(dx > 0 ? east : west);
      } else {
        add(dy > 0 ? south : north);
      }
      break;
    case MeshRouting::kYX:
      if (dy != 0) {
        add(dy > 0 ? south : north);
      } else {
        add(dx > 0 ? east : west);
      }
      break;
    case MeshRouting::kWestFirst:
      // Westward moves must complete first; otherwise fully adaptive among
      // the remaining productive directions {E, N, S}.
      if (dx < 0) {
        add(west);
      } else {
        if (dx > 0) add(east);
        if (dy < 0) add(north);
        if (dy > 0) add(south);
      }
      break;
    case MeshRouting::kNorthLast:
      // Turns out of the north direction are forbidden, so go north only
      // when it is the sole productive direction.
      if (dx > 0) add(east);
      if (dx < 0) add(west);
      if (dy > 0) add(south);
      if (count == 0 && dy < 0) add(north);
      break;
  }
  return count;
}

std::uint32_t Topology::tree_level_of(RouterId router) const noexcept {
  std::uint32_t level = 0;
  while (tree_level_start_[level + 1] <= router) ++level;
  return level;
}

std::uint32_t Topology::tree_candidates(RouterId router, RouterId dst,
                                        PortId out[3]) const {
  // Up/down routing on the unique tree path, closed form from level
  // metadata: node (l, p) covers leaves [p*a^l, (p+1)*a^l) and its child
  // at level l-1 containing leaf interval q is q lifted l-1 levels.
  const std::uint32_t lr = tree_level_of(router);
  const std::uint32_t ld = tree_level_of(dst);
  const std::uint32_t pr = router - tree_level_start_[lr];
  std::uint32_t pd = dst - tree_level_start_[ld];
  if (lr > ld) {
    // Lift dst's position to level lr - 1, then test subtree containment.
    for (std::uint32_t l = ld; l + 1 < lr; ++l) pd /= tree_arity_;
    if (pd / tree_arity_ == pr) {
      out[0] = pd - pr * tree_arity_;  // children occupy the first ports
      return 1;
    }
  }
  // Not below us: go up.  Leaves have only the parent port; internal
  // routers append the parent after their children.
  if (lr == 0) {
    out[0] = 0;
  } else {
    const std::uint32_t below =
        tree_level_start_[lr] - tree_level_start_[lr - 1];
    const std::uint32_t child_count =
        std::min(below, (pr + 1) * tree_arity_) - pr * tree_arity_;
    out[0] = child_count;
  }
  return 1;
}

std::uint32_t Topology::ring_candidates(RouterId router, RouterId dst,
                                        PortId out[3]) const {
  const std::uint32_t n = router_count();
  const std::uint32_t cw = (dst + n - router) % n;
  const std::uint32_t ccw = (router + n - dst) % n;
  // Port 0 is clockwise; ties (even rings, diametric pairs) go clockwise,
  // matching the seed BFS's lowest-port tie-break.  A 2-ring only has the
  // clockwise port.
  out[0] = cw <= ccw ? 0 : 1;
  return 1;
}

std::uint32_t Topology::dragonfly_candidates(RouterId router, RouterId dst,
                                             PortId out[3]) const {
  const std::uint32_t a = df_a_;
  const std::uint32_t g = df_g_;
  const std::uint32_t h = df_h_;
  const std::uint32_t j = router % a;
  const std::uint32_t gr = router / a;
  const std::uint32_t jd = dst % a;
  const std::uint32_t gd = dst / a;
  if (gr == gd) {
    // Complete local graph: one hop, port index skips the self slot.
    out[0] = jd < j ? jd : jd - 1;
    return 1;
  }
  // Cross-group: the destination group is reached through global channel
  // index idx (any replica t).  A minimal route is local hop to the
  // channel's owner (skipped when we own it), the global hop, and a local
  // hop at the arrival group (skipped when the channel lands on dst).
  const std::uint32_t idx = (gd + g - gr - 1) % g;
  const std::uint32_t replicas = df_channels_ / (g - 1);
  std::uint32_t best = static_cast<std::uint32_t>(-1);
  for (std::uint32_t t = 0; t < replicas; ++t) {
    const std::uint32_t owner = (t * (g - 1) + idx) / h;
    const std::uint32_t arrival = (t * (g - 1) + (g - 2 - idx)) / h;
    const std::uint32_t d = (owner != j ? 1u : 0u) + 1u +
                            (arrival != jd ? 1u : 0u);
    best = std::min(best, d);
  }
  // Offer every minimal first hop across replicas (deduplicated, capped at
  // 3): replica diversity is the adaptive / Valiant-style spreading hook.
  std::uint32_t count = 0;
  for (std::uint32_t t = 0; t < replicas && count < 3; ++t) {
    const std::uint32_t c = t * (g - 1) + idx;
    const std::uint32_t owner = c / h;
    const std::uint32_t arrival = (t * (g - 1) + (g - 2 - idx)) / h;
    const std::uint32_t d = (owner != j ? 1u : 0u) + 1u +
                            (arrival != jd ? 1u : 0u);
    if (d != best) continue;
    const PortId port = owner == j ? (a - 1) + (c - j * h)
                                   : (owner < j ? owner : owner - 1);
    bool seen = false;
    for (std::uint32_t k = 0; k < count; ++k) seen |= out[k] == port;
    if (!seen) out[count++] = port;
  }
  return count;
}

std::uint32_t Topology::fattree_candidates(RouterId router, RouterId dst,
                                           PortId out[3]) const {
  const std::uint32_t k = ft_k_;
  const std::uint32_t half = k / 2;
  const std::uint32_t edges = k * half;
  // Up to 3 minimal up/down ports from [base, base+span), first candidate
  // derived from the destination id so deterministic flows spread.
  const auto adaptive = [&](PortId base, std::uint32_t span) {
    const std::uint32_t take = std::min<std::uint32_t>(span, 3);
    const std::uint32_t start = dst % span;
    for (std::uint32_t i = 0; i < take; ++i) {
      out[i] = base + (start + i) % span;
    }
    return take;
  };
  if (router < edges) {  // edge switch (pod, e)
    if (dst < edges) {
      // Any aggregation switch is on a minimal path to another edge
      // (2 hops same pod, 4 hops across pods): adaptive up*.
      return adaptive(0, half);
    }
    if (dst < 2 * edges) {  // aggregation destination: fixed row
      out[0] = (dst - edges) % half;
      return 1;
    }
    out[0] = (dst - 2 * edges) / half;  // core row pins the up port
    return 1;
  }
  if (router < 2 * edges) {  // aggregation switch (pod, row)
    const std::uint32_t pod = (router - edges) / half;
    const std::uint32_t row = (router - edges) % half;
    if (dst < edges) {  // edge destination
      if (dst / half == pod) {
        out[0] = dst % half;  // unique down* port
        return 1;
      }
      return adaptive(half, half);  // any core of this row, then down
    }
    if (dst < 2 * edges) {  // aggregation destination
      const std::uint32_t dpod = (dst - edges) / half;
      const std::uint32_t drow = (dst - edges) % half;
      if (dpod == pod) return adaptive(0, half);  // down, any edge, back up
      if (drow == row) return adaptive(half, half);  // same core row, up
      // Different pod and row: descend first (down, cross rows in our pod,
      // then ride the destination row's cores) — one minimal family,
      // chosen so the route stays memoryless.
      return adaptive(0, half);
    }
    const std::uint32_t drow = (dst - 2 * edges) / half;
    if (drow == row) {
      out[0] = half + (dst - 2 * edges) % half;  // direct up to that core
      return 1;
    }
    return adaptive(0, half);  // down to an edge, then the other row
  }
  // Core switch (row, m): every destination pod hangs off one down port.
  if (dst >= 2 * edges) {
    return adaptive(0, k);  // sibling core: down to any pod's agg and back
  }
  const std::uint32_t dpod =
      dst < edges ? dst / half : (dst - edges) / half;
  out[0] = dpod;
  return 1;
}

std::uint32_t Topology::router_hop_distance(RouterId a, RouterId b) const {
  if (a == b) return 0;
  switch (kind_) {
    case hw::InterconnectKind::kMesh: {
      const std::uint32_t w = mesh_width_;
      const auto dx = static_cast<std::int32_t>(a % w) -
                      static_cast<std::int32_t>(b % w);
      const auto dy = static_cast<std::int32_t>(a / w) -
                      static_cast<std::int32_t>(b / w);
      return static_cast<std::uint32_t>((dx < 0 ? -dx : dx) +
                                        (dy < 0 ? -dy : dy));
    }
    case hw::InterconnectKind::kTree: {
      std::uint32_t la = tree_level_of(a);
      std::uint32_t lb = tree_level_of(b);
      std::uint32_t pa = a - tree_level_start_[la];
      std::uint32_t pb = b - tree_level_start_[lb];
      std::uint32_t hops = 0;
      while (la < lb) {
        pa /= tree_arity_;
        ++la;
        ++hops;
      }
      while (lb < la) {
        pb /= tree_arity_;
        ++lb;
        ++hops;
      }
      while (pa != pb) {
        pa /= tree_arity_;
        pb /= tree_arity_;
        hops += 2;
      }
      return hops;
    }
    case hw::InterconnectKind::kRing: {
      const std::uint32_t n = router_count();
      const std::uint32_t cw = (b + n - a) % n;
      return std::min(cw, n - cw);
    }
    case hw::InterconnectKind::kDragonfly: {
      const std::uint32_t ga = a / df_a_;
      const std::uint32_t gb = b / df_a_;
      if (ga == gb) return 1;
      const std::uint32_t j = a % df_a_;
      const std::uint32_t jd = b % df_a_;
      const std::uint32_t g = df_g_;
      const std::uint32_t idx = (gb + g - ga - 1) % g;
      const std::uint32_t replicas = df_channels_ / (g - 1);
      std::uint32_t best = static_cast<std::uint32_t>(-1);
      for (std::uint32_t t = 0; t < replicas; ++t) {
        const std::uint32_t owner = (t * (g - 1) + idx) / df_h_;
        const std::uint32_t arrival =
            (t * (g - 1) + (g - 2 - idx)) / df_h_;
        best = std::min(best, (owner != j ? 1u : 0u) + 1u +
                                  (arrival != jd ? 1u : 0u));
      }
      return best;
    }
    case hw::InterconnectKind::kFattree: {
      // Tile routers are edge switches: 2 hops inside a pod, 4 across.
      const std::uint32_t half = ft_k_ / 2;
      return a / half == b / half ? 2 : 4;
    }
  }
  throw std::logic_error("Topology: unknown interconnect kind");
}

std::uint32_t Topology::hop_distance(TileId a, TileId b) const {
  return router_hop_distance(router_of_tile(a), router_of_tile(b));
}

void Topology::build_route_cache() {
  const std::uint32_t n = router_count();
  std::uint32_t max_ports = 0;
  for (const auto& nb : neighbors_) {
    max_ports = std::max(max_ports, static_cast<std::uint32_t>(nb.size()));
  }
  if (max_ports >= kTableLocal) {
    throw std::invalid_argument(
        "Topology: route cache needs < 255 ports per router (packed uint8 "
        "encoding)");
  }
  route_table_.clear();  // route_entry must compute while we fill
  std::vector<RouteEntry> table(static_cast<std::size_t>(n) * n);
  for (RouterId r = 0; r < n; ++r) {
    for (RouterId dst = 0; dst < n; ++dst) {
      table[static_cast<std::size_t>(r) * n + dst] = route_entry(r, dst);
    }
  }
  route_table_ = std::move(table);
}

void Topology::assign_chips(std::uint32_t chips) {
  if (chips == 0) {
    throw std::invalid_argument("Topology: chip count must be >= 1");
  }
  if (chips > tile_count()) {
    throw std::invalid_argument(
        "Topology: more chips than tiles (every chip must hold >= 1 tile)");
  }
  chip_count_ = chips;
  offchip_link_count_ = 0;
  if (chips == 1) {
    router_chip_.clear();
    return;
  }
  const std::uint32_t tiles = tile_count();
  const std::uint32_t per_chip = (tiles + chips - 1) / chips;
  router_chip_.assign(router_count(), 0);
  for (RouterId r = 0; r < router_count(); ++r) {
    TileId anchor = router_tile_[r];
    if (anchor == kNoRouter) {
      // Tileless routers take the chip of the first tile they serve.
      if (kind_ == hw::InterconnectKind::kTree) {
        const std::uint32_t level = tree_level_of(r);
        std::uint64_t leaf = r - tree_level_start_[level];
        for (std::uint32_t l = 0; l < level; ++l) leaf *= tree_arity_;
        anchor = static_cast<TileId>(std::min<std::uint64_t>(
            leaf, tiles - 1));
      } else {  // fat-tree aggregation (its pod's first tile) or core
        const std::uint32_t half = ft_k_ / 2;
        const std::uint32_t edges = ft_k_ * half;
        anchor = r < 2 * edges ? ((r - edges) / half) * half : 0;
      }
    }
    router_chip_[r] = anchor / per_chip;
  }
  for (RouterId r = 0; r < router_count(); ++r) {
    for (const RouterId nb : neighbors_[r]) {
      if (nb > r && router_chip_[nb] != router_chip_[r]) {
        ++offchip_link_count_;
      }
    }
  }
}

std::uint32_t Topology::chip_of_router(RouterId router) const {
  check_router(router);
  return chip_count_ > 1 ? router_chip_[router] : 0;
}

std::size_t Topology::memory_footprint_bytes() const noexcept {
  std::size_t bytes = neighbors_.capacity() * sizeof(neighbors_[0]);
  for (const auto& nb : neighbors_) {
    bytes += nb.capacity() * sizeof(RouterId);
  }
  bytes += tile_router_.capacity() * sizeof(RouterId);
  bytes += router_tile_.capacity() * sizeof(TileId);
  bytes += tree_level_start_.capacity() * sizeof(RouterId);
  bytes += router_chip_.capacity() * sizeof(std::uint32_t);
  bytes += route_table_.capacity() * sizeof(RouteEntry);
  return bytes;
}

void Topology::finish_tiles_one_per_router(std::uint32_t n) {
  tile_router_.resize(n);
  router_tile_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    tile_router_[i] = i;
    router_tile_[i] = i;
  }
}

Topology Topology::mesh(std::uint32_t width, std::uint32_t height) {
  if (width == 0 || height == 0) {
    throw std::invalid_argument("Topology: mesh dimensions must be > 0");
  }
  Topology t;
  t.kind_ = hw::InterconnectKind::kMesh;
  t.mesh_width_ = width;
  t.mesh_height_ = height;
  const std::uint32_t n = width * height;
  t.neighbors_.resize(n);
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      const RouterId r = y * width + x;
      auto& nb = t.neighbors_[r];
      if (x + 1 < width) nb.push_back(r + 1);
      if (x > 0) nb.push_back(r - 1);
      if (y + 1 < height) nb.push_back(r + width);
      if (y > 0) nb.push_back(r - width);
    }
  }
  t.finish_tiles_one_per_router(n);
  t.link_count_ = (width - 1) * height + width * (height - 1);
  return t;
}

Topology Topology::tree(std::uint32_t tiles, std::uint32_t arity) {
  if (tiles == 0) throw std::invalid_argument("Topology: tree needs tiles");
  if (arity < 2) throw std::invalid_argument("Topology: tree arity must be >= 2");
  Topology t;
  t.kind_ = hw::InterconnectKind::kTree;
  t.tree_arity_ = arity;
  // Level 0: one leaf router per tile; parents group `arity` children until
  // a single root remains.
  std::vector<RouterId> level;
  t.tree_level_start_.push_back(0);
  for (std::uint32_t i = 0; i < tiles; ++i) {
    t.neighbors_.emplace_back();
    level.push_back(i);
    t.router_tile_.push_back(i);
    t.tile_router_.push_back(i);
  }
  while (level.size() > 1) {
    t.tree_level_start_.push_back(
        static_cast<RouterId>(t.neighbors_.size()));
    std::vector<RouterId> parents;
    for (std::size_t i = 0; i < level.size(); i += arity) {
      const RouterId parent = static_cast<RouterId>(t.neighbors_.size());
      t.neighbors_.emplace_back();
      t.router_tile_.push_back(kNoRouter);
      for (std::size_t j = i; j < std::min(level.size(), i + arity); ++j) {
        t.neighbors_[parent].push_back(level[j]);
        t.neighbors_[level[j]].push_back(parent);
        ++t.link_count_;
      }
      parents.push_back(parent);
    }
    level = std::move(parents);
  }
  t.tree_level_start_.push_back(
      static_cast<RouterId>(t.neighbors_.size()));  // sentinel
  return t;
}

Topology Topology::ring(std::uint32_t tiles) {
  if (tiles < 2) {
    throw std::invalid_argument(
        "Topology: ring needs >= 2 tiles (a 0/1-node ring has no links)");
  }
  Topology t;
  t.kind_ = hw::InterconnectKind::kRing;
  t.neighbors_.resize(tiles);
  for (std::uint32_t i = 0; i < tiles; ++i) {
    t.neighbors_[i].push_back((i + 1) % tiles);  // clockwise
    if (tiles > 2) t.neighbors_[i].push_back((i + tiles - 1) % tiles);
  }
  t.finish_tiles_one_per_router(tiles);
  t.link_count_ = tiles > 2 ? tiles : 1;
  return t;
}

Topology Topology::dragonfly(std::uint32_t a, std::uint32_t g,
                             std::uint32_t h) {
  if (a < 2 || g < 2 || h < 1) {
    throw std::invalid_argument(
        "Topology: dragonfly needs a >= 2 routers per group, g >= 2 groups "
        "and h >= 1 global channels per router");
  }
  if (static_cast<std::uint64_t>(a) * h < g - 1) {
    throw std::invalid_argument(
        "Topology: dragonfly needs a*h >= g-1 (one full set of global "
        "channels per group)");
  }
  if (h > g - 1) {
    throw std::invalid_argument(
        "Topology: dragonfly needs h <= g-1 (more channels per router than "
        "peer groups would create parallel links)");
  }
  if (a - 1 + h >= kTableLocal) {
    throw std::invalid_argument(
        "Topology: dragonfly router radix must stay below 255 ports");
  }
  Topology t;
  t.kind_ = hw::InterconnectKind::kDragonfly;
  t.df_a_ = a;
  t.df_g_ = g;
  t.df_h_ = h;
  // Wire only full replica sets of the g-1 global channel indices; the
  // trailing channels (a*h mod (g-1) per group) stay dark.
  const std::uint32_t replicas = (a * h) / (g - 1);
  t.df_channels_ = replicas * (g - 1);
  const std::uint32_t n = a * g;
  t.neighbors_.resize(n);
  for (std::uint32_t gi = 0; gi < g; ++gi) {
    for (std::uint32_t j = 0; j < a; ++j) {
      auto& nb = t.neighbors_[gi * a + j];
      for (std::uint32_t p = 0; p < a; ++p) {  // complete local graph
        if (p != j) nb.push_back(gi * a + p);
      }
      const std::uint32_t c_end = std::min((j + 1) * h, t.df_channels_);
      for (std::uint32_t c = j * h; c < c_end; ++c) {
        const std::uint32_t idx = c % (g - 1);
        const std::uint32_t tr = c / (g - 1);
        const std::uint32_t dest_g = (gi + idx + 1) % g;
        // The reverse channel (same replica, involutive index g-2-idx)
        // fixes the peer router inside the destination group.
        const std::uint32_t peer = (tr * (g - 1) + (g - 2 - idx)) / h;
        nb.push_back(dest_g * a + peer);
      }
    }
  }
  t.finish_tiles_one_per_router(n);
  t.link_count_ = g * (a * (a - 1) / 2) + g * t.df_channels_ / 2;
  return t;
}

Topology Topology::fattree(std::uint32_t k) {
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument(
        "Topology: fattree radix k must be even and >= 2");
  }
  if (k >= kTableLocal) {
    throw std::invalid_argument(
        "Topology: fattree router radix must stay below 255 ports");
  }
  Topology t;
  t.kind_ = hw::InterconnectKind::kFattree;
  t.ft_k_ = k;
  const std::uint32_t half = k / 2;
  const std::uint32_t edges = k * half;        // one tile per edge switch
  const std::uint32_t cores = half * half;
  const std::uint32_t n = 2 * edges + cores;
  t.neighbors_.resize(n);
  t.router_tile_.assign(n, kNoRouter);
  for (std::uint32_t pod = 0; pod < k; ++pod) {
    for (std::uint32_t e = 0; e < half; ++e) {
      const RouterId edge = pod * half + e;
      t.tile_router_.push_back(edge);
      t.router_tile_[edge] = edge;
      for (std::uint32_t row = 0; row < half; ++row) {
        const RouterId agg = edges + pod * half + row;
        t.neighbors_[edge].push_back(agg);   // edge port `row`
        t.neighbors_[agg].push_back(edge);   // agg down port `e`
        ++t.link_count_;
      }
    }
  }
  // Aggregation up ports after the down ports (half..k-1), then each core
  // row's k pod ports in pod order.
  for (std::uint32_t pod = 0; pod < k; ++pod) {
    for (std::uint32_t row = 0; row < half; ++row) {
      const RouterId agg = edges + pod * half + row;
      for (std::uint32_t m = 0; m < half; ++m) {
        const RouterId core = 2 * edges + row * half + m;
        t.neighbors_[agg].push_back(core);
        ++t.link_count_;
      }
    }
  }
  for (std::uint32_t row = 0; row < half; ++row) {
    for (std::uint32_t m = 0; m < half; ++m) {
      const RouterId core = 2 * edges + row * half + m;
      for (std::uint32_t pod = 0; pod < k; ++pod) {
        t.neighbors_[core].push_back(edges + pod * half + row);
      }
    }
  }
  return t;
}

Topology Topology::for_architecture(const hw::Architecture& arch) {
  arch.validate();
  Topology t = [&] {
    switch (arch.interconnect) {
      case hw::InterconnectKind::kMesh:
        return mesh(arch.mesh_width(), arch.mesh_height());
      case hw::InterconnectKind::kTree:
        return tree(arch.crossbar_count, arch.tree_arity);
      case hw::InterconnectKind::kRing:
        return ring(arch.crossbar_count);
      case hw::InterconnectKind::kDragonfly:
        return dragonfly(arch.dragonfly_arity, arch.dragonfly_groups,
                         arch.dragonfly_global);
      case hw::InterconnectKind::kFattree:
        return fattree(arch.fattree_k);
    }
    throw std::logic_error("Topology: unknown interconnect kind");
  }();
  t.assign_chips(arch.chip_count);
  return t;
}

}  // namespace snnmap::noc
