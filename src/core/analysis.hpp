// Mapping quality analysis — the diagnostic layer a user runs *after* the
// flow to understand where a partition spends its interconnect budget:
// per-crossbar occupancy and spike load, the crossbar-pair traffic matrix,
// load-balance indices, and the heaviest source->destination streams
// ("critical pairs" — the candidates for placement or remapping attention).
// Rendered by examples/snnmap_cli via --analyze.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cost.hpp"
#include "core/partition.hpp"
#include "snn/graph.hpp"

namespace snnmap::core {

struct CrossbarLoad {
  CrossbarId crossbar = 0;
  std::uint32_t neurons = 0;         ///< occupancy
  std::uint64_t local_events = 0;    ///< synaptic events served locally
  std::uint64_t spikes_out = 0;      ///< AER packets emitted
  std::uint64_t spikes_in = 0;       ///< AER packet copies received
};

struct TrafficPair {
  CrossbarId from = 0;
  CrossbarId to = 0;
  std::uint64_t spikes = 0;
};

struct MappingAnalysis {
  std::vector<CrossbarLoad> loads;            ///< per crossbar
  std::vector<TrafficPair> heaviest_pairs;    ///< descending, top-k
  std::uint64_t total_local_events = 0;
  std::uint64_t total_aer_packets = 0;
  /// Fraction of all synaptic events served locally (the partitioning
  /// quality headline: 1.0 = everything local).
  double locality_fraction = 0.0;
  /// Ratio of the most-loaded crossbar's outgoing packets to the mean
  /// (1.0 = perfectly balanced sources).
  double source_imbalance = 0.0;
  /// Gini coefficient of per-crossbar neuron occupancy in [0, 1).
  double occupancy_gini = 0.0;

  /// Multi-line human-readable report.
  std::string render(std::size_t max_pairs = 8) const;
};

/// Analyzes a complete partition of `graph`; `top_pairs` bounds
/// heaviest_pairs.  Throws if the partition is incomplete.
MappingAnalysis analyze_mapping(const snn::SnnGraph& graph,
                                const Partition& partition,
                                std::size_t top_pairs = 16);

}  // namespace snnmap::core
