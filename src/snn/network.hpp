// SNN topology builder.
//
// Mirrors the CARLsim user model: the application declares neuron *groups*
// (populations) and *connections* between groups (full, random, one-to-one,
// 2-D Gaussian kernels), then hands the network to the simulator.  Groups are
// laid out contiguously in a flat global neuron index space; that declaration
// order matters downstream because the PACMAN baseline partitions neurons in
// exactly this order (see src/core/pacman.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "snn/neuron.hpp"
#include "util/rng.hpp"

namespace snnmap::snn {

/// Global neuron index (dense, [0, neuron_count)).
using NeuronId = std::uint32_t;
inline constexpr NeuronId kInvalidNeuron = static_cast<NeuronId>(-1);

/// How synapse weights are drawn when a connection is created.
struct WeightSpec {
  double lo = 0.0;
  double hi = 0.0;

  static WeightSpec fixed(double w) noexcept { return {w, w}; }
  static WeightSpec uniform(double lo, double hi) noexcept { return {lo, hi}; }

  double sample(util::Rng& rng) const noexcept {
    return lo == hi ? lo : rng.uniform(lo, hi);
  }
};

/// One synapse in the flat connection list.  `weight` is the current injected
/// into the post neuron when the spike arrives (negative = inhibitory).
struct Synapse {
  NeuronId pre = kInvalidNeuron;
  NeuronId post = kInvalidNeuron;
  float weight = 0.0F;
  std::uint16_t delay_steps = 1;  ///< axonal delay in simulation steps (>= 1)
  bool plastic = false;           ///< subject to STDP during simulation
};

/// A declared population of identical-model neurons.
struct Group {
  std::string name;
  NeuronId first = 0;     ///< first global id of the group
  std::uint32_t size = 0;
  NeuronModel model = NeuronModel::kIzhikevich;
  LifParams lif;
  IzhikevichParams izh;
  double poisson_rate_hz = 0.0;  ///< baseline rate for kPoisson groups
  /// Optional time-varying rate override for kPoisson groups:
  /// (local neuron index, time ms) -> rate Hz.  Null = constant baseline.
  std::function<double(std::uint32_t, double)> rate_fn;

  NeuronId last() const noexcept { return first + size; }  // one past end
  bool contains(NeuronId id) const noexcept {
    return id >= first && id < last();
  }
};

/// Mutable SNN under construction; immutable once handed to the Simulator.
class Network {
 public:
  using GroupId = std::size_t;
  static constexpr GroupId kNoGroup = static_cast<GroupId>(-1);

  // -- group declaration ----------------------------------------------------

  GroupId add_lif_group(std::string name, std::uint32_t size,
                        const LifParams& params = {});
  GroupId add_izhikevich_group(std::string name, std::uint32_t size,
                               const IzhikevichParams& params = {});
  /// Stochastic input population firing at `rate_hz` (overridable per group
  /// with set_rate_function, e.g. for pixel-intensity-coded images).
  GroupId add_poisson_group(std::string name, std::uint32_t size,
                            double rate_hz);

  /// Installs a time-varying rate function on a Poisson group.
  void set_rate_function(
      GroupId group, std::function<double(std::uint32_t, double)> rate_fn);

  // -- connection patterns --------------------------------------------------

  /// All-to-all (optionally excluding self-connections when pre == post).
  void connect_full(GroupId pre, GroupId post, WeightSpec weights,
                    util::Rng& rng, std::uint16_t delay_steps = 1,
                    bool plastic = false, bool allow_self = false);

  /// Independent Bernoulli(p) connectivity per neuron pair.
  void connect_random(GroupId pre, GroupId post, double probability,
                      WeightSpec weights, util::Rng& rng,
                      std::uint16_t delay_steps = 1, bool plastic = false,
                      bool allow_self = false);

  /// i -> i for equal-sized groups; throws on size mismatch.
  void connect_one_to_one(GroupId pre, GroupId post, WeightSpec weights,
                          util::Rng& rng, std::uint16_t delay_steps = 1,
                          bool plastic = false);

  /// 2-D Gaussian kernel between two `width` x `height` populations: each
  /// post pixel receives synapses from pre pixels within `radius` (Chebyshev)
  /// with weight peak_weight * exp(-d^2 / (2 sigma^2)).  This is the image
  /// smoothing topology from CARLsim's tutorial used by the paper.
  void connect_gaussian_2d(GroupId pre, GroupId post, std::uint32_t width,
                           std::uint32_t height, int radius,
                           double peak_weight, double sigma,
                           std::uint16_t delay_steps = 1);

  /// Single explicit synapse by global ids (bounds-checked).
  void add_synapse(NeuronId pre, NeuronId post, double weight,
                   std::uint16_t delay_steps = 1, bool plastic = false);

  // -- accessors ------------------------------------------------------------

  std::uint32_t neuron_count() const noexcept { return next_id_; }
  std::size_t group_count() const noexcept { return groups_.size(); }
  const Group& group(GroupId g) const { return groups_.at(g); }
  const std::vector<Group>& groups() const noexcept { return groups_; }
  const std::vector<Synapse>& synapses() const noexcept { return synapses_; }
  /// Mutable access for STDP write-back and experiment-time edits
  /// (lesioning, reweighting).  A Simulator snapshots synapses at
  /// construction, so edits made here are only picked up by Simulators
  /// built afterwards.
  std::vector<Synapse>& mutable_synapses() noexcept { return synapses_; }

  /// Group owning a neuron id (linear in group count; groups are few).
  GroupId group_of(NeuronId id) const noexcept;
  /// Global id of a group-local neuron (bounds-checked).
  NeuronId global_id(GroupId g, std::uint32_t local) const;
  /// Looks up a group by name; returns kNoGroup when absent.
  GroupId find_group(const std::string& name) const noexcept;

  /// Maximum axonal delay over all synapses (>= 1 even when empty).
  /// Maintained incrementally by add_synapse, so this is O(1).
  std::uint16_t max_delay_steps() const noexcept { return max_delay_steps_; }

  /// CSR-style fan-out index: synapse indices ordered by pre neuron.
  /// Built lazily; invalidated by any further synapse addition.
  const std::vector<std::uint32_t>& fanout_offsets() const;
  const std::vector<std::uint32_t>& fanout_synapses() const;

 private:
  GroupId add_group(Group g);
  void check_group(GroupId g) const;
  void invalidate_index() noexcept { index_built_ = false; }
  void build_index() const;

  std::vector<Group> groups_;
  std::vector<Synapse> synapses_;
  NeuronId next_id_ = 0;
  std::uint16_t max_delay_steps_ = 1;

  mutable bool index_built_ = false;
  mutable std::vector<std::uint32_t> fanout_offsets_;
  mutable std::vector<std::uint32_t> fanout_synapses_;
};

}  // namespace snnmap::snn
