// Domain example 3: interconnect selection.  Given one application, compare
// NoC-tree (CxQuad-style), NoC-mesh (TrueNorth/HiCANN-style), a ring, and
// the scale-out dragonfly / fat-tree fabrics on identical crossbar
// resources — the "different interconnect models for representative
// neuromorphic hardware" that Noxim++ adds (Sec. IV).
//
//   ./build/examples/arch_explorer [app]      (default: HW)
#include <iostream>
#include <string>

#include "apps/registry.hpp"
#include "core/framework.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace snnmap;

  const std::string app = argc > 1 ? argv[1] : "HW";
  if (!apps::is_known_app(app)) {
    std::cerr << "unknown app '" << app << "' (try HW, IS, HD, HE, 2x200)\n";
    return 1;
  }
  const snn::SnnGraph graph = apps::build_app(app, /*seed=*/21);
  std::cout << "App " << app << ": " << graph.neuron_count() << " neurons, "
            << graph.total_spikes() << " spikes\n\n";

  util::Table table({"interconnect", "global E (uJ)", "avg latency (cycles)",
                     "max latency", "disorder (%)", "throughput (AER/ms)"});
  for (const auto kind :
       {hw::InterconnectKind::kTree, hw::InterconnectKind::kMesh,
        hw::InterconnectKind::kRing, hw::InterconnectKind::kDragonfly,
        hw::InterconnectKind::kFattree}) {
    core::MappingFlowConfig flow;
    flow.arch = hw::Architecture::sized_for(graph.neuron_count(), 64, kind);
    flow.partitioner = core::PartitionerKind::kPso;
    flow.pso.swarm_size = 40;
    flow.pso.iterations = 40;
    const core::MappingReport report = core::run_mapping_flow(graph, flow);
    table.begin_row();
    table.cell(std::string(hw::to_string(kind)));
    table.cell(report.global_energy_pj * 1e-6, 3);
    table.cell(report.noc_stats.latency_cycles.mean(), 1);
    table.cell(static_cast<std::size_t>(report.noc_stats.max_latency_cycles));
    table.cell(report.snn_metrics.disorder_percent(), 3);
    table.cell(report.noc_stats.throughput_aer_per_ms(
                   flow.arch.cycles_per_ms), 2);
  }
  std::cout << table.to_ascii();
  return 0;
}
