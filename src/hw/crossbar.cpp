#include "hw/crossbar.hpp"

namespace snnmap::hw {

bool Crossbar::add_neuron(std::uint32_t neuron) {
  if (full()) return false;
  neurons_.push_back(neuron);
  return true;
}

}  // namespace snnmap::hw
