// Fixture: subsystem calls on the hot path without their hoisted gates.
namespace fixture {

struct Engine {
  void step() {
    if (verbose_) {
      tracer_.record(now_, 1, 2, 3, 4);  // gated, but on the wrong flag
    }
    if (fault_model_.draw_drop()) {  // consults the mask ungated
      drops_++;
    }
  }

  bool verbose_ = false;
  FaultModel fault_model_;
  Tracer tracer_;
  unsigned long long now_ = 0;
  unsigned drops_ = 0;
};

}  // namespace fixture
