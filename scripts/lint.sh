#!/usr/bin/env bash
# Static-analysis gate, three parts (see README "Static analysis"):
#   1. snnmap-lint  — repo-specific determinism/contract rules
#                     (tools/lint/snnmap_lint.py; always runs, hard fail).
#   2. clang-tidy   — bugprone/concurrency/performance checks over src/,
#                     driven off the build tree's compile_commands.json
#                     (CMAKE_EXPORT_COMPILE_COMMANDS is ON by default).
#   3. clang-format — check-only style verification (never reformats).
# Parts 2 and 3 are skipped with a notice when the toolchain lacks the
# binary (or with SKIP_TIDY=1 / SKIP_FORMAT=1), so the gate degrades to the
# snnmap-lint rules instead of failing on a minimal container.
#
#   scripts/lint.sh                 run all parts
#   scripts/lint.sh --format-check  run only the clang-format check
set -euo pipefail
cd "$(dirname "$0")/.."

PYTHON=${PYTHON:-python3}
BUILD_DIR=${LINT_BUILD_DIR:-build}
status=0

cpp_files() {
  # Fixture snippets under tools/lint/tests are deliberate rule violations;
  # everything else that is first-party C++ is in scope.
  find src tests bench examples tools \
    \( -name '*.cpp' -o -name '*.hpp' \) -not -path 'tools/lint/tests/*' \
    | sort
}

run_format_check() {
  if [[ "${SKIP_FORMAT:-0}" == "1" ]]; then
    echo "note: SKIP_FORMAT=1 - skipping clang-format check"
    return 0
  fi
  if ! command -v clang-format >/dev/null 2>&1; then
    echo "note: clang-format not found - skipping format check"
    return 0
  fi
  echo "=== lint: clang-format (check-only) ==="
  if ! cpp_files | xargs clang-format --dry-run -Werror; then
    echo "clang-format: style drift (fix by hand or run clang-format -i" \
         "on the files you touched; no bulk reformats)" >&2
    return 1
  fi
}

run_snnmap_lint() {
  echo "=== lint: snnmap-lint ==="
  "$PYTHON" tools/lint/snnmap_lint.py
}

run_clang_tidy() {
  if [[ "${SKIP_TIDY:-0}" == "1" ]]; then
    echo "note: SKIP_TIDY=1 - skipping clang-tidy"
    return 0
  fi
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "note: clang-tidy not found - skipping clang-tidy"
    return 0
  fi
  echo "=== lint: clang-tidy ==="
  if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  fi
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p "$BUILD_DIR" 'src/.*\.cpp$'
  else
    find src -name '*.cpp' | sort \
      | xargs -n 8 -P "$(nproc)" clang-tidy -quiet -p "$BUILD_DIR"
  fi
}

if [[ "${1:-}" == "--format-check" ]]; then
  run_format_check
  exit $?
fi

run_snnmap_lint || status=1
run_clang_tidy || status=1
run_format_check || status=1
if [[ $status -ne 0 ]]; then
  echo "lint: FAILED" >&2
fi
exit $status
