#include "core/genetic.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/batch_eval.hpp"
#include "core/neutrams.hpp"
#include "core/pacman.hpp"
#include "util/rng.hpp"

namespace snnmap::core {
namespace {

using Genome = std::vector<CrossbarId>;

/// Moves overflow genes to the emptiest feasible crossbar (cheap repair; the
/// GA relies on selection pressure more than on smart repair).
void repair(Genome& g, const hw::Architecture& arch, util::Rng& rng) {
  const std::uint32_t c = arch.crossbar_count;
  std::vector<std::uint32_t> occ(c, 0);
  for (const CrossbarId k : g) ++occ[k];
  for (std::uint32_t i = 0; i < g.size(); ++i) {
    if (occ[g[i]] <= arch.neurons_per_crossbar) continue;
    // Pick the least-occupied crossbar (random tie-break).
    CrossbarId best = 0;
    std::uint32_t ties = 0;
    for (CrossbarId k = 0; k < c; ++k) {
      if (occ[k] < occ[best]) {
        best = k;
        ties = 1;
      } else if (occ[k] == occ[best]) {
        ++ties;
        if (rng.below(ties) == 0) best = k;
      }
    }
    --occ[g[i]];
    g[i] = best;
    ++occ[best];
  }
}

}  // namespace

GeneticResult genetic_partition(const snn::SnnGraph& graph,
                                const hw::Architecture& arch,
                                const GeneticConfig& config) {
  if (!arch.fits(graph.neuron_count())) {
    throw std::invalid_argument("genetic_partition: network does not fit");
  }
  if (config.population < 2) {
    throw std::invalid_argument("genetic_partition: population must be >= 2");
  }
  util::Rng rng(config.seed);
  BatchEvaluator evaluator(graph, config.threads, config.population);
  const std::uint32_t n = graph.neuron_count();
  const std::uint32_t c = arch.crossbar_count;

  std::vector<Genome> population(config.population);
  for (auto& g : population) {
    g.resize(n);
    for (auto& gene : g) gene = static_cast<CrossbarId>(rng.below(c));
    repair(g, arch, rng);
  }
  if (config.seed_with_baselines) {
    population[0] = pacman_partition(graph, arch).assignment();
    population[1] = neutrams_partition(graph, arch).assignment();
  }

  GeneticResult result;
  std::vector<std::uint64_t> fitness(config.population);
  Genome best;
  std::uint64_t best_cost = ~0ULL;

  const auto tournament_pick = [&]() -> std::size_t {
    std::size_t winner = static_cast<std::size_t>(rng.below(population.size()));
    for (std::uint32_t t = 1; t < config.tournament; ++t) {
      const std::size_t rival =
          static_cast<std::size_t>(rng.below(population.size()));
      if (fitness[rival] < fitness[winner]) winner = rival;
    }
    return winner;
  };

  for (std::uint32_t gen = 0; gen < config.generations; ++gen) {
    evaluator.evaluate(population, config.objective, fitness);
    result.fitness_evaluations += population.size();
    for (std::size_t i = 0; i < population.size(); ++i) {
      if (fitness[i] < best_cost) {
        best_cost = fitness[i];
        best = population[i];
      }
    }
    if (config.track_history) result.history.push_back(best_cost);
    result.generations_run = gen + 1;
    if (gen + 1 == config.generations) break;

    std::vector<Genome> next;
    next.reserve(population.size());
    next.push_back(best);  // elitism
    while (next.size() < population.size()) {
      Genome child = population[tournament_pick()];
      if (rng.chance(config.crossover_rate)) {
        const Genome& other = population[tournament_pick()];
        for (std::uint32_t i = 0; i < n; ++i) {
          if (rng.chance(0.5)) child[i] = other[i];
        }
      }
      for (std::uint32_t i = 0; i < n; ++i) {
        if (rng.chance(config.mutation_rate)) {
          child[i] = static_cast<CrossbarId>(rng.below(c));
        }
      }
      repair(child, arch, rng);
      next.push_back(std::move(child));
    }
    population = std::move(next);
  }

  result.best = Partition(n, c);
  for (std::uint32_t i = 0; i < n; ++i) result.best.assign(i, best[i]);
  result.best.validate(arch);
  result.best_cost = best_cost;
  return result;
}

}  // namespace snnmap::core
