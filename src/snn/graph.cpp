#include "snn/graph.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace snnmap::snn {

SnnGraph SnnGraph::from_simulation(const Network& network,
                                   const SimulationResult& result) {
  if (result.spikes.size() != network.neuron_count()) {
    throw std::invalid_argument(
        "SnnGraph: simulation result does not match network size");
  }
  // Collapse parallel synapses; traffic depends only on (pre, post) pairs.
  std::map<std::pair<NeuronId, NeuronId>, double> collapsed;
  for (const auto& s : network.synapses()) {
    collapsed[{s.pre, s.post}] += static_cast<double>(s.weight);
  }
  std::vector<GraphEdge> edges;
  edges.reserve(collapsed.size());
  for (const auto& [key, w] : collapsed) {
    edges.push_back({key.first, key.second, static_cast<float>(w)});
  }
  std::vector<std::string> names;
  std::vector<std::uint32_t> firsts;
  for (const auto& g : network.groups()) {
    names.push_back(g.name);
    firsts.push_back(g.first);
  }
  firsts.push_back(network.neuron_count());
  return from_parts(network.neuron_count(), std::move(edges), result.spikes,
                    result.duration_ms, std::move(names), std::move(firsts));
}

SnnGraph SnnGraph::from_parts(std::uint32_t neuron_count,
                              std::vector<GraphEdge> edges,
                              std::vector<SpikeTrain> spike_times,
                              TimeMs duration_ms,
                              std::vector<std::string> group_names,
                              std::vector<std::uint32_t> group_first) {
  SnnGraph g;
  g.neuron_count_ = neuron_count;
  g.edges_ = std::move(edges);
  g.spikes_ = std::move(spike_times);
  g.duration_ms_ = duration_ms;
  g.group_names_ = std::move(group_names);
  g.group_first_ = std::move(group_first);
  if (g.spikes_.size() != neuron_count) {
    throw std::invalid_argument("SnnGraph: spike train count != neuron count");
  }
  g.total_spikes_ = 0;
  for (const auto& t : g.spikes_) g.total_spikes_ += t.size();
  g.validate();
  g.build_fanout();
  return g;
}

void SnnGraph::validate() const {
  for (const auto& e : edges_) {
    if (e.pre >= neuron_count_ || e.post >= neuron_count_) {
      throw std::invalid_argument("SnnGraph: edge endpoint out of range");
    }
  }
  for (const auto& t : spikes_) {
    if (!is_valid_train(t)) {
      throw std::invalid_argument("SnnGraph: unsorted or negative spike train");
    }
  }
  if (!group_first_.empty()) {
    if (group_first_.size() != group_names_.size() + 1 ||
        group_first_.back() != neuron_count_) {
      throw std::invalid_argument("SnnGraph: malformed group annotations");
    }
  }
}

void SnnGraph::build_fanout() {
  // Distinct (pre -> post) targets, CSR over pre.
  std::vector<std::pair<NeuronId, NeuronId>> pairs;
  pairs.reserve(edges_.size());
  for (const auto& e : edges_) pairs.emplace_back(e.pre, e.post);
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  fanout_offsets_.assign(neuron_count_ + 1, 0);
  for (const auto& [pre, post] : pairs) ++fanout_offsets_[pre + 1];
  for (std::size_t i = 1; i < fanout_offsets_.size(); ++i) {
    fanout_offsets_[i] += fanout_offsets_[i - 1];
  }
  fanout_targets_.resize(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    fanout_targets_[i] = pairs[i].second;  // pairs already sorted by pre
  }
}

double SnnGraph::mean_rate_hz() const noexcept {
  if (neuron_count_ == 0 || duration_ms_ <= 0.0) return 0.0;
  return static_cast<double>(total_spikes_) /
         static_cast<double>(neuron_count_) / duration_ms_ * 1000.0;
}

void SnnGraph::save(std::ostream& out) const {
  out << "snngraph 1\n";
  out << neuron_count_ << ' ' << edges_.size() << ' ' << duration_ms_ << '\n';
  out << group_names_.size() << '\n';
  for (std::size_t g = 0; g < group_names_.size(); ++g) {
    out << group_first_[g] << ' ' << group_names_[g] << '\n';
  }
  for (const auto& e : edges_) {
    out << e.pre << ' ' << e.post << ' ' << e.weight << '\n';
  }
  for (const auto& train : spikes_) {
    out << train.size();
    for (double t : train) out << ' ' << t;
    out << '\n';
  }
}

SnnGraph SnnGraph::load(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "snngraph" || version != 1) {
    throw std::runtime_error("SnnGraph: bad header");
  }
  std::uint32_t n = 0;
  std::size_t e = 0;
  TimeMs duration = 0.0;
  if (!(in >> n >> e >> duration)) {
    throw std::runtime_error("SnnGraph: bad size line");
  }
  std::size_t ngroups = 0;
  in >> ngroups;
  std::vector<std::string> names(ngroups);
  std::vector<std::uint32_t> firsts(ngroups);
  for (std::size_t g = 0; g < ngroups; ++g) {
    in >> firsts[g];
    in >> std::ws;
    std::getline(in, names[g]);
  }
  if (ngroups) firsts.push_back(n);
  std::vector<GraphEdge> edges(e);
  for (auto& edge : edges) {
    if (!(in >> edge.pre >> edge.post >> edge.weight)) {
      throw std::runtime_error("SnnGraph: truncated edge list");
    }
  }
  std::vector<SpikeTrain> trains(n);
  for (auto& train : trains) {
    std::size_t count = 0;
    if (!(in >> count)) throw std::runtime_error("SnnGraph: truncated trains");
    train.resize(count);
    for (auto& t : train) {
      if (!(in >> t)) throw std::runtime_error("SnnGraph: truncated train");
    }
  }
  return from_parts(n, std::move(edges), std::move(trains), duration,
                    std::move(names), std::move(firsts));
}

void SnnGraph::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("SnnGraph: cannot open " + path);
  save(out);
  if (!out) throw std::runtime_error("SnnGraph: write failed for " + path);
}

SnnGraph SnnGraph::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("SnnGraph: cannot open " + path);
  return load(in);
}

}  // namespace snnmap::snn
