// "hello world" (HW) — CARLsim's introductory network, Table I:
// feedforward (117, 9).  117 Izhikevich regular-spiking neurons, each driven
// one-to-one by a Poisson source (rates spread over 10-50 Hz), feeding a
// fully connected 9-neuron output layer — a 13x9 "pixel grid to detectors"
// toy, rate coded.
#pragma once

#include <cstdint>

#include "snn/graph.hpp"
#include "snn/network.hpp"
#include "snn/simulator.hpp"

namespace snnmap::apps {

struct HelloWorldConfig {
  std::uint64_t seed = 1;
  double duration_ms = 500.0;
};

/// Builds, simulates and extracts the spike graph.
snn::SnnGraph build_hello_world(const HelloWorldConfig& config = {});

/// The network the graph builder simulates (closed-loop co-simulation
/// entry point) and the simulation config that extraction uses.
snn::Network build_hello_world_network(const HelloWorldConfig& config = {});
snn::SimulationConfig hello_world_sim_config(const HelloWorldConfig& config = {});

}  // namespace snnmap::apps
