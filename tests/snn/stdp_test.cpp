#include "snn/stdp.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace snnmap::snn {
namespace {

TEST(Stdp, PotentiationDecaysExponentially) {
  StdpParams p;
  EXPECT_DOUBLE_EQ(stdp_potentiation(p, 0.0), p.a_plus);
  EXPECT_NEAR(stdp_potentiation(p, p.tau_plus_ms),
              p.a_plus * std::exp(-1.0), 1e-12);
  EXPECT_GT(stdp_potentiation(p, 5.0), stdp_potentiation(p, 10.0));
}

TEST(Stdp, DepressionDecaysExponentially) {
  StdpParams p;
  EXPECT_DOUBLE_EQ(stdp_depression(p, 0.0), p.a_minus);
  EXPECT_NEAR(stdp_depression(p, p.tau_minus_ms),
              p.a_minus * std::exp(-1.0), 1e-12);
}

TEST(Stdp, NegativeDtContributesNothing) {
  StdpParams p;
  EXPECT_EQ(stdp_potentiation(p, -1.0), 0.0);
  EXPECT_EQ(stdp_depression(p, -1.0), 0.0);
}

TEST(Stdp, PostAfterPrePotentiates) {
  StdpParams p;
  const double w = stdp_update_on_post(p, 1.0, /*last_pre=*/95.0,
                                       /*now=*/100.0);
  EXPECT_GT(w, 1.0);
  EXPECT_NEAR(w - 1.0, p.a_plus * std::exp(-5.0 / p.tau_plus_ms), 1e-12);
}

TEST(Stdp, PreAfterPostDepresses) {
  StdpParams p;
  const double w = stdp_update_on_pre(p, 1.0, /*last_post=*/95.0,
                                      /*now=*/100.0);
  EXPECT_LT(w, 1.0);
  EXPECT_NEAR(1.0 - w, p.a_minus * std::exp(-5.0 / p.tau_minus_ms), 1e-12);
}

TEST(Stdp, NeverFiredPartnerLeavesWeightUnchanged) {
  StdpParams p;
  EXPECT_EQ(stdp_update_on_post(p, 2.0, -1.0, 100.0), 2.0);
  EXPECT_EQ(stdp_update_on_pre(p, 2.0, -1.0, 100.0), 2.0);
}

TEST(Stdp, WeightsClampToBounds) {
  StdpParams p;
  p.w_min = 0.0;
  p.w_max = 1.0;
  p.a_plus = 10.0;   // huge updates to force clamping
  p.a_minus = 10.0;
  EXPECT_EQ(stdp_update_on_post(p, 0.9, 99.0, 100.0), 1.0);
  EXPECT_EQ(stdp_update_on_pre(p, 0.1, 99.0, 100.0), 0.0);
}

TEST(Stdp, CloserPairsChangeMore) {
  StdpParams p;
  const double near_w = stdp_update_on_post(p, 1.0, 99.0, 100.0);
  const double far_w = stdp_update_on_post(p, 1.0, 50.0, 100.0);
  EXPECT_GT(near_w, far_w);
}

}  // namespace
}  // namespace snnmap::snn
