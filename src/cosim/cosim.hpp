// Closed-loop SNN x NoC co-simulation.
//
// The open-loop flow (core/framework.hpp, Fig. 4) simulates the SNN in
// isolation, flattens its spikes into an AER trace, and replays that trace
// through the NoC — so interconnect latency, congestion, and back-pressure
// never affect when a spike actually *arrives* at its post-synaptic
// crossbar.  The co-simulator closes that loop: it advances the SNN and the
// NoC in lockstep windows of `cycles_per_timestep` interconnect cycles per
// SNN step, so a mapping's congestion becomes a *behavioral* outcome
// (stretched effective synaptic delays, and — under a bounded receive
// queue — dropped spikes) instead of a latency statistic.
//
// Lockstep contract (one SNN step t):
//   1. The SNN integrates step t with deliveries deferred
//      (snn::Simulator::step_deferred).
//   2. Each spiking neuron with cross-crossbar fan-out becomes one AER
//      multicast packet, injected at cycle t * cycles_per_timestep (plus
//      optional deterministic encoder jitter).
//   3. The NoC advances to cycle (t + 1) * cycles_per_timestep
//      (noc::NocSimulator::run_until); flits that do not arrive keep
//      flowing in later windows.
//   4. Each delivery converts back to synaptic arrivals on the destination
//      crossbar: a copy received during window t' applies its fan-out
//      records at step t' + delay — i.e. NoC transit beyond the emission
//      window stretches the effective synaptic delay by (t' - t) steps.
//      In-window arrivals (t' == t) keep their exact local timing, so an
//      ideal interconnect (every packet lands in-step, drops disabled)
//      reproduces the standalone snn::Simulator run bit for bit.
//   5. Under a bounded receive queue, a destination crossbar accepts at
//      most `receive_queue_depth` packet copies per window; the excess is
//      dropped — those synaptic events never happen.
//
// Everything is deterministic: the SNN's RNG stream is untouched by
// transport, NoC arbitration is deterministic, and drops follow the
// delivery-log order, so batch fan-out (core::BatchCoSimEvaluator) is
// bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/partition.hpp"
#include "core/placement.hpp"
#include "core/runtime_remap.hpp"
#include "cosim/fidelity.hpp"
#include "hw/architecture.hpp"
#include "noc/simulator.hpp"
#include "snn/graph.hpp"
#include "snn/network.hpp"
#include "snn/simulator.hpp"

namespace snnmap::cosim {

/// receive_queue_depth value disabling the bounded receive queue.
inline constexpr std::uint32_t kUnboundedReceiveQueue =
    static_cast<std::uint32_t>(-1);

/// How the co-simulator rescales the fabric frequency (the per-window
/// cycle budget) between lockstep windows.
enum class DvfsPolicyKind : std::uint8_t {
  kFixed,                 ///< nominal cycles_per_timestep every window
  kUtilizationThreshold,  ///< slow when the fabric idles, speed when busy
  kDeadlineSlack,         ///< slow on slack; snap to nominal on any miss
};

const char* to_string(DvfsPolicyKind kind) noexcept;
/// Parses "fixed" / "utilization-threshold" / "deadline-slack"; throws
/// std::invalid_argument on unknown names.
DvfsPolicyKind dvfs_policy_from_string(const std::string& name);

/// Per-window dynamic frequency scaling of the interconnect fabric.  The
/// policy observes the previous window (busy fraction from the NoC's
/// WindowEnergySample, deadline misses, end-of-window backlog) and picks
/// the next window's frequency as a scale of the nominal
/// cycles_per_timestep, stepping x2 / /2 within [min_scale, 1].  Slower
/// windows carry fewer cycles, so packets take more *steps* to arrive —
/// the energy saving (hw::EnergyModel::dvfs_energy_scale) is bought with
/// transit stretch, which the fidelity report prices via the energy-delay
/// product.  Everything is deterministic: decisions depend only on the
/// deterministic simulation state.
struct DvfsPolicy {
  DvfsPolicyKind kind = DvfsPolicyKind::kFixed;
  /// Frequency floor as a fraction of nominal; must be in (0, 1].
  double min_scale = 0.25;
  /// Utilization-threshold policy: halve the frequency when the previous
  /// window's busy fraction drops below `low_utilization`, double it (up
  /// to nominal) above `high_utilization`.  0 <= low < high <= 1.
  double low_utilization = 0.25;
  double high_utilization = 0.75;
  /// Deadline-slack policy: halve the frequency when the previous window
  /// ended drained with an idle fraction of at least `slack_fraction`;
  /// any deadline miss, receive drop, or end-of-window backlog snaps the
  /// fabric back to nominal.  Must be in [0, 1].
  double slack_fraction = 0.5;
};

/// AER-boundary retry protocol: the source crossbar keeps a bounded retry
/// entry per (packet, destination) copy that failed to land within its
/// emission window, retransmits with exponential backoff, and abandons the
/// delivery after a timeout (the lost synaptic events are accounted in
/// ResilienceReport::spikes_lost_timeout).  Retransmits re-enter the fabric
/// as fresh packets carrying the *original* emission step, so an arrival is
/// always matched back to the spike it carries; the receiver discards
/// duplicates (original + retry both arriving) and stale copies (arriving
/// after the source gave up).  Disabled by default — the PR 5 lockstep
/// behavior is bit-identical when `enabled` is false.
struct AerRetryConfig {
  bool enabled = false;
  /// Retransmits attempted per (packet, destination) copy; >= 1 when
  /// enabled (a retry protocol that never retries is a misconfiguration).
  std::uint32_t max_retries = 3;
  /// Windows before the first retransmit; doubles per attempt
  /// (backoff, 2*backoff, 4*backoff, ...).  Must be >= 1 when enabled.
  std::uint32_t backoff_windows = 1;
  /// Windows a retry entry stays open before the delivery is declared
  /// lost.  Must be >= 1 when enabled.
  std::uint32_t timeout_windows = 8;
};

/// Remap-on-failure graceful degradation: when a tile (crossbar) dies
/// mid-run — a scheduled/rated router or tile fault — the co-simulator
/// evacuates the dead crossbar's neurons through core::RuntimeRemapper
/// (forced migration onto live crossbars, chosen by observed-traffic AER
/// cost), rebuilds the transport tables, and re-cuts the SNN engine, all
/// between lockstep steps.  Disabled by default.
struct FailureRemapPolicy {
  bool enabled = false;
  /// Crossbar capacity model the evacuation migrates within (crossbar
  /// count and neurons_per_crossbar must cover the mapped partition).
  hw::Architecture arch;
  /// Remapper tuning; evacuation itself ignores the migration budget
  /// (forced moves), but the seed feeds the remapper's RNG stream.
  core::RemapConfig remap;
};

struct CoSimConfig {
  /// SNN step engine settings (dt, duration, seed, synapse model, STDP).
  snn::SimulationConfig snn;
  /// Interconnect settings.  collect_delivered is forced on — the closed
  /// loop *is* a consumer of the delivery log — and max_cycles is raised
  /// (never lowered) to cover the run's whole lockstep timeline of
  /// steps x cycles_per_timestep virtual cycles, so it stays a safety
  /// bound rather than a mid-run cliff.
  noc::NocConfig noc;
  /// Interconnect cycles budgeted per SNN timestep (the time-multiplexing
  /// ratio; hw::Architecture::cycles_per_ms * dt_ms for a 1 ms step).
  /// Shrinking it models a slower fabric: packets start missing their
  /// emission window and spike timing degrades.
  std::uint32_t cycles_per_timestep = 1000;
  /// Packet copies a destination crossbar accepts per window before
  /// dropping (kUnboundedReceiveQueue = never drop).  0 is invalid: a
  /// crossbar that can never accept a packet is not a queue but a wall.
  std::uint32_t receive_queue_depth = kUnboundedReceiveQueue;
  /// Spread same-step injections over [0, jitter) cycles with a
  /// deterministic per-spike hash (encoder serialization); must stay below
  /// cycles_per_timestep so a spike is offered within its own window.
  /// DVFS windows are clamped to at least jitter + 1 cycles so the
  /// guarantee survives frequency scaling.
  std::uint32_t injection_jitter_cycles = 0;
  /// Per-window fabric frequency scaling (fixed = the PR 4 behavior).
  DvfsPolicy dvfs;
  /// AER-boundary retry protocol (off = PR 5 behavior, bit for bit).
  AerRetryConfig retry;
  /// Mid-run evacuation of failed crossbars (off = PR 5 behavior).
  FailureRemapPolicy failure_remap;
};

/// Everything one closed-loop run produces.
struct CoSimResult {
  snn::SimulationResult snn;  ///< spike trains under congested delivery
  FidelityReport fidelity;
  ResilienceReport resilience;  ///< fault / retry / remap accounting
  noc::NocStats noc;          ///< conventional interconnect statistics
  /// Observability capture (all empty/zero with the default NocConfig:
  /// tracing off, monitor off).  The trace stream interleaves the fabric's
  /// flit-lifecycle events with the co-simulator's protocol events (DVFS
  /// window decisions, AER retries, remap triggers) on the shared cycle
  /// clock; `trace_digest` covers every recorded event even after ring
  /// eviction.
  std::vector<obs::TraceEvent> trace;
  std::uint64_t trace_digest = 0;
  std::uint64_t trace_recorded = 0;
  obs::MetricsSnapshot metrics;
};

/// One closed-loop co-simulation instance over a mapped network.
///
/// The mapping (partition + placement) decides which synapses are
/// "remote-cut": a synapse whose pre and post neurons live on different
/// crossbars is carried by the NoC instead of delivered locally
/// (snn::Simulator::cut_remote_synapses).  Plastic synapses must stay
/// crossbar-local (the engine throws otherwise).
class CoSimulator {
 public:
  /// Validates the config (throws std::invalid_argument on
  /// cycles_per_timestep == 0, receive_queue_depth == 0, jitter >=
  /// cycles_per_timestep, and — via the sub-simulators — NaN/negative
  /// durations and degenerate NoC configs) and the mapping (incomplete
  /// partition, size mismatches, out-of-range or duplicate tiles).
  CoSimulator(snn::Network& network, const core::Partition& partition,
              const core::Placement& placement, noc::Topology topology,
              CoSimConfig config);

  /// Runs the whole lockstep loop (ceil(duration / dt) steps, like
  /// snn::Simulator::run) and returns trains + fidelity + NoC stats.
  /// One-shot — the SNN engine's state is consumed; a second call throws
  /// std::logic_error.
  CoSimResult run();

  /// The *effective* configuration: `noc.collect_delivered` forced on and
  /// `noc.max_cycles` raised to the lockstep timeline, exactly as the
  /// internal NocSimulator runs it.
  const CoSimConfig& config() const noexcept { return config_; }
  std::uint64_t total_steps() const noexcept { return steps_; }

 private:
  /// (Re)derives every transport table from `partition_` + `placement_`
  /// and re-cuts the SNN engine.  Called once at construction and again
  /// after each mid-run evacuation (legal between closed steps only).
  void rebuild_mapping();

  CoSimConfig config_;
  snn::Network* network_;  // outlives the co-simulator (ctor contract)
  snn::Simulator sim_;
  noc::NocSimulator noc_;
  std::uint64_t steps_ = 0;
  bool ran_ = false;

  // Live mapping (mutated by remap-on-failure) + remap machinery.
  core::Partition partition_;
  core::Placement placement_;
  std::vector<core::CrossbarId> tile_crossbar_;  // tile -> crossbar or -1
  std::vector<snn::GraphEdge> graph_edges_;      // cached for remap traffic
  std::optional<core::RuntimeRemapper> remapper_;

  // Per-neuron mapping tables, all in the Network's fan-out (CSR) order so
  // the verdict stream aligns with the engine's cut-record enumeration.
  std::vector<noc::TileId> source_tile_;     // neuron -> home tile
  std::vector<std::uint32_t> remote_offsets_;  // neuron -> cut-record range
  std::vector<noc::TileId> remote_tile_;       // per cut record
  std::vector<snn::NeuronId> remote_post_;
  std::vector<float> remote_weight_;
  std::vector<std::uint16_t> remote_delay_;
  std::vector<std::uint32_t> dest_offsets_;  // neuron -> distinct dest tiles
  std::vector<noc::TileId> dest_tiles_;      // sorted per neuron
};

}  // namespace snnmap::cosim
