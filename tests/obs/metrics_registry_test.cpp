#include "obs/metrics_registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace snnmap::obs {
namespace {

TEST(MetricsRegistry, CounterAccumulates) {
  MetricsRegistry reg;
  const auto id = reg.counter("noc.flits_injected");
  EXPECT_EQ(reg.value(id), 0u);
  reg.add(id);
  reg.add(id, 41);
  EXPECT_EQ(reg.value(id), 42u);
}

TEST(MetricsRegistry, GaugeIsLastWriteWins) {
  MetricsRegistry reg;
  const auto id = reg.gauge("noc.link.max_flits");
  reg.set(id, 100);
  reg.set(id, 7);
  EXPECT_EQ(reg.value(id), 7u);
}

TEST(MetricsRegistry, HistogramBucketsObservations) {
  MetricsRegistry reg;
  const auto id = reg.histogram("noc.window.peak", {10, 100, 1000});
  reg.observe(id, 5);     // <= 10
  reg.observe(id, 10);    // <= 10 (inclusive upper bound)
  reg.observe(id, 50);    // <= 100
  reg.observe(id, 5000);  // overflow
  const MetricsSnapshot snap = reg.snapshot();
  const MetricSample* s = snap.find("noc.window.peak");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, MetricKind::kHistogram);
  EXPECT_EQ(s->value, 4u);  // observation count
  ASSERT_EQ(s->hist.counts.size(), 4u);
  EXPECT_EQ(s->hist.counts[0], 2u);
  EXPECT_EQ(s->hist.counts[1], 1u);
  EXPECT_EQ(s->hist.counts[2], 0u);
  EXPECT_EQ(s->hist.counts[3], 1u);
  EXPECT_EQ(s->hist.total, 4u);
  EXPECT_EQ(s->hist.sum, 5u + 10u + 50u + 5000u);
}

TEST(MetricsRegistry, ReRegistrationReturnsSameId) {
  MetricsRegistry reg;
  const auto a = reg.counter("x");
  const auto b = reg.counter("x");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x", {1}), std::invalid_argument);
}

TEST(MetricsRegistry, HistogramBoundsMustBeStrictlyIncreasing) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("h", {}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("h", {5, 5}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("h", {5, 3}), std::invalid_argument);
  const auto id = reg.histogram("h", {1, 2, 3});
  // Re-registering with different bounds is a config clash.
  EXPECT_THROW(reg.histogram("h", {1, 2}), std::invalid_argument);
  EXPECT_EQ(reg.histogram("h", {1, 2, 3}), id);
}

TEST(MetricsRegistry, EmptyNameThrows) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.counter(""), std::invalid_argument);
}

TEST(MetricsRegistry, WrongKindOperationThrows) {
  MetricsRegistry reg;
  const auto c = reg.counter("c");
  const auto g = reg.gauge("g");
  EXPECT_THROW(reg.set(c, 1), std::invalid_argument);
  EXPECT_THROW(reg.add(g, 1), std::invalid_argument);
  EXPECT_THROW(reg.observe(c, 1), std::invalid_argument);
}

TEST(MetricsRegistry, ResetValuesKeepsRegistrations) {
  MetricsRegistry reg;
  const auto c = reg.counter("c");
  const auto h = reg.histogram("h", {10});
  reg.add(c, 5);
  reg.observe(h, 3);
  reg.reset_values();
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.value(c), 0u);
  const MetricsSnapshot snap = reg.snapshot();
  const MetricSample* s = snap.find("h");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->hist.total, 0u);
  EXPECT_EQ(s->hist.sum, 0u);
  EXPECT_EQ(s->hist.counts[0], 0u);
}

TEST(MetricsRegistry, SnapshotIsSortedByName) {
  MetricsRegistry reg;
  reg.counter("zeta");
  reg.counter("alpha");
  reg.gauge("mid");
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_EQ(snap.samples[0].name, "alpha");
  EXPECT_EQ(snap.samples[1].name, "mid");
  EXPECT_EQ(snap.samples[2].name, "zeta");
  EXPECT_EQ(snap.find("missing"), nullptr);
}

}  // namespace
}  // namespace snnmap::obs
