// Binary particle swarm optimization for SNN partitioning — Sec. III.
//
// Dimensions are the paper's x_{i,k} allocation variables (D = N * C).
// Velocities update per Eq. 1 (with an inertia weight and per-component
// random scaling of the cognitive/social terms, the standard Eberhart-
// Kennedy instantiation the paper cites); positions binarize through the
// sigmoid rule of Eqs. 2-3.  Raw binarized positions rarely satisfy the
// constraints, so two repair operators run after every update:
//   1. one-hot repair (Eq. 4): per neuron, keep exactly one set bit —
//      sampled proportionally to the sigmoid probabilities;
//   2. capacity repair (Eq. 5): overflow neurons migrate to the crossbar
//      with free space that least increases the fitness.
// The swarm can be seeded with the PACMAN/NEUTRAMS baseline solutions
// (memetic seeding, on by default): the paper reports PSO always at or
// below both baselines, which seeding guarantees by construction.
// Per-iteration fitness evaluation of the whole swarm fans out over a
// BatchEvaluator worker pool (PsoConfig::threads); all randomness stays on
// the caller's thread, so results are identical at any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "core/batch_eval.hpp"
#include "core/cost.hpp"
#include "core/partition.hpp"
#include "hw/architecture.hpp"
#include "snn/graph.hpp"
#include "util/rng.hpp"

namespace snnmap::core {

struct PsoConfig {
  std::uint32_t swarm_size = 100;   ///< np (paper explores 10..1000, Fig. 7)
  std::uint32_t iterations = 100;   ///< fixed to 100 in the paper
  double inertia = 0.72;            ///< velocity memory (omega)
  double phi1 = 1.49;               ///< cognitive constant
  double phi2 = 1.49;               ///< social constant
  double v_max = 4.0;               ///< velocity clamp (sigmoid saturation)
  bool seed_with_baselines = true;  ///< include PACMAN/NEUTRAMS particles
  /// Fitness definition (see Objective); AER packets by default.
  Objective objective = Objective::kAerPackets;
  /// Memetic local search: whenever the swarm best improves, run up to this
  /// many greedy single-neuron sweeps (incremental AER deltas) on it.  This
  /// is what lets a laptop-budget swarm reach the optima the paper obtained
  /// with 1000 particles x 100 iterations x 35 min on a cloud VM.  0
  /// disables; only applies to the kAerPackets objective.
  std::uint32_t refine_sweeps = 4;
  /// Swap-based refinement attempts per improvement, as a multiple of the
  /// neuron count (swaps escape capacity-blocked local optima; see
  /// IncrementalAerCost::swap_refine).  0 disables.
  std::uint32_t refine_swap_factor = 8;
  std::uint64_t seed = 42;
  /// Worker threads for batch fitness evaluation: 0 = one per hardware
  /// thread, 1 = serial.  Results are identical for every value (all
  /// randomness stays on the caller's thread; see BatchEvaluator).
  std::uint32_t threads = 0;
  bool track_history = false;       ///< record Gbest cost per iteration
  /// Stop early after this many iterations without Gbest improvement
  /// (0 = never stop early; the paper runs a fixed iteration budget).
  std::uint32_t patience = 0;
};

struct PsoResult {
  Partition best;
  std::uint64_t best_cost = 0;          ///< F at the optimum (see objective)
  std::uint32_t iterations_run = 0;
  std::uint64_t fitness_evaluations = 0;
  std::vector<std::uint64_t> history;   ///< Gbest per iteration (if tracked)
};

class PsoPartitioner {
 public:
  PsoPartitioner(const snn::SnnGraph& graph, const hw::Architecture& arch,
                 PsoConfig config);

  /// Runs the swarm and returns the best feasible partition found.
  PsoResult optimize();

 private:
  struct Particle {
    std::vector<float> velocity;        // N * C
    std::vector<CrossbarId> position;   // one-hot as assignment vector
    std::vector<CrossbarId> best_position;
    std::uint64_t best_cost = ~0ULL;
  };

  /// Evaluates every particle's position into costs_ (parallel fan-out).
  void evaluate_swarm(const std::vector<Particle>& swarm);
  void binarize_and_repair(Particle& p, util::Rng& rng);
  void capacity_repair(std::vector<CrossbarId>& assignment, util::Rng& rng);
  std::vector<CrossbarId> random_assignment(util::Rng& rng);

  const snn::SnnGraph& graph_;
  hw::Architecture arch_;
  PsoConfig config_;
  BatchEvaluator evaluator_;
  std::vector<std::uint64_t> costs_;  ///< per-particle fitness scratch
  std::uint64_t evaluations_ = 0;
};

}  // namespace snnmap::core
