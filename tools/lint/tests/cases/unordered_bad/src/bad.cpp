// Fixture: unwaived unordered declarations and iteration walks.
#include <unordered_map>
#include <unordered_set>

namespace fixture {

double sum_energy(const Graph& graph) {
  std::unordered_set<unsigned> remote;
  std::unordered_map<unsigned, double> weights;
  double total = 0.0;
  for (unsigned v : remote) {
    total += weights[v] * 0.5;
  }
  for (auto it = weights.begin(); it != weights.end(); ++it) {
    total += it->second;
  }
  return total;
}

}  // namespace fixture
