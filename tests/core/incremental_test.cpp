#include "core/incremental.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "core/cost.hpp"
#include "core/pacman.hpp"
#include "util/rng.hpp"

namespace snnmap::core {
namespace {

snn::SnnGraph random_graph(std::uint32_t n, double p, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<snn::GraphEdge> edges;
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = 0; b < n; ++b) {
      if (a != b && rng.chance(p)) edges.push_back({a, b, 1.0F});
    }
  }
  std::vector<snn::SpikeTrain> trains(n);
  for (auto& t : trains) {
    const auto count = rng.below(8);
    for (std::uint64_t s = 0; s < count; ++s) {
      t.push_back(static_cast<double>(s) * 3.0);
    }
  }
  return snn::SnnGraph::from_parts(n, std::move(edges), std::move(trains),
                                   50.0);
}

std::vector<CrossbarId> random_assignment(std::uint32_t n, std::uint32_t c,
                                          util::Rng& rng) {
  std::vector<CrossbarId> a(n);
  for (auto& x : a) x = static_cast<CrossbarId>(rng.below(c));
  return a;
}

TEST(IncrementalAerCost, InitialCostMatchesCostModel) {
  const auto g = random_graph(20, 0.2, 1);
  const CostModel cost(g);
  util::Rng rng(2);
  const auto assignment = random_assignment(20, 3, rng);
  IncrementalAerCost inc(g, assignment, 3);
  EXPECT_EQ(inc.cost(), cost.multicast_packet_count(assignment));
}

TEST(IncrementalAerCost, RejectsIncompleteAssignment) {
  const auto g = random_graph(5, 0.3, 3);
  std::vector<CrossbarId> bad(5, 0);
  bad[2] = kUnassigned;
  EXPECT_THROW(IncrementalAerCost(g, bad, 2), std::invalid_argument);
  EXPECT_THROW(IncrementalAerCost(g, {0, 0, 0}, 2), std::invalid_argument);
  EXPECT_THROW(IncrementalAerCost(g, {0, 0, 0, 0, 7}, 2),
               std::invalid_argument);
}

TEST(IncrementalAerCost, MoveDeltaMatchesRecomputation) {
  const auto g = random_graph(16, 0.25, 5);
  const CostModel cost(g);
  util::Rng rng(6);
  auto assignment = random_assignment(16, 4, rng);
  IncrementalAerCost inc(g, assignment, 4);
  for (std::uint32_t neuron = 0; neuron < 16; ++neuron) {
    for (CrossbarId to = 0; to < 4; ++to) {
      const std::int64_t delta = inc.move_delta(neuron, to);
      auto moved = inc.assignment();
      moved[neuron] = to;
      const auto expected =
          static_cast<std::int64_t>(cost.multicast_packet_count(moved)) -
          static_cast<std::int64_t>(cost.multicast_packet_count(
              inc.assignment()));
      EXPECT_EQ(delta, expected) << "neuron " << neuron << " -> " << to;
    }
  }
}

TEST(IncrementalAerCost, ApplyMoveKeepsCostConsistent) {
  const auto g = random_graph(24, 0.2, 7);
  const CostModel cost(g);
  util::Rng rng(8);
  IncrementalAerCost inc(g, random_assignment(24, 3, rng), 3);
  for (int step = 0; step < 200; ++step) {
    const auto neuron = static_cast<std::uint32_t>(rng.below(24));
    const auto to = static_cast<CrossbarId>(rng.below(3));
    inc.apply_move(neuron, to);
    ASSERT_EQ(inc.cost(), cost.multicast_packet_count(inc.assignment()))
        << "after step " << step;
  }
}

TEST(IncrementalAerCost, OccupancyTracksMoves) {
  const auto g = random_graph(9, 0.2, 9);
  IncrementalAerCost inc(g, std::vector<CrossbarId>(9, 0), 3);
  EXPECT_EQ(inc.occupancy(), (std::vector<std::uint32_t>{9, 0, 0}));
  inc.apply_move(0, 1);
  inc.apply_move(1, 2);
  inc.apply_move(2, 2);
  EXPECT_EQ(inc.occupancy(), (std::vector<std::uint32_t>{6, 1, 2}));
}

TEST(IncrementalAerCost, SelfLoopsAreNeverRemote) {
  std::vector<snn::GraphEdge> edges{{0, 0, 1.0F}, {0, 1, 1.0F}};
  std::vector<snn::SpikeTrain> trains{{1.0, 2.0}, {}};
  const auto g =
      snn::SnnGraph::from_parts(2, std::move(edges), std::move(trains), 10.0);
  IncrementalAerCost inc(g, {0, 1}, 2);
  EXPECT_EQ(inc.cost(), 2u);  // only the 0->1 packet stream
  inc.apply_move(1, 0);
  EXPECT_EQ(inc.cost(), 0u);
}

TEST(IncrementalAerCost, GreedyRefineNeverIncreasesCost) {
  const auto g = random_graph(30, 0.15, 11);
  util::Rng rng(12);
  IncrementalAerCost inc(g, random_assignment(30, 4, rng), 4);
  const std::uint64_t before = inc.cost();
  inc.greedy_refine(/*capacity=*/12, /*max_sweeps=*/4);
  EXPECT_LE(inc.cost(), before);
}

TEST(IncrementalAerCost, GreedyRefineRespectsCapacity) {
  // Starting from a feasible assignment, refinement must never move a
  // neuron into a crossbar that is already at capacity.
  const auto g = random_graph(20, 0.4, 13);
  std::vector<CrossbarId> balanced(20);
  for (std::uint32_t i = 0; i < 20; ++i) {
    balanced[i] = static_cast<CrossbarId>(i % 4);  // 5 per crossbar
  }
  IncrementalAerCost inc(g, balanced, 4);
  inc.greedy_refine(/*capacity=*/6, /*max_sweeps=*/6);
  for (const auto occ : inc.occupancy()) EXPECT_LE(occ, 6u);
}

TEST(IncrementalAerCost, SwapRefineNeverIncreasesCostAndKeepsOccupancy) {
  const auto g = random_graph(26, 0.2, 15);
  util::Rng rng(16);
  IncrementalAerCost inc(g, random_assignment(26, 3, rng), 3);
  const auto occ_before = inc.occupancy();
  const std::uint64_t before = inc.cost();
  util::Rng swap_rng(17);
  inc.swap_refine(500, swap_rng);
  EXPECT_LE(inc.cost(), before);
  EXPECT_EQ(inc.occupancy(), occ_before);  // swaps preserve occupancy
}

TEST(IncrementalAerCost, SwapRefineEscapesCapacityBlockedOptimum) {
  // Two one-to-one chains laid out so contiguous fill separates every pair
  // and both crossbars are exactly full: single moves are blocked, swaps
  // solve it.  Neurons 0..3 each target neuron i+4.
  std::vector<snn::GraphEdge> edges;
  for (std::uint32_t i = 0; i < 4; ++i) edges.push_back({i, i + 4, 1.0F});
  std::vector<snn::SpikeTrain> trains(8, snn::SpikeTrain{1.0, 2.0});
  const auto g =
      snn::SnnGraph::from_parts(8, std::move(edges), std::move(trains), 10.0);
  // Pairs split: sources 0,1 with targets 6,7 on crossbar 0; sources 2,3
  // with targets 4,5 on crossbar 1.
  IncrementalAerCost inc(g, {0, 0, 1, 1, 1, 1, 0, 0}, 2);
  EXPECT_EQ(inc.cost(), 8u);  // every source remote (2 spikes x 4 sources)
  EXPECT_EQ(inc.greedy_refine(/*capacity=*/4, 4), 0u);  // blocked
  util::Rng rng(18);
  inc.swap_refine(2000, rng);
  EXPECT_EQ(inc.cost(), 0u);  // pairs reunited via swaps
}

/// Property sweep: incremental trajectory stays consistent with the batch
/// evaluator across graph densities, crossbar counts and seeds.
class IncrementalProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(IncrementalProperty, TrajectoryConsistency) {
  const auto [n, c, seed] = GetParam();
  const auto g = random_graph(static_cast<std::uint32_t>(n), 0.2,
                              static_cast<std::uint64_t>(seed));
  const CostModel cost(g);
  util::Rng rng(static_cast<std::uint64_t>(seed) * 31 + 1);
  IncrementalAerCost inc(
      g, random_assignment(static_cast<std::uint32_t>(n),
                           static_cast<std::uint32_t>(c), rng),
      static_cast<std::uint32_t>(c));
  for (int step = 0; step < 60; ++step) {
    const auto neuron = static_cast<std::uint32_t>(
        rng.below(static_cast<std::uint64_t>(n)));
    const auto to = static_cast<CrossbarId>(
        rng.below(static_cast<std::uint64_t>(c)));
    const std::int64_t predicted = inc.move_delta(neuron, to);
    const std::uint64_t before = inc.cost();
    inc.apply_move(neuron, to);
    EXPECT_EQ(static_cast<std::int64_t>(inc.cost()),
              static_cast<std::int64_t>(before) + predicted);
    ASSERT_EQ(inc.cost(), cost.multicast_packet_count(inc.assignment()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IncrementalProperty,
    ::testing::Combine(::testing::Values(10, 25, 40),
                       ::testing::Values(2, 4, 6),
                       ::testing::Values(1, 2)));

}  // namespace
}  // namespace snnmap::core
