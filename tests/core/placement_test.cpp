#include "core/placement.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace snnmap::core {
namespace {

TEST(Placement, IdentityMapsKToK) {
  const auto topo = noc::Topology::mesh(2, 2);
  const auto p = identity_placement(4, topo);
  EXPECT_EQ(p, (Placement{0, 1, 2, 3}));
}

TEST(Placement, IdentityRejectsTooFewTiles) {
  const auto topo = noc::Topology::mesh(2, 2);
  EXPECT_THROW(identity_placement(5, topo), std::invalid_argument);
}

TEST(Placement, CostWeighsTrafficByDistance) {
  const auto topo = noc::Topology::mesh(2, 2);
  // Traffic only between crossbars 0 and 1.
  std::vector<std::uint64_t> traffic(16, 0);
  traffic[0 * 4 + 1] = 10;
  // Adjacent tiles: cost 10 * 1.
  EXPECT_EQ(placement_cost({0, 1, 2, 3}, traffic, topo), 10u);
  // Diagonal tiles: cost 10 * 2.
  EXPECT_EQ(placement_cost({0, 3, 2, 1}, traffic, topo), 20u);
}

TEST(Placement, CostValidatesMatrixSize) {
  const auto topo = noc::Topology::mesh(2, 2);
  EXPECT_THROW(placement_cost({0, 1}, {1, 2, 3}, topo),
               std::invalid_argument);
}

TEST(Placement, GreedyNeverWorseThanIdentity) {
  const auto topo = noc::Topology::mesh(3, 3);
  // Heavy traffic between crossbars 0 and 8 (identity puts them 4 hops
  // apart), light elsewhere.
  std::vector<std::uint64_t> traffic(81, 0);
  traffic[0 * 9 + 8] = 100;
  traffic[8 * 9 + 0] = 100;
  traffic[1 * 9 + 2] = 1;
  const auto greedy = greedy_placement(traffic, 9, topo);
  EXPECT_LE(placement_cost(greedy, traffic, topo),
            placement_cost(identity_placement(9, topo), traffic, topo));
  // The heavy pair must end up adjacent.
  EXPECT_EQ(topo.hop_distance(greedy[0], greedy[8]), 1u);
}

TEST(Placement, GreedyIsAPermutation) {
  const auto topo = noc::Topology::tree(8, 2);
  std::vector<std::uint64_t> traffic(64, 3);
  auto p = greedy_placement(traffic, 8, topo);
  std::sort(p.begin(), p.end());
  for (std::uint32_t k = 0; k < 8; ++k) EXPECT_EQ(p[k], k);
}

TEST(Placement, GreedyHandlesZeroTraffic) {
  const auto topo = noc::Topology::ring(4);
  const std::vector<std::uint64_t> traffic(16, 0);
  const auto p = greedy_placement(traffic, 4, topo);
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(placement_cost(p, traffic, topo), 0u);
}

}  // namespace
}  // namespace snnmap::core
