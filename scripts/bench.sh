#!/usr/bin/env bash
# NoC simulator perf tracking: runs the BM_NocSimulator suite (Release) and
# writes BENCH_noc.json at the repo root so the simulated-packets/sec and
# simulated-cycles/sec trajectory is recorded PR over PR.
#
#   scripts/bench.sh [extra google-benchmark flags...]
#
# Requires Google Benchmark (the noc_sim_benchmarks target is skipped with a
# notice when the library is absent).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-release}
JOBS=${JOBS:-$(nproc)}
OUT=${OUT:-BENCH_noc.json}

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DSNNMAP_BUILD_TESTS=OFF \
  -DSNNMAP_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$JOBS" --target noc_sim_benchmarks

if [[ ! -x "$BUILD_DIR/bench/noc_sim_benchmarks" ]]; then
  echo "noc_sim_benchmarks was not built (Google Benchmark missing?)" >&2
  exit 1
fi

"$BUILD_DIR/bench/noc_sim_benchmarks" \
  --benchmark_min_time=2 \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  "$@"

echo "wrote $OUT"
