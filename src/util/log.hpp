// Minimal leveled logging.  The framework is a library first: logging is off
// by default (Warn) and bench/example binaries opt in to Info.
#pragma once

#include <sstream>
#include <string>

namespace snnmap::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global threshold; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits one line ("[level] message") to stderr if enabled.
void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream out;
  (out << ... << std::forward<Args>(args));
  return out.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::Debug) {
    log_message(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
  }
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::Info) {
    log_message(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
  }
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::Warn) {
    log_message(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
  }
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::Error) {
    log_message(LogLevel::Error, detail::concat(std::forward<Args>(args)...));
  }
}

}  // namespace snnmap::util
