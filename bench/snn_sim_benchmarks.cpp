// BM_SnnSimulator: Google-benchmark suite for the SNN simulator hot path.
//
// Run via scripts/bench.sh, which writes BENCH_snn.json so the perf
// trajectory of the clock-driven step loop is tracked PR over PR.  The
// headline numbers are simulated ms/sec (sim_ms_per_sec counter) and neuron
// updates/sec (items/sec) on:
//
//  * the paper's synthetic stimulus shape — 10 Poisson sources with mean
//    rates spread over 10..100 Hz — driving two fully connected Izhikevich
//    layers (the acceptance scenario for the SoA engine),
//  * a 3-layer LIF feedforward stack (the synthetic workload family),
//  * STDP training on plastic afferents (Diehl & Cook shape),
//  * exponential synapses (temporal summation path),
//  * a multi-seed batch sweep through core::BatchSnnEvaluator.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "core/batch_eval.hpp"
#include "snn/network.hpp"
#include "snn/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace snnmap;

/// 10 Poisson sources (rates 10..100 Hz, Sec. V of the paper) fully
/// connected into two 512-neuron Izhikevich layers: spike delivery through
/// the 512 x 512 inner projection dominates, exactly the path the SoA CSR
/// rewrite targets.
snn::Network izh_poisson_network() {
  snn::Network net;
  util::Rng rng(101);
  const auto in = net.add_poisson_group("in", 10, 0.0);
  net.set_rate_function(in, [](std::uint32_t local, double) {
    return 10.0 + 10.0 * static_cast<double>(local);
  });
  const auto l0 = net.add_izhikevich_group(
      "l0", 512, snn::IzhikevichParams::regular_spiking());
  const auto l1 = net.add_izhikevich_group(
      "l1", 512, snn::IzhikevichParams::regular_spiking());
  net.connect_full(in, l0, snn::WeightSpec::uniform(26.0, 34.0), rng);
  net.connect_full(l0, l1, snn::WeightSpec::uniform(1.5, 2.5), rng);
  return net;
}

/// The synthetic workload family: 10 ramped Poisson sources into three
/// fully connected 400-neuron LIF layers, weights scaled by 1/fan-in.
snn::Network lif_feedforward_network() {
  snn::Network net;
  util::Rng rng(202);
  const auto in = net.add_poisson_group("in", 10, 0.0);
  net.set_rate_function(in, [](std::uint32_t local, double) {
    return 10.0 + 10.0 * static_cast<double>(local);
  });
  snn::LifParams lif;
  lif.tau_m_ms = 16.0;
  const auto l0 = net.add_lif_group("l0", 400, lif);
  const auto l1 = net.add_lif_group("l1", 400, lif);
  const auto l2 = net.add_lif_group("l2", 400, lif);
  net.connect_full(in, l0, snn::WeightSpec::uniform(10.0, 15.0), rng);
  net.connect_full(l0, l1, snn::WeightSpec::uniform(90.0 / 400.0, 140.0 / 400.0),
                   rng);
  net.connect_full(l1, l2, snn::WeightSpec::uniform(90.0 / 400.0, 140.0 / 400.0),
                   rng);
  return net;
}

/// Diehl & Cook-style STDP training workload: plastic Poisson afferents
/// onto excitatory Izhikevich neurons with paired lateral inhibition.
snn::Network stdp_network() {
  snn::Network net;
  util::Rng rng(303);
  const auto in = net.add_poisson_group("in", 64, 30.0);
  const auto exc = net.add_izhikevich_group(
      "exc", 100, snn::IzhikevichParams::regular_spiking());
  const auto inh = net.add_izhikevich_group(
      "inh", 100, snn::IzhikevichParams::fast_spiking());
  net.connect_random(in, exc, 0.5, snn::WeightSpec::uniform(1.0, 4.0), rng,
                     /*delay=*/1, /*plastic=*/true);
  net.connect_one_to_one(exc, inh, snn::WeightSpec::fixed(16.0), rng);
  net.connect_random(inh, exc, 0.9, snn::WeightSpec::fixed(-3.0), rng);
  return net;
}

void run_simulation(benchmark::State& state, snn::Network& net,
                    const snn::SimulationConfig& config) {
  std::uint64_t spikes = 0;
  double simulated_ms = 0.0;
  for (auto _ : state) {
    snn::Simulator sim(net, config);
    const auto result = sim.run();
    benchmark::DoNotOptimize(result.total_spikes);
    spikes += result.total_spikes;
    simulated_ms += result.duration_ms;
  }
  const auto updates = static_cast<std::int64_t>(
      static_cast<double>(net.neuron_count()) *
      (config.duration_ms / config.dt_ms));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          updates);
  state.counters["sim_ms_per_sec"] =
      benchmark::Counter(simulated_ms, benchmark::Counter::kIsRate);
  state.counters["spikes_per_sec"] = benchmark::Counter(
      static_cast<double>(spikes), benchmark::Counter::kIsRate);
}

void BM_SnnSimulator_IzhPoisson(benchmark::State& state) {
  static snn::Network net = izh_poisson_network();
  snn::SimulationConfig config;
  config.duration_ms = 200.0;
  config.seed = 7;
  run_simulation(state, net, config);
}
BENCHMARK(BM_SnnSimulator_IzhPoisson);

void BM_SnnSimulator_LifFeedforward(benchmark::State& state) {
  static snn::Network net = lif_feedforward_network();
  snn::SimulationConfig config;
  config.duration_ms = 200.0;
  config.seed = 7;
  run_simulation(state, net, config);
}
BENCHMARK(BM_SnnSimulator_LifFeedforward);

void BM_SnnSimulator_StdpTraining(benchmark::State& state) {
  // STDP mutates weights in place, so every iteration rebuilds the network
  // (build cost is excluded from the delivery-path comparison by the other
  // entries; this one tracks the end-to-end training loop).
  snn::SimulationConfig config;
  config.duration_ms = 200.0;
  config.seed = 7;
  config.enable_stdp = true;
  config.stdp.w_max = 8.0;
  std::uint64_t spikes = 0;
  double simulated_ms = 0.0;
  for (auto _ : state) {
    snn::Network net = stdp_network();
    snn::Simulator sim(net, config);
    const auto result = sim.run();
    benchmark::DoNotOptimize(result.total_spikes);
    spikes += result.total_spikes;
    simulated_ms += result.duration_ms;
  }
  state.counters["sim_ms_per_sec"] =
      benchmark::Counter(simulated_ms, benchmark::Counter::kIsRate);
  state.counters["spikes_per_sec"] = benchmark::Counter(
      static_cast<double>(spikes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SnnSimulator_StdpTraining);

void BM_SnnSimulator_ExponentialSynapses(benchmark::State& state) {
  static snn::Network net = lif_feedforward_network();
  snn::SimulationConfig config;
  config.duration_ms = 200.0;
  config.seed = 7;
  config.syn_tau_ms = 5.0;
  run_simulation(state, net, config);
}
BENCHMARK(BM_SnnSimulator_ExponentialSynapses);

void BM_BatchSnnEvaluator_MultiSeed(benchmark::State& state) {
  // 8-seed sweep of the acceptance scenario fanned across the pool: the
  // cheap multi-run evaluation that replaces single-seed point estimates.
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5, 6, 7, 8};
  snn::SimulationConfig config;
  config.duration_ms = 200.0;
  core::BatchSnnEvaluator evaluator(
      static_cast<std::uint32_t>(state.range(0)));
  std::uint64_t spikes = 0;
  double simulated_ms = 0.0;
  for (auto _ : state) {
    const auto results =
        evaluator.run_seeds(izh_poisson_network, config, seeds);
    for (const auto& r : results) {
      spikes += r.result.total_spikes;
      simulated_ms += r.result.duration_ms;
    }
    benchmark::DoNotOptimize(results.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(seeds.size()));
  state.counters["sim_ms_per_sec"] =
      benchmark::Counter(simulated_ms, benchmark::Counter::kIsRate);
  state.counters["spikes_per_sec"] = benchmark::Counter(
      static_cast<double>(spikes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchSnnEvaluator_MultiSeed)->Arg(1)->Arg(0);

}  // namespace
