#include "hw/architecture.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace snnmap::hw {

const char* to_string(InterconnectKind kind) noexcept {
  switch (kind) {
    case InterconnectKind::kMesh: return "mesh";
    case InterconnectKind::kTree: return "tree";
    case InterconnectKind::kRing: return "ring";
    case InterconnectKind::kDragonfly: return "dragonfly";
    case InterconnectKind::kFattree: return "fattree";
  }
  return "?";
}

InterconnectKind interconnect_from_string(const std::string& name) {
  if (name == "mesh") return InterconnectKind::kMesh;
  if (name == "tree") return InterconnectKind::kTree;
  if (name == "ring") return InterconnectKind::kRing;
  if (name == "dragonfly") return InterconnectKind::kDragonfly;
  if (name == "fattree") return InterconnectKind::kFattree;
  throw std::invalid_argument(
      "unknown interconnect kind: '" + name +
      "' (expected mesh | tree | ring | dragonfly | fattree)");
}

std::uint32_t Architecture::mesh_width() const noexcept {
  // Squarest mesh that holds crossbar_count tiles.
  std::uint32_t h = static_cast<std::uint32_t>(
      std::floor(std::sqrt(static_cast<double>(crossbar_count))));
  if (h == 0) h = 1;
  std::uint32_t w = (crossbar_count + h - 1) / h;
  return w;
}

std::uint32_t Architecture::mesh_height() const noexcept {
  const std::uint32_t w = mesh_width();
  return (crossbar_count + w - 1) / w;
}

std::uint32_t Architecture::interconnect_tile_count() const noexcept {
  switch (interconnect) {
    case InterconnectKind::kMesh: return mesh_width() * mesh_height();
    case InterconnectKind::kTree:
    case InterconnectKind::kRing: return crossbar_count;
    case InterconnectKind::kDragonfly:
      return dragonfly_arity * dragonfly_groups;
    case InterconnectKind::kFattree: return fattree_k * fattree_k / 2;
  }
  return crossbar_count;
}

std::uint32_t Architecture::tiles_per_chip() const noexcept {
  const std::uint32_t tiles = interconnect_tile_count();
  const std::uint32_t chips = chip_count == 0 ? 1 : chip_count;
  return (tiles + chips - 1) / chips;
}

void Architecture::validate() const {
  if (crossbar_count == 0) {
    throw std::invalid_argument(
        "Architecture: crossbar_count must be >= 1");
  }
  if (neurons_per_crossbar == 0) {
    throw std::invalid_argument(
        "Architecture: neurons_per_crossbar must be >= 1");
  }
  if (cycles_per_ms == 0) {
    throw std::invalid_argument("Architecture: cycles_per_ms must be >= 1");
  }
  if (interconnect == InterconnectKind::kTree && tree_arity < 2) {
    throw std::invalid_argument("Architecture: tree_arity must be >= 2");
  }
  if (interconnect == InterconnectKind::kRing && crossbar_count < 2) {
    throw std::invalid_argument(
        "Architecture: a ring needs >= 2 crossbars");
  }
  if (interconnect == InterconnectKind::kDragonfly) {
    if (dragonfly_arity < 2 || dragonfly_groups < 2 ||
        dragonfly_global < 1) {
      throw std::invalid_argument(
          "Architecture: dragonfly needs arity >= 2, groups >= 2 and >= 1 "
          "global channel per router");
    }
    if (static_cast<std::uint64_t>(dragonfly_arity) * dragonfly_global <
        dragonfly_groups - 1) {
      throw std::invalid_argument(
          "Architecture: dragonfly needs arity * global >= groups - 1 (one "
          "full set of global channels per group)");
    }
    if (dragonfly_global > dragonfly_groups - 1) {
      throw std::invalid_argument(
          "Architecture: dragonfly needs global <= groups - 1 (more global "
          "channels per router than peer groups would create parallel "
          "links)");
    }
  }
  if (interconnect == InterconnectKind::kFattree &&
      (fattree_k < 2 || fattree_k % 2 != 0)) {
    throw std::invalid_argument(
        "Architecture: fattree_k must be even and >= 2");
  }
  const std::uint32_t tiles = interconnect_tile_count();
  if (tiles < crossbar_count) {
    throw std::invalid_argument(
        "Architecture: interconnect seats " + std::to_string(tiles) +
        " tiles but the device has " + std::to_string(crossbar_count) +
        " crossbars (grow the dragonfly/fattree parameters)");
  }
  if (chip_count == 0) {
    throw std::invalid_argument("Architecture: chip_count must be >= 1");
  }
  if (chip_count > tiles) {
    throw std::invalid_argument(
        "Architecture: more chips (" + std::to_string(chip_count) +
        ") than interconnect tiles (" + std::to_string(tiles) + ")");
  }
}

Architecture Architecture::cxquad() noexcept {
  Architecture a;
  a.crossbar_count = 4;
  a.neurons_per_crossbar = 256;
  a.interconnect = InterconnectKind::kTree;
  a.tree_arity = 4;
  a.cycles_per_ms = 1000;
  return a;
}

Architecture Architecture::sized_for(std::uint64_t neurons,
                                     std::uint32_t neurons_per_crossbar,
                                     InterconnectKind kind) {
  if (neurons_per_crossbar == 0) {
    throw std::invalid_argument("Architecture: neurons_per_crossbar must be > 0");
  }
  Architecture a;
  a.neurons_per_crossbar = neurons_per_crossbar;
  a.interconnect = kind;
  const std::uint64_t count =
      neurons == 0 ? 1 : (neurons + neurons_per_crossbar - 1) /
                             neurons_per_crossbar;
  a.crossbar_count = static_cast<std::uint32_t>(count);
  if (kind == InterconnectKind::kRing && a.crossbar_count < 2) {
    a.crossbar_count = 2;
  }
  if (kind == InterconnectKind::kDragonfly) {
    // Smallest balanced dragonfly (h = 1, g = a + 1) seating every crossbar.
    std::uint32_t arity = 2;
    while (static_cast<std::uint64_t>(arity) * (arity + 1) <
           a.crossbar_count) {
      ++arity;
    }
    a.dragonfly_arity = arity;
    a.dragonfly_groups = arity + 1;
    a.dragonfly_global = 1;
  }
  if (kind == InterconnectKind::kFattree) {
    std::uint32_t k = 2;
    while (static_cast<std::uint64_t>(k) * k / 2 < a.crossbar_count) k += 2;
    a.fattree_k = k;
  }
  return a;
}

std::string Architecture::describe() const {
  std::ostringstream out;
  out << crossbar_count << " crossbars x " << neurons_per_crossbar
      << " neurons, " << to_string(interconnect) << " interconnect";
  if (interconnect == InterconnectKind::kMesh) {
    out << " (" << mesh_width() << "x" << mesh_height() << ")";
  } else if (interconnect == InterconnectKind::kTree) {
    out << " (arity " << tree_arity << ")";
  } else if (interconnect == InterconnectKind::kDragonfly) {
    out << " (a=" << dragonfly_arity << ", g=" << dragonfly_groups
        << ", h=" << dragonfly_global << ")";
  } else if (interconnect == InterconnectKind::kFattree) {
    out << " (k=" << fattree_k << ")";
  }
  if (chip_count > 1) out << ", " << chip_count << " chips";
  return out.str();
}

}  // namespace snnmap::hw
